// Ragassistant reproduces the §6.2 case study: an HPC support chatbot built
// from FIRST's embedding and inference services. HPC documentation is
// chunked, embedded with NV-Embed-v2 through /v1/embeddings, indexed in a
// FAISS-style vector index, and questions are answered with a
// retrieval-augmented prompt to a chat model.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/argonne-first/first/internal/client"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/core"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/ragtool"
)

var hpcDocs = map[string]string{
	"queueing-guide": `Jobs on Sophia are submitted with qsub and enter the workq queue by
default. Interactive jobs use qsub -I. The scheduler allocates whole GPUs; request
eight GPUs for a full node. Walltime limits are 6 hours for workq and 1 hour for
debug. Jobs exceeding walltime are terminated and requeued only if -r y is set.
Priority ages with queue wait time, and backfill lets short jobs run early when
they fit into scheduling gaps.`,
	"storage-guide": `Home directories are backed up nightly and limited to 100 GB. Project
spaces on the parallel filesystem scale to 100 TB and are not backed up. Node-local
NVMe scratch at /local/scratch offers 15 TB per node and is purged when the job
ends. Use the data transfer nodes with Globus for bulk movement; interactive scp on
login nodes is rate limited.`,
	"gpu-guide": `Each DGX node carries eight A100 GPUs connected by NVLink. Request GPUs
with the ngpus resource. CUDA_VISIBLE_DEVICES is set automatically to the allocated
devices. MIG mode is disabled on compute queues. For multi-node training use the
Mellanox HDR InfiniBand fabric with NCCL; set NCCL_IB_HCA=mlx5 to pin the correct
interfaces.`,
	"containers-guide": `Containers run under Apptainer. Build images on your workstation and
pull them to the cluster; building on compute nodes is not permitted. GPU containers
need the --nv flag. Bind /lus project directories with -B. MPI containers must match
the host MPICH ABI; load the mpich module before launching.`,
}

func main() {
	sys, err := core.DefaultTestbed(clock.NewScaled(20000))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := sys.RegisterUser("support", "support@anl.gov"); err != nil {
		log.Fatal(err)
	}
	grant, _ := sys.Login("support")
	c := client.New("", grant.AccessToken, client.WithHandler(sys.Gateway))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	pipe := ragtool.NewPipeline(c, perfmodel.NVEmbed, perfmodel.Llama8B, 4096)
	nChunks, err := pipe.IngestDocuments(ctx, hpcDocs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d chunks from %d documents (dim %d)\n\n", nChunks, len(hpcDocs), pipe.Index().Dim())

	questions := []string{
		"How much node-local scratch space does each node have, and when is it purged?",
		"What do I need to do to run a GPU container?",
		"How long can a job in the default queue run?",
	}
	for _, q := range questions {
		answer, hits, err := pipe.Answer(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q: %s\n", q)
		fmt.Printf("   retrieved:")
		for _, h := range hits {
			fmt.Printf(" %s(%.2f)", h.Doc.ID, h.Score)
		}
		fmt.Printf("\n   A: %.100s...\n\n", answer)
	}
}
