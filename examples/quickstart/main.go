// Quickstart: boot an in-process FIRST installation (two federated
// simulated clusters), authenticate a user through the Globus-style flow,
// and run a chat completion through the OpenAI-compatible gateway — the
// whole §4.6 user journey in one file.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/argonne-first/first/internal/client"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/core"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/perfmodel"
)

func main() {
	// The simulated substrate runs 5000× wall speed: PBS prologue, weight
	// loading, and token generation all take realistic *virtual* time.
	sys, err := core.DefaultTestbed(clock.NewScaled(5000))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// 1) Authenticate (Globus-Auth-style: identity provider + token grant).
	if err := sys.RegisterUser("alice", "alice@anl.gov"); err != nil {
		log.Fatal(err)
	}
	grant, err := sys.Login("alice")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logged in; token valid until %s\n", grant.Expiry.Format(time.RFC3339))

	// 2) Point the OpenAI-style client at the gateway (in-process here;
	// identical code works over HTTP against cmd/first-gateway).
	c := client.New("", grant.AccessToken, client.WithHandler(sys.Gateway))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// 3) Discover hosted models.
	models, err := c.Models(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hosted models:")
	for _, m := range models.Data {
		fmt.Printf("  %-55s %s\n", m.ID, m.Kind)
	}

	// 4) Check availability (§4.3 /jobs): hot vs cold models.
	jobs, err := c.Jobs(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range jobs.Models {
		fmt.Printf("  %-55s on %-10s: %s\n", m.Model, m.Cluster, m.State)
	}

	// 5) Chat.
	start := time.Now()
	resp, err := c.ChatCompletion(ctx, openaiapi.ChatCompletionRequest{
		Model: perfmodel.Llama8B,
		Messages: []openaiapi.Message{
			{Role: "system", Content: "You are a concise scientific assistant."},
			{Role: "user", Content: "Suggest three analyses for a new supernova light-curve dataset."},
		},
		MaxTokens: 96,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nassistant (%d tokens, %v wall):\n%s\n",
		resp.Usage.CompletionTokens, time.Since(start).Truncate(time.Millisecond),
		resp.Choices[0].Message.Content[:120]+"...")
}
