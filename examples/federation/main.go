// Federation: demonstrates the §4.5 cluster-agnostic routing policy across
// two simulated facilities. The same model is configured on Sophia (first
// in the registry) and Polaris; the example shows the three routing
// priorities in action: cold-start on the first-configured cluster,
// preference for the active instance once it is hot, and capacity-based
// failover when the primary cluster's nodes are exhausted.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/argonne-first/first/internal/client"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/core"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/gateway"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/perfmodel"
)

func main() {
	// A small two-facility federation: Sophia has only two nodes so we can
	// exhaust it; Polaris is the overflow target.
	sys, err := core.NewSystem(core.Config{
		Clock: clock.NewScaled(5000),
		Clusters: []core.ClusterSpec{
			{Name: "sophia", Nodes: 2, GPUsPerNode: 8},
			{Name: "polaris", Nodes: 8, GPUsPerNode: 4},
		},
		Deployments: []core.DeploymentSpec{
			// Fully on-demand (MinInstances 0): first request cold-starts.
			{
				Model:    perfmodel.Llama8B,
				Clusters: []string{"sophia", "polaris"},
				Config:   fabric.DeploymentConfig{MinInstances: 0, MaxInstances: 2},
			},
			// A big model that eats Sophia's nodes.
			{
				Model:    perfmodel.Llama70B,
				Clusters: []string{"sophia"},
				Config:   fabric.DeploymentConfig{MinInstances: 0, MaxInstances: 2},
			},
		},
		Gateway: gateway.Config{},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	if err := sys.RegisterUser("fed", "fed@anl.gov"); err != nil {
		log.Fatal(err)
	}
	grant, _ := sys.Login("fed")
	c := client.New("", grant.AccessToken, client.WithHandler(sys.Gateway))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	route := func(model string) {
		d, err := sys.Router.Route(model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  route(%s) -> %s  [%s]\n", short(model), d.Endpoint.ID(), d.Reason)
	}

	fmt.Println("1) Everything cold: capacity rule picks Sophia (first with free nodes):")
	route(perfmodel.Llama8B)

	fmt.Println("\n2) First request cold-starts the model on the chosen cluster...")
	if _, err := c.ChatCompletion(ctx, openaiapi.ChatCompletionRequest{
		Model:     perfmodel.Llama8B,
		Messages:  []openaiapi.Message{{Role: "user", Content: "warm me up"}},
		MaxTokens: 16,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("   ...done; the active-instance rule now pins routing there:")
	route(perfmodel.Llama8B)

	fmt.Println("\n3) Exhaust Sophia with two 70B instances (8 GPUs each)...")
	ep := sys.Endpoints["ep-sophia"]
	d70, _ := ep.Deployment(perfmodel.Llama70B)
	_, _ = d70, ep
	if _, err := c.ChatCompletion(ctx, openaiapi.ChatCompletionRequest{
		Model:     perfmodel.Llama70B,
		Messages:  []openaiapi.Message{{Role: "user", Content: "occupy node one"}},
		MaxTokens: 8,
	}); err != nil {
		log.Fatal(err)
	}
	st := sys.Clusters["sophia"].Status()
	fmt.Printf("   sophia now: %d/%d nodes free\n", st.FreeNodes, st.TotalNodes)

	fmt.Println("\n4) /jobs shows the federated availability picture:")
	jobs, err := c.Jobs(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range jobs.Models {
		fmt.Printf("   %-35s %-10s %-8s running=%d\n", short(m.Model), m.Cluster, m.State, m.Running)
	}
}

func short(model string) string {
	for i := len(model) - 1; i >= 0; i-- {
		if model[i] == '/' {
			return model[i+1:]
		}
	}
	return model
}
