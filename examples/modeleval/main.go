// Modeleval reproduces the §6.1 case study: benchmarking a suite of hosted
// models against the same evaluation prompts through the Inference Gateway.
// The gateway's ability to swap models per request (no manual deployment
// steps) is what cut the original team's evaluation time by 40%.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/argonne-first/first/internal/client"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/core"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/gateway"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/perfmodel"
)

func main() {
	// Host an evaluation fleet: several model families on one cluster,
	// exactly how §6.1's fifteen-model comparison ran (scaled down).
	evalModels := []string{
		perfmodel.Llama8B,
		perfmodel.AuroraGPT,
		"Qwen/Qwen2.5-7B-Instruct",
		"mistralai/Mistral-7B-Instruct-v0.3",
	}
	deployments := make([]core.DeploymentSpec, len(evalModels))
	for i, m := range evalModels {
		deployments[i] = core.DeploymentSpec{
			Model:    m,
			Clusters: []string{"sophia"},
			Config:   fabric.DeploymentConfig{MinInstances: 1, MaxInstances: 1},
		}
	}
	sys, err := core.NewSystem(core.Config{
		Clock:       clock.NewScaled(20000),
		Clusters:    []core.ClusterSpec{{Name: "sophia", Nodes: 24, GPUsPerNode: 8}},
		Deployments: deployments,
		Gateway:     gateway.Config{},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := sys.RegisterUser("eval", "eval@anl.gov"); err != nil {
		log.Fatal(err)
	}
	grant, _ := sys.Login("eval")
	c := client.New("", grant.AccessToken, client.WithHandler(sys.Gateway))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	prompts := []string{
		"Define the CFL condition and why it limits explicit time stepping.",
		"Explain tensor parallelism for transformer inference.",
		"What is backfill scheduling in PBS?",
		"Describe how RDMA differs from TCP for MPI traffic.",
		"When does mixed-precision training diverge and how is it stabilized?",
	}

	fmt.Printf("evaluating %d models × %d prompts via one gateway — no redeployment between models\n\n",
		len(evalModels), len(prompts))
	fmt.Printf("%-40s %10s %12s %12s\n", "MODEL", "requests", "mean-tok", "mean-wall")
	for _, model := range evalModels {
		var totalTok int
		var totalWall time.Duration
		for _, p := range prompts {
			start := time.Now()
			resp, err := c.ChatCompletion(ctx, openaiapi.ChatCompletionRequest{
				Model:     model,
				Messages:  []openaiapi.Message{{Role: "user", Content: p}},
				MaxTokens: 128,
			})
			if err != nil {
				log.Fatalf("%s: %v", model, err)
			}
			totalTok += resp.Usage.CompletionTokens
			totalWall += time.Since(start)
		}
		fmt.Printf("%-40s %10d %12.1f %12s\n",
			model, len(prompts),
			float64(totalTok)/float64(len(prompts)),
			(totalWall / time.Duration(len(prompts))).Truncate(time.Millisecond))
	}

	totals := sys.Store.Totals()
	fmt.Printf("\ngateway logged %d requests, %d output tokens across %d models\n",
		totals.Requests, totals.OutputTokens, len(totals.ByModel))
}
