// Batchgen reproduces the §6.3 case study: large-scale synthetic-data
// generation through FIRST's batch mode. A JSONL batch of generation
// prompts is submitted to /v1/batches, runs as one dedicated HPC job (cold
// start included), and the example reports the throughput advantage over
// issuing the same requests interactively.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/argonne-first/first/internal/client"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/core"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/perfmodel"
)

func main() {
	sys, err := core.DefaultTestbed(clock.NewScaled(20000))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := sys.RegisterUser("datagen", "datagen@anl.gov"); err != nil {
		log.Fatal(err)
	}
	grant, _ := sys.Login("datagen")
	c := client.New("", grant.AccessToken, client.WithHandler(sys.Gateway))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Build a 500-request synthetic-data batch (each line is a complete
	// chat request, §4.4).
	const n = 500
	lines := make([]openaiapi.BatchRequestLine, n)
	for i := range lines {
		lines[i] = openaiapi.BatchRequestLine{
			CustomID: fmt.Sprintf("gen-%04d", i),
			Method:   "POST",
			URL:      "/v1/chat/completions",
			Body: openaiapi.ChatCompletionRequest{
				Model: perfmodel.Llama8B,
				Messages: []openaiapi.Message{
					{Role: "system", Content: "Generate a synthetic training sample."},
					{Role: "user", Content: fmt.Sprintf("Write a paragraph describing gene cluster %d and its regulatory context.", i)},
				},
				MaxTokens: 256,
			},
		}
	}

	wallStart := time.Now()
	b, err := c.CreateBatch(ctx, openaiapi.CreateBatchRequest{Model: perfmodel.Llama8B, InputLines: lines})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s: %d requests (status %s)\n", b.ID, b.Total, b.Status)

	// Poll like a real client would.
	for {
		got, err := c.GetBatch(ctx, b.ID)
		if err != nil {
			log.Fatal(err)
		}
		if got.Status == "completed" {
			b = got
			break
		}
		if got.Status == "failed" || got.Status == "cancelled" {
			log.Fatalf("batch %s: %s", got.Status, got.Error)
		}
		clock.NewReal().Sleep(50 * time.Millisecond)
	}
	results, err := c.BatchResults(ctx, b.ID)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("completed %d/%d lines, %d output tokens (%.1fs wall at 20000x dilation)\n",
		b.Completed, b.Total, b.OutputTokens, time.Since(wallStart).Seconds())
	fmt.Printf("sample output [%s]: %.80s...\n", results[0].CustomID,
		results[0].Body.Choices[0].Message.Content)
	fmt.Println("\nBatch mode runs the whole file in one dedicated job: the model loads")
	fmt.Println("once, no online API server sits in the path, and per-request overheads")
	fmt.Println("vanish — the §6.3 workflow that generated >6.2B tokens in production.")
}
