package store

import (
	"testing"
	"time"
)

func ts(sec int) time.Time { return time.Unix(int64(sec), 0).UTC() }

func TestLogRequestAndTotals(t *testing.T) {
	s := New(0)
	s.LogRequest(RequestLog{User: "alice", Model: "m1", Kind: KindChat, OutputTok: 100, CreatedAt: ts(1)})
	s.LogRequest(RequestLog{User: "alice", Model: "m1", Kind: KindChat, OutputTok: 50, CreatedAt: ts(2)})
	s.LogRequest(RequestLog{User: "bob", Model: "m2", Kind: KindEmbedding, CreatedAt: ts(3)})

	tot := s.Totals()
	if tot.Requests != 3 || tot.OutputTokens != 150 || tot.Users != 2 {
		t.Errorf("totals = %+v", tot)
	}
	if tot.ByModel["m1"] != 2 || tot.ByModel["m2"] != 1 {
		t.Errorf("by model = %v", tot.ByModel)
	}
	if tot.ByKind["chat"] != 2 {
		t.Errorf("by kind = %v", tot.ByKind)
	}
}

func TestLogRollupBeyondWindow(t *testing.T) {
	s := New(10)
	for i := 0; i < 25; i++ {
		s.LogRequest(RequestLog{User: "u", Model: "m", OutputTok: 10, CreatedAt: ts(i)})
	}
	if got := len(s.RecentRequests(0)); got != 10 {
		t.Errorf("retained = %d, want 10", got)
	}
	tot := s.Totals()
	// Rolled-up rows must still count toward totals.
	if tot.Requests != 25 || tot.OutputTokens != 250 {
		t.Errorf("totals after rollup = %+v", tot)
	}
	if tot.ByModel["m"] != 25 {
		t.Errorf("by-model after rollup = %v", tot.ByModel)
	}
}

func TestRecentRequestsNewestFirst(t *testing.T) {
	s := New(0)
	for i := 0; i < 5; i++ {
		s.LogRequest(RequestLog{User: "u", Model: "m", CreatedAt: ts(i)})
	}
	recent := s.RecentRequests(3)
	if len(recent) != 3 {
		t.Fatalf("recent = %d rows", len(recent))
	}
	if !(recent[0].ID > recent[1].ID && recent[1].ID > recent[2].ID) {
		t.Errorf("not newest-first: %v %v %v", recent[0].ID, recent[1].ID, recent[2].ID)
	}
}

func TestUserAggregates(t *testing.T) {
	s := New(0)
	s.EnsureUser("alice", "alice@anl.gov", ts(0))
	s.LogRequest(RequestLog{User: "alice", Model: "m", OutputTok: 40, CreatedAt: ts(1)})
	if s.UserCount() != 1 {
		t.Errorf("users = %d", s.UserCount())
	}
	// EnsureUser twice must not reset.
	s.EnsureUser("alice", "alice@anl.gov", ts(5))
	if s.UserCount() != 1 {
		t.Errorf("duplicate EnsureUser changed count")
	}
}

func TestBatchCRUD(t *testing.T) {
	s := New(0)
	s.PutBatch(Batch{ID: "b1", User: "alice", Model: "m", State: BatchQueued, Total: 10, CreatedAt: ts(1)})
	if ok := s.UpdateBatch("b1", func(b *Batch) { b.State = BatchInProgress }); !ok {
		t.Fatal("update failed")
	}
	if s.UpdateBatch("missing", func(*Batch) {}) {
		t.Error("updating a missing batch succeeded")
	}
	b, ok := s.GetBatch("b1")
	if !ok || b.State != BatchInProgress {
		t.Errorf("batch = %+v", b)
	}
	// GetBatch returns a copy: mutations must not leak in.
	b.State = BatchFailed
	again, _ := s.GetBatch("b1")
	if again.State != BatchInProgress {
		t.Error("GetBatch leaked a mutable reference")
	}
}

func TestListBatchesFiltersAndSorts(t *testing.T) {
	s := New(0)
	s.PutBatch(Batch{ID: "b1", User: "alice", CreatedAt: ts(1)})
	s.PutBatch(Batch{ID: "b2", User: "bob", CreatedAt: ts(2)})
	s.PutBatch(Batch{ID: "b3", User: "alice", CreatedAt: ts(3)})
	alice := s.ListBatches("alice")
	if len(alice) != 2 || alice[0].ID != "b3" {
		t.Errorf("alice batches = %+v", alice)
	}
	all := s.ListBatches("")
	if len(all) != 3 {
		t.Errorf("all = %d", len(all))
	}
}

func TestSessionCRUD(t *testing.T) {
	s := New(0)
	s.PutSession(Session{ID: "s1", User: "alice", Models: []string{"m"}, UpdatedAt: ts(1)})
	s.PutSession(Session{ID: "s2", User: "alice", UpdatedAt: ts(5)})
	sess, ok := s.GetSession("s1")
	if !ok || sess.User != "alice" {
		t.Errorf("session = %+v", sess)
	}
	list := s.ListSessions("alice")
	if len(list) != 2 || list[0].ID != "s2" {
		t.Errorf("sessions = %+v", list)
	}
	if _, ok := s.GetSession("nope"); ok {
		t.Error("phantom session")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := New(0)
	s.LogRequest(RequestLog{User: "alice", Model: "m1", Kind: KindChat, OutputTok: 10, Latency: time.Second, CreatedAt: ts(1)})
	s.LogRequest(RequestLog{User: "bob", Model: "m2", Kind: KindBatch, OutputTok: 20, CreatedAt: ts(2)})
	s.PutBatch(Batch{ID: "b1", User: "alice", Model: "m1", State: BatchCompleted, Total: 5, Completed: 5, CreatedAt: ts(1)})
	s.PutSession(Session{ID: "s1", User: "bob", Models: []string{"m2"}, Turns: 3, CreatedAt: ts(1), UpdatedAt: ts(2)})
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}

	s2 := New(0)
	if err := s2.Load(dir); err != nil {
		t.Fatal(err)
	}
	tot := s2.Totals()
	if tot.Requests != 2 || tot.OutputTokens != 30 || tot.Users != 2 {
		t.Errorf("restored totals = %+v", tot)
	}
	b, ok := s2.GetBatch("b1")
	if !ok || b.State != BatchCompleted || b.Completed != 5 {
		t.Errorf("restored batch = %+v", b)
	}
	sess, ok := s2.GetSession("s1")
	if !ok || sess.Turns != 3 {
		t.Errorf("restored session = %+v", sess)
	}
	// New writes must not collide with restored IDs.
	id := s2.LogRequest(RequestLog{User: "c", Model: "m", CreatedAt: ts(9)})
	if id <= 2 {
		t.Errorf("next log id = %d, want > 2", id)
	}
}

func TestLoadMissingDirIsEmpty(t *testing.T) {
	s := New(0)
	if err := s.Load(t.TempDir()); err != nil {
		t.Fatalf("loading empty dir: %v", err)
	}
	if s.Totals().Requests != 0 {
		t.Error("empty load produced data")
	}
}
