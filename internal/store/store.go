// Package store is the PostgreSQL substitute backing the Inference Gateway
// (§3.1): it persists user activity logs, user records, batch jobs, and chat
// sessions in typed in-memory tables with optional JSON-lines snapshots on
// disk. The aggregate queries feed the dashboard's summary metrics (the
// paper's headline "8.7 million requests / 76 users / 10 billion tokens"
// counters).
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// RequestKind classifies logged requests.
type RequestKind string

// Request kinds.
const (
	KindChat       RequestKind = "chat"
	KindCompletion RequestKind = "completion"
	KindEmbedding  RequestKind = "embedding"
	KindBatch      RequestKind = "batch"
)

// RequestLog is one logged API request (§3.1.1: "logging all user
// activities in the PostgreSQL database").
type RequestLog struct {
	ID        int64         `json:"id"`
	User      string        `json:"user"`
	Model     string        `json:"model"`
	Endpoint  string        `json:"endpoint"`
	Cluster   string        `json:"cluster"`
	Kind      RequestKind   `json:"kind"`
	PromptTok int           `json:"prompt_tokens"`
	OutputTok int           `json:"output_tokens"`
	Latency   time.Duration `json:"latency_ns"`
	Status    string        `json:"status"`
	CreatedAt time.Time     `json:"created_at"`
}

// User is a registered platform user.
type User struct {
	Sub       string    `json:"sub"`
	Username  string    `json:"username"`
	FirstSeen time.Time `json:"first_seen"`
	Requests  int64     `json:"requests"`
	Tokens    int64     `json:"tokens"`
}

// BatchState tracks a batch job through its lifecycle (§4.4).
type BatchState string

// Batch states.
const (
	BatchValidating BatchState = "validating"
	BatchQueued     BatchState = "queued"
	BatchInProgress BatchState = "in_progress"
	BatchCompleted  BatchState = "completed"
	BatchFailed     BatchState = "failed"
	BatchCancelled  BatchState = "cancelled"
)

// Batch is a stored batch job record.
type Batch struct {
	ID           string     `json:"id"`
	User         string     `json:"user"`
	Model        string     `json:"model"`
	Endpoint     string     `json:"endpoint"`
	State        BatchState `json:"state"`
	Total        int        `json:"total"`
	Completed    int        `json:"completed"`
	OutputTokens int64      `json:"output_tokens"`
	Error        string     `json:"error,omitempty"`
	CreatedAt    time.Time  `json:"created_at"`
	StartedAt    time.Time  `json:"started_at,omitempty"`
	FinishedAt   time.Time  `json:"finished_at,omitempty"`
}

// Session is a WebUI chat session record (§4.7).
type Session struct {
	ID        string    `json:"id"`
	User      string    `json:"user"`
	Title     string    `json:"title"`
	Models    []string  `json:"models"`
	CreatedAt time.Time `json:"created_at"`
	UpdatedAt time.Time `json:"updated_at"`
	Turns     int       `json:"turns"`
}

// Store is the database.
type Store struct {
	mu       sync.Mutex
	nextLog  int64
	logs     []RequestLog
	users    map[string]*User
	batches  map[string]*Batch
	sessions map[string]*Session
	// maxLogs bounds the retained log window (older entries are summarized
	// into totals, like a rolled-up partition).
	maxLogs       int
	rolledReqs    int64
	rolledTokens  int64
	rolledByModel map[string]int64
}

// New returns an empty store retaining up to maxLogs recent request rows
// (0 = default 100000).
func New(maxLogs int) *Store {
	if maxLogs <= 0 {
		maxLogs = 100000
	}
	return &Store{
		users:         make(map[string]*User),
		batches:       make(map[string]*Batch),
		sessions:      make(map[string]*Session),
		maxLogs:       maxLogs,
		rolledByModel: make(map[string]int64),
	}
}

// LogRequest appends a request row and updates the user's aggregates.
func (s *Store) LogRequest(r RequestLog) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextLog++
	r.ID = s.nextLog
	s.logs = append(s.logs, r)
	if len(s.logs) > s.maxLogs {
		drop := s.logs[0]
		s.logs = s.logs[1:]
		s.rolledReqs++
		s.rolledTokens += int64(drop.OutputTok)
		s.rolledByModel[drop.Model]++
	}
	u, ok := s.users[r.User]
	if !ok {
		u = &User{Sub: r.User, Username: r.User, FirstSeen: r.CreatedAt}
		s.users[r.User] = u
	}
	u.Requests++
	u.Tokens += int64(r.OutputTok)
	return r.ID
}

// EnsureUser registers a user record (login path).
func (s *Store) EnsureUser(sub, username string, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[sub]; !ok {
		s.users[sub] = &User{Sub: sub, Username: username, FirstSeen: at}
	}
}

// RecentRequests returns up to n newest request rows, newest first.
func (s *Store) RecentRequests(n int) []RequestLog {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > len(s.logs) {
		n = len(s.logs)
	}
	out := make([]RequestLog, n)
	for i := 0; i < n; i++ {
		out[i] = s.logs[len(s.logs)-1-i]
	}
	return out
}

// UserCount returns the number of distinct users seen.
func (s *Store) UserCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.users)
}

// Totals aggregates platform counters for the dashboard.
type Totals struct {
	Requests     int64            `json:"requests"`
	OutputTokens int64            `json:"output_tokens"`
	Users        int              `json:"users"`
	ByModel      map[string]int64 `json:"requests_by_model"`
	ByKind       map[string]int64 `json:"requests_by_kind"`
}

// Totals computes aggregate statistics over all logged traffic.
func (s *Store) Totals() Totals {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := Totals{
		Requests:     s.rolledReqs + int64(len(s.logs)),
		OutputTokens: s.rolledTokens,
		Users:        len(s.users),
		ByModel:      make(map[string]int64),
		ByKind:       make(map[string]int64),
	}
	for m, n := range s.rolledByModel {
		t.ByModel[m] = n
	}
	for _, r := range s.logs {
		t.OutputTokens += int64(r.OutputTok)
		t.ByModel[r.Model]++
		t.ByKind[string(r.Kind)]++
	}
	return t
}

// PutBatch inserts or updates a batch record.
func (s *Store) PutBatch(b Batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := b
	s.batches[b.ID] = &cp
}

// UpdateBatch applies fn to a batch record under the store lock.
func (s *Store) UpdateBatch(id string, fn func(*Batch)) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	if !ok {
		return false
	}
	fn(b)
	return true
}

// GetBatch fetches a batch record.
func (s *Store) GetBatch(id string) (Batch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	if !ok {
		return Batch{}, false
	}
	return *b, true
}

// ListBatches returns all batches for a user (all users when sub == ""),
// newest first.
func (s *Store) ListBatches(sub string) []Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Batch
	for _, b := range s.batches {
		if sub == "" || b.User == sub {
			out = append(out, *b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CreatedAt.After(out[j].CreatedAt) })
	return out
}

// PutSession inserts or updates a chat session.
func (s *Store) PutSession(sess Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := sess
	s.sessions[sess.ID] = &cp
}

// GetSession fetches a session.
func (s *Store) GetSession(id string) (Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return Session{}, false
	}
	return *sess, true
}

// ListSessions returns a user's sessions, most recently updated first.
func (s *Store) ListSessions(sub string) []Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Session
	for _, sess := range s.sessions {
		if sub == "" || sess.User == sub {
			out = append(out, *sess)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UpdatedAt.After(out[j].UpdatedAt) })
	return out
}

// snapshot is the on-disk format.
type snapshot struct {
	Logs     []RequestLog `json:"logs"`
	Users    []User       `json:"users"`
	Batches  []Batch      `json:"batches"`
	Sessions []Session    `json:"sessions"`
}

// Save writes a JSONL snapshot (one table per file) under dir.
func (s *Store) Save(dir string) error {
	s.mu.Lock()
	snap := snapshot{Logs: append([]RequestLog(nil), s.logs...)}
	for _, u := range s.users {
		snap.Users = append(snap.Users, *u)
	}
	for _, b := range s.batches {
		snap.Batches = append(snap.Batches, *b)
	}
	for _, sess := range s.sessions {
		snap.Sessions = append(snap.Sessions, *sess)
	}
	s.mu.Unlock()
	sort.Slice(snap.Users, func(i, j int) bool { return snap.Users[i].Sub < snap.Users[j].Sub })
	sort.Slice(snap.Batches, func(i, j int) bool { return snap.Batches[i].ID < snap.Batches[j].ID })
	sort.Slice(snap.Sessions, func(i, j int) bool { return snap.Sessions[i].ID < snap.Sessions[j].ID })

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeJSONL(filepath.Join(dir, "requests.jsonl"), snap.Logs); err != nil {
		return err
	}
	if err := writeJSONL(filepath.Join(dir, "users.jsonl"), snap.Users); err != nil {
		return err
	}
	if err := writeJSONL(filepath.Join(dir, "batches.jsonl"), snap.Batches); err != nil {
		return err
	}
	return writeJSONL(filepath.Join(dir, "sessions.jsonl"), snap.Sessions)
}

// Load restores a snapshot previously written by Save. Missing files are
// treated as empty tables.
func (s *Store) Load(dir string) error {
	var logs []RequestLog
	if err := readJSONL(filepath.Join(dir, "requests.jsonl"), func(raw []byte) error {
		var r RequestLog
		if err := json.Unmarshal(raw, &r); err != nil {
			return err
		}
		logs = append(logs, r)
		return nil
	}); err != nil {
		return err
	}
	var users []User
	if err := readJSONL(filepath.Join(dir, "users.jsonl"), func(raw []byte) error {
		var u User
		if err := json.Unmarshal(raw, &u); err != nil {
			return err
		}
		users = append(users, u)
		return nil
	}); err != nil {
		return err
	}
	var batches []Batch
	if err := readJSONL(filepath.Join(dir, "batches.jsonl"), func(raw []byte) error {
		var b Batch
		if err := json.Unmarshal(raw, &b); err != nil {
			return err
		}
		batches = append(batches, b)
		return nil
	}); err != nil {
		return err
	}
	var sessions []Session
	if err := readJSONL(filepath.Join(dir, "sessions.jsonl"), func(raw []byte) error {
		var sess Session
		if err := json.Unmarshal(raw, &sess); err != nil {
			return err
		}
		sessions = append(sessions, sess)
		return nil
	}); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.logs = logs
	for _, r := range logs {
		if r.ID > s.nextLog {
			s.nextLog = r.ID
		}
	}
	s.users = make(map[string]*User, len(users))
	for i := range users {
		u := users[i]
		s.users[u.Sub] = &u
	}
	s.batches = make(map[string]*Batch, len(batches))
	for i := range batches {
		b := batches[i]
		s.batches[b.ID] = &b
	}
	s.sessions = make(map[string]*Session, len(sessions))
	for i := range sessions {
		sess := sessions[i]
		s.sessions[sess.ID] = &sess
	}
	return nil
}

func writeJSONL(path string, rows interface{}) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	switch typed := rows.(type) {
	case []RequestLog:
		for _, r := range typed {
			if err := enc.Encode(r); err != nil {
				return err
			}
		}
	case []User:
		for _, r := range typed {
			if err := enc.Encode(r); err != nil {
				return err
			}
		}
	case []Batch:
		for _, r := range typed {
			if err := enc.Encode(r); err != nil {
				return err
			}
		}
	case []Session:
		for _, r := range typed {
			if err := enc.Encode(r); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("store: unsupported row type %T", rows)
	}
	return w.Flush()
}

func readJSONL(path string, each func([]byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := each(line); err != nil {
			return err
		}
	}
	return sc.Err()
}
