package ragtool

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/argonne-first/first/internal/client"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/core"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/serving"
)

func TestCosineProperties(t *testing.T) {
	err := quick.Check(func(raw []int8) bool {
		if len(raw) < 4 {
			return true
		}
		a := make([]float32, 4)
		b := make([]float32, 4)
		for i := 0; i < 4; i++ {
			a[i] = float32(raw[i%len(raw)])
			b[i] = float32(raw[(i+1)%len(raw)])
		}
		c := Cosine(a, b)
		if math.Abs(c) > 1.0001 {
			return false
		}
		// cos(a,a) == 1 for non-zero a.
		var nonZero bool
		for _, v := range a {
			if v != 0 {
				nonZero = true
			}
		}
		if nonZero && math.Abs(Cosine(a, a)-1) > 1e-6 {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
	if Cosine([]float32{0, 0}, []float32{1, 1}) != 0 {
		t.Error("zero vector cosine should be 0")
	}
}

func TestIndexExactSearch(t *testing.T) {
	ix := NewIndex(8)
	for i := 0; i < 20; i++ {
		v := make([]float32, 8)
		v[i%8] = 1
		v[(i+1)%8] = float32(i) / 20
		if err := ix.Add(Doc{ID: fmt.Sprintf("d%d", i), Vector: v}); err != nil {
			t.Fatal(err)
		}
	}
	q := make([]float32, 8)
	q[3] = 1
	hits, err := ix.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 {
		t.Fatalf("hits = %d", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Error("hits not sorted by score")
		}
	}
	// The best hit must have its dominant axis at 3.
	if hits[0].Doc.Vector[3] != 1 {
		t.Errorf("top hit = %+v", hits[0].Doc)
	}
}

func TestIndexValidation(t *testing.T) {
	ix := NewIndex(4)
	if err := ix.Add(Doc{ID: "bad", Vector: []float32{1, 2}}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := ix.Search([]float32{1}, 3); err == nil {
		t.Error("query dim mismatch accepted")
	}
	hits, err := ix.Search(make([]float32, 4), 0)
	if err != nil || hits != nil {
		t.Error("k=0 should return nothing")
	}
}

func TestIVFRecallAgainstExact(t *testing.T) {
	dim := 32
	exact := NewIndex(dim)
	ivf := NewIndex(dim)
	// Clustered data: 8 clusters of 25 docs.
	for c := 0; c < 8; c++ {
		for i := 0; i < 25; i++ {
			text := fmt.Sprintf("cluster%d term%d shared%d", c, i, c)
			v := serving.PseudoEmbedding(text, dim)
			doc := Doc{ID: fmt.Sprintf("c%d-%d", c, i), Text: text, Vector: v}
			exact.Add(doc)
			ivf.Add(doc)
		}
	}
	if err := ivf.Train(8, 3); err != nil {
		t.Fatal(err)
	}
	var overlap, total int
	for c := 0; c < 8; c++ {
		q := serving.PseudoEmbedding(fmt.Sprintf("cluster%d shared%d query", c, c), dim)
		eHits, _ := exact.Search(q, 10)
		iHits, _ := ivf.Search(q, 10)
		want := make(map[string]bool)
		for _, h := range eHits {
			want[h.Doc.ID] = true
		}
		for _, h := range iHits {
			if want[h.Doc.ID] {
				overlap++
			}
		}
		total += len(eHits)
	}
	recall := float64(overlap) / float64(total)
	if recall < 0.6 {
		t.Errorf("IVF recall@10 = %.2f vs exact, want ≥ 0.6", recall)
	}
}

func TestTrainValidation(t *testing.T) {
	ix := NewIndex(4)
	ix.Add(Doc{ID: "a", Vector: []float32{1, 0, 0, 0}})
	if err := ix.Train(5, 1); err == nil {
		t.Error("nlist > docs accepted")
	}
	if err := ix.Train(0, 1); err == nil {
		t.Error("nlist 0 accepted")
	}
}

func TestChunkTextOverlapAndCoverage(t *testing.T) {
	words := make([]string, 500)
	for i := range words {
		words[i] = fmt.Sprintf("w%d", i)
	}
	text := strings.Join(words, " ")
	chunks := ChunkText(text, 100, 20)
	if len(chunks) < 5 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	// Coverage: every word appears in some chunk.
	seen := make(map[string]bool)
	for _, c := range chunks {
		for _, w := range strings.Fields(c) {
			seen[w] = true
		}
	}
	if len(seen) != 500 {
		t.Errorf("coverage = %d/500 words", len(seen))
	}
	// Overlap: consecutive chunks share words.
	first := strings.Fields(chunks[0])
	second := strings.Fields(chunks[1])
	if first[len(first)-1] != second[19] {
		t.Errorf("overlap mismatch: %s vs %s", first[len(first)-1], second[19])
	}
	if got := ChunkText("", 100, 10); got != nil {
		t.Error("empty text should produce no chunks")
	}
	if got := ChunkText("single", 0, -1); len(got) != 1 {
		t.Errorf("defaults broken: %v", got)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	sys, err := core.DefaultTestbed(clock.NewScaled(20000))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	sys.RegisterUser("rag", "rag@anl.gov")
	grant, _ := sys.Login("rag")
	gw := client.New("", grant.AccessToken, client.WithHandler(sys.Gateway))
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()

	pipe := NewPipeline(gw, perfmodel.NVEmbed, perfmodel.Llama8B, 4096)
	docs := map[string]string{
		"storage": strings.Repeat("scratch filesystem purge quota nvme local disk ", 20),
		"queue":   strings.Repeat("qsub walltime queue priority backfill scheduler ", 20),
		"gpu":     strings.Repeat("cuda nvlink tensor gpu mig devices ", 20),
	}
	n, err := pipe.IngestDocuments(ctx, docs)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || pipe.Index().Len() != n {
		t.Fatalf("ingested %d, index %d", n, pipe.Index().Len())
	}
	answer, hits, err := pipe.Answer(ctx, "what is the walltime limit in the queue?")
	if err != nil {
		t.Fatal(err)
	}
	if answer == "" {
		t.Error("empty answer")
	}
	if len(hits) == 0 {
		t.Fatal("no retrievals")
	}
	if !strings.HasPrefix(hits[0].Doc.ID, "queue#") {
		t.Errorf("top hit = %s, want a queue chunk", hits[0].Doc.ID)
	}
}
