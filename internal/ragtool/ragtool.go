// Package ragtool implements the §6.2 case study's retrieval substrate: a
// FAISS-substitute vector index (exact and IVF flavors) over embeddings
// from the gateway's /v1/embeddings endpoint, a document chunker, and a
// Retrieval-Augmented Generation pipeline that assembles prompts from the
// top-k passages.
package ragtool

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/argonne-first/first/internal/client"
	"github.com/argonne-first/first/internal/openaiapi"
)

// Doc is one indexed passage.
type Doc struct {
	ID     string
	Text   string
	Vector []float32
}

// Index is a cosine-similarity vector index. Flat search is exact; with
// Train(nlist) it becomes an IVF index probing the nearest cells.
type Index struct {
	dim  int
	docs []Doc

	// IVF state (nil until Train).
	centroids [][]float32
	cells     [][]int
	nprobe    int
}

// NewIndex creates an empty index for dim-dimensional vectors.
func NewIndex(dim int) *Index {
	return &Index{dim: dim}
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docs) }

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Add inserts documents (invalidating any IVF training).
func (ix *Index) Add(docs ...Doc) error {
	for _, d := range docs {
		if len(d.Vector) != ix.dim {
			return fmt.Errorf("ragtool: doc %s has dim %d, index wants %d", d.ID, len(d.Vector), ix.dim)
		}
		ix.docs = append(ix.docs, d)
	}
	ix.centroids = nil
	ix.cells = nil
	return nil
}

// Cosine returns the cosine similarity of two vectors.
func Cosine(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Hit is one search result.
type Hit struct {
	Doc   Doc
	Score float64
}

// Search returns the k most similar documents. Exact scan unless trained.
func (ix *Index) Search(query []float32, k int) ([]Hit, error) {
	if len(query) != ix.dim {
		return nil, fmt.Errorf("ragtool: query dim %d, index wants %d", len(query), ix.dim)
	}
	if k <= 0 {
		return nil, nil
	}
	candidates := ix.candidateIDs(query)
	hits := make([]Hit, 0, len(candidates))
	for _, id := range candidates {
		d := ix.docs[id]
		hits = append(hits, Hit{Doc: d, Score: Cosine(query, d.Vector)})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].Score > hits[j].Score })
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits, nil
}

func (ix *Index) candidateIDs(query []float32) []int {
	if ix.centroids == nil {
		all := make([]int, len(ix.docs))
		for i := range all {
			all[i] = i
		}
		return all
	}
	// Probe the nprobe nearest cells.
	type cs struct {
		cell  int
		score float64
	}
	scores := make([]cs, len(ix.centroids))
	for c := range ix.centroids {
		scores[c] = cs{c, Cosine(query, ix.centroids[c])}
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].score > scores[j].score })
	probe := ix.nprobe
	if probe > len(scores) {
		probe = len(scores)
	}
	var ids []int
	for _, s := range scores[:probe] {
		ids = append(ids, ix.cells[s.cell]...)
	}
	return ids
}

// Train builds an IVF structure with nlist cells via k-means (a few Lloyd
// iterations suffice for retrieval), probing nprobe cells per query.
func (ix *Index) Train(nlist, nprobe int) error {
	if nlist <= 0 || nlist > len(ix.docs) {
		return fmt.Errorf("ragtool: nlist %d invalid for %d docs", nlist, len(ix.docs))
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	// Initialize centroids from evenly spaced docs (deterministic).
	centroids := make([][]float32, nlist)
	for c := 0; c < nlist; c++ {
		src := ix.docs[c*len(ix.docs)/nlist].Vector
		centroids[c] = append([]float32(nil), src...)
	}
	var cells [][]int
	for iter := 0; iter < 8; iter++ {
		cells = make([][]int, nlist)
		for i, d := range ix.docs {
			best, bestScore := 0, math.Inf(-1)
			for c := range centroids {
				if s := Cosine(d.Vector, centroids[c]); s > bestScore {
					best, bestScore = c, s
				}
			}
			cells[best] = append(cells[best], i)
		}
		for c := range centroids {
			if len(cells[c]) == 0 {
				continue
			}
			mean := make([]float32, ix.dim)
			for _, id := range cells[c] {
				for j, v := range ix.docs[id].Vector {
					mean[j] += v
				}
			}
			n := float32(len(cells[c]))
			for j := range mean {
				mean[j] /= n
			}
			centroids[c] = mean
		}
	}
	ix.centroids = centroids
	ix.cells = cells
	ix.nprobe = nprobe
	return nil
}

// ChunkText splits a document into overlapping word-window chunks sized for
// embedding (≈chunkWords words with overlap words shared between adjacent
// chunks).
func ChunkText(text string, chunkWords, overlap int) []string {
	if chunkWords <= 0 {
		chunkWords = 128
	}
	if overlap < 0 || overlap >= chunkWords {
		overlap = chunkWords / 4
	}
	words := strings.Fields(text)
	if len(words) == 0 {
		return nil
	}
	var chunks []string
	step := chunkWords - overlap
	for start := 0; start < len(words); start += step {
		end := start + chunkWords
		if end > len(words) {
			end = len(words)
		}
		chunks = append(chunks, strings.Join(words[start:end], " "))
		if end == len(words) {
			break
		}
	}
	return chunks
}

// Pipeline is the HPC-assistant RAG flow: embed → retrieve → prompt → chat.
type Pipeline struct {
	gw         *client.Client
	EmbedModel string
	ChatModel  string
	TopK       int
	index      *Index
}

// NewPipeline builds a pipeline over the gateway client.
func NewPipeline(gw *client.Client, embedModel, chatModel string, dim int) *Pipeline {
	return &Pipeline{gw: gw, EmbedModel: embedModel, ChatModel: chatModel, TopK: 4, index: NewIndex(dim)}
}

// Index exposes the underlying vector index.
func (p *Pipeline) Index() *Index { return p.index }

// IngestDocuments chunks, embeds (via the gateway), and indexes documents.
func (p *Pipeline) IngestDocuments(ctx context.Context, docs map[string]string) (int, error) {
	var ids []string
	var chunks []string
	for id, text := range docs {
		for i, chunk := range ChunkText(text, 128, 32) {
			ids = append(ids, fmt.Sprintf("%s#%d", id, i))
			chunks = append(chunks, chunk)
		}
	}
	sort.Sort(byIDChunk{ids, chunks}) // deterministic ingest order
	const batchSize = 32
	total := 0
	for start := 0; start < len(chunks); start += batchSize {
		end := start + batchSize
		if end > len(chunks) {
			end = len(chunks)
		}
		resp, err := p.gw.Embeddings(ctx, openaiapi.EmbeddingRequest{Model: p.EmbedModel, Input: chunks[start:end]})
		if err != nil {
			return total, err
		}
		for i, data := range resp.Data {
			if err := p.index.Add(Doc{ID: ids[start+i], Text: chunks[start+i], Vector: data.Embedding}); err != nil {
				return total, err
			}
			total++
		}
	}
	return total, nil
}

type byIDChunk struct {
	ids    []string
	chunks []string
}

func (b byIDChunk) Len() int           { return len(b.ids) }
func (b byIDChunk) Less(i, j int) bool { return b.ids[i] < b.ids[j] }
func (b byIDChunk) Swap(i, j int) {
	b.ids[i], b.ids[j] = b.ids[j], b.ids[i]
	b.chunks[i], b.chunks[j] = b.chunks[j], b.chunks[i]
}

// Answer retrieves the most relevant passages and asks the chat model with
// the assembled context (§6.2: "retrieves the most relevant passages and
// incorporates them into the prompt sent to the LLM").
func (p *Pipeline) Answer(ctx context.Context, question string) (string, []Hit, error) {
	qResp, err := p.gw.Embeddings(ctx, openaiapi.EmbeddingRequest{Model: p.EmbedModel, Input: []string{question}})
	if err != nil {
		return "", nil, err
	}
	if len(qResp.Data) == 0 {
		return "", nil, fmt.Errorf("ragtool: empty query embedding")
	}
	hits, err := p.index.Search(qResp.Data[0].Embedding, p.TopK)
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	b.WriteString("Use the following HPC documentation excerpts to answer.\n\n")
	for i, h := range hits {
		fmt.Fprintf(&b, "[%d] (%s) %s\n", i+1, h.Doc.ID, h.Doc.Text)
	}
	b.WriteString("\nQuestion: ")
	b.WriteString(question)
	resp, err := p.gw.ChatCompletion(ctx, openaiapi.ChatCompletionRequest{
		Model: p.ChatModel,
		Messages: []openaiapi.Message{
			{Role: "system", Content: "You are an HPC support assistant. Ground every answer in the provided excerpts."},
			{Role: "user", Content: b.String()},
		},
		MaxTokens: 256,
	})
	if err != nil {
		return "", hits, err
	}
	answer := ""
	if len(resp.Choices) > 0 && resp.Choices[0].Message != nil {
		answer = resp.Choices[0].Message.Content
	}
	return answer, hits, nil
}
