// Package workload generates the synthetic request traces that substitute
// for the ShareGPT dataset in the paper's benchmarks (§5.2.2): per-request
// prompt/output token lengths drawn from seeded lognormal (optionally
// heavy-tailed) mixtures, plus the arrival processes the benchmark script
// uses (fixed request rates and the "infinite" burst mode).
package workload

import (
	"fmt"
	"strings"
	"time"

	"github.com/argonne-first/first/internal/sim"
)

// Request is one inference request in a trace.
type Request struct {
	ID        int
	ArrivalAt time.Duration // offset from trace start
	PromptTok int
	OutputTok int
	Prompt    string // synthesized text (only when materialized)
}

// LengthSpec describes the token-length marginals of a trace.
type LengthSpec struct {
	// Mean prompt length and coefficient of variation.
	PromptMean float64
	PromptCV   float64
	// Mean output length and coefficient of variation.
	OutputMean float64
	OutputCV   float64
	// HeavyTailP mixes in a Pareto tail for outputs with this probability
	// (0 disables). Used by the WebUI workload to reproduce Table 1's
	// long-run throughput depression (inspection paradox on long outputs).
	HeavyTailP     float64
	HeavyTailShape float64 // Pareto alpha, e.g. 1.5
	// Caps (0 = default).
	MaxPrompt int
	MaxOutput int
}

// ShareGPT mirrors the effective marginals of the paper's 70B benchmark runs
// (mean output ≈ 182 tok/req ⇒ 9.2 req/s × 182 ≈ 1677 tok/s in Fig. 3).
func ShareGPT() LengthSpec {
	return LengthSpec{
		PromptMean: 220, PromptCV: 0.9,
		OutputMean: 182, OutputCV: 0.75,
		MaxPrompt: 2048, MaxOutput: 1024,
	}
}

// ShareGPTShort is the 8B-run variant (Fig. 5: 3283/25.1 ≈ 131 tok/req).
func ShareGPTShort() LengthSpec {
	return LengthSpec{
		PromptMean: 200, PromptCV: 0.9,
		OutputMean: 131, OutputCV: 0.75,
		MaxPrompt: 2048, MaxOutput: 1024,
	}
}

// BatchGen is the batch-mode workload (§5.3.1: 1000 requests, 2117 tok/s,
// 409 s ⇒ ≈866 output tok/req — long-form generation).
func BatchGen() LengthSpec {
	return LengthSpec{
		PromptMean: 300, PromptCV: 0.6,
		OutputMean: 866, OutputCV: 0.45,
		MaxPrompt: 4096, MaxOutput: 4096,
	}
}

// WebUI is the interactive chat workload for Table 1: moderate means with a
// heavy output tail. The tail drives the paper's 60 s-vs-120 s effect: long
// generations accumulate in the running batch over time (inspection
// paradox), so longer measurement windows see lower completion throughput.
func WebUI() LengthSpec {
	return LengthSpec{
		PromptMean: 150, PromptCV: 1.0,
		OutputMean: 140, OutputCV: 0.7,
		HeavyTailP: 0.10, HeavyTailShape: 1.15,
		MaxPrompt: 2048, MaxOutput: 8000,
	}
}

// FederateOpen is the open-loop federation workload: short scientific
// queries (classification, extraction, quick Q&A) sized so a million-request
// trace stays tractable while still exercising continuous batching.
func FederateOpen() LengthSpec {
	return LengthSpec{
		PromptMean: 64, PromptCV: 0.8,
		OutputMean: 32, OutputCV: 0.7,
		MaxPrompt: 512, MaxOutput: 256,
	}
}

func (s LengthSpec) maxPrompt() int {
	if s.MaxPrompt > 0 {
		return s.MaxPrompt
	}
	return 4096
}

func (s LengthSpec) maxOutput() int {
	if s.MaxOutput > 0 {
		return s.MaxOutput
	}
	return 4096
}

// SampleLengths draws one (prompt, output) pair.
func (s LengthSpec) SampleLengths(rng *sim.RNG) (prompt, output int) {
	p := s.PromptMean
	if s.PromptCV > 0 {
		p = rng.LogNormalMeanCV(s.PromptMean, s.PromptCV)
	}
	o := s.OutputMean
	if s.OutputCV > 0 {
		o = rng.LogNormalMeanCV(s.OutputMean, s.OutputCV)
	}
	if s.HeavyTailP > 0 && rng.Bernoulli(s.HeavyTailP) {
		o = rng.Pareto(s.OutputMean*2, s.HeavyTailShape)
	}
	prompt = clampInt(int(p+0.5), 1, s.maxPrompt())
	output = clampInt(int(o+0.5), 1, s.maxOutput())
	return prompt, output
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Arrival describes the arrival process of a trace.
type Arrival struct {
	// RatePerSec > 0: Poisson arrivals at that rate.
	// RatePerSec <= 0: "infinite" rate — all requests arrive at t=0
	// (the vLLM benchmark script's burst mode, §5.2.2).
	RatePerSec float64
	// Deterministic uses fixed inter-arrival gaps instead of Poisson.
	Deterministic bool
}

// Infinite is the burst arrival process.
func Infinite() Arrival { return Arrival{RatePerSec: 0} }

// Poisson returns a Poisson arrival process at rate r req/s.
func Poisson(r float64) Arrival { return Arrival{RatePerSec: r} }

// Generate produces a trace of n requests with the given lengths and
// arrivals, deterministic for a given seed.
func Generate(n int, lengths LengthSpec, arrival Arrival, seed int64) []Request {
	rng := sim.NewRNG(seed)
	reqs := make([]Request, n)
	var t float64
	for i := 0; i < n; i++ {
		p, o := lengths.SampleLengths(rng)
		reqs[i] = Request{ID: i, PromptTok: p, OutputTok: o}
		if arrival.RatePerSec > 0 {
			gap := 1.0 / arrival.RatePerSec
			if !arrival.Deterministic {
				gap = rng.Exp(gap)
			}
			t += gap
			reqs[i].ArrivalAt = time.Duration(t * float64(time.Second))
		}
	}
	return reqs
}

// Materialize fills in synthetic prompt text sized to each request's token
// count (≈1 word per token) so the live HTTP path carries realistic bodies.
func Materialize(reqs []Request, topicSeed int64) {
	rng := sim.NewRNG(topicSeed)
	for i := range reqs {
		reqs[i].Prompt = SyntheticPrompt(rng, reqs[i].PromptTok)
	}
}

var topicWords = []string{
	"genomic", "sequence", "variant", "climate", "ensemble", "particle",
	"collision", "detector", "simulation", "lattice", "tokamak", "plasma",
	"protein", "folding", "catalyst", "neutrino", "telescope", "spectra",
	"reactor", "turbulence", "mesh", "solver", "gradient", "tensor",
}

// SyntheticPrompt builds a deterministic pseudo-scientific prompt of roughly
// n tokens.
func SyntheticPrompt(rng *sim.RNG, n int) string {
	if n < 1 {
		n = 1
	}
	var b strings.Builder
	b.Grow(n * 8)
	b.WriteString("Explain the following observations:")
	for i := 0; i < n-4; i++ {
		b.WriteByte(' ')
		b.WriteString(topicWords[rng.Intn(len(topicWords))])
	}
	return b.String()
}

// Stats summarizes a trace for logging and test assertions.
type Stats struct {
	N           int
	MeanPrompt  float64
	MeanOutput  float64
	TotalOutput int
	MaxOutput   int
}

// Summarize computes trace statistics.
func Summarize(reqs []Request) Stats {
	st := Stats{N: len(reqs)}
	if st.N == 0 {
		return st
	}
	var sp, so int
	for _, r := range reqs {
		sp += r.PromptTok
		so += r.OutputTok
		if r.OutputTok > st.MaxOutput {
			st.MaxOutput = r.OutputTok
		}
	}
	st.MeanPrompt = float64(sp) / float64(st.N)
	st.MeanOutput = float64(so) / float64(st.N)
	st.TotalOutput = so
	return st
}

func (s Stats) String() string {
	return fmt.Sprintf("n=%d mean_prompt=%.1f mean_output=%.1f total_output=%d",
		s.N, s.MeanPrompt, s.MeanOutput, s.TotalOutput)
}

// EstimateTokens approximates the token count of a text the way the gateway
// does for logging and rate accounting (≈1 token per whitespace-separated
// word plus punctuation slack).
func EstimateTokens(text string) int {
	if text == "" {
		return 0
	}
	n := len(strings.Fields(text))
	if n == 0 {
		n = 1
	}
	return n
}
