package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/argonne-first/first/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(100, ShareGPT(), Poisson(5), 42)
	b := Generate(100, ShareGPT(), Poisson(5), 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Generate(100, ShareGPT(), Poisson(5), 43)
	same := true
	for i := range a {
		if a[i].PromptTok != c[i].PromptTok {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestShareGPTMarginals(t *testing.T) {
	trace := Generate(20000, ShareGPT(), Infinite(), 1)
	st := Summarize(trace)
	// Calibration: mean output ≈182 (Fig. 3: 1677 tok/s at 9.2 req/s).
	if math.Abs(st.MeanOutput-182) > 12 {
		t.Errorf("mean output = %.1f, want ≈182", st.MeanOutput)
	}
	if math.Abs(st.MeanPrompt-220) > 15 {
		t.Errorf("mean prompt = %.1f, want ≈220", st.MeanPrompt)
	}
}

func TestShareGPTShortMarginals(t *testing.T) {
	st := Summarize(Generate(20000, ShareGPTShort(), Infinite(), 2))
	if math.Abs(st.MeanOutput-131) > 10 {
		t.Errorf("mean output = %.1f, want ≈131 (Fig. 5)", st.MeanOutput)
	}
}

func TestBatchGenMarginals(t *testing.T) {
	st := Summarize(Generate(10000, BatchGen(), Infinite(), 3))
	if math.Abs(st.MeanOutput-866) > 60 {
		t.Errorf("mean output = %.1f, want ≈866 (§5.3.1 batch)", st.MeanOutput)
	}
}

func TestWebUIHeavyTail(t *testing.T) {
	webui := Summarize(Generate(20000, WebUI(), Infinite(), 4))
	sharegpt := Summarize(Generate(20000, ShareGPT(), Infinite(), 4))
	if webui.MaxOutput <= sharegpt.MaxOutput {
		t.Errorf("WebUI tail (max %d) should exceed ShareGPT (max %d)",
			webui.MaxOutput, sharegpt.MaxOutput)
	}
	if webui.MaxOutput < 3000 {
		t.Errorf("WebUI max output = %d, expected heavy tail past 3000", webui.MaxOutput)
	}
}

func TestLengthsAlwaysPositiveAndCapped(t *testing.T) {
	specs := []LengthSpec{ShareGPT(), ShareGPTShort(), BatchGen(), WebUI()}
	err := quick.Check(func(seed int64, which uint8) bool {
		spec := specs[int(which)%len(specs)]
		rng := sim.NewRNG(seed)
		for i := 0; i < 50; i++ {
			p, o := spec.SampleLengths(rng)
			if p < 1 || o < 1 || p > spec.maxPrompt() || o > spec.maxOutput() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestPoissonArrivalsMonotoneAndRated(t *testing.T) {
	trace := Generate(5000, ShareGPT(), Poisson(10), 5)
	var prev time.Duration
	for _, r := range trace {
		if r.ArrivalAt < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = r.ArrivalAt
	}
	// 5000 arrivals at 10/s should span ≈500s.
	span := trace[len(trace)-1].ArrivalAt.Seconds()
	if span < 430 || span > 570 {
		t.Errorf("span = %.1fs, want ≈500s", span)
	}
}

func TestDeterministicArrivalGaps(t *testing.T) {
	trace := Generate(10, ShareGPT(), Arrival{RatePerSec: 2, Deterministic: true}, 6)
	for i := 1; i < len(trace); i++ {
		gap := trace[i].ArrivalAt - trace[i-1].ArrivalAt
		if gap != 500*time.Millisecond {
			t.Fatalf("gap %d = %v, want 500ms", i, gap)
		}
	}
}

func TestInfiniteArrivalsAllAtZero(t *testing.T) {
	trace := Generate(100, ShareGPT(), Infinite(), 7)
	for _, r := range trace {
		if r.ArrivalAt != 0 {
			t.Fatalf("infinite-rate arrival at %v", r.ArrivalAt)
		}
	}
}

func TestMaterializeAndEstimateTokens(t *testing.T) {
	trace := Generate(20, ShareGPT(), Infinite(), 8)
	Materialize(trace, 9)
	for _, r := range trace {
		if r.Prompt == "" {
			t.Fatal("prompt not materialized")
		}
		est := EstimateTokens(r.Prompt)
		if est < r.PromptTok/2 || est > r.PromptTok*2 {
			t.Errorf("estimate %d far from target %d", est, r.PromptTok)
		}
	}
}

func TestEstimateTokensEdgeCases(t *testing.T) {
	if EstimateTokens("") != 0 {
		t.Error("empty text should be 0 tokens")
	}
	if EstimateTokens("   ") != 1 {
		t.Error("whitespace-only should clamp to 1")
	}
	if EstimateTokens("one two three") != 3 {
		t.Error("word counting broken")
	}
}

func TestSyntheticPromptLength(t *testing.T) {
	rng := sim.NewRNG(10)
	p := SyntheticPrompt(rng, 100)
	if got := EstimateTokens(p); got < 90 || got > 110 {
		t.Errorf("synthetic prompt tokens = %d, want ≈100", got)
	}
	if SyntheticPrompt(rng, 0) == "" {
		t.Error("n<1 should still produce text")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil)
	if st.N != 0 || st.MeanOutput != 0 {
		t.Errorf("empty summary = %+v", st)
	}
	if st.String() == "" {
		t.Error("String() should render")
	}
}
