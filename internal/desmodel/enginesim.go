package desmodel

import (
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/serving"
	"github.com/argonne-first/first/internal/sim"
)

// EngineSim steps a serving.Engine on the event kernel: one event per
// continuous-batching iteration, completions delivered at iteration ends.
//
// The iteration loop runs on two closures bound once at construction
// (stepFn, deliverFn) with the pending StepResult parked on the struct, so
// a saturated engine schedules no fresh closure per iteration — the
// batched-dispatch path in the kernel then sees stable, allocation-free
// events.
type EngineSim struct {
	k          *sim.Kernel
	eng        *serving.Engine
	running    bool
	halted     bool
	onComplete func(*serving.Sequence)

	pending serving.StepResult // iteration awaiting delivery
	// deliverPending is true from the moment an iteration's end event is
	// scheduled until deliver consumes it; EachUndelivered/DeliveryPending
	// let drivers see the completions trapped in that window.
	deliverPending bool
	stepFn         func()
	deliverFn      func()

	emitTimes []sim.Time
	emitCum   []int64 // cumulative emitted tokens at emitTimes[i]
}

// NewEngineSim builds a kernel-driven engine instance.
func NewEngineSim(k *sim.Kernel, cfg serving.Config, onComplete func(*serving.Sequence)) (*EngineSim, error) {
	eng, err := serving.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	e := &EngineSim{k: k, eng: eng, onComplete: onComplete}
	e.bind()
	return e, nil
}

// bind populates the reusable iteration closures.
func (e *EngineSim) bind() {
	e.stepFn = e.step
	e.deliverFn = e.deliver
}

// MustEngineSim panics on config errors (experiment setup with static
// catalog entries).
func MustEngineSim(k *sim.Kernel, model perfmodel.ModelSpec, gpu perfmodel.GPUSpec, maxBatch int, onComplete func(*serving.Sequence)) *EngineSim {
	e, err := NewEngineSim(k, serving.Config{Model: model, GPU: gpu, MaxBatch: maxBatch}, onComplete)
	if err != nil {
		panic(err)
	}
	return e
}

// Submit enqueues a sequence and kicks the iteration loop if idle.
func (e *EngineSim) Submit(promptTok, outputTok int, ctx interface{}) {
	e.eng.Submit(e.k.Now(), promptTok, outputTok, ctx)
	if !e.running {
		e.running = true
		e.k.Schedule(0, e.stepFn)
	}
}

// Depth reports waiting+running load for least-loaded routing.
func (e *EngineSim) Depth() int { return e.eng.Depth() }

// Stats exposes the wrapped engine's counters.
func (e *EngineSim) Stats() serving.Stats { return e.eng.Stats() }

// EachRunning visits the running batch (see serving.Engine.EachRunning).
func (e *EngineSim) EachRunning(f func(*serving.Sequence)) { e.eng.EachRunning(f) }

// EachWaiting visits live waiting sequences (see serving.Engine.EachWaiting).
func (e *EngineSim) EachWaiting(f func(*serving.Sequence)) { e.eng.EachWaiting(f) }

// Abort tombstones a waiting sequence by ID (drain: unadmitted work is
// pulled back and migrated rather than served on a dying instance).
func (e *EngineSim) Abort(id int64) bool { return e.eng.Abort(id) }

// DeliveryPending reports whether an iteration has stepped but not yet
// delivered: its completions are out of the engine's running batch (so
// Depth misses them) but have not reached the driver either.
func (e *EngineSim) DeliveryPending() bool { return e.deliverPending }

// EachUndelivered visits sequences that finished in the currently in-flight
// iteration (stepped, not yet delivered). A driver harvesting a hard-killed
// instance must treat them as live work: on the dead node that iteration
// never completed, so they are neither in EachRunning nor EachWaiting yet
// their requests still need a home.
func (e *EngineSim) EachUndelivered(f func(*serving.Sequence)) {
	if !e.deliverPending {
		return
	}
	for _, s := range e.pending.Completed {
		f(s)
	}
}

// Halt permanently idles the instance: pending iteration events become
// no-ops and no further steps are scheduled. Drivers call it when a walltime
// hard-kill tears the instance down with a batch still in flight — the
// wrapped engine is abandoned to its arena (reclaimed and reset at the next
// cell) or to the GC.
func (e *EngineSim) Halt() { e.halted = true }

func (e *EngineSim) step() {
	if e.halted {
		return
	}
	res := e.eng.Step(e.k.Now())
	if !res.Busy {
		e.running = false
		return
	}
	// Park the result for deliverFn: this engine is stepped only by its own
	// loop, so pending (and the engine scratch its Completed aliases) is
	// consumed before the next Step can overwrite either.
	e.pending = res
	e.deliverPending = true
	e.k.Schedule(res.Duration, e.deliverFn)
}

// deliver ends the iteration parked in pending: emissions recorded at the
// iteration boundary, completions handed to the driver, sequences recycled.
func (e *EngineSim) deliver() {
	if e.halted {
		return
	}
	e.deliverPending = false
	res := e.pending
	e.recordEmission(int64(res.EmittedTokens))
	for _, seq := range res.Completed {
		e.onComplete(seq)
	}
	// onComplete must consume the sequence synchronously (all drivers
	// pull Ctx and the timing fields and move on); the objects then go
	// back to the engine's free list for the next Submit.
	e.eng.Release(res.Completed...)
	e.step()
}

func (e *EngineSim) recordEmission(n int64) {
	var cum int64
	if len(e.emitCum) > 0 {
		cum = e.emitCum[len(e.emitCum)-1]
	}
	e.emitTimes = append(e.emitTimes, e.k.Now())
	e.emitCum = append(e.emitCum, cum+n)
}

// EmittedBy returns cumulative output tokens generated up to time t —
// the streaming view of throughput (a WebUI session sees tokens as they
// stream, not at request completion).
func (e *EngineSim) EmittedBy(t sim.Time) int64 {
	// Binary search over the emission log.
	lo, hi := 0, len(e.emitTimes)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.emitTimes[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return e.emitCum[lo-1]
}
