package desmodel

import (
	"math"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/serving"
	"github.com/argonne-first/first/internal/sim"
)

func TestLaneSerializesAtCost(t *testing.T) {
	k := sim.NewKernel()
	l := newLane(k, 100*time.Millisecond)
	var completions []sim.Time
	for i := 0; i < 10; i++ {
		l.enqueue(func() { completions = append(completions, k.Now()) })
	}
	k.Run(0)
	if len(completions) != 10 {
		t.Fatalf("completed %d", len(completions))
	}
	for i, at := range completions {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if at != want {
			t.Errorf("item %d at %v, want %v", i, at, want)
		}
	}
}

func TestLaneDepthTracking(t *testing.T) {
	k := sim.NewKernel()
	l := newLane(k, time.Second)
	for i := 0; i < 5; i++ {
		l.enqueue(func() {})
	}
	if l.Depth() != 5 { // service starts only when the kernel runs
		t.Errorf("depth = %d, want 5", l.Depth())
	}
	k.Run(500 * time.Millisecond) // first item mid-service
	if l.Depth() != 4 {
		t.Errorf("depth mid-service = %d, want 4", l.Depth())
	}
	k.Run(0)
	if l.Depth() != 0 {
		t.Errorf("depth after drain = %d", l.Depth())
	}
}

func TestEngineSimSingleRequestTiming(t *testing.T) {
	k := sim.NewKernel()
	model := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	var finished sim.Time
	e := MustEngineSim(k, model, perfmodel.A100_40, 0, func(seq *serving.Sequence) {
		finished = seq.FinishAt
	})
	e.Submit(220, 182, nil)
	k.Run(0)
	want := model.PrefillTime(220, perfmodel.A100_40) + 182*model.DecodeIter(1, perfmodel.A100_40)
	if d := finished - want; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("finish = %v, want %v", finished, want)
	}
}

func TestEngineSimEmissionLog(t *testing.T) {
	k := sim.NewKernel()
	model := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	e := MustEngineSim(k, model, perfmodel.A100_40, 0, func(*serving.Sequence) {})
	e.Submit(10, 100, nil)
	e.Submit(10, 100, nil)
	k.Run(0)
	total := e.EmittedBy(k.Now())
	if total != 200 {
		t.Errorf("emitted = %d, want 200", total)
	}
	if e.EmittedBy(0) != 0 {
		t.Error("nothing should be emitted at t=0")
	}
	half := e.EmittedBy(k.Now() / 2)
	if half <= 0 || half >= 200 {
		t.Errorf("mid-run emissions = %d, want in (0,200)", half)
	}
}

func TestFirstSystemLowLoadLatency(t *testing.T) {
	// A single request's end-to-end latency must be the engine cost plus
	// the calibrated pipelined overheads (Fig. 3's 9.2 s vs 3.0 s gap).
	k := sim.NewKernel()
	model := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	p := DefaultFirstParams()
	var got *Req
	sys := NewFirstSystem(k, p, model, perfmodel.A100_40, 1, func(r *Req) { got = r })
	r := &Req{ID: 1, PromptTok: 220, OutputTok: 182}
	k.Schedule(0, func() { sys.Arrive(r) })
	k.Run(0)
	if got == nil {
		t.Fatal("request never completed")
	}
	engine := model.PrefillTime(220, perfmodel.A100_40) + 182*model.DecodeIter(1, perfmodel.A100_40)
	overhead := p.GatewayOverhead + p.HubSubmit + p.HubDispatchCost + p.EndpointPickup + p.HubRelayCost + p.ResultReturn
	want := engine + overhead
	if d := got.Latency() - want; d < -50*time.Millisecond || d > 50*time.Millisecond {
		t.Errorf("latency = %v, want ≈%v", got.Latency(), want)
	}
	if got.Latency().Seconds() < 8.0 || got.Latency().Seconds() > 10.5 {
		t.Errorf("FIRST single-request latency = %.1fs, want ≈9s (Fig. 3)", got.Latency().Seconds())
	}
}

func TestFirstSystemWindowBindsInFlight(t *testing.T) {
	k := sim.NewKernel()
	model := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	p := DefaultFirstParams()
	p.Window = 10
	sys := NewFirstSystem(k, p, model, perfmodel.A100_40, 1, nil)
	for i := 0; i < 50; i++ {
		r := &Req{ID: i, PromptTok: 10, OutputTok: 20}
		k.Schedule(0, func() { sys.Arrive(r) })
	}
	k.Schedule(time.Millisecond, func() {
		if sys.InFlight() > 10 {
			t.Errorf("in-flight %d exceeds window 10", sys.InFlight())
		}
		if sys.MaxBacklog() == 0 {
			t.Error("backlog never used")
		}
	})
	k.Run(0)
}

func TestFirstSystemPollingGrid(t *testing.T) {
	k := sim.NewKernel()
	model := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	p := DefaultFirstParams()
	p.PollInterval = 2 * time.Second
	var got *Req
	sys := NewFirstSystem(k, p, model, perfmodel.A100_40, 1, func(r *Req) { got = r })
	r := &Req{ID: 1, PromptTok: 10, OutputTok: 20}
	k.Schedule(0, func() { sys.Arrive(r) })
	k.Run(0)
	if got.ObservedAt <= got.CompletedAt {
		t.Error("polling must delay observation")
	}
	offset := got.ObservedAt - got.GatewayAt
	if offset%(2*time.Second) != 0 {
		t.Errorf("observation offset %v not on the 2s grid", offset)
	}
}

func TestFirstSystemSyncWorkersOverrideWindow(t *testing.T) {
	p := DefaultFirstParams()
	p.SyncWorkers = 9
	if p.window() != 9 {
		t.Errorf("window = %d, want 9", p.window())
	}
	p.SyncWorkers = 0
	if p.window() != 428 {
		t.Errorf("window = %d, want 428", p.window())
	}
}

func TestDirectSystemAdmissionCap(t *testing.T) {
	// The single-threaded API server caps request throughput at
	// 1/APIOverhead regardless of engine capacity (§5.3.1).
	k := sim.NewKernel()
	model := perfmodel.Default.MustLookup(perfmodel.Llama8B) // engine far faster than admission
	p := DefaultDirectParams()
	var done []*Req
	sys := NewDirectSystem(k, p, model, perfmodel.A100_40, func(r *Req) { done = append(done, r) })
	const n = 400
	for i := 0; i < n; i++ {
		r := &Req{ID: i, PromptTok: 10, OutputTok: 8}
		k.Schedule(0, func() { sys.Arrive(r) })
	}
	k.Run(0)
	if len(done) != n {
		t.Fatalf("completed %d/%d", len(done), n)
	}
	m := Collect(done)
	cap := 1.0 / p.APIOverhead.Seconds() // 5.8 req/s
	if m.ReqPerSec > cap*1.05 {
		t.Errorf("throughput %.2f exceeds admission cap %.2f", m.ReqPerSec, cap)
	}
	if m.ReqPerSec < cap*0.8 {
		t.Errorf("throughput %.2f far below admission cap %.2f", m.ReqPerSec, cap)
	}
}

func TestExtAPIConcurrencyAndRate(t *testing.T) {
	k := sim.NewKernel()
	m := serving.ExtAPIModel{
		BaseLatency:     time.Second,
		MaxConcurrent:   2,
		RatePerSec:      100, // effectively unbound; concurrency binds
		PerTokenLatency: 0,
	}
	var done []*Req
	sys := NewExtAPISystem(k, m, func(r *Req) { done = append(done, r) })
	for i := 0; i < 6; i++ {
		r := &Req{ID: i, PromptTok: 1, OutputTok: 1}
		k.Schedule(0, func() { sys.Arrive(r) })
	}
	k.Run(0)
	if len(done) != 6 {
		t.Fatalf("completed %d", len(done))
	}
	// 6 requests, concurrency 2, 1s service ⇒ ≈3s + admission gaps.
	if k.Now() < 3*time.Second {
		t.Errorf("run finished at %v, too fast for concurrency 2", k.Now())
	}
}

func TestCollectMetricsMath(t *testing.T) {
	reqs := []*Req{
		{OutputTok: 100, ArrivalAt: 0, ObservedAt: sim.Seconds(10)},
		{OutputTok: 200, ArrivalAt: 0, ObservedAt: sim.Seconds(20)},
		{OutputTok: 300, ArrivalAt: sim.Seconds(5), ObservedAt: sim.Seconds(20)},
		{Failed: true},
	}
	m := Collect(reqs)
	if m.Requests != 4 || m.Completed != 3 || m.Failed != 1 {
		t.Errorf("counts = %+v", m)
	}
	if m.DurationS != 20 {
		t.Errorf("duration = %v", m.DurationS)
	}
	if math.Abs(m.ReqPerSec-0.15) > 1e-9 {
		t.Errorf("req/s = %v", m.ReqPerSec)
	}
	if math.Abs(m.TokPerSec-30) > 1e-9 {
		t.Errorf("tok/s = %v", m.TokPerSec)
	}
	// Latencies: 10, 20, 15 → median 15.
	if math.Abs(m.MedianLatS-15) > 1e-9 {
		t.Errorf("median = %v", m.MedianLatS)
	}
	if math.Abs(m.MeanLatS-15) > 1e-9 {
		t.Errorf("mean = %v", m.MeanLatS)
	}
}

func TestCollectEmpty(t *testing.T) {
	m := Collect(nil)
	if m.Completed != 0 || m.ReqPerSec != 0 {
		t.Errorf("empty = %+v", m)
	}
}

func TestLeastLoadedRouting(t *testing.T) {
	k := sim.NewKernel()
	model := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	p := DefaultFirstParams()
	p.Window = 0
	sys := NewFirstSystem(k, p, model, perfmodel.A100_40, 4, nil)
	for i := 0; i < 200; i++ {
		r := &Req{ID: i, PromptTok: 10, OutputTok: 400}
		k.Schedule(0, func() { sys.Arrive(r) })
	}
	// After dispatch settles, instances should hold balanced loads.
	k.Schedule(20*time.Second, func() {
		depths := make([]int, len(sys.engines))
		for i, e := range sys.engines {
			depths[i] = e.Depth()
		}
		min, max := depths[0], depths[0]
		for _, d := range depths {
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		if max-min > 10 {
			t.Errorf("imbalanced routing: %v", depths)
		}
		k.Stop()
	})
	k.Run(0)
}
