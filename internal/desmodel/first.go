package desmodel

import (
	"time"

	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/serving"
	"github.com/argonne-first/first/internal/sim"
)

// FirstParams are the calibrated overheads of the FIRST request path. The
// defaults reproduce the deployed system after all three §5.3.1
// optimizations; the ablation fields (AuthIntrospect, PollInterval,
// SyncWorkers) switch individual optimizations back off.
type FirstParams struct {
	// GatewayOverhead is the gateway's per-request processing cost.
	GatewayOverhead time.Duration
	// AuthIntrospect adds a per-request Globus Auth round trip
	// (Optimization 2 OFF). Zero means the token cache absorbs it.
	AuthIntrospect time.Duration
	// AuthRatePerSec caps introspections per second (service-side Globus
	// rate limiting observed before caching); excess requests queue on a
	// serialized limiter lane. 0 = unlimited.
	AuthRatePerSec float64
	// HubSubmit is the gateway→cloud submission round trip.
	HubSubmit time.Duration
	// HubDispatchCost is the hub's serialized per-task routing cost (the
	// fabric throughput ceiling the paper hits in Fig. 4).
	HubDispatchCost time.Duration
	// HubRelayCost is the hub's serialized per-result relay cost.
	HubRelayCost time.Duration
	// EndpointPickup is the endpoint's task-fetch delay.
	EndpointPickup time.Duration
	// ResultReturn is the endpoint→hub→gateway result latency.
	ResultReturn time.Duration
	// Window bounds concurrent in-flight requests at the gateway —
	// Gunicorn's cpu_count×2+1 workers × 4 threads ≈ 428 in the paper's
	// deployment (§5.2.2). SyncWorkers>0 overrides it with the legacy
	// synchronous pool (Optimization 3 OFF). <= 0 means unlimited.
	Window int
	// SyncWorkers, when > 0, replaces Window with the pre-async pool of
	// blocking workers ("only nine requests could be processed at a
	// time").
	SyncWorkers int
	// PollInterval, when > 0, makes results observable only on a polling
	// grid anchored at gateway admission (Optimization 1 OFF; the paper
	// polled every 2 s).
	PollInterval time.Duration
	// Routing selects the multi-instance dispatch policy (ablation of the
	// design choice): RouteLeastLoaded (default), RouteRoundRobin, or
	// RouteRandom.
	Routing RoutingPolicy
}

// RoutingPolicy selects how the fabric spreads tasks over instances.
type RoutingPolicy int

const (
	// RouteLeastLoaded dispatches to the instance with the smallest
	// waiting+running depth (the production policy).
	RouteLeastLoaded RoutingPolicy = iota
	// RouteRoundRobin cycles through instances.
	RouteRoundRobin
	// RouteRandom picks uniformly (seeded deterministically).
	RouteRandom
)

func (p RoutingPolicy) String() string {
	switch p {
	case RouteLeastLoaded:
		return "least-loaded"
	case RouteRoundRobin:
		return "round-robin"
	case RouteRandom:
		return "random"
	default:
		return "unknown"
	}
}

// DefaultFirstParams is the optimized deployment: ~6 s of pipelined fabric
// latency per request (Fig. 3's 9.2 s vs 3.0 s at 1 req/s) that does not
// limit throughput until the hub lanes saturate.
func DefaultFirstParams() FirstParams {
	return FirstParams{
		GatewayOverhead: 150 * time.Millisecond,
		HubSubmit:       1600 * time.Millisecond,
		HubDispatchCost: 25 * time.Millisecond,
		HubRelayCost:    18 * time.Millisecond,
		EndpointPickup:  2000 * time.Millisecond,
		ResultReturn:    2200 * time.Millisecond,
		Window:          428,
	}
}

func (p FirstParams) window() int {
	if p.SyncWorkers > 0 {
		return p.SyncWorkers
	}
	return p.Window
}

// FirstSystem is the FIRST path wired onto a kernel.
type FirstSystem struct {
	k *sim.Kernel
	p FirstParams

	engines  []*EngineSim
	authLane *lane
	dispatch *lane
	relay    *lane

	inFlight int
	backlog  []*Req
	done     func(*Req)

	maxBacklog int
	rrNext     int
	rng        *sim.RNG
}

// NewFirstSystem builds the path with `instances` engine instances of the
// model (Fig. 4's auto-scaled configurations are instances=1..4).
func NewFirstSystem(k *sim.Kernel, p FirstParams, model perfmodel.ModelSpec, gpu perfmodel.GPUSpec, instances int, done func(*Req)) *FirstSystem {
	if instances < 1 {
		instances = 1
	}
	s := newFirstSystemBase(k, p, done)
	for i := 0; i < instances; i++ {
		s.engines = append(s.engines, MustEngineSim(k, model, gpu, 0, s.onEngineComplete))
	}
	return s
}

// newFirstSystemBase wires everything but the engines (NewFirstSystem
// allocates them fresh; NewFirstSystemIn draws them from an arena).
func newFirstSystemBase(k *sim.Kernel, p FirstParams, done func(*Req)) *FirstSystem {
	s := &FirstSystem{
		k:        k,
		p:        p,
		dispatch: newLane(k, p.HubDispatchCost),
		relay:    newLane(k, p.HubRelayCost),
		done:     done,
		rng:      sim.NewRNG(1),
	}
	if p.AuthRatePerSec > 0 {
		s.authLane = newLane(k, time.Duration(float64(time.Second)/p.AuthRatePerSec))
	}
	return s
}

// Arrive is the client attempting to send a request at the current virtual
// time. When the gateway's worker window is exhausted, the request waits in
// the client's connection pool; per the benchmark script's convention,
// end-to-end latency is measured from the actual send (ArrivalAt), while
// benchmark duration covers the whole run.
func (s *FirstSystem) Arrive(r *Req) {
	w := s.p.window()
	if w > 0 && s.inFlight >= w {
		s.backlog = append(s.backlog, r)
		if len(s.backlog) > s.maxBacklog {
			s.maxBacklog = len(s.backlog)
		}
		return
	}
	s.admit(r)
}

func (s *FirstSystem) admit(r *Req) {
	s.inFlight++
	r.ArrivalAt = s.k.Now()
	r.GatewayAt = s.k.Now()
	afterAuth := func() {
		s.k.Schedule(s.p.GatewayOverhead+s.p.HubSubmit, func() { s.dispatchTask(r) })
	}
	if s.p.AuthIntrospect > 0 {
		if s.authLane != nil {
			s.authLane.enqueue(func() {
				s.k.Schedule(s.p.AuthIntrospect, afterAuth)
			})
		} else {
			s.k.Schedule(s.p.AuthIntrospect, afterAuth)
		}
		return
	}
	afterAuth()
}

func (s *FirstSystem) dispatchTask(r *Req) {
	s.dispatch.enqueue(func() {
		eng := s.pick()
		s.k.Schedule(s.p.EndpointPickup, func() {
			r.EngineAt = s.k.Now()
			eng.Submit(r.PromptTok, r.OutputTok, r)
		})
	})
}

func (s *FirstSystem) pick() *EngineSim {
	switch s.p.Routing {
	case RouteRoundRobin:
		e := s.engines[s.rrNext%len(s.engines)]
		s.rrNext++
		return e
	case RouteRandom:
		return s.engines[s.rng.Intn(len(s.engines))]
	default:
		best := s.engines[0]
		for _, e := range s.engines[1:] {
			if e.Depth() < best.Depth() {
				best = e
			}
		}
		return best
	}
}

func (s *FirstSystem) onEngineComplete(seq *serving.Sequence) {
	r := seq.Ctx.(*Req)
	s.relay.enqueue(func() {
		s.k.Schedule(s.p.ResultReturn, func() { s.complete(r) })
	})
}

func (s *FirstSystem) complete(r *Req) {
	r.CompletedAt = s.k.Now()
	r.ObservedAt = r.CompletedAt
	if s.p.PollInterval > 0 {
		// The poller anchored at gateway admission only notices the
		// result on the next grid point.
		elapsed := r.CompletedAt - r.GatewayAt
		ticks := elapsed/s.p.PollInterval + 1
		r.ObservedAt = r.GatewayAt + ticks*s.p.PollInterval
	}
	s.k.At(r.ObservedAt, func() {
		s.inFlight--
		if len(s.backlog) > 0 {
			next := s.backlog[0]
			s.backlog = s.backlog[1:]
			s.admit(next)
		}
		if s.done != nil {
			s.done(r)
		}
	})
}

// HubQueueDepth reports tasks queued at the hub's dispatch lane (the
// Artillery experiment's ">8000 tasks queued at Globus" observable).
func (s *FirstSystem) HubQueueDepth() int { return s.dispatch.Depth() }

// MaxBacklog reports the gateway backlog high-water mark.
func (s *FirstSystem) MaxBacklog() int { return s.maxBacklog }

// PeakBatch returns the largest running batch across instances.
func (s *FirstSystem) PeakBatch() int {
	peak := 0
	for _, e := range s.engines {
		if st := e.Stats(); st.PeakBatch > peak {
			peak = st.PeakBatch
		}
	}
	return peak
}

// InFlight reports current admitted requests.
func (s *FirstSystem) InFlight() int { return s.inFlight }

// EmittedTokensBy returns output tokens generated across all instances up
// to virtual time t (the streaming throughput view).
func (s *FirstSystem) EmittedTokensBy(t sim.Time) int64 {
	var sum int64
	for _, e := range s.engines {
		sum += e.EmittedBy(t)
	}
	return sum
}
