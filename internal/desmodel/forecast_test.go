package desmodel

import (
	"math"
	"testing"
	"unsafe"

	"github.com/argonne-first/first/internal/sim"
)

const forecastTol = 1e-9

// TestForecastSeedsWithFirstObservation pins the seeding contract: the
// first sample becomes the level exactly (no decay up from zero — the same
// bug class as the resilience EWMA seed) and the trend starts flat.
func TestForecastSeedsWithFirstObservation(t *testing.T) {
	f := NewForecast(0.5, 0.2)
	if f.Seeded() {
		t.Fatal("zero-observation forecaster reports Seeded")
	}
	if got := f.Predict(10); got != 0 {
		t.Fatalf("unseeded Predict = %v, want 0", got)
	}
	f.Observe(42)
	if !f.Seeded() {
		t.Fatal("forecaster not Seeded after first observation")
	}
	if got := f.Level(); got != 42 {
		t.Fatalf("level after first observation = %v, want exactly 42", got)
	}
	if got := f.Predict(100); got != 42 {
		t.Fatalf("Predict(100) after one sample = %v, want 42 (flat trend)", got)
	}
}

// TestForecastGoldenHandComputed walks the Holt recurrence by hand at
// α=0.5, β=0.2 over 10, 20, 30 and pins level, trend, and both
// prediction forms against the exact arithmetic.
func TestForecastGoldenHandComputed(t *testing.T) {
	f := NewForecast(0.5, 0.2)
	f.Observe(10) // level 10, trend 0
	f.Observe(20) // level 0.5·20+0.5·10 = 15, trend 0.2·5 = 1
	f.Observe(30) // level 0.5·30+0.5·16 = 23, trend 0.2·8+0.8·1 = 2.4
	if got := f.Level(); math.Abs(got-23) > forecastTol {
		t.Fatalf("level = %v, want 23", got)
	}
	if got := f.Predict(2); math.Abs(got-27.8) > forecastTol {
		t.Fatalf("Predict(2) = %v, want 23 + 2·2.4 = 27.8", got)
	}
	// PredictSum(2) = Σ (23 + i·2.4) for i = 1, 2 = 46 + 7.2.
	if got := f.PredictSum(2); math.Abs(got-53.2) > forecastTol {
		t.Fatalf("PredictSum(2) = %v, want 53.2", got)
	}
}

// TestForecastStepTrace drives a step input (0 → 100) and checks the
// forecast converges onto the new plateau with the trend dying back out.
func TestForecastStepTrace(t *testing.T) {
	f := NewForecast(0.5, 0.2)
	for i := 0; i < 20; i++ {
		f.Observe(0)
	}
	if got := f.Predict(5); got != 0 {
		t.Fatalf("flat-zero forecast = %v, want 0", got)
	}
	for i := 0; i < 60; i++ {
		f.Observe(100)
	}
	if got := f.Level(); math.Abs(got-100) > 1e-6 {
		t.Fatalf("post-step level = %v, want ~100", got)
	}
	if got := f.Predict(10); math.Abs(got-100) > 1e-4 {
		t.Fatalf("post-step Predict(10) = %v, want ~100 (trend should decay)", got)
	}
}

// TestForecastRampLeadsReactive is the predictive scaler's reason to
// exist: on a steadily rising ramp the trend term projects ahead of the
// level, so the horizon forecast exceeds anything a trendless EWMA (β=0)
// of the same stream reports.
func TestForecastRampLeadsReactive(t *testing.T) {
	holt := NewForecast(0.5, 0.2)
	ewma := NewForecast(0.5, 0)
	for i := 0; i < 50; i++ {
		x := float64(10 * i)
		holt.Observe(x)
		ewma.Observe(x)
	}
	if holt.Predict(5) <= holt.Level() {
		t.Fatalf("ramp Predict(5)=%v not above level %v", holt.Predict(5), holt.Level())
	}
	if holt.Predict(5) <= ewma.Predict(5) {
		t.Fatalf("holt Predict(5)=%v does not lead the trendless EWMA's %v on a ramp",
			holt.Predict(5), ewma.Predict(5))
	}
	// The EWMA variant must stay trendless: its h-step prediction is its
	// level, whatever the ramp does.
	if ewma.Predict(5) != ewma.Level() {
		t.Fatalf("β=0 Predict(5)=%v differs from level %v", ewma.Predict(5), ewma.Level())
	}
}

// TestForecastDiurnalBursty runs the experiment family's two shapes
// through the forecaster and bounds the predictions: finite, non-negative,
// and never beyond a small multiple of the trace peak (a diverging trend
// would blow through this on the sinusoid's rising edge).
func TestForecastDiurnalBursty(t *testing.T) {
	shapes := []struct {
		name  string
		shape func(i int) float64
	}{
		{"diurnal", func(i int) float64 {
			return 50 * (1 + 0.75*math.Sin(2*math.Pi*float64(i)/48))
		}},
		{"bursty", func(i int) float64 {
			if i%10 < 4 {
				return 200
			}
			return 25
		}},
	}
	for _, sc := range shapes {
		name, shape := sc.name, sc.shape
		f := NewForecast(0.5, 0.2)
		peak := 0.0
		for i := 0; i < 500; i++ {
			x := shape(i)
			if x > peak {
				peak = x
			}
			f.Observe(x)
			for _, h := range []float64{0, 1, 3, 10} {
				p := f.Predict(h)
				if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
					t.Fatalf("%s step %d: Predict(%v) = %v", name, i, h, p)
				}
				if p > 4*peak {
					t.Fatalf("%s step %d: Predict(%v) = %v diverged past 4×peak %v", name, i, h, p, peak)
				}
			}
			if s := f.PredictSum(10); math.IsNaN(s) || s < 0 || s > 40*peak {
				t.Fatalf("%s step %d: PredictSum(10) = %v out of bounds", name, i, s)
			}
		}
	}
}

// TestForecastPropertyFiniteNonNegative fuzzes the input stream with
// extreme magnitudes, negatives, NaN, and ±Inf: every prediction must stay
// finite and non-negative, and non-finite samples must not poison the
// state (the next finite observation keeps working).
func TestForecastPropertyFiniteNonNegative(t *testing.T) {
	rng := sim.NewRNG(20251015)
	f := NewForecast(0.5, 0.2)
	for i := 0; i < 20000; i++ {
		var x float64
		switch rng.Intn(8) {
		case 0:
			x = math.NaN()
		case 1:
			x = math.Inf(1)
		case 2:
			x = math.Inf(-1)
		case 3:
			x = -math.Exp(40 * rng.Float64())
		default:
			x = math.Exp(40*rng.Float64() - 20)
		}
		f.Observe(x)
		h := float64(rng.Intn(1000))
		if p := f.Predict(h); math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			t.Fatalf("step %d: Predict(%v) = %v after observing %v", i, h, p, x)
		}
		if s := f.PredictSum(int(h)); math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			t.Fatalf("step %d: PredictSum(%v) = %v after observing %v", i, h, s, x)
		}
		if l := f.Level(); math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("step %d: level went non-finite (%v) after observing %v", i, l, x)
		}
	}
}

// TestForecastDownTrendSumClamps pins PredictSum's step-wise clamp: with a
// steep down-trend the per-step forecasts cross zero inside the horizon
// and the steps beyond the crossing must contribute nothing (not negative
// arrivals cancelling real ones).
func TestForecastDownTrendSumClamps(t *testing.T) {
	f := NewForecast(0.5, 0.2)
	f.Observe(400) // level 400, trend 0
	f.Observe(350) // level 375, trend −5
	f.Observe(300) // level 335, trend −12
	if got := f.Level(); math.Abs(got-335) > forecastTol {
		t.Fatalf("level = %v, want 335", got)
	}
	// Per-step forecasts 335 − 12i cross zero at i ≈ 27.9: steps 1..27
	// contribute, everything after clamps to zero, so the thousand-step
	// sum equals 27·335 − 12·(27·28/2) = 4509 — not 1000 steps of
	// increasingly negative arrivals netted against the real ones.
	if got := f.PredictSum(1000); math.Abs(got-4509) > forecastTol {
		t.Fatalf("down-trend PredictSum(1000) = %v, want 4509 (clamped at the zero crossing)", got)
	}
	// Inside the crossing the plain triangle applies: 3·335 − 12·6 = 933.
	if got := f.PredictSum(3); math.Abs(got-933) > forecastTol {
		t.Fatalf("down-trend PredictSum(3) = %v, want 933", got)
	}
}

// TestForecastStateSizeConstant pins the fixed-size-state contract: a
// Forecast is a flat value (no pointers, slices, or maps to grow), small
// enough to live inline on every deployment.
func TestForecastStateSizeConstant(t *testing.T) {
	if sz := unsafe.Sizeof(Forecast{}); sz > 48 {
		t.Fatalf("Forecast grew to %d bytes; the per-deployment inline budget is 48", sz)
	}
	// Value semantics: a copy diverges independently, proving there is no
	// hidden shared state behind the struct.
	a := NewForecast(0.5, 0.2)
	a.Observe(10)
	b := a
	b.Observe(1000)
	if a.Level() != 10 {
		t.Fatalf("copying a Forecast shares state: original level moved to %v", a.Level())
	}
}

// TestForecastAllocs pins the observe/predict hot path at 0 allocs/op —
// the forecaster runs inside every scaler tick of every deployment.
func TestForecastAllocs(t *testing.T) {
	f := NewForecast(0.5, 0.2)
	var sink float64
	allocs := testing.AllocsPerRun(1000, func() {
		f.Observe(17)
		sink = f.Predict(6) + f.PredictSum(6) + f.Level()
	})
	if allocs != 0 {
		t.Fatalf("forecast observe/predict path allocates %v/op, want 0", allocs)
	}
	_ = sink
}
