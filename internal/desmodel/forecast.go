package desmodel

// Online arrival-rate forecasting for the predictive scaler (doc.go
// "Predictive scaling & drain-aware routing").
//
// Forecast is Holt-style double exponential smoothing: a smoothed level
// plus a smoothed trend, so a steadily rising arrival rate projects
// forward instead of lagging one EWMA time-constant behind. State is two
// float64s and two coefficients — fixed size regardless of stream length,
// which is what lets one Forecast live inline on every (cluster, model)
// deployment without an allocation anywhere on the observe/predict path.
//
// The zero value is ready to use but observes nothing until coefficients
// are set; construct with NewForecast. With Beta == 0 the trend term stays
// zero and the forecaster degrades to a plain seeded EWMA (the shape the
// scaler uses for the service-rate estimate).

// Forecast holds double-exponential-smoothing state for one scalar
// series. All methods are allocation-free.
type Forecast struct {
	// Alpha smooths the level, Beta the trend; both in (0, 1]. Larger
	// values track the stream faster and remember less.
	Alpha, Beta float64

	level  float64
	trend  float64
	seeded bool
}

// NewForecast returns a forecaster with the given smoothing coefficients.
// Alpha outside (0, 1] is clamped to defaultForecastAlpha; a negative
// Beta is clamped to 0 (EWMA mode).
func NewForecast(alpha, beta float64) Forecast {
	if alpha <= 0 || alpha > 1 {
		alpha = defaultForecastAlpha
	}
	if beta < 0 || beta > 1 {
		beta = defaultForecastBeta
	}
	return Forecast{Alpha: alpha, Beta: beta}
}

// Default smoothing coefficients for the predictive scaler: level tracks
// at α=0.5 (half-life about one scaler tick, fast enough to catch a
// burst's leading edge) and trend at β=0.2 (slow enough that one spiky
// tick does not project a runaway slope).
const (
	defaultForecastAlpha = 0.5
	defaultForecastBeta  = 0.2
)

// Observe feeds one sample (e.g. arrivals counted during the last scaler
// tick). The first sample seeds the level exactly — the same fix as the
// resilience EWMA seeding bug — so early predictions do not decay up
// from zero; the trend seeds at zero and only develops from the second
// sample on. Non-finite samples (NaN, ±Inf) are dropped so one corrupt
// observation cannot poison the state forever.
//
//first:hotpath pinned by the forecast AllocsPerRun sweep (forecast_test.go)
func (f *Forecast) Observe(x float64) {
	if x != x || x > maxForecastSample || x < -maxForecastSample {
		return
	}
	if !f.seeded {
		f.level, f.trend, f.seeded = x, 0, true
		return
	}
	prev := f.level
	f.level = f.Alpha*x + (1-f.Alpha)*(f.level+f.trend)
	f.trend = f.Beta*(f.level-prev) + (1-f.Beta)*f.trend
}

// maxForecastSample rejects samples (and caps horizons) far beyond any
// real per-tick count, keeping every prediction finite.
const maxForecastSample = 1e15

// Predict returns the forecast h steps ahead: level + h·trend, clamped
// to be non-negative (an arrival rate cannot go below zero, however
// steep the downward trend). Before any observation it returns 0.
//
//first:hotpath pinned by the forecast AllocsPerRun sweep (forecast_test.go)
func (f *Forecast) Predict(h float64) float64 {
	if !f.seeded {
		return 0
	}
	if h < 0 {
		h = 0
	} else if h > maxForecastSample {
		h = maxForecastSample
	}
	v := f.level + h*f.trend
	if v < 0 || v != v {
		return 0
	}
	return v
}

// PredictSum returns the forecast total over the next h whole steps:
// Σ_{i=1..h} max(0, level + i·trend). The scaler uses this as "arrivals
// expected during one cold start". Negative per-step forecasts clamp at
// zero step-wise (the closed form switches to the triangle above the
// zero crossing), so a steep down-trend predicts an early-quiet horizon
// rather than negative arrivals cancelling real ones.
//
//first:hotpath pinned by the forecast AllocsPerRun sweep (forecast_test.go)
func (f *Forecast) PredictSum(h int) float64 {
	if !f.seeded || h <= 0 {
		return 0
	}
	if float64(h) > maxForecastSample {
		h = int(maxForecastSample)
	}
	n := float64(h)
	if f.trend >= 0 {
		v := n*f.level + f.trend*n*(n+1)/2
		if v < 0 || v != v {
			return 0
		}
		return v
	}
	// Down-trend: per-step forecasts hit zero at i0 = -level/trend; only
	// steps 1..min(h, floor(i0)) contribute.
	if f.level <= 0 {
		return 0
	}
	last := -f.level / f.trend // last i with a positive forecast, fractional
	if n > last {
		n = float64(int(last))
		if n <= 0 {
			return 0
		}
	}
	v := n*f.level + f.trend*n*(n+1)/2
	if v < 0 || v != v {
		return 0
	}
	return v
}

// Level exposes the smoothed level (the scaler's service-rate EWMA reads
// this). Zero before any observation.
//
//first:hotpath pinned by the forecast AllocsPerRun sweep (forecast_test.go)
func (f *Forecast) Level() float64 { return f.level }

// Seeded reports whether at least one sample has been observed.
func (f *Forecast) Seeded() bool { return f.seeded }
