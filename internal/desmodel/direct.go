package desmodel

import (
	"time"

	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/serving"
	"github.com/argonne-first/first/internal/sim"
)

// DirectParams model the vLLM-Direct baseline: the benchmark client talks
// straight to vLLM's OpenAI-compatible server, whose API front-end
// historically processed requests on a single thread (§5.3.1, vLLM issue
// #12705) — request admission serializes.
type DirectParams struct {
	// APIOverhead is the serialized per-request admission cost of the
	// single-threaded API server. 172 ms reproduces the 5.8 req/s cap the
	// paper measured at saturation.
	APIOverhead time.Duration
	// ResponseOverhead is the per-response serialization/network cost
	// (pipelined).
	ResponseOverhead time.Duration
}

// DefaultDirectParams returns the calibrated baseline.
func DefaultDirectParams() DirectParams {
	return DirectParams{
		APIOverhead:      172 * time.Millisecond,
		ResponseOverhead: 25 * time.Millisecond,
	}
}

// DirectSystem is the vLLM-direct path on a kernel.
type DirectSystem struct {
	k         *sim.Kernel
	p         DirectParams
	admission *lane
	engine    *EngineSim
	done      func(*Req)
}

// NewDirectSystem builds a single-instance direct serving path.
func NewDirectSystem(k *sim.Kernel, p DirectParams, model perfmodel.ModelSpec, gpu perfmodel.GPUSpec, done func(*Req)) *DirectSystem {
	s := &DirectSystem{k: k, p: p, admission: newLane(k, p.APIOverhead), done: done}
	s.engine = MustEngineSim(k, model, gpu, 0, s.onEngineComplete)
	return s
}

// Arrive is the client sending a request.
func (s *DirectSystem) Arrive(r *Req) {
	r.ArrivalAt = s.k.Now()
	s.admission.enqueue(func() {
		r.GatewayAt = s.k.Now()
		r.EngineAt = r.GatewayAt
		s.engine.Submit(r.PromptTok, r.OutputTok, r)
	})
}

func (s *DirectSystem) onEngineComplete(seq *serving.Sequence) {
	r := seq.Ctx.(*Req)
	s.k.Schedule(s.p.ResponseOverhead, func() {
		r.CompletedAt = s.k.Now()
		r.ObservedAt = r.CompletedAt
		if s.done != nil {
			s.done(r)
		}
	})
}

// PeakBatch reports the engine's largest running batch.
func (s *DirectSystem) PeakBatch() int { return s.engine.Stats().PeakBatch }

// ExtAPISystem is the Fig. 5 external cloud API: admissions are spaced by
// the service-side rate limit and served with a low, load-independent
// latency; the benchmark drives it closed-loop at the client concurrency
// the provider's limits allow.
type ExtAPISystem struct {
	k     *sim.Kernel
	m     serving.ExtAPIModel
	gap   *lane
	inSvc int
	queue []*Req
	done  func(*Req)
}

// NewExtAPISystem builds the external comparator.
func NewExtAPISystem(k *sim.Kernel, m serving.ExtAPIModel, done func(*Req)) *ExtAPISystem {
	return &ExtAPISystem{k: k, m: m, gap: newLane(k, m.AdmissionGap()), done: done}
}

// Arrive is the client sending a request.
func (s *ExtAPISystem) Arrive(r *Req) {
	r.ArrivalAt = s.k.Now()
	s.gap.enqueue(func() { s.tryServe(r) })
}

func (s *ExtAPISystem) tryServe(r *Req) {
	if s.m.MaxConcurrent > 0 && s.inSvc >= s.m.MaxConcurrent {
		s.queue = append(s.queue, r)
		return
	}
	s.inSvc++
	r.GatewayAt = s.k.Now()
	r.EngineAt = r.GatewayAt
	r.OutputTok = s.m.ScaledOutput(r.OutputTok)
	s.k.Schedule(s.m.ServiceTime(r.OutputTok), func() {
		r.CompletedAt = s.k.Now()
		r.ObservedAt = r.CompletedAt
		s.inSvc--
		if len(s.queue) > 0 {
			next := s.queue[0]
			s.queue = s.queue[1:]
			s.tryServe(next)
		}
		if s.done != nil {
			s.done(r)
		}
	})
}
