package desmodel

import (
	"time"

	"github.com/argonne-first/first/internal/scheduler"
	"github.com/argonne-first/first/internal/sim"
)

// AutoScaleParams tune the Fig4-style auto-scaler: each (cluster, model)
// deployment is a pool of 1..MaxInstances engine incarnations, grown when
// sustained backlog exceeds a high-water mark and shrunk when the pool sits
// under a low-water mark — every growth step paying the scheduler's real
// Queued→Starting→Running cold-start path, every shrink step reusing the
// drain/migrate machinery (or cancelling an incarnation still queued at the
// scheduler, which is free).
//
// The watermarks are queue depth per live instance — the aggregate
// utilization proxy the routing layer already exposes: an instance pool with
// depth below LoWater×instances is mostly idle, one above HiWater×instances
// is falling behind. Both directions require the condition to hold for a
// sustained window (HiSustain/LoSustain consecutive Interval ticks) so a
// single bursty interval cannot thrash the pool.
type AutoScaleParams struct {
	// MaxInstances caps the pool (counting queued, loading, serving, and
	// draining incarnations). ≤ 1 disables the scaler: pools are pinned at
	// one demand-driven instance, the pre-autoscaler behaviour.
	MaxInstances int
	// Interval is the policy evaluation cadence (one deterministic kernel
	// event per cluster per interval).
	Interval time.Duration
	// HiWater is the queue depth per live instance above which the pool is
	// falling behind; LoWater the depth below which it is underused.
	// withDefaults clamps LoWater to HiWater/2: with the bands overlapping,
	// a scale-up's depth (> HiWater×live) could immediately satisfy the
	// scale-down condition at live+1 and the pool would oscillate forever,
	// cancelling every incarnation before its prologue completes — a
	// livelock the randomized property sweep actually caught.
	HiWater float64
	LoWater float64
	// HiSustain / LoSustain are how many consecutive ticks the condition
	// must hold before the scaler acts.
	HiSustain int
	LoSustain int

	// Predictive arms the forecast-driven pre-warm paths (doc.go
	// "Predictive scaling & drain-aware routing"): each deployment feeds a
	// Holt forecaster with per-tick arrival counts and starts an
	// incarnation early when the projection one cold-start ahead crosses
	// HiWater — and pre-warms a replacement one cold-start before a
	// serving incarnation's walltime drain. False (the zero value) keeps
	// the purely reactive PR 5 policy byte-for-byte.
	Predictive bool
	// ForecastAlpha / ForecastBeta are the Holt smoothing coefficients
	// (level / trend) for the arrival forecaster; zero values take the
	// forecast defaults. Only read when Predictive is set.
	ForecastAlpha float64
	ForecastBeta  float64
}

// DefaultAutoScaleParams are the autoscale experiment family's knobs: grow
// past 16 queued per instance held for 2 ticks, shrink under 2 per instance
// held for 4 ticks, evaluated every 10 s, up to 4 instances per model.
func DefaultAutoScaleParams() AutoScaleParams {
	return AutoScaleParams{
		MaxInstances: 4,
		Interval:     10 * time.Second,
		HiWater:      16,
		LoWater:      2,
		HiSustain:    2,
		LoSustain:    4,
	}
}

// withDefaults normalizes the policy: a zero value stays disabled
// (MaxInstances 1); an enabled scaler gets the default cadence and
// watermarks for any knob left unset.
func (s AutoScaleParams) withDefaults() AutoScaleParams {
	if s.MaxInstances <= 1 {
		s.MaxInstances = 1
		return s
	}
	d := DefaultAutoScaleParams()
	if s.Interval <= 0 {
		s.Interval = d.Interval
	}
	if s.HiWater <= 0 {
		s.HiWater = d.HiWater
	}
	if s.LoWater <= 0 {
		s.LoWater = d.LoWater
	}
	// Non-overlapping bands: scale-up lifts depth-per-instance from just
	// above HiWater at live to HiWater×(live-1)/live ≥ HiWater/2 at live+1,
	// so LoWater ≤ HiWater/2 guarantees a growth step can never satisfy the
	// shrink condition on the next tick.
	if s.LoWater > s.HiWater/2 {
		s.LoWater = s.HiWater / 2
	}
	if s.HiSustain <= 0 {
		s.HiSustain = d.HiSustain
	}
	if s.LoSustain <= 0 {
		s.LoSustain = d.LoSustain
	}
	if s.Predictive {
		if s.ForecastAlpha <= 0 || s.ForecastAlpha > 1 {
			s.ForecastAlpha = defaultForecastAlpha
		}
		if s.ForecastBeta <= 0 || s.ForecastBeta > 1 {
			s.ForecastBeta = defaultForecastBeta
		}
	}
	return s
}

// armScaler starts the cluster's periodic scale evaluation: one event per
// Interval visiting every deployment pool in slice order (deterministic,
// allocation-free at steady state). Like the background-job loop it
// self-schedules forever; drivers bound runs with Stop or Run(until).
func (c *fedCluster) armScaler() {
	interval := c.f.p.Scale.Interval
	var tick func()
	tick = func() {
		for _, d := range c.deps {
			d.scaleTick()
		}
		c.k.Schedule(interval, tick)
	}
	c.k.Schedule(interval, tick)
}

// liveCount is the pool's accepting-traffic membership: queued, loading, or
// serving incarnations. Draining ones are on their way out.
func (d *fedDep) liveCount() int {
	n := 0
	for _, in := range d.insts {
		if in.state != instDraining {
			n++
		}
	}
	return n
}

// servingCount counts instances actually accepting work — the capacity the
// routing layer may advertise (EndpointInfo.Instances): a queued or loading
// incarnation is minutes of prologue+load away from helping, and counting
// it would steer the ladder onto a still-backed-up pool.
func (d *fedDep) servingCount() int {
	n := 0
	for _, in := range d.insts {
		if in.state == instServing {
			n++
		}
	}
	return n
}

// pickServing returns the least-loaded serving instance (earliest pool
// member wins ties), or nil when nothing serves. A cordoned instance —
// one flagged ahead of its imminent walltime drain (CordonLead) — is
// passed over while any uncordoned sibling serves, and used only as the
// last resort: capacity that exists must never park a request. With no
// cordons (the zero-value config) the selection is unchanged.
// Allocation-free: this is the per-request instance-selection hot path.
//
//first:hotpath pinned by the scaler AllocsPerRun sweep (autoscale_test.go)
func (d *fedDep) pickServing() *fedInstance {
	var best, cordoned *fedInstance
	for _, in := range d.insts {
		if in.state != instServing {
			continue
		}
		if in.cordoned {
			if cordoned == nil || in.eng.Depth() < cordoned.eng.Depth() {
				cordoned = in
			}
			continue
		}
		if best == nil || in.eng.Depth() < best.eng.Depth() {
			best = in
		}
	}
	if best != nil {
		return best
	}
	return cordoned
}

// notePool records pool growth against the per-dep and per-cluster peaks
// (the property suite's [1, MaxInstances] bound and the report's
// peak-instances column).
func (d *fedDep) notePool() {
	if n := len(d.insts); n > d.peakPool {
		d.peakPool = n
	}
	total := 0
	for _, dep := range d.c.deps {
		total += len(dep.insts)
	}
	if total > d.c.peakInstances {
		d.c.peakInstances = total
	}
}

// scaleTick is one policy evaluation for this deployment pool. The decision
// path is allocation-free; only an actual scale-up allocates (the new
// incarnation and its scheduler job).
//
//first:hotpath pinned by the scaler AllocsPerRun sweep (autoscale_test.go)
func (d *fedDep) scaleTick() {
	p := &d.f.p.Scale
	live := d.liveCount()
	if live != d.lastLive {
		// The pool changed size through any path since the last tick — a
		// drain-driven shrink, a hard kill, a demand-driven start. A streak
		// measured against the old size must not trigger an immediate
		// decision against the new one: both watermarks are per-instance,
		// so the condition has to re-prove itself at the new denominator.
		// The refusal latch deliberately survives this reset: a pool pinned
		// at MaxInstances under one standing backlog churns through walltime
		// drains and replacements without the episode ever ending, and each
		// churn re-counting the same refusal would inflate ScaleRefused in
		// proportion to churn rate rather than demand.
		d.hiStreak, d.loStreak = 0, 0
		d.lastLive = live
	}
	if p.Predictive {
		// One sample per tick: arrivals routed here and completions served
		// here since the previous evaluation. Observed before any early
		// return so the forecast state never gaps.
		d.fcArrive.Observe(float64(d.arrivedTick))
		d.fcServe.Observe(float64(d.servedTick))
		d.arrivedTick, d.servedTick = 0, 0
	}
	if live == 0 {
		// Nothing running and nothing on the way: demand-driven starts own
		// this regime; the scaler only resets its hysteresis.
		d.hiStreak, d.loStreak = 0, 0
		d.hiRefused, d.hiBreak = false, 0
		return
	}
	depth := float64(d.depth())
	if depth > p.HiWater*float64(live) {
		d.loStreak, d.hiBreak = 0, 0
		if d.hiStreak++; d.hiStreak >= p.HiSustain {
			d.hiStreak = 0
			if len(d.insts) < p.MaxInstances {
				// Deliberately not clearing hiRefused: a walltime drain can
				// dip a capped pool below MaxInstances mid-peak, and the
				// refill that follows is the same standing episode, not a
				// new one. Only the condition breaking ends the episode.
				d.c.scaleUps++
				d.startInstance()
			} else if !d.hiRefused {
				// One refusal per sustained episode: the pool is pinned at
				// MaxInstances and re-counting the same standing condition
				// every HiSustain window would inflate ScaleRefused without
				// carrying information. The latch clears only once the
				// condition has been gone for HiSustain ticks — neither
				// pool churn at the cap nor a one-tick flap of the
				// watermark ends the episode.
				d.hiRefused = true
				d.c.scaleRefused++
			}
		}
		return
	}
	d.hiStreak = 0
	if d.hiRefused {
		// Symmetric hysteresis on the way out: the episode only ends after
		// the hi condition stays absent as long as it had to stand to act.
		if d.hiBreak++; d.hiBreak >= p.HiSustain {
			d.hiRefused, d.hiBreak = false, 0
		}
	}
	if p.Predictive && len(d.insts) < p.MaxInstances && !d.hasUpcoming() &&
		d.projectedDepth(depth, live) > p.HiWater*float64(live) {
		// The reactive condition does not hold yet, but the forecast one
		// cold-start ahead says it will: start the incarnation now so it is
		// serving — not queued behind a prologue — when the backlog lands.
		d.loStreak = 0
		d.c.preWarms++
		d.startInstance()
		return
	}
	if live > 1 && depth < p.LoWater*float64(live) {
		if d.loStreak++; d.loStreak >= p.LoSustain {
			if d.tryScaleDown() {
				d.loStreak = 0
			} else {
				// No drainable candidate this tick (everything mid-load):
				// stay armed and retry next interval.
				d.loStreak = p.LoSustain
			}
		}
	} else {
		d.loStreak = 0
	}
}

// hasUpcoming reports whether an incarnation is already on its way up
// (queued at the scheduler or loading weights). The predictive paths
// refuse to stack a second cold start behind one in flight: the forecast
// cannot know how much of the projected backlog the upcoming instance
// will absorb until it serves.
func (d *fedDep) hasUpcoming() bool {
	for _, in := range d.insts {
		if in.state == instQueued || in.state == instLoading {
			return true
		}
	}
	return false
}

// projectedDepth is the forecast queue depth one cold-start horizon ahead:
// today's depth, plus the arrivals the Holt forecaster expects during the
// horizon, minus the completions the service-rate EWMA expects the current
// pool to absorb. The horizon is the deployment's full cold-start duration
// (prologue + weights load) expressed in scaler ticks — exactly the lead
// time a scale-up decision needs to hide.
func (d *fedDep) projectedDepth(depth float64, live int) float64 {
	p := &d.f.p.Scale
	h := int(d.coldStart / p.Interval)
	if h < 1 {
		h = 1
	}
	proj := depth + d.fcArrive.PredictSum(h) - d.fcServe.Level()*float64(h)
	if proj < 0 {
		return 0
	}
	return proj
}

// preWarmReplacement fires one cold-start duration before a serving
// incarnation's walltime drain: if the incarnation is still the one the
// timer was armed for and the pool has standing work and room, its
// replacement starts now — so when the drain fires, the pool hands over to
// a serving sibling instead of parking requests behind a fresh prologue.
// Unlike the watermark branch, a sibling already on the way up does NOT
// block this: in a churning pool that sibling is usually replacing a
// different dying incarnation, and this drain is certain (walltime), not
// speculative. Idle pools deliberately ride the drain down: pre-warming a
// replacement nobody needs would defeat scale-to-cold.
func (d *fedDep) preWarmReplacement(j *scheduler.Job, in *fedInstance) {
	if in.job != j || in.state != instServing {
		return
	}
	if d.depth() == 0 || len(d.insts) >= d.f.p.Scale.MaxInstances {
		return
	}
	d.c.preWarms++
	d.startInstance()
}

// tryScaleDown shrinks the pool by one: it cancels an incarnation still
// queued at the scheduler when one exists (free — no GPUs held, no work
// placed), otherwise drains the emptiest serving instance through the
// regular drain/migrate machinery. It never targets the pool's only live
// instance — a model with waiting work keeps at least one incarnation.
func (d *fedDep) tryScaleDown() bool {
	if d.liveCount() <= 1 {
		return false
	}
	if len(d.pending) > 0 {
		// Parked demand means nothing serves yet: shrinking now would only
		// delay the incarnation that will absorb it.
		return false
	}
	for _, in := range d.insts {
		if in.state == instQueued && in.job.State() == scheduler.Queued {
			// Only jobs still waiting in the scheduler queue are cancelled;
			// one that reached Starting holds its allocation and is about to
			// serve — killing it would forfeit the prologue already paid
			// (and, under a thrashing config, could starve the model).
			d.c.scaleDowns++
			// Cancel ends the job synchronously: onJobEnd detaches the
			// incarnation before this returns.
			d.c.sched.Cancel(in.job.ID)
			return true
		}
	}
	var victim *fedInstance
	for _, in := range d.insts {
		if in.state == instServing && (victim == nil || in.eng.Depth() < victim.eng.Depth()) {
			victim = in
		}
	}
	if victim == nil {
		return false // every live instance is still loading; retry next tick
	}
	victim.beginDrain(victim.job, true)
	return true
}

// ScalerMicro builds a steady-state deployment (one serving instance, queue
// depth pinned between the watermarks so ticks decide but never act) and
// returns the scaler's two hot-path operations — one policy evaluation and
// one instance selection — for the substrate micro-benchmark record.
// first-bench emits them into BENCH_<n>.json as scaler_tick / scaler_pick,
// where `make bench-diff` pins both at 0 allocs/op.
func ScalerMicro() (tick, pick func()) {
	k := sim.NewKernel()
	p := FederationParams{
		Clusters:      1,
		ServeWalltime: 1e6 * time.Second, // no walltime churn while measuring
		Scale:         AutoScaleParams{MaxInstances: 4},
	}
	f := NewFederation(k, p, nil)
	// Eight requests with effectively endless generation: depth holds at 8,
	// between LoWater (2) and HiWater (16), so every tick takes the
	// no-action decision path.
	for i := 0; i < 8; i++ {
		f.Arrive(&Req{ID: i + 1, Model: 0, PromptTok: 64, OutputTok: 1 << 20})
	}
	k.Run(10 * time.Minute) // past prologue + weights load; batch decoding
	d := f.clusters[0].deps[0]
	return d.scaleTick, func() { d.pickServing() }
}
