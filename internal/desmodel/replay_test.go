package desmodel

import (
	"reflect"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/chaosnet"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/resilience"
	"github.com/argonne-first/first/internal/sim"
)

// replayTestParams mirrors the livefed twin shape: one model on the live
// inventory, self-scheduled churn off — every kill, restart, and GPU claim
// comes from the replayed schedule.
func replayTestParams(clusters int, s chaosnet.Schedule) FederationParams {
	p := DefaultFederationParams(clusters)
	p.Models = []perfmodel.ModelSpec{perfmodel.Default.MustLookup(perfmodel.Llama8B)}
	p.NodesPerCluster = 4
	p.GPUsPerNode = 4
	p.ServeWalltime = 100_000_000 * time.Second
	p.DrainGrace = time.Second
	p.BGPeriod = 0
	p.Replay = &ReplayParams{
		Schedule: s,
		Breaker: resilience.BreakerConfig{
			Window: 60 * time.Second, Buckets: 12, MinSamples: 4,
			FailureRate: 0.5, OpenFor: 10 * time.Second, HalfOpenProbes: 1,
		},
		MaxAttempts: 3,
	}
	return p
}

func replayTestSchedule() chaosnet.Schedule {
	s := chaosnet.Schedule{
		Seed:      0xbeef,
		Endpoints: 2,
		Requests:  400,
		Windows:   chaosnet.Windows{BurstEvery: 50, BurstLen: 15, PFault: 0.9},
		Events: []chaosnet.Event{
			{AtIndex: 100, Kind: chaosnet.EventKill, Endpoint: 1},
			{AtIndex: 180, Kind: chaosnet.EventRestart, Endpoint: 1},
			{AtIndex: 150, Kind: chaosnet.EventBGClaim, Endpoint: 0, GPUs: 12},
			{AtIndex: 250, Kind: chaosnet.EventBGRelease, Endpoint: 0},
			{AtIndex: 280, Kind: chaosnet.EventKill, Endpoint: 0},
			{AtIndex: 340, Kind: chaosnet.EventRestart, Endpoint: 0},
		},
	}
	s.Sort()
	return s
}

// replaySummary is everything a replay run should reproduce exactly.
type replaySummary struct {
	Completed  int
	Rungs      FedRungs
	Migrations int64
	Trips      int64
	HardKills  int
	ColdStarts int
	PerReq     []int // per-request migration counts
}

func runReplayOnce(t *testing.T, s chaosnet.Schedule) replaySummary {
	t.Helper()
	k := sim.NewKernel()
	n := s.Requests
	completed := 0
	f := NewFederation(k, replayTestParams(s.Endpoints, s), func(*Req) { completed++ })
	reqs := make([]*Req, n)
	for i := 0; i < n; i++ {
		i := i
		reqs[i] = &Req{ID: i + 1, Model: 0, PromptTok: 32, OutputTok: 8}
		// 10 s gaps keep the kill indices well past the pools' ~30 s boot,
		// so kills land on running instances like the live storm's do.
		k.Schedule(time.Duration(i)*10*time.Second, func() {
			f.ReplayAdvance(i)
			f.Arrive(reqs[i])
		})
	}
	k.Run(0)
	sum := replaySummary{
		Completed:  completed,
		Rungs:      f.Rungs(),
		Migrations: f.Migrations(),
		Trips:      f.ReplayBreakerTrips(),
	}
	for _, cs := range f.ClusterStats() {
		sum.HardKills += cs.HardKills
		sum.ColdStarts += cs.ColdStarts
	}
	for _, r := range reqs {
		sum.PerReq = append(sum.PerReq, r.Migrations)
	}
	return sum
}

// TestReplayConservesAndReruns pins the two replay contracts: every
// replayed request completes even though the schedule kills every pool
// mid-run (the DES conserves requests), and two replays of the same
// schedule are identical down to per-request migration counts.
func TestReplayConservesAndReruns(t *testing.T) {
	s := replayTestSchedule()
	a := runReplayOnce(t, s)
	b := runReplayOnce(t, s)
	if a.Completed != s.Requests {
		t.Errorf("completed %d of %d replayed requests", a.Completed, s.Requests)
	}
	if a.HardKills == 0 {
		t.Error("kill events produced no hard kills")
	}
	if a.ColdStarts == 0 {
		t.Error("restart events produced no cold starts")
	}
	if a.Migrations == 0 {
		t.Error("fault windows produced no migrations")
	}
	if a.Trips == 0 {
		t.Error("fault windows never tripped a replay breaker")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("replay reruns diverged:\n  a=%+v\n  b=%+v", a, b)
	}
}

// TestReplayEventsGateOnIndex verifies the index time base: a schedule
// event fires exactly when ReplayAdvance crosses its index, not before —
// the same ordering the live driver uses (churn first, then issue).
func TestReplayEventsGateOnIndex(t *testing.T) {
	s := chaosnet.Schedule{
		Seed: 1, Endpoints: 2, Requests: 10,
		Events: []chaosnet.Event{
			{AtIndex: 5, Kind: chaosnet.EventKill, Endpoint: 1},
			{AtIndex: 8, Kind: chaosnet.EventRestart, Endpoint: 1},
		},
	}
	s.Sort()
	k := sim.NewKernel()
	f := NewFederation(k, replayTestParams(2, s), func(*Req) {})
	// Bounded horizons: k.Run(0) would drain the pre-started pools' far-
	// future serve-walltime expiries too and tear everything down.
	k.Run(time.Minute) // let the pre-started pools boot
	alive := func() int { return len(f.clusters[1].deps[0].insts) }
	if alive() == 0 {
		t.Fatal("pool 1 not pre-started")
	}
	k.Schedule(0, func() { f.ReplayAdvance(4) })
	k.Run(2 * time.Minute)
	if alive() == 0 {
		t.Fatal("kill fired before its index")
	}
	k.Schedule(0, func() { f.ReplayAdvance(5) })
	k.Run(3 * time.Minute)
	if alive() != 0 {
		t.Fatal("kill did not fire at its index")
	}
	k.Schedule(0, func() { f.ReplayAdvance(8) })
	k.Run(4 * time.Minute)
	if alive() == 0 {
		t.Fatal("restart did not revive the pool")
	}
}
