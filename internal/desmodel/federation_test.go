package desmodel

import (
	"reflect"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/serving"
	"github.com/argonne-first/first/internal/sim"
)

// fedTestParams shrinks the scenario for unit tests: fast churn, no
// background jobs unless a test wants them.
func fedTestParams(clusters int) FederationParams {
	p := DefaultFederationParams(clusters)
	p.ServeWalltime = 60 * time.Second
	p.DrainGrace = 20 * time.Second
	p.BGPeriod = 0 // no background churn unless the test opts in
	return p
}

func fedReq(id, model, prompt, output int) *Req {
	return &Req{ID: id, Model: model, PromptTok: prompt, OutputTok: output}
}

// TestFederationColdStartLifecycle pushes one request through the full
// Queued→Starting→Running lifecycle: the cold start must charge prologue +
// weights load before the request is served.
func TestFederationColdStartLifecycle(t *testing.T) {
	k := sim.NewKernel()
	var got []*Req
	f := NewFederation(k, fedTestParams(2), func(r *Req) { got = append(got, r) })
	r := fedReq(1, 0, 32, 8)
	k.Schedule(0, func() { f.Arrive(r) })
	k.Run(0)
	if len(got) != 1 || got[0] != r {
		t.Fatalf("completed %d requests, want the 1 submitted", len(got))
	}
	p := f.p
	minLatency := p.Prologue + p.Models[0].LoadTime(p.GPU)
	if r.Latency() < minLatency {
		t.Errorf("cold-start latency %v < prologue+load %v", r.Latency(), minLatency)
	}
	if rungs := f.Rungs(); rungs.Capacity != 1 || rungs.Active != 0 {
		t.Errorf("cold start rungs = %+v, want exactly one capacity decision", rungs)
	}
	stats := f.ClusterStats()
	if stats[0].ColdStarts+stats[1].ColdStarts != 1 {
		t.Errorf("cold starts = %+v, want 1 across clusters", stats)
	}
}

// TestFederationActiveRouting verifies the ladder's first rung: once a model
// is active somewhere, later requests join it instead of cold-starting
// another cluster.
func TestFederationActiveRouting(t *testing.T) {
	k := sim.NewKernel()
	done := 0
	f := NewFederation(k, fedTestParams(4), func(*Req) { done++ })
	for i := 0; i < 50; i++ {
		r := fedReq(i+1, 0, 32, 8)
		k.Schedule(time.Duration(i)*time.Second, func() { f.Arrive(r) })
	}
	k.Run(0)
	if done != 50 {
		t.Fatalf("completed %d/50", done)
	}
	rungs := f.Rungs()
	if rungs.Capacity != 1 {
		t.Errorf("capacity decisions = %d, want 1 (only the first cold start)", rungs.Capacity)
	}
	if rungs.Active != 49 {
		t.Errorf("active decisions = %d, want 49", rungs.Active)
	}
	coldStarts := 0
	for _, cs := range f.ClusterStats() {
		coldStarts += cs.ColdStarts
	}
	if coldStarts != 1 {
		t.Errorf("cold starts = %d, want 1 (rung 1 concentrates load)", coldStarts)
	}
}

// TestFederationDrainMigration runs traffic past the serve walltime: the
// deployment must drain and unserved requests must migrate to another
// cluster (counted, stamped, and eventually completed).
func TestFederationDrainMigration(t *testing.T) {
	k := sim.NewKernel()
	p := fedTestParams(2)
	p.ServeWalltime = 20 * time.Second
	var reqs []*Req
	completed := 0
	f := NewFederation(k, p, func(*Req) { completed++ })
	// A saturating burst: more generation work than one walltime can serve,
	// so the drain always catches waiting requests, which must migrate.
	n := 300
	for i := 0; i < n; i++ {
		r := fedReq(i+1, 0, 64, 300)
		reqs = append(reqs, r)
		k.Schedule(time.Duration(i)*50*time.Millisecond, func() { f.Arrive(r) })
	}
	k.Run(0)
	if completed != n {
		t.Fatalf("completed %d/%d", completed, n)
	}
	drains := 0
	for _, cs := range f.ClusterStats() {
		drains += cs.Drains
	}
	if drains == 0 {
		t.Error("no drains across 3 serve walltimes")
	}
	if f.Migrations() == 0 {
		t.Error("no migrations despite drains under steady load")
	}
	migrated := 0
	for _, r := range reqs {
		if r.Migrations > 0 {
			migrated++
			if r.ObservedAt == 0 {
				t.Fatalf("migrated request %d never completed", r.ID)
			}
		}
	}
	if int64(migrated) > f.Migrations() {
		t.Errorf("stamped %d migrated requests > %d recorded migrations", migrated, f.Migrations())
	}
}

// TestFederationHardKill forces a running batch past drain grace: the
// scheduler's real walltime timer must TimedOut the job and the surviving
// requests must migrate and still complete.
func TestFederationHardKill(t *testing.T) {
	k := sim.NewKernel()
	p := fedTestParams(2)
	p.DrainGrace = 5 * time.Second
	completed := 0
	f := NewFederation(k, p, func(*Req) { completed++ })
	// A warm-up request cold-starts the deployment; a ~30s generation then
	// arrives late in the walltime, so it cannot drain within the 5s grace
	// (killed, migrated) but does complete on the fresh incarnation it
	// migrates to.
	warm := fedReq(1, 0, 32, 8)
	k.Schedule(0, func() { f.Arrive(warm) })
	long := fedReq(2, 0, 64, 5_000)
	k.Schedule(88*time.Second, func() { f.Arrive(long) })
	k.Run(0)
	if completed != 2 {
		t.Fatalf("completed %d/2", completed)
	}
	kills := 0
	for _, cs := range f.ClusterStats() {
		kills += cs.HardKills
	}
	if kills == 0 {
		t.Error("no hard kill despite a batch that cannot drain within grace")
	}
	if long.Migrations == 0 {
		t.Error("the long request survived the kill without migrating")
	}
}

// TestFederationDeterministicRerun re-runs an identical scenario (fresh
// kernel, background churn enabled) and requires identical counters and
// per-request timings — the cell-level property the experiment fleet's
// differential suite scales up.
func TestFederationDeterministicRerun(t *testing.T) {
	run := func(q sim.QueueKind) ([]sim.Time, FedRungs, int64) {
		k := sim.NewKernelWith(q)
		k.MaxEvents = 50_000_000
		p := fedTestParams(3)
		p.BGPeriod = 40 * time.Second
		p.BGStagger = 10 * time.Second
		p.BGWalltime = 25 * time.Second
		p.BGGPUs = 4
		n := 500
		done := 0
		// Background jobs self-schedule forever: stop at the last completion
		// like the open-loop experiment driver does.
		f := NewFederation(k, p, func(*Req) {
			if done++; done == n {
				k.Stop()
			}
		})
		rng := sim.NewRNG(7)
		var reqs []*Req
		for i := 0; i < n; i++ {
			r := fedReq(i+1, i%len(p.Models), 16+rng.Intn(64), 4+rng.Intn(24))
			reqs = append(reqs, r)
			k.Schedule(time.Duration(i)*200*time.Millisecond, func() { f.Arrive(r) })
		}
		k.Run(0)
		times := make([]sim.Time, len(reqs))
		for i, r := range reqs {
			times[i] = r.ObservedAt
		}
		return times, f.Rungs(), f.Migrations()
	}
	t1, r1, m1 := run(sim.QueueCalendar)
	t2, r2, m2 := run(sim.QueueCalendar)
	t3, r3, m3 := run(sim.QueueHeap)
	if !reflect.DeepEqual(t1, t2) || r1 != r2 || m1 != m2 {
		t.Error("federation run is not deterministic across reruns")
	}
	if !reflect.DeepEqual(t1, t3) || r1 != r3 || m1 != m3 {
		t.Error("federation diverges between calendar and heap kernels")
	}
}

// TestKernelClockPanicsOnSleep pins the contract: DES-driven components must
// use deterministic timers, never blocking sleeps.
func TestKernelClockPanicsOnSleep(t *testing.T) {
	k := sim.NewKernel()
	c := kernelClock{k}
	if c.Now() != kernelEpoch {
		t.Errorf("kernelClock.Now at t=0 = %v, want epoch", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("Sleep did not panic")
		}
	}()
	c.Sleep(time.Second)
}

// TestEngineSimUndeliveredWindow pins the step→deliver gap: a sequence that
// completes in the in-flight iteration is out of Depth/EachRunning but
// visible via EachUndelivered until the delivery event fires — the window a
// hard-kill harvest must cover or its request is silently lost.
func TestEngineSimUndeliveredWindow(t *testing.T) {
	k := sim.NewKernel()
	p := DefaultFederationParams(2)
	delivered := 0
	e := MustEngineSim(k, p.Models[0], p.GPU, 0, func(*serving.Sequence) { delivered++ })
	short := &Req{ID: 1}
	long := &Req{ID: 2}
	e.Submit(8, 1, short)  // completes in the first iteration
	e.Submit(8, 100, long) // keeps the batch alive
	k.Run(time.Nanosecond) // runs the step event; the deliver is still queued
	if delivered != 0 {
		t.Fatalf("delivered %d mid-iteration", delivered)
	}
	if !e.DeliveryPending() {
		t.Fatal("DeliveryPending = false with a deliver event in flight")
	}
	var undelivered []*Req
	e.EachUndelivered(func(s *serving.Sequence) { undelivered = append(undelivered, s.Ctx.(*Req)) })
	if len(undelivered) != 1 || undelivered[0] != short {
		t.Fatalf("EachUndelivered = %v, want [short]", undelivered)
	}
	var running []*Req
	e.EachRunning(func(s *serving.Sequence) { running = append(running, s.Ctx.(*Req)) })
	if len(running) != 1 || running[0] != long {
		t.Fatalf("EachRunning = %v, want [long]", running)
	}
	// After delivery the window closes.
	k.Run(10 * time.Second)
	if delivered == 0 || e.DeliveryPending() && e.Depth() == 0 {
		t.Errorf("delivery did not land: delivered=%d pending=%v", delivered, e.DeliveryPending())
	}
	undelivered = undelivered[:0]
	e.EachUndelivered(func(s *serving.Sequence) { undelivered = append(undelivered, s.Ctx.(*Req)) })
	if e.Depth() == 0 && len(undelivered) != 0 {
		t.Errorf("EachUndelivered after idle = %v, want empty", undelivered)
	}
}

// TestFederationParamsDefaultsBGChurn pins withDefaults completing a
// partially-specified background-churn config: a BGPeriod without a
// BGWalltime must not produce immortal science jobs.
func TestFederationParamsDefaultsBGChurn(t *testing.T) {
	p := FederationParams{Clusters: 2, BGPeriod: 450 * time.Second}.withDefaults()
	if p.BGGPUs <= 0 || p.BGWalltime <= 0 || p.BGStagger <= 0 {
		t.Errorf("BG churn left incomplete: %+v", p)
	}
	// Off stays off.
	if p := (FederationParams{Clusters: 2}).withDefaults(); p.BGPeriod != 0 {
		t.Errorf("BGPeriod defaulted on: %v", p.BGPeriod)
	}
}
