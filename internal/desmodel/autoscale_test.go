package desmodel

import (
	"reflect"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/sim"
)

// scaleTestParams is a small, churn-free scenario with the scaler on: one
// model would do, but the default three keep the packing realistic. Walltime
// churn is pushed past every test horizon so only scaler actions move the
// pools.
func scaleTestParams(clusters, maxInst int) FederationParams {
	p := DefaultFederationParams(clusters)
	p.ServeWalltime = 1e6 * time.Second
	p.DrainGrace = 20 * time.Second
	p.BGPeriod = 0
	p.Scale = AutoScaleParams{
		MaxInstances: maxInst,
		Interval:     5 * time.Second,
		HiWater:      4,
		LoWater:      1,
		HiSustain:    2,
		LoSustain:    2,
	}
	return p
}

// floodModel schedules n long-generation requests for one model in a burst.
func floodModel(k *sim.Kernel, f *Federation, model, n, outputTok int) []*Req {
	reqs := make([]*Req, n)
	for i := 0; i < n; i++ {
		r := &Req{ID: i + 1, Model: model, PromptTok: 64, OutputTok: outputTok}
		reqs[i] = r
		k.Schedule(time.Duration(i)*100*time.Millisecond, func() { f.Arrive(r) })
	}
	return reqs
}

// TestAutoScaleUpOnSustainedBacklog pins the grow direction: a sustained
// backlog past the high-water mark must add instances through the real
// scheduler cold-start path, and every added instance must serve.
func TestAutoScaleUpOnSustainedBacklog(t *testing.T) {
	k := sim.NewKernel()
	p := scaleTestParams(2, 3)
	n := 120
	done := 0
	// Scaler ticks self-schedule forever: stop at the last completion, like
	// the open-loop experiment drivers.
	f := NewFederation(k, p, func(*Req) {
		if done++; done == n {
			k.Stop()
		}
	})
	floodModel(k, f, 0, n, 400)
	k.Run(0)
	if done != n {
		t.Fatalf("completed %d/%d", done, n)
	}
	ups, colds, peak := 0, 0, 0
	for _, cs := range f.ClusterStats() {
		ups += cs.ScaleUps
		colds += cs.ColdStarts
		if cs.PeakInstances > peak {
			peak = cs.PeakInstances
		}
	}
	if ups == 0 {
		t.Error("no scale-ups despite a sustained backlog")
	}
	if peak < 2 {
		t.Errorf("peak instances = %d, pool never grew", peak)
	}
	if colds <= ups {
		t.Errorf("cold starts = %d must exceed scale-ups = %d (the first instance is demand-driven)", colds, ups)
	}
	if f.Arrivals() != int64(n) || f.Completions() != int64(n) {
		t.Errorf("conservation: arrivals=%d completions=%d want %d", f.Arrivals(), f.Completions(), n)
	}
}

// TestAutoScaleDownWhenIdle pins the shrink direction: once the wave passes,
// the scaler must drain the pool back — but never below one instance.
func TestAutoScaleDownWhenIdle(t *testing.T) {
	k := sim.NewKernel()
	p := scaleTestParams(2, 3)
	done := 0
	f := NewFederation(k, p, func(*Req) { done++ })
	n := 120
	floodModel(k, f, 0, n, 400)
	// The burst ends; ticks keep firing, so bound the run by wall instead of
	// exhaustion and give the scaler time to shrink.
	k.Run(4000 * time.Second)
	if done != n {
		t.Fatalf("completed %d/%d", done, n)
	}
	downs := 0
	for _, cs := range f.ClusterStats() {
		downs += cs.ScaleDowns
	}
	if downs == 0 {
		t.Error("no scale-downs after demand stopped")
	}
	for _, c := range f.clusters {
		for _, d := range c.deps {
			if live := d.liveCount(); live > 1 {
				t.Errorf("cluster %d model %d still holds %d live instances after idling", c.idx, d.model, live)
			}
			if d.peakPool > p.Scale.MaxInstances {
				t.Errorf("cluster %d model %d peak pool %d exceeds MaxInstances %d", c.idx, d.model, d.peakPool, p.Scale.MaxInstances)
			}
		}
	}
}

// TestAutoScaleRefusedAtCap pins the MaxInstances cap: with a hopeless
// backlog and a pool of 2, further scale-up decisions must be refused and
// the pool must never exceed the cap.
func TestAutoScaleRefusedAtCap(t *testing.T) {
	k := sim.NewKernel()
	p := scaleTestParams(1, 2)
	n := 200
	done := 0
	f := NewFederation(k, p, func(*Req) {
		if done++; done == n {
			k.Stop()
		}
	})
	floodModel(k, f, 0, n, 600)
	k.Run(0)
	if done != n {
		t.Fatalf("completed %d/%d", done, n)
	}
	cs := f.ClusterStats()[0]
	if cs.ScaleRefused == 0 {
		t.Error("no refused scale-ups at the cap")
	}
	if cs.PeakInstances > 2*len(p.Models) {
		t.Errorf("peak instances %d exceeds cap × models", cs.PeakInstances)
	}
	for _, d := range f.clusters[0].deps {
		if d.peakPool > 2 {
			t.Errorf("model %d pool peaked at %d, cap is 2", d.model, d.peakPool)
		}
	}
}

// TestScaleDownNeverTargetsOnlyInstance pins the floor: a model whose single
// instance holds waiting work is never scaled down, no matter how far under
// the low-water mark it sits.
func TestScaleDownNeverTargetsOnlyInstance(t *testing.T) {
	k := sim.NewKernel()
	p := scaleTestParams(1, 3)
	p.Scale.HiWater = 1000 // never grow
	p.Scale.LoWater = 1000 // always "underused" — the floor must still hold
	done := 0
	f := NewFederation(k, p, func(*Req) { done++; k.Stop() })
	// A single long request keeps one instance busy with work for many
	// scaler intervals.
	r := &Req{ID: 1, Model: 0, PromptTok: 64, OutputTok: 20000}
	k.Schedule(0, func() { f.Arrive(r) })
	k.Run(0)
	if done != 1 {
		t.Fatalf("completed %d/1", done)
	}
	cs := f.ClusterStats()[0]
	if cs.ScaleDowns != 0 {
		t.Errorf("scaler drained the only instance %d time(s)", cs.ScaleDowns)
	}
	if cs.HardKills != 0 || cs.Drains != 0 {
		t.Errorf("unexpected churn: %+v", cs)
	}
}

// TestScalerAllocs pins the scaler hot path at zero allocations: the
// steady-state policy decision and the least-loaded instance selection must
// not allocate, including with a multi-instance pool.
func TestScalerAllocs(t *testing.T) {
	k := sim.NewKernel()
	p := scaleTestParams(2, 3)
	p.Scale.HiWater = 50 // wide band: the warm-up backlog stays inside it
	f := NewFederation(k, p, nil)
	// Two serving instances with standing work: grow the pool by hand (the
	// test owns the kernel, so startInstance runs the real cold-start path),
	// then park a steady batch on it.
	d := f.clusters[0].deps[0]
	for i := 0; i < 16; i++ {
		r := &Req{ID: i + 1, Model: 0, PromptTok: 64, OutputTok: 1 << 20}
		k.Schedule(0, func() { f.Arrive(r) })
	}
	k.Schedule(time.Second, func() { d.startInstance() })
	k.Run(10 * time.Minute)
	if got := len(d.insts); got != 2 {
		t.Fatalf("warm-up built %d instances, want 2", got)
	}
	if d.pickServing() == nil {
		t.Fatal("no serving instance after warm-up")
	}
	if allocs := testing.AllocsPerRun(200, func() { d.scaleTick() }); allocs != 0 {
		t.Errorf("scaleTick allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { d.pickServing() }); allocs != 0 {
		t.Errorf("pickServing allocates %.1f/op, want 0", allocs)
	}
}

// TestClusterStatsMidDrainStable is the regression for the end-of-run
// mid-drain path: a run that stops while an incarnation is draining must
// report stable stats — the draining incarnation's busy time counts exactly
// once, it is not a live pool member, and repeated snapshots are identical.
func TestClusterStatsMidDrainStable(t *testing.T) {
	k := sim.NewKernel()
	k.MaxEvents = 20_000_000
	p := scaleTestParams(1, 2)
	// A short serve walltime with a roomy grace: the drain catches a busy
	// batch and stays in flight for a long stretch of virtual time, without
	// the hard-kill timer cutting the scenario short.
	p.ServeWalltime = 60 * time.Second
	p.DrainGrace = 2000 * time.Second
	n := 80
	done := 0
	var f *Federation
	f = NewFederation(k, p, func(*Req) {
		if done++; done == n {
			k.Stop() // backstop: surfaces a missed mid-drain as a Fatal below
		}
	})
	// 30k-token generations: the batch is still decoding when the serve
	// walltime expires, so the drain reliably catches live work.
	floodModel(k, f, 0, n, 30000)
	// Stop the kernel the moment a drain is in flight with work still
	// running on the incarnation.
	d := f.clusters[0].deps[0]
	var probe func()
	probe = func() {
		for _, in := range d.insts {
			if in.state == instDraining && in.eng.Depth() > 0 {
				k.Stop()
				return
			}
		}
		k.Schedule(time.Second, probe)
	}
	k.Schedule(time.Second, probe)
	k.Run(0)
	if done >= n {
		t.Fatal("run finished before a mid-drain snapshot was possible")
	}
	s1 := f.ClusterStats()
	s2 := f.ClusterStats()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("ClusterStats is not a stable snapshot:\n1st %+v\n2nd %+v", s1, s2)
	}
	cs := s1[0]
	if cs.Drains+cs.ScaleDowns == 0 {
		t.Fatal("probe stopped without a drain in flight")
	}
	live := 0
	draining := 0
	for _, in := range d.insts {
		if in.state == instDraining {
			draining++
		}
	}
	for _, dep := range f.clusters[0].deps {
		live += dep.liveCount()
	}
	if draining == 0 {
		t.Fatal("no draining incarnation at stop time")
	}
	if cs.LiveInstances != live {
		t.Errorf("LiveInstances = %d, want %d (draining incarnations excluded)", cs.LiveInstances, live)
	}
	if cs.BusyGPUSeconds <= 0 {
		t.Error("mid-drain snapshot lost the draining incarnation's busy time")
	}
	// Resuming and finishing the run must conserve every request and only
	// grow the busy accounting (no double count when the drain retires).
	k.Run(0) // the done callback stops at the last completion
	if done != n {
		t.Fatalf("completed %d/%d after resume", done, n)
	}
	final := f.ClusterStats()[0]
	if final.BusyGPUSeconds < cs.BusyGPUSeconds {
		t.Errorf("busy accounting shrank across the drain retirement: %.1f -> %.1f", cs.BusyGPUSeconds, final.BusyGPUSeconds)
	}
	if f.Arrivals() != int64(n) || f.Completions() != int64(n) {
		t.Errorf("conservation after mid-drain resume: arrivals=%d completions=%d want %d", f.Arrivals(), f.Completions(), n)
	}
}

// TestAutoScalePropertyRandomConfigs is the randomized sweep: for arbitrary
// arrival shapes and watermark configs (including inverted ones), no request
// is ever lost or double-completed, pools never leave [1, MaxInstances], and
// the stats snapshot stays pure.
func TestAutoScalePropertyRandomConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is long")
	}
	rng := sim.NewRNG(20251015)
	for trial := 0; trial < 25; trial++ {
		maxInst := 1 + rng.Intn(4)
		p := DefaultFederationParams(1 + rng.Intn(3))
		p.ServeWalltime = time.Duration(30+rng.Intn(90)) * time.Second
		p.DrainGrace = time.Duration(5+rng.Intn(25)) * time.Second
		if rng.Bernoulli(0.5) {
			p.BGPeriod = time.Duration(40+rng.Intn(80)) * time.Second
			p.BGStagger = 10 * time.Second
			p.BGWalltime = 25 * time.Second
		} else {
			p.BGPeriod = 0
		}
		p.Scale = AutoScaleParams{
			MaxInstances: maxInst,
			Interval:     time.Duration(1+rng.Intn(10)) * time.Second,
			HiWater:      1 + 20*rng.Float64(),
			LoWater:      30 * rng.Float64(), // may exceed HiWater: thrash allowed, loss is not
			HiSustain:    1 + rng.Intn(3),
			LoSustain:    1 + rng.Intn(3),
		}
		k := sim.NewKernel()
		k.MaxEvents = 30_000_000
		n := 100 + rng.Intn(300)
		counts := make(map[*Req]int, n)
		done := 0
		f := NewFederation(k, p, func(r *Req) {
			counts[r]++
			if done++; done == n {
				k.Stop()
			}
		})
		models := len(p.Models)
		gapMean := float64(50+rng.Intn(450)) * float64(time.Millisecond)
		at := time.Duration(0)
		for i := 0; i < n; i++ {
			out := 4 + rng.Intn(60)
			if rng.Bernoulli(0.1) {
				out = 500 + rng.Intn(3000) // heavy tail forces drain overlap
			}
			r := &Req{ID: i + 1, Model: rng.Intn(models), PromptTok: 8 + rng.Intn(120), OutputTok: out}
			at += time.Duration(rng.Exp(gapMean))
			k.Schedule(at, func() { f.Arrive(r) })
		}
		k.Run(0)
		if done != n {
			t.Fatalf("trial %d: completed %d/%d (params %+v)", trial, done, n, p.Scale)
		}
		for r, c := range counts {
			if c != 1 {
				t.Fatalf("trial %d: request %d completed %d times", trial, r.ID, c)
			}
		}
		if f.Arrivals() != int64(n) || f.Completions() != int64(n) {
			t.Fatalf("trial %d: conservation broke: arrivals=%d completions=%d want %d",
				trial, f.Arrivals(), f.Completions(), n)
		}
		for _, c := range f.clusters {
			for _, d := range c.deps {
				if d.peakPool > maxInst {
					t.Fatalf("trial %d: pool peaked at %d, cap %d", trial, d.peakPool, maxInst)
				}
			}
		}
		s1, s2 := f.ClusterStats(), f.ClusterStats()
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("trial %d: ClusterStats not a pure snapshot", trial)
		}
	}
}

// TestAutoScaleArenaReuse pins arena recycling under the scaler: a scenario
// whose pools grow, shrink, and recycle engines mid-cell (Arena.Reclaim)
// must reproduce byte-identical timings and stats when its cell re-runs on
// the same arena with pooled engines.
func TestAutoScaleArenaReuse(t *testing.T) {
	run := func(a *Arena) ([]sim.Time, []FedClusterStats, FedRungs) {
		k := a.Begin()
		p := scaleTestParams(2, 3)
		done := 0
		n := 120
		var f *Federation
		f = NewFederationIn(a, p, func(*Req) {
			if done++; done == n {
				k.Stop()
			}
		})
		reqs := floodModel(k, f, 0, n, 400)
		k.Run(0)
		if done != n {
			t.Fatalf("completed %d/%d", done, n)
		}
		times := make([]sim.Time, n)
		for i, r := range reqs {
			times[i] = r.ObservedAt
		}
		return times, f.ClusterStats(), f.Rungs()
	}
	a := NewArena(sim.QueueCalendar)
	t1, s1, r1 := run(a)
	t2, s2, r2 := run(a) // second cell: engines drawn from the arena pool
	if !reflect.DeepEqual(t1, t2) || !reflect.DeepEqual(s1, s2) || r1 != r2 {
		t.Error("arena-recycled cell diverges from the fresh cell")
	}
	fresh := NewArena(sim.QueueCalendar)
	t3, s3, r3 := run(fresh)
	if !reflect.DeepEqual(t1, t3) || !reflect.DeepEqual(s1, s3) || r1 != r3 {
		t.Error("recycled arena diverges from a fresh arena")
	}
}
