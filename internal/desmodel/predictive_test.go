package desmodel

import (
	"testing"
	"time"

	"github.com/argonne-first/first/internal/sim"
)

// warmPoolAtDepth builds a one-cluster federation with the scaler on, grows
// model 0's pool to `insts` incarnations by hand, and parks `depth` endless
// requests on it — a steady state the tests can drive scaleTick against.
func warmPoolAtDepth(t *testing.T, maxInst, insts, depth int) (*sim.Kernel, *Federation, *fedDep) {
	t.Helper()
	k := sim.NewKernel()
	p := scaleTestParams(1, maxInst)
	p.Scale.HiWater = 1e9 // the warm-up backlog must not trip the scaler itself
	f := NewFederation(k, p, nil)
	d := f.clusters[0].deps[0]
	// Disarm the lo band for the warm-up too (post-construction, since
	// withDefaults would clamp a zero back up): an idle pool must survive
	// until the test hands it its own watermarks.
	f.p.Scale.LoWater = 0
	for i := 0; i < depth; i++ {
		r := &Req{ID: i + 1, Model: 0, PromptTok: 64, OutputTok: 1 << 20}
		k.Schedule(0, func() { f.Arrive(r) })
	}
	// The first incarnation is demand-driven (offer on the first arrival);
	// with no parked depth there is no demand, so start all of them by hand.
	first := 1
	if depth == 0 {
		first = 0
	}
	for i := first; i < insts; i++ {
		k.Schedule(time.Second, func() { d.startInstance() })
	}
	k.Run(10 * time.Minute) // past prologue + weights load
	if got := len(d.insts); got != insts {
		t.Fatalf("warm-up built %d instances, want %d", got, insts)
	}
	return k, f, d
}

// TestScaleRefusedOncePerEpisode pins the refused-at-cap accounting fix: a
// pool pinned at MaxInstances under one standing backlog counts exactly one
// refusal for the whole episode, where the pre-fix scaler re-counted it
// every HiSustain ticks — 6 times over the 12 ticks driven here. A second
// episode (condition breaks, then re-trips) counts a second refusal.
func TestScaleRefusedOncePerEpisode(t *testing.T) {
	_, f, d := warmPoolAtDepth(t, 2, 2, 16)
	f.p.Scale.HiWater = 4 // depth 16 > 4×2: the hi condition now stands
	for i := 0; i < 12; i++ {
		d.scaleTick()
	}
	cs := f.ClusterStats()[0]
	if cs.ScaleRefused != 1 {
		t.Fatalf("ScaleRefused = %d over one sustained at-cap episode, want 1 (pre-fix: 6)", cs.ScaleRefused)
	}
	if cs.ScaleUps != 0 || len(d.insts) != 2 {
		t.Fatalf("pool moved at the cap: ups=%d insts=%d", cs.ScaleUps, len(d.insts))
	}
	// A one-tick flap (watermark lifted for a single tick, then re-tripped)
	// is the same standing episode: the latch clears only after HiSustain
	// consecutive ticks without the condition, so no second count.
	f.p.Scale.HiWater = 1e9
	d.scaleTick()
	f.p.Scale.HiWater = 4
	for i := 0; i < 6; i++ {
		d.scaleTick()
	}
	if got := f.ClusterStats()[0].ScaleRefused; got != 1 {
		t.Fatalf("ScaleRefused = %d after a one-tick flap, want still 1", got)
	}
	// Break the episode for HiSustain consecutive ticks, then re-trip it:
	// the latch re-arms and counts exactly one more.
	f.p.Scale.HiWater = 1e9
	for i := 0; i < f.p.Scale.HiSustain; i++ {
		d.scaleTick()
	}
	f.p.Scale.HiWater = 4
	for i := 0; i < 6; i++ {
		d.scaleTick()
	}
	if got := f.ClusterStats()[0].ScaleRefused; got != 2 {
		t.Fatalf("ScaleRefused = %d after a second episode, want 2", got)
	}
}

// TestScaleStreakResetOnPoolChange pins the stale-streak fix: a streak
// accumulated against one pool size must not carry over a live-count change
// that happened through another path (here a walltime-style drain), or the
// next tick would act immediately against a denominator the condition never
// held for.
func TestScaleStreakResetOnPoolChange(t *testing.T) {
	t.Run("hiStreak", func(t *testing.T) {
		_, f, d := warmPoolAtDepth(t, 4, 2, 32)
		f.p.Scale.HiWater = 4 // 32 > 4×2 — and 32 > 4×1 after the shrink too
		d.scaleTick()         // hiStreak 1 of HiSustain 2
		if d.hiStreak != 1 {
			t.Fatalf("hiStreak = %d after one hi tick, want 1", d.hiStreak)
		}
		// A drain (not the scaler) removes one instance mid-streak.
		victim := d.pickServing()
		victim.beginDrain(victim.job, false)
		ups := f.ClusterStats()[0].ScaleUps
		d.scaleTick() // pre-fix: streak hits 2 and fires against the new size
		if got := f.ClusterStats()[0].ScaleUps; got != ups {
			t.Fatalf("scale-up fired on the first tick after a drain-driven shrink (ups %d -> %d): stale streak", ups, got)
		}
		if d.hiStreak != 1 {
			t.Fatalf("hiStreak = %d on the first tick at the new size, want 1", d.hiStreak)
		}
		d.scaleTick() // condition re-proven at the new size: now it may act
		if got := f.ClusterStats()[0].ScaleUps; got != ups+1 {
			t.Fatalf("scale-up did not fire once the streak re-proved (ups=%d, want %d)", got, ups+1)
		}
	})
	t.Run("loStreak", func(t *testing.T) {
		_, f, d := warmPoolAtDepth(t, 4, 3, 0) // three idle instances
		f.p.Scale.LoWater = 1e9                // always underused; LoSustain is 2
		d.scaleTick()                          // loStreak 1 of 2
		if d.loStreak != 1 {
			t.Fatalf("loStreak = %d after one lo tick, want 1", d.loStreak)
		}
		victim := d.pickServing()
		victim.beginDrain(victim.job, false) // drain-driven shrink mid lo-streak
		downs := f.ClusterStats()[0].ScaleDowns
		d.scaleTick() // pre-fix: loStreak hits 2 and shrinks again immediately
		if got := f.ClusterStats()[0].ScaleDowns; got != downs {
			t.Fatalf("scale-down fired on the first tick after a drain-driven shrink (downs %d -> %d): stale streak", downs, got)
		}
		if d.loStreak != 1 {
			t.Fatalf("loStreak = %d on the first tick at the new size, want 1", d.loStreak)
		}
	})
}

// predictiveRampRun drives one fixed ramp trace (arrival gaps tightening
// from 2 s down to 125 ms — backlog builds gradually, exactly the shape a
// trend forecast leads and a reactive watermark lags) through a one-cluster
// scenario and returns the run's stats plus the total sojourn time.
func predictiveRampRun(t *testing.T, predictive bool) (FedClusterStats, time.Duration, int64) {
	t.Helper()
	k := sim.NewKernel()
	k.MaxEvents = 50_000_000
	p := scaleTestParams(1, 4)
	// Room for the whole pool: the default 2×4-GPU inventory fits only two
	// TP-4 incarnations, and a scale-up pinned in the scheduler queue
	// blocks the pre-warm guard (hasUpcoming) for the rest of the run.
	p.NodesPerCluster = 8
	p.Scale.HiWater = 6
	p.Scale.Predictive = predictive
	n := 600
	done := 0
	var total time.Duration
	f := NewFederation(k, p, func(r *Req) {
		total += time.Duration(r.CompletedAt - r.ArrivalAt)
		if done++; done == n {
			k.Stop()
		}
	})
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		gap := 2*time.Second - time.Duration(i)*7800*time.Microsecond
		if gap < 125*time.Millisecond {
			gap = 125 * time.Millisecond
		}
		at += gap
		r := &Req{ID: i + 1, Model: 0, PromptTok: 64, OutputTok: 900}
		k.Schedule(at, func() { f.Arrive(r) })
	}
	k.Run(0)
	if done != n {
		t.Fatalf("completed %d/%d (predictive=%v)", done, n, predictive)
	}
	if f.Arrivals() != int64(n) || f.Completions() != int64(n) {
		t.Fatalf("conservation broke: arrivals=%d completions=%d want %d", f.Arrivals(), f.Completions(), n)
	}
	return f.ClusterStats()[0], total, f.Migrations()
}

// TestPredictivePreWarmHidesColdStart is the tentpole's core claim at unit
// scale: on the same ramp trace, the predictive scaler pre-warms ahead of
// the high-water mark and the fleet finishes the trace with strictly less
// total sojourn time than the reactive scaler — the hidden cold starts are
// exactly the difference.
func TestPredictivePreWarmHidesColdStart(t *testing.T) {
	reactive, reactiveTotal, _ := predictiveRampRun(t, false)
	predictive, predictiveTotal, _ := predictiveRampRun(t, true)
	if predictive.PreWarms == 0 {
		t.Fatal("predictive run recorded no pre-warms on a ramp trace")
	}
	if reactive.PreWarms != 0 {
		t.Fatalf("reactive run recorded %d pre-warms; the predictive path leaked", reactive.PreWarms)
	}
	if predictive.ColdStarts < predictive.ScaleUps+predictive.PreWarms {
		t.Fatalf("ColdStarts %d < ScaleUps %d + PreWarms %d: pre-warms bypassed the scheduler path",
			predictive.ColdStarts, predictive.ScaleUps, predictive.PreWarms)
	}
	if predictiveTotal >= reactiveTotal {
		t.Fatalf("predictive total sojourn %v not below reactive %v on the ramp", predictiveTotal, reactiveTotal)
	}
	if predictive.ScaleRefused > reactive.ScaleRefused {
		t.Fatalf("predictive refused-at-cap %d worse than reactive %d", predictive.ScaleRefused, reactive.ScaleRefused)
	}
}

// TestPredictiveOffIsByteIdenticalPath guards the zero-value contract at
// the state level: with Predictive off, a full run leaves every forecast
// accumulator untouched and records no pre-warms — there is no half-on
// state the reactive families could drift through.
func TestPredictiveOffIsByteIdenticalPath(t *testing.T) {
	reactive, _, _ := predictiveRampRun(t, false)
	if reactive.PreWarms != 0 {
		t.Fatalf("PreWarms = %d with Predictive off", reactive.PreWarms)
	}
	k := sim.NewKernel()
	p := scaleTestParams(1, 4)
	n := 40
	done := 0
	f := NewFederation(k, p, func(*Req) {
		if done++; done == n {
			k.Stop()
		}
	})
	floodModel(k, f, 0, n, 400)
	k.Run(0)
	for _, d := range f.clusters[0].deps {
		if d.fcArrive.Seeded() || d.fcServe.Seeded() {
			t.Fatal("forecast state observed samples with Predictive off")
		}
		for _, in := range d.insts {
			if in.cordoned {
				t.Fatal("instance cordoned with CordonLead unset")
			}
		}
	}
}

// TestCordonStopsRoutingBeforeDrain pins drain-aware routing in the DES:
// with the model serving on two clusters, cordoning all of cluster A's
// serving capacity steers new arrivals to cluster B; cordoning B too must
// still place the request (capacity/cordoned fallback) — drain-awareness
// never parks or loses work.
func TestCordonStopsRoutingBeforeDrain(t *testing.T) {
	k := sim.NewKernel()
	p := DefaultFederationParams(2)
	p.BGPeriod = 0
	p.ServeWalltime = 1e6 * time.Second
	served := 0
	f := NewFederation(k, p, func(*Req) { served++ })
	a, b := f.clusters[0], f.clusters[1]
	k.Schedule(0, func() { a.deps[0].startInstance(); b.deps[0].startInstance() })
	k.Run(10 * time.Minute)
	if a.deps[0].pickServing() == nil || b.deps[0].pickServing() == nil {
		t.Fatal("warm-up did not bring model 0 up on both clusters")
	}

	// Baseline: model 0's rotation starts at cluster A, both pools idle and
	// equal, so the depth tie-break keeps picking A.
	r1 := &Req{ID: 1, Model: 0, PromptTok: 64, OutputTok: 4}
	k.Schedule(0, func() { f.Arrive(r1) })
	k.Run(11 * time.Minute) // Run takes an absolute horizon
	if a.routed != 1 || b.routed != 0 {
		t.Fatalf("baseline routing went A=%d B=%d, want 1/0", a.routed, b.routed)
	}

	// Cordon all of A's serving capacity: the next arrival must go to B.
	for _, in := range a.deps[0].insts {
		if in.state == instServing {
			in.cordoned = true
		}
	}
	serving, cordoned, _ := a.deps[0].routingView()
	if serving != 0 || !cordoned {
		t.Fatalf("routingView after cordon = (%d, %v), want (0, true)", serving, cordoned)
	}
	r2 := &Req{ID: 2, Model: 0, PromptTok: 64, OutputTok: 4}
	k.Schedule(0, func() { f.Arrive(r2) })
	k.Run(12 * time.Minute)
	if b.routed != 1 {
		t.Fatalf("arrival after cordoning A routed to A (A=%d B=%d): ladder ignored the cordon", a.routed, b.routed)
	}

	// Cordon B as well: the request must still land somewhere and serve —
	// never refused, never parked behind the drain flag.
	for _, in := range b.deps[0].insts {
		if in.state == instServing {
			in.cordoned = true
		}
	}
	r3 := &Req{ID: 3, Model: 0, PromptTok: 64, OutputTok: 4}
	k.Schedule(0, func() { f.Arrive(r3) })
	k.Run(13 * time.Minute)
	if served != 3 {
		t.Fatalf("served %d/3: a fully-cordoned federation dropped work", served)
	}
	if r3.Migrations != 0 {
		t.Fatalf("fallback placement migrated %d times, want direct service", r3.Migrations)
	}
}

// TestCordonLeadFiresBeforeDrain pins the cordon event itself: with
// CordonLead set, a serving incarnation flags itself exactly one lead ahead
// of its walltime drain, and in-pool selection prefers an uncordoned
// sibling from that moment on.
func TestCordonLeadFiresBeforeDrain(t *testing.T) {
	k := sim.NewKernel()
	p := scaleTestParams(1, 2)
	p.ServeWalltime = 300 * time.Second
	p.CordonLead = 60 * time.Second
	f := NewFederation(k, p, nil)
	d := f.clusters[0].deps[0]
	// Disarm the lo band for the warm-up too (post-construction, since
	// withDefaults would clamp a zero back up): an idle pool must survive
	// until the test hands it its own watermarks.
	f.p.Scale.LoWater = 0
	k.Schedule(0, func() { d.startInstance() })
	// A sibling started later: its cordon window opens later, so during the
	// overlap the first instance is cordoned while the second still serves.
	k.Schedule(100*time.Second, func() { d.startInstance() })
	// The first incarnation serves from prologue+load = 43 s, so its walltime
	// drain lands at 343 s and its cordon flag at 283 s; the second serves
	// from 143 s and cordons at 383 s. Stop inside the overlap [283 s, 343 s)
	// where exactly one of the two is flagged.
	k.Run(300 * time.Second)

	first := d.insts[0]
	if first.state != instServing {
		t.Fatalf("first instance state = %d, want serving", first.state)
	}
	if !first.cordoned {
		t.Fatal("first instance not cordoned inside its CordonLead window")
	}
	second := d.insts[1]
	if second.cordoned {
		t.Fatal("second instance cordoned outside its lead window")
	}
	if got := d.pickServing(); got != second {
		t.Fatal("pickServing chose the cordoned instance over an uncordoned sibling")
	}
	serving, cordoned, drainingAt := d.routingView()
	if serving != 1 || cordoned {
		t.Fatalf("routingView = (%d, %v), want (1, false): one sibling still serves", serving, cordoned)
	}
	if drainingAt <= 0 || drainingAt > p.CordonLead {
		t.Fatalf("drainingAt = %v, want within (0, %v]", drainingAt, p.CordonLead)
	}
}
