package desmodel

// Schedule replay: the DES federation executing the *same* recorded churn
// schedule a live cell ran (ROADMAP's sim-vs-real calibration gap). The
// contract is index time: the arrival driver calls ReplayAdvance(i) before
// arrival i, which fires every schedule event due at i — deployment
// hard-kills and cold restarts through the real scheduler path, background
// GPU claims and releases — exactly when the live driver fired them before
// issuing request i. Fault windows need no events: routing draws the same
// pure Windows.Faulty(seed, index, endpoint, attempt) function the live
// endpoints drew, and a real resilience.Breaker per cluster (the live
// gateway's config, on the same logical one-second-per-request clock)
// turns those draws into the same avoidance decisions the live breaker
// trace shows. A drawn fault migrates the request to the next ladder
// candidate the way a live failover re-routes it, so migrations-per-request
// is the twin of the gateway's failover-attempts-per-request.

import (
	"time"

	"github.com/argonne-first/first/internal/chaosnet"
	"github.com/argonne-first/first/internal/federation"
	"github.com/argonne-first/first/internal/resilience"
	"github.com/argonne-first/first/internal/scheduler"
)

// ReplayParams attach a recorded live churn schedule to a Federation.
type ReplayParams struct {
	// Schedule is the executed live plan (sorted events, fault windows,
	// measured arrival rate).
	Schedule chaosnet.Schedule
	// Breaker mirrors the live gateway's per-endpoint breaker so the twin
	// trips, avoids, and re-probes on the same logical clock.
	Breaker resilience.BreakerConfig
	// MaxAttempts mirrors the live failover budget: after this many failed
	// placements the live gateway returns a typed error; the twin stops
	// routing the request the same way (it still completes — the DES
	// conserves requests — but counts no further rungs or migrations).
	MaxAttempts int
}

// replayEpoch anchors the logical breaker clock; the value is arbitrary,
// only deltas matter, but it matches the live harness for readable traces.
var replayEpoch = time.Unix(1_700_000_000, 0)

type replayKey struct{ idx, ep int }

// fedReplay is the per-run replay state.
type fedReplay struct {
	f        *Federation
	p        ReplayParams
	cur      *chaosnet.Cursor
	nowIdx   int
	breakers []*resilience.Breaker
	// bgJobs holds outstanding background claims per cluster, oldest first.
	bgJobs [][]*scheduler.Job
	// seen counts placement attempts per (request index, endpoint) so a
	// re-route re-draws, exactly like the live endpoint's attempt counter.
	seen map[replayKey]int

	sheds     int64 // all-breakers-open: live 503s, twin parks
	exhausted int64 // failover budget spent: live typed errors, twin parks
}

func newFedReplay(f *Federation, p ReplayParams) *fedReplay {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	rp := &fedReplay{
		f:      f,
		p:      p,
		cur:    p.Schedule.Cursor(),
		bgJobs: make([][]*scheduler.Job, len(f.clusters)),
		seen:   make(map[replayKey]int),
	}
	for range f.clusters {
		rp.breakers = append(rp.breakers, resilience.NewBreaker(p.Breaker))
	}
	return rp
}

// now is the logical breaker clock: one second per arrived request, the
// same tick the live harness advances per issued request.
func (rp *fedReplay) now() time.Time {
	return replayEpoch.Add(time.Duration(rp.nowIdx+1) * time.Second)
}

func (rp *fedReplay) attempt(idx, ep int) int {
	k := replayKey{idx, ep}
	a := rp.seen[k]
	rp.seen[k] = a + 1
	return a
}

// ReplayAdvance fires every scheduled churn event due at or before request
// index idx and advances the logical clock. The open-loop driver calls it
// just before each arrival; it is a no-op without a replay schedule.
func (f *Federation) ReplayAdvance(idx int) {
	rp := f.replay
	if rp == nil {
		return
	}
	rp.nowIdx = idx
	if f.par != nil {
		// Churn events mutate cluster state (scheduler kills, restarts, GPU
		// claims), so under the parallel mode each fires on its cluster's
		// shard, one cross-shard latency after the cursor reaches it — the
		// same propagation delay any live control-plane command pays.
		rp.cur.Advance(idx, func(ev chaosnet.Event) {
			if ev.Endpoint < 0 || ev.Endpoint >= len(f.clusters) {
				return
			}
			c := f.clusters[ev.Endpoint]
			f.par.send(0, c.shard, func() { rp.fire(ev) })
		})
		return
	}
	rp.cur.Advance(idx, rp.fire)
}

// ReplayBreakerTrips sums breaker trips across clusters (calibration
// column against the live gateway's trip count). Zero without replay.
func (f *Federation) ReplayBreakerTrips() int64 {
	if f.replay == nil {
		return 0
	}
	var n int64
	for _, b := range f.replay.breakers {
		n += b.Trips()
	}
	return n
}

func (rp *fedReplay) fire(ev chaosnet.Event) {
	if ev.Endpoint < 0 || ev.Endpoint >= len(rp.f.clusters) {
		return
	}
	c := rp.f.clusters[ev.Endpoint]
	switch ev.Kind {
	case chaosnet.EventKill:
		// Tear down every incarnation through the scheduler's explicit
		// failure path: onJobEnd sees Failed, harvests orphans, and
		// migrates them — the twin of Endpoint.Undeploy killing in-flight
		// work on the live side.
		for _, d := range c.deps {
			insts := append([]*fedInstance(nil), d.insts...)
			for _, in := range insts {
				if in.job != nil {
					c.sched.Fail(in.job.ID)
				}
			}
		}
	case chaosnet.EventRestart:
		// Cold-restart through the real scheduler path, like the live
		// Endpoint.Deploy → Submit → prologue → load.
		for _, d := range c.deps {
			if len(d.insts) == 0 {
				d.startInstance()
			}
		}
	case chaosnet.EventBGClaim:
		if ev.GPUs <= 0 {
			return
		}
		job, err := c.sched.Submit(scheduler.JobSpec{
			Name: "science-batch", User: "bg", GPUs: ev.GPUs,
			// Held until the matching release event, not a walltime: the
			// schedule's index clock is the shared time base.
			Walltime: 0,
		})
		if err != nil {
			panic(err)
		}
		rp.bgJobs[ev.Endpoint] = append(rp.bgJobs[ev.Endpoint], job)
		c.noteQueued()
	case chaosnet.EventBGRelease:
		if q := rp.bgJobs[ev.Endpoint]; len(q) > 0 {
			job := q[0]
			rp.bgJobs[ev.Endpoint] = q[1:]
			c.sched.Cancel(job.ID)
		}
	}
}

// routeReplay is route() under the replayed storm. Each placement attempt
// mirrors one live gateway attempt: candidates are filtered through the
// breakers (RouteAvoiding's CanAttempt scan), the chosen rung is counted,
// and the shared fault schedule decides whether the placement sticks. A
// fault — or a dead pool, the live "endpoint does not host" error — votes
// into the breaker and fails the request over to the next candidate.
func (f *Federation) routeReplay(r *Req) {
	rp := f.replay
	idx := r.ID - 1
	m := r.Model
	n := len(f.clusters)
	spec := &f.p.Models[m]
	now := rp.now()
	var avoided uint64
	attempts := 0
	order := make([]int, 0, n)
	for {
		infos := f.scratch[:0]
		order = order[:0]
		for i := 0; i < n; i++ {
			ci := (m + i) % n
			if avoided&(1<<uint(ci)) != 0 || !rp.breakers[ci].CanAttempt(now) {
				continue
			}
			infos = append(infos, f.clusters[ci].endpointInfo(m, spec))
			order = append(order, ci)
		}
		f.scratch = infos[:0]
		if len(infos) == 0 {
			// Every candidate is breaker-open or already failed this
			// request: the live gateway sheds with a 503 and counts no
			// rung. The twin conserves requests, so it parks the request
			// on the first-configured cluster to complete once that pool
			// revives — also without a rung count.
			rp.sheds++
			f.deliver(f.clusters[m%n], m, r)
			return
		}
		sel, reason, err := federation.Select(infos)
		if err != nil {
			panic(err) // unreachable: infos is non-empty
		}
		switch reason {
		case federation.ReasonActive:
			f.rungs.Active++
		case federation.ReasonCapacity:
			f.rungs.Capacity++
		default:
			f.rungs.FirstConf++
		}
		ci := order[sel]
		c := f.clusters[ci]
		if !rp.breakers[ci].Allow(now) {
			// Lost the half-open probe slot between scan and attempt
			// (cannot happen single-threaded, kept for safety).
			avoided |= 1 << uint(ci)
			continue
		}
		attempt := rp.attempt(idx, ci)
		faulty := idx >= 0 &&
			rp.p.Schedule.Windows.Faulty(rp.p.Schedule.Seed, idx, ci, n, attempt)
		// "Does the pool exist" is cluster state: live sequentially, the
		// barrier snapshot under the parallel mode (the same staleness the
		// routing ladder's candidate rows carry).
		var pool int
		if f.par != nil {
			pool = c.snap.deps[m].pool
		} else {
			pool = len(c.deps[m].insts)
		}
		placed := pool > 0 && !faulty
		rp.breakers[ci].Record(now, placed)
		if placed {
			c.routed++
			f.deliver(c, m, r)
			return
		}
		attempts++
		avoided |= 1 << uint(ci)
		if attempts >= rp.p.MaxAttempts {
			// Retry budget spent: the live request comes back as a typed
			// 502; the twin parks it on the last candidate (it completes
			// when the pool revives) and stops counting, like the live
			// census stops routing it.
			rp.exhausted++
			f.deliver(c, m, r)
			return
		}
		// The live gateway's failover re-route.
		r.Migrations++
		f.migrations++
	}
}
