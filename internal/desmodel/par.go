package desmodel

// Parallel federation mode: the routing plane and every cluster run on their
// own sim.Kernel shard under sim.ShardSet's conservative windows, exchanging
// work through the barrier-drained mailboxes. See the "Parallel DES" section
// of doc.go for the full contract; the short version:
//
//   - Shard 0 is the router: gateway lanes, the Select ladder, rung and
//     migration counters, the replay cursor, and the arrival/completion
//     drivers. Shards 1..Clusters each own one cluster: its scheduler,
//     deployment pools, engine incarnations, background churn, and scaler.
//   - Every cross-plane interaction pays CrossLatency, which doubles as the
//     window lookahead: routed requests ride router→cluster mailboxes,
//     migrations and completion callbacks ride cluster→router mailboxes,
//     and replayed churn commands ride router→cluster mailboxes.
//   - The ladder routes over per-cluster snapshots published at window
//     barriers — bounded-staleness state, like a live federation's status
//     poller — instead of the sequential mode's same-kernel live reads.
//
// That snapshot semantics is why parallel runs are a model *variant*, not a
// re-execution of the sequential model: Par=0 keeps the sequential
// federation byte-for-byte, and the differential suite instead pins every
// parallel configuration (worker counts × queue kinds) byte-identical to
// the single-worker parallel reference.

import (
	"time"

	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/serving"
	"github.com/argonne-first/first/internal/sim"
)

// DefaultCrossLatency is the default minimum cross-cluster interaction
// latency (= conservative lookahead): a routing decision, migration, or
// churn command reaches another cluster no sooner than this. 50ms is the
// order of a WAN hop between federated sites — small against the scenarios'
// 30s prologues and 100ms+ serve times, large enough that a window holds
// thousands of events at storm arrival rates.
const DefaultCrossLatency = 50 * time.Millisecond

// ParParams configure the parallel federation mode.
type ParParams struct {
	// Workers is the window-executor goroutine count (clamped to the shard
	// count). 1 is the parallel reference configuration: identical model,
	// zero goroutines.
	Workers int
	// CrossLatency is the cross-shard interaction latency and conservative
	// lookahead; 0 takes DefaultCrossLatency.
	CrossLatency time.Duration
	// MaxEvents, when positive, arms each shard's runaway-model guard.
	MaxEvents uint64
}

// parState is a sharded Federation's window machinery.
type parState struct {
	ss   *sim.ShardSet
	look sim.Time
}

// send is the federation's one cross-shard primitive: deliver fn on shard
// dst one cross-latency after shard src's current time.
func (ps *parState) send(src, dst int, fn func()) {
	ps.ss.Send(src, dst, ps.look, fn)
}

// fedSnap is one cluster's barrier-published routing snapshot.
type fedSnap struct {
	freeGPUs int
	deps     []fedDepSnap
}

// fedDepSnap is one deployment's snapshot row: exactly the fields route and
// routeReplay consult.
type fedDepSnap struct {
	state      string
	depth      int
	serving    int
	pool       int
	cordoned   bool
	drainingAt time.Duration
}

// publishSnaps refreshes every cluster's routing snapshot. Barrier context
// only (single-threaded, all shards joined).
func (f *Federation) publishSnaps() {
	for _, c := range f.clusters {
		c.snap.freeGPUs = c.cl.Status().FreeGPUs
		for m, d := range c.deps {
			serving, cordoned, drainingAt := d.routingView()
			c.snap.deps[m] = fedDepSnap{
				state:      d.modelState(),
				depth:      d.depth(),
				serving:    serving,
				pool:       len(d.insts),
				cordoned:   cordoned,
				drainingAt: drainingAt,
			}
		}
	}
}

// NewParFederation builds the scenario sharded: router on shard 0, one
// cluster per shard after it, conservative windows of CrossLatency. Drivers
// schedule arrivals on RouterKernel() and run the scenario with RunPar.
func NewParFederation(p FederationParams, par ParParams, q sim.QueueKind, done func(*Req)) *Federation {
	p = p.withDefaults()
	if par.CrossLatency <= 0 {
		par.CrossLatency = DefaultCrossLatency
	}
	ss := sim.NewShardSet(q, p.Clusters+1, par.CrossLatency, par.Workers)
	if par.MaxEvents > 0 {
		for i := 0; i <= p.Clusters; i++ {
			ss.Shard(i).MaxEvents = par.MaxEvents
		}
	}
	ps := &parState{ss: ss, look: par.CrossLatency}
	f := newFederation(ss.Shard(0), p, func(c *fedCluster, m perfmodel.ModelSpec, onC func(*serving.Sequence)) *EngineSim {
		return MustEngineSim(c.k, m, p.GPU, 0, onC)
	}, done, ps)
	ss.OnBarrier(func(sim.Time) { f.publishSnaps() })
	// First window's routing needs boot-state snapshots (replay pre-starts
	// pools before any barrier has run).
	f.publishSnaps()
	return f
}

// RouterKernel returns shard 0's kernel — where drivers schedule arrivals
// and closed-loop think-time events.
func (f *Federation) RouterKernel() *sim.Kernel { return f.k }

// RunPar executes the sharded scenario: windows until every shard drains,
// until is exceeded, or stop (evaluated at each window barrier; may be nil)
// returns true. It returns the virtual time the run ended at, panicking if
// called on a sequentially-built Federation.
func (f *Federation) RunPar(until sim.Time, stop func() bool) sim.Time {
	if f.par == nil {
		panic("desmodel: RunPar on a sequential Federation; use NewParFederation")
	}
	if stop != nil {
		f.par.ss.StopWhen(func(sim.Time) bool { return stop() })
	}
	return f.par.ss.Run(until)
}
