package desmodel

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/chaosnet"
	"github.com/argonne-first/first/internal/resilience"
	"github.com/argonne-first/first/internal/sim"
)

// parTrial is one randomized federation topology: cluster count, lookahead,
// churn tempo (walltime drains, hard kills via tight grace, background
// claims), and an arrival trace, all drawn from the trial seed.
type parTrial struct {
	p    FederationParams
	par  ParParams
	n    int
	gaps []sim.Time
	reqs []Req
}

func makeParTrial(seed int64, withReplay bool) (parTrial, *chaosnet.Schedule) {
	rng := sim.NewRNG(seed)
	clusters := 2 + rng.Intn(7) // 2..8
	t := parTrial{n: 400 + rng.Intn(400)}
	t.p = FederationParams{
		Clusters: clusters,
		// Short walltimes against a long horizon force drains; a tight grace
		// forces hard kills mid-batch; both generate migrations.
		ServeWalltime: time.Duration(40+rng.Intn(120)) * time.Second,
		DrainGrace:    time.Duration(5+rng.Intn(20)) * time.Second,
		BGPeriod:      time.Duration(60+rng.Intn(240)) * time.Second,
	}
	if rng.Intn(2) == 0 {
		t.p.Scale = AutoScaleParams{MaxInstances: 2 + rng.Intn(3)}
	}
	t.par = ParParams{
		CrossLatency: time.Duration(1+rng.Intn(200)) * time.Millisecond,
		MaxEvents:    20_000_000, // hang guard: a lost request loops forever
	}
	models := 3
	if withReplay {
		// Replayed churn mirrors the livefed twin's shape: a single served
		// model on a 4×4-GPU inventory, so a 4-GPU background claim can
		// never starve the pool a parked request waits on.
		models = 1
		t.p.Models = DefaultFederationModels()[:1]
		t.p.NodesPerCluster = 4
		t.p.GPUsPerNode = 4
	}
	mean := 50 * float64(time.Millisecond)
	for i := 0; i < t.n; i++ {
		t.gaps = append(t.gaps, sim.Time(rng.Exp(mean)))
		t.reqs = append(t.reqs, Req{
			ID:        i + 1,
			Model:     rng.Intn(models),
			PromptTok: 16 + rng.Intn(256),
			OutputTok: 4 + rng.Intn(128),
		})
	}
	if !withReplay {
		return t, nil
	}
	// A replayed churn schedule: random kills, restarts, and GPU claims at
	// random request indices, plus fault windows feeding the breakers.
	s := &chaosnet.Schedule{
		Seed:       uint64(seed)*2654435761 + 1,
		Endpoints:  clusters,
		Requests:   t.n,
		RatePerSec: 20,
		Windows: chaosnet.Windows{
			BurstEvery:  40 + rng.Intn(100),
			BurstLen:    5 + rng.Intn(10),
			PFault:      0.3,
			PBackground: 0.1,
		},
	}
	claims := make([]int, clusters)
	for i := 0; i < 8+rng.Intn(16); i++ {
		ep := rng.Intn(clusters)
		at := rng.Intn(t.n - 1)
		switch rng.Intn(4) {
		case 0:
			s.Events = append(s.Events, chaosnet.Event{AtIndex: at, Kind: chaosnet.EventKill, Endpoint: ep})
		case 1:
			s.Events = append(s.Events, chaosnet.Event{AtIndex: at, Kind: chaosnet.EventRestart, Endpoint: ep})
		case 2:
			if claims[ep] == 0 { // at most one outstanding 4-GPU claim per cluster
				claims[ep]++
				s.Events = append(s.Events, chaosnet.Event{AtIndex: at, Kind: chaosnet.EventBGClaim, Endpoint: ep, GPUs: 4})
			}
		default:
			if claims[ep] > 0 {
				claims[ep]--
				s.Events = append(s.Events, chaosnet.Event{AtIndex: at, Kind: chaosnet.EventBGRelease, Endpoint: ep})
			}
		}
	}
	// Revive every pool at the end of the trace so parked (shed/exhausted)
	// requests complete and the conservation check can demand all n.
	for ep := 0; ep < clusters; ep++ {
		s.Events = append(s.Events, chaosnet.Event{AtIndex: t.n - 1, Kind: chaosnet.EventRestart, Endpoint: ep})
	}
	s.Sort()
	t.p.BGPeriod = 0
	t.p.Scale = AutoScaleParams{}
	t.p.Replay = &ReplayParams{
		Schedule: *s,
		Breaker: resilience.BreakerConfig{
			Window: 60 * time.Second, Buckets: 12, MinSamples: 4,
			FailureRate: 0.5, OpenFor: 10 * time.Second, HalfOpenProbes: 1,
		},
		MaxAttempts: 1 + rng.Intn(3),
	}
	return t, s
}

// runParTrial executes one trial under the given worker count and queue
// kind, returning a full observable digest: every request's timeline and
// migration count, the rung/migration/conservation counters, per-cluster
// stats, and per-request completion callback counts.
func runParTrial(t *testing.T, tr parTrial, workers int, q sim.QueueKind) string {
	reqs := make([]Req, len(tr.reqs))
	copy(reqs, tr.reqs)
	doneCount := make([]int, tr.n+1)
	doneSeen := 0
	tr.par.Workers = workers
	f := NewParFederation(tr.p, tr.par, q, func(r *Req) {
		doneCount[r.ID]++
		doneSeen++
	})
	k := f.RouterKernel()
	i := 0
	var step func()
	step = func() {
		f.ReplayAdvance(i)
		f.Arrive(&reqs[i])
		if i++; i < tr.n {
			k.Schedule(tr.gaps[i], step)
		}
	}
	k.Schedule(tr.gaps[0], step)
	// Stop once the nth completion *callback* has landed on the router (the
	// sequential drivers' Kernel.Stop-on-nth-done, barrier-checked): stopping
	// on Σ served would drop callbacks still riding the cluster→router
	// mailboxes.
	end := f.RunPar(0, func() bool { return doneSeen >= tr.n })

	if got := f.Arrivals(); got != int64(tr.n) {
		t.Fatalf("arrivals = %d, want %d", got, tr.n)
	}
	if got := f.Completions(); got != int64(tr.n) {
		t.Fatalf("completions = %d, want %d (conservation violated)", got, tr.n)
	}
	for id := 1; id <= tr.n; id++ {
		if doneCount[id] != 1 {
			t.Fatalf("request %d completed %d times, want exactly once", id, doneCount[id])
		}
		if reqs[id-1].CompletedAt == 0 {
			t.Fatalf("request %d has no completion timestamp", id)
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "end=%d rungs=%+v migrations=%d\n", end, f.Rungs(), f.Migrations())
	for i := range reqs {
		r := &reqs[i]
		fmt.Fprintf(&sb, "r%d m%d mig%d a%d g%d e%d c%d\n",
			r.ID, r.Model, r.Migrations, r.ArrivalAt, r.GatewayAt, r.EngineAt, r.CompletedAt)
	}
	for _, cs := range f.ClusterStats() {
		fmt.Fprintf(&sb, "%s routed=%d served=%d cold=%d drains=%d kills=%d live=%d peak=%d ups=%d downs=%d refused=%d busy=%.6f qpeak=%d\n",
			cs.Name, cs.Routed, cs.Served, cs.ColdStarts, cs.Drains, cs.HardKills,
			cs.LiveInstances, cs.PeakInstances, cs.ScaleUps, cs.ScaleDowns,
			cs.ScaleRefused, cs.BusyGPUSeconds, cs.SchedQueuedPeak)
	}
	return sb.String()
}

// TestParFederationPropertyRandomTopologies is the tentpole's property
// suite: randomized topologies (2-8 clusters, random lookahead, random
// drain/kill/background schedules, one replayed-churn trial) must conserve
// requests, complete each exactly once, and produce byte-identical digests
// across worker counts 1/2/8 and both queue kinds.
func TestParFederationPropertyRandomTopologies(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			tr, _ := makeParTrial(9000+int64(trial)*7919, trial == 3)
			ref := runParTrial(t, tr, 1, sim.QueueCalendar)
			for _, q := range []sim.QueueKind{sim.QueueCalendar, sim.QueueHeap} {
				for _, w := range []int{1, 2, 8} {
					if q == sim.QueueCalendar && w == 1 {
						continue
					}
					if got := runParTrial(t, tr, w, q); got != ref {
						t.Fatalf("digest diverged at workers=%d queue=%v (clusters=%d, lookahead=%v)\nref:\n%.2000s\ngot:\n%.2000s",
							w, q, tr.p.Clusters, tr.par.CrossLatency, ref, got)
					}
				}
			}
		})
	}
}

// TestParFederationMatchesItselfAcrossRuns pins run-to-run determinism of
// the parallel mode itself (same config, fresh federation objects).
func TestParFederationMatchesItselfAcrossRuns(t *testing.T) {
	tr, _ := makeParTrial(4242, false)
	a := runParTrial(t, tr, 2, sim.QueueCalendar)
	b := runParTrial(t, tr, 2, sim.QueueCalendar)
	if a != b {
		t.Fatal("identical parallel runs diverged")
	}
}
