package desmodel

import (
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/serving"
	"github.com/argonne-first/first/internal/sim"
)

// Arena recycles the expensive per-cell structures of an experiment fleet —
// the event kernel and the serving engines — across the cells one worker
// executes. Each fleet worker owns one Arena; Begin starts a new cell by
// resetting the kernel and reclaiming every engine the previous cell
// borrowed, so steady-state cell execution allocates no fresh kernel heaps,
// calendar buckets, waiting rings, or Sequence objects. Reset structures are
// behaviourally identical to fresh ones, which keeps fleet runs byte-equal
// to the sequential reference regardless of which worker (and therefore
// which recycled arena) executes a cell.
//
// An Arena is single-goroutine, like the kernel it owns.
type Arena struct {
	queue sim.QueueKind
	k     *sim.Kernel
	// lent are the engines handed out since the last Begin; free holds
	// reclaimed engines keyed by their (comparable) config.
	lent []*serving.Engine
	free map[serving.Config][]*serving.Engine
}

// NewArena returns an empty arena whose kernels use queue kind q.
func NewArena(q sim.QueueKind) *Arena {
	return &Arena{queue: q}
}

// Begin starts a new experiment cell: every engine the previous cell
// borrowed is reset and returned to the free pool, and the kernel is reset
// and returned for the new cell to build on.
func (a *Arena) Begin() *sim.Kernel {
	for i, eng := range a.lent {
		eng.Reset()
		cfg := eng.Config()
		a.free[cfg] = append(a.free[cfg], eng)
		a.lent[i] = nil
	}
	a.lent = a.lent[:0]
	if a.k == nil {
		a.k = sim.NewKernelWith(a.queue)
	} else {
		a.k.Reset()
	}
	return a.k
}

// Kernel returns the current cell's kernel (Begin must have been called).
func (a *Arena) Kernel() *sim.Kernel { return a.k }

// engine borrows an engine for cfg: a reset one from the pool when
// available, a fresh one otherwise. The engine returns to the pool at the
// next Begin.
func (a *Arena) engine(cfg serving.Config) (*serving.Engine, error) {
	if pool := a.free[cfg]; len(pool) > 0 {
		eng := pool[len(pool)-1]
		pool[len(pool)-1] = nil
		a.free[cfg] = pool[:len(pool)-1]
		a.lent = append(a.lent, eng)
		return eng, nil
	}
	eng, err := serving.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if a.free == nil {
		a.free = make(map[serving.Config][]*serving.Engine)
	}
	a.lent = append(a.lent, eng)
	return eng, nil
}

// Reclaim returns a borrowed engine to the pool mid-cell: it is reset and
// becomes available to the next EngineSimIn with the same config. Scenarios
// with in-cell churn (federation deployment incarnations) use it so each
// cold restart reuses the previous incarnation's engine instead of
// allocating a fresh one; callers must hold no live references into the
// engine (sequences, scratch) when they reclaim it.
func (a *Arena) Reclaim(eng *serving.Engine) {
	for i, l := range a.lent {
		if l == eng {
			a.lent[i] = a.lent[len(a.lent)-1]
			a.lent[len(a.lent)-1] = nil
			a.lent = a.lent[:len(a.lent)-1]
			eng.Reset()
			if a.free == nil {
				a.free = make(map[serving.Config][]*serving.Engine)
			}
			a.free[eng.Config()] = append(a.free[eng.Config()], eng)
			return
		}
	}
}

// EngineSimIn builds a kernel-driven engine instance on the arena's kernel,
// drawing the engine from the arena pool. It panics on config errors, like
// MustEngineSim (experiment setup with static catalog entries).
func (a *Arena) EngineSimIn(model perfmodel.ModelSpec, gpu perfmodel.GPUSpec, maxBatch int, onComplete func(*serving.Sequence)) *EngineSim {
	eng, err := a.engine(serving.Config{Model: model, GPU: gpu, MaxBatch: maxBatch})
	if err != nil {
		panic(err)
	}
	e := &EngineSim{k: a.k, eng: eng, onComplete: onComplete}
	e.bind()
	return e
}

// NewFirstSystemIn is NewFirstSystem drawing its kernel and engines from the
// arena.
func NewFirstSystemIn(a *Arena, p FirstParams, model perfmodel.ModelSpec, gpu perfmodel.GPUSpec, instances int, done func(*Req)) *FirstSystem {
	if instances < 1 {
		instances = 1
	}
	s := newFirstSystemBase(a.k, p, done)
	for i := 0; i < instances; i++ {
		s.engines = append(s.engines, a.EngineSimIn(model, gpu, 0, s.onEngineComplete))
	}
	return s
}

// NewDirectSystemIn is NewDirectSystem drawing its kernel and engine from
// the arena.
func NewDirectSystemIn(a *Arena, p DirectParams, model perfmodel.ModelSpec, gpu perfmodel.GPUSpec, done func(*Req)) *DirectSystem {
	s := &DirectSystem{k: a.k, p: p, admission: newLane(a.k, p.APIOverhead), done: done}
	s.engine = a.EngineSimIn(model, gpu, 0, s.onEngineComplete)
	return s
}
