// Package desmodel wires the serving engine and the calibrated overhead
// models into deterministic discrete-event scenarios that regenerate the
// paper's evaluation (Figures 3-5, Table 1, the batch-mode numbers, and the
// three optimization ablations) in virtual time.
//
// Three request paths are modeled (§5.2.3):
//
//   - FIRST: client → gateway (worker window, processing overhead, optional
//     per-request auth introspection) → Globus-Compute hub (submit latency,
//     serialized dispatch/relay lanes) → endpoint pickup → least-loaded
//     engine instance → result relay back (optionally observed on a polling
//     grid — Optimization 1's ablation).
//   - Direct: client → vLLM's own API front-end (single-threaded admission,
//     the §5.3.1 bottleneck) → engine.
//   - ExtAPI: client → rate/concurrency-limited external cloud API (Fig. 5).
//
// All scenarios consume workload traces from internal/workload and report
// the paper's §5.1 metrics.
package desmodel

import (
	"sort"
	"time"

	"github.com/argonne-first/first/internal/sim"
)

// Req is one request flowing through a scenario.
type Req struct {
	ID        int
	PromptTok int
	OutputTok int
	// Session tags the closed-loop session that issued the request (drivers
	// previously tracked this in a side map, a per-request map churn on the
	// Table-1 hot path).
	Session int
	// Model indexes the requested model in a multi-model scenario's model
	// list (Federation); single-model scenarios leave it zero.
	Model int
	// Migrations counts how many times the federation layer re-routed the
	// request after its first placement died (drain or walltime hard-kill).
	Migrations int

	ArrivalAt   sim.Time // client send time
	GatewayAt   sim.Time // admitted into the gateway window
	EngineAt    sim.Time // submitted to an engine
	CompletedAt sim.Time // engine finished + results relayed
	ObservedAt  sim.Time // client saw the result (poll grid)

	Failed bool
}

// Latency returns the client-observed end-to-end latency.
func (r *Req) Latency() time.Duration { return r.ObservedAt - r.ArrivalAt }

// Metrics are the paper's §5.1 evaluation metrics for one run.
type Metrics struct {
	Requests      int
	Completed     int
	Failed        int
	DurationS     float64 // benchmark duration: first arrival → last observed
	ReqPerSec     float64 // request throughput
	TokPerSec     float64 // output token throughput
	MedianLatS    float64 // median end-to-end latency
	MeanLatS      float64
	P99LatS       float64
	OutputTokens  int64
	PeakObservedB int // peak engine batch across instances
}

// Collect computes metrics over finished requests.
func Collect(reqs []*Req) Metrics {
	var m Metrics
	m.Requests = len(reqs)
	var latencies []float64
	var last sim.Time
	var sumLat float64
	for _, r := range reqs {
		if r.Failed || r.ObservedAt == 0 {
			m.Failed++
			continue
		}
		m.Completed++
		m.OutputTokens += int64(r.OutputTok)
		lat := sim.Sec(r.Latency())
		latencies = append(latencies, lat)
		sumLat += lat
		if r.ObservedAt > last {
			last = r.ObservedAt
		}
	}
	if m.Completed == 0 {
		return m
	}
	m.DurationS = sim.Sec(last)
	if m.DurationS > 0 {
		m.ReqPerSec = float64(m.Completed) / m.DurationS
		m.TokPerSec = float64(m.OutputTokens) / m.DurationS
	}
	sort.Float64s(latencies)
	m.MedianLatS = latencies[len(latencies)/2]
	m.MeanLatS = sumLat / float64(len(latencies))
	p99 := int(0.99 * float64(len(latencies)))
	if p99 >= len(latencies) {
		p99 = len(latencies) - 1
	}
	m.P99LatS = latencies[p99]
	return m
}

// lane is a serialized single-server queue: every item charges `cost`
// before delivery. It models the hub's routing and relay lanes and the
// direct path's single-threaded API admission.
//
// The service loop runs on two closures bound once at construction
// (serveFn, doneFn) with the in-service item parked on the struct, so a
// lane schedules no fresh closure per item — at hub saturation the lanes
// are the kernel's densest event source. The queue pops by head index
// (reset when drained) so its backing array is recycled instead of
// re-sliced away.
type lane struct {
	k    *sim.Kernel
	cost time.Duration
	busy bool

	queue []func()
	head  int

	inService func()
	serveFn   func()
	doneFn    func()

	// depth diagnostics
	maxDepth int
}

func newLane(k *sim.Kernel, cost time.Duration) *lane {
	l := &lane{k: k, cost: cost}
	l.serveFn = l.serve
	l.doneFn = l.done
	return l
}

func (l *lane) enqueue(fn func()) {
	l.queue = append(l.queue, fn)
	if d := len(l.queue) - l.head; d > l.maxDepth {
		l.maxDepth = d
	}
	if !l.busy {
		l.busy = true
		l.k.Schedule(0, l.serveFn)
	}
}

func (l *lane) serve() {
	if l.head == len(l.queue) {
		l.queue = l.queue[:0]
		l.head = 0
		l.busy = false
		return
	}
	l.inService = l.queue[l.head]
	l.queue[l.head] = nil
	l.head++
	l.k.Schedule(l.cost, l.doneFn)
}

func (l *lane) done() {
	fn := l.inService
	l.inService = nil
	fn()
	l.serve()
}

// Depth returns the current queue length (excluding the in-service item).
func (l *lane) Depth() int { return len(l.queue) - l.head }
