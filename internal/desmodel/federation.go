package desmodel

import (
	"fmt"
	"time"

	"github.com/argonne-first/first/internal/cluster"
	"github.com/argonne-first/first/internal/federation"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/scheduler"
	"github.com/argonne-first/first/internal/serving"
	"github.com/argonne-first/first/internal/sim"
)

// kernelClock adapts the event kernel's virtual timeline to clock.Clock so
// live control-plane components (the PBS scheduler) can run inside a DES
// scenario. Only Now/Since are served; Sleep/After panic — kernel-driven
// components must take deterministic timers (scheduler.Config.Timer), never
// block a goroutine.
type kernelClock struct{ k *sim.Kernel }

var kernelEpoch = time.Unix(0, 0).UTC()

func (c kernelClock) Now() time.Time { return kernelEpoch.Add(c.k.Now()) }

func (c kernelClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c kernelClock) Sleep(time.Duration) {
	panic("desmodel: kernelClock cannot Sleep; wire a deterministic Timer instead")
}

func (c kernelClock) After(time.Duration) <-chan time.Time {
	panic("desmodel: kernelClock cannot After; wire a deterministic Timer instead")
}

// FederationParams describe a multi-cluster federation scenario: N clusters,
// each with a real inventory (cluster.Cluster) and a real PBS-like scheduler
// (scheduler.Scheduler driven by the kernel through Config.Timer), serving M
// models behind the sharded gateway front-end. Every request is routed by the
// real federation.Select priority ladder (§4.5) over live state snapshots.
type FederationParams struct {
	// Clusters is the federation size (the paper federates Sophia+Polaris;
	// the scenario family sweeps 2-8).
	Clusters int
	// NodesPerCluster and GPUsPerNode shape each cluster's inventory.
	NodesPerCluster int
	GPUsPerNode     int
	GPU             perfmodel.GPUSpec
	// Models are the served model specs. Model m's configuration-registry
	// order (priority 3's "first configured") is the cluster list rotated by
	// m, so first-configured load does not pile onto cluster 0 for every
	// model.
	Models []perfmodel.ModelSpec

	// Gateway front-end: requests hash onto Shards serialized lanes charging
	// CritSection each, then PostWork off-lock before the routing decision.
	Shards      int
	CritSection time.Duration
	PostWork    time.Duration

	// Prologue is the scheduler's Starting phase (node boot, container
	// start) for every job, serving and background alike.
	Prologue time.Duration
	// ServeWalltime is how long a serving instance runs after weights are
	// loaded before it drains (endpoint walltime churn). The scheduler job's
	// walltime is load + ServeWalltime + DrainGrace: if the running batch
	// has not drained within the grace, the real walltime timer hard-kills
	// the job mid-batch and the survivors migrate.
	ServeWalltime time.Duration
	DrainGrace    time.Duration
	// CordonLead, when positive, flags each serving incarnation this long
	// before its serve-walltime drain fires (clamped to ServeWalltime/2).
	// A cordoned instance is skipped by in-pool selection while an
	// uncordoned sibling serves, and a deployment whose entire serving
	// capacity is cordoned advertises Cordoned through the routing ladder
	// (federation.EndpointInfo), steering new arrivals elsewhere one lead
	// ahead of the drain — shrinking the migrated-request population at
	// the source. Zero (the default) keeps routing byte-identical to the
	// drain-blind behaviour.
	CordonLead time.Duration

	// Scale is the Fig4-style auto-scaling policy growing and shrinking each
	// deployment's instance pool with demand. The zero value (MaxInstances
	// ≤ 1) pins every pool at one instance — the pre-autoscaler behaviour.
	Scale AutoScaleParams

	// Background science jobs compete with serving jobs for GPUs: each
	// cluster submits one every BGPeriod (offset by BGStagger×cluster) that
	// holds BGGPUs until its walltime expires. They are what pushes the
	// priority ladder onto its capacity and first-configured rungs.
	BGPeriod   time.Duration
	BGStagger  time.Duration
	BGWalltime time.Duration
	BGGPUs     int

	// Replay, when set, drives all churn from a recorded live schedule
	// instead of the self-scheduled tempo above (see replay.go). Pools are
	// pre-started like a live boot, demand-driven cold starts are off, and
	// kills/restarts/background claims fire at the replayed request
	// indices via ReplayAdvance.
	Replay *ReplayParams
}

// DefaultFederationModels returns the served model mix: two 4-GPU models and
// a 1-GPU model, so deployments pack unevenly onto 4-GPU nodes.
func DefaultFederationModels() []perfmodel.ModelSpec {
	return []perfmodel.ModelSpec{
		perfmodel.Default.MustLookup(perfmodel.Llama8B),
		perfmodel.Default.MustLookup(perfmodel.Gemma27B),
		perfmodel.Default.MustLookup("Qwen/Qwen2.5-7B-Instruct"),
	}
}

// DefaultFederationParams sizes a federation of `clusters` clusters: 2 nodes
// × 4 GPUs each (8 GPUs — the three-model mix needs 9 and a background job 4
// more, so no cluster can host everything and the priority ladder's capacity
// and first-configured rungs genuinely fire), 10-minute serving walltimes
// with 2-minute drain grace, and background churn on a ~7.5-minute cadence.
// Auto-scaling is off (MaxInstances 1); scenarios opt in via Scale.
func DefaultFederationParams(clusters int) FederationParams {
	return FederationParams{
		Clusters:        clusters,
		NodesPerCluster: 2,
		GPUsPerNode:     4,
		GPU:             perfmodel.A100_40,
		Models:          DefaultFederationModels(),
		Shards:          16,
		CritSection:     4 * time.Microsecond,
		PostWork:        25 * time.Microsecond,
		Prologue:        30 * time.Second,
		ServeWalltime:   600 * time.Second,
		DrainGrace:      120 * time.Second,
		BGPeriod:        450 * time.Second,
		BGStagger:       80 * time.Second,
		BGWalltime:      300 * time.Second,
		BGGPUs:          4,
	}
}

// FedRungs counts routing decisions per priority rung.
type FedRungs struct {
	Active    int64 // rung 1: model running/starting/queued somewhere
	Capacity  int64 // rung 2: a cluster had free GPUs for a cold start
	FirstConf int64 // rung 3: nothing active, nothing fits — first configured
}

// FedClusterStats is one cluster's scenario-end accounting.
type FedClusterStats struct {
	Name       string
	Routed     int64 // requests the ladder sent here
	Served     int64 // requests completed here
	ColdStarts int   // serving jobs submitted (Queued→Starting→Running)
	Drains     int   // graceful walltime drains
	HardKills  int   // walltime expiries that killed a live batch
	// LiveInstances counts pool members still holding a place at snapshot
	// time (queued, loading, or serving). A draining incarnation is on its
	// way out and is deliberately not live: the mid-drain end-of-run path
	// must not leak it into the final instance accounting.
	LiveInstances int
	// PeakInstances is the deepest the cluster's pools ever grew (summed
	// over models, draining included while the incarnation held GPUs).
	PeakInstances int
	// ScaleUps / ScaleDowns count auto-scaler pool growth and policy-driven
	// shrink actions (early drains or queued-job cancels); ScaleRefused
	// counts scale-up decisions refused at the MaxInstances cap.
	ScaleUps     int
	ScaleDowns   int
	ScaleRefused int
	// PreWarms counts predictive cold starts: forecast-driven early
	// scale-ups plus walltime-replacement pre-warms (both also counted in
	// ColdStarts — a pre-warm pays the same scheduler path).
	PreWarms int
	// BusyGPUSeconds is Σ engine busy time × GPUs over all incarnations
	// (utilization numerator; divide by total GPUs × horizon).
	BusyGPUSeconds float64
	// TotalGPUs is the cluster's inventory size.
	TotalGPUs int
	// SchedQueuedPeak is the deepest scheduler queue observed at submit
	// time (serving restarts stacking behind background jobs).
	SchedQueuedPeak int
}

// instState is one instance incarnation's lifecycle position.
type instState uint8

const (
	instQueued   instState = iota // job submitted, waiting for nodes/prologue
	instLoading                   // nodes granted, weights loading
	instServing                   // accepting and serving traffic
	instDraining                  // no new work; running batch finishing
	instDead                      // terminal; detached from the pool
)

// fedInstance is one engine incarnation inside a deployment's pool: its own
// scheduler job (paying the real Queued→Starting→Running cold-start path),
// its own serve-walltime drain, and — when the auto-scaler shrinks the pool —
// a policy-driven early drain through the same machinery.
type fedInstance struct {
	d *fedDep

	state     instState
	job       *scheduler.Job
	eng       *EngineSim
	drainDone bool // a zero-delay drain-completion event is queued

	// cordoned marks a serving incarnation inside its CordonLead window:
	// the walltime drain is imminent, so in-pool selection passes it over
	// and the routing ladder is told when every serving sibling is in the
	// same state. drainAt is the kernel time the serve-walltime drain was
	// armed for (EndpointInfo.DrainingAt observability).
	cordoned bool
	drainAt  sim.Time
}

// fedDep is one (cluster, model) deployment: a pool of 1..MaxInstances
// engine incarnations plus the requests parked while none of them serves.
type fedDep struct {
	f     *Federation
	c     *fedCluster
	model int

	insts   []*fedInstance // pool members (dead incarnations are removed)
	pending []*Req         // parked until an instance serves

	// Auto-scaler hysteresis state (see autoscale.go).
	hiStreak int
	loStreak int
	peakPool int
	// lastLive is the live count seen by the previous scaleTick; a change
	// through any path resets both streaks (the watermarks are
	// per-instance, so a streak is only meaningful at one denominator).
	lastLive int
	// hiRefused latches one ScaleRefused count per sustained at-cap
	// episode. The episode ends — and the latch clears — only after the
	// hi condition has been absent for HiSustain consecutive ticks
	// (hiBreak counts those), mirroring the sustain needed to enter it:
	// a one-tick flap from pool churn is the same standing episode.
	hiRefused bool
	hiBreak   int

	// Predictive-scaler state (autoscale.go, forecast.go): the Holt
	// arrival forecaster, the service-rate EWMA, the per-tick sample
	// accumulators they consume, and the deployment's cached cold-start
	// duration (prologue + weights load — the forecast horizon). All
	// cluster-shard-owned: samples are counted where offer/onServed run,
	// so the parallel mode never shares forecast state across shards.
	fcArrive    Forecast
	fcServe     Forecast
	arrivedTick int
	servedTick  int
	coldStart   time.Duration
}

// fedCluster is one simulated cluster: real inventory, real scheduler, one
// deployment pool per model.
//
// k is the kernel the cluster's events run on: the federation kernel
// sequentially, the cluster's own shard under the parallel mode (par.go) —
// instance lifecycle, scheduler timers, engine stepping, background churn,
// and the scaler all schedule here, never on the router's kernel. All
// per-cluster counters are single-writer: routed is written router-side
// (the routing decision), everything else cluster-side.
type fedCluster struct {
	f     *Federation
	idx   int
	k     *sim.Kernel
	shard int // this cluster's ShardSet index (idx+1; router is shard 0)
	name  string
	cl    *cluster.Cluster
	sched *scheduler.Scheduler
	deps  []*fedDep
	snap  fedSnap

	routed, served     int64
	coldStarts, drains int
	hardKills          int
	scaleUps           int
	scaleDowns         int
	scaleRefused       int
	preWarms           int
	peakInstances      int
	busyGPU            time.Duration
	queuedPeak         int
}

// Federation is the multi-cluster DES scenario: the sharded gateway
// front-end in front of N cluster+scheduler instances, every request routed
// by the real federation.Select over live snapshots, with deployment pools
// churning through the full Queued→Starting→Running→drain/kill lifecycle and
// the auto-scaler growing and shrinking them with demand.
type Federation struct {
	// k is the router kernel: gateway admission, routing decisions, rung and
	// migration counters, and the replay cursor all run here. Sequentially it
	// is the run's only kernel; under the parallel mode it is shard 0 of the
	// ShardSet and every cluster owns its own shard (par.go).
	k *sim.Kernel
	p FederationParams

	newEngine func(c *fedCluster, m perfmodel.ModelSpec, onComplete func(*serving.Sequence)) *EngineSim
	// recycle, when set, returns a dead incarnation's inner engine to the
	// arena pool so the next cold restart reuses it.
	recycle func(*serving.Engine)
	done    func(*Req)

	fe *shardFE

	clusters []*fedCluster
	scratch  []federation.EndpointInfo

	replay *fedReplay

	// par, when set, is the conservative-window sharding state; nil keeps
	// the sequential single-kernel behaviour byte-for-byte.
	par *parState

	rungs      FedRungs
	migrations int64
	// arrivals is half of the conservation invariant the property suite
	// checks (the other half, completions, is Σ clusters' served — written
	// cluster-side so the parallel mode keeps every counter single-writer):
	// every request that arrives completes exactly once, across any number
	// of drains, kills, cancels, and scale-downs.
	arrivals int64
}

func (p FederationParams) withDefaults() FederationParams {
	d := DefaultFederationParams(p.Clusters)
	if p.Clusters <= 0 {
		p.Clusters = 4
	}
	// BGPeriod == 0 means background churn is off, so the BG fields are not
	// unconditionally defaulted — but churn that is on must be complete: a
	// walltime-less science job would hold its GPUs forever (scheduler
	// semantics: Walltime 0 = unlimited) and starve serving restarts.
	if p.BGPeriod > 0 {
		if p.BGGPUs <= 0 {
			p.BGGPUs = d.BGGPUs
		}
		if p.BGWalltime <= 0 {
			p.BGWalltime = d.BGWalltime
		}
		if p.BGStagger <= 0 {
			p.BGStagger = d.BGStagger
		}
	}
	if p.NodesPerCluster <= 0 {
		p.NodesPerCluster = d.NodesPerCluster
	}
	if p.GPUsPerNode <= 0 {
		p.GPUsPerNode = d.GPUsPerNode
	}
	if p.GPU.Name == "" {
		p.GPU = d.GPU
	}
	if len(p.Models) == 0 {
		p.Models = d.Models
	}
	if p.Shards <= 0 {
		p.Shards = d.Shards
	}
	if p.CritSection <= 0 {
		p.CritSection = d.CritSection
	}
	if p.PostWork <= 0 {
		p.PostWork = d.PostWork
	}
	if p.Prologue <= 0 {
		p.Prologue = d.Prologue
	}
	if p.ServeWalltime <= 0 {
		p.ServeWalltime = d.ServeWalltime
	}
	if p.DrainGrace <= 0 {
		p.DrainGrace = d.DrainGrace
	}
	// The cordon must leave a serving majority of the walltime: a lead at
	// or beyond the walltime would cordon the incarnation the moment it
	// starts serving, so clamp to half — mirroring the LoWater clamp's
	// anti-livelock reasoning.
	if p.CordonLead < 0 {
		p.CordonLead = 0
	}
	if p.CordonLead > p.ServeWalltime/2 {
		p.CordonLead = p.ServeWalltime / 2
	}
	p.Scale = p.Scale.withDefaults()
	return p
}

// NewFederation builds the scenario on a bare kernel (unit tests).
func NewFederation(k *sim.Kernel, p FederationParams, done func(*Req)) *Federation {
	p = p.withDefaults()
	return newFederation(k, p, func(c *fedCluster, m perfmodel.ModelSpec, onC func(*serving.Sequence)) *EngineSim {
		return MustEngineSim(c.k, m, p.GPU, 0, onC)
	}, done, nil)
}

// NewFederationIn builds the scenario drawing kernel and engines from an
// experiment-fleet arena. Engines are borrowed per deployment incarnation
// and reclaimed (reset) at the next cell — or mid-cell, when an incarnation
// dies and the pool recycles its engine for the next cold start.
func NewFederationIn(a *Arena, p FederationParams, done func(*Req)) *Federation {
	p = p.withDefaults()
	f := newFederation(a.k, p, func(c *fedCluster, m perfmodel.ModelSpec, onC func(*serving.Sequence)) *EngineSim {
		return a.EngineSimIn(m, p.GPU, 0, onC)
	}, done, nil)
	f.recycle = a.Reclaim
	return f
}

func newFederation(k *sim.Kernel, p FederationParams, newEngine func(*fedCluster, perfmodel.ModelSpec, func(*serving.Sequence)) *EngineSim, done func(*Req), par *parState) *Federation {
	f := &Federation{
		k:         k,
		p:         p,
		newEngine: newEngine,
		done:      done,
		par:       par,
		fe:        newShardFE(k, p.Shards, p.CritSection),
		scratch:   make([]federation.EndpointInfo, 0, p.Clusters),
	}
	for i := 0; i < p.Clusters; i++ {
		c := &fedCluster{f: f, idx: i, k: k}
		if par != nil {
			c.shard = i + 1
			c.k = par.ss.Shard(c.shard)
		}
		c.cl = cluster.New(fmt.Sprintf("fed-%d", i), p.NodesPerCluster, p.GPUsPerNode, p.GPU)
		c.name = c.cl.Name()
		c.sched = scheduler.New(c.cl, kernelClock{c.k}, scheduler.Config{
			Prologue: p.Prologue,
			Backfill: true,
			Timer:    c.k.Schedule,
		})
		for m := range p.Models {
			c.deps = append(c.deps, &fedDep{
				f: f, c: c, model: m,
				coldStart: p.Prologue + p.Models[m].LoadTime(p.GPU),
				fcArrive:  NewForecast(p.Scale.ForecastAlpha, p.Scale.ForecastBeta),
				fcServe:   NewForecast(p.Scale.ForecastAlpha, 0),
			})
		}
		c.snap.deps = make([]fedDepSnap, len(p.Models))
		f.clusters = append(f.clusters, c)
		if p.BGPeriod > 0 && p.BGGPUs > 0 {
			// Background jobs self-schedule forever; open-loop drivers end
			// the run with Kernel.Stop once the trace completes.
			var bg func()
			bg = func() {
				c.submitBG()
				c.k.Schedule(p.BGPeriod, bg)
			}
			c.k.Schedule(p.BGStagger*time.Duration(i)+p.BGPeriod/2, bg)
		}
		if p.Scale.MaxInstances > 1 {
			// The scaler ticks per cluster, evaluating every deployment pool
			// in slice order — one deterministic event per interval. Like the
			// background jobs it self-schedules forever.
			c.armScaler()
		}
	}
	if p.Replay != nil {
		f.replay = newFedReplay(f, *p.Replay)
		// A live system boots with MinInstances:1 per deployment; the twin
		// matches by pre-starting every pool at t=0 instead of cold-starting
		// on first demand. After boot, only replayed restart events revive a
		// killed pool.
		for _, c := range f.clusters {
			for _, d := range c.deps {
				d.startInstance()
			}
		}
	}
	return f
}

// submitBG submits one background science job; the scheduler's own walltime
// timer reclaims it (the real TimedOut path).
func (c *fedCluster) submitBG() {
	_, err := c.sched.Submit(scheduler.JobSpec{
		Name:     "science-batch",
		User:     "bg",
		GPUs:     c.f.p.BGGPUs,
		Walltime: c.f.p.BGWalltime,
	})
	if err != nil {
		panic(err)
	}
	c.noteQueued()
}

func (c *fedCluster) noteQueued() {
	if q := c.sched.QueuedCount(); q > c.queuedPeak {
		c.queuedPeak = q
	}
}

// Arrive is a client request hitting the federation gateway: shard-lane
// admission (serialized critical section), PostWork, then the routing
// decision.
func (f *Federation) Arrive(r *Req) {
	r.ArrivalAt = f.k.Now()
	f.arrivals++
	f.fe.admit(uint64(r.ID), func() {
		r.GatewayAt = f.k.Now()
		f.k.Schedule(f.p.PostWork, func() { f.route(r) })
	})
}

// route applies the real federation.Select priority ladder over live
// snapshots of every cluster's deployment and inventory state.
func (f *Federation) route(r *Req) {
	if f.replay != nil {
		f.routeReplay(r)
		return
	}
	m := r.Model
	n := len(f.clusters)
	spec := &f.p.Models[m]
	infos := f.scratch[:0]
	for i := 0; i < n; i++ {
		c := f.clusters[(m+i)%n]
		infos = append(infos, c.endpointInfo(m, spec))
	}
	f.scratch = infos[:0]
	idx, reason, err := federation.Select(infos)
	if err != nil {
		panic(err) // unreachable: the candidate list is never empty
	}
	switch reason {
	case federation.ReasonActive:
		f.rungs.Active++
	case federation.ReasonCapacity:
		f.rungs.Capacity++
	default:
		f.rungs.FirstConf++
	}
	target := f.clusters[(m+idx)%n]
	target.routed++
	f.deliver(target, m, r)
}

// endpointInfo is one cluster's routing-ladder candidate row. Sequentially
// it reads the cluster's live state (the router and the cluster share a
// kernel, so "live" is exact); under the parallel mode it reads the snapshot
// published at the last window barrier — the same staleness a live
// federation's status poller has, bounded by the lookahead.
func (c *fedCluster) endpointInfo(m int, spec *perfmodel.ModelSpec) federation.EndpointInfo {
	if c.f.par != nil {
		s := &c.snap.deps[m]
		return federation.EndpointInfo{
			ID:         c.name,
			ModelState: s.state,
			FreeGPUs:   c.snap.freeGPUs,
			NeededGPUs: spec.TensorParallel,
			Depth:      s.depth,
			Instances:  s.serving,
			Cordoned:   s.cordoned,
			DrainingAt: s.drainingAt,
		}
	}
	d := c.deps[m]
	serving, cordoned, drainingAt := d.routingView()
	return federation.EndpointInfo{
		ID:         c.name,
		ModelState: d.modelState(),
		FreeGPUs:   c.cl.Status().FreeGPUs,
		NeededGPUs: spec.TensorParallel,
		Depth:      d.depth(),
		Instances:  serving,
		Cordoned:   cordoned,
		DrainingAt: drainingAt,
	}
}

// routingView is one pass over the pool collecting what the routing ladder
// is told: the uncordoned serving count (the capacity worth advertising),
// whether serving capacity exists but all of it is cordoned ahead of an
// imminent drain, and how far away the soonest cordoned drain is. With
// CordonLead unset no instance ever cordons, so the view reduces exactly
// to servingCount / false / 0 — the drain-blind ladder inputs.
func (d *fedDep) routingView() (serving int, cordoned bool, drainingAt time.Duration) {
	total := 0
	var soonest sim.Time = -1
	for _, in := range d.insts {
		if in.state != instServing {
			continue
		}
		total++
		if in.cordoned {
			if soonest < 0 || in.drainAt < soonest {
				soonest = in.drainAt
			}
			continue
		}
		serving++
	}
	cordoned = total > 0 && serving == 0
	if soonest >= 0 {
		if dt := soonest - d.c.k.Now(); dt > 0 {
			drainingAt = time.Duration(dt)
		}
	}
	return serving, cordoned, drainingAt
}

// deliver hands a routed request to its target deployment: directly when
// router and cluster share a kernel, through the target shard's mailbox
// (paying the cross-shard latency that funds the lookahead) under the
// parallel mode.
func (f *Federation) deliver(c *fedCluster, m int, r *Req) {
	if f.par == nil {
		c.deps[m].offer(r)
		return
	}
	f.par.send(0, c.shard, func() { c.deps[m].offer(r) })
}

// migrateFrom re-routes a request whose placement on this cluster died. The
// routing decision is router state, so under the parallel mode the request
// rides the cluster→router mailbox before re-entering route.
func (c *fedCluster) migrateFrom(r *Req) {
	r.Migrations++
	f := c.f
	if f.par == nil {
		f.migrations++
		f.route(r)
		return
	}
	f.par.send(c.shard, 0, func() {
		f.migrations++
		f.route(r)
	})
}

// modelState aggregates the pool's lifecycle onto the paper's §4.3 states:
// serving anywhere beats loading beats queued. Draining instances report
// nothing — they must not attract new work, and their held GPUs keep the
// capacity rung honest.
func (d *fedDep) modelState() string {
	anyLoading, anyQueued := false, false
	var queued *fedInstance
	for _, in := range d.insts {
		switch in.state {
		case instServing:
			return "running"
		case instLoading:
			anyLoading = true
		case instQueued:
			if !anyQueued {
				queued = in
			}
			anyQueued = true
		}
	}
	if anyLoading {
		return "starting"
	}
	if anyQueued {
		if queued.job != nil && queued.job.State() == scheduler.Starting {
			return "starting"
		}
		return "queued"
	}
	return "cold"
}

// depth is the deployment's total queue depth (federation tie-break input):
// parked requests plus the waiting+running load of every instance still
// accepting work. Draining incarnations are excluded — their remaining batch
// occupies no capacity a new request could wait for.
func (d *fedDep) depth() int {
	n := len(d.pending)
	for _, in := range d.insts {
		if in.state == instServing {
			n += in.eng.Depth()
		}
	}
	return n
}

// offer delivers a routed request: straight into the least-loaded serving
// instance when one exists, parked (cold-starting the pool's first instance
// if it is empty) otherwise.
func (d *fedDep) offer(r *Req) {
	d.arrivedTick++ // forecast sample: arrivals since the last scaler tick
	if in := d.pickServing(); in != nil {
		r.EngineAt = d.c.k.Now()
		in.eng.Submit(r.PromptTok, r.OutputTok, r)
		return
	}
	d.pending = append(d.pending, r)
	if len(d.insts) == 0 && d.f.replay == nil {
		// Under replay, a dead pool revives only at its scheduled restart
		// event — a demand-driven cold start here would self-heal faster
		// than the live system it is calibrated against.
		d.startInstance()
	}
}

// startInstance submits one serving job: the incarnation enters the
// scheduler's real Queued→Starting→Running lifecycle, competing with
// background jobs. Both the demand-driven first instance and every
// auto-scaler growth step pay this same cold-start path.
func (d *fedDep) startInstance() {
	f := d.f
	spec := f.p.Models[d.model]
	load := spec.LoadTime(f.p.GPU)
	in := &fedInstance{d: d, state: instQueued}
	d.insts = append(d.insts, in)
	d.c.coldStarts++
	d.notePool()
	job, err := d.c.sched.Submit(scheduler.JobSpec{
		Name:      spec.Name,
		User:      "first-serve",
		GPUs:      spec.TensorParallel,
		Walltime:  load + f.p.ServeWalltime + f.p.DrainGrace,
		OnRunning: func(j *scheduler.Job) { in.onJobRunning(j, load) },
		OnEnd:     func(j *scheduler.Job, st scheduler.State) { in.onJobEnd(j, st) },
	})
	if err != nil {
		panic(err) // unreachable: GPUs > 0 and the scheduler is never closed
	}
	in.job = job
	d.c.noteQueued()
}

// onJobRunning fires when the scheduler grants nodes (Starting→Running):
// the instance boots and loads weights before it can serve.
func (in *fedInstance) onJobRunning(j *scheduler.Job, load time.Duration) {
	if in.job != j || in.state != instQueued {
		return
	}
	in.state = instLoading
	in.d.c.k.Schedule(load, func() { in.onLoaded(j) })
}

// onLoaded opens the instance for traffic: the engine incarnation is
// created, parked requests flush into the pool, and the serve-walltime drain
// is armed.
func (in *fedInstance) onLoaded(j *scheduler.Job) {
	if in.job != j || in.state != instLoading {
		return
	}
	d := in.d
	f := d.f
	spec := f.p.Models[d.model]
	in.state = instServing
	in.eng = f.newEngine(d.c, spec, func(seq *serving.Sequence) { in.onServed(j, seq) })
	pend := d.pending
	d.pending = nil
	now := d.c.k.Now()
	for _, r := range pend {
		// Flush least-loaded across the pool: sibling instances may have
		// come up at the same instant.
		t := d.pickServing()
		r.EngineAt = now
		t.eng.Submit(r.PromptTok, r.OutputTok, r)
	}
	in.drainAt = now + f.p.ServeWalltime
	d.c.k.Schedule(f.p.ServeWalltime, func() { in.beginDrain(j, false) })
	if lead := f.p.CordonLead; lead > 0 {
		// Cordon one lead ahead of the drain: selection and the routing
		// ladder stop sending new work here while the remaining walltime
		// is too short to be worth queueing behind.
		d.c.k.Schedule(f.p.ServeWalltime-lead, func() {
			if in.job == j && in.state == instServing {
				in.cordoned = true
			}
		})
	}
	if f.p.Scale.Predictive {
		// Arm the replacement pre-warm one cold start before the drain;
		// the guard re-checks demand and pool room when it fires.
		lead := d.coldStart
		if lead > f.p.ServeWalltime {
			lead = f.p.ServeWalltime
		}
		d.c.k.Schedule(f.p.ServeWalltime-lead, func() { d.preWarmReplacement(j, in) })
	}
}

// onServed completes one request and, while draining, watches for the batch
// to empty.
func (in *fedInstance) onServed(j *scheduler.Job, seq *serving.Sequence) {
	r := seq.Ctx.(*Req)
	d := in.d
	f := d.f
	now := d.c.k.Now()
	r.CompletedAt = now
	r.ObservedAt = now
	d.c.served++
	d.servedTick++ // forecast sample: completions since the last scaler tick
	if f.done != nil {
		if f.par != nil {
			// The completion callback drives router-side state (closed-loop
			// re-issue, open-loop stop accounting): hop it home through the
			// cluster→router mailbox.
			f.par.send(d.c.shard, 0, func() { f.done(r) })
		} else {
			f.done(r)
		}
	}
	if in.state == instDraining && in.job == j {
		in.maybeFinishDrain(j)
	}
}

// maybeFinishDrain schedules the drain completion once the instance has
// nothing live: no queued or running work and no in-flight delivery (a miss
// on the latter would tear the job down with completions undelivered). Runs
// on a zero-delay event so every completion delivered by the current engine
// iteration reaches the client before the job is released.
func (in *fedInstance) maybeFinishDrain(j *scheduler.Job) {
	if in.drainDone || in.eng.Depth() != 0 || in.eng.DeliveryPending() {
		return
	}
	in.drainDone = true
	in.d.c.k.Schedule(0, func() { in.finishDrain(j) })
}

// beginDrain stops the instance accepting work: its engine-waiting requests
// are pulled back and migrated, and the running batch finishes before the
// job is released. Two callers share it: the serve-walltime expiring
// (scaleDown=false, with DrainGrace before the scheduler's walltime timer
// hard-kills the job) and the auto-scaler shrinking an underused pool
// (scaleDown=true — the same machinery, counted separately).
func (in *fedInstance) beginDrain(j *scheduler.Job, scaleDown bool) {
	if in.job != j || in.state != instServing {
		return
	}
	d := in.d
	in.state = instDraining
	if scaleDown {
		d.c.scaleDowns++
	} else {
		d.c.drains++
	}
	// Pull engine-waiting sequences back: collect first (Abort mutates the
	// ring), then tombstone, then re-route. With sibling instances still
	// serving, the ladder's active rung lands them right back on the pool.
	type waiting struct {
		id int64
		r  *Req
	}
	var ws []waiting
	in.eng.EachWaiting(func(s *serving.Sequence) {
		ws = append(ws, waiting{s.ID, s.Ctx.(*Req)})
	})
	for _, w := range ws {
		in.eng.Abort(w.id)
	}
	for _, w := range ws {
		d.c.migrateFrom(w.r)
	}
	in.maybeFinishDrain(j)
}

// finishDrain releases the drained job back to the scheduler (Completed).
func (in *fedInstance) finishDrain(j *scheduler.Job) {
	if in.job != j || in.state != instDraining {
		return
	}
	in.d.c.sched.Complete(j.ID)
}

// onJobEnd is the scheduler's terminal callback: graceful drain completion
// (Completed), an auto-scaler cancel of a still-queued incarnation
// (Cancelled), or the real walltime timer firing with a live batch
// (TimedOut). Either way the incarnation is harvested and leaves the pool;
// survivors migrate, and pending demand with no pool left re-routes (which
// cold-restarts the deployment if the ladder sends it back).
func (in *fedInstance) onJobEnd(j *scheduler.Job, terminal scheduler.State) {
	if in.job != j || in.state == instDead {
		return
	}
	d := in.d
	f := d.f
	spec := f.p.Models[d.model]
	// TimedOut is the walltime timer firing on a live batch; Failed is a
	// replayed kill event through scheduler.Fail. Both die hard: waiting,
	// running, and undelivered work is orphaned and must migrate.
	hardKill := terminal == scheduler.TimedOut || terminal == scheduler.Failed
	in.state = instDead
	in.job = nil
	var orphans []*Req
	if in.eng != nil {
		d.c.busyGPU += time.Duration(int64(in.eng.Stats().BusyTime) * int64(spec.TensorParallel))
		if hardKill {
			in.eng.EachWaiting(func(s *serving.Sequence) { orphans = append(orphans, s.Ctx.(*Req)) })
			in.eng.EachRunning(func(s *serving.Sequence) { orphans = append(orphans, s.Ctx.(*Req)) })
			// Completions of the iteration in flight at kill time never
			// finished on the dead node: they are live work too, invisible
			// to both iterators above (Step already removed them from the
			// batch, Halt will drop their delivery).
			in.eng.EachUndelivered(func(s *serving.Sequence) { orphans = append(orphans, s.Ctx.(*Req)) })
			d.c.hardKills++
		}
		in.eng.Halt()
		// The halted sim's remaining events are no-ops that never touch the
		// inner engine, and every live sequence has been harvested above, so
		// the engine itself can go back to the arena pool for the next
		// incarnation instead of waiting for cell teardown.
		if f.recycle != nil {
			f.recycle(in.eng.eng)
		}
		in.eng = nil
	}
	d.removeInstance(in)
	if len(d.insts) == 0 {
		pend := d.pending
		d.pending = nil
		for _, r := range pend {
			d.c.migrateFrom(r)
		}
	}
	for _, r := range orphans {
		d.c.migrateFrom(r)
	}
}

// removeInstance detaches a dead incarnation, preserving pool order (order
// is a tie-break input for instance selection, so it must be deterministic).
func (d *fedDep) removeInstance(in *fedInstance) {
	for i, x := range d.insts {
		if x == in {
			copy(d.insts[i:], d.insts[i+1:])
			d.insts[len(d.insts)-1] = nil
			d.insts = d.insts[:len(d.insts)-1]
			return
		}
	}
}

// Rungs returns the per-rung routing decision counts.
func (f *Federation) Rungs() FedRungs { return f.rungs }

// Migrations returns how many times requests were re-routed off a dying
// placement.
func (f *Federation) Migrations() int64 { return f.migrations }

// Arrivals returns how many requests entered the federation gateway.
func (f *Federation) Arrivals() int64 { return f.arrivals }

// Completions returns how many requests were completed and delivered — the
// conservation invariant's other half (no request lost, none double-done).
// It sums the per-cluster served counters, which are cluster-side state:
// under the parallel mode, read it only between runs or from a window
// barrier (StopWhen / OnBarrier), never inside a router event.
func (f *Federation) Completions() int64 {
	var n int64
	for _, c := range f.clusters {
		n += c.served
	}
	return n
}

// ClusterStats snapshots per-cluster accounting, folding in any still-live
// engine incarnations (closed-loop runs end mid-flight, including mid-drain:
// a draining incarnation's busy time counts exactly once and it is not
// reported as a live pool member). The snapshot is a pure read — calling it
// twice yields identical stats.
func (f *Federation) ClusterStats() []FedClusterStats {
	out := make([]FedClusterStats, len(f.clusters))
	for i, c := range f.clusters {
		busy := c.busyGPU
		live := 0
		for _, d := range c.deps {
			live += d.liveCount()
			for _, in := range d.insts {
				if in.eng != nil {
					busy += time.Duration(int64(in.eng.Stats().BusyTime) * int64(f.p.Models[d.model].TensorParallel))
				}
			}
		}
		out[i] = FedClusterStats{
			Name:            c.cl.Name(),
			Routed:          c.routed,
			Served:          c.served,
			ColdStarts:      c.coldStarts,
			Drains:          c.drains,
			HardKills:       c.hardKills,
			LiveInstances:   live,
			PeakInstances:   c.peakInstances,
			ScaleUps:        c.scaleUps,
			ScaleDowns:      c.scaleDowns,
			ScaleRefused:    c.scaleRefused,
			PreWarms:        c.preWarms,
			BusyGPUSeconds:  busy.Seconds(),
			TotalGPUs:       f.p.NodesPerCluster * f.p.GPUsPerNode,
			SchedQueuedPeak: c.queuedPeak,
		}
	}
	return out
}
