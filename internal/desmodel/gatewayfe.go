package desmodel

import (
	"time"

	"github.com/argonne-first/first/internal/sim"
)

// GatewayFEParams model the gateway front-end's admission path in isolation:
// once the serving substrate is fast, the front-end's lock discipline is what
// bounds end-to-end throughput (§5.3.1's worker-model study, and the
// single-coordinator failure mode Pronto identifies). Each request charges a
// serialized critical section — cache lookup, limiter check, ID issue — on
// one of Shards locks, then performs PostWork off-lock (fully parallel).
type GatewayFEParams struct {
	// Shards is the front-end lock count; 1 models the single-mutex
	// front-end, larger values the sharded one.
	Shards int
	// CritSection is the per-request cost under a shard lock.
	CritSection time.Duration
	// PostWork is the per-request cost outside any lock (parse, marshal);
	// it adds latency but never limits throughput.
	PostWork time.Duration
}

// DefaultGatewayFEParams calibrate to a few microseconds of locked work per
// request — a map lookup plus token-bucket arithmetic — so a single lock
// caps admission at ~250k req/s.
func DefaultGatewayFEParams(shards int) GatewayFEParams {
	return GatewayFEParams{
		Shards:      shards,
		CritSection: 4 * time.Microsecond,
		PostWork:    25 * time.Microsecond,
	}
}

// shardFE is the sharded admission front-end shared by the storm and
// federation scenarios: requests hash onto one of a power-of-two set of
// serialized lanes, each charging a critical section per item, and continue
// off-lane from there. Shard count is rounded up to a power of two so the
// hash is a mask, mirroring the live gateway.
type shardFE struct {
	k      *sim.Kernel
	shards []*lane
	mask   uint64
}

func newShardFE(k *sim.Kernel, shards int, critSection time.Duration) *shardFE {
	n := 1
	for n < shards {
		n <<= 1
	}
	fe := &shardFE{k: k, mask: uint64(n - 1)}
	for i := 0; i < n; i++ {
		fe.shards = append(fe.shards, newLane(k, critSection))
	}
	return fe
}

// admit hashes an identity onto its shard lane and runs then once the lane
// has charged the critical section.
func (fe *shardFE) admit(id uint64, then func()) {
	fe.shards[splitmix64(id)&fe.mask].enqueue(then)
}

// peakShardQueue reports the deepest backlog any shard lane reached — the
// observable congestion signal (a single-lock arm's queue grows with the
// whole storm; sharded arms stay shallow).
func (fe *shardFE) peakShardQueue() int {
	peak := 0
	for _, ln := range fe.shards {
		if ln.maxDepth > peak {
			peak = ln.maxDepth
		}
	}
	return peak
}

// GatewayFE is the front-end-only path on a kernel: requests hash to a
// shard lane (a serialized queue charging CritSection per item) and complete
// after PostWork. No engine sits behind it — the scenario isolates admission.
type GatewayFE struct {
	k    *sim.Kernel
	p    GatewayFEParams
	fe   *shardFE
	done func(*Req)
}

// NewGatewayFE builds the front-end model.
func NewGatewayFE(k *sim.Kernel, p GatewayFEParams, done func(*Req)) *GatewayFE {
	return &GatewayFE{k: k, p: p, fe: newShardFE(k, p.Shards, p.CritSection), done: done}
}

// splitmix64 spreads sequential user IDs uniformly over shards.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Arrive is one user's request hitting the front-end. The request's ID is
// its user identity: an arrival storm is distinct one-shot users, so every
// request hashes independently.
func (s *GatewayFE) Arrive(r *Req) {
	r.ArrivalAt = s.k.Now()
	s.fe.admit(uint64(r.ID), func() {
		r.GatewayAt = s.k.Now()
		s.k.Schedule(s.p.PostWork, func() {
			r.CompletedAt = s.k.Now()
			r.ObservedAt = r.CompletedAt
			if s.done != nil {
				s.done(r)
			}
		})
	})
}

// PeakShardQueue exposes the front-end's congestion high-water mark (the
// storm experiment's headline observable).
func (s *GatewayFE) PeakShardQueue() int { return s.fe.peakShardQueue() }
