package desmodel

import (
	"time"

	"github.com/argonne-first/first/internal/sim"
)

// GatewayFEParams model the gateway front-end's admission path in isolation:
// once the serving substrate is fast, the front-end's lock discipline is what
// bounds end-to-end throughput (§5.3.1's worker-model study, and the
// single-coordinator failure mode Pronto identifies). Each request charges a
// serialized critical section — cache lookup, limiter check, ID issue — on
// one of Shards locks, then performs PostWork off-lock (fully parallel).
type GatewayFEParams struct {
	// Shards is the front-end lock count; 1 models the single-mutex
	// front-end, larger values the sharded one.
	Shards int
	// CritSection is the per-request cost under a shard lock.
	CritSection time.Duration
	// PostWork is the per-request cost outside any lock (parse, marshal);
	// it adds latency but never limits throughput.
	PostWork time.Duration
}

// DefaultGatewayFEParams calibrate to a few microseconds of locked work per
// request — a map lookup plus token-bucket arithmetic — so a single lock
// caps admission at ~250k req/s.
func DefaultGatewayFEParams(shards int) GatewayFEParams {
	return GatewayFEParams{
		Shards:      shards,
		CritSection: 4 * time.Microsecond,
		PostWork:    25 * time.Microsecond,
	}
}

// GatewayFE is the front-end-only path on a kernel: requests hash to a
// shard lane (a serialized queue charging CritSection per item) and complete
// after PostWork. No engine sits behind it — the scenario isolates admission.
type GatewayFE struct {
	k      *sim.Kernel
	p      GatewayFEParams
	shards []*lane
	mask   uint64
	done   func(*Req)
}

// NewGatewayFE builds the front-end model. Shards is rounded up to a power
// of two so request hashing is a mask, mirroring the live gateway.
func NewGatewayFE(k *sim.Kernel, p GatewayFEParams, done func(*Req)) *GatewayFE {
	n := 1
	for n < p.Shards {
		n <<= 1
	}
	s := &GatewayFE{k: k, p: p, mask: uint64(n - 1), done: done}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, newLane(k, p.CritSection))
	}
	return s
}

// splitmix64 spreads sequential user IDs uniformly over shards.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Arrive is one user's request hitting the front-end. The request's ID is
// its user identity: an arrival storm is distinct one-shot users, so every
// request hashes independently.
func (s *GatewayFE) Arrive(r *Req) {
	r.ArrivalAt = s.k.Now()
	ln := s.shards[splitmix64(uint64(r.ID))&s.mask]
	ln.enqueue(func() {
		r.GatewayAt = s.k.Now()
		s.k.Schedule(s.p.PostWork, func() {
			r.CompletedAt = s.k.Now()
			r.ObservedAt = r.CompletedAt
			if s.done != nil {
				s.done(r)
			}
		})
	})
}

// PeakShardQueue reports the deepest backlog any shard lane reached — the
// storm's observable congestion signal (the single-lock arm's queue grows
// with the whole storm; sharded arms stay shallow).
func (s *GatewayFE) PeakShardQueue() int {
	peak := 0
	for _, ln := range s.shards {
		if ln.maxDepth > peak {
			peak = ln.maxDepth
		}
	}
	return peak
}
