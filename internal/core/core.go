// Package core assembles the FIRST toolkit (Fig. 1): clusters with PBS-like
// schedulers, Globus-Compute-style endpoints and hub, the auth service with
// its confidential client, the federation router, the batch runner, and the
// OpenAI-compatible gateway — everything a deployment (§4) consists of, in
// process, on a pluggable clock.
package core

import (
	"fmt"
	"time"

	"github.com/argonne-first/first/internal/auth"
	"github.com/argonne-first/first/internal/batch"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/cluster"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/federation"
	"github.com/argonne-first/first/internal/gateway"
	"github.com/argonne-first/first/internal/metrics"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/scheduler"
	"github.com/argonne-first/first/internal/store"
)

// ClusterSpec declares one federated cluster.
type ClusterSpec struct {
	Name        string
	Nodes       int
	GPUsPerNode int
	GPU         perfmodel.GPUSpec
	// Prologue overrides the scheduler's node-acquisition time.
	Prologue time.Duration
	// Backfill enables scheduler backfill.
	Backfill bool
}

// DeploymentSpec declares one model hosted on one or more clusters; the
// cluster order defines federation priority ("the order in which endpoints
// are listed in the configuration registry", §4.5).
type DeploymentSpec struct {
	Model    string
	Clusters []string
	Config   fabric.DeploymentConfig // Model field is filled in
}

// Config declares a whole FIRST installation.
type Config struct {
	Clock       clock.Clock
	Clusters    []ClusterSpec
	Deployments []DeploymentSpec
	Gateway     gateway.Config
	Auth        auth.Config
	Hub         fabric.HubConfig
	// EndpointPickup overrides endpoint task-pickup latency.
	EndpointPickup time.Duration
	// TokenCacheTTL sets introspection-cache freshness (0 = default).
	TokenCacheTTL time.Duration
	// DisableTokenCache forces an introspection round trip per request
	// (the pre-Optimization-2 behaviour, for ablations).
	DisableTokenCache bool
	Catalog           *perfmodel.Catalog
}

// System is a fully wired FIRST installation.
type System struct {
	Clock      clock.Clock
	Catalog    *perfmodel.Catalog
	Auth       *auth.Service
	Policy     *auth.Policy
	Store      *store.Store
	Metrics    *metrics.Registry
	Hub        *fabric.Hub
	Client     *fabric.Client
	Router     *federation.Router
	Batches    *batch.Runner
	Gateway    *gateway.Server
	Clusters   map[string]*cluster.Cluster
	Schedulers map[string]*scheduler.Scheduler
	Endpoints  map[string]*fabric.Endpoint

	clientID     string
	clientSecret string
}

// NewSystem builds and starts an installation.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Clock == nil {
		cfg.Clock = clock.NewScaled(1000)
	}
	if cfg.Catalog == nil {
		cfg.Catalog = perfmodel.Default
	}
	if len(cfg.Clusters) == 0 {
		return nil, fmt.Errorf("core: no clusters configured")
	}
	sys := &System{
		Clock:      cfg.Clock,
		Catalog:    cfg.Catalog,
		Store:      store.New(0),
		Metrics:    metrics.NewRegistry(),
		Clusters:   make(map[string]*cluster.Cluster),
		Schedulers: make(map[string]*scheduler.Scheduler),
		Endpoints:  make(map[string]*fabric.Endpoint),
	}

	// Auth: identity providers + the administrators' confidential client.
	sys.Auth = auth.NewService(cfg.Clock, cfg.Auth)
	sys.Auth.RegisterProvider(auth.Provider{Name: "anl"})
	sys.Auth.RegisterProvider(auth.Provider{Name: "uchicago"})
	sys.clientID = "first-gateway"
	sys.clientSecret = sys.Auth.RegisterConfidentialClient(sys.clientID)
	sys.Policy = auth.NewPolicy(ScopeInference)

	// Fabric hub + per-cluster endpoints.
	hubCfg := cfg.Hub
	if hubCfg == (fabric.HubConfig{}) {
		hubCfg = fabric.DefaultHubConfig()
	}
	sys.Hub = fabric.NewHub(cfg.Clock, hubCfg, sys.clientID, sys.clientSecret, sys.Metrics)
	for _, cs := range cfg.Clusters {
		if cs.GPU.Name == "" {
			cs.GPU = perfmodel.A100_40
		}
		cl := cluster.New(cs.Name, cs.Nodes, cs.GPUsPerNode, cs.GPU)
		sched := scheduler.New(cl, cfg.Clock, scheduler.Config{Prologue: cs.Prologue, Backfill: cs.Backfill})
		ep, err := fabric.NewEndpoint(fabric.EndpointConfig{
			ID:            "ep-" + cs.Name,
			Scheduler:     sched,
			Catalog:       cfg.Catalog,
			PickupLatency: cfg.EndpointPickup,
		}, cfg.Clock, sys.Metrics)
		if err != nil {
			return nil, err
		}
		sys.Hub.RegisterEndpoint(ep)
		sys.Clusters[cs.Name] = cl
		sys.Schedulers[cs.Name] = sched
		sys.Endpoints[ep.ID()] = ep
	}

	// Deployments + federation routes (registry order = priority).
	sys.Router = federation.NewRouter(cfg.Catalog)
	for _, ds := range cfg.Deployments {
		dcfg := ds.Config
		dcfg.Model = ds.Model
		for _, clusterName := range ds.Clusters {
			ep, ok := sys.Endpoints["ep-"+clusterName]
			if !ok {
				return nil, fmt.Errorf("core: deployment %s references unknown cluster %q", ds.Model, clusterName)
			}
			if _, err := ep.Deploy(dcfg); err != nil {
				return nil, fmt.Errorf("core: deploying %s on %s: %w", ds.Model, clusterName, err)
			}
			sys.Router.AddRoute(ds.Model, ep)
		}
	}

	// Gateway-side SDK + token cache + batch runner + HTTP server.
	sys.Client = fabric.NewClient(sys.Hub, fabric.ClientConfig{
		Credentials: fabric.Credentials{ClientID: sys.clientID, ClientSecret: sys.clientSecret},
	})
	ttl := cfg.TokenCacheTTL
	if cfg.DisableTokenCache {
		ttl = time.Nanosecond // effectively uncached
	}
	tokens := auth.NewTokenCache(sys.Auth, cfg.Clock, sys.clientID, sys.clientSecret, ttl)
	sys.Batches = batch.NewRunner(cfg.Clock, sys.Store, cfg.Catalog)
	gw, err := gateway.New(cfg.Gateway, gateway.Deps{
		Clock:   cfg.Clock,
		Tokens:  tokens,
		Policy:  sys.Policy,
		Router:  sys.Router,
		Client:  sys.Client,
		Batches: sys.Batches,
		Store:   sys.Store,
		Catalog: cfg.Catalog,
		Metrics: sys.Metrics,
	})
	if err != nil {
		return nil, err
	}
	sys.Gateway = gw
	return sys, nil
}

// ScopeInference is the base scope the gateway requires.
const ScopeInference = "first:inference"

// RegisterUser adds an identity (provider "anl") and returns its subject.
func (s *System) RegisterUser(sub, username string) error {
	s.Store.EnsureUser(sub, username, s.Clock.Now())
	return s.Auth.RegisterUser(auth.Identity{Sub: sub, Username: username, Provider: "anl", MFAPassed: true})
}

// Login issues a token grant with the inference scope (§4.6 helper flow).
func (s *System) Login(sub string) (auth.Grant, error) {
	return s.Auth.Login(sub, ScopeInference)
}

// Close shuts the installation down.
func (s *System) Close() {
	for _, ep := range s.Endpoints {
		ep.Close()
	}
	s.Hub.Close()
	for _, sched := range s.Schedulers {
		sched.Close()
	}
}

// DefaultTestbed mirrors the paper's deployment: Sophia (24×8 A100) hosting
// Llama-70B, Llama-8B, and NV-Embed-v2, federated with Polaris hosting
// Llama-8B as the second target (§4.5). The clock defaults to 1000× so
// cold starts take milliseconds of wall time.
func DefaultTestbed(clk clock.Clock) (*System, error) {
	return NewSystem(DefaultTestbedConfig(clk))
}

// DefaultTestbedConfig returns the paper-default installation declaration,
// for callers that tweak knobs (gateway shards, rate limits) before building.
func DefaultTestbedConfig(clk clock.Clock) Config {
	return Config{
		Clock: clk,
		Clusters: []ClusterSpec{
			{Name: "sophia", Nodes: 24, GPUsPerNode: 8},
			{Name: "polaris", Nodes: 40, GPUsPerNode: 4},
		},
		Deployments: []DeploymentSpec{
			{
				Model:    perfmodel.Llama70B,
				Clusters: []string{"sophia"},
				Config:   fabric.DeploymentConfig{MinInstances: 1, MaxInstances: 4},
			},
			{
				Model:    perfmodel.Llama8B,
				Clusters: []string{"sophia", "polaris"},
				Config:   fabric.DeploymentConfig{MinInstances: 1, MaxInstances: 2},
			},
			{
				Model:    perfmodel.NVEmbed,
				Clusters: []string{"sophia"},
				Config:   fabric.DeploymentConfig{MinInstances: 1, MaxInstances: 1},
			},
		},
		Gateway: gateway.Config{UserRatePerSec: 100},
	}
}
