package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/gateway"
	"github.com/argonne-first/first/internal/scheduler"
)

// Tool exposure implements the §7 future-work direction: the same gateway
// that serves inference also runs pre-registered custom codes and
// traditional HPC simulations as tool calls.

// ExposeTool pre-registers a function on a cluster's endpoint and routes it
// through the gateway at POST /v1/tools/{name}, optionally gated by a
// Globus group.
func (s *System) ExposeTool(name, clusterName, group string, handler fabric.Handler) error {
	ep, ok := s.Endpoints["ep-"+clusterName]
	if !ok {
		return fmt.Errorf("core: unknown cluster %q", clusterName)
	}
	ep.RegisterFunction(name, handler)
	s.Gateway.RegisterTool(gateway.ToolRoute{Name: name, Endpoint: ep, Group: group})
	return nil
}

// SimulateRequest is the payload of the built-in "hpc.simulate" tool: a
// stencil-style simulation sized by grid cells and time steps.
type SimulateRequest struct {
	Name      string `json:"name"`
	GridCells int    `json:"grid_cells"`
	Steps     int    `json:"steps"`
	GPUs      int    `json:"gpus"`
}

// SimulateResult reports the completed simulation job.
type SimulateResult struct {
	Name       string  `json:"name"`
	JobID      int64   `json:"job_id"`
	GPUs       int     `json:"gpus"`
	QueueWaitS float64 `json:"queue_wait_s"`
	RuntimeS   float64 `json:"runtime_s"`
	// Residual is a deterministic convergence figure for the run.
	Residual float64 `json:"residual"`
}

// cellUpdatesPerGPUPerSec calibrates the simulation tool's compute model.
const cellUpdatesPerGPUPerSec = 2e9

// RegisterHPCSimulationTool exposes "hpc.simulate" on the named cluster:
// each call submits a dedicated scheduler job, holds the allocation for the
// modeled compute time, and returns job statistics — a traditional HPC
// workload driven through the inference API.
func (s *System) RegisterHPCSimulationTool(clusterName, group string) error {
	sched, ok := s.Schedulers[clusterName]
	if !ok {
		return fmt.Errorf("core: unknown cluster %q", clusterName)
	}
	handler := func(ctx context.Context, payload []byte) ([]byte, error) {
		var req SimulateRequest
		if err := fabric.UnmarshalPayload(payload, &req); err != nil {
			return nil, err
		}
		if req.GridCells <= 0 || req.Steps <= 0 {
			return nil, fmt.Errorf("hpc.simulate: grid_cells and steps must be positive")
		}
		if req.GPUs <= 0 {
			req.GPUs = 1
		}
		compute := time.Duration(float64(req.GridCells) * float64(req.Steps) /
			(cellUpdatesPerGPUPerSec * float64(req.GPUs)) * float64(time.Second))

		done := make(chan SimulateResult, 1)
		fail := make(chan error, 1)
		job, err := sched.Submit(scheduler.JobSpec{
			Name: "sim:" + req.Name,
			User: "tool:hpc.simulate",
			GPUs: req.GPUs,
			OnRunning: func(j *scheduler.Job) {
				s.Clock.Sleep(compute)
				res := SimulateResult{
					Name:       req.Name,
					JobID:      j.ID,
					GPUs:       req.GPUs,
					QueueWaitS: j.QueueWait().Seconds(),
					RuntimeS:   compute.Seconds(),
					Residual:   1.0 / math.Sqrt(float64(req.Steps)),
				}
				sched.Complete(j.ID)
				done <- res
			},
			OnEnd: func(j *scheduler.Job, st scheduler.State) {
				if st != scheduler.Completed {
					select {
					case fail <- fmt.Errorf("hpc.simulate: job ended %s", st):
					default:
					}
				}
			},
		})
		if err != nil {
			return nil, err
		}
		_ = job
		select {
		case res := <-done:
			return fabric.MarshalPayload(res), nil
		case err := <-fail:
			return nil, err
		case <-ctx.Done():
			sched.Cancel(job.ID)
			return nil, ctx.Err()
		}
	}
	return s.ExposeTool("hpc.simulate", clusterName, group, handler)
}
