package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/client"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/perfmodel"
)

// newTestSystem boots the default testbed on a heavily time-dilated clock
// and returns a connected client for user "alice".
func newTestSystem(t *testing.T) (*System, *client.Client) {
	t.Helper()
	sys, err := DefaultTestbed(clock.NewScaled(20000))
	if err != nil {
		t.Fatalf("DefaultTestbed: %v", err)
	}
	t.Cleanup(sys.Close)
	if err := sys.RegisterUser("alice", "alice@anl.gov"); err != nil {
		t.Fatalf("RegisterUser: %v", err)
	}
	grant, err := sys.Login("alice")
	if err != nil {
		t.Fatalf("Login: %v", err)
	}
	c := client.New("", grant.AccessToken, client.WithHandler(sys.Gateway))
	return sys, c
}

func TestSystemChatCompletion(t *testing.T) {
	_, c := newTestSystem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	resp, err := c.ChatCompletion(ctx, openaiapi.ChatCompletionRequest{
		Model: perfmodel.Llama8B,
		Messages: []openaiapi.Message{
			{Role: "system", Content: "You are an HPC assistant."},
			{Role: "user", Content: "Summarize the plasma turbulence results."},
		},
		MaxTokens: 64,
	})
	if err != nil {
		t.Fatalf("ChatCompletion: %v", err)
	}
	if resp.Usage.CompletionTokens != 64 {
		t.Errorf("completion tokens = %d, want 64", resp.Usage.CompletionTokens)
	}
	if len(resp.Choices) != 1 || resp.Choices[0].Message == nil {
		t.Fatalf("malformed choices: %+v", resp.Choices)
	}
	if resp.Choices[0].Message.Content == "" {
		t.Error("empty completion text")
	}
	if resp.Choices[0].FinishReason != "stop" {
		t.Errorf("finish reason = %q", resp.Choices[0].FinishReason)
	}
}

func TestSystemModelsAndJobs(t *testing.T) {
	_, c := newTestSystem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	models, err := c.Models(ctx)
	if err != nil {
		t.Fatalf("Models: %v", err)
	}
	if len(models.Data) != 3 {
		t.Fatalf("models = %d, want 3 (70B, 8B, NV-Embed)", len(models.Data))
	}

	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatalf("Jobs: %v", err)
	}
	// 70B on sophia, 8B on sophia+polaris, embed on sophia = 4 rows.
	if len(jobs.Models) != 4 {
		t.Fatalf("jobs rows = %d, want 4: %+v", len(jobs.Models), jobs.Models)
	}
	for _, m := range jobs.Models {
		switch m.State {
		case "running", "starting", "queued", "cold":
		default:
			t.Errorf("model %s: unexpected state %q", m.Model, m.State)
		}
	}
}

func TestSystemEmbeddings(t *testing.T) {
	_, c := newTestSystem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	resp, err := c.Embeddings(ctx, openaiapi.EmbeddingRequest{
		Model: perfmodel.NVEmbed,
		Input: []string{"tokamak plasma control", "genome variant calling"},
	})
	if err != nil {
		t.Fatalf("Embeddings: %v", err)
	}
	if len(resp.Data) != 2 {
		t.Fatalf("embeddings = %d, want 2", len(resp.Data))
	}
	if len(resp.Data[0].Embedding) != 4096 {
		t.Errorf("dim = %d, want 4096", len(resp.Data[0].Embedding))
	}
}

func TestSystemStreaming(t *testing.T) {
	_, c := newTestSystem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var deltas int
	text, err := c.ChatCompletionStream(ctx, openaiapi.ChatCompletionRequest{
		Model:     perfmodel.Llama8B,
		Messages:  []openaiapi.Message{{Role: "user", Content: "stream tokens about lattice qcd"}},
		MaxTokens: 80,
	}, func(string) { deltas++ })
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if deltas < 2 {
		t.Errorf("expected multiple SSE deltas, got %d", deltas)
	}
	if got := len(strings.Fields(text)); got != 80 {
		t.Errorf("streamed tokens = %d, want 80", got)
	}
}

func TestSystemAuthRejectsBadToken(t *testing.T) {
	sys, _ := newTestSystem(t)
	c := client.New("", "fa_bogus.deadbeef", client.WithHandler(sys.Gateway))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := c.Models(ctx)
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("want APIError, got %v", err)
	}
	if apiErr.StatusCode != 401 {
		t.Errorf("status = %d, want 401", apiErr.StatusCode)
	}
}

func TestSystemPolicyRestriction(t *testing.T) {
	sys, c := newTestSystem(t)
	sys.Policy.Restrict(perfmodel.Llama70B, "sensitive-project")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, err := c.ChatCompletion(ctx, openaiapi.ChatCompletionRequest{
		Model:    perfmodel.Llama70B,
		Messages: []openaiapi.Message{{Role: "user", Content: "secret"}},
	})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != 403 {
		t.Fatalf("want 403, got %v", err)
	}
	// Group membership unlocks it.
	sys.Auth.AddToGroup("sensitive-project", "alice")
	grant, _ := sys.Login("alice")
	c2 := client.New("", grant.AccessToken, client.WithHandler(sys.Gateway))
	if _, err := c2.ChatCompletion(ctx, openaiapi.ChatCompletionRequest{
		Model:     perfmodel.Llama70B,
		Messages:  []openaiapi.Message{{Role: "user", Content: "secret"}},
		MaxTokens: 8,
	}); err != nil {
		t.Fatalf("group member should pass: %v", err)
	}
}

func TestSystemBatchLifecycle(t *testing.T) {
	_, c := newTestSystem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	lines := make([]openaiapi.BatchRequestLine, 20)
	for i := range lines {
		lines[i] = openaiapi.BatchRequestLine{
			CustomID: "req-" + string(rune('a'+i)),
			Body: openaiapi.ChatCompletionRequest{
				Model:     perfmodel.Llama8B,
				Messages:  []openaiapi.Message{{Role: "user", Content: "describe gene cluster"}},
				MaxTokens: 32,
			},
		}
	}
	b, err := c.CreateBatch(ctx, openaiapi.CreateBatchRequest{Model: perfmodel.Llama8B, InputLines: lines})
	if err != nil {
		t.Fatalf("CreateBatch: %v", err)
	}
	if b.Total != 20 {
		t.Errorf("total = %d, want 20", b.Total)
	}
	deadline := time.Now().Add(90 * time.Second)
	for {
		got, err := c.GetBatch(ctx, b.ID)
		if err != nil {
			t.Fatalf("GetBatch: %v", err)
		}
		if got.Status == "completed" {
			if got.Completed != 20 {
				t.Errorf("completed = %d, want 20", got.Completed)
			}
			if got.OutputTokens != 20*32 {
				t.Errorf("output tokens = %d, want %d", got.OutputTokens, 20*32)
			}
			break
		}
		if got.Status == "failed" || got.Status == "cancelled" {
			t.Fatalf("batch ended %s: %s", got.Status, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch stuck in %s", got.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	results, err := c.BatchResults(ctx, b.ID)
	if err != nil {
		t.Fatalf("BatchResults: %v", err)
	}
	if len(results) != 20 {
		t.Fatalf("results = %d, want 20", len(results))
	}
	for _, line := range results {
		if line.Status != 200 || line.Body == nil {
			t.Errorf("line %s: status=%d", line.CustomID, line.Status)
		}
	}
}

func TestSystemFaultToleranceRestart(t *testing.T) {
	sys, c := newTestSystem(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Warm up the 8B deployment on sophia.
	if _, err := c.ChatCompletion(ctx, openaiapi.ChatCompletionRequest{
		Model:     perfmodel.Llama8B,
		Messages:  []openaiapi.Message{{Role: "user", Content: "warmup"}},
		MaxTokens: 8,
	}); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	ep := sys.Endpoints["ep-sophia"]
	d, ok := ep.Deployment(perfmodel.Llama8B)
	if !ok {
		t.Fatal("no 8B deployment on sophia")
	}
	if !d.InjectFailure() {
		t.Fatal("InjectFailure found no ready instance")
	}
	// The manager must restart the instance (MinInstances=1) and requests
	// must keep succeeding.
	deadline := time.Now().Add(60 * time.Second)
	for d.ReadyCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("instance was not restarted after failure")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.ChatCompletion(ctx, openaiapi.ChatCompletionRequest{
		Model:     perfmodel.Llama8B,
		Messages:  []openaiapi.Message{{Role: "user", Content: "after restart"}},
		MaxTokens: 8,
	}); err != nil {
		t.Fatalf("post-restart request: %v", err)
	}
	if d.Stats().Restarts == 0 {
		t.Error("restart was not counted")
	}
}
