package core

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/gateway"
)

// FileConfig is the on-disk installation description (the paper's
// "configuration registry", §4.5: endpoint listing order defines
// federation priority).
type FileConfig struct {
	Clusters []FileCluster    `json:"clusters"`
	Models   []FileDeployment `json:"models"`
	Gateway  FileGateway      `json:"gateway"`
}

// FileCluster declares a cluster.
type FileCluster struct {
	Name        string `json:"name"`
	Nodes       int    `json:"nodes"`
	GPUsPerNode int    `json:"gpus_per_node"`
	PrologueS   int    `json:"prologue_s,omitempty"`
	Backfill    bool   `json:"backfill,omitempty"`
}

// FileDeployment declares a model hosting, clusters in priority order.
type FileDeployment struct {
	Model           string   `json:"model"`
	Clusters        []string `json:"clusters"`
	MinInstances    int      `json:"min_instances,omitempty"`
	MaxInstances    int      `json:"max_instances,omitempty"`
	HotIdleTimeoutS int      `json:"hot_idle_timeout_s,omitempty"`
	ScaleUpDepth    int      `json:"scale_up_depth,omitempty"`
	RestrictToGroup string   `json:"restrict_to_group,omitempty"`
}

// FileGateway declares gateway tunables.
type FileGateway struct {
	InFlightLimit  int     `json:"in_flight_limit,omitempty"`
	UserRatePerSec float64 `json:"user_rate_per_sec,omitempty"`
	CacheTTLS      int     `json:"cache_ttl_s,omitempty"`
	SyncLegacy     bool    `json:"sync_legacy,omitempty"`
	// Shards splits the front-end's cache/limiter state N ways (0 =
	// GOMAXPROCS-derived, 1 = single lock).
	Shards int `json:"shards,omitempty"`
}

// LoadConfig reads a FileConfig from path.
func LoadConfig(path string) (FileConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return FileConfig{}, err
	}
	var fc FileConfig
	if err := json.Unmarshal(raw, &fc); err != nil {
		return FileConfig{}, fmt.Errorf("core: parsing %s: %w", path, err)
	}
	if err := fc.Validate(); err != nil {
		return FileConfig{}, err
	}
	return fc, nil
}

// Validate checks the declaration for consistency before any resources are
// built.
func (fc FileConfig) Validate() error {
	if len(fc.Clusters) == 0 {
		return fmt.Errorf("core: config declares no clusters")
	}
	names := make(map[string]bool)
	for _, c := range fc.Clusters {
		if c.Name == "" || c.Nodes <= 0 || c.GPUsPerNode <= 0 {
			return fmt.Errorf("core: cluster %q needs name, nodes > 0, gpus_per_node > 0", c.Name)
		}
		if names[c.Name] {
			return fmt.Errorf("core: duplicate cluster %q", c.Name)
		}
		names[c.Name] = true
	}
	if len(fc.Models) == 0 {
		return fmt.Errorf("core: config declares no models")
	}
	for _, m := range fc.Models {
		if m.Model == "" {
			return fmt.Errorf("core: model entry without a name")
		}
		if len(m.Clusters) == 0 {
			return fmt.Errorf("core: model %s lists no clusters", m.Model)
		}
		for _, cl := range m.Clusters {
			if !names[cl] {
				return fmt.Errorf("core: model %s references unknown cluster %q", m.Model, cl)
			}
		}
	}
	return nil
}

// ToSystemConfig converts the file form into a buildable Config. The
// returned restricted map lists model→group policy restrictions to apply
// after NewSystem.
func (fc FileConfig) ToSystemConfig() (Config, map[string]string) {
	cfg := Config{
		Gateway: gateway.Config{
			InFlightLimit:  fc.Gateway.InFlightLimit,
			UserRatePerSec: fc.Gateway.UserRatePerSec,
			CacheTTL:       time.Duration(fc.Gateway.CacheTTLS) * time.Second,
			Shards:         fc.Gateway.Shards,
		},
	}
	if fc.Gateway.SyncLegacy {
		cfg.Gateway.WorkerModel = gateway.WorkerSyncLegacy
	}
	for _, c := range fc.Clusters {
		cfg.Clusters = append(cfg.Clusters, ClusterSpec{
			Name:        c.Name,
			Nodes:       c.Nodes,
			GPUsPerNode: c.GPUsPerNode,
			Prologue:    time.Duration(c.PrologueS) * time.Second,
			Backfill:    c.Backfill,
		})
	}
	restricted := make(map[string]string)
	for _, m := range fc.Models {
		cfg.Deployments = append(cfg.Deployments, DeploymentSpec{
			Model:    m.Model,
			Clusters: m.Clusters,
			Config: fabric.DeploymentConfig{
				MinInstances:   m.MinInstances,
				MaxInstances:   m.MaxInstances,
				HotIdleTimeout: time.Duration(m.HotIdleTimeoutS) * time.Second,
				ScaleUpDepth:   m.ScaleUpDepth,
			},
		})
		if m.RestrictToGroup != "" {
			restricted[m.Model] = m.RestrictToGroup
		}
	}
	return cfg, restricted
}

// NewSystemFromFile builds a running installation from a config file.
func NewSystemFromFile(path string, clk clock.Clock) (*System, error) {
	fc, err := LoadConfig(path)
	if err != nil {
		return nil, err
	}
	cfg, restricted := fc.ToSystemConfig()
	cfg.Clock = clk
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	for model, group := range restricted {
		sys.Policy.Restrict(model, group)
	}
	return sys, nil
}
