package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/client"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/perfmodel"
)

const sampleConfig = `{
  "clusters": [
    {"name": "sophia", "nodes": 4, "gpus_per_node": 8, "prologue_s": 10},
    {"name": "polaris", "nodes": 8, "gpus_per_node": 4, "backfill": true}
  ],
  "models": [
    {"model": "meta-llama/Meta-Llama-3.1-8B-Instruct",
     "clusters": ["sophia", "polaris"],
     "min_instances": 1, "max_instances": 2, "hot_idle_timeout_s": 7200},
    {"model": "meta-llama/Llama-3.3-70B-Instruct",
     "clusters": ["sophia"], "restrict_to_group": "big-model-users"}
  ],
  "gateway": {"in_flight_limit": 256, "user_rate_per_sec": 50, "cache_ttl_s": 60, "shards": 4}
}`

func writeConfig(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "first.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadConfigAndBuildSystem(t *testing.T) {
	path := writeConfig(t, sampleConfig)
	sys, err := NewSystemFromFile(path, clock.NewScaled(20000))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)

	if len(sys.Clusters) != 2 || sys.Clusters["polaris"].NodeCount() != 8 {
		t.Errorf("clusters misbuilt")
	}
	if got := len(sys.Router.Endpoints(perfmodel.Llama8B)); got != 2 {
		t.Errorf("8B routes = %d, want 2 (federated)", got)
	}
	// The restricted model enforces its group end-to-end.
	sys.RegisterUser("u", "u@anl.gov")
	grant, _ := sys.Login("u")
	c := client.New("", grant.AccessToken, client.WithHandler(sys.Gateway))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, err = c.ChatCompletion(ctx, openaiapi.ChatCompletionRequest{
		Model:    perfmodel.Llama70B,
		Messages: []openaiapi.Message{{Role: "user", Content: "x"}},
	})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != 403 {
		t.Errorf("restricted model err = %v, want 403", err)
	}
	// Unrestricted model works.
	if _, err := c.ChatCompletion(ctx, openaiapi.ChatCompletionRequest{
		Model:     perfmodel.Llama8B,
		Messages:  []openaiapi.Message{{Role: "user", Content: "x"}},
		MaxTokens: 4,
	}); err != nil {
		t.Errorf("open model failed: %v", err)
	}
}

func TestConfigValidationErrors(t *testing.T) {
	cases := map[string]string{
		"no clusters":     `{"models":[{"model":"m","clusters":["x"]}]}`,
		"bad cluster":     `{"clusters":[{"name":"", "nodes":0, "gpus_per_node":0}], "models":[{"model":"m","clusters":["x"]}]}`,
		"dup cluster":     `{"clusters":[{"name":"a","nodes":1,"gpus_per_node":1},{"name":"a","nodes":1,"gpus_per_node":1}], "models":[{"model":"m","clusters":["a"]}]}`,
		"no models":       `{"clusters":[{"name":"a","nodes":1,"gpus_per_node":1}]}`,
		"unknown cluster": `{"clusters":[{"name":"a","nodes":1,"gpus_per_node":1}], "models":[{"model":"m","clusters":["zzz"]}]}`,
		"nameless model":  `{"clusters":[{"name":"a","nodes":1,"gpus_per_node":1}], "models":[{"model":"","clusters":["a"]}]}`,
		"not json":        `{nope`,
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			path := writeConfig(t, content)
			if _, err := LoadConfig(path); err == nil {
				t.Errorf("accepted invalid config: %s", content)
			}
		})
	}
	if _, err := LoadConfig("/no/such/file.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestConfigGatewayTunables(t *testing.T) {
	path := writeConfig(t, sampleConfig)
	fc, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg, restricted := fc.ToSystemConfig()
	if cfg.Gateway.InFlightLimit != 256 || cfg.Gateway.UserRatePerSec != 50 {
		t.Errorf("gateway tunables = %+v", cfg.Gateway)
	}
	if cfg.Gateway.CacheTTL != time.Minute {
		t.Errorf("cache ttl = %v", cfg.Gateway.CacheTTL)
	}
	if cfg.Gateway.Shards != 4 {
		t.Errorf("shards = %d, want 4", cfg.Gateway.Shards)
	}
	if restricted[perfmodel.Llama70B] != "big-model-users" {
		t.Errorf("restrictions = %v", restricted)
	}
	if cfg.Clusters[0].Prologue != 10*time.Second || !cfg.Clusters[1].Backfill {
		t.Errorf("cluster tunables = %+v", cfg.Clusters)
	}
}
