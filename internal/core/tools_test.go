package core

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/gateway"
)

func postTool(t *testing.T, sys *System, token, name, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/tools/"+name, strings.NewReader(body))
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	sys.Gateway.ServeHTTP(rec, req)
	return rec
}

func TestHPCSimulationTool(t *testing.T) {
	sys, c := newTestSystem(t)
	_ = c
	if err := sys.RegisterHPCSimulationTool("sophia", ""); err != nil {
		t.Fatal(err)
	}
	grant, _ := sys.Login("alice")

	body := `{"payload":{"name":"climate-run","grid_cells":100000000,"steps":2000,"gpus":4}}`
	rec := postTool(t, sys, grant.AccessToken, "hpc.simulate", body)
	if rec.Code != 200 {
		t.Fatalf("tool call = %d: %s", rec.Code, rec.Body.String())
	}
	var resp gateway.ToolResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var result SimulateResult
	if err := json.Unmarshal(resp.Result, &result); err != nil {
		t.Fatal(err)
	}
	if result.Name != "climate-run" || result.GPUs != 4 {
		t.Errorf("result = %+v", result)
	}
	// 1e8 cells × 2000 steps / (2e9 × 4 GPUs) = 25 s of modeled compute.
	if result.RuntimeS < 24.9 || result.RuntimeS > 25.1 {
		t.Errorf("runtime = %.1fs, want 25s", result.RuntimeS)
	}
	if result.JobID == 0 {
		t.Error("no scheduler job recorded")
	}
	// The simulation went through the real scheduler and released its nodes.
	if free := sys.Clusters["sophia"].Status().FreeGPUs; free < 4 {
		t.Errorf("allocation seems leaked: %d free GPUs", free)
	}
	// Logged as a tool request.
	if tot := sys.Store.Totals(); tot.ByKind["tool"] != 1 {
		t.Errorf("tool call not logged: %+v", tot.ByKind)
	}
}

func TestToolGroupGating(t *testing.T) {
	sys, _ := newTestSystem(t)
	if err := sys.RegisterHPCSimulationTool("sophia", "simulation-users"); err != nil {
		t.Fatal(err)
	}
	grant, _ := sys.Login("alice")
	body := `{"payload":{"name":"x","grid_cells":1000,"steps":10}}`
	if rec := postTool(t, sys, grant.AccessToken, "hpc.simulate", body); rec.Code != 403 {
		t.Errorf("non-member got %d, want 403", rec.Code)
	}
	sys.Auth.AddToGroup("simulation-users", "alice")
	grant, _ = sys.Login("alice")
	if rec := postTool(t, sys, grant.AccessToken, "hpc.simulate", body); rec.Code != 200 {
		t.Errorf("member got %d: %s", rec.Code, rec.Body.String())
	}
}

func TestToolValidation(t *testing.T) {
	sys, _ := newTestSystem(t)
	sys.RegisterHPCSimulationTool("sophia", "")
	grant, _ := sys.Login("alice")
	if rec := postTool(t, sys, grant.AccessToken, "no.such.tool", `{}`); rec.Code != 404 {
		t.Errorf("unknown tool = %d", rec.Code)
	}
	if rec := postTool(t, sys, grant.AccessToken, "hpc.simulate", `{"payload":{"grid_cells":-1,"steps":0}}`); rec.Code != 502 {
		t.Errorf("invalid payload = %d", rec.Code)
	}
	if rec := postTool(t, sys, grant.AccessToken, "hpc.simulate", `{broken`); rec.Code != 400 {
		t.Errorf("broken json = %d", rec.Code)
	}
	if err := sys.RegisterHPCSimulationTool("nowhere", ""); err == nil {
		t.Error("unknown cluster accepted")
	}
	if err := sys.ExposeTool("t", "nowhere", "", func(context.Context, []byte) ([]byte, error) { return nil, nil }); err == nil {
		t.Error("ExposeTool accepted unknown cluster")
	}
}

func TestListTools(t *testing.T) {
	sys, _ := newTestSystem(t)
	sys.RegisterHPCSimulationTool("sophia", "")
	sys.ExposeTool("custom.echo", "polaris", "", func(_ context.Context, p []byte) ([]byte, error) {
		return p, nil
	})
	grant, _ := sys.Login("alice")
	req := httptest.NewRequest(http.MethodGet, "/v1/tools", nil)
	req.Header.Set("Authorization", "Bearer "+grant.AccessToken)
	rec := httptest.NewRecorder()
	sys.Gateway.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("list = %d", rec.Code)
	}
	var out struct {
		Data []string `json:"data"`
	}
	json.Unmarshal(rec.Body.Bytes(), &out)
	if len(out.Data) != 2 || out.Data[0] != "custom.echo" || out.Data[1] != "hpc.simulate" {
		t.Errorf("tools = %v", out.Data)
	}
}

func TestCustomToolRawStringResult(t *testing.T) {
	sys, _ := newTestSystem(t)
	sys.ExposeTool("raw.echo", "sophia", "", func(_ context.Context, p []byte) ([]byte, error) {
		return []byte("not json at all"), nil
	})
	grant, _ := sys.Login("alice")
	rec := postTool(t, sys, grant.AccessToken, "raw.echo", `{"payload":{}}`)
	if rec.Code != 200 {
		t.Fatalf("raw tool = %d", rec.Code)
	}
	var resp gateway.ToolResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("non-JSON tool output must be quoted: %v", err)
	}
	var s string
	if err := json.Unmarshal(resp.Result, &s); err != nil || s != "not json at all" {
		t.Errorf("result = %s", resp.Result)
	}
}

func TestToolContextTimeout(t *testing.T) {
	sys, _ := newTestSystem(t)
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	sys.ExposeTool("slow.tool", "sophia", "", func(ctx context.Context, _ []byte) ([]byte, error) {
		select {
		case <-block:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
		}
		return []byte(`{}`), nil
	})
	grant, _ := sys.Login("alice")
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/tools/slow.tool", strings.NewReader(`{"payload":{}}`)).WithContext(ctx)
	req.Header.Set("Authorization", "Bearer "+grant.AccessToken)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		sys.Gateway.ServeHTTP(rec, req)
		close(done)
	}()
	select {
	case <-done:
		if rec.Code == 200 {
			t.Error("timed-out tool call returned 200")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("tool call did not respect context timeout")
	}
}
