package auth

import (
	"sync"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/clock"
)

// TestTokenCacheCoalescesConcurrentMisses pins the thundering-herd fix: N
// goroutines missing on the same uncached token must produce exactly one
// upstream introspection. The Manual clock makes the rendezvous
// deterministic — the leader blocks inside the modeled introspection
// latency until every follower has joined the flight, then the clock
// advances and all of them return the leader's result.
func TestTokenCacheCoalescesConcurrentMisses(t *testing.T) {
	clk := clock.NewManual(time.Date(2025, 10, 15, 12, 0, 0, 0, time.UTC))
	svc := NewService(clk, Config{IntrospectLatency: 2 * time.Second})
	svc.RegisterProvider(Provider{Name: "anl"})
	if err := svc.RegisterUser(Identity{Sub: "alice", Username: "alice@anl.gov", Provider: "anl", MFAPassed: true}); err != nil {
		t.Fatal(err)
	}
	secret := svc.RegisterConfidentialClient("gw")
	cache := NewTokenCache(svc, clk, "gw", secret, time.Hour)
	grant, err := svc.Login("alice", "first:inference")
	if err != nil {
		t.Fatal(err)
	}

	const herd = 32
	var wg sync.WaitGroup
	errs := make([]error, herd)
	infos := make([]TokenInfo, herd)
	wg.Add(herd)
	for i := 0; i < herd; i++ {
		go func(i int) {
			defer wg.Done()
			infos[i], errs[i] = cache.Introspect(grant.AccessToken)
		}(i)
	}
	// Wait until the leader is blocked in the introspection latency and
	// every follower is parked on the flight (coalesced == herd-1), then
	// release the leader.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if clk.PendingWaiters() == 1 && cache.Coalesced() == herd-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("herd never converged: sleepers=%d coalesced=%d", clk.PendingWaiters(), cache.Coalesced())
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(2 * time.Second)
	wg.Wait()

	for i := 0; i < herd; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if !infos[i].Active || infos[i].Sub != "alice" {
			t.Fatalf("goroutine %d got %+v", i, infos[i])
		}
	}
	hits, misses := cache.Stats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (single upstream call)", misses)
	}
	if cache.Coalesced() != herd-1 {
		t.Errorf("coalesced = %d, want %d", cache.Coalesced(), herd-1)
	}
	if hits != 0 {
		t.Errorf("hits = %d, want 0", hits)
	}
	// A subsequent lookup is a plain cache hit.
	if _, err := cache.Introspect(grant.AccessToken); err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits != 1 {
		t.Errorf("post-herd hits = %d, want 1", hits)
	}
}

// TestTokenCacheSingleflightUnderServiceRateLimit drives the herd against a
// service-side rate limit that a non-coalesced cache would trip: burst 2,
// 32 concurrent first-time requests. With singleflight, the one upstream
// call succeeds and everyone shares it.
func TestTokenCacheSingleflightUnderServiceRateLimit(t *testing.T) {
	clk := clock.NewManual(time.Date(2025, 10, 15, 12, 0, 0, 0, time.UTC))
	svc := NewService(clk, Config{IntrospectLatency: -1, IntrospectRatePerSec: 1})
	svc.RegisterProvider(Provider{Name: "anl"})
	if err := svc.RegisterUser(Identity{Sub: "alice", Username: "alice@anl.gov", Provider: "anl", MFAPassed: true}); err != nil {
		t.Fatal(err)
	}
	secret := svc.RegisterConfidentialClient("gw")
	cache := NewTokenCache(svc, clk, "gw", secret, time.Hour)
	grant, err := svc.Login("alice")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var failed sync.Map
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := cache.Introspect(grant.AccessToken); err != nil {
				failed.Store(i, err)
			}
		}(i)
	}
	wg.Wait()
	failed.Range(func(k, v any) bool {
		t.Errorf("goroutine %v rate-limited through the cache: %v", k, v)
		return false
	})
	// Without a clock rendezvous a fast leader can finish before some
	// followers arrive (those become plain hits); what matters is that
	// upstream calls stayed within the service's burst of 2 — the herd
	// would have needed 32.
	hits, misses := cache.Stats()
	if hits+misses+cache.Coalesced() != 32 || misses < 1 || misses > 2 {
		t.Errorf("hits=%d misses=%d coalesced=%d, want 32 total with 1-2 misses",
			hits, misses, cache.Coalesced())
	}
}

// TestTokenCacheBounded pins the map bound: distinct tokens beyond the cap
// evict rather than grow the table (the same bug class as the gateway's
// limiter table before its idle sweep).
func TestTokenCacheBounded(t *testing.T) {
	clk := clock.NewManual(time.Date(2025, 10, 15, 12, 0, 0, 0, time.UTC))
	svc := NewService(clk, Config{IntrospectLatency: -1})
	svc.RegisterProvider(Provider{Name: "anl"})
	if err := svc.RegisterUser(Identity{Sub: "alice", Username: "alice@anl.gov", Provider: "anl", MFAPassed: true}); err != nil {
		t.Fatal(err)
	}
	secret := svc.RegisterConfidentialClient("gw")
	cache := NewTokenCache(svc, clk, "gw", secret, time.Hour)
	cache.SetMaxEntries(8)
	for i := 0; i < 40; i++ {
		grant, err := svc.Login("alice")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cache.Introspect(grant.AccessToken); err != nil {
			t.Fatal(err)
		}
		if got := cache.Len(); got > 8 {
			t.Fatalf("cache grew to %d entries, bound is 8", got)
		}
	}
	if got := cache.Len(); got != 8 {
		t.Errorf("final cache size = %d, want 8 (full but bounded)", got)
	}
}

// TestTokenCacheSweepsExpiredBeforeEvictingLive checks the bound prefers
// dropping expired entries over live ones.
func TestTokenCacheSweepsExpiredBeforeEvictingLive(t *testing.T) {
	clk := clock.NewManual(time.Date(2025, 10, 15, 12, 0, 0, 0, time.UTC))
	svc := NewService(clk, Config{IntrospectLatency: -1})
	svc.RegisterProvider(Provider{Name: "anl"})
	if err := svc.RegisterUser(Identity{Sub: "alice", Username: "alice@anl.gov", Provider: "anl", MFAPassed: true}); err != nil {
		t.Fatal(err)
	}
	secret := svc.RegisterConfidentialClient("gw")
	cache := NewTokenCache(svc, clk, "gw", secret, time.Minute)
	cache.SetMaxEntries(4)
	// Three entries that will be TTL-expired...
	for i := 0; i < 3; i++ {
		grant, _ := svc.Login("alice")
		if _, err := cache.Introspect(grant.AccessToken); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(2 * time.Minute)
	// ...one live entry, then an insert at the bound.
	live, _ := svc.Login("alice")
	if _, err := cache.Introspect(live.AccessToken); err != nil {
		t.Fatal(err)
	}
	next, _ := svc.Login("alice")
	if _, err := cache.Introspect(next.AccessToken); err != nil {
		t.Fatal(err)
	}
	if got := cache.Len(); got != 2 {
		t.Errorf("cache size = %d, want 2 (expired swept, live kept)", got)
	}
	hitsBefore, _ := cache.Stats()
	if _, err := cache.Introspect(live.AccessToken); err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits != hitsBefore+1 {
		t.Error("live entry was evicted instead of the expired ones")
	}
}
