package auth

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/clock"
)

// TestTokenCacheCoalescesConcurrentMisses pins the thundering-herd fix: N
// goroutines missing on the same uncached token must produce exactly one
// upstream introspection. The Manual clock makes the rendezvous
// deterministic — the leader blocks inside the modeled introspection
// latency until every follower has joined the flight, then the clock
// advances and all of them return the leader's result.
func TestTokenCacheCoalescesConcurrentMisses(t *testing.T) {
	clk := clock.NewManual(time.Date(2025, 10, 15, 12, 0, 0, 0, time.UTC))
	svc := NewService(clk, Config{IntrospectLatency: 2 * time.Second})
	svc.RegisterProvider(Provider{Name: "anl"})
	if err := svc.RegisterUser(Identity{Sub: "alice", Username: "alice@anl.gov", Provider: "anl", MFAPassed: true}); err != nil {
		t.Fatal(err)
	}
	secret := svc.RegisterConfidentialClient("gw")
	cache := NewTokenCache(svc, clk, "gw", secret, time.Hour)
	grant, err := svc.Login("alice", "first:inference")
	if err != nil {
		t.Fatal(err)
	}

	const herd = 32
	var wg sync.WaitGroup
	errs := make([]error, herd)
	infos := make([]TokenInfo, herd)
	wg.Add(herd)
	for i := 0; i < herd; i++ {
		go func(i int) {
			defer wg.Done()
			infos[i], errs[i] = cache.Introspect(grant.AccessToken)
		}(i)
	}
	// Wait until the leader is blocked in the introspection latency and
	// every follower is parked on the flight (coalesced == herd-1), then
	// release the leader.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if clk.PendingWaiters() == 1 && cache.Coalesced() == herd-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("herd never converged: sleepers=%d coalesced=%d", clk.PendingWaiters(), cache.Coalesced())
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(2 * time.Second)
	wg.Wait()

	for i := 0; i < herd; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if !infos[i].Active || infos[i].Sub != "alice" {
			t.Fatalf("goroutine %d got %+v", i, infos[i])
		}
	}
	hits, misses := cache.Stats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (single upstream call)", misses)
	}
	if cache.Coalesced() != herd-1 {
		t.Errorf("coalesced = %d, want %d", cache.Coalesced(), herd-1)
	}
	if hits != 0 {
		t.Errorf("hits = %d, want 0", hits)
	}
	// A subsequent lookup is a plain cache hit.
	if _, err := cache.Introspect(grant.AccessToken); err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits != 1 {
		t.Errorf("post-herd hits = %d, want 1", hits)
	}
}

// TestTokenCacheSingleflightUnderServiceRateLimit drives the herd against a
// service-side rate limit that a non-coalesced cache would trip: burst 2,
// 32 concurrent first-time requests. With singleflight, the one upstream
// call succeeds and everyone shares it.
func TestTokenCacheSingleflightUnderServiceRateLimit(t *testing.T) {
	clk := clock.NewManual(time.Date(2025, 10, 15, 12, 0, 0, 0, time.UTC))
	svc := NewService(clk, Config{IntrospectLatency: -1, IntrospectRatePerSec: 1})
	svc.RegisterProvider(Provider{Name: "anl"})
	if err := svc.RegisterUser(Identity{Sub: "alice", Username: "alice@anl.gov", Provider: "anl", MFAPassed: true}); err != nil {
		t.Fatal(err)
	}
	secret := svc.RegisterConfidentialClient("gw")
	cache := NewTokenCache(svc, clk, "gw", secret, time.Hour)
	grant, err := svc.Login("alice")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var failed sync.Map
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := cache.Introspect(grant.AccessToken); err != nil {
				failed.Store(i, err)
			}
		}(i)
	}
	wg.Wait()
	failed.Range(func(k, v any) bool {
		t.Errorf("goroutine %v rate-limited through the cache: %v", k, v)
		return false
	})
	// Without a clock rendezvous a fast leader can finish before some
	// followers arrive (those become plain hits); what matters is that
	// upstream calls stayed within the service's burst of 2 — the herd
	// would have needed 32.
	hits, misses := cache.Stats()
	if hits+misses+cache.Coalesced() != 32 || misses < 1 || misses > 2 {
		t.Errorf("hits=%d misses=%d coalesced=%d, want 32 total with 1-2 misses",
			hits, misses, cache.Coalesced())
	}
}

// TestTokenCacheBounded pins the map bound: distinct tokens beyond the cap
// evict rather than grow the table (the same bug class as the gateway's
// limiter table before its idle sweep).
func TestTokenCacheBounded(t *testing.T) {
	clk := clock.NewManual(time.Date(2025, 10, 15, 12, 0, 0, 0, time.UTC))
	svc := NewService(clk, Config{IntrospectLatency: -1})
	svc.RegisterProvider(Provider{Name: "anl"})
	if err := svc.RegisterUser(Identity{Sub: "alice", Username: "alice@anl.gov", Provider: "anl", MFAPassed: true}); err != nil {
		t.Fatal(err)
	}
	secret := svc.RegisterConfidentialClient("gw")
	cache := NewTokenCache(svc, clk, "gw", secret, time.Hour)
	cache.SetMaxEntries(8)
	for i := 0; i < 40; i++ {
		grant, err := svc.Login("alice")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cache.Introspect(grant.AccessToken); err != nil {
			t.Fatal(err)
		}
		if got := cache.Len(); got > 8 {
			t.Fatalf("cache grew to %d entries, bound is 8", got)
		}
	}
	if got := cache.Len(); got != 8 {
		t.Errorf("final cache size = %d, want 8 (full but bounded)", got)
	}
}

// TestTokenCacheSweepsExpiredBeforeEvictingLive checks the bound prefers
// dropping expired entries over live ones.
func TestTokenCacheSweepsExpiredBeforeEvictingLive(t *testing.T) {
	clk := clock.NewManual(time.Date(2025, 10, 15, 12, 0, 0, 0, time.UTC))
	svc := NewService(clk, Config{IntrospectLatency: -1})
	svc.RegisterProvider(Provider{Name: "anl"})
	if err := svc.RegisterUser(Identity{Sub: "alice", Username: "alice@anl.gov", Provider: "anl", MFAPassed: true}); err != nil {
		t.Fatal(err)
	}
	secret := svc.RegisterConfidentialClient("gw")
	cache := NewTokenCache(svc, clk, "gw", secret, time.Minute)
	cache.SetMaxEntries(4)
	// Three entries that will be TTL-expired...
	for i := 0; i < 3; i++ {
		grant, _ := svc.Login("alice")
		if _, err := cache.Introspect(grant.AccessToken); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(2 * time.Minute)
	// ...one live entry, then an insert at the bound.
	live, _ := svc.Login("alice")
	if _, err := cache.Introspect(live.AccessToken); err != nil {
		t.Fatal(err)
	}
	next, _ := svc.Login("alice")
	if _, err := cache.Introspect(next.AccessToken); err != nil {
		t.Fatal(err)
	}
	if got := cache.Len(); got != 2 {
		t.Errorf("cache size = %d, want 2 (expired swept, live kept)", got)
	}
	hitsBefore, _ := cache.Stats()
	if _, err := cache.Introspect(live.AccessToken); err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits != hitsBefore+1 {
		t.Error("live entry was evicted instead of the expired ones")
	}
}

// TestTokenCacheRecheck pins the endpoint-401 path: a 401 after a cache hit
// invalidates the entry and re-introspects once, revealing a mid-TTL
// revocation; within the cooldown window further rechecks serve the cached
// view instead of hammering upstream.
func TestTokenCacheRecheck(t *testing.T) {
	svc, clk := newTestService(t, Config{})
	secret := svc.RegisterConfidentialClient("gw")
	cache := NewTokenCache(svc, clk, "gw", secret, time.Hour)
	grant, _ := svc.Login("alice")
	tok := grant.AccessToken

	if _, err := cache.Introspect(tok); err != nil {
		t.Fatal(err)
	}
	// Token revoked upstream mid-TTL: a plain Introspect still serves the
	// stale cached view, Recheck does not.
	if err := svc.Revoke(tok); err != nil {
		t.Fatal(err)
	}
	if info, err := cache.Introspect(tok); err != nil || !info.Active {
		t.Fatalf("cached view should still be active: %+v %v", info, err)
	}
	if _, err := cache.Recheck(tok); !errors.Is(err, ErrRevokedToken) {
		t.Fatalf("Recheck after revocation = %v, want ErrRevokedToken", err)
	}
	if cache.Invalidations() != 1 {
		t.Errorf("invalidations = %d, want 1", cache.Invalidations())
	}
	_, misses := cache.Stats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2 (initial + recheck)", misses)
	}

	// Inside the cooldown window, rechecks do not hit upstream again.
	for i := 0; i < 5; i++ {
		cache.Recheck(tok)
	}
	if _, misses = cache.Stats(); misses != 2+5 {
		// Each recheck inside cooldown falls through to Introspect; the entry
		// is gone (revoked introspection is not cached), so these are plain
		// misses — but no additional invalidation may occur.
		t.Logf("misses = %d", misses)
	}
	if cache.Invalidations() != 1 {
		t.Errorf("invalidations inside cooldown = %d, want still 1", cache.Invalidations())
	}

	// After the cooldown, a live token that was re-cached can be rechecked
	// again (bounded, not forbidden).
	grant2, _ := svc.Login("alice")
	if _, err := cache.Introspect(grant2.AccessToken); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Recheck(grant2.AccessToken); err != nil {
		t.Fatal(err)
	}
	if cache.Invalidations() != 2 {
		t.Errorf("invalidations = %d, want 2", cache.Invalidations())
	}
	clk.Advance(DefaultRecheckCooldown + time.Second)
	if _, err := cache.Recheck(grant2.AccessToken); err != nil {
		t.Fatal(err)
	}
	if cache.Invalidations() != 3 {
		t.Errorf("invalidations after cooldown = %d, want 3", cache.Invalidations())
	}
}

// TestTokenCacheRecheckCoalesces: concurrent rechecks of one token collapse
// into a single upstream introspection via the shared singleflight.
func TestTokenCacheRecheckCoalesces(t *testing.T) {
	clk := clock.NewManual(time.Date(2025, 10, 15, 12, 0, 0, 0, time.UTC))
	svc := NewService(clk, Config{IntrospectLatency: 2 * time.Second})
	svc.RegisterProvider(Provider{Name: "anl"})
	if err := svc.RegisterUser(Identity{Sub: "alice", Username: "alice@anl.gov", Provider: "anl", MFAPassed: true}); err != nil {
		t.Fatal(err)
	}
	secret := svc.RegisterConfidentialClient("gw")
	cache := NewTokenCache(svc, clk, "gw", secret, time.Hour)
	grant, _ := svc.Login("alice")
	tok := grant.AccessToken
	// Prime the cache; the leader parks in the modeled latency, so drive it
	// from here.
	fill := make(chan error, 1)
	go func() {
		_, err := cache.Introspect(tok)
		fill <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); clk.PendingWaiters() != 1; {
		if time.Now().After(deadline) {
			t.Fatal("priming introspection never slept")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(2 * time.Second)
	if err := <-fill; err != nil {
		t.Fatal(err)
	}

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	var launched sync.WaitGroup
	launched.Add(n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			launched.Done()
			_, errs[i] = cache.Recheck(tok)
		}(i)
	}
	launched.Wait()
	// Exactly one leader sleeps through the modeled introspection latency;
	// the rest park on its flight. Release the leader once everyone joined.
	deadline := time.Now().Add(5 * time.Second)
	for clk.PendingWaiters() != 1 || cache.Coalesced() != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("herd never converged: sleepers=%d coalesced=%d", clk.PendingWaiters(), cache.Coalesced())
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(2 * time.Second)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("recheck %d: %v", i, err)
		}
	}
	// One invalidation, and upstream saw far fewer calls than n: the
	// followers coalesced onto the leader's flight.
	if cache.Invalidations() != 1 {
		t.Errorf("invalidations = %d, want 1", cache.Invalidations())
	}
	_, misses := cache.Stats()
	if misses+cache.Coalesced() < n {
		t.Errorf("misses %d + coalesced %d < %d launched", misses, cache.Coalesced(), n)
	}
	if misses > 2 {
		t.Errorf("misses = %d: rechecks did not coalesce", misses)
	}
}
