package auth

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/argonne-first/first/internal/clock"
)

func newTestService(t *testing.T, cfg Config) (*Service, *clock.Manual) {
	t.Helper()
	clk := clock.NewManual(time.Date(2025, 10, 15, 12, 0, 0, 0, time.UTC))
	if cfg.IntrospectLatency == 0 {
		cfg.IntrospectLatency = -1 // disable modeled latency: Manual clocks block on Sleep
	}
	svc := NewService(clk, cfg)
	svc.RegisterProvider(Provider{Name: "anl"})
	if err := svc.RegisterUser(Identity{Sub: "alice", Username: "alice@anl.gov", Provider: "anl", MFAPassed: true}); err != nil {
		t.Fatal(err)
	}
	return svc, clk
}

func TestLoginIntrospectRoundtrip(t *testing.T) {
	svc, _ := newTestService(t, Config{})
	grant, err := svc.Login("alice", "first:inference")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(grant.AccessToken, "fa_") {
		t.Errorf("token format: %s", grant.AccessToken[:8])
	}
	info, err := svc.introspectLocal(grant.AccessToken)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Active || info.Sub != "alice" || info.Username != "alice@anl.gov" {
		t.Errorf("info = %+v", info)
	}
	if !info.HasScope("first:inference") {
		t.Error("scope missing")
	}
	if info.HasScope("other") {
		t.Error("phantom scope")
	}
}

func TestTokenTamperingDetectedProperty(t *testing.T) {
	svc, _ := newTestService(t, Config{})
	grant, _ := svc.Login("alice")
	token := grant.AccessToken
	err := quick.Check(func(pos uint16, delta uint8) bool {
		i := 3 + int(pos)%(len(token)-3) // keep the fa_ prefix
		if delta == 0 {
			delta = 1
		}
		mutated := token[:i] + string(token[i]^byte(delta)) + token[i+1:]
		if mutated == token {
			return true
		}
		_, err := svc.introspectLocal(mutated)
		return err != nil
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestTokenExpiresAfter48h(t *testing.T) {
	svc, clk := newTestService(t, Config{})
	grant, _ := svc.Login("alice")
	if _, err := svc.introspectLocal(grant.AccessToken); err != nil {
		t.Fatalf("fresh token rejected: %v", err)
	}
	clk.Advance(47 * time.Hour)
	if _, err := svc.introspectLocal(grant.AccessToken); err != nil {
		t.Fatalf("47h token rejected: %v", err)
	}
	clk.Advance(2 * time.Hour)
	_, err := svc.introspectLocal(grant.AccessToken)
	if !errors.Is(err, ErrExpiredToken) {
		t.Errorf("49h token err = %v, want expired", err)
	}
}

func TestRefreshFlow(t *testing.T) {
	svc, clk := newTestService(t, Config{})
	grant, _ := svc.Login("alice", "s1")
	clk.Advance(40 * time.Hour)
	fresh, err := svc.Refresh(grant.RefreshToken, "s1")
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Hour) // original now expired, refreshed still valid
	if _, err := svc.introspectLocal(grant.AccessToken); err == nil {
		t.Error("original token should have expired")
	}
	if _, err := svc.introspectLocal(fresh.AccessToken); err != nil {
		t.Errorf("refreshed token rejected: %v", err)
	}
	if _, err := svc.Refresh("fr_bogus"); err == nil {
		t.Error("bogus refresh token accepted")
	}
}

func TestRevocation(t *testing.T) {
	svc, _ := newTestService(t, Config{})
	grant, _ := svc.Login("alice")
	if err := svc.Revoke(grant.AccessToken); err != nil {
		t.Fatal(err)
	}
	_, err := svc.introspectLocal(grant.AccessToken)
	if !errors.Is(err, ErrRevokedToken) {
		t.Errorf("err = %v, want revoked", err)
	}
	if err := svc.Revoke("fa_garbage.sig"); err == nil {
		t.Error("revoking invalid token should error")
	}
}

func TestMFAEnforcement(t *testing.T) {
	svc, _ := newTestService(t, Config{})
	svc.RegisterProvider(Provider{Name: "strict", RequireMFA: true})
	svc.RegisterUser(Identity{Sub: "bob", Username: "bob@x.org", Provider: "strict", MFAPassed: false})
	if _, err := svc.Login("bob"); !errors.Is(err, ErrMFARequired) {
		t.Errorf("err = %v, want MFA required", err)
	}
	svc.RegisterUser(Identity{Sub: "bob", Username: "bob@x.org", Provider: "strict", MFAPassed: true})
	if _, err := svc.Login("bob"); err != nil {
		t.Errorf("MFA-passed login failed: %v", err)
	}
}

func TestUnknownUserAndProvider(t *testing.T) {
	svc, _ := newTestService(t, Config{})
	if _, err := svc.Login("stranger"); err == nil {
		t.Error("unknown identity logged in")
	}
	if err := svc.RegisterUser(Identity{Sub: "x", Provider: "nowhere"}); err == nil {
		t.Error("unknown provider accepted")
	}
}

func TestConfidentialClientIntrospection(t *testing.T) {
	svc, _ := newTestService(t, Config{})
	secret := svc.RegisterConfidentialClient("gw")
	grant, _ := svc.Login("alice")
	info, err := svc.Introspect("gw", secret, grant.AccessToken)
	if err != nil || !info.Active {
		t.Fatalf("introspect: %v %+v", err, info)
	}
	if _, err := svc.Introspect("gw", "wrong-secret", grant.AccessToken); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("bad secret err = %v", err)
	}
	if _, err := svc.Introspect("nobody", secret, grant.AccessToken); !errors.Is(err, ErrUnknownClient) {
		t.Errorf("unknown client err = %v", err)
	}
}

func TestIntrospectionRateLimit(t *testing.T) {
	svc, _ := newTestService(t, Config{IntrospectRatePerSec: 2})
	secret := svc.RegisterConfidentialClient("gw")
	grant, _ := svc.Login("alice")
	var limited int
	for i := 0; i < 20; i++ {
		if _, err := svc.Introspect("gw", secret, grant.AccessToken); errors.Is(err, ErrRateLimited) {
			limited++
		}
	}
	if limited == 0 {
		t.Error("rate limit never fired over 20 instant calls at 2/s")
	}
}

func TestGroupsMembership(t *testing.T) {
	svc, _ := newTestService(t, Config{})
	svc.AddToGroup("hpc-users", "alice")
	svc.AddToGroup("sensitive", "alice")
	grant, _ := svc.Login("alice")
	info, _ := svc.introspectLocal(grant.AccessToken)
	if len(info.Groups) != 2 {
		t.Fatalf("groups = %v", info.Groups)
	}
	svc.RemoveFromGroup("sensitive", "alice")
	info, _ = svc.introspectLocal(grant.AccessToken)
	if len(info.Groups) != 1 || info.Groups[0] != "hpc-users" {
		t.Errorf("groups after removal = %v", info.Groups)
	}
}

func TestPolicyAuthorize(t *testing.T) {
	p := NewPolicy("first:inference")
	open := TokenInfo{Active: true, Sub: "a", Scopes: []string{"first:inference"}}
	if err := p.Authorize(open, "any/model"); err != nil {
		t.Errorf("open model rejected: %v", err)
	}
	noScope := TokenInfo{Active: true, Sub: "a"}
	if err := p.Authorize(noScope, "any/model"); !errors.Is(err, ErrDenied) {
		t.Errorf("missing scope err = %v", err)
	}
	inactive := TokenInfo{Active: false}
	if err := p.Authorize(inactive, "any/model"); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("inactive err = %v", err)
	}

	p.Restrict("secret/model", "project-x")
	if err := p.Authorize(open, "secret/model"); !errors.Is(err, ErrDenied) {
		t.Errorf("non-member allowed: %v", err)
	}
	member := TokenInfo{Active: true, Scopes: []string{"first:inference"}, Groups: []string{"project-x"}}
	if err := p.Authorize(member, "secret/model"); err != nil {
		t.Errorf("member rejected: %v", err)
	}
}

func TestTokenCacheHitsAndInvalidation(t *testing.T) {
	svc, clk := newTestService(t, Config{})
	secret := svc.RegisterConfidentialClient("gw")
	cache := NewTokenCache(svc, clk, "gw", secret, time.Minute)
	grant, _ := svc.Login("alice")

	if _, err := cache.Introspect(grant.AccessToken); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Introspect(grant.AccessToken); err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
	// TTL expiry forces a re-introspection.
	clk.Advance(2 * time.Minute)
	if _, err := cache.Introspect(grant.AccessToken); err != nil {
		t.Fatal(err)
	}
	if _, misses = cache.Stats(); misses != 2 {
		t.Errorf("misses = %d after TTL", misses)
	}
	cache.Invalidate(grant.AccessToken)
	cache.Introspect(grant.AccessToken)
	if _, misses = cache.Stats(); misses != 3 {
		t.Errorf("misses = %d after invalidate", misses)
	}
}

func TestTokenCacheProtectsFromRateLimit(t *testing.T) {
	// Optimization 2's point: with caching, many requests cost one
	// introspection and never trip the service-side limiter.
	svc, clk := newTestService(t, Config{IntrospectRatePerSec: 2})
	secret := svc.RegisterConfidentialClient("gw")
	cache := NewTokenCache(svc, clk, "gw", secret, time.Hour)
	grant, _ := svc.Login("alice")
	for i := 0; i < 100; i++ {
		if _, err := cache.Introspect(grant.AccessToken); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	hits, misses := cache.Stats()
	if misses != 1 || hits != 99 {
		t.Errorf("hits/misses = %d/%d", hits, misses)
	}
}

func TestIntrospectLatencyCharged(t *testing.T) {
	clk := clock.NewScaled(100000)
	svc := NewService(clk, Config{IntrospectLatency: 300 * time.Millisecond})
	svc.RegisterProvider(Provider{Name: "anl"})
	svc.RegisterUser(Identity{Sub: "a", Username: "a@anl.gov", Provider: "anl"})
	secret := svc.RegisterConfidentialClient("gw")
	grant, _ := svc.Login("a")
	start := clk.Now()
	if _, err := svc.Introspect("gw", secret, grant.AccessToken); err != nil {
		t.Fatal(err)
	}
	if virtual := clk.Since(start); virtual < 300*time.Millisecond {
		t.Errorf("introspection charged only %v of virtual latency", virtual)
	}
}
