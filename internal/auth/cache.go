package auth

import (
	"sync"
	"time"

	"github.com/argonne-first/first/internal/clock"
)

// TokenCache memoizes introspection results — Optimization 2 (§5.3.1):
// "these repetitive steps are now cached for frequently incoming requests.
// This eliminated 2 s from the latency of each request and prevented our
// framework from being rate-limited by the Globus services."
type TokenCache struct {
	svc          *Service
	clk          clock.Clock
	clientID     string
	clientSecret string
	ttl          time.Duration

	mu      sync.Mutex
	entries map[string]cachedInfo
	hits    int64
	misses  int64
}

type cachedInfo struct {
	info    TokenInfo
	expires time.Time
}

// NewTokenCache wraps a service with per-token caching (entries live for
// ttl or until the token itself expires, whichever is sooner).
func NewTokenCache(svc *Service, clk clock.Clock, clientID, clientSecret string, ttl time.Duration) *TokenCache {
	if ttl <= 0 {
		ttl = 10 * time.Minute
	}
	return &TokenCache{
		svc: svc, clk: clk,
		clientID: clientID, clientSecret: clientSecret,
		ttl:     ttl,
		entries: make(map[string]cachedInfo),
	}
}

// Introspect returns the cached result when fresh, otherwise performs a
// real (latency-charged, rate-limited) introspection.
func (c *TokenCache) Introspect(token string) (TokenInfo, error) {
	now := c.clk.Now()
	c.mu.Lock()
	if e, ok := c.entries[token]; ok && now.Before(e.expires) && now.Before(e.info.Expiry) {
		c.hits++
		c.mu.Unlock()
		return e.info, nil
	}
	c.misses++
	c.mu.Unlock()

	info, err := c.svc.Introspect(c.clientID, c.clientSecret, token)
	if err != nil {
		return TokenInfo{}, err
	}
	c.mu.Lock()
	c.entries[token] = cachedInfo{info: info, expires: now.Add(c.ttl)}
	c.mu.Unlock()
	return info, nil
}

// Invalidate drops a token from the cache (e.g. after revocation).
func (c *TokenCache) Invalidate(token string) {
	c.mu.Lock()
	delete(c.entries, token)
	c.mu.Unlock()
}

// Stats reports hit/miss counters.
func (c *TokenCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Policy decides whether an introspected identity may use a model — the
// Globus-Groups role-based control of §3.1.2 (e.g. "researchers working on
// sensitive projects may be granted special access to specific models").
type Policy struct {
	mu sync.RWMutex
	// requiredGroup[model] = group that must contain the user; models
	// without an entry are open to any authenticated identity holding the
	// base scope.
	requiredGroup map[string]string
	baseScope     string
}

// NewPolicy returns a policy requiring baseScope on every request.
func NewPolicy(baseScope string) *Policy {
	return &Policy{requiredGroup: make(map[string]string), baseScope: baseScope}
}

// Restrict limits a model to members of group.
func (p *Policy) Restrict(model, group string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requiredGroup[model] = group
}

// Authorize checks scope and group membership for a model.
func (p *Policy) Authorize(info TokenInfo, model string) error {
	if !info.Active {
		return ErrInvalidToken
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.baseScope != "" && !info.HasScope(p.baseScope) {
		return ErrDenied
	}
	group, restricted := p.requiredGroup[model]
	if !restricted {
		return nil
	}
	for _, g := range info.Groups {
		if g == group {
			return nil
		}
	}
	return ErrDenied
}
