package auth

import (
	"sync"
	"time"

	"github.com/argonne-first/first/internal/clock"
)

// DefaultCacheEntries bounds the token cache: far above any realistic live
// token population (tokens live 48 h), low enough that an attacker spraying
// garbage bearer tokens cannot grow the map without limit.
const DefaultCacheEntries = 16384

// TokenCache memoizes introspection results — Optimization 2 (§5.3.1):
// "these repetitive steps are now cached for frequently incoming requests.
// This eliminated 2 s from the latency of each request and prevented our
// framework from being rate-limited by the Globus services."
//
// Concurrent misses on the same token coalesce (singleflight): exactly one
// goroutine performs the live (latency-charged, rate-limited) introspection
// while the rest wait for its result. Without this, N parallel requests
// carrying the same uncached token each paid the ~2 s round trip and
// together could trip the Globus-side rate limit — the very failure mode
// the cache exists to prevent.
type TokenCache struct {
	svc          *Service
	clk          clock.Clock
	clientID     string
	clientSecret string
	ttl          time.Duration

	mu            sync.Mutex
	entries       map[string]cachedInfo
	maxEntries    int
	flight        map[string]*flightCall
	hits          int64
	misses        int64
	coalesced     int64
	invalidations int64
	rechecked     map[string]time.Time
	recheckEvery  time.Duration
}

type cachedInfo struct {
	info    TokenInfo
	expires time.Time
}

// flightCall is one in-progress upstream introspection; followers block on
// done and read info/err afterwards (written before done closes).
type flightCall struct {
	done chan struct{}
	info TokenInfo
	err  error
}

// NewTokenCache wraps a service with per-token caching (entries live for
// ttl or until the token itself expires, whichever is sooner; the map is
// bounded at DefaultCacheEntries — see SetMaxEntries).
func NewTokenCache(svc *Service, clk clock.Clock, clientID, clientSecret string, ttl time.Duration) *TokenCache {
	if ttl <= 0 {
		ttl = 10 * time.Minute
	}
	return &TokenCache{
		svc: svc, clk: clk,
		clientID: clientID, clientSecret: clientSecret,
		ttl:          ttl,
		entries:      make(map[string]cachedInfo),
		maxEntries:   DefaultCacheEntries,
		flight:       make(map[string]*flightCall),
		rechecked:    make(map[string]time.Time),
		recheckEvery: DefaultRecheckCooldown,
	}
}

// SetMaxEntries adjusts the cache bound (n <= 0 restores the default).
func (c *TokenCache) SetMaxEntries(n int) {
	if n <= 0 {
		n = DefaultCacheEntries
	}
	c.mu.Lock()
	c.maxEntries = n
	c.mu.Unlock()
}

// Introspect returns the cached result when fresh; otherwise it joins the
// in-flight upstream call for this token, or becomes its leader.
func (c *TokenCache) Introspect(token string) (TokenInfo, error) {
	now := c.clk.Now()
	c.mu.Lock()
	if e, ok := c.entries[token]; ok && now.Before(e.expires) && now.Before(e.info.Expiry) {
		c.hits++
		c.mu.Unlock()
		return e.info, nil
	}
	if f, ok := c.flight[token]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-f.done
		return f.info, f.err
	}
	c.misses++
	f := &flightCall{done: make(chan struct{})}
	c.flight[token] = f
	c.mu.Unlock()

	f.info, f.err = c.svc.Introspect(c.clientID, c.clientSecret, token)
	c.mu.Lock()
	delete(c.flight, token)
	if f.err == nil {
		c.storeLocked(token, f.info)
	}
	c.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return TokenInfo{}, f.err
	}
	return f.info, nil
}

// storeLocked inserts a fresh entry, keeping the map under its bound: when
// full it first sweeps entries whose TTL or token already expired, then — if
// the population is all-live — evicts arbitrary entries. Eviction of a live
// entry only costs a future re-introspection; it never serves stale data.
func (c *TokenCache) storeLocked(token string, info TokenInfo) {
	now := c.clk.Now()
	if len(c.entries) >= c.maxEntries {
		for t, e := range c.entries {
			if !now.Before(e.expires) || !now.Before(e.info.Expiry) {
				delete(c.entries, t)
			}
		}
		for t := range c.entries {
			if len(c.entries) < c.maxEntries {
				break
			}
			delete(c.entries, t)
		}
	}
	c.entries[token] = cachedInfo{info: info, expires: now.Add(c.ttl)}
}

// Invalidate drops a token from the cache (e.g. after revocation).
func (c *TokenCache) Invalidate(token string) {
	c.mu.Lock()
	if _, ok := c.entries[token]; ok {
		c.invalidations++
	}
	delete(c.entries, token)
	c.mu.Unlock()
}

// DefaultRecheckCooldown bounds endpoint-triggered rechecks: a token that an
// endpoint keeps rejecting with 401 re-introspects at most once per cooldown
// window, so a misbehaving endpoint cannot turn the cache into a pass-through
// and re-create the rate-limit problem the cache exists to prevent.
const DefaultRecheckCooldown = 30 * time.Second

// SetRecheckCooldown adjusts the recheck rate limit (d <= 0 restores the
// default). Tests use a Manual clock plus a short cooldown.
func (c *TokenCache) SetRecheckCooldown(d time.Duration) {
	if d <= 0 {
		d = DefaultRecheckCooldown
	}
	c.mu.Lock()
	c.recheckEvery = d
	c.mu.Unlock()
}

// Recheck handles an endpoint-side 401 that arrived after a gateway-side
// cache hit: the cached introspection may be stale (token revoked upstream
// mid-TTL). At most once per cooldown window per token it invalidates the
// entry and re-introspects live — coalesced through the same singleflight as
// ordinary misses — and returns the fresh result. Inside the cooldown window
// it serves the cached view unchanged, bounding upstream traffic no matter
// how often endpoints reject.
func (c *TokenCache) Recheck(token string) (TokenInfo, error) {
	now := c.clk.Now()
	c.mu.Lock()
	if last, ok := c.rechecked[token]; ok && now.Sub(last) < c.recheckEvery {
		c.mu.Unlock()
		return c.Introspect(token)
	}
	// Sweep stale cooldown stamps so the map stays bounded by the live
	// token population rather than growing per garbage token.
	if len(c.rechecked) >= c.maxEntries {
		for t, at := range c.rechecked {
			if now.Sub(at) >= c.recheckEvery {
				delete(c.rechecked, t)
			}
		}
	}
	c.rechecked[token] = now
	if _, ok := c.entries[token]; ok {
		c.invalidations++
		delete(c.entries, token)
	}
	c.mu.Unlock()
	return c.Introspect(token)
}

// Invalidations reports entries dropped by Invalidate/Recheck (gauge feed).
func (c *TokenCache) Invalidations() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.invalidations
}

// Len reports the current entry count (tests, dashboards).
func (c *TokenCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports hit/miss counters. Coalesced followers count as neither:
// they missed the cache but triggered no upstream call (see Coalesced).
func (c *TokenCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Coalesced reports how many lookups joined another goroutine's in-flight
// introspection instead of calling upstream.
func (c *TokenCache) Coalesced() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coalesced
}

// Policy decides whether an introspected identity may use a model — the
// Globus-Groups role-based control of §3.1.2 (e.g. "researchers working on
// sensitive projects may be granted special access to specific models").
type Policy struct {
	mu sync.RWMutex
	// requiredGroup[model] = group that must contain the user; models
	// without an entry are open to any authenticated identity holding the
	// base scope.
	requiredGroup map[string]string
	baseScope     string
}

// NewPolicy returns a policy requiring baseScope on every request.
func NewPolicy(baseScope string) *Policy {
	return &Policy{requiredGroup: make(map[string]string), baseScope: baseScope}
}

// Restrict limits a model to members of group.
func (p *Policy) Restrict(model, group string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requiredGroup[model] = group
}

// Authorize checks scope and group membership for a model.
func (p *Policy) Authorize(info TokenInfo, model string) error {
	if !info.Active {
		return ErrInvalidToken
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.baseScope != "" && !info.HasScope(p.baseScope) {
		return ErrDenied
	}
	group, restricted := p.requiredGroup[model]
	if !restricted {
		return nil
	}
	for _, g := range info.Groups {
		if g == group {
			return nil
		}
	}
	return ErrDenied
}
