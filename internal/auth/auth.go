// Package auth is the Globus Auth substitute (§3.1.2): an OAuth2-flavoured
// identity and access management service with institutional identity
// providers, multi-factor flags, opaque HMAC-signed access tokens (48 h
// validity, refreshable), confidential clients for service-to-service calls,
// a token introspection endpoint with modeled latency and service-side rate
// limiting (the subject of the paper's Optimization 2), Globus-Groups-style
// role-based access, and policy checks.
package auth

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/argonne-first/first/internal/clock"
)

// Errors returned by the auth service.
var (
	ErrInvalidToken  = errors.New("auth: invalid token")
	ErrExpiredToken  = errors.New("auth: token expired")
	ErrRevokedToken  = errors.New("auth: token revoked")
	ErrRateLimited   = errors.New("auth: introspection rate limited")
	ErrUnknownClient = errors.New("auth: unknown confidential client")
	ErrDenied        = errors.New("auth: access denied by policy")
	ErrMFARequired   = errors.New("auth: identity provider requires MFA")
)

// TokenTTL matches the paper: "Access tokens are valid for 48 hours".
const TokenTTL = 48 * time.Hour

// Identity is a user identity from some institutional provider.
type Identity struct {
	Sub       string // stable subject id
	Username  string // e.g. researcher@anl.gov
	Provider  string // identity provider name
	MFAPassed bool
}

// TokenInfo is the introspection result (RFC 7662-shaped).
type TokenInfo struct {
	Active   bool      `json:"active"`
	Sub      string    `json:"sub"`
	Username string    `json:"username"`
	Scopes   []string  `json:"scope"`
	Groups   []string  `json:"groups"`
	Expiry   time.Time `json:"exp"`
}

// HasScope reports whether the token carries the scope.
func (t TokenInfo) HasScope(s string) bool {
	for _, sc := range t.Scopes {
		if sc == s {
			return true
		}
	}
	return false
}

// Provider is an institutional identity provider registered with the
// service.
type Provider struct {
	Name       string
	RequireMFA bool
}

// Config tunes the service's modeled behaviour.
type Config struct {
	// IntrospectLatency models the round trip to the (cloud-hosted) auth
	// service — the cost Optimization 2 caches away. Default 300 ms;
	// negative disables the modeled latency entirely.
	IntrospectLatency time.Duration
	// IntrospectRatePerSec is the service-side rate limit on introspection
	// calls per confidential client (0 = unlimited). The paper observed
	// rate limiting from Globus before caching was added.
	IntrospectRatePerSec float64
}

// Service is the auth authority.
type Service struct {
	clk clock.Clock
	cfg Config
	key []byte

	mu        sync.Mutex
	providers map[string]Provider
	users     map[string]Identity // sub -> identity
	groups    map[string]map[string]bool
	revoked   map[string]bool // token id -> revoked
	refresh   map[string]string
	clients   map[string]string // client id -> secret
	// rate limiting state per client
	rl map[string]*tokenBucket
}

// NewService creates an auth authority with a random signing key.
func NewService(clk clock.Clock, cfg Config) *Service {
	if cfg.IntrospectLatency == 0 {
		cfg.IntrospectLatency = 300 * time.Millisecond
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		panic("auth: cannot read entropy: " + err.Error())
	}
	return &Service{
		clk:       clk,
		cfg:       cfg,
		key:       key,
		providers: make(map[string]Provider),
		users:     make(map[string]Identity),
		groups:    make(map[string]map[string]bool),
		revoked:   make(map[string]bool),
		refresh:   make(map[string]string),
		clients:   make(map[string]string),
		rl:        make(map[string]*tokenBucket),
	}
}

// RegisterProvider adds an institutional identity provider.
func (s *Service) RegisterProvider(p Provider) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.providers[p.Name] = p
}

// RegisterUser registers an identity; its provider must exist.
func (s *Service) RegisterUser(id Identity) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.providers[id.Provider]; !ok {
		return fmt.Errorf("auth: unknown provider %q", id.Provider)
	}
	s.users[id.Sub] = id
	return nil
}

// RegisterConfidentialClient creates the administrator-owned client identity
// used by the gateway and compute endpoints (§3.2.3) and returns its secret.
func (s *Service) RegisterConfidentialClient(clientID string) string {
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		panic("auth: cannot read entropy: " + err.Error())
	}
	secret := hex.EncodeToString(buf)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clients[clientID] = secret
	return secret
}

// AddToGroup puts a user in a Globus-Groups-style group.
func (s *Service) AddToGroup(group, sub string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[group]
	if !ok {
		g = make(map[string]bool)
		s.groups[group] = g
	}
	g[sub] = true
}

// RemoveFromGroup removes a membership.
func (s *Service) RemoveFromGroup(group, sub string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.groups[group]; ok {
		delete(g, sub)
	}
}

// tokenPayload is the signed content of an access token.
type tokenPayload struct {
	ID     string   `json:"jti"`
	Sub    string   `json:"sub"`
	Scopes []string `json:"scope"`
	Iat    int64    `json:"iat"`
	Exp    int64    `json:"exp"`
}

// Grant is an issued token pair.
type Grant struct {
	AccessToken  string
	RefreshToken string
	Expiry       time.Time
}

// Login performs the §4.6 authentication flow for a registered identity and
// returns a token grant. MFA enforcement follows the identity provider.
func (s *Service) Login(sub string, scopes ...string) (Grant, error) {
	s.mu.Lock()
	id, ok := s.users[sub]
	var provider Provider
	if ok {
		provider = s.providers[id.Provider]
	}
	s.mu.Unlock()
	if !ok {
		return Grant{}, fmt.Errorf("auth: unknown identity %q", sub)
	}
	if provider.RequireMFA && !id.MFAPassed {
		return Grant{}, ErrMFARequired
	}
	return s.issue(sub, scopes)
}

func (s *Service) issue(sub string, scopes []string) (Grant, error) {
	now := s.clk.Now()
	idBuf := make([]byte, 12)
	if _, err := rand.Read(idBuf); err != nil {
		return Grant{}, err
	}
	payload := tokenPayload{
		ID:     hex.EncodeToString(idBuf),
		Sub:    sub,
		Scopes: scopes,
		Iat:    now.UnixNano(),
		Exp:    now.Add(TokenTTL).UnixNano(),
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return Grant{}, err
	}
	encoded := base64.RawURLEncoding.EncodeToString(body)
	sig := s.sign(encoded)
	access := "fa_" + encoded + "." + sig

	rtBuf := make([]byte, 18)
	if _, err := rand.Read(rtBuf); err != nil {
		return Grant{}, err
	}
	refreshToken := "fr_" + hex.EncodeToString(rtBuf)
	s.mu.Lock()
	s.refresh[refreshToken] = sub
	s.mu.Unlock()
	return Grant{AccessToken: access, RefreshToken: refreshToken, Expiry: time.Unix(0, payload.Exp)}, nil
}

// Refresh exchanges a refresh token for a fresh grant ("automatically
// refreshed to reduce the need for frequent re-authentications", §4.6).
func (s *Service) Refresh(refreshToken string, scopes ...string) (Grant, error) {
	s.mu.Lock()
	sub, ok := s.refresh[refreshToken]
	s.mu.Unlock()
	if !ok {
		return Grant{}, ErrInvalidToken
	}
	return s.issue(sub, scopes)
}

// Revoke invalidates an access token.
func (s *Service) Revoke(accessToken string) error {
	payload, err := s.decode(accessToken)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.revoked[payload.ID] = true
	s.mu.Unlock()
	return nil
}

func (s *Service) sign(encoded string) string {
	mac := hmac.New(sha256.New, s.key)
	mac.Write([]byte(encoded))
	return hex.EncodeToString(mac.Sum(nil))
}

func (s *Service) decode(token string) (tokenPayload, error) {
	var payload tokenPayload
	if !strings.HasPrefix(token, "fa_") {
		return payload, ErrInvalidToken
	}
	rest := token[len("fa_"):]
	dot := strings.LastIndexByte(rest, '.')
	if dot < 0 {
		return payload, ErrInvalidToken
	}
	encoded, sig := rest[:dot], rest[dot+1:]
	want := s.sign(encoded)
	if !hmac.Equal([]byte(want), []byte(sig)) {
		return payload, ErrInvalidToken
	}
	body, err := base64.RawURLEncoding.DecodeString(encoded)
	if err != nil {
		return payload, ErrInvalidToken
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		return payload, ErrInvalidToken
	}
	return payload, nil
}

// Introspect validates a token on behalf of a confidential client. It
// charges the modeled service round trip and enforces the per-client rate
// limit — exactly the costs Optimization 2 removes from the hot path by
// caching.
func (s *Service) Introspect(clientID, clientSecret, token string) (TokenInfo, error) {
	s.mu.Lock()
	secret, ok := s.clients[clientID]
	if !ok || secret != clientSecret {
		s.mu.Unlock()
		return TokenInfo{}, ErrUnknownClient
	}
	if s.cfg.IntrospectRatePerSec > 0 {
		tb, ok := s.rl[clientID]
		if !ok {
			tb = newTokenBucket(s.cfg.IntrospectRatePerSec, s.cfg.IntrospectRatePerSec*2, s.clk.Now())
			s.rl[clientID] = tb
		}
		if !tb.allow(s.clk.Now()) {
			s.mu.Unlock()
			return TokenInfo{}, ErrRateLimited
		}
	}
	s.mu.Unlock()

	if s.cfg.IntrospectLatency > 0 {
		s.clk.Sleep(s.cfg.IntrospectLatency)
	}
	return s.introspectLocal(token)
}

// introspectLocal validates without latency/limits (used by Introspect and
// by tests).
func (s *Service) introspectLocal(token string) (TokenInfo, error) {
	payload, err := s.decode(token)
	if err != nil {
		return TokenInfo{}, err
	}
	s.mu.Lock()
	revoked := s.revoked[payload.ID]
	id, known := s.users[payload.Sub]
	var groups []string
	for g, members := range s.groups {
		if members[payload.Sub] {
			groups = append(groups, g)
		}
	}
	s.mu.Unlock()
	if revoked {
		return TokenInfo{Active: false}, ErrRevokedToken
	}
	if s.clk.Now().UnixNano() >= payload.Exp {
		return TokenInfo{Active: false}, ErrExpiredToken
	}
	if !known {
		return TokenInfo{}, ErrInvalidToken
	}
	return TokenInfo{
		Active:   true,
		Sub:      payload.Sub,
		Username: id.Username,
		Scopes:   payload.Scopes,
		Groups:   groups,
		Expiry:   time.Unix(0, payload.Exp),
	}, nil
}

// tokenBucket is a simple rate limiter (also reused by the gateway).
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64, now time.Time) *tokenBucket {
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

func (b *tokenBucket) allow(now time.Time) bool {
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
