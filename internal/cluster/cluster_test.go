package cluster

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/argonne-first/first/internal/perfmodel"
)

func TestAllocateSingleNode(t *testing.T) {
	c := New("test", 2, 8, perfmodel.A100_40)
	a, err := c.Allocate(4)
	if err != nil {
		t.Fatal(err)
	}
	if a.GPUs() != 4 || len(a.Parts) != 1 {
		t.Fatalf("allocation = %+v", a)
	}
	st := c.Status()
	if st.FreeGPUs != 12 || st.FreeNodes != 1 {
		t.Errorf("status = %+v", st)
	}
	c.Release(a)
	st = c.Status()
	if st.FreeGPUs != 16 || st.FreeNodes != 2 {
		t.Errorf("status after release = %+v", st)
	}
}

func TestBestFitPacking(t *testing.T) {
	// §3.2.2 co-location: a 6-GPU instance plus two small ones should pack
	// onto one node, keeping the other whole node free.
	c := New("test", 2, 8, perfmodel.A100_40)
	big, err := c.Allocate(6)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := c.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Parts[0].NodeID != big.Parts[0].NodeID || s2.Parts[0].NodeID != big.Parts[0].NodeID {
		t.Errorf("small instances did not co-locate: big on %d, small on %d/%d",
			big.Parts[0].NodeID, s1.Parts[0].NodeID, s2.Parts[0].NodeID)
	}
	if st := c.Status(); st.FreeNodes != 1 {
		t.Errorf("free nodes = %d, want 1 (packing preserved a whole node)", st.FreeNodes)
	}
}

func TestMultiNodeAllocation(t *testing.T) {
	// A 405B-class instance: 32 GPUs = 4 whole nodes.
	c := New("test", 6, 8, perfmodel.A100_40)
	a, err := c.Allocate(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Parts) != 4 {
		t.Fatalf("parts = %d, want 4 nodes", len(a.Parts))
	}
	if a.GPUs() != 32 {
		t.Errorf("gpus = %d", a.GPUs())
	}
	if st := c.Status(); st.FreeNodes != 2 {
		t.Errorf("free nodes = %d", st.FreeNodes)
	}
}

func TestMultiNodeNeedsWholeNodes(t *testing.T) {
	c := New("test", 2, 8, perfmodel.A100_40)
	if _, err := c.Allocate(1); err != nil {
		t.Fatal(err)
	}
	// 16 GPUs would need 2 whole nodes; one is partially used.
	_, err := c.Allocate(16)
	var insufficient ErrInsufficient
	if !errors.As(err, &insufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
}

func TestAllocateInsufficient(t *testing.T) {
	c := New("test", 1, 8, perfmodel.A100_40)
	if _, err := c.Allocate(9); err == nil {
		t.Error("9 GPUs on an 8-GPU cluster should fail")
	}
	if _, err := c.Allocate(0); err == nil {
		t.Error("zero-GPU request should fail")
	}
	if _, err := c.Allocate(-1); err == nil {
		t.Error("negative request should fail")
	}
}

func TestDoubleReleaseIsNoop(t *testing.T) {
	c := New("test", 1, 8, perfmodel.A100_40)
	a, _ := c.Allocate(4)
	c.Release(a)
	c.Release(a)
	c.Release(nil)
	if st := c.Status(); st.FreeGPUs != 8 {
		t.Errorf("free GPUs = %d after double release", st.FreeGPUs)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestExhaustion(t *testing.T) {
	c := New("test", 3, 4, perfmodel.A100_40)
	var allocs []*Allocation
	for i := 0; i < 3; i++ {
		a, err := c.Allocate(4)
		if err != nil {
			t.Fatal(err)
		}
		allocs = append(allocs, a)
	}
	if _, err := c.Allocate(1); err == nil {
		t.Error("exhausted cluster accepted an allocation")
	}
	c.Release(allocs[1])
	if _, err := c.Allocate(2); err != nil {
		t.Errorf("allocation after release failed: %v", err)
	}
}

func TestInvariantsUnderRandomOps(t *testing.T) {
	err := quick.Check(func(ops []uint8) bool {
		c := New("prop", 4, 8, perfmodel.A100_40)
		var live []*Allocation
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				idx := int(op) % len(live)
				c.Release(live[idx])
				live = append(live[:idx], live[idx+1:]...)
			} else {
				n := int(op%10) + 1
				if a, err := c.Allocate(n); err == nil {
					live = append(live, a)
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		for _, a := range live {
			c.Release(a)
		}
		st := c.Status()
		return st.FreeGPUs == 32 && st.FreeNodes == 4 && c.CheckInvariants() == nil
	}, &quick.Config{MaxCount: 80})
	if err != nil {
		t.Error(err)
	}
}

func TestPresetClusters(t *testing.T) {
	sophia := NewSophia()
	if sophia.Name() != "sophia" || sophia.NodeCount() != 24 {
		t.Errorf("sophia = %s/%d nodes", sophia.Name(), sophia.NodeCount())
	}
	if st := sophia.Status(); st.TotalGPUs != 192 {
		t.Errorf("sophia GPUs = %d, want 192 (24×8 DGX-A100)", st.TotalGPUs)
	}
	polaris := NewPolaris()
	if polaris.Status().TotalGPUs != 160 {
		t.Errorf("polaris GPUs = %d", polaris.Status().TotalGPUs)
	}
}

func TestAllocationNodes(t *testing.T) {
	c := New("test", 4, 8, perfmodel.A100_40)
	a, _ := c.Allocate(16)
	nodes := a.Nodes()
	if len(nodes) != 2 {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestGPUSpecExposed(t *testing.T) {
	c := New("test", 1, 8, perfmodel.A100_80)
	if c.GPU().Name != "A100-80GB" {
		t.Errorf("gpu = %s", c.GPU().Name)
	}
	empty := New("empty", 0, 0, perfmodel.A100_40)
	if empty.GPU().Name != "" {
		t.Error("empty cluster should report zero GPU spec")
	}
}
