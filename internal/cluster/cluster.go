// Package cluster models an HPC cluster's compute inventory: nodes with
// GPUs that serving instances are placed onto. It substitutes for Sophia
// (24 DGX-A100 nodes, 8×A100 each) and Polaris in the paper's deployment.
// Allocations are whole GPUs; multiple model instances may co-locate on one
// node (§3.2.2: "a 70B model might use 6 GPUs, while 8B and 7B models use
// the remaining 2").
package cluster

import (
	"fmt"
	"sync"

	"github.com/argonne-first/first/internal/perfmodel"
)

// Node is one compute node.
type Node struct {
	ID       int
	GPUCount int
	GPU      perfmodel.GPUSpec
	// used[i] marks GPU i as allocated.
	used []bool
	free int
}

// FreeGPUs returns the node's unallocated GPU count.
func (n *Node) FreeGPUs() int { return n.free }

// Allocation is a granted set of GPUs, possibly spanning nodes (multi-node
// tensor parallel for very large models).
type Allocation struct {
	ID    int64
	Parts []AllocationPart
	gpus  int
}

// AllocationPart is the slice of one node inside an allocation.
type AllocationPart struct {
	NodeID int
	GPUs   []int
}

// GPUs returns the total GPU count of the allocation.
func (a *Allocation) GPUs() int { return a.gpus }

// Nodes returns the IDs of nodes the allocation touches.
func (a *Allocation) Nodes() []int {
	ids := make([]int, len(a.Parts))
	for i, p := range a.Parts {
		ids[i] = p.NodeID
	}
	return ids
}

// Cluster is a named pool of nodes.
type Cluster struct {
	name string

	mu      sync.Mutex
	nodes   []*Node
	nextID  int64
	granted map[int64]*Allocation
}

// New builds a homogeneous cluster.
func New(name string, nodeCount, gpusPerNode int, gpu perfmodel.GPUSpec) *Cluster {
	c := &Cluster{name: name, granted: make(map[int64]*Allocation)}
	for i := 0; i < nodeCount; i++ {
		c.nodes = append(c.nodes, &Node{
			ID:       i,
			GPUCount: gpusPerNode,
			GPU:      gpu,
			used:     make([]bool, gpusPerNode),
			free:     gpusPerNode,
		})
	}
	return c
}

// NewSophia returns the paper's proof-of-concept cluster: 24 DGX-A100 nodes
// with 8 GPUs each.
func NewSophia() *Cluster { return New("sophia", 24, 8, perfmodel.A100_40) }

// NewPolaris returns the second federation target (§4.5), sized to Polaris'
// 4-GPU nodes (small slice of the real 560-node system).
func NewPolaris() *Cluster { return New("polaris", 40, 4, perfmodel.A100_40) }

// Name returns the cluster name.
func (c *Cluster) Name() string { return c.name }

// GPU returns the cluster's GPU spec (homogeneous clusters).
func (c *Cluster) GPU() perfmodel.GPUSpec {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.nodes) == 0 {
		return perfmodel.GPUSpec{}
	}
	return c.nodes[0].GPU
}

// NodeCount returns the number of nodes.
func (c *Cluster) NodeCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// Allocate grants gpus GPUs: packed onto one node when they fit (preferring
// the fullest node that still fits, to keep whole nodes free for large
// jobs), otherwise assembled from whole free nodes.
func (c *Cluster) Allocate(gpus int) (*Allocation, error) {
	if gpus <= 0 {
		return nil, fmt.Errorf("cluster %s: invalid GPU request %d", c.name, gpus)
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	perNode := 0
	if len(c.nodes) > 0 {
		perNode = c.nodes[0].GPUCount
	}
	if perNode == 0 {
		return nil, fmt.Errorf("cluster %s: no nodes", c.name)
	}

	if gpus <= perNode {
		// Best-fit: the node with the fewest free GPUs that still fits.
		var best *Node
		for _, n := range c.nodes {
			if n.free >= gpus && (best == nil || n.free < best.free) {
				best = n
			}
		}
		if best == nil {
			return nil, ErrInsufficient{Cluster: c.name, Requested: gpus}
		}
		return c.grantLocked([]*Node{best}, gpus), nil
	}

	// Multi-node: whole free nodes only.
	needNodes := (gpus + perNode - 1) / perNode
	var free []*Node
	for _, n := range c.nodes {
		if n.free == n.GPUCount {
			free = append(free, n)
			if len(free) == needNodes {
				break
			}
		}
	}
	if len(free) < needNodes {
		return nil, ErrInsufficient{Cluster: c.name, Requested: gpus}
	}
	return c.grantLocked(free, gpus), nil
}

func (c *Cluster) grantLocked(nodes []*Node, gpus int) *Allocation {
	c.nextID++
	alloc := &Allocation{ID: c.nextID, gpus: gpus}
	remaining := gpus
	for _, n := range nodes {
		take := remaining
		if take > n.free {
			take = n.free
		}
		part := AllocationPart{NodeID: n.ID}
		for i := 0; i < n.GPUCount && take > 0; i++ {
			if !n.used[i] {
				n.used[i] = true
				n.free--
				part.GPUs = append(part.GPUs, i)
				take--
				remaining--
			}
		}
		alloc.Parts = append(alloc.Parts, part)
		if remaining == 0 {
			break
		}
	}
	c.granted[alloc.ID] = alloc
	return alloc
}

// Release returns an allocation's GPUs to the pool. Releasing twice is a
// no-op.
func (c *Cluster) Release(a *Allocation) {
	if a == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.granted[a.ID]; !ok {
		return
	}
	delete(c.granted, a.ID)
	for _, part := range a.Parts {
		n := c.nodes[part.NodeID]
		for _, g := range part.GPUs {
			if n.used[g] {
				n.used[g] = false
				n.free++
			}
		}
	}
}

// Status is the publicly-queryable facility state the federation layer uses
// (§4.5: "queries the publicly available status of each cluster").
type Status struct {
	Name       string `json:"name"`
	TotalNodes int    `json:"total_nodes"`
	FreeNodes  int    `json:"free_nodes"`
	TotalGPUs  int    `json:"total_gpus"`
	FreeGPUs   int    `json:"free_gpus"`
}

// Status snapshots the cluster inventory.
func (c *Cluster) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{Name: c.name, TotalNodes: len(c.nodes)}
	for _, n := range c.nodes {
		st.TotalGPUs += n.GPUCount
		st.FreeGPUs += n.free
		if n.free == n.GPUCount {
			st.FreeNodes++
		}
	}
	return st
}

// CheckInvariants verifies GPU accounting; property tests call it.
func (c *Cluster) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	counted := make(map[int]int)
	//firstlint:allow det commutative GPU accounting: a duplicate or count mismatch fails regardless of visit order
	for _, a := range c.granted {
		for _, p := range a.Parts {
			seen := make(map[int]bool)
			for _, g := range p.GPUs {
				if seen[g] {
					return fmt.Errorf("cluster %s: allocation %d lists GPU %d/%d twice", c.name, a.ID, p.NodeID, g)
				}
				seen[g] = true
				counted[p.NodeID]++
			}
		}
	}
	for _, n := range c.nodes {
		used := n.GPUCount - n.free
		if counted[n.ID] != used {
			return fmt.Errorf("cluster %s: node %d usage drift: granted=%d marked=%d",
				c.name, n.ID, counted[n.ID], used)
		}
	}
	return nil
}

// ErrInsufficient reports that the cluster cannot satisfy a request now.
type ErrInsufficient struct {
	Cluster   string
	Requested int
}

func (e ErrInsufficient) Error() string {
	return fmt.Sprintf("cluster %s: insufficient free GPUs for request of %d", e.Cluster, e.Requested)
}
