package serving

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/argonne-first/first/internal/perfmodel"
)

func newTestEngine(t *testing.T, model string, maxBatch int) *Engine {
	t.Helper()
	eng, err := NewEngine(Config{
		Model:    perfmodel.Default.MustLookup(model),
		GPU:      perfmodel.A100_40,
		MaxBatch: maxBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// drain steps the engine to completion, returning all finished sequences.
func drain(eng *Engine) []*Sequence {
	var done []*Sequence
	now := eng.Now()
	for {
		res := eng.Step(now)
		if !res.Busy {
			return done
		}
		now += res.Duration
		done = append(done, res.Completed...)
	}
}

func TestEngineSingleSequenceTiming(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama70B, 0)
	spec := eng.Model()
	seq := eng.Submit(0, 220, 182, nil)
	done := drain(eng)
	if len(done) != 1 || done[0] != seq {
		t.Fatalf("drained %d sequences", len(done))
	}
	// Analytic latency: prefill(220) once + 182 batch-1 decode iterations.
	want := spec.PrefillTime(220, perfmodel.A100_40) +
		182*spec.DecodeIter(1, perfmodel.A100_40)
	got := seq.Latency()
	if math.Abs(got.Seconds()-want.Seconds()) > 0.01 {
		t.Errorf("latency = %v, want %v", got, want)
	}
	if got < 2700*time.Millisecond || got > 3100*time.Millisecond {
		t.Errorf("70B single-request latency = %v, want ≈2.9s (Fig. 3 anchor)", got)
	}
}

func TestEngineBatchThroughputCalibration(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama70B, 0)
	// Saturate: 600 identical sequences.
	for i := 0; i < 600; i++ {
		eng.Submit(0, 220, 182, nil)
	}
	done := drain(eng)
	if len(done) != 600 {
		t.Fatalf("completed %d/600", len(done))
	}
	tokPerSec := float64(600*182) / eng.Now().Seconds()
	// Fig. 3 anchor: ≈1677 tok/s saturated (allow the ramp/drain band).
	if tokPerSec < 1450 || tokPerSec > 1900 {
		t.Errorf("saturated throughput = %.0f tok/s, want ≈1500-1900", tokPerSec)
	}
	if st := eng.Stats(); st.PeakBatch != 256 {
		t.Errorf("peak batch = %d, want 256", st.PeakBatch)
	}
}

func TestEngineConservationProperty(t *testing.T) {
	// Random interleavings of submit/step/abort preserve sequence and KV
	// accounting.
	err := quick.Check(func(ops []uint16) bool {
		eng := newTestEngine(t, perfmodel.Llama8B, 16)
		now := time.Duration(0)
		var ids []int64
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				seq := eng.Submit(now, int(op%512)+1, int(op%300)+1, nil)
				ids = append(ids, seq.ID)
			case 2:
				res := eng.Step(now)
				now += res.Duration
			case 3:
				if len(ids) > 0 {
					eng.Abort(ids[int(op)%len(ids)])
				}
			}
			if err := eng.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		drain(eng)
		return eng.CheckInvariants() == nil
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

func TestEngineAllSubmittedComplete(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 0)
	const n = 300
	for i := 0; i < n; i++ {
		eng.Submit(0, 50+i%400, 20+i%200, nil)
	}
	done := drain(eng)
	if len(done) != n {
		t.Fatalf("completed %d/%d", len(done), n)
	}
	st := eng.Stats()
	if st.Completed != n || st.Submitted != n {
		t.Errorf("stats: %+v", st)
	}
	if eng.KVUsedTokens() != 0 {
		t.Errorf("KV not drained: %d", eng.KVUsedTokens())
	}
}

func TestEngineRespectsMaxBatch(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 8)
	for i := 0; i < 100; i++ {
		eng.Submit(0, 10, 50, nil)
	}
	now := time.Duration(0)
	for i := 0; i < 20; i++ {
		res := eng.Step(now)
		if !res.Busy {
			break
		}
		now += res.Duration
		if eng.RunningBatch() > 8 {
			t.Fatalf("batch %d exceeds cap 8", eng.RunningBatch())
		}
	}
}

func TestEngineKVAdmissionControl(t *testing.T) {
	spec := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	eng, err := NewEngine(Config{
		Model:            spec,
		GPU:              perfmodel.A100_40,
		KVCapacityTokens: 2000, // tiny KV: only a couple of sequences fit
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		eng.Submit(0, 500, 400, nil) // 900 reserved tokens each
	}
	res := eng.Step(0)
	if !res.Busy {
		t.Fatal("engine should run")
	}
	if eng.RunningBatch() > 2 {
		t.Errorf("admitted %d sequences into 2000-token KV", eng.RunningBatch())
	}
	if eng.Stats().KVRejections == 0 {
		t.Error("expected KV admission rejections")
	}
	done := drain(eng)
	if len(done) != 10 {
		t.Errorf("eventually completed %d/10", len(done))
	}
}

func TestEngineAbort(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 4)
	var ids []int64
	for i := 0; i < 8; i++ {
		ids = append(ids, eng.Submit(0, 10, 100, nil).ID)
	}
	eng.Step(0) // admits 4; 4 waiting
	if !eng.Abort(ids[7]) {
		t.Error("aborting waiting sequence should succeed")
	}
	if eng.Abort(ids[0]) {
		t.Error("aborting running sequence should fail")
	}
	if eng.Abort(999999) {
		t.Error("aborting unknown id should fail")
	}
	done := drain(eng)
	if len(done) != 7 {
		t.Errorf("completed %d, want 7 after abort", len(done))
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestEngineRejectsEmbeddingModel(t *testing.T) {
	_, err := NewEngine(Config{
		Model: perfmodel.Default.MustLookup(perfmodel.NVEmbed),
		GPU:   perfmodel.A100_40,
	})
	if err == nil {
		t.Error("embedding model should be rejected")
	}
}

func TestEngineRejectsImpossibleFit(t *testing.T) {
	spec := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	spec.TensorParallel = 1
	_, err := NewEngine(Config{Model: spec, GPU: perfmodel.A100_40})
	if err == nil {
		t.Error("70B on one 40GB GPU should be rejected")
	}
}

func TestEngineIdleStep(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 0)
	res := eng.Step(5 * time.Second)
	if res.Busy || res.Duration != 0 || len(res.Completed) != 0 {
		t.Errorf("idle step = %+v", res)
	}
	if eng.Now() != 5*time.Second {
		t.Errorf("idle step should still advance engine time: %v", eng.Now())
	}
}

func TestEngineQueueWaitAccounting(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 1)
	first := eng.Submit(0, 10, 10, nil)
	second := eng.Submit(0, 10, 10, nil)
	drain(eng)
	if first.QueueWait() != 0 {
		t.Errorf("first queue wait = %v, want 0", first.QueueWait())
	}
	if second.QueueWait() <= 0 {
		t.Errorf("second queue wait = %v, want > 0 (batch cap 1)", second.QueueWait())
	}
	if second.FinishAt <= first.FinishAt {
		t.Error("FIFO violated")
	}
}

func TestEnginePrefillBudgetSpreadsAdmission(t *testing.T) {
	spec := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	eng, err := NewEngine(Config{
		Model: spec, GPU: perfmodel.A100_40,
		MaxPrefillTokensPerIter: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		eng.Submit(0, 600, 50, nil) // 600-token prompts vs 1000-token budget
	}
	eng.Step(0)
	if got := eng.RunningBatch(); got != 1 {
		t.Errorf("first iteration admitted %d, want 1 (600 then 1200 > budget)", got)
	}
}

func TestEngineWaitingRingWraparound(t *testing.T) {
	// Interleave submit/drain cycles so the ring's head walks around the
	// buffer repeatedly; FIFO order and accounting must survive wrapping.
	eng := newTestEngine(t, perfmodel.Llama8B, 4)
	now := time.Duration(0)
	var completedIDs []int64
	var submitted []int64
	for round := 0; round < 10; round++ {
		for i := 0; i < 13; i++ {
			submitted = append(submitted, eng.Submit(now, 10, 5, nil).ID)
		}
		for eng.Depth() > 0 {
			res := eng.Step(now)
			now += res.Duration
			for _, s := range res.Completed {
				completedIDs = append(completedIDs, s.ID)
			}
			eng.Release(res.Completed...)
		}
		if err := eng.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if len(completedIDs) != len(submitted) {
		t.Fatalf("completed %d, want %d", len(completedIDs), len(submitted))
	}
	// Admission is FIFO and all sequences are identical, so batches finish
	// in admission order: completion IDs must be sorted.
	for i := 1; i < len(completedIDs); i++ {
		if completedIDs[i] < completedIDs[i-1] {
			t.Fatalf("completion order not FIFO at %d: %v", i, completedIDs[i-1:i+1])
		}
	}
}

func TestEngineMassAbort(t *testing.T) {
	// A client stampede disconnects every waiting request; each abort is a
	// binary search + tombstone, and the queue must drain fully.
	eng := newTestEngine(t, perfmodel.Llama8B, 4)
	var ids []int64
	for i := 0; i < 2000; i++ {
		ids = append(ids, eng.Submit(0, 10, 50, nil).ID)
	}
	eng.Step(0) // admit 4
	aborted := 0
	for _, id := range ids[4:] {
		if eng.Abort(id) {
			aborted++
		}
	}
	if aborted != 1996 {
		t.Fatalf("aborted %d, want 1996", aborted)
	}
	if eng.WaitingCount() != 0 {
		t.Errorf("waiting = %d after mass abort", eng.WaitingCount())
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if got := len(drain(eng)); got != 4 {
		t.Errorf("completed %d, want the 4 running", got)
	}
	if st := eng.Stats(); st.Aborted != 1996 {
		t.Errorf("stats.Aborted = %d", st.Aborted)
	}
}

func TestEngineAbortMiddleThenDrains(t *testing.T) {
	// Tombstoned entries in the middle of the ring are dropped when they
	// reach the head during admission.
	eng := newTestEngine(t, perfmodel.Llama8B, 2)
	var ids []int64
	for i := 0; i < 6; i++ {
		ids = append(ids, eng.Submit(0, 10, 3, nil).ID)
	}
	if !eng.Abort(ids[3]) {
		t.Fatal("abort middle failed")
	}
	if eng.Abort(ids[3]) {
		t.Error("double abort should fail")
	}
	done := drain(eng)
	if len(done) != 5 {
		t.Fatalf("completed %d, want 5", len(done))
	}
	for _, s := range done {
		if s.ID == ids[3] {
			t.Error("aborted sequence completed")
		}
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestEngineSequencePoolReuse(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 4)
	first := eng.Submit(0, 10, 2, nil)
	res := eng.Step(0)
	res = eng.Step(res.Duration)
	if len(res.Completed) != 1 {
		t.Fatalf("completed %d, want 1", len(res.Completed))
	}
	eng.Release(res.Completed...)
	second := eng.Submit(eng.Now(), 20, 3, "ctx")
	if second != first {
		t.Error("Release should feed the free list for the next Submit")
	}
	if second.ID == 1 || second.PromptTok != 20 || second.OutputTok != 3 || second.Emitted != 0 || second.Ctx != "ctx" {
		t.Errorf("recycled sequence not reset: %+v", second)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestEngineCompletedScratchReused(t *testing.T) {
	// StepResult.Completed aliases engine-owned scratch: the next Step may
	// overwrite it, so the slices from consecutive busy steps share a base.
	eng := newTestEngine(t, perfmodel.Llama8B, 8)
	for i := 0; i < 8; i++ {
		eng.Submit(0, 10, 1, nil)
	}
	res1 := eng.Step(0)
	if len(res1.Completed) != 8 {
		t.Fatalf("first step completed %d, want 8", len(res1.Completed))
	}
	got := make([]int64, 0, 8)
	for _, s := range res1.Completed {
		got = append(got, s.ID)
	}
	eng.Release(res1.Completed...)
	for i := 0; i < 4; i++ {
		eng.Submit(eng.Now(), 10, 1, nil)
	}
	res2 := eng.Step(eng.Now())
	if len(res2.Completed) != 4 {
		t.Fatalf("second step completed %d, want 4", len(res2.Completed))
	}
	if &res1.Completed[0] != &res2.Completed[0] {
		t.Error("scratch buffer should be reused across steps")
	}
	for i, id := range got {
		if id != int64(i+1) {
			t.Errorf("first batch IDs corrupted: %v", got)
			break
		}
	}
}

// TestEngineStepZeroAlloc pins the saturated Step loop at zero allocations
// per iteration (the BenchmarkEngineStep regression).
func TestEngineStepZeroAlloc(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 0)
	for i := 0; i < 512; i++ {
		eng.Submit(0, 100, 1<<20, nil)
	}
	now := time.Duration(0)
	// Warm: admit the batch and run a few iterations.
	for i := 0; i < 10; i++ {
		now += eng.Step(now).Duration
	}
	allocs := testing.AllocsPerRun(100, func() {
		now += eng.Step(now).Duration
	})
	if allocs != 0 {
		t.Errorf("steady-state Step allocs = %v, want 0", allocs)
	}
}

// TestEngineChurnZeroAlloc covers the completion path too: with Release in
// the loop, even sequence turnover allocates nothing at steady state.
func TestEngineChurnZeroAlloc(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 8)
	now := time.Duration(0)
	churn := func() {
		for i := 0; i < 8; i++ {
			eng.Submit(now, 10, 2, nil)
		}
		for eng.Depth() > 0 {
			res := eng.Step(now)
			now += res.Duration
			eng.Release(res.Completed...)
		}
	}
	for i := 0; i < 10; i++ {
		churn() // warm ring, scratch, and free list
	}
	if allocs := testing.AllocsPerRun(100, churn); allocs != 0 {
		t.Errorf("steady-state submit/step/release allocs = %v, want 0", allocs)
	}
}

// TestEngineEachRunningEachWaiting pins the iterator contracts drivers rely
// on for drain/kill migration: running in admission order, waiting in queue
// order with tombstones skipped, and both consistent with Depth.
func TestEngineEachRunningEachWaiting(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 2)
	var seqs []*Sequence
	for i := 0; i < 5; i++ {
		seqs = append(seqs, eng.Submit(0, 10, 50, i))
	}
	eng.Step(0) // admits 2 (maxBatch), leaves 3 waiting

	var running, waiting []int
	eng.EachRunning(func(s *Sequence) { running = append(running, s.Ctx.(int)) })
	eng.EachWaiting(func(s *Sequence) { waiting = append(waiting, s.Ctx.(int)) })
	if want := []int{0, 1}; !reflect.DeepEqual(running, want) {
		t.Errorf("running = %v, want %v", running, want)
	}
	if want := []int{2, 3, 4}; !reflect.DeepEqual(waiting, want) {
		t.Errorf("waiting = %v, want %v", waiting, want)
	}
	if len(running)+len(waiting) != eng.Depth() {
		t.Errorf("iterators saw %d sequences, Depth = %d", len(running)+len(waiting), eng.Depth())
	}

	// Tombstoned entries disappear from EachWaiting immediately.
	if !eng.Abort(seqs[3].ID) {
		t.Fatal("abort failed")
	}
	waiting = waiting[:0]
	eng.EachWaiting(func(s *Sequence) { waiting = append(waiting, s.Ctx.(int)) })
	if want := []int{2, 4}; !reflect.DeepEqual(waiting, want) {
		t.Errorf("waiting after abort = %v, want %v", waiting, want)
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
