package serving

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/argonne-first/first/internal/perfmodel"
)

func newTestEngine(t *testing.T, model string, maxBatch int) *Engine {
	t.Helper()
	eng, err := NewEngine(Config{
		Model:    perfmodel.Default.MustLookup(model),
		GPU:      perfmodel.A100_40,
		MaxBatch: maxBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// drain steps the engine to completion, returning all finished sequences.
func drain(eng *Engine) []*Sequence {
	var done []*Sequence
	now := eng.Now()
	for {
		res := eng.Step(now)
		if !res.Busy {
			return done
		}
		now += res.Duration
		done = append(done, res.Completed...)
	}
}

func TestEngineSingleSequenceTiming(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama70B, 0)
	spec := eng.Model()
	seq := eng.Submit(0, 220, 182, nil)
	done := drain(eng)
	if len(done) != 1 || done[0] != seq {
		t.Fatalf("drained %d sequences", len(done))
	}
	// Analytic latency: prefill(220) once + 182 batch-1 decode iterations.
	want := spec.PrefillTime(220, perfmodel.A100_40) +
		182*spec.DecodeIter(1, perfmodel.A100_40)
	got := seq.Latency()
	if math.Abs(got.Seconds()-want.Seconds()) > 0.01 {
		t.Errorf("latency = %v, want %v", got, want)
	}
	if got < 2700*time.Millisecond || got > 3100*time.Millisecond {
		t.Errorf("70B single-request latency = %v, want ≈2.9s (Fig. 3 anchor)", got)
	}
}

func TestEngineBatchThroughputCalibration(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama70B, 0)
	// Saturate: 600 identical sequences.
	for i := 0; i < 600; i++ {
		eng.Submit(0, 220, 182, nil)
	}
	done := drain(eng)
	if len(done) != 600 {
		t.Fatalf("completed %d/600", len(done))
	}
	tokPerSec := float64(600*182) / eng.Now().Seconds()
	// Fig. 3 anchor: ≈1677 tok/s saturated (allow the ramp/drain band).
	if tokPerSec < 1450 || tokPerSec > 1900 {
		t.Errorf("saturated throughput = %.0f tok/s, want ≈1500-1900", tokPerSec)
	}
	if st := eng.Stats(); st.PeakBatch != 256 {
		t.Errorf("peak batch = %d, want 256", st.PeakBatch)
	}
}

func TestEngineConservationProperty(t *testing.T) {
	// Random interleavings of submit/step/abort preserve sequence and KV
	// accounting.
	err := quick.Check(func(ops []uint16) bool {
		eng := newTestEngine(t, perfmodel.Llama8B, 16)
		now := time.Duration(0)
		var ids []int64
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				seq := eng.Submit(now, int(op%512)+1, int(op%300)+1, nil)
				ids = append(ids, seq.ID)
			case 2:
				res := eng.Step(now)
				now += res.Duration
			case 3:
				if len(ids) > 0 {
					eng.Abort(ids[int(op)%len(ids)])
				}
			}
			if err := eng.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		drain(eng)
		return eng.CheckInvariants() == nil
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

func TestEngineAllSubmittedComplete(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 0)
	const n = 300
	for i := 0; i < n; i++ {
		eng.Submit(0, 50+i%400, 20+i%200, nil)
	}
	done := drain(eng)
	if len(done) != n {
		t.Fatalf("completed %d/%d", len(done), n)
	}
	st := eng.Stats()
	if st.Completed != n || st.Submitted != n {
		t.Errorf("stats: %+v", st)
	}
	if eng.KVUsedTokens() != 0 {
		t.Errorf("KV not drained: %d", eng.KVUsedTokens())
	}
}

func TestEngineRespectsMaxBatch(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 8)
	for i := 0; i < 100; i++ {
		eng.Submit(0, 10, 50, nil)
	}
	now := time.Duration(0)
	for i := 0; i < 20; i++ {
		res := eng.Step(now)
		if !res.Busy {
			break
		}
		now += res.Duration
		if eng.RunningBatch() > 8 {
			t.Fatalf("batch %d exceeds cap 8", eng.RunningBatch())
		}
	}
}

func TestEngineKVAdmissionControl(t *testing.T) {
	spec := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	eng, err := NewEngine(Config{
		Model:            spec,
		GPU:              perfmodel.A100_40,
		KVCapacityTokens: 2000, // tiny KV: only a couple of sequences fit
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		eng.Submit(0, 500, 400, nil) // 900 reserved tokens each
	}
	res := eng.Step(0)
	if !res.Busy {
		t.Fatal("engine should run")
	}
	if eng.RunningBatch() > 2 {
		t.Errorf("admitted %d sequences into 2000-token KV", eng.RunningBatch())
	}
	if eng.Stats().KVRejections == 0 {
		t.Error("expected KV admission rejections")
	}
	done := drain(eng)
	if len(done) != 10 {
		t.Errorf("eventually completed %d/10", len(done))
	}
}

func TestEngineAbort(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 4)
	var ids []int64
	for i := 0; i < 8; i++ {
		ids = append(ids, eng.Submit(0, 10, 100, nil).ID)
	}
	eng.Step(0) // admits 4; 4 waiting
	if !eng.Abort(ids[7]) {
		t.Error("aborting waiting sequence should succeed")
	}
	if eng.Abort(ids[0]) {
		t.Error("aborting running sequence should fail")
	}
	if eng.Abort(999999) {
		t.Error("aborting unknown id should fail")
	}
	done := drain(eng)
	if len(done) != 7 {
		t.Errorf("completed %d, want 7 after abort", len(done))
	}
	if err := eng.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestEngineRejectsEmbeddingModel(t *testing.T) {
	_, err := NewEngine(Config{
		Model: perfmodel.Default.MustLookup(perfmodel.NVEmbed),
		GPU:   perfmodel.A100_40,
	})
	if err == nil {
		t.Error("embedding model should be rejected")
	}
}

func TestEngineRejectsImpossibleFit(t *testing.T) {
	spec := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	spec.TensorParallel = 1
	_, err := NewEngine(Config{Model: spec, GPU: perfmodel.A100_40})
	if err == nil {
		t.Error("70B on one 40GB GPU should be rejected")
	}
}

func TestEngineIdleStep(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 0)
	res := eng.Step(5 * time.Second)
	if res.Busy || res.Duration != 0 || len(res.Completed) != 0 {
		t.Errorf("idle step = %+v", res)
	}
	if eng.Now() != 5*time.Second {
		t.Errorf("idle step should still advance engine time: %v", eng.Now())
	}
}

func TestEngineQueueWaitAccounting(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 1)
	first := eng.Submit(0, 10, 10, nil)
	second := eng.Submit(0, 10, 10, nil)
	drain(eng)
	if first.QueueWait() != 0 {
		t.Errorf("first queue wait = %v, want 0", first.QueueWait())
	}
	if second.QueueWait() <= 0 {
		t.Errorf("second queue wait = %v, want > 0 (batch cap 1)", second.QueueWait())
	}
	if second.FinishAt <= first.FinishAt {
		t.Error("FIFO violated")
	}
}

func TestEnginePrefillBudgetSpreadsAdmission(t *testing.T) {
	spec := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	eng, err := NewEngine(Config{
		Model: spec, GPU: perfmodel.A100_40,
		MaxPrefillTokensPerIter: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		eng.Submit(0, 600, 50, nil) // 600-token prompts vs 1000-token budget
	}
	eng.Step(0)
	if got := eng.RunningBatch(); got != 1 {
		t.Errorf("first iteration admitted %d, want 1 (600 then 1200 > budget)", got)
	}
}
