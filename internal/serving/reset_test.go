package serving

import (
	"testing"
	"time"

	"github.com/argonne-first/first/internal/perfmodel"
)

// driveScripted runs a fixed submit/step/abort script and returns a
// fingerprint of everything externally observable: completion IDs and
// finish times, per-step durations, and final stats.
func driveScripted(t *testing.T, eng *Engine) []int64 {
	t.Helper()
	var trace []int64
	now := time.Duration(0)
	for i := 0; i < 40; i++ {
		seq := eng.Submit(now, 50+i*7%200, 10+i*13%60, nil)
		if i%11 == 3 {
			eng.Abort(seq.ID)
		}
		res := eng.Step(now)
		now += res.Duration
		trace = append(trace, int64(res.Duration), int64(res.EmittedTokens))
		for _, s := range res.Completed {
			trace = append(trace, s.ID, int64(s.FinishAt))
		}
		eng.Release(res.Completed...)
	}
	for {
		res := eng.Step(now)
		if !res.Busy {
			break
		}
		now += res.Duration
		for _, s := range res.Completed {
			trace = append(trace, s.ID, int64(s.FinishAt))
		}
		eng.Release(res.Completed...)
	}
	st := eng.Stats()
	trace = append(trace, st.Submitted, st.Completed, st.Aborted, st.OutputTokens,
		st.PrefillTokens, st.Iterations, int64(st.BusyTime), int64(st.PeakBatch))
	if err := eng.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestEngineResetBehavesLikeFresh is the arena-recycling contract: an engine
// that ran a full (different) workload and was Reset must reproduce a fresh
// engine's behaviour exactly.
func TestEngineResetBehavesLikeFresh(t *testing.T) {
	cfg := Config{Model: perfmodel.Default.MustLookup(perfmodel.Llama8B), GPU: perfmodel.A100_40}
	fresh, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := driveScripted(t, fresh)

	reused, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the engine: an unrelated workload left mid-flight (waiting and
	// running sequences alive), then Reset.
	for i := 0; i < 300; i++ {
		reused.Submit(0, 80, 40, nil)
	}
	reused.Step(0)
	reused.Step(0)
	reused.Reset()
	if reused.Depth() != 0 || reused.KVUsedTokens() != 0 || reused.Now() != 0 {
		t.Fatalf("Reset left depth=%d kv=%d now=%v", reused.Depth(), reused.KVUsedTokens(), reused.Now())
	}
	if st := reused.Stats(); st != (Stats{}) {
		t.Fatalf("Reset left stats %+v", st)
	}
	got := driveScripted(t, reused)
	if len(got) != len(want) {
		t.Fatalf("reset engine trace length %d, fresh %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reset engine diverges from fresh at trace[%d]: %d vs %d", i, got[i], want[i])
		}
	}
}
