// Package serving implements the Model Serving Tools layer (§3.3): a
// vLLM-style continuous-batching generation engine, an offline batch engine,
// an Infinity-style embedding engine, and an external cloud-API model used by
// the Fig. 5 comparison.
//
// The generation engine is a pure state machine over a virtual timeline
// (time.Duration offsets): drivers — the live goroutine loop in this package
// or the discrete-event harness in internal/desmodel — call Step repeatedly
// and deliver the completions it reports. Keeping the engine pure lets the
// exact same batching logic power both the real HTTP stack and the paper's
// figure reproductions.
package serving

import (
	"errors"
	"fmt"
	"time"

	"github.com/argonne-first/first/internal/perfmodel"
)

// Sequence is one generation request inside an engine.
type Sequence struct {
	ID        int64
	PromptTok int
	OutputTok int // target output length
	Emitted   int // tokens generated so far

	SubmitAt time.Duration // engine-relative submission time
	StartAt  time.Duration // admission into the running batch
	FinishAt time.Duration // completion time (set when done)

	// Ctx carries driver-private data (e.g. the fabric task).
	Ctx interface{}
}

// QueueWait returns how long the sequence waited before admission (clamped
// at zero: a live driver's wall-derived submit stamp can land inside the
// engine's current iteration).
func (s *Sequence) QueueWait() time.Duration {
	if s.StartAt <= s.SubmitAt {
		return 0
	}
	return s.StartAt - s.SubmitAt
}

// Latency returns submission-to-completion time (valid once finished).
func (s *Sequence) Latency() time.Duration { return s.FinishAt - s.SubmitAt }

// Config configures an engine instance.
type Config struct {
	Model perfmodel.ModelSpec
	GPU   perfmodel.GPUSpec
	// MaxBatch overrides the model's max_num_seqs when > 0.
	MaxBatch int
	// KVCapacityTokens overrides the computed KV capacity when > 0.
	KVCapacityTokens int
	// MaxPrefillTokensPerIter bounds how much prompt processing one
	// iteration absorbs (vLLM's max_num_batched_tokens); default 8192.
	MaxPrefillTokensPerIter int
}

func (c Config) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return c.Model.MaxBatch
}

func (c Config) kvCapacity() int {
	if c.KVCapacityTokens > 0 {
		return c.KVCapacityTokens
	}
	return c.Model.KVCapacityTokens(c.GPU)
}

func (c Config) maxPrefillPerIter() int {
	if c.MaxPrefillTokensPerIter > 0 {
		return c.MaxPrefillTokensPerIter
	}
	return 8192
}

// Stats aggregates engine activity.
type Stats struct {
	Submitted     int64
	Completed     int64
	Aborted       int64
	OutputTokens  int64
	PrefillTokens int64
	Iterations    int64
	BusyTime      time.Duration
	PeakBatch     int
	KVRejections  int64 // admissions deferred for KV headroom
}

// StepResult reports what one engine iteration did.
type StepResult struct {
	// Duration of the iteration; zero when the engine is idle.
	Duration time.Duration
	// Busy is false when there was nothing to do.
	Busy bool
	// Completed sequences finished at the end of this iteration, with
	// FinishAt already stamped.
	Completed []*Sequence
	// EmittedTokens is the number of output tokens produced this iteration.
	EmittedTokens int
}

// Engine is a continuous-batching generation engine for one model instance.
// It is not safe for concurrent use; drivers serialize access.
type Engine struct {
	cfg     Config
	nextID  int64
	now     time.Duration
	waiting []*Sequence
	running []*Sequence
	// kvUsed tracks actual KV occupancy; kvReserved additionally holds the
	// full prompt+output reservation of every running sequence so admission
	// can never let the batch grow past capacity mid-flight. (vLLM admits
	// optimistically and preempts; we admit conservatively, which preserves
	// the same steady-state batching behaviour without a recompute path.)
	kvUsed     int
	kvReserved int
	kvCap      int
	stats      Stats
	// lastBusy is the last time the engine had work; hot-node reapers use it.
	lastBusy time.Duration
}

// ErrClosed is returned by Submit after the driver marked the engine closed.
var ErrClosed = errors.New("serving: engine closed")

// NewEngine validates the config and returns an idle engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model.Kind == perfmodel.KindEmbedding {
		return nil, fmt.Errorf("serving: %s is an embedding model; use EmbedEngine", cfg.Model.Name)
	}
	kv := cfg.kvCapacity()
	if kv <= 0 {
		return nil, fmt.Errorf("serving: %s does not fit on %d×%s (no KV room)",
			cfg.Model.Name, cfg.Model.TensorParallel, cfg.GPU.Name)
	}
	return &Engine{cfg: cfg, kvCap: kv}, nil
}

// Model returns the configured model spec.
func (e *Engine) Model() perfmodel.ModelSpec { return e.cfg.Model }

// Now returns the engine's current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Stats returns a copy of the accumulated stats.
func (e *Engine) Stats() Stats { return e.stats }

// Depth returns waiting+running sequence count (least-loaded routing input).
func (e *Engine) Depth() int { return len(e.waiting) + len(e.running) }

// RunningBatch returns the current running batch size.
func (e *Engine) RunningBatch() int { return len(e.running) }

// WaitingCount returns the number of queued (unadmitted) sequences.
func (e *Engine) WaitingCount() int { return len(e.waiting) }

// KVUsedTokens returns current KV occupancy in tokens.
func (e *Engine) KVUsedTokens() int { return e.kvUsed }

// KVCapacity returns the KV capacity in tokens.
func (e *Engine) KVCapacity() int { return e.kvCap }

// LastBusyAt returns the last time the engine had active work.
func (e *Engine) LastBusyAt() time.Duration { return e.lastBusy }

// Submit enqueues a request at time now and returns its sequence. The driver
// must ensure now is monotonically consistent with prior calls. Engine time
// only fast-forwards to now when the engine is idle — a busy engine's
// iteration pacing is never disturbed by arrivals (live drivers may call
// with a wall-derived now slightly ahead of the engine's timeline).
func (e *Engine) Submit(now time.Duration, promptTok, outputTok int, ctx interface{}) *Sequence {
	if now > e.now && len(e.running) == 0 && len(e.waiting) == 0 {
		e.now = now
	}
	if promptTok < 1 {
		promptTok = 1
	}
	if outputTok < 1 {
		outputTok = 1
	}
	e.nextID++
	submitAt := now
	if submitAt < 0 {
		submitAt = 0
	}
	seq := &Sequence{
		ID:        e.nextID,
		PromptTok: promptTok,
		OutputTok: outputTok,
		SubmitAt:  submitAt,
		Ctx:       ctx,
	}
	e.waiting = append(e.waiting, seq)
	e.stats.Submitted++
	if e.now > e.lastBusy {
		e.lastBusy = e.now
	}
	if now > e.lastBusy {
		e.lastBusy = now
	}
	return seq
}

// Step advances the engine by one iteration starting at virtual time now.
// The iteration spans [now, now+Duration]; completions are stamped at its
// end. When there is no work, Busy is false and the driver should sleep
// until the next Submit.
func (e *Engine) Step(now time.Duration) StepResult {
	if now > e.now {
		e.now = now
	}
	prefillTok := e.admit()
	if len(e.running) == 0 {
		return StepResult{}
	}

	iter := e.cfg.Model.DecodeIter(len(e.running), e.cfg.GPU)
	if prefillTok > 0 {
		iter += e.cfg.Model.PrefillTime(prefillTok, e.cfg.GPU)
	}
	end := e.now + iter

	res := StepResult{Duration: iter, Busy: true, EmittedTokens: len(e.running)}
	kept := e.running[:0]
	for _, seq := range e.running {
		seq.Emitted++
		e.kvUsed++
		if seq.Emitted >= seq.OutputTok {
			seq.FinishAt = end
			e.kvUsed -= seq.PromptTok + seq.Emitted
			e.kvReserved -= seq.PromptTok + seq.OutputTok
			res.Completed = append(res.Completed, seq)
			e.stats.Completed++
			e.stats.OutputTokens += int64(seq.Emitted)
		} else {
			kept = append(kept, seq)
		}
	}
	e.running = kept

	e.stats.Iterations++
	e.stats.BusyTime += iter
	if len(e.running) > e.stats.PeakBatch {
		e.stats.PeakBatch = len(e.running)
	}
	e.now = end
	e.lastBusy = end
	return res
}

// admit moves waiting sequences into the running batch subject to the batch
// cap, the per-iteration prefill budget, and KV headroom. It returns the
// total prompt tokens admitted this iteration.
func (e *Engine) admit() int {
	budget := e.cfg.maxPrefillPerIter()
	maxBatch := e.cfg.maxBatch()
	var admittedPrefill int
	for len(e.waiting) > 0 && len(e.running) < maxBatch {
		seq := e.waiting[0]
		if admittedPrefill > 0 && admittedPrefill+seq.PromptTok > budget {
			break // prefill budget exhausted this iteration
		}
		// Require room for the prompt plus a full generation reservation so
		// running sequences never overflow KV mid-flight.
		need := seq.PromptTok + seq.OutputTok
		if e.kvReserved+need > e.kvCap {
			e.stats.KVRejections++
			break
		}
		e.kvReserved += need
		e.kvUsed += seq.PromptTok
		seq.StartAt = e.now
		e.running = append(e.running, seq)
		e.waiting = e.waiting[1:]
		admittedPrefill += seq.PromptTok
		e.stats.PrefillTokens += int64(seq.PromptTok)
	}
	if len(e.running) > e.stats.PeakBatch {
		e.stats.PeakBatch = len(e.running)
	}
	return admittedPrefill
}

// Abort removes a waiting sequence (e.g. client disconnect). It returns true
// if the sequence was found in the waiting queue; running sequences cannot
// be aborted mid-iteration.
func (e *Engine) Abort(id int64) bool {
	for i, s := range e.waiting {
		if s.ID == id {
			e.waiting = append(e.waiting[:i], e.waiting[i+1:]...)
			e.stats.Aborted++
			return true
		}
	}
	return false
}

// CheckInvariants validates internal accounting; tests call this after
// random operation sequences.
func (e *Engine) CheckInvariants() error {
	if e.kvUsed < 0 {
		return fmt.Errorf("serving: negative KV usage %d", e.kvUsed)
	}
	if e.kvUsed > e.kvReserved {
		return fmt.Errorf("serving: KV usage %d exceeds reservation %d", e.kvUsed, e.kvReserved)
	}
	if e.kvReserved > e.kvCap {
		return fmt.Errorf("serving: KV reservation over capacity: %d > %d", e.kvReserved, e.kvCap)
	}
	if len(e.running) > e.cfg.maxBatch() {
		return fmt.Errorf("serving: batch %d exceeds cap %d", len(e.running), e.cfg.maxBatch())
	}
	inFlight := int64(len(e.running) + len(e.waiting))
	if e.stats.Submitted != e.stats.Completed+e.stats.Aborted+inFlight {
		return fmt.Errorf("serving: sequence conservation violated: submitted=%d completed=%d aborted=%d inflight=%d",
			e.stats.Submitted, e.stats.Completed, e.stats.Aborted, inFlight)
	}
	var kv int
	for _, s := range e.running {
		kv += s.PromptTok + s.Emitted
	}
	if kv != e.kvUsed {
		return fmt.Errorf("serving: KV accounting drift: computed=%d tracked=%d", kv, e.kvUsed)
	}
	return nil
}
