// Package serving implements the Model Serving Tools layer (§3.3): a
// vLLM-style continuous-batching generation engine, an offline batch engine,
// an Infinity-style embedding engine, and an external cloud-API model used by
// the Fig. 5 comparison.
//
// The generation engine is a pure state machine over a virtual timeline
// (time.Duration offsets): drivers — the live goroutine loop in this package
// or the discrete-event harness in internal/desmodel — call Step repeatedly
// and deliver the completions it reports. Keeping the engine pure lets the
// exact same batching logic power both the real HTTP stack and the paper's
// figure reproductions.
//
// The engine's hot path is allocation-free at steady state: the waiting
// queue is a ring buffer (so admission never re-slices and pins a backing
// array), StepResult.Completed aliases a scratch buffer reused across
// iterations, and drivers that call Release return finished Sequence objects
// to a free list that Submit draws from.
package serving

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/argonne-first/first/internal/perfmodel"
)

// Sequence is one generation request inside an engine.
type Sequence struct {
	ID        int64
	PromptTok int
	OutputTok int // target output length
	Emitted   int // tokens generated so far

	SubmitAt time.Duration // engine-relative submission time
	StartAt  time.Duration // admission into the running batch
	FinishAt time.Duration // completion time (set when done)

	// Ctx carries driver-private data (e.g. the fabric task).
	Ctx interface{}

	// aborted marks a waiting sequence whose client disconnected; admit
	// drops it lazily when it reaches the queue head.
	aborted bool
}

// QueueWait returns how long the sequence waited before admission (clamped
// at zero: a live driver's wall-derived submit stamp can land inside the
// engine's current iteration).
func (s *Sequence) QueueWait() time.Duration {
	if s.StartAt <= s.SubmitAt {
		return 0
	}
	return s.StartAt - s.SubmitAt
}

// Latency returns submission-to-completion time (valid once finished).
func (s *Sequence) Latency() time.Duration { return s.FinishAt - s.SubmitAt }

// Config configures an engine instance.
type Config struct {
	Model perfmodel.ModelSpec
	GPU   perfmodel.GPUSpec
	// MaxBatch overrides the model's max_num_seqs when > 0.
	MaxBatch int
	// KVCapacityTokens overrides the computed KV capacity when > 0.
	KVCapacityTokens int
	// MaxPrefillTokensPerIter bounds how much prompt processing one
	// iteration absorbs (vLLM's max_num_batched_tokens); default 8192.
	MaxPrefillTokensPerIter int
}

func (c Config) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return c.Model.MaxBatch
}

func (c Config) kvCapacity() int {
	if c.KVCapacityTokens > 0 {
		return c.KVCapacityTokens
	}
	return c.Model.KVCapacityTokens(c.GPU)
}

func (c Config) maxPrefillPerIter() int {
	if c.MaxPrefillTokensPerIter > 0 {
		return c.MaxPrefillTokensPerIter
	}
	return 8192
}

// Stats aggregates engine activity.
type Stats struct {
	Submitted     int64
	Completed     int64
	Aborted       int64
	OutputTokens  int64
	PrefillTokens int64
	Iterations    int64
	BusyTime      time.Duration
	PeakBatch     int
	KVRejections  int64 // admissions deferred for KV headroom
}

// StepResult reports what one engine iteration did.
type StepResult struct {
	// Duration of the iteration; zero when the engine is idle.
	Duration time.Duration
	// Busy is false when there was nothing to do.
	Busy bool
	// Completed sequences finished at the end of this iteration, with
	// FinishAt already stamped. The slice aliases a scratch buffer owned by
	// the engine and is only valid until the next Step call; drivers must
	// consume (or copy) it before stepping again.
	Completed []*Sequence
	// EmittedTokens is the number of output tokens produced this iteration.
	EmittedTokens int
}

// seqRing is a FIFO of waiting sequences backed by a power-of-two ring
// buffer. Unlike the previous head-sliced `waiting = waiting[1:]` queue it
// never pins a growing backing array, and popping the head is a single index
// increment with no write to the popped slot's neighbours.
type seqRing struct {
	buf  []*Sequence
	head int
	n    int
}

func (q *seqRing) len() int { return q.n }

func (q *seqRing) at(i int) *Sequence {
	return q.buf[(q.head+i)&(len(q.buf)-1)]
}

func (q *seqRing) push(s *Sequence) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = s
	q.n++
}

func (q *seqRing) popFront() *Sequence {
	s := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return s
}

func (q *seqRing) popBack() *Sequence {
	i := (q.head + q.n - 1) & (len(q.buf) - 1)
	s := q.buf[i]
	q.buf[i] = nil
	q.n--
	return s
}

func (q *seqRing) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]*Sequence, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = buf
	q.head = 0
}

// Engine is a continuous-batching generation engine for one model instance.
// It is not safe for concurrent use; drivers serialize access.
type Engine struct {
	cfg     Config
	nextID  int64
	now     time.Duration
	waiting seqRing
	running []*Sequence
	// abortedWaiting counts tombstoned entries still sitting in the ring.
	abortedWaiting int
	// completedScratch backs StepResult.Completed across iterations.
	completedScratch []*Sequence
	// free holds released Sequence objects for Submit to reuse.
	free []*Sequence
	// kvUsed tracks actual KV occupancy; kvReserved additionally holds the
	// full prompt+output reservation of every running sequence so admission
	// can never let the batch grow past capacity mid-flight. (vLLM admits
	// optimistically and preempts; we admit conservatively, which preserves
	// the same steady-state batching behaviour without a recompute path.)
	kvUsed     int
	kvReserved int
	kvCap      int
	stats      Stats
	// lastBusy is the last time the engine had work; hot-node reapers use it.
	lastBusy time.Duration
}

// ErrClosed is returned by Submit after the driver marked the engine closed.
var ErrClosed = errors.New("serving: engine closed")

// NewEngine validates the config and returns an idle engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model.Kind == perfmodel.KindEmbedding {
		return nil, fmt.Errorf("serving: %s is an embedding model; use EmbedEngine", cfg.Model.Name)
	}
	kv := cfg.kvCapacity()
	if kv <= 0 {
		return nil, fmt.Errorf("serving: %s does not fit on %d×%s (no KV room)",
			cfg.Model.Name, cfg.Model.TensorParallel, cfg.GPU.Name)
	}
	return &Engine{cfg: cfg, kvCap: kv}, nil
}

// Model returns the configured model spec.
func (e *Engine) Model() perfmodel.ModelSpec { return e.cfg.Model }

// Config returns the engine's configuration (a comparable value — engine
// pools key on it).
func (e *Engine) Config() Config { return e.cfg }

// Now returns the engine's current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Stats returns a copy of the accumulated stats.
func (e *Engine) Stats() Stats { return e.stats }

// Depth returns waiting+running sequence count (least-loaded routing input).
//
//first:hotpath pinned by TestEngineChurnZeroAlloc (engine_test.go)
func (e *Engine) Depth() int { return e.WaitingCount() + len(e.running) }

// RunningBatch returns the current running batch size.
func (e *Engine) RunningBatch() int { return len(e.running) }

// WaitingCount returns the number of queued (unadmitted) sequences.
func (e *Engine) WaitingCount() int { return e.waiting.len() - e.abortedWaiting }

// KVUsedTokens returns current KV occupancy in tokens.
func (e *Engine) KVUsedTokens() int { return e.kvUsed }

// KVCapacity returns the KV capacity in tokens.
func (e *Engine) KVCapacity() int { return e.kvCap }

// LastBusyAt returns the last time the engine had active work.
func (e *Engine) LastBusyAt() time.Duration { return e.lastBusy }

// Submit enqueues a request at time now and returns its sequence. The driver
// must ensure now is monotonically consistent with prior calls. Engine time
// only fast-forwards to now when the engine is idle — a busy engine's
// iteration pacing is never disturbed by arrivals (live drivers may call
// with a wall-derived now slightly ahead of the engine's timeline).
//
// The returned Sequence may come from the free list populated by Release; it
// is owned by the caller until completion is delivered (or the sequence is
// aborted) and must not be retained after being passed back to Release.
//
//first:hotpath pinned by TestEngineChurnZeroAlloc (engine_test.go)
func (e *Engine) Submit(now time.Duration, promptTok, outputTok int, ctx interface{}) *Sequence {
	if now > e.now && len(e.running) == 0 && e.waiting.len() == 0 {
		e.now = now
	}
	if promptTok < 1 {
		promptTok = 1
	}
	if outputTok < 1 {
		outputTok = 1
	}
	e.nextID++
	submitAt := now
	if submitAt < 0 {
		submitAt = 0
	}
	var seq *Sequence
	if n := len(e.free); n > 0 {
		seq = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		//firstlint:allow hotpath free-list miss grows the pool; the churn pin runs at steady state where Release keeps the list stocked
		seq = &Sequence{}
	}
	*seq = Sequence{
		ID:        e.nextID,
		PromptTok: promptTok,
		OutputTok: outputTok,
		SubmitAt:  submitAt,
		Ctx:       ctx,
	}
	e.waiting.push(seq)
	e.stats.Submitted++
	if e.now > e.lastBusy {
		e.lastBusy = e.now
	}
	if now > e.lastBusy {
		e.lastBusy = now
	}
	return seq
}

// Release returns finished (or aborted) sequences to the engine's free list
// for reuse by later Submits. Callers must guarantee no references to the
// sequences remain — in particular, a StepResult.Completed slice must be
// fully consumed first. Release is optional: drivers that keep sequences
// alive (tests, tracing tools) simply skip it and let the GC reclaim them.
//
//first:hotpath pinned by TestEngineChurnZeroAlloc (engine_test.go)
func (e *Engine) Release(seqs ...*Sequence) {
	for _, s := range seqs {
		if s == nil {
			continue
		}
		*s = Sequence{}
		e.free = append(e.free, s)
	}
}

// Reset returns the engine to its post-NewEngine state while keeping every
// allocated structure warm: the waiting ring's backing array, the running
// slice, the completed scratch buffer, and the Sequence free list all
// survive, with queued/running sequences drained into the free list. A Reset
// engine is behaviourally indistinguishable from a fresh one (IDs restart at
// 1, time at zero, stats cleared), which is what lets experiment-fleet
// arenas recycle engines across cells without perturbing determinism.
func (e *Engine) Reset() {
	for e.waiting.len() > 0 {
		s := e.waiting.popFront()
		*s = Sequence{}
		e.free = append(e.free, s)
	}
	for i, s := range e.running {
		*s = Sequence{}
		e.free = append(e.free, s)
		e.running[i] = nil
	}
	e.running = e.running[:0]
	for i := range e.completedScratch {
		e.completedScratch[i] = nil
	}
	e.completedScratch = e.completedScratch[:0]
	e.nextID = 0
	e.now = 0
	e.abortedWaiting = 0
	e.kvUsed = 0
	e.kvReserved = 0
	e.stats = Stats{}
	e.lastBusy = 0
}

// Step advances the engine by one iteration starting at virtual time now.
// The iteration spans [now, now+Duration]; completions are stamped at its
// end. When there is no work, Busy is false and the driver should sleep
// until the next Submit. The returned Completed slice is reused by the next
// Step call (see StepResult).
//
//first:hotpath pinned by TestEngineStepZeroAlloc (engine_test.go)
func (e *Engine) Step(now time.Duration) StepResult {
	if now > e.now {
		e.now = now
	}
	prefillTok := e.admit()
	if len(e.running) == 0 {
		return StepResult{}
	}

	iter := e.cfg.Model.DecodeIter(len(e.running), e.cfg.GPU)
	if prefillTok > 0 {
		iter += e.cfg.Model.PrefillTime(prefillTok, e.cfg.GPU)
	}
	end := e.now + iter

	for i := range e.completedScratch {
		e.completedScratch[i] = nil
	}
	e.completedScratch = e.completedScratch[:0]

	res := StepResult{Duration: iter, Busy: true, EmittedTokens: len(e.running)}
	kept := e.running[:0]
	for _, seq := range e.running {
		seq.Emitted++
		e.kvUsed++
		if seq.Emitted >= seq.OutputTok {
			seq.FinishAt = end
			e.kvUsed -= seq.PromptTok + seq.Emitted
			e.kvReserved -= seq.PromptTok + seq.OutputTok
			e.completedScratch = append(e.completedScratch, seq)
			e.stats.Completed++
			e.stats.OutputTokens += int64(seq.Emitted)
		} else {
			kept = append(kept, seq)
		}
	}
	e.running = kept
	res.Completed = e.completedScratch

	e.stats.Iterations++
	e.stats.BusyTime += iter
	if len(e.running) > e.stats.PeakBatch {
		e.stats.PeakBatch = len(e.running)
	}
	e.now = end
	e.lastBusy = end
	return res
}

// admit moves waiting sequences into the running batch subject to the batch
// cap, the per-iteration prefill budget, and KV headroom. It returns the
// total prompt tokens admitted this iteration. Tombstoned (aborted)
// sequences are dropped as they surface at the queue head.
func (e *Engine) admit() int {
	budget := e.cfg.maxPrefillPerIter()
	maxBatch := e.cfg.maxBatch()
	var admittedPrefill int
	for e.waiting.len() > 0 {
		if len(e.running) >= maxBatch {
			break
		}
		seq := e.waiting.at(0)
		if seq.aborted {
			e.waiting.popFront()
			e.abortedWaiting--
			continue
		}
		if admittedPrefill > 0 && admittedPrefill+seq.PromptTok > budget {
			break // prefill budget exhausted this iteration
		}
		// Require room for the prompt plus a full generation reservation so
		// running sequences never overflow KV mid-flight.
		need := seq.PromptTok + seq.OutputTok
		if e.kvReserved+need > e.kvCap {
			e.stats.KVRejections++
			break
		}
		e.waiting.popFront()
		e.kvReserved += need
		e.kvUsed += seq.PromptTok
		seq.StartAt = e.now
		e.running = append(e.running, seq)
		admittedPrefill += seq.PromptTok
		e.stats.PrefillTokens += int64(seq.PromptTok)
	}
	if len(e.running) > e.stats.PeakBatch {
		e.stats.PeakBatch = len(e.running)
	}
	return admittedPrefill
}

// EachRunning calls f for every sequence currently in the running batch, in
// admission order. The callback must not mutate engine state; drivers use it
// to identify work lost when an instance's walltime hard-kills it mid-batch.
func (e *Engine) EachRunning(f func(*Sequence)) {
	for _, s := range e.running {
		f(s)
	}
}

// EachWaiting calls f for every live (non-tombstoned) waiting sequence in
// queue order. The callback must not mutate engine state; drivers that need
// to abort entries collect IDs first and call Abort afterwards.
func (e *Engine) EachWaiting(f func(*Sequence)) {
	for i := 0; i < e.waiting.len(); i++ {
		if s := e.waiting.at(i); !s.aborted {
			f(s)
		}
	}
}

// Abort removes a waiting sequence (e.g. client disconnect). It returns true
// if the sequence was found in the waiting queue; running sequences cannot
// be aborted mid-iteration. Because sequence IDs increase monotonically in
// submission order, the waiting ring is sorted by ID and the lookup is a
// binary search; the entry itself is tombstoned and reclaimed lazily, so a
// mass client-disconnect costs O(log n) per abort instead of the previous
// O(n) scan-and-copy.
func (e *Engine) Abort(id int64) bool {
	n := e.waiting.len()
	i := sort.Search(n, func(i int) bool { return e.waiting.at(i).ID >= id })
	if i >= n {
		return false
	}
	seq := e.waiting.at(i)
	if seq.ID != id || seq.aborted {
		return false
	}
	seq.aborted = true
	e.abortedWaiting++
	e.stats.Aborted++
	// Trim tombstones reachable from either end so a fully-aborted queue
	// drains to empty without waiting for the next admission pass.
	for e.waiting.len() > 0 && e.waiting.at(0).aborted {
		e.waiting.popFront()
		e.abortedWaiting--
	}
	for e.waiting.len() > 0 && e.waiting.at(e.waiting.len()-1).aborted {
		e.waiting.popBack()
		e.abortedWaiting--
	}
	return true
}

// CheckInvariants validates internal accounting; tests call this after
// random operation sequences.
func (e *Engine) CheckInvariants() error {
	if e.kvUsed < 0 {
		return fmt.Errorf("serving: negative KV usage %d", e.kvUsed)
	}
	if e.kvUsed > e.kvReserved {
		return fmt.Errorf("serving: KV usage %d exceeds reservation %d", e.kvUsed, e.kvReserved)
	}
	if e.kvReserved > e.kvCap {
		return fmt.Errorf("serving: KV reservation over capacity: %d > %d", e.kvReserved, e.kvCap)
	}
	if len(e.running) > e.cfg.maxBatch() {
		return fmt.Errorf("serving: batch %d exceeds cap %d", len(e.running), e.cfg.maxBatch())
	}
	if e.abortedWaiting < 0 || e.abortedWaiting > e.waiting.len() {
		return fmt.Errorf("serving: tombstone count %d out of range (queue %d)", e.abortedWaiting, e.waiting.len())
	}
	for i := 1; i < e.waiting.len(); i++ {
		if e.waiting.at(i-1).ID >= e.waiting.at(i).ID {
			return fmt.Errorf("serving: waiting ring not ID-ordered at %d", i)
		}
	}
	inFlight := int64(len(e.running) + e.WaitingCount())
	if e.stats.Submitted != e.stats.Completed+e.stats.Aborted+inFlight {
		return fmt.Errorf("serving: sequence conservation violated: submitted=%d completed=%d aborted=%d inflight=%d",
			e.stats.Submitted, e.stats.Completed, e.stats.Aborted, inFlight)
	}
	var kv int
	for _, s := range e.running {
		kv += s.PromptTok + s.Emitted
	}
	if kv != e.kvUsed {
		return fmt.Errorf("serving: KV accounting drift: computed=%d tracked=%d", kv, e.kvUsed)
	}
	return nil
}
