package serving

import (
	"sort"
	"time"

	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/workload"
)

// OfflineResult summarizes a batch-mode run (§4.4, §5.3.1): the model is
// loaded solely for the job and all requests are processed with continuous
// batching, with no online API server in the path.
type OfflineResult struct {
	Requests      int
	OutputTokens  int64
	LoadTime      time.Duration
	GenerateTime  time.Duration
	TotalTime     time.Duration
	OverallTokPS  float64 // output tokens / total time (incl. cold start)
	GenerateTokPS float64 // output tokens / generation time
	MedianLatency time.Duration
}

// OfflineConfig configures a batch run.
type OfflineConfig struct {
	Model perfmodel.ModelSpec
	GPU   perfmodel.GPUSpec
	// MaxBatch overrides max_num_seqs (offline mode typically runs larger
	// batches than online serving; 0 keeps the model default).
	MaxBatch int
	// SkipLoad treats the model as already resident (warm job reuse).
	SkipLoad bool
	// Speedup is the offline-vs-server efficiency factor: without the API
	// server, per-request HTTP handling, and online scheduling in the
	// loop, vLLM's offline batch mode iterates faster than server mode
	// (the paper measures 2117 tok/s offline vs 1677 through the serving
	// path). Default 1.25.
	Speedup float64
}

// RunOffline executes the requests through a dedicated engine on virtual
// time and reports batch-mode throughput. It is deterministic and does not
// sleep; the experiments and the live batch runner both use it (the live
// runner then sleeps out TotalTime on its clock).
func RunOffline(cfg OfflineConfig, reqs []workload.Request) (OfflineResult, error) {
	if cfg.Speedup <= 0 {
		cfg.Speedup = 1.25
	}
	model := cfg.Model
	model.DecodeBase = time.Duration(float64(model.DecodeBase) / cfg.Speedup)
	model.DecodeSlope = time.Duration(float64(model.DecodeSlope) / cfg.Speedup)
	model.PrefillPerTok = time.Duration(float64(model.PrefillPerTok) / cfg.Speedup)
	eng, err := NewEngine(Config{Model: model, GPU: cfg.GPU, MaxBatch: cfg.MaxBatch})
	if err != nil {
		return OfflineResult{}, err
	}
	var res OfflineResult
	res.Requests = len(reqs)
	if !cfg.SkipLoad {
		res.LoadTime = cfg.Model.LoadTime(cfg.GPU)
	}

	start := res.LoadTime
	for _, r := range reqs {
		eng.Submit(start, r.PromptTok, r.OutputTok, nil)
	}
	latencies := make([]time.Duration, 0, len(reqs))
	now := start
	for {
		step := eng.Step(now)
		if !step.Busy {
			break
		}
		now += step.Duration
		for _, seq := range step.Completed {
			latencies = append(latencies, seq.FinishAt-start)
			res.OutputTokens += int64(seq.Emitted)
		}
		eng.Release(step.Completed...)
	}
	res.GenerateTime = now - start
	res.TotalTime = now
	if res.TotalTime > 0 {
		res.OverallTokPS = float64(res.OutputTokens) / res.TotalTime.Seconds()
	}
	if res.GenerateTime > 0 {
		res.GenerateTokPS = float64(res.OutputTokens) / res.GenerateTime.Seconds()
	}
	res.MedianLatency = medianDuration(latencies)
	return res, nil
}

func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
