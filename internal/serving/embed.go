package serving

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/perfmodel"
)

// EmbedEngine is the Infinity-style embedding backend (§3.3). Embedding
// vectors are deterministic pseudo-embeddings derived from the input text:
// stable across calls, approximately unit-norm, and with the property that
// texts sharing vocabulary land closer together — enough structure for the
// RAG case study (§6.2) to retrieve meaningfully.
type EmbedEngine struct {
	model perfmodel.ModelSpec
	gpu   perfmodel.GPUSpec
	clk   clock.Clock

	mu    sync.Mutex
	stats Stats
}

// NewEmbedEngine validates that the model is an embedding model.
func NewEmbedEngine(model perfmodel.ModelSpec, gpu perfmodel.GPUSpec, clk clock.Clock) (*EmbedEngine, error) {
	if model.Kind != perfmodel.KindEmbedding {
		return nil, fmt.Errorf("serving: %s is not an embedding model", model.Name)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &EmbedEngine{model: model, gpu: gpu, clk: clk}, nil
}

// Dim returns the embedding dimensionality.
func (e *EmbedEngine) Dim() int { return e.model.EmbedDim }

// Stats returns a snapshot of activity counters.
func (e *EmbedEngine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Embed computes embeddings for the inputs, sleeping out the modeled batch
// cost on the engine's clock.
func (e *EmbedEngine) Embed(ctx context.Context, inputs []string) ([][]float32, error) {
	if len(inputs) == 0 {
		return nil, nil
	}
	var totalTok int
	out := make([][]float32, len(inputs))
	for i, text := range inputs {
		tok := approxTokens(text)
		totalTok += tok
		out[i] = PseudoEmbedding(text, e.model.EmbedDim)
	}
	cost := e.model.EmbedTime(totalTok, e.gpu)
	select {
	case <-e.clk.After(cost):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	e.mu.Lock()
	e.stats.Submitted += int64(len(inputs))
	e.stats.Completed += int64(len(inputs))
	e.stats.PrefillTokens += int64(totalTok)
	e.stats.BusyTime += cost
	e.mu.Unlock()
	return out, nil
}

// EmbedCost exposes the latency model for the DES harness.
func (e *EmbedEngine) EmbedCost(totalTok int) time.Duration {
	return e.model.EmbedTime(totalTok, e.gpu)
}

func approxTokens(text string) int {
	n := len(text) / 4
	if n < 1 {
		n = 1
	}
	return n
}

// PseudoEmbedding returns a deterministic unit-norm vector for text. Each
// whitespace-delimited term contributes a hashed random direction, so texts
// with overlapping vocabulary have higher cosine similarity.
func PseudoEmbedding(text string, dim int) []float32 {
	if dim <= 0 {
		dim = 64
	}
	vec := make([]float64, dim)
	start := 0
	addTerm := func(term string) {
		if term == "" {
			return
		}
		h := fnv.New64a()
		h.Write([]byte(term))
		seed := h.Sum64()
		// xorshift over the term hash yields the term's direction.
		x := seed | 1
		for d := 0; d < dim; d++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			vec[d] += float64(int64(x)) / math.MaxInt64 // in [-1,1)
		}
	}
	for i := 0; i <= len(text); i++ {
		if i == len(text) || text[i] == ' ' || text[i] == '\n' || text[i] == '\t' {
			addTerm(text[start:i])
			start = i + 1
		}
	}
	var norm float64
	for _, v := range vec {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	out := make([]float32, dim)
	if norm == 0 {
		out[0] = 1
		return out
	}
	for i, v := range vec {
		out[i] = float32(v / norm)
	}
	return out
}
