package serving

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/workload"
)

func TestLiveEngineGenerate(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 0)
	clk := clock.NewScaled(10000)
	live := NewLiveEngine(eng, clk)
	defer live.Close()

	wallStart := time.Now()
	comp := live.Generate(context.Background(), 100, 64)
	if comp.Err != nil {
		t.Fatalf("Generate: %v", comp.Err)
	}
	if comp.OutputTok != 64 {
		t.Errorf("output = %d, want 64", comp.OutputTok)
	}
	// The engine-timeline latency is exact; wall time must be far shorter
	// than the virtual cost thanks to the scaled clock.
	want := eng.Model().PrefillTime(100, perfmodel.A100_40) + 64*eng.Model().DecodeIter(1, perfmodel.A100_40)
	if diff := comp.Latency - want; diff < -want/10 || diff > want/10 {
		t.Errorf("engine-timeline latency %v vs analytic %v", comp.Latency, want)
	}
	if wall := time.Since(wallStart); wall > want/10 {
		t.Errorf("wall time %v not compressed vs virtual %v", wall, want)
	}
	_ = clk
}

func TestLiveEngineConcurrentClients(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 0)
	live := NewLiveEngine(eng, clock.NewScaled(20000))
	defer live.Close()

	const n = 40
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := live.Generate(context.Background(), 50, 30)
			errs <- c.Err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent generate: %v", err)
		}
	}
	if st := live.Stats(); st.Completed != n {
		t.Errorf("completed = %d, want %d", st.Completed, n)
	}
}

func TestLiveEngineContextCancel(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama70B, 1)
	live := NewLiveEngine(eng, clock.NewScaled(100)) // slow: 70B takes ~3s virtual / 30ms wall each
	defer live.Close()

	// Fill the single batch slot, then cancel a queued request.
	go live.Generate(context.Background(), 200, 500)
	time.Sleep(5 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	comp := live.Generate(ctx, 200, 500)
	if comp.Err == nil {
		t.Fatal("expected context cancellation")
	}
}

func TestLiveEngineCloseUnblocksWaiters(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama70B, 1)
	live := NewLiveEngine(eng, clock.NewScaled(10))

	done := make(chan Completion, 1)
	go func() { done <- live.Generate(context.Background(), 200, 5000) }()
	time.Sleep(10 * time.Millisecond)
	live.Close()
	select {
	case c := <-done:
		if c.Err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", c.Err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not released on Close")
	}
	if c := live.Generate(context.Background(), 1, 1); c.Err != ErrClosed {
		t.Errorf("post-close generate err = %v", c.Err)
	}
}

func TestLiveEngineIdleFor(t *testing.T) {
	eng := newTestEngine(t, perfmodel.Llama8B, 0)
	clk := clock.NewScaled(50000)
	live := NewLiveEngine(eng, clk)
	defer live.Close()
	live.Generate(context.Background(), 10, 5)
	time.Sleep(5 * time.Millisecond) // ≈250s virtual
	if idle := live.IdleFor(); idle < 10*time.Second {
		t.Errorf("idle = %v, want long virtual idle", idle)
	}
}

func TestRunOfflineBatchCalibration(t *testing.T) {
	// The §5.3.1 anchor: 1000 long-form requests on 70B ⇒ ≈2117 tok/s
	// overall including cold start, ≈409 s total.
	model := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	trace := workload.Generate(1000, workload.BatchGen(), workload.Infinite(), 99)
	res, err := RunOffline(OfflineConfig{Model: model, GPU: perfmodel.A100_40, MaxBatch: 512}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 1000 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.OverallTokPS < 1700 || res.OverallTokPS > 2500 {
		t.Errorf("overall = %.0f tok/s, want ≈2117 band", res.OverallTokPS)
	}
	if res.TotalTime.Seconds() < 330 || res.TotalTime.Seconds() > 520 {
		t.Errorf("total = %.0fs, want ≈409 band", res.TotalTime.Seconds())
	}
	if res.GenerateTokPS <= res.OverallTokPS {
		t.Error("generation-only throughput must exceed overall (cold start included)")
	}
}

func TestRunOfflineSkipLoad(t *testing.T) {
	model := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	trace := workload.Generate(50, workload.BatchGen(), workload.Infinite(), 1)
	warm, err := RunOffline(OfflineConfig{Model: model, GPU: perfmodel.A100_40, SkipLoad: true}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if warm.LoadTime != 0 {
		t.Errorf("warm run load time = %v", warm.LoadTime)
	}
	cold, _ := RunOffline(OfflineConfig{Model: model, GPU: perfmodel.A100_40}, trace)
	if cold.TotalTime <= warm.TotalTime {
		t.Error("cold run should take longer")
	}
}

func TestRunOfflineAmortization(t *testing.T) {
	model := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	small, _ := RunOffline(OfflineConfig{Model: model, GPU: perfmodel.A100_40},
		workload.Generate(10, workload.BatchGen(), workload.Infinite(), 2))
	large, _ := RunOffline(OfflineConfig{Model: model, GPU: perfmodel.A100_40},
		workload.Generate(2000, workload.BatchGen(), workload.Infinite(), 2))
	if small.OverallTokPS >= large.OverallTokPS {
		t.Errorf("amortization inverted: %0.f vs %.0f tok/s", small.OverallTokPS, large.OverallTokPS)
	}
	loadShareSmall := small.LoadTime.Seconds() / small.TotalTime.Seconds()
	if loadShareSmall < 0.3 {
		t.Errorf("load share for 10 requests = %.2f, should dominate", loadShareSmall)
	}
}

func TestEmbedEngine(t *testing.T) {
	model := perfmodel.Default.MustLookup(perfmodel.NVEmbed)
	emb, err := NewEmbedEngine(model, perfmodel.A100_40, clock.NewScaled(10000))
	if err != nil {
		t.Fatal(err)
	}
	vecs, err := emb.Embed(context.Background(), []string{"plasma turbulence", "genome assembly"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vecs) != 2 || len(vecs[0]) != 4096 {
		t.Fatalf("shape = %dx%d", len(vecs), len(vecs[0]))
	}
	if emb.Dim() != 4096 {
		t.Errorf("dim = %d", emb.Dim())
	}
	if st := emb.Stats(); st.Completed != 2 {
		t.Errorf("stats completed = %d", st.Completed)
	}
}

func TestEmbedEngineRejectsChatModel(t *testing.T) {
	model := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	if _, err := NewEmbedEngine(model, perfmodel.A100_40, clock.NewReal()); err == nil {
		t.Error("chat model should be rejected")
	}
}

func TestPseudoEmbeddingProperties(t *testing.T) {
	a := PseudoEmbedding("qsub walltime queue scheduler", 256)
	b := PseudoEmbedding("qsub walltime queue scheduler", 256)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	var norm float64
	for _, v := range a {
		norm += float64(v) * float64(v)
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-3 {
		t.Errorf("norm = %v, want ≈1", math.Sqrt(norm))
	}
	// Overlapping vocabulary ⇒ higher similarity than disjoint text.
	related := PseudoEmbedding("qsub walltime queue limits", 256)
	unrelated := PseudoEmbedding("tokamak plasma neutron flux", 256)
	simRelated := dot(a, related)
	simUnrelated := dot(a, unrelated)
	if simRelated <= simUnrelated {
		t.Errorf("related sim %.3f <= unrelated %.3f", simRelated, simUnrelated)
	}
}

func dot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func TestPseudoEmbeddingEmptyText(t *testing.T) {
	v := PseudoEmbedding("", 64)
	if len(v) != 64 {
		t.Fatalf("dim = %d", len(v))
	}
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if norm == 0 {
		t.Error("empty text should still produce a unit vector")
	}
}

func TestExtAPIModel(t *testing.T) {
	m := DefaultOpenAI()
	if m.AdmissionGap() <= 0 {
		t.Error("default model should be rate limited")
	}
	if m.ServiceTime(200) <= m.ServiceTime(10) {
		t.Error("service time should grow with output length")
	}
	unlimited := ExtAPIModel{}
	if unlimited.AdmissionGap() != 0 {
		t.Error("no rate limit should mean zero gap")
	}
	if got := m.ScaledOutput(100); got != 135 {
		t.Errorf("scaled output = %d, want 135", got)
	}
	if got := (ExtAPIModel{}).ScaledOutput(100); got != 100 {
		t.Errorf("unscaled output = %d, want 100", got)
	}
}
