package serving

import (
	"context"
	"sync"
	"time"

	"github.com/argonne-first/first/internal/clock"
)

// Completion is what a live caller receives when its request finishes.
type Completion struct {
	PromptTok int
	OutputTok int
	QueueWait time.Duration
	Latency   time.Duration
	Err       error
}

// LiveEngine drives an Engine in real (or scaled) time: a background
// goroutine runs the continuous-batching loop, sleeping for each iteration's
// duration on the configured clock and delivering completions to the
// channel each Generate call registered. This is the component a fabric
// endpoint launches per model instance — the stand-in for "vLLM serve".
type LiveEngine struct {
	clk   clock.Clock
	epoch time.Time

	mu      sync.Mutex
	eng     *Engine
	waiters map[int64]chan Completion
	closed  bool
	wake    chan struct{}
	done    chan struct{}
}

// NewLiveEngine wraps eng (which must not be used elsewhere) and starts the
// serving loop on clk.
func NewLiveEngine(eng *Engine, clk clock.Clock) *LiveEngine {
	l := &LiveEngine{
		clk:     clk,
		epoch:   clk.Now(),
		eng:     eng,
		waiters: make(map[int64]chan Completion),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	//firstlint:allow det LiveEngine is the wall-clock wrapper around the deterministic engine; the serving loop goroutine is the live-mode contract
	go l.loop()
	return l
}

// vnow converts the clock's wall reading into the engine's virtual timeline.
func (l *LiveEngine) vnow() time.Duration { return l.clk.Since(l.epoch) }

// Generate submits a request and blocks until completion or ctx cancellation.
func (l *LiveEngine) Generate(ctx context.Context, promptTok, outputTok int) Completion {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return Completion{Err: ErrClosed}
	}
	seq := l.eng.Submit(l.vnow(), promptTok, outputTok, nil)
	// Capture the ID while holding the lock: once the completion is
	// delivered the engine may recycle seq for a new request, so the
	// pointer must not be dereferenced after unlock.
	id := seq.ID
	ch := make(chan Completion, 1)
	l.waiters[id] = ch
	l.mu.Unlock()

	select {
	case l.wake <- struct{}{}:
	default:
	}

	select {
	case c := <-ch:
		return c
	case <-ctx.Done():
		l.mu.Lock()
		if l.eng.Abort(id) {
			delete(l.waiters, id)
		}
		l.mu.Unlock()
		return Completion{Err: ctx.Err()}
	}
}

// Depth reports waiting+running load for routing decisions.
//
//first:hotpath shares the Depth pin with Engine.Depth (engine_test.go)
func (l *LiveEngine) Depth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.eng.Depth()
}

// Stats returns a snapshot of the wrapped engine's stats.
func (l *LiveEngine) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.eng.Stats()
}

// IdleFor reports how long the engine has been without work.
func (l *LiveEngine) IdleFor() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.eng.Depth() > 0 {
		return 0
	}
	return l.vnow() - l.eng.LastBusyAt()
}

// Close stops the loop; pending requests complete with ErrClosed.
func (l *LiveEngine) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	pending := l.waiters
	l.waiters = make(map[int64]chan Completion)
	l.mu.Unlock()
	close(l.done)
	//firstlint:allow det every pending waiter gets the same ErrClosed on its own buffered channel; delivery order is unobservable
	for _, ch := range pending {
		ch <- Completion{Err: ErrClosed}
	}
}

func (l *LiveEngine) loop() {
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		// Step on the engine's own timeline (Submit fast-forwards it when
		// idle); wall-derived time never perturbs iteration pacing.
		res := l.eng.Step(l.eng.Now())
		target := l.eng.Now()
		l.mu.Unlock()

		if !res.Busy {
			select {
			case <-l.wake:
				continue
			case <-l.done:
				return
			}
		}

		// The iteration conceptually spans up to the engine's new virtual
		// time; sleep toward that absolute deadline so timer-granularity
		// error never accumulates (critical under heavy time dilation).
		if wait := target - l.vnow(); wait > 0 {
			l.clk.Sleep(wait)
		}

		if len(res.Completed) == 0 {
			continue
		}
		l.mu.Lock()
		type delivery struct {
			ch chan Completion
			c  Completion
		}
		deliveries := make([]delivery, 0, len(res.Completed))
		for _, seq := range res.Completed {
			ch, ok := l.waiters[seq.ID]
			if !ok {
				continue
			}
			delete(l.waiters, seq.ID)
			deliveries = append(deliveries, delivery{ch, Completion{
				PromptTok: seq.PromptTok,
				OutputTok: seq.Emitted,
				QueueWait: seq.QueueWait(),
				Latency:   seq.Latency(),
			}})
		}
		// Everything a waiter needs is copied into deliveries; the finished
		// sequences can go back to the engine's free list.
		l.eng.Release(res.Completed...)
		l.mu.Unlock()
		for _, d := range deliveries {
			d.ch <- d.c
		}
	}
}
