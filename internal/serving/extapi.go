package serving

import "time"

// ExtAPIModel parameterizes the external commercial API used as the Fig. 5
// comparator (OpenAI GPT-4o-mini): a low, mostly load-independent latency
// coupled with service-side rate and concurrency limiting. The DES harness
// drives it; the parameters are the observables the paper reports (2.0 s
// median latency, ~6.7 req/s sustained under the benchmark's burst).
type ExtAPIModel struct {
	// BaseLatency is the fixed service latency per request.
	BaseLatency time.Duration
	// PerTokenLatency adds output-length-dependent service time.
	PerTokenLatency time.Duration
	// MaxConcurrent caps simultaneous in-service requests (0 = unlimited).
	MaxConcurrent int
	// RatePerSec caps admission (service-side rate limiting; 0 = unlimited).
	RatePerSec float64
	// NetworkRTT models the WAN round trip.
	NetworkRTT time.Duration
	// OutputScale adjusts generated lengths relative to the reference
	// workload (GPT-4o-mini answered the same ShareGPT prompts more
	// verbosely than Llama: ≈179 vs ≈131 tokens/request in Fig. 5).
	OutputScale float64
}

// ScaledOutput applies OutputScale to a target output length.
func (m ExtAPIModel) ScaledOutput(outputTok int) int {
	if m.OutputScale <= 0 || m.OutputScale == 1 {
		return outputTok
	}
	scaled := int(float64(outputTok) * m.OutputScale)
	if scaled < 1 {
		scaled = 1
	}
	return scaled
}

// DefaultOpenAI returns the calibrated Fig. 5 comparator.
func DefaultOpenAI() ExtAPIModel {
	return ExtAPIModel{
		BaseLatency:     900 * time.Millisecond,
		PerTokenLatency: 5 * time.Millisecond, // ~179 tok ⇒ ≈0.9 s generation
		MaxConcurrent:   14,
		RatePerSec:      7.0,
		NetworkRTT:      120 * time.Millisecond,
		OutputScale:     1.35,
	}
}

// ServiceTime returns the in-service duration for a request with the given
// output length.
func (m ExtAPIModel) ServiceTime(outputTok int) time.Duration {
	if outputTok < 0 {
		outputTok = 0
	}
	return m.BaseLatency + time.Duration(outputTok)*m.PerTokenLatency + m.NetworkRTT
}

// AdmissionGap returns the minimum spacing between admitted requests under
// the rate limit (0 when unlimited).
func (m ExtAPIModel) AdmissionGap() time.Duration {
	if m.RatePerSec <= 0 {
		return 0
	}
	return time.Duration(float64(time.Second) / m.RatePerSec)
}
