package sim

import (
	"math"
	"math/rand"
)

// RNG wraps a seeded source with the distributions the workload and overhead
// models need. All experiment randomness flows through RNG so runs are
// reproducible from a single seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent stream (stable for a given label ordering).
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uniform returns a sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponential sample with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Normal returns a normal sample.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormal returns a sample whose logarithm is Normal(mu, sigma).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// LogNormalMeanCV returns a lognormal sample parameterized by its mean and
// coefficient of variation (stddev/mean), which is how the workload specs
// are written.
func (g *RNG) LogNormalMeanCV(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return g.LogNormal(mu, math.Sqrt(sigma2))
}

// Pareto returns a bounded Pareto sample with shape alpha and minimum xm.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return xm / math.Pow(1-u, 1/alpha)
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Shuffle permutes indices [0,n) in place through swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
