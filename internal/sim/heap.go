package sim

// The 4-ary min-heap: the whole event queue in QueueHeap mode (the reference
// implementation the differential determinism suite compares against) and
// the calendar queue's sorted overflow structure for far-future events. A
// 4-ary layout halves the tree depth of a binary heap and keeps parent and
// child slots on the same cache lines; events live by value in the backing
// array, which doubles as the free list.

// heapPush appends ev and restores the heap property.
//
//first:hotpath overflow push, reached through the Schedule pin
func (k *Kernel) heapPush(ev event) {
	k.heap = append(k.heap, ev)
	h := k.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !ev.before(&h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

// heapPop removes and returns the root event.
//
//first:hotpath overflow pop, reached through the Run pin
func (k *Kernel) heapPop() event {
	h := k.heap
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the closure
	k.heap = h[:n]
	if n > 0 {
		k.heapSiftDown(last)
	}
	return root
}

// heapSiftDown places ev (logically at the root) into its heap position.
func (k *Kernel) heapSiftDown(ev event) {
	h := k.heap
	n := len(h)
	i := 0
	for {
		c := i<<2 + 1 // first of up to four children
		if c >= n {
			break
		}
		// Select the smallest child.
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h[j].before(&h[min]) {
				min = j
			}
		}
		if !h[min].before(&ev) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = ev
}
