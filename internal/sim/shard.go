package sim

import (
	"fmt"
	"math"
	"time"
)

// ShardSet runs several kernels — shards — under conservative (CMB-style)
// windowed synchronization, the parallel-DES mode the federation scenarios
// use to put each cluster's event stream on its own queue.
//
// The contract (see also the "Parallel DES" section of doc.go):
//
//   - Every shard owns disjoint model state. Within a window, a shard's
//     events touch only that shard's state.
//   - Cross-shard effects travel exclusively through Send, which requires
//     delay ≥ lookahead. The lookahead is the model's minimum cross-shard
//     interaction latency; with it, every message sent from a window
//     [W, W+L) lands at ≥ W+L — never in any shard's past — so shards can
//     execute a whole window without hearing from each other.
//   - Each window executes all events with timestamp < W+L, where W is the
//     minimum next-event time across shards. At the window barrier the
//     per-pair mailboxes are drained in a fixed (destination, source, FIFO)
//     order, barrier hooks run, and the stop condition is evaluated.
//
// Determinism: a shard's execution within a window is single-threaded and
// depends only on its own queue, so each mailbox's contents and order are a
// pure function of the model and the window sequence — identical whether
// windows execute on one goroutine or eight, and under either queue kind.
// Mailbox drain assigns destination-kernel sequence numbers in the fixed
// barrier order, so same-instant deliveries tie-break identically too.
//
// Zero lookahead would force W+L = W: no shard could execute anything its
// peers might still affect, every event would need a barrier, and the
// structure degrades to the sequential kernel with extra bookkeeping —
// which is why the sequential kernel remains the Par=0 path rather than a
// lookahead-0 ShardSet. NewShardSet enforces lookahead ≥ MinLookahead.
type ShardSet struct {
	look    Time
	workers int
	shards  []*Kernel
	// mail[src*n+dst] is the (src → dst) mailbox: appended by src's
	// executor during a window (single writer), drained single-threaded at
	// the barrier. Backing arrays are recycled, so steady-state traffic
	// allocates nothing (see MailboxMicro / TestShardMailboxSteadyStateAllocs).
	mail [][]shardMsg
	now  Time

	hooks []func(Time)
	stop  func(Time) bool

	// Fork-join state for Workers > 1, rebuilt per Run.
	winEnd Time
	starts []chan struct{}
	dones  chan struct{}
	fails  []any
}

// shardMsg is one mailboxed cross-shard event.
type shardMsg struct {
	at Time
	fn func()
}

// MinLookahead is the smallest accepted lookahead. Below ~µs granularity a
// window holds at most a handful of events and barrier overhead dominates;
// 0 is rejected outright because a zero-lookahead ShardSet is just a slower
// sequential kernel (every event its own window).
const MinLookahead = time.Microsecond

// NewShardSet builds n shards of queue kind q under conservative windows of
// the given lookahead. workers is the executor goroutine count, clamped to
// [1, n]; 1 executes windows on the calling goroutine (the reference
// configuration the differential suite pins the others against).
func NewShardSet(q QueueKind, n int, lookahead Time, workers int) *ShardSet {
	if n < 1 {
		panic("sim: ShardSet needs at least one shard")
	}
	if lookahead < MinLookahead {
		panic(fmt.Sprintf("sim: ShardSet lookahead %v below minimum %v (zero lookahead degrades to the sequential kernel)", lookahead, MinLookahead))
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	s := &ShardSet{look: lookahead, workers: workers}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, NewKernelWith(q))
	}
	s.mail = make([][]shardMsg, n*n)
	return s
}

// Shard returns shard i's kernel. Before Run, callers may schedule setup
// events on it directly; during Run, only shard i's own events may touch it.
func (s *ShardSet) Shard(i int) *Kernel { return s.shards[i] }

// Shards reports the shard count.
func (s *ShardSet) Shards() int { return len(s.shards) }

// Lookahead reports the conservative window's lookahead.
func (s *ShardSet) Lookahead() Time { return s.look }

// Now returns the last barrier time (the virtual time every shard had
// reached when Run last synchronized, or stopped).
func (s *ShardSet) Now() Time { return s.now }

// OnBarrier registers a hook to run single-threaded at every window
// barrier, after mailboxes drain — the place to publish cross-shard state
// snapshots (e.g. the federation's routing snapshots). Hooks run in
// registration order and must not call Send.
func (s *ShardSet) OnBarrier(h func(now Time)) {
	s.hooks = append(s.hooks, h)
}

// StopWhen installs the run-termination condition, evaluated at every
// barrier after hooks. Run returns at the first barrier where it is true.
func (s *ShardSet) StopWhen(cond func(now Time) bool) {
	s.stop = cond
}

// Send schedules fn on shard dst at src's current time plus delay. Called
// from events executing on shard src (or during single-threaded setup).
// delay must be ≥ the lookahead — that bound is what lets shards run a
// whole window without synchronizing; a same-shard send is exempt (it is
// ordinary local scheduling, not a cross-shard interaction).
func (s *ShardSet) Send(src, dst int, delay Time, fn func()) {
	if fn == nil {
		return
	}
	if src == dst {
		s.shards[src].Schedule(delay, fn)
		return
	}
	if delay < s.look {
		panic(fmt.Sprintf("sim: cross-shard send delay %v below lookahead %v", delay, s.look))
	}
	i := src*len(s.shards) + dst
	s.mail[i] = append(s.mail[i], shardMsg{at: s.shards[src].now + delay, fn: fn})
}

// drainMail delivers every mailboxed message into its destination kernel.
// Single-threaded (barrier context); (dst, src, FIFO) order is the
// determinism contract — it fixes destination sequence numbers for
// same-instant deliveries regardless of worker count.
func (s *ShardSet) drainMail() {
	n := len(s.shards)
	for dst := 0; dst < n; dst++ {
		k := s.shards[dst]
		for src := 0; src < n; src++ {
			box := s.mail[src*n+dst]
			for i := range box {
				k.At(box[i].at, box[i].fn)
				box[i].fn = nil // release the closure; keep the backing array
			}
			s.mail[src*n+dst] = box[:0]
		}
	}
}

// nextEvent is the conservative bound's input: the minimum next-event time
// across shards (mailboxes are empty between windows).
func (s *ShardSet) nextEvent() (Time, bool) {
	var min Time = math.MaxInt64
	found := false
	for _, k := range s.shards {
		if t, ok := k.NextAt(); ok && (!found || t < min) {
			min, found = t, true
		}
	}
	return min, found
}

// Run executes windows until every shard drains, the stop condition fires
// at a barrier, or the next window would start past until (until <= 0 means
// run to exhaustion). It returns the barrier (or clamp) time at which the
// run ended. Window [W, E): each shard executes its events with timestamp
// < E via Kernel.Run(E-1) — Time is integer nanoseconds, so `at ≤ E-1` is
// exactly `at < E`.
func (s *ShardSet) Run(until Time) Time {
	w := s.workers
	if w > 1 {
		s.startWorkers(w)
		defer s.stopWorkers()
	}
	for {
		next, ok := s.nextEvent()
		if !ok {
			if until > 0 && s.now < until {
				s.now = until
			}
			return s.now
		}
		if until > 0 && next > until {
			s.now = until
			return s.now
		}
		end := next + s.look
		if end < next { // overflow clamp (far-future sentinel events)
			end = math.MaxInt64
		}
		if until > 0 && end > until+1 {
			end = until + 1 // execute at ≤ until, like Kernel.Run(until)
		}
		s.window(w, end)
		s.now = end - 1
		s.drainMail()
		for _, h := range s.hooks {
			h(s.now)
		}
		if s.stop != nil && s.stop(s.now) {
			return s.now
		}
	}
}

// window executes one window bound on all shards.
func (s *ShardSet) window(w int, end Time) {
	if w <= 1 {
		for _, k := range s.shards {
			k.Run(end - 1)
		}
		return
	}
	s.winEnd = end
	for j := 1; j < w; j++ {
		s.starts[j] <- struct{}{}
	}
	s.runWorker(0, w)
	for j := 1; j < w; j++ {
		<-s.dones
	}
	for _, f := range s.fails {
		if f != nil {
			panic(f)
		}
	}
}

// runWorker executes worker j's static shard subset (shards j, j+w, ...)
// for the current window, capturing a panic so the barrier can re-raise it
// on the coordinator after the fork-join completes (a MaxEvents budget trip
// inside a worker must surface like the sequential path's would).
func (s *ShardSet) runWorker(j, w int) {
	defer func() {
		if r := recover(); r != nil {
			s.fails[j] = r
		}
	}()
	end := s.winEnd
	for i := j; i < len(s.shards); i += w {
		s.shards[i].Run(end - 1)
	}
}

// startWorkers launches the window executors for one Run. Shards are
// statically assigned (shard i → worker i mod w): assignment affects only
// wall-clock, never results — shard state is disjoint within a window and
// all cross-shard traffic is barrier-ordered.
func (s *ShardSet) startWorkers(w int) {
	s.starts = make([]chan struct{}, w)
	s.dones = make(chan struct{}, w)
	s.fails = make([]any, w)
	for j := 1; j < w; j++ {
		s.starts[j] = make(chan struct{})
		//firstlint:allow det window executors synchronize exclusively at barriers; all event ordering is fixed by the conservative window contract, not goroutine interleaving
		go func(j int) {
			for range s.starts[j] {
				s.runWorker(j, w)
				s.dones <- struct{}{}
			}
		}(j)
	}
}

// stopWorkers releases the executors (they exit when their start channel
// closes; a worker mid-window has already posted its done before the next
// window could begin, so closure is race-free).
func (s *ShardSet) stopWorkers() {
	for j := 1; j < len(s.starts); j++ {
		close(s.starts[j])
	}
	s.starts = nil
}

// MailboxMicro returns the shard-mailbox round-trip operation for the
// substrate micro-benchmark record (BENCH_<n>.json "shard_mailbox"): one
// cross-shard Send, the barrier drain, and the destination shard consuming
// the delivery. Steady state allocates nothing — the mailbox's backing
// array and the destination kernel's event storage are recycled — and
// TestShardMailboxSteadyStateAllocs pins that with AllocsPerRun.
func MailboxMicro() func() {
	s := NewShardSet(QueueCalendar, 2, time.Millisecond, 1)
	fn := func() {}
	return func() {
		s.Send(0, 1, time.Millisecond, fn)
		s.drainMail()
		s.shards[1].Run(0)
	}
}
