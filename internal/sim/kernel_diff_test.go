package sim

import (
	"math"
	"testing"
	"time"
)

// recordingKernel drives k with a deterministic random schedule derived from
// seed and returns the full (time, id) execution order. The workload mixes
// the shapes the experiment suite produces: same-instant floods, near-uniform
// gaps, far-future events (overflow territory), nested scheduling from
// callbacks, and partial bounded runs with late inserts between them.
func recordingKernel(k *Kernel, seed int64) []struct {
	at Time
	id int
} {
	rng := NewRNG(seed)
	type stamp = struct {
		at Time
		id int
	}
	var fired []stamp
	id := 0
	record := func() func() {
		id++
		me := id
		return func() { fired = append(fired, stamp{k.Now(), me}) }
	}
	schedule := func() {
		switch rng.Intn(5) {
		case 0: // same-instant burst
			n := 1 + rng.Intn(8)
			at := time.Duration(rng.Intn(2000)) * time.Millisecond
			for i := 0; i < n; i++ {
				k.At(at, record())
			}
		case 1: // near-uniform short delay
			k.Schedule(time.Duration(rng.Intn(4000))*time.Microsecond, record())
		case 2: // far future (calendar overflow)
			k.Schedule(time.Duration(1+rng.Intn(3000))*time.Second, record())
		case 3: // zero delay (runs this instant, after the current batch)
			k.Schedule(0, record())
		default: // millisecond-scale
			k.Schedule(time.Duration(rng.Intn(500))*time.Millisecond, record())
		}
	}
	for i := 0; i < 300; i++ {
		schedule()
	}
	// Nested scheduling from inside callbacks.
	for i := 0; i < 50; i++ {
		k.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, func() {
			for j := 0; j < 4; j++ {
				schedule()
			}
		})
	}
	// Bounded runs with inserts in between: the cursor runs ahead to the
	// next pending event, then a later insert lands behind it.
	k.Run(200 * time.Millisecond)
	for i := 0; i < 100; i++ {
		schedule()
	}
	k.Run(900 * time.Millisecond)
	for i := 0; i < 100; i++ {
		schedule()
	}
	k.Run(0)
	return fired
}

// TestKernelCalendarMatchesHeapReference is the randomized differential
// property test: the calendar queue and the 4-ary heap reference must
// produce the exact same execution order (same events, same virtual times)
// for arbitrary schedules — the strict (time, seq) determinism contract.
func TestKernelCalendarMatchesHeapReference(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		cal := recordingKernel(NewKernelWith(QueueCalendar), seed)
		heap := recordingKernel(NewKernelWith(QueueHeap), seed)
		if len(cal) != len(heap) {
			t.Fatalf("seed %d: calendar fired %d events, heap %d", seed, len(cal), len(heap))
		}
		for i := range cal {
			if cal[i] != heap[i] {
				t.Fatalf("seed %d: execution diverges at event %d: calendar %+v, heap %+v",
					seed, i, cal[i], heap[i])
			}
		}
	}
}

// TestKernelStopBeforeRunHonored pins the fix for the silently-ignored
// pre-run Stop: a Stop issued before Run must make that Run return without
// executing anything, and be consumed so the next Run proceeds.
func TestKernelStopBeforeRunHonored(t *testing.T) {
	for _, q := range []QueueKind{QueueCalendar, QueueHeap} {
		k := NewKernelWith(q)
		var count int
		k.Schedule(time.Second, func() { count++ })
		k.Stop()
		if end := k.Run(0); end != 0 {
			t.Errorf("%v: stopped Run advanced time to %v", q, end)
		}
		if count != 0 {
			t.Errorf("%v: stopped Run executed %d events", q, count)
		}
		if k.Pending() != 1 {
			t.Errorf("%v: pending = %d after stopped Run, want 1", q, k.Pending())
		}
		// The Stop is consumed: the next Run executes normally.
		if end := k.Run(0); end != time.Second || count != 1 {
			t.Errorf("%v: resumed Run end=%v count=%d, want 1s/1", q, end, count)
		}
	}
}

// TestSecondsClampsNonFinite pins the NaN/-Inf fix: non-finite inputs clamp
// instead of converting to garbage times.
func TestSecondsClampsNonFinite(t *testing.T) {
	if got := Seconds(math.NaN()); got != 0 {
		t.Errorf("Seconds(NaN) = %v, want 0", got)
	}
	if got := Seconds(math.Inf(-1)); got != -math.MaxInt64/4 {
		t.Errorf("Seconds(-Inf) = %v, want most-negative clamp", got)
	}
	if got := Seconds(-2e12); got != -math.MaxInt64/4 {
		t.Errorf("Seconds(-2e12) = %v, want most-negative clamp", got)
	}
	if got := Seconds(math.Inf(1)); got != math.MaxInt64/4 {
		t.Errorf("Seconds(+Inf) = %v, want most-positive clamp", got)
	}
	// Finite values are untouched.
	if got := Seconds(-1.5); got != -1500*time.Millisecond {
		t.Errorf("Seconds(-1.5) = %v", got)
	}
}

// TestKernelResetRecyclesAcrossRuns checks the arena-reuse contract: a Reset
// kernel behaves exactly like a fresh one.
func TestKernelResetRecyclesAcrossRuns(t *testing.T) {
	for _, q := range []QueueKind{QueueCalendar, QueueHeap} {
		fresh := recordingKernel(NewKernelWith(q), 7)
		k := NewKernelWith(q)
		recordingKernel(k, 3) // dirty the kernel with a different run
		k.Schedule(time.Hour, func() {})
		k.Reset()
		if k.Now() != 0 || k.Pending() != 0 || k.Processed != 0 {
			t.Fatalf("%v: Reset left now=%v pending=%d processed=%d", q, k.Now(), k.Pending(), k.Processed)
		}
		reused := recordingKernel(k, 7)
		if len(fresh) != len(reused) {
			t.Fatalf("%v: reused kernel fired %d events, fresh %d", q, len(reused), len(fresh))
		}
		for i := range fresh {
			if fresh[i] != reused[i] {
				t.Fatalf("%v: reused kernel diverges from fresh at event %d", q, i)
			}
		}
	}
}

// TestKernelBatchedSameInstantDispatch checks the batch loop picks up events
// a callback schedules for the current instant, in sequence order, within the
// same dispatch.
func TestKernelBatchedSameInstantDispatch(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(time.Second, func() {
		order = append(order, 1)
		// Scheduled mid-batch for the same instant: must run after the
		// already-queued event 2, still at t=1s.
		k.Schedule(0, func() {
			order = append(order, 3)
			if k.Now() != time.Second {
				t.Errorf("zero-delay event ran at %v", k.Now())
			}
		})
	})
	k.Schedule(time.Second, func() { order = append(order, 2) })
	k.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

// TestKernelDeepQueueZeroAlloc pins the arena-reuse steady state at zero
// allocations: a Reset kernel replaying a deep near-uniform schedule (the
// fleet-cell recycling pattern) must reuse every bucket's backing array, the
// overflow heap, and the rehash scratch without growing any of them.
func TestKernelDeepQueueZeroAlloc(t *testing.T) {
	k := NewKernel()
	const depth = 512
	remaining := 0
	var fn func()
	fn = func() {
		remaining--
		if remaining > 0 {
			k.Schedule(depth*time.Microsecond, fn)
		}
	}
	cell := func(n int) {
		k.Reset()
		remaining = n
		for i := 0; i < depth && i < n; i++ {
			k.Schedule(time.Duration(i)*time.Microsecond, fn)
		}
		k.Run(0)
	}
	cell(8 * depth) // grow buckets, overflow heap, and scratch to steady state
	allocs := testing.AllocsPerRun(10, func() { cell(8 * depth) })
	if allocs != 0 {
		t.Errorf("steady-state deep-queue allocs per run = %v, want 0", allocs)
	}
}
