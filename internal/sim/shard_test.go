package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestNextAtMatchesRun drives both queue kinds through a randomized schedule,
// asserting that NextAt's peek always names the timestamp of the next
// dispatched event and that peeking never perturbs dispatch order.
func TestNextAtMatchesRun(t *testing.T) {
	for _, q := range []QueueKind{QueueCalendar, QueueHeap} {
		t.Run(q.String(), func(t *testing.T) {
			k := NewKernelWith(q)
			rng := NewRNG(41)
			var fired []Time
			// Mixed near/far schedule: the far tail exercises the calendar's
			// overflow heap and its pull-in during the peek.
			for i := 0; i < 500; i++ {
				d := time.Duration(rng.Intn(int(10 * time.Millisecond)))
				if i%7 == 0 {
					d = time.Duration(rng.Intn(int(time.Hour)))
				}
				k.Schedule(d, func() { fired = append(fired, k.Now()) })
			}
			for {
				at, ok := k.NextAt()
				if !ok {
					break
				}
				if at2, ok2 := k.NextAt(); !ok2 || at2 != at {
					t.Fatalf("repeated NextAt disagrees: %v vs %v", at, at2)
				}
				n := len(fired)
				k.Run(at) // executes exactly the batch at `at`
				if len(fired) == n {
					t.Fatalf("NextAt=%v but Run(%v) dispatched nothing", at, at)
				}
				for _, ft := range fired[n:] {
					if ft != at {
						t.Fatalf("NextAt=%v but event fired at %v", at, ft)
					}
				}
			}
			if len(fired) != 500 {
				t.Fatalf("dispatched %d of 500 events", len(fired))
			}
		})
	}
}

func TestNextAtEmptyAndSingle(t *testing.T) {
	for _, q := range []QueueKind{QueueCalendar, QueueHeap} {
		k := NewKernelWith(q)
		if _, ok := k.NextAt(); ok {
			t.Fatalf("%v: NextAt on empty kernel reported an event", q)
		}
		k.Schedule(3*time.Second, func() {})
		if at, ok := k.NextAt(); !ok || at != 3*time.Second {
			t.Fatalf("%v: NextAt = %v,%v; want 3s,true", q, at, ok)
		}
		k.Run(0)
		if _, ok := k.NextAt(); ok {
			t.Fatalf("%v: NextAt after drain reported an event", q)
		}
	}
}

// shardTrace runs a deterministic multi-shard toy model — a ring of shards
// passing tokens with cross-shard latency ≥ lookahead plus local busywork —
// and returns a trace of every event execution. The trace must be identical
// across worker counts and queue kinds.
func shardTrace(q QueueKind, shards, workers int, look Time, seed int64) string {
	s := NewShardSet(q, shards, look, workers)
	// One builder per shard: execution interleaving ACROSS shards within a
	// window is worker-dependent by design; the contract is that each
	// shard's own event sequence (and therefore the per-shard traces, read
	// at the end single-threaded) is identical.
	logs := make([]strings.Builder, shards)
	rngs := make([]*RNG, shards)
	var step func(shard, token, hops int)
	step = func(shard, token, hops int) {
		k := s.Shard(shard)
		fmt.Fprintf(&logs[shard], "s%d t%d h%d @%d\n", shard, token, hops, k.Now())
		if hops >= 12 {
			return
		}
		// Local busywork: a few same-shard events at sub-lookahead delays.
		local := time.Duration(rngs[shard].Intn(int(look)))
		k.Schedule(local, func() {
			fmt.Fprintf(&logs[shard], "s%d t%d local @%d\n", shard, token, k.Now())
		})
		dst := (shard + 1 + rngs[shard].Intn(shards-1)) % shards
		delay := look + time.Duration(rngs[shard].Intn(int(look)))
		s.Send(shard, dst, delay, func() { step(dst, token, hops+1) })
	}
	for i := 0; i < shards; i++ {
		rngs[i] = NewRNG(seed + int64(i))
		tok := i
		s.Shard(i).Schedule(time.Duration(i)*time.Millisecond, func() { step(tok, tok, 0) })
	}
	s.Run(0)
	var sb strings.Builder
	for i := range logs {
		sb.WriteString(logs[i].String())
	}
	fmt.Fprintf(&sb, "end @%d\n", s.Now())
	return sb.String()
}

// TestShardSetDeterministicAcrossWorkers is the sim-layer half of the
// differential contract: the same model must produce byte-identical traces
// at every worker count and under both queue kinds.
func TestShardSetDeterministicAcrossWorkers(t *testing.T) {
	for _, shards := range []int{2, 3, 5, 8} {
		ref := shardTrace(QueueCalendar, shards, 1, 2*time.Millisecond, 7)
		for _, q := range []QueueKind{QueueCalendar, QueueHeap} {
			for _, w := range []int{1, 2, 8} {
				got := shardTrace(q, shards, w, 2*time.Millisecond, 7)
				if got != ref {
					t.Fatalf("shards=%d %v workers=%d diverged from calendar/1 reference:\nref:\n%s\ngot:\n%s",
						shards, q, w, ref, got)
				}
			}
		}
	}
}

// TestShardSetWindowBound asserts the conservative contract directly: no
// shard executes an event at or past W+L before the barrier at W+L-1, and
// cross-shard deliveries are never scheduled into a shard's past.
func TestShardSetWindowBound(t *testing.T) {
	look := 5 * time.Millisecond
	s := NewShardSet(QueueCalendar, 3, look, 1)
	var barriers []Time
	s.OnBarrier(func(now Time) { barriers = append(barriers, now) })
	delivered := 0
	s.Shard(0).Schedule(time.Millisecond, func() {
		s.Send(0, 1, look, func() {
			k := s.Shard(1)
			if k.Now() != time.Millisecond+look {
				t.Errorf("delivery at %v, want %v", k.Now(), time.Millisecond+look)
			}
			delivered++
		})
	})
	s.Run(0)
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if len(barriers) < 2 {
		t.Fatalf("expected ≥2 window barriers, got %v", barriers)
	}
	// First window starts at W=1ms: barrier at W+L-1.
	if barriers[0] != time.Millisecond+look-1 {
		t.Errorf("first barrier at %v, want %v", barriers[0], time.Millisecond+look-1)
	}
}

func TestShardSetRunUntilClamp(t *testing.T) {
	s := NewShardSet(QueueCalendar, 2, time.Millisecond, 1)
	fired := 0
	s.Shard(0).Schedule(10*time.Second, func() { fired++ })
	if end := s.Run(time.Second); end != time.Second {
		t.Fatalf("end = %v, want 1s", end)
	}
	if fired != 0 {
		t.Fatal("event past until executed")
	}
	if end := s.Run(0); end < 10*time.Second {
		t.Fatalf("resumed end = %v, want ≥10s", end)
	}
	if fired != 1 {
		t.Fatal("event lost across bounded runs")
	}
}

func TestShardSetStopWhen(t *testing.T) {
	s := NewShardSet(QueueCalendar, 2, time.Millisecond, 1)
	count := 0
	var tick func()
	tick = func() {
		count++
		s.Shard(0).Schedule(time.Millisecond, tick)
	}
	s.Shard(0).Schedule(time.Millisecond, tick)
	s.StopWhen(func(Time) bool { return count >= 5 })
	s.Run(0)
	if count != 5 {
		t.Fatalf("stopped at count=%d, want 5", count)
	}
}

func TestShardSetSendBelowLookaheadPanics(t *testing.T) {
	s := NewShardSet(QueueCalendar, 2, time.Millisecond, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-shard send below lookahead did not panic")
		}
	}()
	s.Send(0, 1, time.Microsecond, func() {})
}

func TestShardSetLookaheadFloor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sub-minimum lookahead did not panic")
		}
	}()
	NewShardSet(QueueCalendar, 2, 0, 1)
}

// TestShardSetWorkerPanicPropagates pins that a panic inside a worker
// goroutine (e.g. a MaxEvents budget trip) surfaces on the coordinator after
// the fork-join, exactly like the sequential path's would.
func TestShardSetWorkerPanicPropagates(t *testing.T) {
	s := NewShardSet(QueueCalendar, 4, time.Millisecond, 4)
	for i := 0; i < 4; i++ {
		i := i
		s.Shard(i).Schedule(time.Millisecond, func() {
			if i == 3 {
				panic("shard 3 boom")
			}
		})
	}
	defer func() {
		if r := recover(); r != "shard 3 boom" {
			t.Fatalf("recovered %v, want shard 3 boom", r)
		}
	}()
	s.Run(0)
}

// TestShardMailboxSteadyStateAllocs pins the shard-mailbox round-trip
// (BENCH "shard_mailbox" micro) at zero steady-state allocations: the
// mailbox backing array and the destination kernel's event storage recycle.
func TestShardMailboxSteadyStateAllocs(t *testing.T) {
	op := MailboxMicro()
	for i := 0; i < 64; i++ {
		op() // warm the mailbox and destination-kernel capacity
	}
	if allocs := testing.AllocsPerRun(200, op); allocs != 0 {
		t.Fatalf("shard mailbox round-trip allocates %v/op at steady state, want 0", allocs)
	}
}
