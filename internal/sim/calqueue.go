package sim

import (
	"math/bits"
	"slices"
)

// Calendar-queue tuning. The queue self-sizes from the observed schedule, so
// these only set the starting point and the re-tune triggers.
const (
	// calMinBuckets is the smallest ring; power of two so slot→bucket is a
	// mask.
	calMinBuckets = 64
	// calInitShift is the initial log2 bucket width (4096 ns) until the
	// first re-tune measures the real schedule.
	calInitShift = 12
	// calMaxShift caps the bucket width so slot arithmetic stays exact.
	calMaxShift = 55
	// calCrowdLen is the bucket occupancy past which an insert attempts a
	// width narrowing (attempted only at power-of-two occupancies, so a
	// same-instant flood costs O(n log n) re-tune attempts total, not one
	// per insert).
	calCrowdLen = 16
	// calMaxScan bounds empty slots scanned per pop before re-tuning the
	// width and jumping the cursor to the earliest event.
	calMaxScan = 256
	// calShiftMax bounds the in-place ordered-insert shift; deeper
	// displacements defer to the scan's lazy bucket sort instead of moving
	// (and write-barriering) long runs of events on every insert.
	calShiftMax = 8
)

// calBucket is one slot-width of the ring. Events are popped off the front
// by advancing head; the slice resets to [:0] when drained, so its backing
// array is recycled by later inserts (no per-event allocation at steady
// state).
//
// Ordering is hybrid: appends that land in (time, seq) order — the common
// case, since sequence numbers only grow and near-uniform delays arrive in
// time order — cost nothing; small displacements shift in place (bounded by
// calShiftMax); anything deeper marks the bucket dirty and the scan sorts
// the live region once when the cursor reaches the bucket.
type calBucket struct {
	ev    []event // from head: sorted by (time, seq) unless dirty
	head  int
	dirty bool
}

// sort restores (time, seq) order over the live region.
func (b *calBucket) sort() {
	slices.SortFunc(b.ev[b.head:], func(x, y event) int {
		if x.at != y.at {
			if x.at < y.at {
				return -1
			}
			return 1
		}
		if x.seq < y.seq {
			return -1
		}
		return 1
	})
	b.dirty = false
}

// placeAppended restores order after an out-of-order append at index i,
// shifting at most calShiftMax predecessors; on deeper displacement it
// leaves the event at the tail and marks the bucket dirty for the scan's
// lazy sort.
func (b *calBucket) placeAppended(i int) {
	ev := b.ev[i]
	lo := i - calShiftMax
	if lo < b.head {
		lo = b.head
	}
	j := i
	for j > lo && ev.before(&b.ev[j-1]) {
		j--
	}
	if j == lo && j > b.head && ev.before(&b.ev[j-1]) {
		b.dirty = true
		return
	}
	copy(b.ev[j+1:i+1], b.ev[j:i])
	b.ev[j] = ev
}

// calQueue is the bucketed ring. Far-future events (one full ring rotation
// or more ahead of the cursor) live in the owning Kernel's 4-ary heap and
// migrate in as the cursor approaches their slot.
//
// The `one` slot short-circuits the empty queue: an insert into a fully
// empty queue parks there and Run dispatches it without touching the ring —
// the ping-pong regime (one pending event, endemic in driver loops and the
// depth-1 micro-benchmark) never pays for bucket indexing. A second insert
// demotes the parked event into the ring and normal operation resumes, so
// hasOne always implies ring and overflow are empty.
type calQueue struct {
	buckets []calBucket
	shift   uint   // log2 bucket width in nanoseconds
	cur     uint64 // absolute slot index of the scan cursor
	n       int    // events resident in buckets
	one     event  // single-event fast slot
	hasOne  bool
	scratch []event
}

// slotOf maps a virtual time to its absolute slot index. Event times are
// never negative (delays clamp at zero), so the uint64 conversion is exact.
func (c *calQueue) slotOf(at Time) uint64 { return uint64(at) >> c.shift }

// reset drops all events, releasing their closures, but keeps the ring and
// every bucket's backing array for reuse.
func (c *calQueue) reset() {
	for i := range c.buckets {
		b := &c.buckets[i]
		for j := b.head; j < len(b.ev); j++ {
			b.ev[j] = event{}
		}
		b.ev = b.ev[:0]
		b.head = 0
		b.dirty = false
	}
	c.cur = 0
	c.n = 0
	c.one = event{}
	c.hasOne = false
}

// bucketInsert places ev into its slot's bucket. Used off the hot path
// (overflow migration, rehash); calInsert inlines the same logic for
// Schedule.
func (c *calQueue) bucketInsert(ev event) {
	b := &c.buckets[int(c.slotOf(ev.at))&(len(c.buckets)-1)]
	n := len(b.ev)
	b.ev = append(b.ev, ev)
	if n > b.head && !b.dirty && ev.before(&b.ev[n-1]) {
		b.placeAppended(n)
	}
	c.n++
}

// calInsert parks the event in the fast slot when the queue is empty,
// otherwise routes it (and any parked event) into the ring.
func (k *Kernel) calInsert(ev event) {
	c := &k.cal
	if c.hasOne {
		c.hasOne = false
		one := c.one
		c.one.fn = nil
		k.calInsertRing(one)
	} else if c.n == 0 && len(k.heap) == 0 {
		c.one = ev
		c.hasOne = true
		return
	}
	k.calInsertRing(ev)
}

// calInsertRing routes a new event to the ring or the overflow heap and
// triggers re-tunes when the structure drifts from the schedule it serves.
func (k *Kernel) calInsertRing(ev event) {
	c := &k.cal
	if c.buckets == nil {
		c.buckets = make([]calBucket, calMinBuckets)
		c.shift = calInitShift
	}
	s := c.slotOf(ev.at)
	if s < c.cur || c.n == 0 && len(k.heap) == 0 {
		// Empty queue: jump the cursor over the idle gap. Or an
		// earlier-than-cursor event (the cursor ran ahead during a bounded
		// Run): back the cursor up so the scan revisits its slot — buckets
		// it passes may briefly hold events of a later ring rotation, which
		// the scan's slot check skips.
		c.cur = s
	}
	if s >= c.cur+uint64(len(c.buckets)) {
		k.heapPush(ev) // far future: a full ring rotation away or more
	} else {
		b := &c.buckets[int(s)&(len(c.buckets)-1)]
		n := len(b.ev)
		b.ev = append(b.ev, ev)
		c.n++
		if n > b.head && !b.dirty && ev.before(&b.ev[n-1]) {
			b.placeAppended(n)
		}
		if occ := n + 1 - b.head; occ > calCrowdLen && occ&(occ-1) == 0 {
			k.calNarrow(b) // crowding: the local density outruns the width
			return
		}
	}
	if c.n+len(k.heap) > 2*len(c.buckets) {
		k.calRehash(rehashGrow, 0) // occupancy doubled: grow the ring
	}
}

// calNarrow re-tunes the width to a crowded bucket's local event density —
// the ladder-queue move for skewed schedules, where a dense near-future
// cluster and a sparse far tail make the global mean gap meaningless. The
// cluster spreads over fine buckets; far events spill to the overflow heap,
// which is what it is for.
func (k *Kernel) calNarrow(b *calBucket) {
	c := &k.cal
	live := b.ev[b.head:]
	lo, hi := live[0].at, live[0].at
	for i := 1; i < len(live); i++ {
		if live[i].at < lo {
			lo = live[i].at
		}
		if live[i].at > hi {
			hi = live[i].at
		}
	}
	if hi == lo {
		return // same-instant flood: no width separates it, batching eats it
	}
	w := uint64(hi-lo) / uint64(len(live)) * 2
	shift := uint(bits.Len64(w))
	if shift >= c.shift {
		return
	}
	k.calRehash(rehashNarrow, shift)
}

// calFindNext is NextAt's calendar-mode peek: the same find phase runCal
// runs — cursor advance over empty slots, overflow migration into the ring
// window, lazy bucket sorts, and the calMaxScan re-tune — stopping at the
// earliest event instead of dispatching it. Every structural mutation it
// performs is one Run would perform anyway, and none reorders events.
func (k *Kernel) calFindNext() (Time, bool) {
	c := &k.cal
	if c.hasOne {
		return c.one.at, true
	}
	if c.n == 0 && len(k.heap) == 0 {
		return 0, false
	}
	scanned := 0
	for {
		if c.n == 0 {
			c.cur = c.slotOf(k.heap[0].at) // ring empty: jump to the overflow's min
		}
		if len(k.heap) > 0 {
			limit := c.cur + uint64(len(c.buckets))
			for len(k.heap) > 0 && c.slotOf(k.heap[0].at) < limit {
				c.bucketInsert(k.heapPop())
			}
		}
		b := &c.buckets[int(c.cur)&(len(c.buckets)-1)]
		if b.dirty {
			b.sort()
		}
		if b.head < len(b.ev) && c.slotOf(b.ev[b.head].at) == c.cur {
			return b.ev[b.head].at, true
		}
		c.cur++
		if scanned++; scanned >= calMaxScan {
			k.calRehash(rehashWiden, 0)
			scanned = 0
		}
	}
}

// rehashMode says how calRehash may move the bucket width.
type rehashMode int

const (
	// rehashGrow re-tunes the width freely from the global time span (the
	// population just doubled; re-measure everything).
	rehashGrow rehashMode = iota
	// rehashWiden only widens (the scan crossed too many empty slots:
	// events are sparser than the width assumes).
	rehashWiden
	// rehashNarrow applies the caller's precomputed narrower shift.
	rehashNarrow
)

// calRehash rebuilds the ring: bucket count sized to the population, width
// per mode, cursor on the earliest event. O(n + buckets); triggered only
// when the structure has drifted, so the cost amortizes over the inserts
// and scans that caused it.
func (k *Kernel) calRehash(mode rehashMode, forcedShift uint) {
	c := &k.cal
	total := c.n + len(k.heap)
	if total == 0 {
		return
	}
	sc := c.scratch[:0]
	for i := range c.buckets {
		b := &c.buckets[i]
		sc = append(sc, b.ev[b.head:]...)
		for j := range b.ev {
			b.ev[j] = event{}
		}
		b.ev = b.ev[:0]
		b.head = 0
		b.dirty = false
	}
	sc = append(sc, k.heap...)
	for i := range k.heap {
		k.heap[i] = event{}
	}
	k.heap = k.heap[:0]

	minAt, maxAt := sc[0].at, sc[0].at
	for i := 1; i < len(sc); i++ {
		if sc[i].at < minAt {
			minAt = sc[i].at
		}
		if sc[i].at > maxAt {
			maxAt = sc[i].at
		}
	}
	// The ring only grows (high-water semantics, like the heap's backing
	// array): shrinking would discard every bucket's warmed backing array
	// and break the steady-state zero-allocation pin; a sparse wide ring
	// costs nothing once the cursor jump below lands on the earliest event.
	if nb := 1 << bits.Len(uint(total-1)); nb > len(c.buckets) {
		c.buckets = make([]calBucket, nb)
	}
	switch mode {
	case rehashNarrow:
		c.shift = forcedShift
	default:
		if span := maxAt - minAt; span > 0 {
			// Width = the power of two nearest 2× the mean event gap;
			// span == 0 (a same-instant flood) keeps the current width.
			w := uint64(span) / uint64(total) * 2
			shift := uint(bits.Len64(w))
			if shift > calMaxShift {
				shift = calMaxShift
			}
			if mode == rehashGrow || shift > c.shift {
				c.shift = shift
			}
		}
	}
	c.cur = c.slotOf(minAt)
	c.n = 0
	limit := c.cur + uint64(len(c.buckets))
	for _, ev := range sc {
		if c.slotOf(ev.at) >= limit {
			k.heapPush(ev)
		} else {
			c.bucketInsert(ev)
		}
	}
	for i := range sc {
		sc[i] = event{} // release closure references from the copy
	}
	c.scratch = sc[:0]
}
