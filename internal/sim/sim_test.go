package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestKernelOrdersEventsByTime(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(3*time.Second, func() { order = append(order, 3) })
	k.Schedule(1*time.Second, func() { order = append(order, 1) })
	k.Schedule(2*time.Second, func() { order = append(order, 2) })
	end := k.Run(0)
	if end != 3*time.Second {
		t.Errorf("end = %v, want 3s", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestKernelSameInstantFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(time.Second, func() { order = append(order, i) })
	}
	k.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.Schedule(time.Second, func() {
		k.Schedule(2*time.Second, func() { fired = append(fired, k.Now()) })
	})
	k.Run(0)
	if len(fired) != 1 || fired[0] != 3*time.Second {
		t.Errorf("nested event at %v, want 3s", fired)
	}
}

func TestKernelRunUntilStopsAndResumes(t *testing.T) {
	k := NewKernel()
	var count int
	for i := 1; i <= 5; i++ {
		k.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	k.Run(2500 * time.Millisecond)
	if count != 2 {
		t.Fatalf("count after Run(2.5s) = %d, want 2", count)
	}
	if k.Now() != 2500*time.Millisecond {
		t.Fatalf("Now = %v, want 2.5s", k.Now())
	}
	k.Run(0)
	if count != 5 {
		t.Fatalf("count after full run = %d, want 5", count)
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel()
	var count int
	for i := 1; i <= 5; i++ {
		k.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if count == 2 {
				k.Stop()
			}
		})
	}
	k.Run(0)
	if count != 2 {
		t.Errorf("count = %d, want 2 (stopped)", count)
	}
	if k.Pending() != 3 {
		t.Errorf("pending = %d, want 3", k.Pending())
	}
}

func TestKernelNegativeDelayClamped(t *testing.T) {
	k := NewKernel()
	k.Schedule(time.Second, func() {
		k.Schedule(-5*time.Second, func() {
			if k.Now() != time.Second {
				t.Errorf("negative delay ran at %v, want 1s", k.Now())
			}
		})
	})
	k.Run(0)
}

func TestKernelNilFuncIgnored(t *testing.T) {
	k := NewKernel()
	k.Schedule(time.Second, nil)
	if k.Pending() != 0 {
		t.Error("nil event should not be queued")
	}
}

func TestKernelAtAbsolute(t *testing.T) {
	k := NewKernel()
	var at Time
	k.Schedule(time.Second, func() {
		k.At(5*time.Second, func() { at = k.Now() })
	})
	k.Run(0)
	if at != 5*time.Second {
		t.Errorf("At fired at %v, want 5s", at)
	}
}

func TestKernelEventBudgetPanics(t *testing.T) {
	k := NewKernel()
	k.MaxEvents = 10
	var loop func()
	loop = func() { k.Schedule(time.Second, loop) }
	k.Schedule(time.Second, loop)
	defer func() {
		if recover() == nil {
			t.Error("expected event-budget panic")
		}
	}()
	k.Run(0)
}

func TestSecondsConversions(t *testing.T) {
	if Seconds(1.5) != 1500*time.Millisecond {
		t.Errorf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if Sec(2500*time.Millisecond) != 2.5 {
		t.Errorf("Sec = %v", Sec(2500*time.Millisecond))
	}
	if Seconds(math.Inf(1)) <= 0 {
		t.Error("Seconds(+inf) should be a large positive time")
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(1)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += g.Exp(3.0)
	}
	mean := sum / n
	if mean < 2.8 || mean > 3.2 {
		t.Errorf("Exp mean = %.3f, want ≈3.0", mean)
	}
	if g.Exp(0) != 0 || g.Exp(-1) != 0 {
		t.Error("Exp with non-positive mean should be 0")
	}
}

func TestRNGLogNormalMeanCV(t *testing.T) {
	g := NewRNG(7)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := g.LogNormalMeanCV(100, 0.5)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	cv := math.Sqrt(variance) / mean
	if mean < 95 || mean > 105 {
		t.Errorf("mean = %.2f, want ≈100", mean)
	}
	if cv < 0.45 || cv > 0.55 {
		t.Errorf("cv = %.3f, want ≈0.5", cv)
	}
	if g.LogNormalMeanCV(100, 0) != 100 {
		t.Error("cv=0 should return the mean exactly")
	}
	if g.LogNormalMeanCV(0, 1) != 0 {
		t.Error("mean<=0 should return 0")
	}
}

func TestRNGParetoBounds(t *testing.T) {
	g := NewRNG(9)
	err := quick.Check(func(u uint8) bool {
		xm := 1.0 + float64(u%50)
		return g.Pareto(xm, 1.5) >= xm
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestRNGUniformRange(t *testing.T) {
	g := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(5, 10)
		if v < 5 || v >= 10 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestRNGBernoulliProbability(t *testing.T) {
	g := NewRNG(13)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if p < 0.22 || p > 0.28 {
		t.Errorf("Bernoulli(0.25) hit rate %.3f", p)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	g := NewRNG(17)
	f := g.Fork()
	// The fork must not replay the parent's stream.
	gVals := []float64{g.Float64(), g.Float64(), g.Float64()}
	fVals := []float64{f.Float64(), f.Float64(), f.Float64()}
	same := 0
	for i := range gVals {
		if gVals[i] == fVals[i] {
			same++
		}
	}
	if same == len(gVals) {
		t.Error("fork replayed parent stream")
	}
}

// TestKernelHeapStressVsReference drives the 4-ary heap with random delays
// and checks full (time, seq) ordering against a sorted reference.
func TestKernelHeapStressVsReference(t *testing.T) {
	rng := NewRNG(12345)
	k := NewKernel()
	type stamp struct {
		at  Time
		seq int
	}
	var fired []stamp
	const n = 5000
	for i := 0; i < n; i++ {
		i := i
		d := time.Duration(rng.Intn(1000)) * time.Millisecond
		k.Schedule(d, func() { fired = append(fired, stamp{k.Now(), i}) })
	}
	// Nested scheduling from inside events exercises mid-run pushes.
	k.Schedule(500*time.Millisecond, func() {
		for j := 0; j < 100; j++ {
			j := j
			k.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, func() {
				fired = append(fired, stamp{k.Now(), n + 1 + j})
			})
		}
	})
	k.Run(0)
	if len(fired) != n+100 {
		t.Fatalf("fired %d events, want %d", len(fired), n+100)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i].at < fired[i-1].at {
			t.Fatalf("event %d fired at %v after %v", i, fired[i].at, fired[i-1].at)
		}
	}
	// Same-instant events must preserve schedule (FIFO) order for the
	// initial batch, where schedule order equals loop order.
	byTime := map[Time][]int{}
	for _, f := range fired {
		if f.seq < n {
			byTime[f.at] = append(byTime[f.at], f.seq)
		}
	}
	for at, seqs := range byTime {
		if !sort.IntsAreSorted(seqs) {
			t.Fatalf("same-instant batch at %v not FIFO: %v", at, seqs)
		}
	}
	if k.Pending() != 0 {
		t.Errorf("pending = %d after exhaustion", k.Pending())
	}
}

// TestKernelScheduleRunZeroAlloc pins the steady-state Schedule/Run loop at
// zero allocations per event (the BenchmarkKernelEvents regression).
func TestKernelScheduleRunZeroAlloc(t *testing.T) {
	k := NewKernel()
	var fn func()
	remaining := 0
	fn = func() {
		remaining--
		if remaining > 0 {
			k.Schedule(time.Microsecond, fn)
		}
	}
	// Warm the heap's backing array.
	remaining = 1000
	k.Schedule(time.Microsecond, fn)
	k.Run(0)

	allocs := testing.AllocsPerRun(10, func() {
		remaining = 1000
		k.Schedule(time.Microsecond, fn)
		k.Run(0)
	})
	if allocs != 0 {
		t.Errorf("steady-state Schedule/Run allocs per 1000-event run = %v, want 0", allocs)
	}
}
