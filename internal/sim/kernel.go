// Package sim provides a deterministic discrete-event simulation kernel used
// to regenerate the paper's evaluation on virtual time: events are ordered by
// (time, sequence number) so identical seeds always produce identical runs.
//
// The default event queue is a calendar queue (Brown 1988): a power-of-two
// ring of time buckets, each holding the events of exactly one bucket-width
// slot of virtual time, sorted by (time, seq). For the near-uniform schedules
// the figure runs produce, Schedule and the next-event scan are O(1)
// amortized — versus O(log n) per event for a heap — and the bucket width
// and bucket count resize themselves from the observed event-time span.
// Far-future events (beyond one full ring rotation) fall back to a sorted
// overflow structure, a 4-ary min-heap, and migrate into the ring as the
// scan cursor approaches their slot. The same heap doubles as the reference
// kernel (QueueHeap) for the differential determinism suite.
//
// Events live by value inside bucket slices and the heap's backing array, so
// Schedule performs no per-event allocation and no interface boxing; popped
// slots are recycled by later pushes, which keeps the Schedule/Run loop
// allocation-free at steady state (see BenchmarkKernelEvents).
//
// Run dispatches same-instant events as one batch: once the scan cursor
// lands on a bucket, every queued event carrying the same timestamp is
// executed from that bucket position without re-scanning the ring between
// callbacks — the saturated open-loop runs (all arrivals at t=0) hit this
// path hardest.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is virtual simulation time measured from the start of the run.
type Time = time.Duration

// event is a scheduled callback, stored by value inside the kernel's queue.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// before orders events by (time, schedule order).
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// QueueKind selects the kernel's event-queue implementation.
type QueueKind int

const (
	// QueueCalendar is the default: O(1) amortized calendar queue with a
	// heap overflow for far-future events.
	QueueCalendar QueueKind = iota
	// QueueHeap is the 4-ary min-heap reference implementation, kept for
	// the differential determinism suite (both kinds must produce
	// byte-identical runs).
	QueueHeap
)

func (q QueueKind) String() string {
	if q == QueueHeap {
		return "heap"
	}
	return "calendar"
}

// Kernel is a single-threaded discrete-event scheduler.
type Kernel struct {
	now     Time
	seq     uint64
	stopped bool

	// Processed counts executed events (for diagnostics and loop guards).
	Processed uint64
	// MaxEvents aborts the run if exceeded (guards against runaway models);
	// zero means no limit.
	MaxEvents uint64

	useHeap bool

	// heap is the 4-ary min-heap: the whole queue in QueueHeap mode, the
	// far-future overflow in calendar mode.
	heap []event

	cal calQueue
}

// NewKernel returns an empty calendar-queue kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// NewKernelWith returns an empty kernel using the given queue kind.
func NewKernelWith(q QueueKind) *Kernel {
	return &Kernel{useHeap: q == QueueHeap}
}

// Queue reports the kernel's queue kind.
func (k *Kernel) Queue() QueueKind {
	if k.useHeap {
		return QueueHeap
	}
	return QueueCalendar
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Schedule runs fn after delay. Negative delays are clamped to zero (the
// event still sorts after already-scheduled events at the same instant).
//
//first:hotpath pinned by TestKernelSteadyStateAllocs (sim_test.go)
func (k *Kernel) Schedule(delay time.Duration, fn func()) {
	if fn == nil {
		return
	}
	if delay < 0 {
		delay = 0
	}
	k.seq++
	ev := event{at: k.now + delay, seq: k.seq, fn: fn}
	if k.useHeap {
		k.heapPush(ev)
		return
	}
	k.calInsert(ev)
}

// At runs fn at absolute virtual time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) {
	k.Schedule(t-k.now, fn)
}

// Stop halts the run loop after the current event returns. A Stop issued
// while no run is active makes the next Run return immediately without
// executing anything; the flag is consumed by the Run it halts (or skips).
func (k *Kernel) Stop() { k.stopped = true }

// Pending reports the number of queued events.
func (k *Kernel) Pending() int {
	n := k.cal.n + len(k.heap)
	if k.cal.hasOne {
		n++
	}
	return n
}

// Reset returns the kernel to its initial state (time zero, no events) while
// keeping the queue kind and the allocated bucket/heap capacity, so fleet
// arenas can recycle one kernel across experiment cells. Queued closures are
// released. MaxEvents is preserved (it is configuration, not run state).
func (k *Kernel) Reset() {
	k.now = 0
	k.seq = 0
	k.stopped = false
	k.Processed = 0
	for i := range k.heap {
		k.heap[i] = event{}
	}
	k.heap = k.heap[:0]
	k.cal.reset()
}

// Run executes events until the queue empties, Stop is called, or the next
// event would exceed until (until <= 0 means run to exhaustion). It returns
// the virtual time at which the run ended. Same-instant events are dispatched
// as one batch: the run loop drains every event carrying the current
// timestamp from its bucket before re-scanning the queue.
//
//first:hotpath pinned by TestKernelSteadyStateAllocs (sim_test.go)
func (k *Kernel) Run(until Time) Time {
	// A Stop issued before Run (previously lost — Run cleared the flag on
	// entry) skips the loop entirely; the flag is consumed either way.
	if !k.stopped {
		if k.useHeap {
			k.runHeap(until)
		} else {
			k.runCal(until)
		}
	}
	k.stopped = false
	if until > 0 && k.now < until && k.Pending() == 0 {
		k.now = until
	}
	return k.now
}

// runHeap is the reference-mode loop: one heap pop per event.
func (k *Kernel) runHeap(until Time) {
	for len(k.heap) > 0 && !k.stopped {
		if until > 0 && k.heap[0].at > until {
			k.now = until
			return
		}
		ev := k.heapPop()
		if ev.at > k.now {
			k.now = ev.at
		}
		k.Processed++
		if k.MaxEvents > 0 && k.Processed > k.MaxEvents {
			panic(fmt.Sprintf("sim: event budget exceeded (%d events at t=%v)", k.Processed, k.now))
		}
		ev.fn()
	}
}

// runCal is the calendar-mode loop: scan the ring for the earliest event,
// then dispatch every event carrying that timestamp as one batch.
func (k *Kernel) runCal(until Time) {
	c := &k.cal
	for !k.stopped {
		if c.hasOne {
			// Fast slot: the queue's only event, dispatched without touching
			// the ring. Its callback may schedule freely — new events land in
			// the ring (or back in the slot once it is free again).
			if until > 0 && c.one.at > until {
				k.now = until
				return
			}
			fn := c.one.fn
			if c.one.at > k.now {
				k.now = c.one.at
			}
			c.hasOne = false
			c.one.fn = nil
			k.Processed++
			if k.MaxEvents > 0 && k.Processed > k.MaxEvents {
				panic(fmt.Sprintf("sim: event budget exceeded (%d events at t=%v)", k.Processed, k.now))
			}
			fn()
			continue
		}
		if c.n == 0 && len(k.heap) == 0 {
			return
		}
		// Advance the cursor to the earliest event's bucket.
		scanned := 0
		var b *calBucket
		for {
			if c.n == 0 {
				c.cur = c.slotOf(k.heap[0].at) // ring empty: jump to the overflow's min
			}
			// Pull overflow events whose slot has entered the ring window.
			if len(k.heap) > 0 {
				limit := c.cur + uint64(len(c.buckets))
				for len(k.heap) > 0 && c.slotOf(k.heap[0].at) < limit {
					c.bucketInsert(k.heapPop())
				}
			}
			b = &c.buckets[int(c.cur)&(len(c.buckets)-1)]
			if b.dirty {
				b.sort() // lazy ordering: one sort per bucket per rotation
			}
			// The slot check skips entries of a later ring rotation (they
			// can appear after the cursor backs up for a late insert).
			if b.head < len(b.ev) && c.slotOf(b.ev[b.head].at) == c.cur {
				break
			}
			c.cur++
			if scanned++; scanned >= calMaxScan {
				// The width no longer matches the schedule (long idle gap,
				// or stale later-rotation entries): re-tune and land the
				// cursor directly on the earliest event.
				k.calRehash(rehashWiden, 0)
				scanned = 0
			}
		}
		at := b.ev[b.head].at
		if until > 0 && at > until {
			k.now = until
			return
		}
		if at > k.now {
			k.now = at
		}
		// Batched same-instant dispatch: every event at this timestamp sits
		// consecutively from the bucket head (same slot, sorted by seq), and
		// callbacks scheduling for the same instant land behind the batch in
		// sequence order, so re-reading the bucket picks them up without a
		// ring re-scan.
		for {
			fn := b.ev[b.head].fn
			b.ev[b.head].fn = nil // release the closure
			b.head++
			if b.head == len(b.ev) {
				b.ev = b.ev[:0]
				b.head = 0
			}
			c.n--
			k.Processed++
			if k.MaxEvents > 0 && k.Processed > k.MaxEvents {
				panic(fmt.Sprintf("sim: event budget exceeded (%d events at t=%v)", k.Processed, k.now))
			}
			fn()
			if k.stopped {
				return
			}
			// Re-derive the bucket: the callback may have scheduled into it
			// or rehashed the ring.
			b = &c.buckets[int(c.cur)&(len(c.buckets)-1)]
			if b.head >= len(b.ev) || b.ev[b.head].at != at {
				break
			}
		}
	}
}

// NextAt peeks the earliest pending event's timestamp without executing
// anything. ok is false when the queue is empty. In calendar mode the peek
// advances the scan cursor exactly the way Run's find phase would (lazy
// bucket sorts, overflow pull-in, scan-triggered rehash) — those mutations
// never reorder events, so a NextAt immediately before Run leaves the
// dispatch sequence byte-identical. ShardSet uses it to compute the
// conservative window bound across shards.
func (k *Kernel) NextAt() (Time, bool) {
	if k.useHeap {
		if len(k.heap) == 0 {
			return 0, false
		}
		return k.heap[0].at, true
	}
	return k.calFindNext()
}

// Seconds converts a float seconds value to virtual time. Non-finite and
// out-of-range inputs clamp: NaN to zero, ±Inf (and magnitudes past 1e12
// seconds, which would overflow the nanosecond representation) to the
// largest safely addable positive/negative times.
func Seconds(s float64) Time {
	switch {
	case math.IsNaN(s):
		return 0
	case math.IsInf(s, 1) || s > 1e12:
		return math.MaxInt64 / 4
	case math.IsInf(s, -1) || s < -1e12:
		return -math.MaxInt64 / 4
	}
	return Time(s * float64(time.Second))
}

// Sec converts a virtual time to float seconds.
func Sec(t Time) float64 { return t.Seconds() }
