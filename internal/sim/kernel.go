// Package sim provides a deterministic discrete-event simulation kernel used
// to regenerate the paper's evaluation on virtual time: events are ordered by
// (time, sequence number) so identical seeds always produce identical runs.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is virtual simulation time measured from the start of the run.
type Time = time.Duration

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Kernel is a single-threaded discrete-event scheduler.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	// Processed counts executed events (for diagnostics and loop guards).
	Processed uint64
	// MaxEvents aborts the run if exceeded (guards against runaway models);
	// zero means no limit.
	MaxEvents uint64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	k := &Kernel{}
	heap.Init(&k.events)
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Schedule runs fn after delay. Negative delays are clamped to zero (the
// event still sorts after already-scheduled events at the same instant).
func (k *Kernel) Schedule(delay time.Duration, fn func()) {
	if fn == nil {
		return
	}
	if delay < 0 {
		delay = 0
	}
	k.seq++
	heap.Push(&k.events, &event{at: k.now + delay, seq: k.seq, fn: fn})
}

// At runs fn at absolute virtual time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) {
	k.Schedule(t-k.now, fn)
}

// Stop halts the run loop after the current event returns.
func (k *Kernel) Stop() { k.stopped = true }

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return k.events.Len() }

// Run executes events until the queue empties, Stop is called, or the next
// event would exceed until (until <= 0 means run to exhaustion). It returns
// the virtual time at which the run ended.
func (k *Kernel) Run(until Time) Time {
	k.stopped = false
	for k.events.Len() > 0 && !k.stopped {
		ev := k.events[0]
		if until > 0 && ev.at > until {
			k.now = until
			return k.now
		}
		heap.Pop(&k.events)
		if ev.at > k.now {
			k.now = ev.at
		}
		k.Processed++
		if k.MaxEvents > 0 && k.Processed > k.MaxEvents {
			panic(fmt.Sprintf("sim: event budget exceeded (%d events at t=%v)", k.Processed, k.now))
		}
		ev.fn()
	}
	if until > 0 && k.now < until && k.events.Len() == 0 {
		k.now = until
	}
	return k.now
}

// Seconds converts a float seconds value to virtual time.
func Seconds(s float64) Time {
	if math.IsInf(s, 1) || s > 1e12 {
		return math.MaxInt64 / 4
	}
	return Time(s * float64(time.Second))
}

// Sec converts a virtual time to float seconds.
func Sec(t Time) float64 { return t.Seconds() }
