// Package sim provides a deterministic discrete-event simulation kernel used
// to regenerate the paper's evaluation on virtual time: events are ordered by
// (time, sequence number) so identical seeds always produce identical runs.
//
// The event queue is a value-typed, index-addressed 4-ary min-heap: events
// live inline in the heap's backing array, so Schedule performs no per-event
// allocation and no interface boxing — the array itself is the free list,
// with popped slots reused by later pushes. A 4-ary layout halves the tree
// depth of a binary heap and keeps parent/child slots on the same cache
// lines, which is what makes the kernel's Schedule/Run loop allocation-free
// and branch-cheap at steady state (see BenchmarkKernelEvents).
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is virtual simulation time measured from the start of the run.
type Time = time.Duration

// event is a scheduled callback, stored by value inside the kernel's heap.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// before orders events by (time, schedule order).
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Kernel is a single-threaded discrete-event scheduler.
type Kernel struct {
	now     Time
	seq     uint64
	events  []event // 4-ary min-heap, value-typed
	stopped bool
	// Processed counts executed events (for diagnostics and loop guards).
	Processed uint64
	// MaxEvents aborts the run if exceeded (guards against runaway models);
	// zero means no limit.
	MaxEvents uint64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Schedule runs fn after delay. Negative delays are clamped to zero (the
// event still sorts after already-scheduled events at the same instant).
func (k *Kernel) Schedule(delay time.Duration, fn func()) {
	if fn == nil {
		return
	}
	if delay < 0 {
		delay = 0
	}
	k.seq++
	k.events = append(k.events, event{at: k.now + delay, seq: k.seq, fn: fn})
	k.siftUp(len(k.events) - 1)
}

// At runs fn at absolute virtual time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) {
	k.Schedule(t-k.now, fn)
}

// Stop halts the run loop after the current event returns.
func (k *Kernel) Stop() { k.stopped = true }

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }

// siftUp restores the heap property after appending at index i.
func (k *Kernel) siftUp(i int) {
	ev := k.events[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !ev.before(&k.events[parent]) {
			break
		}
		k.events[i] = k.events[parent]
		i = parent
	}
	k.events[i] = ev
}

// popMin removes and returns the root event.
func (k *Kernel) popMin() event {
	h := k.events
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the closure
	k.events = h[:n]
	if n > 0 {
		k.siftDown(last)
	}
	return root
}

// siftDown places ev (logically at the root) into its heap position.
func (k *Kernel) siftDown(ev event) {
	h := k.events
	n := len(h)
	i := 0
	for {
		c := i<<2 + 1 // first of up to four children
		if c >= n {
			break
		}
		// Select the smallest child.
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h[j].before(&h[min]) {
				min = j
			}
		}
		if !h[min].before(&ev) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = ev
}

// Run executes events until the queue empties, Stop is called, or the next
// event would exceed until (until <= 0 means run to exhaustion). It returns
// the virtual time at which the run ended.
func (k *Kernel) Run(until Time) Time {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		if until > 0 && k.events[0].at > until {
			k.now = until
			return k.now
		}
		ev := k.popMin()
		if ev.at > k.now {
			k.now = ev.at
		}
		k.Processed++
		if k.MaxEvents > 0 && k.Processed > k.MaxEvents {
			panic(fmt.Sprintf("sim: event budget exceeded (%d events at t=%v)", k.Processed, k.now))
		}
		ev.fn()
	}
	if until > 0 && k.now < until && len(k.events) == 0 {
		k.now = until
	}
	return k.now
}

// Seconds converts a float seconds value to virtual time.
func Seconds(s float64) Time {
	if math.IsInf(s, 1) || s > 1e12 {
		return math.MaxInt64 / 4
	}
	return Time(s * float64(time.Second))
}

// Sec converts a virtual time to float seconds.
func Sec(t Time) float64 { return t.Seconds() }
