// Package openaiapi defines the OpenAI-compatible wire format the gateway
// serves and the client SDK speaks (§3.1.1: "The API is OpenAI-compatible
// and supports the chat completions, completions, embeddings endpoints"),
// plus the /v1/batches shapes (§4.4) and server-sent-event streaming.
package openaiapi

import (
	"encoding/json"
	"fmt"
)

// Message is one chat turn.
type Message struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

// ChatCompletionRequest is POST /v1/chat/completions.
type ChatCompletionRequest struct {
	Model       string    `json:"model"`
	Messages    []Message `json:"messages"`
	MaxTokens   int       `json:"max_tokens,omitempty"`
	Temperature float64   `json:"temperature,omitempty"`
	TopP        float64   `json:"top_p,omitempty"`
	N           int       `json:"n,omitempty"`
	Stream      bool      `json:"stream,omitempty"`
	User        string    `json:"user,omitempty"`
}

// Validate checks required fields.
func (r *ChatCompletionRequest) Validate() error {
	if r.Model == "" {
		return fmt.Errorf("model is required")
	}
	if len(r.Messages) == 0 {
		return fmt.Errorf("messages must not be empty")
	}
	for i, m := range r.Messages {
		switch m.Role {
		case "system", "user", "assistant", "tool":
		default:
			return fmt.Errorf("messages[%d]: invalid role %q", i, m.Role)
		}
	}
	if r.MaxTokens < 0 {
		return fmt.Errorf("max_tokens must be non-negative")
	}
	return nil
}

// CompletionRequest is POST /v1/completions.
type CompletionRequest struct {
	Model       string  `json:"model"`
	Prompt      string  `json:"prompt"`
	MaxTokens   int     `json:"max_tokens,omitempty"`
	Temperature float64 `json:"temperature,omitempty"`
	Stream      bool    `json:"stream,omitempty"`
	User        string  `json:"user,omitempty"`
}

// Validate checks required fields.
func (r *CompletionRequest) Validate() error {
	if r.Model == "" {
		return fmt.Errorf("model is required")
	}
	if r.Prompt == "" {
		return fmt.Errorf("prompt is required")
	}
	if r.MaxTokens < 0 {
		return fmt.Errorf("max_tokens must be non-negative")
	}
	return nil
}

// EmbeddingRequest is POST /v1/embeddings.
type EmbeddingRequest struct {
	Model string   `json:"model"`
	Input []string `json:"input"`
	User  string   `json:"user,omitempty"`
}

// UnmarshalJSON accepts both a string and a list for "input" like OpenAI.
func (r *EmbeddingRequest) UnmarshalJSON(data []byte) error {
	var raw struct {
		Model string          `json:"model"`
		Input json.RawMessage `json:"input"`
		User  string          `json:"user,omitempty"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	r.Model = raw.Model
	r.User = raw.User
	if len(raw.Input) == 0 {
		return nil
	}
	var single string
	if err := json.Unmarshal(raw.Input, &single); err == nil {
		r.Input = []string{single}
		return nil
	}
	return json.Unmarshal(raw.Input, &r.Input)
}

// Validate checks required fields.
func (r *EmbeddingRequest) Validate() error {
	if r.Model == "" {
		return fmt.Errorf("model is required")
	}
	if len(r.Input) == 0 {
		return fmt.Errorf("input is required")
	}
	return nil
}

// Usage is token accounting attached to responses.
type Usage struct {
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
	TotalTokens      int `json:"total_tokens"`
}

// Choice is one generation in a completion response.
type Choice struct {
	Index        int      `json:"index"`
	Message      *Message `json:"message,omitempty"`
	Text         string   `json:"text,omitempty"`
	Delta        *Message `json:"delta,omitempty"`
	FinishReason string   `json:"finish_reason,omitempty"`
}

// ChatCompletionResponse is the non-streaming chat result.
type ChatCompletionResponse struct {
	ID      string   `json:"id"`
	Object  string   `json:"object"`
	Created int64    `json:"created"`
	Model   string   `json:"model"`
	Choices []Choice `json:"choices"`
	Usage   Usage    `json:"usage"`
}

// CompletionResponse is the non-streaming text-completion result.
type CompletionResponse struct {
	ID      string   `json:"id"`
	Object  string   `json:"object"`
	Created int64    `json:"created"`
	Model   string   `json:"model"`
	Choices []Choice `json:"choices"`
	Usage   Usage    `json:"usage"`
}

// EmbeddingData is one embedding vector.
type EmbeddingData struct {
	Object    string    `json:"object"`
	Index     int       `json:"index"`
	Embedding []float32 `json:"embedding"`
}

// EmbeddingResponse is the embeddings result.
type EmbeddingResponse struct {
	Object string          `json:"object"`
	Model  string          `json:"model"`
	Data   []EmbeddingData `json:"data"`
	Usage  Usage           `json:"usage"`
}

// Model is one /v1/models entry.
type Model struct {
	ID      string `json:"id"`
	Object  string `json:"object"`
	OwnedBy string `json:"owned_by"`
	Kind    string `json:"kind,omitempty"`
}

// ModelList is GET /v1/models.
type ModelList struct {
	Object string  `json:"object"`
	Data   []Model `json:"data"`
}

// BatchRequestLine is one JSONL line of a batch input file (§4.4: "each
// line constitutes a complete inference request").
type BatchRequestLine struct {
	CustomID string                `json:"custom_id"`
	Method   string                `json:"method"`
	URL      string                `json:"url"`
	Body     ChatCompletionRequest `json:"body"`
}

// BatchResponseLine is one JSONL line of a batch output file.
type BatchResponseLine struct {
	CustomID string                  `json:"custom_id"`
	Status   int                     `json:"status"`
	Body     *ChatCompletionResponse `json:"body,omitempty"`
	Error    string                  `json:"error,omitempty"`
}

// CreateBatchRequest is POST /v1/batches.
type CreateBatchRequest struct {
	Model string `json:"model"`
	// InputLines carries the JSONL content inline (the stand-in for the
	// uploaded-file reference in the real API).
	InputLines []BatchRequestLine `json:"input_lines"`
	Endpoint   string             `json:"endpoint,omitempty"`
}

// BatchObject is the /v1/batches resource.
type BatchObject struct {
	ID           string `json:"id"`
	Object       string `json:"object"`
	Model        string `json:"model"`
	Status       string `json:"status"`
	Total        int    `json:"total"`
	Completed    int    `json:"completed"`
	OutputTokens int64  `json:"output_tokens"`
	CreatedAt    int64  `json:"created_at"`
	Error        string `json:"error,omitempty"`
}

// JobsResponse is GET /jobs (§4.3): per-model scheduler-backed status.
type JobsResponse struct {
	Models []ModelJobStatus `json:"models"`
}

// ModelJobStatus reports one model's state on one endpoint.
type ModelJobStatus struct {
	Model    string `json:"model"`
	Endpoint string `json:"endpoint"`
	Cluster  string `json:"cluster"`
	State    string `json:"state"` // running | starting | queued | cold
	Running  int    `json:"running"`
	Starting int    `json:"starting"`
	Queued   int    `json:"queued"`
}

// ErrorResponse is the OpenAI error envelope.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the error payload.
type ErrorBody struct {
	Message string `json:"message"`
	Type    string `json:"type"`
	Code    string `json:"code,omitempty"`
}

// NewError builds an error envelope.
func NewError(typ, msg string) ErrorResponse {
	return ErrorResponse{Error: ErrorBody{Message: msg, Type: typ}}
}
