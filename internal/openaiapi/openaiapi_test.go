package openaiapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestChatRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		req  ChatCompletionRequest
		ok   bool
	}{
		{"valid", ChatCompletionRequest{Model: "m", Messages: []Message{{Role: "user", Content: "hi"}}}, true},
		{"system+user", ChatCompletionRequest{Model: "m", Messages: []Message{{Role: "system", Content: "s"}, {Role: "user", Content: "u"}}}, true},
		{"no model", ChatCompletionRequest{Messages: []Message{{Role: "user", Content: "hi"}}}, false},
		{"no messages", ChatCompletionRequest{Model: "m"}, false},
		{"bad role", ChatCompletionRequest{Model: "m", Messages: []Message{{Role: "robot", Content: "x"}}}, false},
		{"negative max", ChatCompletionRequest{Model: "m", Messages: []Message{{Role: "user", Content: "x"}}, MaxTokens: -1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.req.Validate()
			if (err == nil) != c.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestCompletionRequestValidation(t *testing.T) {
	if err := (&CompletionRequest{Model: "m", Prompt: "p"}).Validate(); err != nil {
		t.Errorf("valid rejected: %v", err)
	}
	if err := (&CompletionRequest{Prompt: "p"}).Validate(); err == nil {
		t.Error("missing model accepted")
	}
	if err := (&CompletionRequest{Model: "m"}).Validate(); err == nil {
		t.Error("missing prompt accepted")
	}
}

func TestEmbeddingRequestInputForms(t *testing.T) {
	var single EmbeddingRequest
	if err := json.Unmarshal([]byte(`{"model":"e","input":"hello world"}`), &single); err != nil {
		t.Fatal(err)
	}
	if len(single.Input) != 1 || single.Input[0] != "hello world" {
		t.Errorf("single input = %v", single.Input)
	}
	var list EmbeddingRequest
	if err := json.Unmarshal([]byte(`{"model":"e","input":["a","b"]}`), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Input) != 2 {
		t.Errorf("list input = %v", list.Input)
	}
	var empty EmbeddingRequest
	if err := json.Unmarshal([]byte(`{"model":"e"}`), &empty); err != nil {
		t.Fatal(err)
	}
	if err := empty.Validate(); err == nil {
		t.Error("empty input accepted")
	}
	if err := (&EmbeddingRequest{Input: []string{"x"}}).Validate(); err == nil {
		t.Error("missing model accepted")
	}
}

func TestSSERoundtrip(t *testing.T) {
	var buf bytes.Buffer
	chunks := []StreamChunk{
		{ID: "c1", Model: "m", Choices: []Choice{{Delta: &Message{Role: "assistant", Content: "Hello "}}}},
		{ID: "c1", Model: "m", Choices: []Choice{{Delta: &Message{Content: "world"}}}},
	}
	for _, c := range chunks {
		if err := WriteSSE(&buf, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteSSEDone(&buf); err != nil {
		t.Fatal(err)
	}
	text, err := CollectStreamText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if text != "Hello world" {
		t.Errorf("collected %q", text)
	}
}

func TestReadSSEStopsAtDone(t *testing.T) {
	raw := "data: {\"x\":1}\n\ndata: [DONE]\n\ndata: {\"x\":2}\n\n"
	var seen int
	err := ReadSSE(strings.NewReader(raw), func(data []byte) error {
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Errorf("events seen = %d, want 1 (stop at DONE)", seen)
	}
}

func TestReadSSEIgnoresNonDataLines(t *testing.T) {
	raw := ": comment\nevent: x\ndata: {\"a\":1}\n\ndata: [DONE]\n\n"
	var seen int
	if err := ReadSSE(strings.NewReader(raw), func([]byte) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Errorf("seen = %d", seen)
	}
}

// TestReadSSETruncated pins the mid-stream disconnect contract: clean EOF
// without the [DONE] sentinel is a typed error, never silent success — a
// cut SSE stream must not be mistaken for a complete answer.
func TestReadSSETruncated(t *testing.T) {
	cases := []string{
		"",
		"data: {\"x\":1}\n\n",
		"data: {\"choices\":[{\"delta\":{\"content\":\"par", // cut mid-JSON
		"data: [DON",
	}
	for _, raw := range cases {
		err := ReadSSE(strings.NewReader(raw), func([]byte) error { return nil })
		if !errors.Is(err, ErrStreamTruncated) {
			t.Errorf("ReadSSE(%q) = %v, want ErrStreamTruncated", raw, err)
		}
	}
	// Deltas before the cut still reach the consumer; the error comes after.
	var got []string
	err := ReadSSE(strings.NewReader("data: {\"a\":1}\n\ndata: {\"b\":2}"), func(d []byte) error {
		got = append(got, string(d))
		return nil
	})
	if !errors.Is(err, ErrStreamTruncated) {
		t.Fatalf("err = %v", err)
	}
	if len(got) != 2 || got[0] != `{"a":1}` || got[1] != `{"b":2}` {
		t.Errorf("payloads before cut = %q", got)
	}
	// CollectStreamText propagates it alongside the partial text.
	text, err := CollectStreamText(strings.NewReader("data: {\"choices\":[{\"delta\":{\"content\":\"half\"}}]}\n\n"))
	if !errors.Is(err, ErrStreamTruncated) {
		t.Fatalf("CollectStreamText err = %v", err)
	}
	if text != "half" {
		t.Errorf("partial text = %q, want \"half\"", text)
	}
}

// TestReadSSENoSpaceAfterColon is the regression test for the spec-form
// fix: the SSE specification allows `data:payload` with no space after the
// colon, and streams from other servers use it. Previously such events were
// silently dropped.
func TestReadSSENoSpaceAfterColon(t *testing.T) {
	raw := "data:{\"a\":1}\n\ndata: {\"b\":2}\n\ndata:[DONE]\n\ndata:{\"c\":3}\n\n"
	var payloads []string
	if err := ReadSSE(strings.NewReader(raw), func(data []byte) error {
		payloads = append(payloads, string(data))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 2 || payloads[0] != `{"a":1}` || payloads[1] != `{"b":2}` {
		t.Errorf("payloads = %q, want both colon forms delivered and [DONE] honored", payloads)
	}

	// A full no-space chat stream reassembles like the spaced form.
	noSpace := "data:{\"choices\":[{\"delta\":{\"content\":\"Hi \"}}]}\n\n" +
		"data:{\"choices\":[{\"delta\":{\"content\":\"there\"}}]}\n\n" +
		"data:[DONE]\n\n"
	text, err := CollectStreamText(strings.NewReader(noSpace))
	if err != nil {
		t.Fatal(err)
	}
	if text != "Hi there" {
		t.Errorf("collected %q, want \"Hi there\"", text)
	}
	// Bare `data:` / `data: ` heartbeats are skipped, not delivered: an
	// empty payload would abort JSON consumers mid-stream.
	var events int
	if err := ReadSSE(strings.NewReader("data:\n\ndata: \n\ndata: {\"ok\":1}\n\ndata: [DONE]\n\n"), func(data []byte) error {
		events++
		if len(data) == 0 {
			t.Error("empty payload delivered")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if events != 1 {
		t.Errorf("events = %d, want 1 (heartbeats skipped)", events)
	}
}

func TestErrorEnvelope(t *testing.T) {
	e := NewError("invalid_request_error", "bad input")
	raw, _ := json.Marshal(e)
	var back ErrorResponse
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Error.Type != "invalid_request_error" || back.Error.Message != "bad input" {
		t.Errorf("envelope = %+v", back)
	}
}

func TestBatchLineSerialization(t *testing.T) {
	line := BatchRequestLine{
		CustomID: "r1", Method: "POST", URL: "/v1/chat/completions",
		Body: ChatCompletionRequest{Model: "m", Messages: []Message{{Role: "user", Content: "x"}}, MaxTokens: 5},
	}
	raw, _ := json.Marshal(line)
	var back BatchRequestLine
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.CustomID != "r1" || back.Body.MaxTokens != 5 {
		t.Errorf("roundtrip = %+v", back)
	}
}
