package openaiapi

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// FuzzParseRequest drives every request parser the gateway's handlers run on
// untrusted bodies — chat, completion, embedding (with its custom
// string-or-list UnmarshalJSON), and batch lines — through one input. The
// property is the handler contract: malformed bodies must come back as
// errors, never as panics, and whatever parses must survive Validate and a
// re-marshal. Seed corpus lives under testdata/fuzz/FuzzParseRequest (run in
// plain `go test` too); `make check` fuzzes briefly on top.
func FuzzParseRequest(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{broken`,
		`null`,
		`[]`,
		`"just a string"`,
		`{"model":"m","messages":[{"role":"user","content":"hi"}],"max_tokens":8}`,
		`{"model":"m","messages":[{"role":"alien","content":"x"}]}`,
		`{"model":"m","messages":[],"stream":true}`,
		`{"model":"m","prompt":"complete me","max_tokens":-3}`,
		`{"model":"m","input":"single string"}`,
		`{"model":"m","input":["a","b","c"]}`,
		`{"model":"m","input":{"not":"a list"}}`,
		`{"model":"m","input":12345}`,
		`{"custom_id":"1","method":"POST","url":"/v1/chat/completions","body":{"model":"m","messages":[{"role":"user","content":"x"}]}}`,
		"{\"model\":\"\x00\ufffd\",\"messages\":[{\"role\":\"user\",\"content\":\"\\ud800\"}]}",
		`{"model":"m","messages":[{"role":"user","content":"` + string(make([]byte, 64)) + `"}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var chat ChatCompletionRequest
		if err := json.Unmarshal(data, &chat); err == nil {
			if chat.Validate() == nil {
				if _, err := json.Marshal(chat); err != nil {
					t.Errorf("valid chat request does not re-marshal: %v", err)
				}
			}
		}
		var comp CompletionRequest
		if err := json.Unmarshal(data, &comp); err == nil {
			_ = comp.Validate()
		}
		var emb EmbeddingRequest
		if err := json.Unmarshal(data, &emb); err == nil {
			_ = emb.Validate()
		}
		var line BatchRequestLine
		if err := json.Unmarshal(data, &line); err == nil {
			_ = line.Body.Validate()
		}
		var batch CreateBatchRequest
		if err := json.Unmarshal(data, &batch); err == nil {
			for _, l := range batch.InputLines {
				_ = l.Body.Validate()
			}
		}
	})
}

// FuzzReadSSE hardens the stream reader against arbitrary wire bytes — in
// particular streams cut mid-event, which chaos testing produces on purpose.
// Properties: never panic; a stream containing a [DONE] sentinel before the
// cut returns nil; any clean EOF without [DONE] returns ErrStreamTruncated
// (never silent success); delivered payloads are never empty.
func FuzzReadSSE(f *testing.F) {
	seeds := []string{
		"",
		"data: {\"x\":1}\n\ndata: [DONE]\n\n",
		"data: {\"x\":1}\n\n",                   // complete event, missing [DONE]
		"data: {\"choices\":[{\"delta\":{\"con", // cut mid-JSON, no trailing newline
		"data: {\"x\":1}\n\ndata: {\"y\":",      // second event cut mid-payload
		"data:",                                 // bare field name at EOF
		"data: [DON",                            // sentinel itself cut
		"data:[DONE]",                           // no-space sentinel, no trailing blank line
		": comment only\n\n",                    // heartbeat-only stream, then cut
		"event: ping\ndata: {}",                 // wrong event framing, cut before blank line
		"data: [DONE]\n\ndata: ",                // trailing garbage after sentinel
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var sawDone bool
		for _, line := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(line, "data:") {
				continue
			}
			p := strings.TrimPrefix(line, "data:")
			if strings.HasPrefix(p, " ") {
				p = p[1:] // ReadSSE strips at most one optional space
			}
			if p == StreamDone {
				sawDone = true
				break
			}
		}
		err := ReadSSE(strings.NewReader(string(data)), func(payload []byte) error {
			if len(payload) == 0 {
				t.Error("empty payload delivered")
			}
			return nil
		})
		if sawDone && err != nil {
			t.Errorf("stream with [DONE] returned %v", err)
		}
		if !sawDone && err == nil {
			t.Error("cut stream returned nil, want ErrStreamTruncated")
		}
		if !sawDone && err != nil && !errors.Is(err, ErrStreamTruncated) {
			// Scanner-level errors (oversized tokens) are legitimate too, but
			// only for genuinely oversized input.
			if len(data) <= 64*1024 {
				t.Errorf("cut stream returned untyped error %v", err)
			}
		}
	})
}
