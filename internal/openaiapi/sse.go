package openaiapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// SSE (server-sent events) framing for streaming responses (§4.7: "The
// interface also supports streaming responses").

// StreamDone is the terminal SSE sentinel.
const StreamDone = "[DONE]"

// ErrStreamTruncated reports a stream that ended (clean EOF) without the
// [DONE] sentinel: the connection was cut mid-stream. Callers distinguish it
// from transport errors with errors.Is; the deltas delivered before the cut
// were real, but the stream as a whole must not be treated as complete.
var ErrStreamTruncated = errors.New("openaiapi: SSE stream truncated before [DONE]")

// WriteSSE writes one event carrying v as JSON.
func WriteSSE(w io.Writer, v interface{}) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "data: %s\n\n", data)
	return err
}

// WriteSSEDone writes the terminal sentinel.
func WriteSSEDone(w io.Writer) error {
	_, err := fmt.Fprintf(w, "data: %s\n\n", StreamDone)
	return err
}

// StreamChunk is one streamed chat delta.
type StreamChunk struct {
	ID      string   `json:"id"`
	Object  string   `json:"object"`
	Created int64    `json:"created"`
	Model   string   `json:"model"`
	Choices []Choice `json:"choices"`
}

// ReadSSE consumes an SSE stream, invoking onData for every event payload
// until [DONE]. Per the SSE specification, the colon after the field name
// may be followed by at most one optional space — `data:payload` is as
// valid as `data: payload` — so both forms are accepted (our own WriteSSE
// emits the spaced form, but other servers legitimately do not).
//
// A stream that reaches EOF without the [DONE] sentinel was cut mid-flight
// (endpoint death, dropped connection): ReadSSE returns ErrStreamTruncated
// rather than silently reporting success, so callers never mistake a
// partial answer for a complete one.
func ReadSSE(r io.Reader, onData func(data []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if !bytes.HasPrefix(line, []byte("data:")) {
			continue
		}
		payload := line[len("data:"):]
		if len(payload) > 0 && payload[0] == ' ' {
			payload = payload[1:]
		}
		if len(payload) == 0 {
			// Bare `data:` / `data: ` heartbeats carry nothing a JSON chunk
			// consumer can parse; delivering them would abort the stream.
			continue
		}
		if string(payload) == StreamDone {
			return nil
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		if err := onData(cp); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return ErrStreamTruncated
}

// CollectStreamText reassembles the full assistant text from a chat SSE
// stream.
func CollectStreamText(r io.Reader) (string, error) {
	var b strings.Builder
	err := ReadSSE(r, func(data []byte) error {
		var chunk StreamChunk
		if err := json.Unmarshal(data, &chunk); err != nil {
			return err
		}
		for _, c := range chunk.Choices {
			if c.Delta != nil {
				b.WriteString(c.Delta.Content)
			}
		}
		return nil
	})
	return b.String(), err
}
