package fabric

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/scheduler"
	"github.com/argonne-first/first/internal/serving"
)

// DeploymentConfig describes how an endpoint hosts one model (§3.2.2):
// bounds on auto-scaling, the hot-node idle timeout, and the batch-scheduler
// walltime for serving jobs.
type DeploymentConfig struct {
	Model string
	// MinInstances instances are kept alive at all times (0 = fully
	// on-demand with cold starts).
	MinInstances int
	// MaxInstances caps auto-scaling ("the maximum number of nodes an LLM
	// can scale up to"). Default 1.
	MaxInstances int
	// ScaleUpDepth triggers a scale-up when the average waiting+running
	// depth per ready instance exceeds it. Default 300 (instance saturated
	// past its batch).
	ScaleUpDepth int
	// HotIdleTimeout releases an idle instance's nodes after this long
	// (§3.2.2: "currently 2 hours"). Default 2 h.
	HotIdleTimeout time.Duration
	// Walltime for serving jobs (0 = unlimited).
	Walltime time.Duration
	// AutoScalePeriod is the manager's control-loop cadence. Default 5 s.
	AutoScalePeriod time.Duration
	// MaxBatch overrides the engine's max_num_seqs.
	MaxBatch int
}

func (c *DeploymentConfig) applyDefaults() {
	if c.MaxInstances <= 0 {
		c.MaxInstances = 1
	}
	if c.MinInstances > c.MaxInstances {
		c.MinInstances = c.MaxInstances
	}
	if c.ScaleUpDepth <= 0 {
		c.ScaleUpDepth = 300
	}
	if c.HotIdleTimeout <= 0 {
		c.HotIdleTimeout = 2 * time.Hour
	}
	if c.AutoScalePeriod <= 0 {
		c.AutoScalePeriod = 5 * time.Second
	}
}

type instState int

const (
	instQueued instState = iota // job submitted, nodes not yet acquired
	instLoading
	instReady
	instDead
)

type instance struct {
	id       int
	state    instState
	stopping bool // voluntary scale-down in progress
	job      *scheduler.Job
	live     *serving.LiveEngine
	embed    *serving.EmbedEngine
}

// DeploymentStats counts manager activity.
type DeploymentStats struct {
	ColdStarts int64
	ScaleUps   int64
	ScaleDowns int64
	Restarts   int64
	Retries    int64
}

// ModelStatus is the /jobs view of one model on one endpoint (§4.3).
type ModelStatus struct {
	Model    string `json:"model"`
	Endpoint string `json:"endpoint"`
	Cluster  string `json:"cluster"`
	Running  int    `json:"running"`
	Starting int    `json:"starting"`
	Queued   int    `json:"queued"`
	// State summarizes: running > starting > queued > cold.
	State string `json:"state"`
}

// Deployment manages the instances serving one model on one endpoint.
type Deployment struct {
	ep   *Endpoint
	cfg  DeploymentConfig
	spec perfmodel.ModelSpec

	mu        sync.Mutex
	instances map[int]*instance
	nextID    int
	readyWait chan struct{}
	waiting   int // callers blocked in acquire
	closed    bool
	stats     DeploymentStats

	stop     chan struct{}
	stopOnce sync.Once
}

func newDeployment(ep *Endpoint, cfg DeploymentConfig, spec perfmodel.ModelSpec) (*Deployment, error) {
	cfg.applyDefaults()
	d := &Deployment{
		ep:        ep,
		cfg:       cfg,
		spec:      spec,
		instances: make(map[int]*instance),
		stop:      make(chan struct{}),
	}
	for i := 0; i < cfg.MinInstances; i++ {
		if err := d.launchInstance(); err != nil {
			d.Close()
			return nil, err
		}
	}
	go d.autoscaleLoop()
	return d, nil
}

// Model returns the served model name.
func (d *Deployment) Model() string { return d.cfg.Model }

// Stats returns a copy of the manager counters.
func (d *Deployment) Stats() DeploymentStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// InstanceCount returns live (non-dead) instances.
func (d *Deployment) InstanceCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.instances)
}

// ReadyCount returns instances currently serving.
func (d *Deployment) ReadyCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, in := range d.instances {
		if in.state == instReady {
			n++
		}
	}
	return n
}

// CordonInfo splits the ready count for drain-aware routing: ready is the
// instances accepting new work, stopping the ones flagged for a voluntary
// scale-down that are finishing their current load. A deployment whose
// ready capacity is entirely stopping advertises Cordoned through
// federation.EndpointInfo so the ladder steers new requests elsewhere
// before the stop lands, instead of after.
func (d *Deployment) CordonInfo() (ready, stopping int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, in := range d.instances {
		if in.state != instReady {
			continue
		}
		if in.stopping {
			stopping++
		} else {
			ready++
		}
	}
	return ready, stopping
}

// Depth returns total waiting+running sequences across ready instances.
func (d *Deployment) Depth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	depth := 0
	for _, in := range d.instances {
		if in.state == instReady && in.live != nil {
			depth += in.live.Depth()
		}
	}
	return depth + d.waiting
}

// Status reports the /jobs view.
func (d *Deployment) Status() ModelStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := ModelStatus{
		Model:    d.cfg.Model,
		Endpoint: d.ep.ID(),
		Cluster:  d.ep.ClusterName(),
	}
	for _, in := range d.instances {
		switch in.state {
		case instReady:
			st.Running++
		case instLoading:
			st.Starting++
		case instQueued:
			// The scheduler's prologue phase counts as "starting"
			// (nodes acquired); a queued job is "queued".
			if in.job != nil && in.job.State() == scheduler.Starting {
				st.Starting++
			} else {
				st.Queued++
			}
		}
	}
	switch {
	case st.Running > 0:
		st.State = "running"
	case st.Starting > 0:
		st.State = "starting"
	case st.Queued > 0:
		st.State = "queued"
	default:
		st.State = "cold"
	}
	return st
}

// launchInstance submits a serving job for one more instance.
func (d *Deployment) launchInstance() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrEndpointShutdown
	}
	if len(d.instances) >= d.cfg.MaxInstances {
		d.mu.Unlock()
		return fmt.Errorf("fabric: %s at max instances (%d)", d.cfg.Model, d.cfg.MaxInstances)
	}
	d.nextID++
	in := &instance{id: d.nextID, state: instQueued}
	d.instances[in.id] = in
	d.mu.Unlock()

	job, err := d.ep.cfg.Scheduler.Submit(scheduler.JobSpec{
		Name:     "serve:" + shortName(d.cfg.Model),
		User:     "first-svc",
		GPUs:     d.spec.TensorParallel,
		Walltime: d.cfg.Walltime,
		OnRunning: func(j *scheduler.Job) {
			d.onJobRunning(in)
		},
		OnEnd: func(j *scheduler.Job, st scheduler.State) {
			d.onJobEnd(in, st)
		},
	})
	if err != nil {
		d.mu.Lock()
		delete(d.instances, in.id)
		d.mu.Unlock()
		return err
	}
	d.mu.Lock()
	in.job = job
	d.mu.Unlock()
	return nil
}

func shortName(model string) string {
	if i := strings.LastIndexByte(model, '/'); i >= 0 {
		return model[i+1:]
	}
	return model
}

// onJobRunning loads weights and brings the instance into service.
func (d *Deployment) onJobRunning(in *instance) {
	d.mu.Lock()
	if d.closed || in.state == instDead {
		d.mu.Unlock()
		return
	}
	in.state = instLoading
	d.mu.Unlock()

	gpu := d.ep.cfg.Scheduler.Cluster().GPU()
	d.ep.clk.Sleep(d.spec.LoadTime(gpu)) // weight loading dominates cold start (§4.3)

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || in.state == instDead {
		return
	}
	if d.spec.Kind == perfmodel.KindEmbedding {
		emb, err := serving.NewEmbedEngine(d.spec, gpu, d.ep.clk)
		if err != nil {
			d.mu.Unlock()
			d.failInstance(in)
			d.mu.Lock()
			return
		}
		in.embed = emb
	} else {
		eng, err := serving.NewEngine(serving.Config{Model: d.spec, GPU: gpu, MaxBatch: d.cfg.MaxBatch})
		if err != nil {
			d.mu.Unlock()
			d.failInstance(in)
			d.mu.Lock()
			return
		}
		in.live = serving.NewLiveEngine(eng, d.ep.clk)
	}
	in.state = instReady
	d.broadcastLocked()
}

func (d *Deployment) failInstance(in *instance) {
	if in.job != nil {
		d.ep.cfg.Scheduler.Fail(in.job.ID)
	}
}

// onJobEnd removes the instance when its scheduler job terminates for any
// reason (voluntary release, walltime, failure).
func (d *Deployment) onJobEnd(in *instance, st scheduler.State) {
	d.mu.Lock()
	wasStopping := in.stopping
	in.state = instDead
	live := in.live
	delete(d.instances, in.id)
	if st == scheduler.Failed && !d.closed {
		d.stats.Restarts++
	}
	closed := d.closed
	d.broadcastLocked() // wake waiters so they re-evaluate
	d.mu.Unlock()
	if live != nil {
		live.Close()
	}
	// Fault tolerance (§3.2.2): involuntary loss below MinInstances is
	// replaced immediately rather than waiting for the control loop.
	if !closed && !wasStopping {
		go d.ensureMin()
	}
}

func (d *Deployment) ensureMin() {
	for {
		d.mu.Lock()
		deficit := d.cfg.MinInstances - len(d.instances)
		closed := d.closed
		d.mu.Unlock()
		if closed || deficit <= 0 {
			return
		}
		if err := d.launchInstance(); err != nil {
			return
		}
	}
}

func (d *Deployment) broadcastLocked() {
	if d.readyWait != nil {
		close(d.readyWait)
		d.readyWait = nil
	}
}

// acquire returns the least-loaded ready instance, cold-starting one when
// the deployment is scaled to zero.
func (d *Deployment) acquire(ctx context.Context) (*instance, error) {
	registered := false
	defer func() {
		if registered {
			d.mu.Lock()
			d.waiting--
			d.mu.Unlock()
		}
	}()
	for {
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return nil, ErrEndpointShutdown
		}
		var best *instance
		bestDepth := 0
		for _, in := range d.instances {
			if in.state != instReady || in.stopping {
				continue
			}
			depth := 0
			if in.live != nil {
				depth = in.live.Depth()
			}
			if best == nil || depth < bestDepth {
				best = in
				bestDepth = depth
			}
		}
		if best != nil {
			d.mu.Unlock()
			return best, nil
		}
		pending := false
		for _, in := range d.instances {
			if in.state == instQueued || in.state == instLoading {
				pending = true
				break
			}
		}
		if !registered {
			registered = true
			d.waiting++
		}
		needLaunch := !pending && len(d.instances) < d.cfg.MaxInstances
		if needLaunch {
			d.stats.ColdStarts++
		}
		if d.readyWait == nil {
			d.readyWait = make(chan struct{})
		}
		ch := d.readyWait
		d.mu.Unlock()

		if needLaunch {
			if err := d.launchInstance(); err != nil {
				return nil, err
			}
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Generate serves one inference request, retrying on instance loss.
func (d *Deployment) Generate(ctx context.Context, req InferRequest) (InferResult, error) {
	if d.spec.Kind == perfmodel.KindEmbedding {
		return InferResult{}, fmt.Errorf("fabric: %s is an embedding model", d.cfg.Model)
	}
	out := req.OutputTok
	if out <= 0 {
		out = 128
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		in, err := d.acquire(ctx)
		if err != nil {
			return InferResult{}, err
		}
		comp := in.live.Generate(ctx, req.PromptTok, out)
		if comp.Err == nil {
			res := InferResult{
				Model:      d.cfg.Model,
				PromptTok:  comp.PromptTok,
				OutputTok:  comp.OutputTok,
				QueueWait:  comp.QueueWait,
				ServeTime:  comp.Latency,
				InstanceID: in.id,
			}
			if req.WantText {
				res.Text = synthesizeText(req.Prompt, comp.OutputTok)
			}
			return res, nil
		}
		if comp.Err == serving.ErrClosed {
			// Instance died mid-request: fault-tolerant retry elsewhere.
			d.mu.Lock()
			d.stats.Retries++
			d.mu.Unlock()
			lastErr = comp.Err
			continue
		}
		return InferResult{}, comp.Err
	}
	return InferResult{}, fmt.Errorf("fabric: %s: retries exhausted: %w", d.cfg.Model, lastErr)
}

// Embed serves an embedding request.
func (d *Deployment) Embed(ctx context.Context, inputs []string) ([][]float32, error) {
	if d.spec.Kind != perfmodel.KindEmbedding {
		return nil, fmt.Errorf("fabric: %s is not an embedding model", d.cfg.Model)
	}
	in, err := d.acquire(ctx)
	if err != nil {
		return nil, err
	}
	return in.embed.Embed(ctx, inputs)
}

// autoscaleLoop is the §3.2.2 control loop: scale up when ready instances
// are saturated, release instances idle past the hot timeout, and keep
// MinInstances alive.
func (d *Deployment) autoscaleLoop() {
	for {
		select {
		case <-d.stop:
			return
		case <-d.ep.clk.After(d.cfg.AutoScalePeriod):
		}
		d.controlStep()
	}
}

func (d *Deployment) controlStep() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	total := len(d.instances)
	ready := 0
	depth := d.waiting
	var idleCandidate *instance
	for _, in := range d.instances {
		if in.state != instReady || in.stopping {
			continue
		}
		ready++
		if in.live != nil {
			depth += in.live.Depth()
			if in.live.IdleFor() >= d.cfg.HotIdleTimeout {
				idleCandidate = in
			}
		} else if in.embed != nil {
			// Embedding instances are released on the same idle policy
			// tracked by the deployment-level waiting count only.
			_ = in
		}
	}
	scaleUp := total < d.cfg.MaxInstances && ready > 0 && depth > d.cfg.ScaleUpDepth*ready
	var scaleDown *instance
	if idleCandidate != nil && total > d.cfg.MinInstances && depth == 0 {
		scaleDown = idleCandidate
		scaleDown.stopping = true
		d.stats.ScaleDowns++
	}
	if scaleUp {
		d.stats.ScaleUps++
	}
	belowMin := total < d.cfg.MinInstances
	d.mu.Unlock()

	if scaleUp {
		if err := d.launchInstance(); err != nil {
			d.mu.Lock()
			d.stats.ScaleUps--
			d.mu.Unlock()
		}
	}
	if scaleDown != nil && scaleDown.job != nil {
		d.ep.cfg.Scheduler.Complete(scaleDown.job.ID)
	}
	if belowMin {
		d.ensureMin()
	}
}

// InjectFailure kills an arbitrary ready instance's job (test/failure
// injection hook exercising the restart path). Returns false if no ready
// instance exists.
func (d *Deployment) InjectFailure() bool {
	d.mu.Lock()
	var victim *instance
	for _, in := range d.instances {
		if in.state == instReady && !in.stopping {
			victim = in
			break
		}
	}
	d.mu.Unlock()
	if victim == nil || victim.job == nil {
		return false
	}
	return d.ep.cfg.Scheduler.Fail(victim.job.ID)
}

// Close releases all instances and stops the control loop.
func (d *Deployment) Close() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	instances := make([]*instance, 0, len(d.instances))
	for _, in := range d.instances {
		in.stopping = true
		instances = append(instances, in)
	}
	d.broadcastLocked()
	d.mu.Unlock()
	for _, in := range instances {
		if in.job != nil {
			d.ep.cfg.Scheduler.Cancel(in.job.ID)
		}
	}
}

// synthesizeText produces deterministic response text of n tokens.
func synthesizeText(prompt string, n int) string {
	if n <= 0 {
		return ""
	}
	seedWords := strings.Fields(prompt)
	if len(seedWords) == 0 {
		seedWords = []string{"analysis"}
	}
	var b strings.Builder
	b.Grow(n * 8)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(seedWords[i%len(seedWords)])
	}
	return b.String()
}
