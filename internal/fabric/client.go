package fabric

import (
	"context"
	"time"
)

// ClientConfig configures a Globus-Compute-SDK-style client.
type ClientConfig struct {
	Credentials Credentials
	// ResultMode selects futures (Optimization 1) or legacy 2 s polling.
	ResultMode ResultMode
	// PollInterval applies in ModePolling; default 2 s (the paper's
	// pre-optimization behaviour).
	PollInterval time.Duration
}

// Client is what the Inference Gateway holds: it forwards each request to
// the hub with the shared confidential client and waits on the returned
// future (§3.2.1).
type Client struct {
	hub *Hub
	cfg ClientConfig
}

// NewClient returns a client bound to a hub.
func NewClient(hub *Hub, cfg ClientConfig) *Client {
	if cfg.ResultMode == ModePolling && cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Second
	}
	return &Client{hub: hub, cfg: cfg}
}

// Submit sends a function invocation and returns a future.
func (c *Client) Submit(endpointID, function string, payload []byte) (*Future, error) {
	return c.hub.submit(c.cfg.Credentials, endpointID, function, payload, c.cfg.ResultMode, c.cfg.PollInterval)
}

// Run submits and waits (the gateway's per-request path).
func (c *Client) Run(ctx context.Context, endpointID, function string, payload []byte) ([]byte, error) {
	fut, err := c.Submit(endpointID, function, payload)
	if err != nil {
		return nil, err
	}
	return fut.Wait(ctx)
}

// Infer is a typed convenience around FnInfer.
func (c *Client) Infer(ctx context.Context, endpointID string, req InferRequest) (InferResult, error) {
	raw, err := c.Run(ctx, endpointID, FnInfer, MarshalPayload(req))
	if err != nil {
		return InferResult{}, err
	}
	var res InferResult
	if err := UnmarshalPayload(raw, &res); err != nil {
		return InferResult{}, err
	}
	return res, nil
}

// Embed is a typed convenience around FnEmbed.
func (c *Client) Embed(ctx context.Context, endpointID string, req EmbedRequest) (EmbedResult, error) {
	raw, err := c.Run(ctx, endpointID, FnEmbed, MarshalPayload(req))
	if err != nil {
		return EmbedResult{}, err
	}
	var res EmbedResult
	if err := UnmarshalPayload(raw, &res); err != nil {
		return EmbedResult{}, err
	}
	return res, nil
}

// QueuedTasks reports the hub's backlog (the Artillery test's observable).
func (c *Client) QueuedTasks() int { return c.hub.QueuedTasks() }
