package fabric

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/metrics"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/scheduler"
)

// Handler executes one pre-registered function invocation on an endpoint.
type Handler func(ctx context.Context, payload []byte) ([]byte, error)

// EndpointConfig configures a Globus-Compute-style endpoint deployed on one
// cluster by facility administrators.
type EndpointConfig struct {
	ID        string
	Scheduler *scheduler.Scheduler
	Catalog   *perfmodel.Catalog
	// PickupLatency models the endpoint's task-fetch cadence from the hub
	// (workers poll the cloud queue). Default 500 ms.
	PickupLatency time.Duration
}

// Endpoint executes functions on an HPC cluster. Inference and embedding
// handlers are provided by Deployments; arbitrary additional functions can
// be pre-registered by administrators.
type Endpoint struct {
	cfg EndpointConfig
	clk clock.Clock
	met *metrics.Registry

	mu          sync.Mutex
	handlers    map[string]Handler
	deployments map[string]*Deployment // model name -> deployment
	closed      bool
}

// NewEndpoint creates an endpoint bound to a cluster's scheduler.
func NewEndpoint(cfg EndpointConfig, clk clock.Clock, met *metrics.Registry) (*Endpoint, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("fabric: endpoint needs an ID")
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("fabric: endpoint %s needs a scheduler", cfg.ID)
	}
	if cfg.Catalog == nil {
		cfg.Catalog = perfmodel.Default
	}
	if cfg.PickupLatency == 0 {
		cfg.PickupLatency = 500 * time.Millisecond
	}
	if met == nil {
		met = metrics.NewRegistry()
	}
	ep := &Endpoint{
		cfg:         cfg,
		clk:         clk,
		met:         met,
		handlers:    make(map[string]Handler),
		deployments: make(map[string]*Deployment),
	}
	ep.handlers[FnInfer] = ep.handleInfer
	ep.handlers[FnEmbed] = ep.handleEmbed
	return ep, nil
}

// ID returns the endpoint identifier.
func (ep *Endpoint) ID() string { return ep.cfg.ID }

// ClusterName returns the backing cluster's name.
func (ep *Endpoint) ClusterName() string { return ep.cfg.Scheduler.Cluster().Name() }

// Scheduler exposes the endpoint's scheduler (for /jobs and federation).
func (ep *Endpoint) Scheduler() *scheduler.Scheduler { return ep.cfg.Scheduler }

// RegisterFunction pre-registers an administrator function.
func (ep *Endpoint) RegisterFunction(name string, h Handler) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.handlers[name] = h
}

func (ep *Endpoint) hasFunction(name string) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	_, ok := ep.handlers[name]
	return ok
}

// Deploy creates (or returns the existing) deployment for a model on this
// endpoint.
func (ep *Endpoint) Deploy(cfg DeploymentConfig) (*Deployment, error) {
	ep.mu.Lock()
	if d, ok := ep.deployments[cfg.Model]; ok {
		ep.mu.Unlock()
		return d, nil
	}
	ep.mu.Unlock()

	spec, err := ep.cfg.Catalog.Lookup(cfg.Model)
	if err != nil {
		return nil, err
	}
	d, err := newDeployment(ep, cfg, spec)
	if err != nil {
		return nil, err
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		d.Close()
		return nil, ErrEndpointShutdown
	}
	ep.deployments[cfg.Model] = d
	return d, nil
}

// Deployment returns the deployment for a model, if any.
func (ep *Endpoint) Deployment(model string) (*Deployment, bool) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	d, ok := ep.deployments[model]
	return d, ok
}

// Undeploy tears the model's deployment down — instances stop, queued work
// fails with ErrEndpointShutdown — and removes it from the endpoint, as when
// an endpoint process dies. A later Deploy of the same model starts from
// cold. Reports whether a deployment existed.
func (ep *Endpoint) Undeploy(model string) bool {
	ep.mu.Lock()
	d, ok := ep.deployments[model]
	delete(ep.deployments, model)
	ep.mu.Unlock()
	if ok {
		d.Close()
	}
	return ok
}

// Models lists deployed model names.
func (ep *Endpoint) Models() []string {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	names := make([]string, 0, len(ep.deployments))
	for m := range ep.deployments {
		names = append(names, m)
	}
	return names
}

// ModelStatuses reports per-model instance states for the /jobs endpoint.
func (ep *Endpoint) ModelStatuses() []ModelStatus {
	ep.mu.Lock()
	deployments := make([]*Deployment, 0, len(ep.deployments))
	for _, d := range ep.deployments {
		deployments = append(deployments, d)
	}
	ep.mu.Unlock()
	statuses := make([]ModelStatus, 0, len(deployments))
	for _, d := range deployments {
		statuses = append(statuses, d.Status())
	}
	return statuses
}

// execute runs a task (called from the hub's dispatch lane on a fresh
// goroutine) and reports the result through done.
func (ep *Endpoint) execute(task *Task, done func([]byte, error)) {
	ep.mu.Lock()
	h, ok := ep.handlers[task.Function]
	closed := ep.closed
	ep.mu.Unlock()
	if closed {
		done(nil, ErrEndpointShutdown)
		return
	}
	if !ok {
		done(nil, fmt.Errorf("%w: %s", ErrUnknownFunction, task.Function))
		return
	}
	if ep.cfg.PickupLatency > 0 {
		ep.clk.Sleep(ep.cfg.PickupLatency)
	}
	task.setStatus(TaskRunning)
	ep.met.Counter("endpoint_tasks").Inc()
	result, err := h(context.Background(), task.Payload)
	if err != nil {
		ep.met.Counter("endpoint_task_failures").Inc()
	}
	done(result, err)
}

func (ep *Endpoint) handleInfer(ctx context.Context, payload []byte) ([]byte, error) {
	var req InferRequest
	if err := UnmarshalPayload(payload, &req); err != nil {
		return nil, err
	}
	ep.mu.Lock()
	d, ok := ep.deployments[req.Model]
	ep.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fabric: endpoint %s does not host %s", ep.cfg.ID, req.Model)
	}
	res, err := d.Generate(ctx, req)
	if err != nil {
		return nil, err
	}
	return MarshalPayload(res), nil
}

func (ep *Endpoint) handleEmbed(ctx context.Context, payload []byte) ([]byte, error) {
	var req EmbedRequest
	if err := UnmarshalPayload(payload, &req); err != nil {
		return nil, err
	}
	ep.mu.Lock()
	d, ok := ep.deployments[req.Model]
	ep.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fabric: endpoint %s does not host %s", ep.cfg.ID, req.Model)
	}
	vectors, err := d.Embed(ctx, req.Inputs)
	if err != nil {
		return nil, err
	}
	return MarshalPayload(EmbedResult{Model: req.Model, Dim: d.spec.EmbedDim, Vectors: vectors}), nil
}

// Close shuts down all deployments.
func (ep *Endpoint) Close() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.closed = true
	deployments := make([]*Deployment, 0, len(ep.deployments))
	for _, d := range ep.deployments {
		deployments = append(deployments, d)
	}
	ep.mu.Unlock()
	for _, d := range deployments {
		d.Close()
	}
}
