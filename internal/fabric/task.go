// Package fabric is the Globus Compute substitute (§3.2): a
// Function-as-a-Service layer with a cloud-style Hub that validates and
// routes tasks, Endpoints deployed per cluster that execute pre-registered
// functions, and a client SDK returning futures. Endpoints acquire compute
// through the PBS-like scheduler, keep model instances hot, auto-scale, and
// restart failed instances — the §3.2.2 feature set.
package fabric

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Status is a task lifecycle state.
type Status int

const (
	TaskPending Status = iota
	TaskDispatched
	TaskRunning
	TaskSuccess
	TaskFailed
)

func (s Status) String() string {
	switch s {
	case TaskPending:
		return "pending"
	case TaskDispatched:
		return "dispatched"
	case TaskRunning:
		return "running"
	case TaskSuccess:
		return "success"
	case TaskFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Task is one function invocation traveling through the fabric.
type Task struct {
	ID         int64
	Function   string
	EndpointID string
	Payload    []byte

	SubmittedAt time.Time

	mu     sync.Mutex
	status Status
	result []byte
	err    error
}

// Status returns the task's current status.
func (t *Task) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

func (t *Task) setStatus(s Status) {
	t.mu.Lock()
	t.status = s
	t.mu.Unlock()
}

// ResultMode selects how clients learn about completions: the paper's
// Optimization 1 replaced 2-second status polling with futures.
type ResultMode int

const (
	// ModeFutures delivers results as soon as the hub relays them.
	ModeFutures ResultMode = iota
	// ModePolling observes results only on a fixed polling grid relative
	// to submission (the pre-optimization behaviour).
	ModePolling
)

// Future resolves to a task result.
type Future struct {
	task *Task
	done chan struct{}

	mode     ResultMode
	pollEach time.Duration
	sleeper  func(time.Duration)
	now      func() time.Time
}

// ErrTaskFailed wraps an execution failure.
var ErrTaskFailed = errors.New("fabric: task failed")

// Wait blocks for the result (honoring the polling grid when the client is
// configured in ModePolling).
func (f *Future) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-f.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if f.mode == ModePolling && f.pollEach > 0 {
		// The poller only notices completion at the next 2 s boundary
		// after the result landed.
		elapsed := f.now().Sub(f.task.SubmittedAt)
		ticks := elapsed / f.pollEach
		next := f.task.SubmittedAt.Add((ticks + 1) * f.pollEach)
		if wait := next.Sub(f.now()); wait > 0 {
			f.sleeper(wait)
		}
	}
	f.task.mu.Lock()
	defer f.task.mu.Unlock()
	if f.task.err != nil {
		return nil, f.task.err
	}
	return f.task.result, nil
}

// Done reports (non-blocking) whether the result landed.
func (f *Future) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Task exposes the underlying task (status inspection, tests).
func (f *Future) Task() *Task { return f.task }

func (f *Future) resolve(result []byte, err error) {
	f.task.mu.Lock()
	f.task.result = result
	f.task.err = err
	if err != nil {
		f.task.status = TaskFailed
	} else {
		f.task.status = TaskSuccess
	}
	f.task.mu.Unlock()
	close(f.done)
}
