package fabric

import (
	"encoding/json"
	"fmt"
	"time"
)

// Well-known function names pre-registered on endpoints. Only these can be
// invoked (§3.2.2 Security: "Only functions that are pre-registered by the
// administrators are permitted to be executed").
const (
	FnInfer = "first.infer"
	FnEmbed = "first.embed"
	FnBatch = "first.batch"
)

// InferRequest is the payload of an FnInfer task.
type InferRequest struct {
	Model     string `json:"model"`
	PromptTok int    `json:"prompt_tokens"`
	OutputTok int    `json:"max_tokens"`
	Prompt    string `json:"prompt,omitempty"`
	// WantText asks the serving side to synthesize response text; perf
	// harnesses leave it false and work with token counts only.
	WantText bool `json:"want_text,omitempty"`
}

// InferResult is the payload of an FnInfer result.
type InferResult struct {
	Model      string        `json:"model"`
	Text       string        `json:"text,omitempty"`
	PromptTok  int           `json:"prompt_tokens"`
	OutputTok  int           `json:"completion_tokens"`
	QueueWait  time.Duration `json:"queue_wait_ns"`
	ServeTime  time.Duration `json:"serve_time_ns"`
	InstanceID int           `json:"instance_id"`
}

// EmbedRequest is the payload of an FnEmbed task.
type EmbedRequest struct {
	Model  string   `json:"model"`
	Inputs []string `json:"inputs"`
}

// EmbedResult is the payload of an FnEmbed result.
type EmbedResult struct {
	Model   string      `json:"model"`
	Dim     int         `json:"dim"`
	Vectors [][]float32 `json:"vectors"`
}

// MarshalPayload encodes any payload type for the fabric.
func MarshalPayload(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("fabric: payload marshal: %v", err)) // payload types are all marshalable
	}
	return b
}

// UnmarshalPayload decodes a payload into v.
func UnmarshalPayload(data []byte, v interface{}) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("fabric: payload unmarshal: %w", err)
	}
	return nil
}
