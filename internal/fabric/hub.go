package fabric

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/metrics"
)

// Hub errors.
var (
	ErrBadCredentials    = errors.New("fabric: invalid confidential client credentials")
	ErrUnknownEndpoint   = errors.New("fabric: unknown endpoint")
	ErrUnknownFunction   = errors.New("fabric: function not registered on endpoint")
	ErrHubQueueFull      = errors.New("fabric: hub task queue full")
	ErrEndpointShutdown  = errors.New("fabric: endpoint shut down")
	ErrConnectionPending = errors.New("fabric: endpoint connection not established")
	// ErrUnauthorized is an endpoint-side credential rejection (the
	// endpoint's own auth disagrees with the gateway's cached view); the
	// gateway reacts by rechecking its token cache, not by failing over.
	ErrUnauthorized = errors.New("fabric: endpoint rejected credentials")
)

// HubConfig models the cloud service's behaviour.
type HubConfig struct {
	// SubmitLatency is the client→hub round trip per task submission.
	SubmitLatency time.Duration
	// DispatchCost is the serialized per-task routing cost inside the hub
	// (this lane caps fabric throughput — the Fig. 4 ceiling).
	DispatchCost time.Duration
	// RelayCost is the serialized per-result relay cost back to clients.
	RelayCost time.Duration
	// ConnectLatency is the cost of establishing a client↔endpoint
	// channel; cached per (client, endpoint) pair unless caching is
	// disabled (Optimization 2's second half).
	ConnectLatency time.Duration
	// CacheConnections enables connection reuse (default true via
	// DefaultHubConfig).
	CacheConnections bool
	// MaxQueuedTasks bounds tasks buffered at the hub (paper's Artillery
	// test observed >8000 queued; default 16384).
	MaxQueuedTasks int
}

// DefaultHubConfig returns the calibrated hub model.
func DefaultHubConfig() HubConfig {
	return HubConfig{
		SubmitLatency:    250 * time.Millisecond,
		DispatchCost:     20 * time.Millisecond,
		RelayCost:        15 * time.Millisecond,
		ConnectLatency:   900 * time.Millisecond,
		CacheConnections: true,
		MaxQueuedTasks:   16384,
	}
}

// Hub is the cloud-hosted routing service. All traffic between gateway and
// endpoints flows through it; endpoints authenticate with the shared
// confidential client (§3.2.3), so users can never reach endpoints directly.
type Hub struct {
	clk clock.Clock
	cfg HubConfig
	met *metrics.Registry

	clientID     string
	clientSecret string

	mu          sync.Mutex
	endpoints   map[string]*Endpoint
	connections map[string]bool // client+endpoint connection cache
	queued      int
	nextTaskID  int64

	dispatchCh chan *dispatchItem
	relayCh    chan *relayItem
	stop       chan struct{}
	stopOnce   sync.Once
}

type dispatchItem struct {
	task   *Task
	future *Future
}

type relayItem struct {
	future *Future
	result []byte
	err    error
}

// NewHub creates a hub bound to the administrators' confidential client.
func NewHub(clk clock.Clock, cfg HubConfig, clientID, clientSecret string, met *metrics.Registry) *Hub {
	if met == nil {
		met = metrics.NewRegistry()
	}
	h := &Hub{
		clk: clk, cfg: cfg, met: met,
		clientID: clientID, clientSecret: clientSecret,
		endpoints:   make(map[string]*Endpoint),
		connections: make(map[string]bool),
		dispatchCh:  make(chan *dispatchItem, maxInt(cfg.MaxQueuedTasks, 1024)),
		relayCh:     make(chan *relayItem, maxInt(cfg.MaxQueuedTasks, 1024)),
		stop:        make(chan struct{}),
	}
	go h.dispatchLoop()
	go h.relayLoop()
	return h
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RegisterEndpoint attaches an endpoint (administrator action).
func (h *Hub) RegisterEndpoint(ep *Endpoint) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.endpoints[ep.ID()] = ep
}

// Endpoints lists registered endpoint IDs.
func (h *Hub) Endpoints() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	ids := make([]string, 0, len(h.endpoints))
	for id := range h.endpoints {
		ids = append(ids, id)
	}
	return ids
}

// QueuedTasks reports tasks accepted but not yet handed to an endpoint.
func (h *Hub) QueuedTasks() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.queued
}

// submit validates and accepts a task from a client SDK. The returned
// future resolves when the endpoint's result is relayed back.
func (h *Hub) submit(creds Credentials, endpointID, function string, payload []byte, mode ResultMode, pollEach time.Duration) (*Future, error) {
	if creds.ClientID != h.clientID || creds.ClientSecret != h.clientSecret {
		return nil, ErrBadCredentials
	}
	h.mu.Lock()
	ep, ok := h.endpoints[endpointID]
	if !ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownEndpoint, endpointID)
	}
	if !ep.hasFunction(function) {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: %s on %s", ErrUnknownFunction, function, endpointID)
	}
	if h.cfg.MaxQueuedTasks > 0 && h.queued >= h.cfg.MaxQueuedTasks {
		h.mu.Unlock()
		return nil, ErrHubQueueFull
	}
	needConnect := false
	connKey := creds.ClientID + "→" + endpointID
	if !h.cfg.CacheConnections || !h.connections[connKey] {
		needConnect = true
		if h.cfg.CacheConnections {
			h.connections[connKey] = true
		}
	}
	h.nextTaskID++
	task := &Task{
		ID:          h.nextTaskID,
		Function:    function,
		EndpointID:  endpointID,
		Payload:     payload,
		SubmittedAt: h.clk.Now(),
		status:      TaskPending,
	}
	h.queued++
	h.mu.Unlock()

	// Charge the submission round trip (and connection setup when not
	// cached) on the caller's goroutine — this is latency, not a
	// throughput bottleneck.
	if needConnect && h.cfg.ConnectLatency > 0 {
		h.clk.Sleep(h.cfg.ConnectLatency)
	}
	if h.cfg.SubmitLatency > 0 {
		h.clk.Sleep(h.cfg.SubmitLatency)
	}

	future := &Future{
		task:     task,
		done:     make(chan struct{}),
		mode:     mode,
		pollEach: pollEach,
		sleeper:  h.clk.Sleep,
		now:      h.clk.Now,
	}
	h.met.Counter("hub_tasks_submitted").Inc()
	select {
	case h.dispatchCh <- &dispatchItem{task: task, future: future}:
	default:
		h.mu.Lock()
		h.queued--
		h.mu.Unlock()
		return nil, ErrHubQueueFull
	}
	return future, nil
}

// dispatchLoop is the serialized routing lane: its per-task cost is the
// fabric-wide ceiling ("our overall scaling is currently limited by the
// ability of Globus Compute to scale and route requests", §5.3.2).
func (h *Hub) dispatchLoop() {
	for {
		select {
		case <-h.stop:
			return
		case item := <-h.dispatchCh:
			if h.cfg.DispatchCost > 0 {
				h.clk.Sleep(h.cfg.DispatchCost)
			}
			h.mu.Lock()
			ep := h.endpoints[item.task.EndpointID]
			h.queued--
			h.mu.Unlock()
			item.task.setStatus(TaskDispatched)
			if ep == nil {
				h.finish(item.future, nil, ErrUnknownEndpoint)
				continue
			}
			task := item.task
			fut := item.future
			go ep.execute(task, func(result []byte, err error) {
				h.finish(fut, result, err)
			})
		}
	}
}

// finish routes a result through the serialized relay lane.
func (h *Hub) finish(fut *Future, result []byte, err error) {
	select {
	case h.relayCh <- &relayItem{future: fut, result: result, err: err}:
	case <-h.stop:
		fut.resolve(nil, ErrEndpointShutdown)
	}
}

func (h *Hub) relayLoop() {
	for {
		select {
		case <-h.stop:
			return
		case item := <-h.relayCh:
			if h.cfg.RelayCost > 0 {
				h.clk.Sleep(h.cfg.RelayCost)
			}
			if item.err != nil {
				h.met.Counter("hub_tasks_failed").Inc()
			} else {
				h.met.Counter("hub_tasks_completed").Inc()
			}
			item.future.resolve(item.result, item.err)
		}
	}
}

// Close stops the hub's routing lanes.
func (h *Hub) Close() {
	h.stopOnce.Do(func() { close(h.stop) })
}

// Credentials is the confidential client identity shared by the gateway SDK
// and the endpoints.
type Credentials struct {
	ClientID     string
	ClientSecret string
}
