package fabric

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/cluster"
	"github.com/argonne-first/first/internal/metrics"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/scheduler"
)

type testFabric struct {
	clk   clock.Clock
	hub   *Hub
	ep    *Endpoint
	sched *scheduler.Scheduler
	cl    *cluster.Cluster
}

func newTestFabric(t *testing.T, hubCfg HubConfig, nodes int) *testFabric {
	return newTestFabricScaled(t, hubCfg, nodes, 20000)
}

// newTestFabricScaled lets timing-sensitive tests pick a slower clock:
// at 20000× a few wall milliseconds of goroutine scheduling skew (e.g.
// under -race) becomes minutes of virtual time, which can drain a queue
// the test needs to observe deep.
func newTestFabricScaled(t *testing.T, hubCfg HubConfig, nodes int, factor int64) *testFabric {
	t.Helper()
	clk := clock.NewScaled(factor)
	cl := cluster.New("testcl", nodes, 8, perfmodel.A100_40)
	sched := scheduler.New(cl, clk, scheduler.Config{Prologue: 5 * time.Second})
	ep, err := NewEndpoint(EndpointConfig{
		ID:            "ep-test",
		Scheduler:     sched,
		PickupLatency: 100 * time.Millisecond,
	}, clk, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if hubCfg == (HubConfig{}) {
		hubCfg = HubConfig{
			SubmitLatency: time.Millisecond, DispatchCost: time.Millisecond,
			RelayCost: time.Millisecond, CacheConnections: true, MaxQueuedTasks: 1024,
		}
	}
	hub := NewHub(clk, hubCfg, "client-id", "client-secret", metrics.NewRegistry())
	hub.RegisterEndpoint(ep)
	t.Cleanup(func() {
		ep.Close()
		hub.Close()
		sched.Close()
	})
	return &testFabric{clk: clk, hub: hub, ep: ep, sched: sched, cl: cl}
}

func (f *testFabric) client() *Client {
	return NewClient(f.hub, ClientConfig{
		Credentials: Credentials{ClientID: "client-id", ClientSecret: "client-secret"},
	})
}

func (f *testFabric) deploy(t *testing.T, cfg DeploymentConfig) *Deployment {
	t.Helper()
	d, err := f.ep.Deploy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestHubCredentialValidation(t *testing.T) {
	f := newTestFabric(t, HubConfig{}, 2)
	bad := NewClient(f.hub, ClientConfig{Credentials: Credentials{ClientID: "x", ClientSecret: "y"}})
	_, err := bad.Submit("ep-test", FnInfer, nil)
	if !errors.Is(err, ErrBadCredentials) {
		t.Errorf("err = %v, want bad credentials (§3.2.3: users cannot reach endpoints directly)", err)
	}
}

func TestHubUnknownEndpointAndFunction(t *testing.T) {
	f := newTestFabric(t, HubConfig{}, 2)
	c := f.client()
	if _, err := c.Submit("ep-nowhere", FnInfer, nil); !errors.Is(err, ErrUnknownEndpoint) {
		t.Errorf("err = %v", err)
	}
	if _, err := c.Submit("ep-test", "rm -rf /", nil); !errors.Is(err, ErrUnknownFunction) {
		t.Errorf("unregistered function err = %v (§3.2.2 security)", err)
	}
}

func TestInferThroughFabric(t *testing.T) {
	f := newTestFabric(t, HubConfig{}, 2)
	f.deploy(t, DeploymentConfig{Model: perfmodel.Llama8B, MinInstances: 1})
	c := f.client()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := c.Infer(ctx, "ep-test", InferRequest{
		Model: perfmodel.Llama8B, PromptTok: 100, OutputTok: 32, WantText: true, Prompt: "hello fabric",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputTok != 32 || res.Model != perfmodel.Llama8B {
		t.Errorf("result = %+v", res)
	}
	if res.Text == "" {
		t.Error("WantText ignored")
	}
	if res.ServeTime <= 0 {
		t.Error("serve time missing")
	}
}

func TestRegisteredAdminFunction(t *testing.T) {
	f := newTestFabric(t, HubConfig{}, 2)
	f.ep.RegisterFunction("admin.echo", func(_ context.Context, payload []byte) ([]byte, error) {
		return payload, nil
	})
	c := f.client()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := c.Run(ctx, "ep-test", "admin.echo", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ping" {
		t.Errorf("echo = %q", out)
	}
}

func TestColdStartOnDemand(t *testing.T) {
	f := newTestFabric(t, HubConfig{}, 2)
	d := f.deploy(t, DeploymentConfig{Model: perfmodel.Llama8B, MinInstances: 0, MaxInstances: 1})
	if d.InstanceCount() != 0 {
		t.Fatalf("scaled-to-zero deployment has %d instances", d.InstanceCount())
	}
	c := f.client()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := c.Infer(ctx, "ep-test", InferRequest{Model: perfmodel.Llama8B, PromptTok: 10, OutputTok: 8}); err != nil {
		t.Fatal(err)
	}
	if d.Stats().ColdStarts == 0 {
		t.Error("cold start not counted")
	}
	if d.ReadyCount() != 1 {
		t.Errorf("ready = %d after cold start", d.ReadyCount())
	}
}

func TestHotNodeIdleRelease(t *testing.T) {
	f := newTestFabric(t, HubConfig{}, 2)
	d := f.deploy(t, DeploymentConfig{
		Model:           perfmodel.Llama8B,
		MinInstances:    0,
		MaxInstances:    1,
		HotIdleTimeout:  30 * time.Second, // virtual
		AutoScalePeriod: 5 * time.Second,
	})
	c := f.client()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := c.Infer(ctx, "ep-test", InferRequest{Model: perfmodel.Llama8B, PromptTok: 10, OutputTok: 8}); err != nil {
		t.Fatal(err)
	}
	// Wait (in scaled wall time) for the idle timeout to release the node.
	deadline := time.Now().Add(10 * time.Second)
	for d.InstanceCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("hot node never released; instances=%d", d.InstanceCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if d.Stats().ScaleDowns == 0 {
		t.Error("scale-down not counted")
	}
	if f.cl.Status().FreeGPUs != 16 {
		t.Errorf("GPUs not returned: %d", f.cl.Status().FreeGPUs)
	}
}

func TestAutoScaleUpUnderLoad(t *testing.T) {
	// 200× clock (not the usual 20000×): the test needs the 200 requests to
	// land while earlier ones still run, so wall-clock goroutine-spawn skew
	// (heavy under -race) must not turn into queue-draining virtual hours.
	f := newTestFabricScaled(t, HubConfig{}, 4, 200)
	d := f.deploy(t, DeploymentConfig{
		Model:           perfmodel.Llama8B,
		MinInstances:    1,
		MaxInstances:    3,
		ScaleUpDepth:    20,
		AutoScalePeriod: 2 * time.Second,
	})
	c := f.client()
	ctx, cancel := context.WithTimeout(context.Background(), 1200*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Infer(ctx, "ep-test", InferRequest{Model: perfmodel.Llama8B, PromptTok: 50, OutputTok: 1500})
		}()
	}
	wg.Wait()
	if d.Stats().ScaleUps == 0 {
		t.Errorf("no scale-ups under saturation: %+v", d.Stats())
	}
	if d.InstanceCount() < 2 {
		t.Errorf("instances = %d, want ≥ 2", d.InstanceCount())
	}
}

func TestMinInstancesRestartAfterFailure(t *testing.T) {
	f := newTestFabric(t, HubConfig{}, 2)
	d := f.deploy(t, DeploymentConfig{Model: perfmodel.Llama8B, MinInstances: 1, MaxInstances: 1})
	deadline := time.Now().Add(10 * time.Second)
	for d.ReadyCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("initial instance never ready")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !d.InjectFailure() {
		t.Fatal("InjectFailure found nothing")
	}
	deadline = time.Now().Add(10 * time.Second)
	for d.ReadyCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("instance not restarted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if d.Stats().Restarts == 0 {
		t.Error("restart not counted")
	}
}

func TestDeploymentStatusStates(t *testing.T) {
	f := newTestFabric(t, HubConfig{}, 2)
	d := f.deploy(t, DeploymentConfig{Model: perfmodel.Llama8B, MinInstances: 0, MaxInstances: 1})
	if st := d.Status(); st.State != "cold" {
		t.Errorf("initial state = %s", st.State)
	}
	c := f.client()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	c.Infer(ctx, "ep-test", InferRequest{Model: perfmodel.Llama8B, PromptTok: 5, OutputTok: 5})
	if st := d.Status(); st.State != "running" || st.Running != 1 {
		t.Errorf("warm state = %+v", st)
	}
	sts := f.ep.ModelStatuses()
	if len(sts) != 1 || sts[0].Endpoint != "ep-test" || sts[0].Cluster != "testcl" {
		t.Errorf("endpoint statuses = %+v", sts)
	}
}

func TestPollingModeWorksEndToEnd(t *testing.T) {
	f := newTestFabric(t, HubConfig{}, 2)
	f.deploy(t, DeploymentConfig{Model: perfmodel.Llama8B, MinInstances: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	polling := NewClient(f.hub, ClientConfig{
		Credentials: Credentials{ClientID: "client-id", ClientSecret: "client-secret"},
		ResultMode:  ModePolling, // default 2s interval, the pre-Opt.1 cadence
	})
	payload := MarshalPayload(InferRequest{Model: perfmodel.Llama8B, PromptTok: 10, OutputTok: 4})
	if _, err := polling.Run(ctx, "ep-test", FnInfer, payload); err != nil {
		t.Fatal(err)
	}
}

func TestFuturePollingGridDeterministic(t *testing.T) {
	// Unit-level check of Optimization 1's ablation semantics: a polling
	// client only observes the result on the next 2 s boundary after it
	// lands, measured from submission.
	base := time.Date(2025, 10, 15, 0, 0, 0, 0, time.UTC)
	now := base.Add(2700 * time.Millisecond) // result landed 2.7s after submit
	var slept time.Duration
	fut := &Future{
		task:     &Task{SubmittedAt: base},
		done:     make(chan struct{}),
		mode:     ModePolling,
		pollEach: 2 * time.Second,
		sleeper:  func(d time.Duration) { slept += d; now = now.Add(d) },
		now:      func() time.Time { return now },
	}
	fut.resolve([]byte("ok"), nil)
	out, err := fut.Wait(context.Background())
	if err != nil || string(out) != "ok" {
		t.Fatalf("wait: %v %q", err, out)
	}
	// Next grid point after 2.7s is 4.0s → extra 1.3s of waiting.
	if slept != 1300*time.Millisecond {
		t.Errorf("poll-grid sleep = %v, want 1.3s", slept)
	}

	// Futures mode never adds observation delay.
	var futuresSlept time.Duration
	f2 := &Future{
		task:    &Task{SubmittedAt: base},
		done:    make(chan struct{}),
		mode:    ModeFutures,
		sleeper: func(d time.Duration) { futuresSlept += d },
		now:     func() time.Time { return now },
	}
	f2.resolve(nil, nil)
	f2.Wait(context.Background())
	if futuresSlept != 0 {
		t.Errorf("futures mode slept %v", futuresSlept)
	}
}

func TestHubQueueFull(t *testing.T) {
	f := newTestFabric(t, HubConfig{
		SubmitLatency: 0, DispatchCost: time.Hour, // dispatch lane jammed (virtual)
		RelayCost: time.Millisecond, MaxQueuedTasks: 4,
	}, 2)
	f.deploy(t, DeploymentConfig{Model: perfmodel.Llama8B, MinInstances: 1})
	c := f.client()
	var full int
	for i := 0; i < 20; i++ {
		if _, err := c.Submit("ep-test", FnInfer, MarshalPayload(InferRequest{Model: perfmodel.Llama8B})); errors.Is(err, ErrHubQueueFull) {
			full++
		}
	}
	if full == 0 {
		t.Error("hub queue bound never enforced")
	}
}

func TestEndpointCloseFailsTasks(t *testing.T) {
	f := newTestFabric(t, HubConfig{}, 2)
	f.deploy(t, DeploymentConfig{Model: perfmodel.Llama8B, MinInstances: 1})
	c := f.client()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// Warm it up, then close the endpoint and submit again.
	c.Infer(ctx, "ep-test", InferRequest{Model: perfmodel.Llama8B, PromptTok: 5, OutputTok: 5})
	f.ep.Close()
	_, err := c.Infer(ctx, "ep-test", InferRequest{Model: perfmodel.Llama8B, PromptTok: 5, OutputTok: 5})
	if err == nil {
		t.Error("closed endpoint served a request")
	}
}

func TestDeployUnknownModel(t *testing.T) {
	f := newTestFabric(t, HubConfig{}, 2)
	if _, err := f.ep.Deploy(DeploymentConfig{Model: "no/such"}); err == nil {
		t.Error("unknown model deployed")
	}
}

func TestDeployIdempotent(t *testing.T) {
	f := newTestFabric(t, HubConfig{}, 2)
	d1 := f.deploy(t, DeploymentConfig{Model: perfmodel.Llama8B, MinInstances: 0})
	d2 := f.deploy(t, DeploymentConfig{Model: perfmodel.Llama8B, MinInstances: 0})
	if d1 != d2 {
		t.Error("re-deploying the same model should return the existing deployment")
	}
	models := f.ep.Models()
	if len(models) != 1 {
		t.Errorf("models = %v", models)
	}
}

func TestEmbedThroughFabric(t *testing.T) {
	f := newTestFabric(t, HubConfig{}, 2)
	f.deploy(t, DeploymentConfig{Model: perfmodel.NVEmbed, MinInstances: 1})
	c := f.client()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := c.Embed(ctx, "ep-test", EmbedRequest{Model: perfmodel.NVEmbed, Inputs: []string{"a", "b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vectors) != 3 || res.Dim != 4096 {
		t.Errorf("embed result shape %dx%d", len(res.Vectors), res.Dim)
	}
}

func TestTaskStatusProgression(t *testing.T) {
	f := newTestFabric(t, HubConfig{}, 2)
	f.deploy(t, DeploymentConfig{Model: perfmodel.Llama8B, MinInstances: 1})
	c := f.client()
	fut, err := c.Submit("ep-test", FnInfer, MarshalPayload(InferRequest{Model: perfmodel.Llama8B, PromptTok: 5, OutputTok: 5}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := fut.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if !fut.Done() {
		t.Error("future not done after Wait")
	}
	if st := fut.Task().Status(); st != TaskSuccess {
		t.Errorf("status = %v", st)
	}
}

func TestPayloadRoundtrip(t *testing.T) {
	in := InferRequest{Model: "m", PromptTok: 5, OutputTok: 6, Prompt: "p", WantText: true}
	raw := MarshalPayload(in)
	var out InferRequest
	if err := UnmarshalPayload(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("roundtrip: %+v != %+v", out, in)
	}
	if err := UnmarshalPayload([]byte("{broken"), &out); err == nil {
		t.Error("broken payload accepted")
	}
}
