package experiments

import (
	"time"

	"github.com/argonne-first/first/internal/desmodel"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/sim"
	"github.com/argonne-first/first/internal/workload"
)

// AblationRow compares a configuration with an optimization off vs on.
type AblationRow struct {
	Config string
	M      desmodel.Metrics
	// HubQueuePeak is meaningful for the Artillery run (Opt. 3).
	HubQueuePeak int
}

// RunOpt1Polling reproduces Optimization 1 (§5.3.1): 2 s status polling vs
// concurrent futures at a moderate request rate; polling re-adds up to 2 s
// of observation delay per request.
func RunOpt1Polling(seed int64) []AblationRow {
	model := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	trace := workload.Generate(500, workload.ShareGPT(), workload.Poisson(2), seed)

	run := func(label string, p desmodel.FirstParams) AblationRow {
		k := sim.NewKernel()
		sys := desmodel.NewFirstSystem(k, p, model, perfmodel.A100_40, 1, nil)
		reqs := driveOpenLoop(k, trace, sys)
		k.Run(0)
		return AblationRow{Config: label, M: desmodel.Collect(reqs)}
	}
	polling := desmodel.DefaultFirstParams()
	polling.PollInterval = 2 * time.Second
	return []AblationRow{
		run("polling-2s (before Opt.1)", polling),
		run("futures (after Opt.1)", desmodel.DefaultFirstParams()),
	}
}

// RunOpt2AuthCache reproduces Optimization 2: per-request Globus token
// introspection + connection setup (≈2 s, and rate-limited service-side)
// versus cached credentials.
func RunOpt2AuthCache(seed int64) []AblationRow {
	model := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	trace := workload.Generate(500, workload.ShareGPT(), workload.Poisson(5), seed)

	run := func(label string, p desmodel.FirstParams) AblationRow {
		k := sim.NewKernel()
		sys := desmodel.NewFirstSystem(k, p, model, perfmodel.A100_40, 1, nil)
		reqs := driveOpenLoop(k, trace, sys)
		k.Run(0)
		return AblationRow{Config: label, M: desmodel.Collect(reqs)}
	}
	uncached := desmodel.DefaultFirstParams()
	uncached.AuthIntrospect = 2 * time.Second
	uncached.AuthRatePerSec = 4 // Globus-side introspection rate limit binds below the offered 5 req/s
	return []AblationRow{
		run("introspect-per-request (before Opt.2)", uncached),
		run("cached-introspection (after Opt.2)", desmodel.DefaultFirstParams()),
	}
}

// RunOpt3AsyncGateway reproduces Optimization 3's Artillery experiment:
// 100 incoming req/s for 300 s against (a) the legacy synchronous gateway
// with nine workers and (b) the async gateway, which keeps offloading tasks
// to the fabric (">8000 inference tasks could be queued at Globus") and
// raises response throughput by roughly a factor of 20 on a single node.
func RunOpt3AsyncGateway(seed int64) []AblationRow {
	model := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	const (
		rate    = 100.0
		seconds = 300
	)
	trace := workload.Generate(int(rate)*seconds, workload.ShareGPTShort(), workload.Poisson(rate), seed)

	run := func(label string, p desmodel.FirstParams) AblationRow {
		k := sim.NewKernel()
		sys := desmodel.NewFirstSystem(k, p, model, perfmodel.A100_40, 1, nil)
		reqs := driveOpenLoop(k, trace, sys)
		// Run only for the Artillery window; the sync gateway would take
		// hours to drain its backlog.
		k.Run(time.Duration(seconds) * time.Second)
		m := desmodel.Collect(onlyObserved(reqs, time.Duration(seconds)*time.Second))
		// Tasks in flight past the gateway at window end are "queued at
		// Globus"; the sync gateway instead queues them in its own backlog.
		return AblationRow{Config: label, M: m, HubQueuePeak: sys.InFlight() + sys.MaxBacklog()}
	}
	sync := desmodel.DefaultFirstParams()
	sync.SyncWorkers = 9
	async := desmodel.DefaultFirstParams()
	async.Window = 0 // fully asynchronous offload: queueing moves to the fabric
	return []AblationRow{
		run("sync-django-9-workers (before Opt.3)", sync),
		run("async-django-ninja (after Opt.3)", async),
	}
}

// onlyObserved filters requests completed within the window so throughput
// reflects the measurement interval.
func onlyObserved(reqs []*desmodel.Req, window time.Duration) []*desmodel.Req {
	var out []*desmodel.Req
	for _, r := range reqs {
		if r.ObservedAt > 0 && r.ObservedAt <= window {
			out = append(out, r)
		}
	}
	return out
}
