package experiments

import (
	"time"

	"github.com/argonne-first/first/internal/desmodel"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/workload"
)

// AblationRow compares a configuration with an optimization off vs on.
type AblationRow struct {
	Config string
	M      desmodel.Metrics
	// HubQueuePeak is meaningful for the Artillery run (Opt. 3).
	HubQueuePeak int
}

// RunOpt1Polling reproduces Optimization 1 (§5.3.1): 2 s status polling vs
// concurrent futures at a moderate request rate; polling re-adds up to 2 s
// of observation delay per request.
func RunOpt1Polling(seed int64) []AblationRow { return RunOpt1PollingOn(Parallel, seed) }

// RunOpt1PollingOn runs the Optimization 1 ablation, one fleet cell per arm.
func RunOpt1PollingOn(f Fleet, seed int64) []AblationRow {
	model := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	polling := desmodel.DefaultFirstParams()
	polling.PollInterval = 2 * time.Second
	arms := []ablationArm{
		{"polling-2s (before Opt.1)", polling},
		{"futures (after Opt.1)", desmodel.DefaultFirstParams()},
	}
	return runAblationArms(f, arms, func() []workload.Request {
		return workload.Generate(500, workload.ShareGPT(), workload.Poisson(2), seed)
	}, model, 0)
}

// ablationArm is one configuration of a before/after comparison.
type ablationArm struct {
	label  string
	params desmodel.FirstParams
}

// runAblationArms executes each arm as an independent fleet cell. genTrace
// is called per cell (workload synthesis is deterministic in the seed, so
// regenerating is cheaper than sharing across goroutines); window > 0 bounds
// the run and filters completions to the measurement interval.
func runAblationArms(f Fleet, arms []ablationArm, genTrace func() []workload.Request, model perfmodel.ModelSpec, window time.Duration) []AblationRow {
	rows := make([]AblationRow, len(arms))
	f.RunArena(len(arms), func(i int, a *desmodel.Arena) {
		k := a.Begin()
		sys := desmodel.NewFirstSystemIn(a, arms[i].params, model, perfmodel.A100_40, 1, nil)
		reqs := driveOpenLoop(k, genTrace(), sys)
		if window > 0 {
			k.Run(window)
			m := desmodel.Collect(onlyObserved(reqs, window))
			rows[i] = AblationRow{Config: arms[i].label, M: m, HubQueuePeak: sys.InFlight() + sys.MaxBacklog()}
			return
		}
		k.Run(0)
		rows[i] = AblationRow{Config: arms[i].label, M: desmodel.Collect(reqs)}
	})
	return rows
}

// RunOpt2AuthCache reproduces Optimization 2: per-request Globus token
// introspection + connection setup (≈2 s, and rate-limited service-side)
// versus cached credentials.
func RunOpt2AuthCache(seed int64) []AblationRow { return RunOpt2AuthCacheOn(Parallel, seed) }

// RunOpt2AuthCacheOn runs the Optimization 2 ablation, one fleet cell per arm.
func RunOpt2AuthCacheOn(f Fleet, seed int64) []AblationRow {
	model := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	uncached := desmodel.DefaultFirstParams()
	uncached.AuthIntrospect = 2 * time.Second
	uncached.AuthRatePerSec = 4 // Globus-side introspection rate limit binds below the offered 5 req/s
	arms := []ablationArm{
		{"introspect-per-request (before Opt.2)", uncached},
		{"cached-introspection (after Opt.2)", desmodel.DefaultFirstParams()},
	}
	return runAblationArms(f, arms, func() []workload.Request {
		return workload.Generate(500, workload.ShareGPT(), workload.Poisson(5), seed)
	}, model, 0)
}

// RunOpt3AsyncGateway reproduces Optimization 3's Artillery experiment:
// 100 incoming req/s for 300 s against (a) the legacy synchronous gateway
// with nine workers and (b) the async gateway, which keeps offloading tasks
// to the fabric (">8000 inference tasks could be queued at Globus") and
// raises response throughput by roughly a factor of 20 on a single node.
func RunOpt3AsyncGateway(seed int64) []AblationRow { return RunOpt3AsyncGatewayOn(Parallel, seed) }

// RunOpt3AsyncGatewayOn runs the Optimization 3 ablation, one fleet cell per
// arm. The run is bounded to the Artillery window — the sync gateway would
// take hours to drain its backlog — and tasks in flight past the gateway at
// window end are "queued at Globus" (the sync gateway instead queues them in
// its own backlog).
func RunOpt3AsyncGatewayOn(f Fleet, seed int64) []AblationRow {
	model := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	const (
		rate    = 100.0
		seconds = 300
	)
	sync := desmodel.DefaultFirstParams()
	sync.SyncWorkers = 9
	async := desmodel.DefaultFirstParams()
	async.Window = 0 // fully asynchronous offload: queueing moves to the fabric
	arms := []ablationArm{
		{"sync-django-9-workers (before Opt.3)", sync},
		{"async-django-ninja (after Opt.3)", async},
	}
	return runAblationArms(f, arms, func() []workload.Request {
		return workload.Generate(int(rate)*seconds, workload.ShareGPTShort(), workload.Poisson(rate), seed)
	}, model, time.Duration(seconds)*time.Second)
}

// onlyObserved filters requests completed within the window so throughput
// reflects the measurement interval.
func onlyObserved(reqs []*desmodel.Req, window time.Duration) []*desmodel.Req {
	var out []*desmodel.Req
	for _, r := range reqs {
		if r.ObservedAt > 0 && r.ObservedAt <= window {
			out = append(out, r)
		}
	}
	return out
}
