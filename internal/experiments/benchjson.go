package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// BenchSchema versions the BENCH_<n>.json layout. v2 adds the micro
// section (substrate ns/op + allocs/op) that `make bench-diff` guards.
const BenchSchema = "first-bench/v2"

// BenchExperiment is one experiment's entry in a bench record: how long the
// regeneration took and its headline measurements (the same series
// bench_test.go reports as custom benchmark metrics).
type BenchExperiment struct {
	WallMS  float64            `json:"wall_ms"`
	Metrics map[string]float64 `json:"metrics"`
}

// BenchRecord is the machine-readable output of one first-bench run. Each
// run appends a BENCH_<n>.json to the repository so the perf trajectory of
// the substrate accumulates across PRs.
type BenchRecord struct {
	Schema      string                     `json:"schema"`
	UnixTime    int64                      `json:"unix_time"`
	GoVersion   string                     `json:"go_version"`
	GOOS        string                     `json:"goos"`
	GOARCH      string                     `json:"goarch"`
	MaxProcs    int                        `json:"maxprocs"`
	Seed        int64                      `json:"seed"`
	Workers     int                        `json:"workers"` // 0 = GOMAXPROCS
	WallMS      float64                    `json:"wall_ms"`
	Experiments map[string]BenchExperiment `json:"experiments"`
	// Micro holds substrate micro-benchmarks (per-op cost + allocations);
	// absent in v1 records, which bench-diff tolerates.
	Micro map[string]MicroBench `json:"micro,omitempty"`
}

// CollectBench regenerates every experiment on f and returns the record.
func CollectBench(f Fleet, seed int64) BenchRecord {
	rec := BenchRecord{
		Schema: BenchSchema,
		//firstlint:allow det the record's timestamp is provenance metadata, not simulation state
		UnixTime:    time.Now().Unix(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		MaxProcs:    runtime.GOMAXPROCS(0),
		Seed:        seed,
		Workers:     f.Workers,
		Experiments: make(map[string]BenchExperiment),
	}
	start := time.Now() //firstlint:allow det wall-clock benchmark timing is the product this file exists to measure
	// Each experiment regenerates benchReps times and records the fastest
	// wall: experiment outputs are deterministic, so the repetitions differ
	// only in scheduler/GC noise, and the minimum is the standard
	// noise-robust estimator — single-shot walls on a busy host swing past
	// the bench-diff threshold without any code change. Five reps (not
	// three) so that on hosts with periodic throttle windows longer than one
	// repetition at least one rep lands in the fast mode.
	const benchReps = 5
	timed := func(name string, run func() map[string]float64) {
		var best float64
		var metrics map[string]float64
		for rep := 0; rep < benchReps; rep++ {
			t0 := time.Now() //firstlint:allow det wall-clock benchmark timing is the product this file exists to measure
			metrics = run()
			//firstlint:allow det wall-clock benchmark timing is the product this file exists to measure
			if wall := float64(time.Since(t0).Microseconds()) / 1000; rep == 0 || wall < best {
				best = wall
			}
		}
		rec.Experiments[name] = BenchExperiment{
			WallMS:  best,
			Metrics: metrics,
		}
	}
	timed("fig3", func() map[string]float64 {
		m := map[string]float64{}
		for _, r := range RunFig3On(f, seed) {
			if r.Rate == "inf" {
				prefix := "direct"
				if r.System == "FIRST" {
					prefix = "first"
				}
				m[prefix+"_req_s"] = r.M.ReqPerSec
				m[prefix+"_tok_s"] = r.M.TokPerSec
				m[prefix+"_med_s"] = r.M.MedianLatS
			}
		}
		return m
	})
	timed("fig4", func() map[string]float64 {
		m := map[string]float64{}
		for _, r := range RunFig4On(f, seed) {
			m[fmt.Sprintf("inst%d_req_s", r.Instances)] = r.M.ReqPerSec
			m[fmt.Sprintf("inst%d_med_s", r.Instances)] = r.M.MedianLatS
		}
		return m
	})
	timed("fig5", func() map[string]float64 {
		rows := RunFig5On(f, seed)
		return map[string]float64{
			"first_req_s":  rows[0].M.ReqPerSec,
			"first_tok_s":  rows[0].M.TokPerSec,
			"first_med_s":  rows[0].M.MedianLatS,
			"openai_req_s": rows[1].M.ReqPerSec,
			"openai_med_s": rows[1].M.MedianLatS,
		}
	})
	timed("table1", func() map[string]float64 {
		m := map[string]float64{}
		for _, c := range RunTable1On(f, seed) {
			if c.Model == "Llama-3.1-8B" && (c.Concurrency == 50 || c.Concurrency == 700) {
				m[fmt.Sprintf("8B_c%d_%ds_tok_s", c.Concurrency, c.WindowS)] = c.TokPS
			}
		}
		return m
	})
	timed("batch", func() map[string]float64 {
		res := RunBatch(seed)
		return map[string]float64{
			"overall_tok_s": res.OverallTokPS,
			"total_s":       res.TotalTimeS,
		}
	})
	timed("opt1", func() map[string]float64 {
		rows := RunOpt1PollingOn(f, seed)
		return map[string]float64{
			"polling_med_s": rows[0].M.MedianLatS,
			"futures_med_s": rows[1].M.MedianLatS,
		}
	})
	timed("opt2", func() map[string]float64 {
		rows := RunOpt2AuthCacheOn(f, seed)
		return map[string]float64{
			"uncached_med_s": rows[0].M.MedianLatS,
			"cached_med_s":   rows[1].M.MedianLatS,
		}
	})
	timed("opt3", func() map[string]float64 {
		rows := RunOpt3AsyncGatewayOn(f, seed)
		return map[string]float64{
			"sync_req_s":         rows[0].M.ReqPerSec,
			"async_req_s":        rows[1].M.ReqPerSec,
			"async_fabric_queue": float64(rows[1].HubQueuePeak),
		}
	})
	timed("routing", func() map[string]float64 {
		m := map[string]float64{}
		for _, r := range RunAblationRoutingOn(f, seed) {
			m[r.Policy+"_req_s"] = r.M.ReqPerSec
		}
		return m
	})
	timed("storm", func() map[string]float64 {
		m := map[string]float64{}
		for _, r := range RunStormOn(f, seed) {
			if r.Users == 1_000_000 {
				m[fmt.Sprintf("shards%d_req_s", r.Shards)] = r.M.ReqPerSec
				m[fmt.Sprintf("shards%d_p99_s", r.Shards)] = r.M.P99LatS
			}
		}
		return m
	})
	timed("federate", func() map[string]float64 {
		m := map[string]float64{}
		for _, r := range RunFederateOn(f, seed) {
			key := fmt.Sprintf("%s_c%d", r.Mode, r.Clusters)
			m[key+"_req_s"] = r.M.ReqPerSec
			m[key+"_med_s"] = r.M.MedianLatS
			m[key+"_migrations"] = float64(r.Migrations)
			// The drain-aware comparison: cordon_c8 against open_c8 on the
			// same trace — migrated-request latency is the penalty cordoning
			// exists to shrink.
			if r.Mode == "open" || r.Mode == "cordon" {
				m[key+"_migr_med_s"] = r.MigratedMedianS
			}
			if r.Mode == "open" && r.Clusters == 4 {
				m[key+"_rung_active"] = float64(r.Rungs.Active)
				m[key+"_rung_capacity"] = float64(r.Rungs.Capacity)
				m[key+"_rung_firstconf"] = float64(r.Rungs.FirstConf)
			}
		}
		return m
	})
	// federate_par races the sequential kernel against the sharded
	// conservative-window kernel on the headline c4/10⁶ cell. Walls are
	// best-of-3 (the cell alone dominates a repetition, so fewer reps than
	// benchReps keep the record's runtime bounded); par walls only reflect
	// real goroutine parallelism when GOMAXPROCS > 1 — on a single-core
	// recording host they measure the windowed mode's coordination overhead.
	{
		cell := []FederateCell{FederateCells[1]}
		m := map[string]float64{}
		var seqBest float64
		parFleet := func(name string, fl Fleet) float64 {
			var best float64
			for rep := 0; rep < 3; rep++ {
				t0 := time.Now() //firstlint:allow det wall-clock benchmark timing is the product this file exists to measure
				rows := RunFederateCellsOn(fl, seed, cell)
				//firstlint:allow det wall-clock benchmark timing is the product this file exists to measure
				if wall := float64(time.Since(t0).Microseconds()) / 1000; rep == 0 || wall < best {
					best = wall
				}
				if rep == 0 {
					m[name+"_req_s"] = rows[0].M.ReqPerSec
				}
			}
			m[name+"_wall_ms"] = best
			return best
		}
		t0 := time.Now() //firstlint:allow det wall-clock benchmark timing is the product this file exists to measure
		seqBest = parFleet("seq", Fleet{Workers: 1})
		parFleet("par1", Fleet{Workers: 1, Par: 1})
		parBest := parFleet("par4", Fleet{Workers: 1, Par: 4})
		if parBest > 0 {
			m["speedup_seq_over_par4"] = seqBest / parBest
		}
		rec.Experiments["federate_par"] = BenchExperiment{
			//firstlint:allow det wall-clock benchmark timing is the product this file exists to measure
			WallMS:  float64(time.Since(t0).Microseconds()) / 1000,
			Metrics: m,
		}
	}
	// The bench record runs the short livefed cell — the full nightly storm
	// takes minutes per repetition and its walls are sleep-bound rather than
	// substrate-bound; the short cell tracks the same calibration metrics.
	timed("livefed", func() map[string]float64 {
		m := map[string]float64{}
		for _, r := range RunLiveFedCellsOn(f, seed, LiveFedCellsShort) {
			key := fmt.Sprintf("c%d", r.Clusters)
			m[key+"_ok"] = float64(r.OK)
			m[key+"_failover_ok"] = float64(r.FailoverOK)
			m[key+"_shed"] = float64(r.Shed)
			m[key+"_typed_err"] = float64(r.TypedErr)
			m[key+"_untyped"] = float64(r.Untyped)
			m[key+"_retry_amp"] = r.RetryAmp
			m[key+"_trips"] = float64(r.Trips)
			m[key+"_p99_s"] = r.P99S
			// Calibration columns: live rung shares vs the DES twin's.
			la, lc, lf := rungShares(r.RungActive, r.RungCapacity, r.RungFirstConf)
			sa, sc, sf := rungShares(r.Sim.Rungs.Active, r.Sim.Rungs.Capacity, r.Sim.Rungs.FirstConf)
			m[key+"_rung_active_live_pct"] = la
			m[key+"_rung_capacity_live_pct"] = lc
			m[key+"_rung_firstconf_live_pct"] = lf
			m[key+"_rung_active_sim_pct"] = sa
			m[key+"_rung_capacity_sim_pct"] = sc
			m[key+"_rung_firstconf_sim_pct"] = sf
			m[key+"_sim_p99_s"] = r.Sim.M.P99LatS
			if r.Requests > 0 {
				m[key+"_failover_per_req"] = float64(r.FailoverAttempts) / float64(r.Requests)
			}
			if r.Sim.Offered > 0 {
				m[key+"_sim_migrations_per_req"] = float64(r.Sim.Migrations) / float64(r.Sim.Offered)
			}
			// Tolerance gate verdict (±CalibRungTolerancePts on rung shares,
			// CalibRateRatioMax on the re-route ratio): 1 = calibrated.
			cal := r.Calibrate()
			m[key+"_calib_pass"] = 0
			if cal.Pass {
				m[key+"_calib_pass"] = 1
			}
			m[key+"_calib_rung_gap_pts"] = cal.RungGapPts
			m[key+"_calib_rate_ratio"] = cal.RateRatio
		}
		return m
	})
	timed("autoscale", func() map[string]float64 {
		m := map[string]float64{}
		for _, r := range RunAutoScaleOn(f, seed) {
			key := fmt.Sprintf("%s_c%d", r.Shape, r.Clusters)
			if r.Predictive {
				// The predictive twins share shape/clusters with their
				// reactive baselines; the suffix keeps both series in one
				// record for the forecast-vs-watermark comparison.
				key += "_pred"
				m[key+"_prewarms"] = float64(r.PreWarms)
			}
			m[key+"_req_s"] = r.M.ReqPerSec
			m[key+"_scale_ups"] = float64(r.ScaleUps)
			m[key+"_scale_downs"] = float64(r.ScaleDowns)
			if r.Shape == "diurnal" && r.Clusters == 4 {
				m[key+"_peak_inst"] = float64(r.PeakInstances)
				m[key+"_refused"] = float64(r.ScaleRefused)
				m[key+"_med_s"] = r.M.MedianLatS
				m[key+"_p99_s"] = r.M.P99LatS
			}
		}
		return m
	})
	// WallMS keeps its v1 meaning — experiment regeneration time only — so
	// the headline number stays comparable across records; the micro pass
	// times itself per series.
	//firstlint:allow det wall-clock benchmark timing is the product this file exists to measure
	rec.WallMS = float64(time.Since(start).Microseconds()) / 1000
	rec.Micro = CollectMicro()
	return rec
}

// WriteBench marshals rec to path (indented, trailing newline).
func WriteBench(rec BenchRecord, path string) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// NextBenchPath returns dir/BENCH_<n>.json for the smallest n ≥ 1 not yet
// taken, so successive runs accumulate a numbered perf trajectory.
func NextBenchPath(dir string) string {
	for n := 1; ; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}
