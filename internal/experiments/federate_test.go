package experiments

import (
	"os"
	"reflect"
	"testing"

	"github.com/argonne-first/first/internal/sim"
)

// The federate determinism suite runs at two scales: the short family per
// PR, and the full beyond-paper family (10⁶ open-loop requests + 10⁴ WebUI
// sessions) in the nightly CI job — set FIRST_FEDERATE_FULL=1 (or run `make
// federate-night`) to enable it locally.

// federateFullEnabled reports whether the full-scale suite should run.
func federateFullEnabled() bool { return os.Getenv("FIRST_FEDERATE_FULL") != "" }

// TestFederateDifferentialWorkers pins the federate family byte-identical
// across fleet worker counts: the parallel run must reproduce the
// sequential reference exactly.
func TestFederateDifferentialWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	seq := RunFederateCellsOn(Sequential, DefaultSeed, FederateCellsShort)
	par := RunFederateCellsOn(Parallel, DefaultSeed, FederateCellsShort)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("federate diverges across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestFederateDifferentialQueue pins the family byte-identical across the
// calendar-queue kernel and the 4-ary heap reference.
func TestFederateDifferentialQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	cal := RunFederateCellsOn(Sequential, DefaultSeed, FederateCellsShort)
	heap := RunFederateCellsOn(heapRef, DefaultSeed, FederateCellsShort)
	if !reflect.DeepEqual(cal, heap) {
		t.Errorf("federate diverges between calendar and heap kernels:\ncal:  %+v\nheap: %+v", cal, heap)
	}
}

// assertFederateChurn checks the scenario family actually exercised what it
// claims: completions, every priority rung, migration, drains, cold
// restarts, and at least one hard kill.
func assertFederateChurn(t *testing.T, rows []FederateRow) {
	t.Helper()
	var rungs [3]int64
	var migrations int64
	var drains, kills, colds int
	for _, r := range rows {
		if (r.Mode == "open" || r.Mode == "cordon") && r.M.Completed != r.Offered {
			t.Errorf("%s c%d: completed %d of %d open-loop requests", r.Mode, r.Clusters, r.M.Completed, r.Offered)
		}
		if r.M.Failed != 0 {
			t.Errorf("%s c%d: %d failed requests", r.Mode, r.Clusters, r.M.Failed)
		}
		rungs[0] += r.Rungs.Active
		rungs[1] += r.Rungs.Capacity
		rungs[2] += r.Rungs.FirstConf
		migrations += r.Migrations
		drains += r.Drains
		kills += r.HardKills
		colds += r.ColdStarts
	}
	if rungs[0] == 0 || rungs[1] == 0 || rungs[2] == 0 {
		t.Errorf("priority ladder not hit on all rungs: active=%d capacity=%d first-conf=%d", rungs[0], rungs[1], rungs[2])
	}
	if migrations == 0 {
		t.Error("no requests migrated between clusters")
	}
	if drains == 0 {
		t.Error("no walltime drains")
	}
	if kills == 0 {
		t.Error("no walltime hard kills")
	}
	if colds <= len(rows) {
		t.Errorf("cold starts = %d; churn should force restarts beyond the initial ones", colds)
	}
}

// TestFederateChurnShort asserts the short family hits the full churn
// surface (the per-PR guard that a refactor didn't quietly de-fang it).
func TestFederateChurnShort(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	assertFederateChurn(t, RunFederateCellsOn(Parallel, DefaultSeed, FederateCellsShort))
}

// TestFederateFullScale is the nightly gate: the full beyond-paper family,
// byte-identical across worker counts and queue kinds, with the churn
// surface fully exercised. ~10s sequential per run — too slow for per-PR CI.
func TestFederateFullScale(t *testing.T) {
	if !federateFullEnabled() {
		t.Skip("set FIRST_FEDERATE_FULL=1 for the full 10⁶-request suite (nightly CI)")
	}
	cal := RunFederateOn(Parallel, DefaultSeed)
	assertFederateChurn(t, cal)
	seq := RunFederateOn(Sequential, DefaultSeed)
	if !reflect.DeepEqual(cal, seq) {
		t.Error("full-scale federate diverges across worker counts")
	}
	heap := RunFederateOn(Fleet{Queue: sim.QueueHeap}, DefaultSeed)
	if !reflect.DeepEqual(cal, heap) {
		t.Error("full-scale federate diverges between calendar and heap kernels")
	}
	for _, r := range cal {
		if r.Mode == "open" && r.Clusters == 4 && r.Offered != 1_000_000 {
			t.Errorf("headline open-loop cell offered %d requests, want 10⁶", r.Offered)
		}
		if r.Mode == "webui" && r.Offered < 10_000 {
			t.Errorf("WebUI cell issued %d turns, want ≥ the 10⁴ sessions' first turns", r.Offered)
		}
	}
	// The drain-aware twin must pay for its cordons on the identical trace:
	// routing away from incarnations about to drain has to catch fewer
	// in-flight requests in migrations AND leave the caught ones cheaper.
	var open, cordon *FederateRow
	for i := range cal {
		if r := &cal[i]; r.Clusters == 8 {
			switch r.Mode {
			case "open":
				open = r
			case "cordon":
				cordon = r
			}
		}
	}
	if open == nil || cordon == nil {
		t.Fatal("full family lost the c8 open/cordon twin pair")
	}
	if cordon.Migrations >= open.Migrations {
		t.Errorf("cordon twin migrated %d requests, not below the drain-blind %d", cordon.Migrations, open.Migrations)
	}
	if cordon.MigratedMedianS >= open.MigratedMedianS {
		t.Errorf("cordon twin migrated-latency median %.2fs not below the drain-blind %.2fs",
			cordon.MigratedMedianS, open.MigratedMedianS)
	}
}

// TestFederateFullScalePar is the nightly parallel gate: the full family on
// the sharded conservative-window kernel, byte-identical across window
// executor counts and queue kinds. Par=1 (zero goroutines) is the reference;
// any divergence at higher counts isolates a synchronization bug.
func TestFederateFullScalePar(t *testing.T) {
	if !federateFullEnabled() {
		t.Skip("set FIRST_FEDERATE_FULL=1 for the full 10⁶-request suite (nightly CI)")
	}
	ref := RunFederateOn(Fleet{Par: 1}, DefaultSeed)
	assertFederateChurn(t, ref)
	for _, f := range []Fleet{
		{Par: 1, Queue: sim.QueueHeap},
		{Par: 4},
		{Par: 8, Queue: sim.QueueHeap},
	} {
		if got := RunFederateOn(f, DefaultSeed); !reflect.DeepEqual(got, ref) {
			t.Errorf("full-scale federate diverges at par=%d queue=%v", f.Par, f.Queue)
		}
	}
}
