package experiments

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/argonne-first/first/internal/chaosnet"
	"github.com/argonne-first/first/internal/client"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/core"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/gateway"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/resilience"
)

// The livefed family puts the LIVE stack — real client SDK, chaosnet
// fault-injecting transport, sharded gateway, breaker-aware federation
// router, fabric hub, and engine instances on a scaled clock — under a
// seeded failure storm, then runs a DES federation with matching churn as
// the calibration twin. The invariant under fire: zero lost requests —
// every issued request resolves as success, failover-success, shed (503 +
// Retry-After), or a typed client error, never a hang or an untyped
// failure.

// LiveFedCell is one live chaos scenario.
type LiveFedCell struct {
	Clusters int
	Requests int
	// StreamEvery makes every Nth request a streaming chat call (SSE
	// through the real gateway, cuttable by chaosnet). 0 = never.
	StreamEvery int
	// MaxAttempts budgets client-side retries AND gateway-side failover
	// re-routes (both layers get the same budget).
	MaxAttempts int
	// Net is the client↔gateway fault schedule (refused dials, synthesized
	// 503 bursts, latency spikes, SSE cuts).
	Net chaosnet.Config
	// Faults is the endpoint-side fault schedule: bursts of infer failures
	// sweeping across endpoints round-robin.
	Faults chaosnet.Windows
	// PUnauthorized is the endpoint-side credential-rejection lane: the
	// gateway reacts by rechecking its token cache, not failing over.
	PUnauthorized float64
	// KillAt / RestartAt are request indices at which the victim endpoint
	// (index 1) is killed (deployment torn down, in-flight work dies) and
	// cold-restarted through the real scheduler. 0 = never.
	KillAt    int
	RestartAt int
	// Concurrency drives requests from this many goroutines. 1 (or 0)
	// keeps the outcome schedule deterministic; the chaos race test uses
	// >1 to exercise mid-flight kills.
	Concurrency int
}

// LiveFedCells is the nightly full storm.
var LiveFedCells = []LiveFedCell{
	{Clusters: 2, Requests: 2000, StreamEvery: 5, MaxAttempts: 3,
		Net:           chaosnet.Config{PRefuse: 0.02, P5xx: 0.02, RetryAfter: time.Second, PCutStream: 0.03, CutAfterBytes: 48},
		Faults:        chaosnet.Windows{BurstEvery: 200, BurstLen: 40, PFault: 0.85, PBackground: 0.01},
		PUnauthorized: 0.005, KillAt: 600, RestartAt: 1200},
	{Clusters: 4, Requests: 3000, StreamEvery: 5, MaxAttempts: 3,
		Net:           chaosnet.Config{PRefuse: 0.02, P5xx: 0.02, RetryAfter: time.Second, PCutStream: 0.03, CutAfterBytes: 48},
		Faults:        chaosnet.Windows{BurstEvery: 250, BurstLen: 50, PFault: 0.85, PBackground: 0.01},
		PUnauthorized: 0.005, KillAt: 900, RestartAt: 1800},
}

// LiveFedCellsShort is the per-PR cell: small enough for the differential
// suite and `make chaos`, still covering every fault kind plus a kill and
// cold restart mid-run.
var LiveFedCellsShort = []LiveFedCell{
	{Clusters: 2, Requests: 600, StreamEvery: 5, MaxAttempts: 3,
		Net:           chaosnet.Config{PRefuse: 0.02, P5xx: 0.02, RetryAfter: time.Second, PCutStream: 0.03, CutAfterBytes: 48},
		Faults:        chaosnet.Windows{BurstEvery: 100, BurstLen: 20, PFault: 0.85, PBackground: 0.01},
		PUnauthorized: 0.005, KillAt: 200, RestartAt: 400},
}

// LiveFedRow is one cell's outcome census plus the calibration columns
// against its DES twin.
type LiveFedRow struct {
	Clusters int
	Requests int

	// Outcome census; OK+FailoverOK+Shed+TypedErr+Untyped == Requests, and
	// the zero-lost invariant demands Untyped == 0.
	OK         int
	FailoverOK int
	Shed       int
	TypedErr   int
	Untyped    int

	MedS float64
	P99S float64

	// Live resilience accounting (gateway metrics + transport stats).
	ServerAttempts   int64 // infer RPCs issued by the gateway
	FailoverAttempts int64
	FailoverSuccess  int64
	LoadShed         int64
	AuthRechecks     int64
	Trips            int64
	RungActive       int64
	RungCapacity     int64
	RungFirstConf    int64
	// RetryAmp is client transport round-trips per issued request (1.0 =
	// no retries anywhere).
	RetryAmp float64
	Chaos    map[string]int64

	// Sim twin (DES federation with matching churn tempo) for calibration.
	Sim FederateRow
}

// liveFedModel is the single served model; every endpoint hosts it so the
// ladder's active rung dominates until faults knock endpoints out.
const liveFedModel = perfmodel.Llama8B

var errInjectedFault = errors.New("livefed: injected endpoint fault")

// liveFedErrHook, when set by tests, observes every classified client
// error (typed and untyped).
var liveFedErrHook func(int, error)

// liveFedPrompt / liveFedIndex encode the request index into the prompt so
// the endpoint-side fault schedule can key off it — the index survives the
// whole live path because chat inference forwards the last user message.
func liveFedPrompt(i int) string { return fmt.Sprintf("livefed req %06d", i) }

func liveFedIndex(prompt string) int {
	const pfx = "livefed req "
	if !strings.HasPrefix(prompt, pfx) {
		return -1
	}
	n, err := strconv.Atoi(prompt[len(pfx):])
	if err != nil {
		return -1
	}
	return n
}

// RunLiveFed runs the nightly family (live cells are inherently sequential;
// the fleet only accelerates the sim twins).
func RunLiveFed(seed int64) []LiveFedRow { return RunLiveFedOn(Parallel, seed) }

// RunLiveFedOn runs the full family on f.
func RunLiveFedOn(f Fleet, seed int64) []LiveFedRow {
	return RunLiveFedCellsOn(f, seed, LiveFedCells)
}

// RunLiveFedCellsOn runs each live cell, then its DES calibration twin.
func RunLiveFedCellsOn(f Fleet, seed int64, cells []LiveFedCell) []LiveFedRow {
	rows := make([]LiveFedRow, len(cells))
	for i, c := range cells {
		rows[i] = RunLiveFedCell(seed, c)
	}
	twins := make([]FederateCell, len(cells))
	for i, c := range cells {
		twins[i] = c.simTwin()
	}
	simRows := RunFederateCellsOn(f, seed, twins)
	for i := range rows {
		rows[i].Sim = simRows[i]
	}
	return rows
}

// simTwin shapes the DES calibration run: same federation width, an
// open-loop trace large enough for stable shares, and churn fast enough
// that hard kills and migrations (the DES analogue of endpoint death +
// failover) actually fire inside the horizon.
func (c LiveFedCell) simTwin() FederateCell {
	reqs := c.Requests * 10
	if reqs < 20_000 {
		reqs = 20_000
	}
	return FederateCell{
		Clusters: c.Clusters, OpenLoopReqs: reqs, RatePerSec: 200,
		ServeWalltimeS: 45, DrainGraceS: 15, BGPeriodS: 80,
	}
}

// RunLiveFedCell boots a real multi-cluster System, arms the fault
// schedules, and drives every request through the live client/gateway
// path, classifying each outcome.
func RunLiveFedCell(seed int64, c LiveFedCell) LiveFedRow {
	cellSeed := uint64(seed) ^ uint64(c.Clusters)<<40 ^ uint64(c.Requests)
	clusterNames := make([]string, c.Clusters)
	specs := make([]core.ClusterSpec, c.Clusters)
	for i := range specs {
		clusterNames[i] = fmt.Sprintf("lf%d", i)
		specs[i] = core.ClusterSpec{Name: clusterNames[i], Nodes: 2, GPUsPerNode: 8}
	}

	// Breaker decisions run on a logical clock advanced one second per
	// issued request — trip and probe timing depend only on the request
	// schedule, never on host speed.
	var issued atomic.Int64
	epoch := time.Unix(1_700_000_000, 0)
	breakerNow := func() time.Time {
		return epoch.Add(time.Duration(issued.Load()) * time.Second)
	}

	maxAttempts := c.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	sys, err := core.NewSystem(core.Config{
		Clock:    clock.NewScaled(20000),
		Clusters: specs,
		Deployments: []core.DeploymentSpec{
			{Model: liveFedModel, Clusters: clusterNames,
				Config: fabric.DeploymentConfig{MinInstances: 1, MaxInstances: 1}},
		},
		Gateway: gateway.Config{
			Retry: resilience.Policy{MaxAttempts: maxAttempts},
			Breaker: resilience.BreakerConfig{
				Window: 60 * time.Second, Buckets: 12, MinSamples: 4,
				FailureRate: 0.5, OpenFor: 10 * time.Second, HalfOpenProbes: 1,
			},
			BreakerClock: breakerNow,
		},
	})
	if err != nil {
		panic(fmt.Sprintf("livefed: boot: %v", err))
	}
	defer sys.Close()
	if err := sys.RegisterUser("chaos", "chaos@anl.gov"); err != nil {
		panic(err)
	}
	grant, err := sys.Login("chaos")
	if err != nil {
		panic(err)
	}

	// Endpoint-side fault arming: wrap FnInfer on every endpoint with the
	// Windows schedule (plus the 401 lane), delegating clean requests to
	// the real deployment path.
	for epIdx, name := range clusterNames {
		armLiveFedEndpoint(sys.Endpoints["ep-"+name], epIdx, c, cellSeed)
	}

	// Client-side fault arming: chaosnet between the SDK and the gateway.
	netCfg := c.Net
	netCfg.Seed = cellSeed ^ 0xc11a05
	chaos := chaosnet.New(netCfg, sys.Clock, client.HandlerRoundTripper(sys.Gateway))
	// Backoff waits (including chaosnet's Retry-After hints, which are in
	// modeled seconds) pass on the scaled clock: a 1 s hint costs 50 µs of
	// wall time instead of parking the driver — and the simulated clock —
	// for a real second per 503.
	newClient := func() *client.Client {
		return client.New("http://livefed.local", grant.AccessToken,
			client.WithHTTPClient(&http.Client{Transport: chaos}),
			client.WithRetry(resilience.Policy{MaxAttempts: maxAttempts}),
			client.WithSleep(func(ctx context.Context, d time.Duration) error {
				sys.Clock.Sleep(d)
				return ctx.Err()
			}))
	}

	row := LiveFedRow{Clusters: c.Clusters, Requests: c.Requests}
	var mu sync.Mutex
	var lats []float64
	victim := sys.Endpoints["ep-"+clusterNames[1%len(clusterNames)]]

	// The scaled clock compresses wall time 20000×, so a multi-second run
	// spans days of simulated time — past the paper's 48-hour token TTL.
	// Each driver re-logins every tokenRefreshEvery of its own requests,
	// the way any long-lived client refreshes; and if a slow host still
	// stretches a refresh interval past 48 simulated hours, an expired-token
	// 401 is absorbed by re-authenticating and reissuing once, so host speed
	// never leaks into the fault census.
	const tokenRefreshEvery = 50
	refresh := func(cli *client.Client) {
		g, err := sys.Login("chaos")
		if err != nil {
			panic(fmt.Sprintf("livefed: token refresh: %v", err))
		}
		cli.SetToken(g.AccessToken)
	}
	isExpiredToken := func(err error) bool {
		var apiErr *client.APIError
		return errors.As(err, &apiErr) &&
			apiErr.StatusCode == http.StatusUnauthorized &&
			strings.Contains(apiErr.Message, "token expired")
	}

	oneRequest := func(cli *client.Client, i int) {
		if c.KillAt > 0 && i == c.KillAt {
			victim.Undeploy(liveFedModel)
		}
		if c.RestartAt > 0 && i == c.RestartAt {
			victim.Deploy(fabric.DeploymentConfig{
				Model: liveFedModel, MinInstances: 1, MaxInstances: 1,
			})
		}
		issued.Add(1)
		req := openaiapi.ChatCompletionRequest{
			Model:     liveFedModel,
			Messages:  []openaiapi.Message{{Role: "user", Content: liveFedPrompt(i)}},
			MaxTokens: 16,
		}
		failoverBefore := counterOf(sys, "failover_success")
		start := sys.Clock.Now()
		issue := func() (err error) {
			if c.StreamEvery > 0 && i%c.StreamEvery == 0 {
				_, err = cli.ChatCompletionStream(context.Background(), req, func(string) {})
			} else {
				_, err = cli.ChatCompletion(context.Background(), req)
			}
			return err
		}
		err := issue()
		if isExpiredToken(err) {
			refresh(cli)
			err = issue()
		}
		lat := sys.Clock.Since(start).Seconds()

		mu.Lock()
		defer mu.Unlock()
		switch {
		case err == nil:
			lats = append(lats, lat)
			if c.Concurrency <= 1 && counterOf(sys, "failover_success") > failoverBefore {
				row.FailoverOK++
			} else {
				row.OK++
			}
		case isShed(err):
			row.Shed++
		case isTypedErr(err):
			row.TypedErr++
			if liveFedErrHook != nil {
				liveFedErrHook(i, err)
			}
		default:
			row.Untyped++
			if liveFedErrHook != nil {
				liveFedErrHook(i, err)
			}
		}
	}

	if c.Concurrency <= 1 {
		cli := newClient()
		for i := 0; i < c.Requests; i++ {
			if i%tokenRefreshEvery == 0 {
				refresh(cli)
			}
			oneRequest(cli, i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < c.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cli := newClient()
				for issued := 0; ; issued++ {
					i := int(next.Add(1)) - 1
					if i >= c.Requests {
						return
					}
					if issued%tokenRefreshEvery == 0 {
						refresh(cli)
					}
					oneRequest(cli, i)
				}
			}()
		}
		wg.Wait()
	}

	sort.Float64s(lats)
	row.MedS = percentileOf(lats, 0.50)
	row.P99S = percentileOf(lats, 0.99)
	row.ServerAttempts = counterOf(sys, "infer_attempts")
	row.FailoverAttempts = counterOf(sys, "failover_attempts")
	row.FailoverSuccess = counterOf(sys, "failover_success")
	row.LoadShed = counterOf(sys, "load_shed")
	row.AuthRechecks = counterOf(sys, "auth_rechecks")
	row.RungActive = counterOf(sys, "route_"+string(federationReasonActive))
	row.RungCapacity = counterOf(sys, "route_"+string(federationReasonCapacity))
	row.RungFirstConf = counterOf(sys, "route_"+string(federationReasonFirstConf))
	if sys.Gateway.Breakers() != nil {
		row.Trips = sys.Gateway.Breakers().Trips()
	}
	st := chaos.Stats()
	roundTrips := st.Refused.Load() + st.Synth5xx.Load() + st.CutStream.Load() + st.Passed.Load()
	if c.Requests > 0 {
		row.RetryAmp = float64(roundTrips) / float64(c.Requests)
	}
	row.Chaos = st.Snapshot()
	return row
}

// Reason strings are mirrored here rather than imported to keep livefed's
// import graph identical to the gateway's metric names.
const (
	federationReasonActive    = "model-active"
	federationReasonCapacity  = "cluster-has-capacity"
	federationReasonFirstConf = "first-configured"
)

// armLiveFedEndpoint wraps the endpoint's infer function with the cell's
// fault schedule. Attempt numbers are counted per request index so a
// failover or retry of the same request re-draws (transients clear).
func armLiveFedEndpoint(ep *fabric.Endpoint, epIdx int, c LiveFedCell, cellSeed uint64) {
	var mu sync.Mutex
	seen := make(map[int]int)
	nEps := c.Clusters
	ep.RegisterFunction(fabric.FnInfer, func(ctx context.Context, payload []byte) ([]byte, error) {
		var req fabric.InferRequest
		if err := fabric.UnmarshalPayload(payload, &req); err != nil {
			return nil, err
		}
		if idx := liveFedIndex(req.Prompt); idx >= 0 {
			mu.Lock()
			attempt := seen[idx]
			seen[idx] = attempt + 1
			mu.Unlock()
			if c.PUnauthorized > 0 &&
				chaosnet.Draw(cellSeed^0x401, uint64(idx)<<20^uint64(epIdx), uint32(attempt), 6) < c.PUnauthorized {
				return nil, fabric.ErrUnauthorized
			}
			if c.Faults.Faulty(cellSeed, idx, epIdx, nEps, attempt) {
				return nil, errInjectedFault
			}
		}
		d, ok := ep.Deployment(req.Model)
		if !ok {
			return nil, fmt.Errorf("fabric: endpoint %s does not host %s", ep.ID(), req.Model)
		}
		res, err := d.Generate(ctx, req)
		if err != nil {
			return nil, err
		}
		return fabric.MarshalPayload(res), nil
	})
}

func counterOf(sys *core.System, name string) int64 {
	return sys.Metrics.Snapshot().Counters[name]
}

// isShed: the request was load-shed with a 503 (gateway all-breakers-open
// or a chaosnet-synthesized upstream 503 that outlived the retry budget).
func isShed(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusServiceUnavailable
}

// isTypedErr: the client saw a well-typed failure it can act on.
func isTypedErr(err error) bool {
	var apiErr *client.APIError
	var refused *chaosnet.RefusedError
	return errors.As(err, &apiErr) ||
		errors.As(err, &refused) ||
		errors.Is(err, openaiapi.ErrStreamTruncated) ||
		errors.Is(err, client.ErrMalformedResponse) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

func percentileOf(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
