package experiments

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/argonne-first/first/internal/chaosnet"
	"github.com/argonne-first/first/internal/client"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/core"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/gateway"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/resilience"
	"github.com/argonne-first/first/internal/scheduler"
)

// The livefed family puts the LIVE stack — real client SDK, chaosnet
// fault-injecting transport, sharded gateway, breaker-aware federation
// router, fabric hub, and engine instances on a scaled clock — under a
// seeded failure storm, then runs a DES federation with matching churn as
// the calibration twin. The invariant under fire: zero lost requests —
// every issued request resolves as success, failover-success, shed (503 +
// Retry-After), or a typed client error, never a hang or an untyped
// failure.

// LiveFedCell is one live chaos scenario.
type LiveFedCell struct {
	Clusters int
	Requests int
	// StreamEvery makes every Nth request a streaming chat call (SSE
	// through the real gateway, cuttable by chaosnet). 0 = never.
	StreamEvery int
	// MaxAttempts budgets client-side retries AND gateway-side failover
	// re-routes (both layers get the same budget).
	MaxAttempts int
	// Net is the client↔gateway fault schedule (refused dials, synthesized
	// 503 bursts, latency spikes, SSE cuts).
	Net chaosnet.Config
	// Faults is the endpoint-side fault schedule: bursts of infer failures
	// sweeping across endpoints round-robin.
	Faults chaosnet.Windows
	// PUnauthorized is the endpoint-side credential-rejection lane: the
	// gateway reacts by rechecking its token cache, not failing over.
	PUnauthorized float64
	// Kill churn: every KillEvery request indices the next victim endpoint
	// (rotating, starting at endpoint 1) is killed — deployment torn down,
	// in-flight work dies — and cold-restarted through the real scheduler
	// KillDownFor indices later. KillDownFor > KillEvery overlaps windows
	// so the model goes briefly cold everywhere (the ROADMAP's "more than
	// one victim, multiple expiries mid-run"). A kill whose victim is
	// still down, or whose restart would land past the trace, is skipped.
	// 0 disables.
	KillEvery   int
	KillDownFor int
	// Background contention: every BGEvery indices a science job claims
	// BGGPUs on the rotating cluster, released BGHoldFor indices later —
	// live GPU exhaustion so the ladder's capacity rung goes honest.
	BGEvery   int
	BGGPUs    int
	BGHoldFor int
	// Concurrency drives requests from this many goroutines. 1 (or 0)
	// keeps the outcome schedule deterministic; the chaos race test uses
	// >1 to exercise mid-flight kills.
	Concurrency int
}

// LiveFedCells is the nightly full storm: overlapping kill windows leave
// the model briefly cold everywhere, and rolling background claims exhaust
// GPU capacity, so every rung of the ladder genuinely fires live.
var LiveFedCells = []LiveFedCell{
	{Clusters: 2, Requests: 2000, StreamEvery: 5, MaxAttempts: 3,
		Net:           chaosnet.Config{PRefuse: 0.02, P5xx: 0.02, RetryAfter: time.Second, PCutStream: 0.03, CutAfterBytes: 48},
		Faults:        chaosnet.Windows{BurstEvery: 200, BurstLen: 40, PFault: 0.85, PBackground: 0.01},
		PUnauthorized: 0.005, KillEvery: 400, KillDownFor: 500,
		BGEvery: 500, BGGPUs: 12, BGHoldFor: 300},
	{Clusters: 4, Requests: 3000, StreamEvery: 5, MaxAttempts: 3,
		Net:           chaosnet.Config{PRefuse: 0.02, P5xx: 0.02, RetryAfter: time.Second, PCutStream: 0.03, CutAfterBytes: 48},
		Faults:        chaosnet.Windows{BurstEvery: 250, BurstLen: 50, PFault: 0.85, PBackground: 0.01},
		PUnauthorized: 0.005, KillEvery: 350, KillDownFor: 450,
		BGEvery: 600, BGGPUs: 12, BGHoldFor: 350},
}

// LiveFedCellsShort is the per-PR cell: small enough for the differential
// suite and `make chaos`, still covering every fault kind plus multiple
// kills, cold restarts, and background GPU claims mid-run.
var LiveFedCellsShort = []LiveFedCell{
	{Clusters: 2, Requests: 600, StreamEvery: 5, MaxAttempts: 3,
		Net:           chaosnet.Config{PRefuse: 0.02, P5xx: 0.02, RetryAfter: time.Second, PCutStream: 0.03, CutAfterBytes: 48},
		Faults:        chaosnet.Windows{BurstEvery: 100, BurstLen: 20, PFault: 0.85, PBackground: 0.01},
		PUnauthorized: 0.005, KillEvery: 150, KillDownFor: 180,
		BGEvery: 200, BGGPUs: 12, BGHoldFor: 120},
}

// LiveFedRow is one cell's outcome census plus the calibration columns
// against its DES twin.
type LiveFedRow struct {
	Clusters int
	Requests int

	// Outcome census; OK+FailoverOK+Shed+TypedErr+Untyped == Requests, and
	// the zero-lost invariant demands Untyped == 0.
	OK         int
	FailoverOK int
	Shed       int
	TypedErr   int
	Untyped    int

	MedS float64
	P99S float64

	// Live resilience accounting (gateway metrics + transport stats).
	ServerAttempts   int64 // infer RPCs issued by the gateway
	FailoverAttempts int64
	FailoverSuccess  int64
	LoadShed         int64
	AuthRechecks     int64
	Trips            int64
	RungActive       int64
	RungCapacity     int64
	RungFirstConf    int64
	// RetryAmp is client transport round-trips per issued request (1.0 =
	// no retries anywhere).
	RetryAmp float64
	Chaos    map[string]int64

	// LogicalTicks is the breaker logical clock's final reading: one tick
	// per logical request, invariant under MaxAttempts (retries and
	// failover re-routes of one request do not advance time).
	LogicalTicks int64

	// Schedule is the executed churn plan, including the measured arrival
	// rate — the exact storm the DES twin replays.
	Schedule chaosnet.Schedule

	// Sim twin: the DES federation replaying Schedule, for calibration.
	Sim FederateRow
}

// liveFedModel is the single served model; every endpoint hosts it so the
// ladder's active rung dominates until faults knock endpoints out.
const liveFedModel = perfmodel.Llama8B

var errInjectedFault = errors.New("livefed: injected endpoint fault")

// liveFedErrHook, when set by tests, observes every classified client
// error (typed and untyped).
var liveFedErrHook func(int, error)

// liveFedPrompt / liveFedIndex encode the request index into the prompt so
// the endpoint-side fault schedule can key off it — the index survives the
// whole live path because chat inference forwards the last user message.
func liveFedPrompt(i int) string { return fmt.Sprintf("livefed req %06d", i) }

func liveFedIndex(prompt string) int {
	const pfx = "livefed req "
	if !strings.HasPrefix(prompt, pfx) {
		return -1
	}
	n, err := strconv.Atoi(prompt[len(pfx):])
	if err != nil {
		return -1
	}
	return n
}

// RunLiveFed runs the nightly family (live cells are inherently sequential;
// the fleet only accelerates the sim twins).
func RunLiveFed(seed int64) []LiveFedRow { return RunLiveFedOn(Parallel, seed) }

// RunLiveFedOn runs the full family on f.
func RunLiveFedOn(f Fleet, seed int64) []LiveFedRow {
	return RunLiveFedCellsOn(f, seed, LiveFedCells)
}

// RunLiveFedCellsOn runs each live cell, then replays its executed
// schedule into the DES calibration twin.
func RunLiveFedCellsOn(f Fleet, seed int64, cells []LiveFedCell) []LiveFedRow {
	rows := make([]LiveFedRow, len(cells))
	for i, c := range cells {
		rows[i] = RunLiveFedCell(seed, c)
	}
	twins := make([]FederateCell, len(cells))
	for i, c := range cells {
		twins[i] = c.simTwin(rows[i].Schedule)
	}
	simRows := RunFederateCellsOn(f, seed, twins)
	for i := range rows {
		rows[i].Sim = simRows[i]
	}
	return rows
}

// liveFedInventory is each live cluster's shape: 4 nodes × 4 GPUs. One
// Llama8B serving instance holds a whole node (TP=4), so a 12-GPU
// background claim takes the other three and genuinely exhausts capacity.
const (
	liveFedNodes       = 4
	liveFedGPUsPerNode = 4
)

// liveFedBreaker is the gateway breaker config, shared with the twin so
// avoidance trips on the same logical clock.
func liveFedBreaker() resilience.BreakerConfig {
	return resilience.BreakerConfig{
		Window: 60 * time.Second, Buckets: 12, MinSamples: 4,
		FailureRate: 0.5, OpenFor: 10 * time.Second, HalfOpenProbes: 1,
	}
}

// simTwin shapes the DES calibration run from the *executed* schedule:
// same federation width and inventory, the same trace length at the
// measured live arrival rate, and every kill, restart, claim, and fault
// window replayed at its recorded request index — nothing guessed.
func (c LiveFedCell) simTwin(s chaosnet.Schedule) FederateCell {
	rate := s.RatePerSec
	if rate <= 0 {
		rate = 1
	}
	maxAttempts := c.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	return FederateCell{
		Clusters:        c.Clusters,
		OpenLoopReqs:    c.Requests,
		RatePerSec:      rate,
		Replay:          &s,
		ReplayModel:     liveFedModel,
		NodesPerCluster: liveFedNodes,
		GPUsPerNode:     liveFedGPUsPerNode,
		Breaker:         liveFedBreaker(),
		MaxAttempts:     maxAttempts,
	}
}

// cellSeed folds the entire cell config through FNV + splitmix64: the old
// derivation (seed ^ Clusters<<40 ^ Requests) collided for any two cells
// sharing width and length, correlating their supposedly independent
// chaos draws.
func (c LiveFedCell) cellSeed(seed int64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%+v|%+v|%g|%d|%d|%d|%d|%d",
		c.Clusters, c.Requests, c.StreamEvery, c.MaxAttempts,
		c.Net, c.Faults, c.PUnauthorized,
		c.KillEvery, c.KillDownFor, c.BGEvery, c.BGGPUs, c.BGHoldFor)
	return chaosnet.Mix(uint64(seed) ^ h.Sum64())
}

// BuildSchedule derives the cell's churn plan: rotating kills with
// cold restarts KillDownFor later, and rotating background claims held
// BGHoldFor. Events never land past the trace (the live driver would not
// fire them), and a victim is never killed while still down.
func (c LiveFedCell) BuildSchedule(cellSeed uint64) chaosnet.Schedule {
	s := chaosnet.Schedule{
		Seed:          cellSeed,
		Endpoints:     c.Clusters,
		Requests:      c.Requests,
		Windows:       c.Faults,
		PUnauthorized: c.PUnauthorized,
	}
	if c.KillEvery > 0 && c.KillDownFor > 0 && c.Clusters > 0 {
		downUntil := make([]int, c.Clusters)
		for k := 0; ; k++ {
			at := c.KillEvery * (k + 1)
			restart := at + c.KillDownFor
			if restart >= c.Requests {
				break
			}
			victim := (1 + k) % c.Clusters
			if at < downUntil[victim] {
				continue
			}
			downUntil[victim] = restart
			s.Events = append(s.Events,
				chaosnet.Event{AtIndex: at, Kind: chaosnet.EventKill, Endpoint: victim},
				chaosnet.Event{AtIndex: restart, Kind: chaosnet.EventRestart, Endpoint: victim})
		}
	}
	if c.BGEvery > 0 && c.BGGPUs > 0 && c.BGHoldFor > 0 && c.Clusters > 0 {
		// Offset claims half a period from the kill grid so the two event
		// families interleave instead of stacking on shared indices.
		for b := 0; ; b++ {
			at := c.BGEvery*(b+1) - c.BGEvery/2
			release := at + c.BGHoldFor
			if release >= c.Requests {
				break
			}
			cl := b % c.Clusters
			s.Events = append(s.Events,
				chaosnet.Event{AtIndex: at, Kind: chaosnet.EventBGClaim, Endpoint: cl, GPUs: c.BGGPUs},
				chaosnet.Event{AtIndex: release, Kind: chaosnet.EventBGRelease, Endpoint: cl})
		}
	}
	s.Sort()
	return s
}

// roundRate rounds the measured arrival rate to 3 significant digits: the
// scaled clock's elapsed time carries host-speed noise, and the twin only
// needs the tempo, not the jitter.
func roundRate(x float64) float64 {
	if x <= 0 {
		return 0
	}
	mag := math.Pow(10, math.Floor(math.Log10(x))-2)
	return math.Round(x/mag) * mag
}

// RunLiveFedCell boots a real multi-cluster System, arms the fault
// schedules, and drives every request through the live client/gateway
// path, classifying each outcome.
func RunLiveFedCell(seed int64, c LiveFedCell) LiveFedRow {
	cellSeed := c.cellSeed(seed)
	clusterNames := make([]string, c.Clusters)
	specs := make([]core.ClusterSpec, c.Clusters)
	for i := range specs {
		clusterNames[i] = fmt.Sprintf("lf%d", i)
		// Backfill matches the DES twin's scheduler config: a serving
		// restart queued behind a wide background claim may be backfilled
		// on both sides or neither.
		specs[i] = core.ClusterSpec{Name: clusterNames[i],
			Nodes: liveFedNodes, GPUsPerNode: liveFedGPUsPerNode, Backfill: true}
	}

	// Breaker decisions run on a logical clock advanced one second per
	// *logical* request — retries and failover re-routes of the same
	// request do not tick it — so trip and probe timing depend only on the
	// request schedule, never on host speed or the MaxAttempts budget.
	var logical atomic.Int64
	epoch := time.Unix(1_700_000_000, 0)
	breakerNow := func() time.Time {
		return epoch.Add(time.Duration(logical.Load()) * time.Second)
	}

	maxAttempts := c.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	sys, err := core.NewSystem(core.Config{
		Clock:    clock.NewScaled(20000),
		Clusters: specs,
		Deployments: []core.DeploymentSpec{
			{Model: liveFedModel, Clusters: clusterNames,
				Config: fabric.DeploymentConfig{MinInstances: 1, MaxInstances: 1}},
		},
		Gateway: gateway.Config{
			Retry:        resilience.Policy{MaxAttempts: maxAttempts},
			Breaker:      liveFedBreaker(),
			BreakerClock: breakerNow,
		},
	})
	if err != nil {
		panic(fmt.Sprintf("livefed: boot: %v", err))
	}
	defer sys.Close()
	if err := sys.RegisterUser("chaos", "chaos@anl.gov"); err != nil {
		panic(err)
	}
	grant, err := sys.Login("chaos")
	if err != nil {
		panic(err)
	}

	// Endpoint-side fault arming: wrap FnInfer on every endpoint with the
	// Windows schedule (plus the 401 lane), delegating clean requests to
	// the real deployment path.
	for epIdx, name := range clusterNames {
		armLiveFedEndpoint(sys.Endpoints["ep-"+name], epIdx, c, cellSeed)
	}

	// Client-side fault arming: chaosnet between the SDK and the gateway.
	netCfg := c.Net
	netCfg.Seed = cellSeed ^ 0xc11a05
	chaos := chaosnet.New(netCfg, sys.Clock, client.HandlerRoundTripper(sys.Gateway))
	// Backoff waits (including chaosnet's Retry-After hints, which are in
	// modeled seconds) pass on the scaled clock: a 1 s hint costs 50 µs of
	// wall time instead of parking the driver — and the simulated clock —
	// for a real second per 503.
	newClient := func() *client.Client {
		return client.New("http://livefed.local", grant.AccessToken,
			client.WithHTTPClient(&http.Client{Transport: chaos}),
			client.WithRetry(resilience.Policy{MaxAttempts: maxAttempts}),
			client.WithSleep(func(ctx context.Context, d time.Duration) error {
				sys.Clock.Sleep(d)
				return ctx.Err()
			}))
	}

	row := LiveFedRow{Clusters: c.Clusters, Requests: c.Requests}
	var mu sync.Mutex
	var lats []float64

	// The churn plan is built once, executed here, and handed to the DES
	// twin verbatim — one schedule, two executors.
	sched := c.BuildSchedule(cellSeed)
	cursor := sched.Cursor()
	var evMu sync.Mutex
	bgJobs := make([][]*scheduler.Job, c.Clusters)
	fire := func(ev chaosnet.Event) {
		ep := sys.Endpoints["ep-"+clusterNames[ev.Endpoint]]
		switch ev.Kind {
		case chaosnet.EventKill:
			ep.Undeploy(liveFedModel)
		case chaosnet.EventRestart:
			if _, err := ep.Deploy(fabric.DeploymentConfig{
				Model: liveFedModel, MinInstances: 1, MaxInstances: 1,
			}); err != nil {
				panic(fmt.Sprintf("livefed: restart: %v", err))
			}
		case chaosnet.EventBGClaim:
			job, err := sys.Schedulers[clusterNames[ev.Endpoint]].Submit(scheduler.JobSpec{
				Name: "science-batch", User: "bg", GPUs: ev.GPUs,
				// Held until the release event: the schedule's index clock
				// is the time base, not a walltime.
				Walltime: 0,
			})
			if err != nil {
				panic(fmt.Sprintf("livefed: bg claim: %v", err))
			}
			bgJobs[ev.Endpoint] = append(bgJobs[ev.Endpoint], job)
		case chaosnet.EventBGRelease:
			if q := bgJobs[ev.Endpoint]; len(q) > 0 {
				job := q[0]
				bgJobs[ev.Endpoint] = q[1:]
				sys.Schedulers[clusterNames[ev.Endpoint]].Cancel(job.ID)
			}
		}
	}
	advance := func(i int) {
		evMu.Lock()
		cursor.Advance(i, fire)
		evMu.Unlock()
	}

	// The scaled clock compresses wall time 20000×, so a multi-second run
	// spans days of simulated time — past the paper's 48-hour token TTL.
	// Each driver re-logins every tokenRefreshEvery of its own requests,
	// the way any long-lived client refreshes; and if a slow host still
	// stretches a refresh interval past 48 simulated hours, an expired-token
	// 401 is absorbed by re-authenticating and reissuing once, so host speed
	// never leaks into the fault census.
	const tokenRefreshEvery = 50
	refresh := func(cli *client.Client) {
		g, err := sys.Login("chaos")
		if err != nil {
			panic(fmt.Sprintf("livefed: token refresh: %v", err))
		}
		cli.SetToken(g.AccessToken)
	}
	isExpiredToken := func(err error) bool {
		var apiErr *client.APIError
		return errors.As(err, &apiErr) &&
			apiErr.StatusCode == http.StatusUnauthorized &&
			strings.Contains(apiErr.Message, "token expired")
	}

	oneRequest := func(cli *client.Client, i int) {
		advance(i)
		logical.Add(1)
		req := openaiapi.ChatCompletionRequest{
			Model:     liveFedModel,
			Messages:  []openaiapi.Message{{Role: "user", Content: liveFedPrompt(i)}},
			MaxTokens: 16,
		}
		failoverBefore := counterOf(sys, "failover_success")
		start := sys.Clock.Now()
		issue := func() (err error) {
			if c.StreamEvery > 0 && i%c.StreamEvery == 0 {
				_, err = cli.ChatCompletionStream(context.Background(), req, func(string) {})
			} else {
				_, err = cli.ChatCompletion(context.Background(), req)
			}
			return err
		}
		err := issue()
		if isExpiredToken(err) {
			refresh(cli)
			err = issue()
		}
		lat := sys.Clock.Since(start).Seconds()

		mu.Lock()
		defer mu.Unlock()
		switch {
		case err == nil:
			lats = append(lats, lat)
			if c.Concurrency <= 1 && counterOf(sys, "failover_success") > failoverBefore {
				row.FailoverOK++
			} else {
				row.OK++
			}
		case isShed(err):
			row.Shed++
		case isTypedErr(err):
			row.TypedErr++
			if liveFedErrHook != nil {
				liveFedErrHook(i, err)
			}
		default:
			row.Untyped++
			if liveFedErrHook != nil {
				liveFedErrHook(i, err)
			}
		}
	}

	runStart := sys.Clock.Now()
	if c.Concurrency <= 1 {
		cli := newClient()
		for i := 0; i < c.Requests; i++ {
			if i%tokenRefreshEvery == 0 {
				refresh(cli)
			}
			oneRequest(cli, i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < c.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cli := newClient()
				for issued := 0; ; issued++ {
					i := int(next.Add(1)) - 1
					if i >= c.Requests {
						return
					}
					if issued%tokenRefreshEvery == 0 {
						refresh(cli)
					}
					oneRequest(cli, i)
				}
			}()
		}
		wg.Wait()
	}
	// The executed schedule records the measured arrival tempo (requests
	// per simulated second) so the twin replays the storm at the rate the
	// live stack actually ran, not a guessed constant.
	if elapsed := sys.Clock.Since(runStart).Seconds(); elapsed > 0 && c.Requests > 0 {
		sched.RatePerSec = roundRate(float64(c.Requests) / elapsed)
	}
	row.Schedule = sched
	row.LogicalTicks = logical.Load()

	sort.Float64s(lats)
	row.MedS = percentileOf(lats, 0.50)
	row.P99S = percentileOf(lats, 0.99)
	row.ServerAttempts = counterOf(sys, "infer_attempts")
	row.FailoverAttempts = counterOf(sys, "failover_attempts")
	row.FailoverSuccess = counterOf(sys, "failover_success")
	row.LoadShed = counterOf(sys, "load_shed")
	row.AuthRechecks = counterOf(sys, "auth_rechecks")
	row.RungActive = counterOf(sys, "route_"+string(federationReasonActive))
	row.RungCapacity = counterOf(sys, "route_"+string(federationReasonCapacity))
	row.RungFirstConf = counterOf(sys, "route_"+string(federationReasonFirstConf))
	if sys.Gateway.Breakers() != nil {
		row.Trips = sys.Gateway.Breakers().Trips()
	}
	st := chaos.Stats()
	roundTrips := st.Refused.Load() + st.Synth5xx.Load() + st.CutStream.Load() + st.Passed.Load()
	if c.Requests > 0 {
		row.RetryAmp = float64(roundTrips) / float64(c.Requests)
	}
	row.Chaos = st.Snapshot()
	return row
}

// Reason strings are mirrored here rather than imported to keep livefed's
// import graph identical to the gateway's metric names.
const (
	federationReasonActive    = "model-active"
	federationReasonCapacity  = "cluster-has-capacity"
	federationReasonFirstConf = "first-configured"
)

// armLiveFedEndpoint wraps the endpoint's infer function with the cell's
// fault schedule. Attempt numbers are counted per request index so a
// failover or retry of the same request re-draws (transients clear).
func armLiveFedEndpoint(ep *fabric.Endpoint, epIdx int, c LiveFedCell, cellSeed uint64) {
	var mu sync.Mutex
	seen := make(map[int]int)
	nEps := c.Clusters
	ep.RegisterFunction(fabric.FnInfer, func(ctx context.Context, payload []byte) ([]byte, error) {
		var req fabric.InferRequest
		if err := fabric.UnmarshalPayload(payload, &req); err != nil {
			return nil, err
		}
		if idx := liveFedIndex(req.Prompt); idx >= 0 {
			mu.Lock()
			attempt := seen[idx]
			seen[idx] = attempt + 1
			mu.Unlock()
			if c.PUnauthorized > 0 {
				//firstlint:allow seedflow idx<<20^epIdx spans disjoint bit ranges (cluster counts are single digits) and Draw mixes the fold; rewriting it would invalidate the committed calibration schedules
				if chaosnet.Draw(cellSeed^0x401, uint64(idx)<<20^uint64(epIdx), uint32(attempt), 6) < c.PUnauthorized {
					return nil, fabric.ErrUnauthorized
				}
			}
			if c.Faults.Faulty(cellSeed, idx, epIdx, nEps, attempt) {
				return nil, errInjectedFault
			}
		}
		d, ok := ep.Deployment(req.Model)
		if !ok {
			return nil, fmt.Errorf("fabric: endpoint %s does not host %s", ep.ID(), req.Model)
		}
		res, err := d.Generate(ctx, req)
		if err != nil {
			return nil, err
		}
		return fabric.MarshalPayload(res), nil
	})
}

func counterOf(sys *core.System, name string) int64 {
	return sys.Metrics.Snapshot().Counters[name]
}

// isShed: the request was load-shed with a 503 (gateway all-breakers-open
// or a chaosnet-synthesized upstream 503 that outlived the retry budget).
func isShed(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusServiceUnavailable
}

// isTypedErr: the client saw a well-typed failure it can act on.
func isTypedErr(err error) bool {
	var apiErr *client.APIError
	var refused *chaosnet.RefusedError
	return errors.As(err, &apiErr) ||
		errors.As(err, &refused) ||
		errors.Is(err, openaiapi.ErrStreamTruncated) ||
		errors.Is(err, client.ErrMalformedResponse) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

func percentileOf(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
