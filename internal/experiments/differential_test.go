package experiments

// Differential determinism suite: the calendar-queue kernel must reproduce
// the 4-ary heap reference bit for bit on the real experiment workloads —
// same structs, same floats, same rendered report bytes. This is the
// tentpole acceptance gate for swapping the kernel's event queue.

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/argonne-first/first/internal/sim"
)

var heapRef = Fleet{Workers: 1, Queue: sim.QueueHeap}

func TestQueueDifferentialFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	cal := RunFig3On(Sequential, DefaultSeed)
	heap := RunFig3On(heapRef, DefaultSeed)
	if !reflect.DeepEqual(cal, heap) {
		t.Errorf("Fig3 diverges between calendar and heap kernels:\ncal:  %+v\nheap: %+v", cal, heap)
	}
}

func TestQueueDifferentialTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	cal := RunTable1On(Sequential, DefaultSeed)
	heap := RunTable1On(heapRef, DefaultSeed)
	if !reflect.DeepEqual(cal, heap) {
		t.Errorf("Table1 diverges between calendar and heap kernels")
	}
}

func TestQueueDifferentialStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	cal := RunStormOn(Sequential, DefaultSeed)
	heap := RunStormOn(heapRef, DefaultSeed)
	if !reflect.DeepEqual(cal, heap) {
		t.Errorf("Storm diverges between calendar and heap kernels:\ncal:  %+v\nheap: %+v", cal, heap)
	}
}

// TestQueueDifferentialReport renders the full paper report on both kernels
// (and with the heap side fanned out in parallel, so arena recycling and
// worker scheduling are exercised too): the bytes must be identical.
func TestQueueDifferentialReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	var cal, heap bytes.Buffer
	if err := ReportOn(&cal, "all", DefaultSeed, Parallel); err != nil {
		t.Fatal(err)
	}
	if err := ReportOn(&heap, "all", DefaultSeed, Fleet{Queue: sim.QueueHeap}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cal.Bytes(), heap.Bytes()) {
		t.Error("rendered report differs between calendar and heap kernels")
	}
}
