package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/argonne-first/first/internal/desmodel"
	"github.com/argonne-first/first/internal/sim"
)

// Fleet executes the independent cells of an experiment (figure rate
// points, table concurrency×window cells, ablation arms) on parallel
// goroutines. Every cell owns a private kernel, workload trace, and RNG
// whose seed derives deterministically from the experiment seed and the
// cell's identity, so results are byte-identical whether cells run
// sequentially or spread across GOMAXPROCS workers — cells write into
// pre-sized result slots indexed by cell, never append under a lock.
//
// Each worker owns a desmodel.Arena recycling its kernel and serving-engine
// structures across the cells it executes (reset, not reallocated), so a
// fleet run's steady-state allocation cost is one arena per worker rather
// than one kernel+engines per cell.
type Fleet struct {
	// Workers is the goroutine count: 0 means GOMAXPROCS, 1 forces the
	// sequential path (used by the determinism tests as the reference).
	Workers int
	// Queue selects the kernel event-queue implementation for every cell:
	// the calendar queue by default, the 4-ary heap reference for the
	// differential determinism suite.
	Queue sim.QueueKind
	// Par, when positive, runs the federation families' cells on the
	// sharded conservative-window kernel (desmodel.NewParFederation) with
	// Par window executors per cell, instead of the sequential single
	// kernel. Par=1 is the parallel reference (identical model, zero
	// goroutines); the par-diff suite pins every Par/Queue combination
	// byte-identical to it. Families without a parallel driver ignore Par.
	Par int
}

// Sequential is the single-goroutine reference fleet.
var Sequential = Fleet{Workers: 1}

// Parallel is the default fleet used by Run* entry points.
var Parallel = Fleet{}

// Run invokes cell(i) for every i in [0, n), fanning out across the fleet's
// workers. It returns after every cell completes. Cells must be independent:
// no shared kernels, RNGs, or result appends.
func (f Fleet) Run(n int, cell func(i int)) {
	f.RunArena(n, func(i int, _ *desmodel.Arena) { cell(i) })
}

// RunArena is Run for cells that build DES scenarios: each worker passes its
// private arena so the cell can recycle the worker's kernel and engines
// (call a.Begin() first, then construct systems with the *In constructors).
func (f Fleet) RunArena(n int, cell func(i int, a *desmodel.Arena)) {
	if n <= 0 {
		return
	}
	w := f.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		a := desmodel.NewArena(f.Queue)
		for i := 0; i < n; i++ {
			cell(i, a)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	// A cell panic (e.g. an experiment's config validation) must surface on
	// the caller's goroutine like the sequential path, not kill the process
	// from an anonymous worker: capture the first one and re-raise it after
	// the fleet joins.
	var panicOnce sync.Once
	var panicked any
	wg.Add(w)
	for p := 0; p < w; p++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			a := desmodel.NewArena(f.Queue)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				cell(i, a)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
