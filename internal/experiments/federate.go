package experiments

import (
	"sort"
	"time"

	"github.com/argonne-first/first/internal/chaosnet"
	"github.com/argonne-first/first/internal/desmodel"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/resilience"
	"github.com/argonne-first/first/internal/sim"
	"github.com/argonne-first/first/internal/workload"
)

// The federate experiment family drives the paper's §4.5 federation layer at
// beyond-paper scale: every request flows through the sharded gateway
// front-end, the real federation.Select priority ladder, a real PBS-like
// scheduler per cluster (kernel-driven), and continuous-batching engine
// instances — with mid-run endpoint churn (walltime drains, hard kills, cold
// restarts through Queued→Starting→Running) migrating requests between
// clusters. It is the first scenario where every layer of the reproduction
// runs inside one simulated system.

// FederateCell is one cell of the family: either an open-loop Poisson trace
// (OpenLoopReqs > 0) or a closed-loop WebUI session population.
type FederateCell struct {
	Clusters     int
	OpenLoopReqs int
	RatePerSec   float64
	Sessions     int
	WindowS      int
	ThinkS       int
	// Churn tempo overrides in seconds (0 = DefaultFederationParams): short
	// horizons need faster walltimes to exercise drains and migration.
	ServeWalltimeS int
	DrainGraceS    int
	BGPeriodS      int
	// CordonLeadS, when positive, flags each serving incarnation that many
	// seconds ahead of its walltime drain so the routing ladder steers new
	// work away before the drain fires — the drain-aware twin of a plain
	// open-loop cell (same trace seed), reported as mode "cordon".
	CordonLeadS int

	// Replay turns the cell into a live-storm calibration twin: all churn
	// comes from the recorded schedule (kills, cold restarts, background
	// GPU claims at the live request indices), the single live model is
	// served on the live inventory, and the self-scheduled tempo above is
	// off. Breaker and MaxAttempts mirror the live gateway so avoidance
	// and failover budgets match.
	Replay          *chaosnet.Schedule
	ReplayModel     string
	NodesPerCluster int
	GPUsPerNode     int
	Breaker         resilience.BreakerConfig
	MaxAttempts     int
}

// params resolves the cell's federation parameters.
func (c FederateCell) params() desmodel.FederationParams {
	p := desmodel.DefaultFederationParams(c.Clusters)
	if c.ServeWalltimeS > 0 {
		p.ServeWalltime = time.Duration(c.ServeWalltimeS) * time.Second
	}
	if c.DrainGraceS > 0 {
		p.DrainGrace = time.Duration(c.DrainGraceS) * time.Second
	}
	if c.BGPeriodS > 0 {
		p.BGPeriod = time.Duration(c.BGPeriodS) * time.Second
		p.BGStagger = p.BGPeriod / 5
		p.BGWalltime = p.BGPeriod * 2 / 3
	}
	if c.CordonLeadS > 0 {
		p.CordonLead = time.Duration(c.CordonLeadS) * time.Second
	}
	if c.Replay != nil {
		p.Models = []perfmodel.ModelSpec{perfmodel.Default.MustLookup(c.ReplayModel)}
		p.NodesPerCluster = c.NodesPerCluster
		p.GPUsPerNode = c.GPUsPerNode
		// Walltime churn and periodic background jobs are the replayed
		// schedule's job now; the self-scheduled tempo would double-count
		// them. The serve walltime just needs to outlive any horizon.
		p.ServeWalltime = 100_000_000 * time.Second
		p.DrainGrace = time.Second
		p.BGPeriod = 0
		p.Replay = &desmodel.ReplayParams{
			Schedule:    *c.Replay,
			Breaker:     c.Breaker,
			MaxAttempts: c.MaxAttempts,
		}
	}
	return p
}

// FederateCells is the full-scale family the ROADMAP calls for: 10⁶
// open-loop requests through a 4-cluster federation (plus 2- and 8-cluster
// sweep points) and 10⁴ closed-loop WebUI sessions.
var FederateCells = []FederateCell{
	{Clusters: 2, OpenLoopReqs: 200_000, RatePerSec: 200},
	{Clusters: 4, OpenLoopReqs: 1_000_000, RatePerSec: 200},
	{Clusters: 8, OpenLoopReqs: 200_000, RatePerSec: 200},
	// Drain-aware twin of the c8 cell above: identical trace, serving
	// incarnations cordoned 30 s before their walltime drain so the ladder
	// stops feeding them — the record's migration-penalty comparison. The
	// twin needs the wide topology: cordoning only changes a routing
	// decision when an uncordoned alternative exists (idle capacity or an
	// active sibling), and the packed 2-cluster sweep point offers neither,
	// so its twin would ride the dying instance anyway (rung 2b) and
	// reproduce the drain-blind trace byte for byte.
	{Clusters: 8, OpenLoopReqs: 200_000, RatePerSec: 200, CordonLeadS: 30},
	{Clusters: 4, Sessions: 10_000, WindowS: 300, ThinkS: 30,
		ServeWalltimeS: 120, DrainGraceS: 60, BGPeriodS: 150},
}

// FederateCellsShort is the scaled-down family for per-PR differential
// tests; the nightly CI job runs the full one (see TestFederateFullScale).
var FederateCellsShort = []FederateCell{
	{Clusters: 2, OpenLoopReqs: 20_000, RatePerSec: 200,
		ServeWalltimeS: 45, DrainGraceS: 15, BGPeriodS: 80},
	{Clusters: 4, OpenLoopReqs: 40_000, RatePerSec: 200,
		ServeWalltimeS: 45, DrainGraceS: 15, BGPeriodS: 80},
	{Clusters: 3, Sessions: 1_000, WindowS: 120, ThinkS: 30,
		ServeWalltimeS: 45, DrainGraceS: 15, BGPeriodS: 80},
}

// FederateRow is one cell's results.
type FederateRow struct {
	Clusters int
	Mode     string // "open", "cordon" (drain-aware open twin), or "webui"
	Offered  int    // open-loop trace length or issued session turns
	M        desmodel.Metrics

	Rungs      desmodel.FedRungs
	Migrations int64
	// MigratedMedianS is the median end-to-end latency of migrated requests
	// (the churn penalty clients actually observe).
	MigratedMedianS float64
	ColdStarts      int
	Drains          int
	HardKills       int
	// UtilMeanPct / UtilMaxPct are cluster GPU-busy utilization over the
	// horizon (mean and busiest cluster).
	UtilMeanPct float64
	UtilMaxPct  float64
	// SchedQueuedPeak is the deepest scheduler queue across clusters.
	SchedQueuedPeak int
	// ReplayTrips counts twin breaker trips under a replayed schedule
	// (calibration column against the live gateway's trip count).
	ReplayTrips int64
}

// federateEventBudget aborts a runaway cell: background jobs self-schedule
// forever, so a request-accounting bug would otherwise spin the kernel
// silently instead of failing loudly.
const federateEventBudget = 400_000_000

// RunFederate regenerates the full family on the default parallel fleet.
func RunFederate(seed int64) []FederateRow { return RunFederateOn(Parallel, seed) }

// RunFederateOn regenerates the full family on f.
func RunFederateOn(f Fleet, seed int64) []FederateRow {
	return RunFederateCellsOn(f, seed, FederateCells)
}

// RunFederateCellsOn fans the given cells over the fleet. Each cell's RNG
// seeds derive from (seed, cell shape) only, so results are byte-identical
// across worker counts and queue kinds.
func RunFederateCellsOn(f Fleet, seed int64, cells []FederateCell) []FederateRow {
	rows := make([]FederateRow, len(cells))
	if f.Par > 0 {
		// Sharded conservative-window mode: each cell builds its own shard
		// set (no arena — shards own their kernels), traces unchanged.
		f.Run(len(cells), func(i int) {
			c := cells[i]
			if c.OpenLoopReqs > 0 {
				rows[i] = federateOpenPar(f, c, seed)
			} else {
				rows[i] = federateWebUIPar(f, c, seed)
			}
		})
		return rows
	}
	f.RunArena(len(cells), func(i int, a *desmodel.Arena) {
		c := cells[i]
		if c.OpenLoopReqs > 0 {
			rows[i] = federateOpen(a, c, seed)
		} else {
			rows[i] = federateWebUI(a, c, seed)
		}
	})
	return rows
}

// federateOpen drives an open-loop Poisson trace; arrivals self-schedule so
// the kernel never holds the whole trace, and the run stops at the last
// completion (background churn events would otherwise run forever).
func federateOpen(a *desmodel.Arena, c FederateCell, seed int64) FederateRow {
	k := a.Begin()
	k.MaxEvents = federateEventBudget
	defer func() { k.MaxEvents = 0 }()
	p := c.params()
	n := c.OpenLoopReqs
	completed := 0
	sys := desmodel.NewFederationIn(a, p, func(*desmodel.Req) {
		completed++
		if completed == n {
			k.Stop()
		}
	})
	spec := workload.FederateOpen()
	rng := sim.NewRNG(seed + int64(c.Clusters)*1_000_003 + int64(n))
	models := len(p.Models)
	gapMean := float64(time.Second) / c.RatePerSec
	reqs := make([]*desmodel.Req, n)
	idx := 0
	var step func()
	step = func() {
		pt, ot := spec.SampleLengths(rng)
		r := &desmodel.Req{ID: idx + 1, PromptTok: pt, OutputTok: ot, Model: rng.Intn(models)}
		reqs[idx] = r
		// Under replay this fires the schedule's churn events due at this
		// index before the arrival routes — the same ordering the live
		// driver uses (kill/restart/claim, then issue). No-op otherwise.
		sys.ReplayAdvance(idx)
		sys.Arrive(r)
		idx++
		if idx < n {
			k.Schedule(time.Duration(rng.Exp(gapMean)), step)
		}
	}
	k.Schedule(time.Duration(rng.Exp(gapMean)), step)
	end := k.Run(0)
	return federateRow(sys, c, openMode(c), n, reqs, end)
}

// openMode labels an open-loop cell: drain-aware twins report as "cordon"
// so reports and bench records keep the reactive baseline's keys intact.
func openMode(c FederateCell) string {
	if c.CordonLeadS > 0 {
		return "cordon"
	}
	return "open"
}

// federateWebUI drives closed-loop WebUI chat sessions (stateful history,
// think time) against the federation; each session sticks to one model.
func federateWebUI(a *desmodel.Arena, c FederateCell, seed int64) FederateRow {
	k := a.Begin()
	k.MaxEvents = federateEventBudget
	defer func() { k.MaxEvents = 0 }()
	p := c.params()
	think := time.Duration(c.ThinkS) * time.Second
	loop := newClosedLoop(k, workload.WebUI(), seed+int64(c.Clusters)+int64(c.Sessions), c.Sessions, think)
	loop.enableChatHistory(8192)
	models := len(p.Models)
	loop.assign = func(r *desmodel.Req) { r.Model = r.Session % models }
	sys := desmodel.NewFederationIn(a, p, loop.onDone)
	loop.start(sys)
	window := time.Duration(c.WindowS) * time.Second
	end := k.Run(window)
	return federateRow(sys, c, "webui", loop.issued, loop.finished, end)
}

func federateRow(sys *desmodel.Federation, c FederateCell, mode string, offered int, reqs []*desmodel.Req, end sim.Time) FederateRow {
	row := FederateRow{
		Clusters:    c.Clusters,
		Mode:        mode,
		Offered:     offered,
		M:           desmodel.Collect(reqs),
		Rungs:       sys.Rungs(),
		Migrations:  sys.Migrations(),
		ReplayTrips: sys.ReplayBreakerTrips(),
	}
	var migrated []float64
	for _, r := range reqs {
		if r != nil && r.Migrations > 0 && !r.Failed && r.ObservedAt > 0 {
			migrated = append(migrated, sim.Sec(r.ObservedAt-r.ArrivalAt))
		}
	}
	if len(migrated) > 0 {
		sort.Float64s(migrated)
		row.MigratedMedianS = migrated[len(migrated)/2]
	}
	horizon := sim.Sec(end)
	var utilSum float64
	for _, cs := range sys.ClusterStats() {
		row.ColdStarts += cs.ColdStarts
		row.Drains += cs.Drains
		row.HardKills += cs.HardKills
		if cs.SchedQueuedPeak > row.SchedQueuedPeak {
			row.SchedQueuedPeak = cs.SchedQueuedPeak
		}
		util := 0.0
		if horizon > 0 && cs.TotalGPUs > 0 {
			util = 100 * cs.BusyGPUSeconds / (float64(cs.TotalGPUs) * horizon)
		}
		utilSum += util
		if util > row.UtilMaxPct {
			row.UtilMaxPct = util
		}
	}
	if c.Clusters > 0 {
		row.UtilMeanPct = utilSum / float64(c.Clusters)
	}
	return row
}
