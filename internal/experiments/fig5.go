package experiments

import (
	"github.com/argonne-first/first/internal/desmodel"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/serving"
	"github.com/argonne-first/first/internal/workload"
)

// Fig5Row is one system of Figure 5: FIRST serving Llama-3.1-8B (TP=4)
// versus the OpenAI API serving GPT-4o-mini.
type Fig5Row struct {
	System string
	M      desmodel.Metrics

	PaperReqPS   float64
	PaperTokPS   float64
	PaperMedianS float64
}

// Fig5Requests is the benchmark size.
const Fig5Requests = 1000

// RunFig5 regenerates Figure 5 on the default parallel fleet.
func RunFig5(seed int64) []Fig5Row { return RunFig5On(Parallel, seed) }

// RunFig5On regenerates Figure 5 with one fleet cell per system. The FIRST
// side is the open-loop infinite burst; the OpenAI side runs closed-loop at
// the concurrency the provider's rate limits allow (the paper notes its
// OpenAI numbers are rate-limited).
func RunFig5On(f Fleet, seed int64) []Fig5Row {
	gpu := perfmodel.A100_40
	model8b := perfmodel.Default.MustLookup(perfmodel.Llama8B)

	rows := make([]Fig5Row, 2)
	f.RunArena(len(rows), func(i int, a *desmodel.Arena) {
		switch i {
		case 0: // FIRST / Llama-3.1-8B.
			trace := workload.Generate(Fig5Requests, workload.ShareGPTShort(), workload.Infinite(), seed)
			k := a.Begin()
			sys := desmodel.NewFirstSystemIn(a, desmodel.DefaultFirstParams(), model8b, gpu, 1, nil)
			reqs := driveOpenLoop(k, trace, sys)
			k.Run(0)
			rows[i] = Fig5Row{
				System:       "FIRST (Llama-3.1-8B)",
				M:            desmodel.Collect(reqs),
				PaperReqPS:   25.1,
				PaperTokPS:   3283,
				PaperMedianS: 16.3,
			}
		case 1: // OpenAI API / GPT-4o-mini.
			k := a.Begin()
			ext := serving.DefaultOpenAI()
			loop := newClosedLoop(k, workload.ShareGPTShort(), seed, ext.MaxConcurrent, 0)
			sys := desmodel.NewExtAPISystem(k, ext, func(r *desmodel.Req) {
				loop.onDone(r)
				if len(loop.finished) >= Fig5Requests {
					k.Stop()
				}
			})
			loop.start(sys)
			k.Run(0)
			loop.finished = loop.finished[:min(len(loop.finished), Fig5Requests)]
			rows[i] = Fig5Row{
				System:       "OpenAI API (GPT-4o-mini)",
				M:            desmodel.Collect(loop.finished),
				PaperReqPS:   6.7,
				PaperTokPS:   1199,
				PaperMedianS: 2.0,
			}
		}
	})
	return rows
}
