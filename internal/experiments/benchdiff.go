package experiments

// Bench-regression gate: `make bench-diff` compares the two newest
// BENCH_<n>.json perf records and fails when the substrate got slower —
// the ROADMAP's perf-trajectory automation item. Cross-host comparability
// comes from two defenses: per-class host-drift normalization (HostDrifts)
// and a third-newest-record outlier check (vetoOutlierTimings).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WallRegressionThreshold is the relative slowdown tolerated on wall-clock
// series (experiment wall_ms, micro ns_per_op) before bench-diff fails —
// timing jitter is real; a >20% move is not jitter.
const WallRegressionThreshold = 0.20

// wallAbsToleranceMS is the absolute wall-clock floor under which a
// relative move is ignored: a 2 ms experiment cell jitters past 20% on
// scheduler noise alone, and a sub-5 ms swing is not a regression worth
// failing CI over.
const wallAbsToleranceMS = 5.0

// nsAbsToleranceNs is the micro-benchmark equivalent of the wall floor: a
// single-digit-ns hot path (kernel_event ≈ 8 ns/op) moves past 20% on CPU
// frequency variance alone; a sub-5 ns swing is measurement, not code.
const nsAbsToleranceNs = 5.0

// allocAbsTolerance absorbs sub-allocation noise on averaged counts
// (background runtime allocations divided by iteration count); any genuine
// extra allocation per op shows up as ≥ 1.
const allocAbsTolerance = 0.5

// hostDriftMinSeries is the number of timing series two records must share
// before the pooled host-drift estimate engages; below it the sample is too
// small for a median to mean anything and the factor stays 1.
const hostDriftMinSeries = 6

// hostDriftMinClassSeries is the per-class (experiment walls vs micro
// ns/op) threshold: with at least this many ratios inside one class, the
// class gets its own median instead of the pooled one.
const hostDriftMinClassSeries = 4

// hostDriftMax caps the drift correction at 2× — if the records claim the
// host halved in speed, something other than CPU drift is going on and the
// gate should stay loud rather than absorb it.
const hostDriftMax = 2.0

// driftRatios collects the cur/prev ratios of the two timing classes the
// records share: experiment walls and micro ns/op.
func driftRatios(prev, cur BenchRecord) (walls, micros []float64) {
	for name, p := range prev.Experiments {
		if c, ok := cur.Experiments[name]; ok && p.WallMS > 0 {
			walls = append(walls, c.WallMS/p.WallMS)
		}
	}
	for name, p := range prev.Micro {
		if c, ok := cur.Micro[name]; ok && p.NsPerOp > 0 {
			micros = append(micros, c.NsPerOp/p.NsPerOp)
		}
	}
	return walls, micros
}

// driftMedian is the shared estimator core: the median ratio, floored at 1
// (sleep-granularity-bound walls do not speed up with a faster host, so
// only slowdown is safe to normalize away) and capped at hostDriftMax.
func driftMedian(ratios []float64) float64 {
	sort.Float64s(ratios)
	drift := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		drift = (drift + ratios[len(ratios)/2-1]) / 2
	}
	if drift < 1 {
		return 1
	}
	if drift > hostDriftMax {
		return hostDriftMax
	}
	return drift
}

// HostDrift estimates how much slower the current record's host was than
// the previous record's, as the median cur/prev ratio pooled over every
// timing series the two records share. The records in a repository
// accumulate across sessions and machines, so raw wall comparison conflates
// "the code got slower" with "the recording host was slower"; the median
// over many independent series isolates the latter — a genuine code
// regression moves its own series, not the median of all of them. Returns 1
// when fewer than hostDriftMinSeries series are shared.
func HostDrift(prev, cur BenchRecord) float64 {
	walls, micros := driftRatios(prev, cur)
	pooled := append(walls, micros...)
	if len(pooled) < hostDriftMinSeries {
		return 1
	}
	return driftMedian(pooled)
}

// HostDrifts estimates drift per timing class. One host-speed scalar is not
// enough when a shared machine is contended: micro ns/op track raw CPU
// speed (tight single-threaded loops), while multi-millisecond experiment
// walls absorb scheduler steal and sleep-granularity noise, so the two
// classes routinely drift apart — and a pooled median then sits with
// whichever class has more series, leaving the other class's thresholds
// effectively unnormalized. Each class therefore gets its own median when
// it has hostDriftMinClassSeries ratios, falling back to the pooled
// estimate below that.
func HostDrifts(prev, cur BenchRecord) (wall, micro float64) {
	walls, micros := driftRatios(prev, cur)
	pooled := 1.0
	if all := append(append([]float64{}, walls...), micros...); len(all) >= hostDriftMinSeries {
		pooled = driftMedian(all)
	}
	wall, micro = pooled, pooled
	if len(walls) >= hostDriftMinClassSeries {
		wall = driftMedian(walls)
	}
	if len(micros) >= hostDriftMinClassSeries {
		micro = driftMedian(micros)
	}
	return wall, micro
}

// BenchRegression is one flagged series.
type BenchRegression struct {
	Series string // e.g. "micro/kernel_event ns_per_op"
	Prev   float64
	Cur    float64
}

func (r BenchRegression) String() string {
	if r.Prev == 0 {
		// Zero baselines are normal for pinned allocs_per_op series; a
		// relative % would print +Inf.
		return fmt.Sprintf("%-40s %12.2f -> %12.2f (was 0)", r.Series, r.Prev, r.Cur)
	}
	return fmt.Sprintf("%-40s %12.2f -> %12.2f (%+.0f%%)",
		r.Series, r.Prev, r.Cur, 100*(r.Cur-r.Prev)/r.Prev)
}

// DiffBench flags regressions from prev to cur: any experiment whose
// regeneration wall time or any micro-benchmark whose ns/op grew past the
// threshold — after dividing out that class's HostDrifts estimate, so a
// record taken on a slower machine is compared in that machine's units —
// and any micro-benchmark that allocates more per op than before
// (allocation counts are deterministic and host-independent, so they get
// no drift correction and no tolerance: the data plane is pinned at its
// budget). Series missing from either record are skipped, so v1 records
// without a micro section still diff.
func DiffBench(prev, cur BenchRecord) []BenchRegression {
	wallDrift, microDrift := HostDrifts(prev, cur)
	var regs []BenchRegression
	for _, name := range sortedKeys(prev.Experiments) {
		p := prev.Experiments[name]
		c, ok := cur.Experiments[name]
		if !ok || p.WallMS <= 0 {
			continue
		}
		base := p.WallMS * wallDrift
		if c.WallMS > base*(1+WallRegressionThreshold) && c.WallMS-base > wallAbsToleranceMS {
			regs = append(regs, BenchRegression{Series: "experiments/" + name + " wall_ms", Prev: p.WallMS, Cur: c.WallMS})
		}
	}
	for _, name := range sortedKeys(prev.Micro) {
		p := prev.Micro[name]
		c, ok := cur.Micro[name]
		if !ok {
			continue
		}
		base := p.NsPerOp * microDrift
		if p.NsPerOp > 0 && c.NsPerOp > base*(1+WallRegressionThreshold) && c.NsPerOp-base > nsAbsToleranceNs {
			regs = append(regs, BenchRegression{Series: "micro/" + name + " ns_per_op", Prev: p.NsPerOp, Cur: c.NsPerOp})
		}
		if c.AllocsPerOp > p.AllocsPerOp+allocAbsTolerance {
			regs = append(regs, BenchRegression{Series: "micro/" + name + " allocs_per_op", Prev: p.AllocsPerOp, Cur: c.AllocsPerOp})
		}
	}
	return regs
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ReadBench loads one record from path.
func ReadBench(path string) (BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchRecord{}, err
	}
	var rec BenchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return BenchRecord{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return rec, nil
}

// BenchPaths lists dir's BENCH_<n>.json files in ascending n order.
func BenchPaths(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type numbered struct {
		n    int
		path string
	}
	var found []numbered
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json"))
		if err != nil {
			continue
		}
		found = append(found, numbered{n, filepath.Join(dir, name)})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	paths := make([]string, len(found))
	for i, f := range found {
		paths[i] = f.path
	}
	return paths, nil
}

// vetoOutlierTimings drops flagged timing series that do not also regress
// against the second-newest baseline. Records accumulate one per session on
// whatever machine that session got, so a single series in the newest
// baseline can be anomalously fast (a lucky scheduling window) without the
// record-wide drift medians noticing — and every successor then fails that
// series forever. A real code regression is slower than *both* baselines;
// only timing series are vetoed (allocation counts are deterministic, so a
// prev-only alloc regression means the previous PR improved the budget and
// this one gave it back — that must stay loud). A series the older
// baseline does not carry cannot veto: it stays flagged.
func vetoOutlierTimings(regs []BenchRegression, prev2, cur BenchRecord) (kept []BenchRegression, suppressed int) {
	flagged2 := make(map[string]bool)
	for _, r := range DiffBench(prev2, cur) {
		flagged2[r.Series] = true
	}
	has := func(series string) bool {
		if name, ok := strings.CutSuffix(series, " wall_ms"); ok {
			p, ok := prev2.Experiments[strings.TrimPrefix(name, "experiments/")]
			return ok && p.WallMS > 0
		}
		if name, ok := strings.CutSuffix(series, " ns_per_op"); ok {
			p, ok := prev2.Micro[strings.TrimPrefix(name, "micro/")]
			return ok && p.NsPerOp > 0
		}
		return false // allocs_per_op: never vetoed
	}
	for _, r := range regs {
		if !flagged2[r.Series] && has(r.Series) {
			suppressed++
			continue
		}
		kept = append(kept, r)
	}
	return kept, suppressed
}

// DiffLatest diffs the two newest records in dir, consulting the third-
// newest (when present) as an outlier check: a timing series that regressed
// only against the newest baseline — not against the one before it — marks
// that baseline as anomalously fast for the series, not the code as slower.
// With fewer than two records — a fork's shallow checkout carrying only
// one, or a fresh tree with none — there is nothing to compare and the diff
// is skipped, not failed: skipped is true and the notice says what to do
// about it. A missing directory stays an error: that is a mistyped
// -diff-dir or the wrong working directory, and a silent pass there would
// green-light the gate while comparing nothing.
func DiffLatest(dir string) (regs []BenchRegression, notice string, skipped bool, err error) {
	paths, err := BenchPaths(dir)
	if os.IsNotExist(err) {
		return nil, "", false, fmt.Errorf("bench-diff: directory %s does not exist; run from the repository root (or pass -diff-dir)", dir)
	}
	if err != nil {
		return nil, "", false, err
	}
	if len(paths) < 2 {
		return nil, fmt.Sprintf("skipped — found %d BENCH_<n>.json record(s) in %s, need 2 to compare; run `make bench` to add one", len(paths), dir), true, nil
	}
	prevPath, curPath := paths[len(paths)-2], paths[len(paths)-1]
	prev, err := ReadBench(prevPath)
	if err != nil {
		return nil, "", false, err
	}
	cur, err := ReadBench(curPath)
	if err != nil {
		return nil, "", false, err
	}
	notice = fmt.Sprintf("comparing %s -> %s", filepath.Base(prevPath), filepath.Base(curPath))
	if wall, micro := HostDrifts(prev, cur); wall > 1 || micro > 1 {
		notice += fmt.Sprintf(" (host-speed drift ×%.2f walls, ×%.2f micros — class medians over shared series; thresholds normalized)", wall, micro)
	}
	regs = DiffBench(prev, cur)
	if len(regs) > 0 && len(paths) >= 3 {
		prev2, err := ReadBench(paths[len(paths)-3])
		if err != nil {
			return nil, "", false, err
		}
		var suppressed int
		regs, suppressed = vetoOutlierTimings(regs, prev2, cur)
		if suppressed > 0 {
			notice += fmt.Sprintf("\n%d timing series regressed vs %s but not vs %s — treated as per-series outliers in the newer baseline, not regressions",
				suppressed, filepath.Base(prevPath), filepath.Base(paths[len(paths)-3]))
		}
	}
	return regs, notice, false, nil
}
