package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/argonne-first/first/internal/chaosnet"
	"github.com/argonne-first/first/internal/desmodel"
)

// calRow builds a synthetic row with the given rung counts and re-route
// pressure on both sides.
func calRow(reqs int, liveA, liveC int64, liveFO int64, simA, simC int64, simMigr int64) LiveFedRow {
	r := LiveFedRow{Requests: reqs, RungActive: liveA, RungCapacity: liveC, FailoverAttempts: liveFO}
	r.Sim.Offered = reqs
	r.Sim.Rungs = desmodel.FedRungs{Active: simA, Capacity: simC}
	r.Sim.Migrations = simMigr
	return r
}

// TestCalibrationTolerances pins the gate arithmetic on synthetic rows:
// which gaps pass, which trip, and how degenerate rates are handled.
func TestCalibrationTolerances(t *testing.T) {
	cases := []struct {
		name     string
		row      LiveFedRow
		wantPass bool
		wantWord string // substring expected in a violation, "" = none
	}{
		{
			name:     "identical sides pass",
			row:      calRow(1000, 900, 100, 150, 900, 100, 150),
			wantPass: true,
		},
		{
			name:     "gap inside tolerance passes",
			row:      calRow(1000, 920, 80, 150, 900, 100, 150), // 2 pts
			wantPass: true,
		},
		{
			name:     "rung gap past 5 pts trips",
			row:      calRow(1000, 1000, 0, 150, 900, 100, 150), // 10 pts
			wantPass: false,
			wantWord: "rung share gap",
		},
		{
			name:     "rate ratio past 2x trips",
			row:      calRow(1000, 900, 100, 200, 900, 100, 50), // 0.2 vs 0.05 = 4x
			wantPass: false,
			wantWord: "ratio",
		},
		{
			name:     "one-sided re-routing trips hard",
			row:      calRow(1000, 900, 100, 200, 900, 100, 0), // live 0.2, sim 0
			wantPass: false,
			wantWord: "ratio",
		},
		{
			name:     "both sides too quiet to compare pass vacuously",
			row:      calRow(1000, 900, 100, 5, 900, 100, 0), // 0.005 vs 0
			wantPass: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cal := c.row.Calibrate()
			if cal.Pass != c.wantPass {
				t.Fatalf("Pass = %v, want %v (cal %+v)", cal.Pass, c.wantPass, cal)
			}
			if c.wantWord != "" {
				found := false
				for _, v := range cal.Violations {
					if strings.Contains(v, c.wantWord) {
						found = true
					}
				}
				if !found {
					t.Errorf("violations %v missing %q", cal.Violations, c.wantWord)
				}
			}
		})
	}
}

// TestWriteCalibArtifact round-trips a divergent cell's artifact: the
// preserved schedule must read back canonical-identical (so the offline
// replay is the same storm), and the verdict must carry the violations.
func TestWriteCalibArtifact(t *testing.T) {
	dir := t.TempDir()
	row := calRow(500, 500, 0, 100, 400, 100, 10)
	row.Clusters = 2
	row.Schedule = LiveFedCellsShort[0].BuildSchedule(0xabc)
	row.Schedule.RatePerSec = 0.01
	cal := row.Calibrate()
	if cal.Pass {
		t.Fatal("synthetic divergent row unexpectedly passed")
	}
	schedPath, err := WriteCalibArtifact(dir, row, cal)
	if err != nil {
		t.Fatal(err)
	}
	got, err := chaosnet.ReadSchedule(schedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(row.Schedule.Canonical(), got.Canonical()) {
		t.Error("preserved schedule is not canonical-identical to the executed one")
	}
	verdict, err := os.ReadFile(filepath.Join(dir, "livefed_c2_r500_verdict.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back Calibration
	if err := json.Unmarshal(verdict, &back); err != nil {
		t.Fatal(err)
	}
	if back.Pass || len(back.Violations) == 0 {
		t.Errorf("verdict artifact lost the failure: %+v", back)
	}
}

// TestLiveFedCalibrationGate is the per-PR gate (`make calibrate`): the
// short live storm and its DES twin — one executed schedule, two executors
// — must land within tolerance, and both sides must actually have been
// stormy enough for the comparison to mean something.
func TestLiveFedCalibrationGate(t *testing.T) {
	rows := RunLiveFedCellsOn(Sequential, DefaultSeed, LiveFedCellsShort)
	for _, r := range rows {
		if r.Sim.Offered == 0 || r.Sim.M.Completed == 0 {
			t.Fatalf("c%d: sim twin did not run: %+v", r.Clusters, r.Sim)
		}
		if r.Sim.M.Completed != r.Requests {
			t.Errorf("c%d: twin completed %d of %d replayed requests (conservation broken)",
				r.Clusters, r.Sim.M.Completed, r.Requests)
		}
		la, _, _ := rungShares(r.RungActive, r.RungCapacity, r.RungFirstConf)
		sa, _, _ := rungShares(r.Sim.Rungs.Active, r.Sim.Rungs.Capacity, r.Sim.Rungs.FirstConf)
		if la < 50 || sa < 50 {
			t.Errorf("c%d: active-rung share live %.1f%% / sim %.1f%%, want majorities", r.Clusters, la, sa)
		}
		if r.FailoverAttempts == 0 {
			t.Errorf("c%d: live side saw no failover attempts under the storm", r.Clusters)
		}
		if r.Sim.Migrations == 0 {
			t.Errorf("c%d: sim twin saw no migrations — replayed storm too quiet", r.Clusters)
		}
		if r.Sim.HardKills == 0 {
			t.Errorf("c%d: twin replayed no hard kills — schedule events did not fire", r.Clusters)
		}
		cal := r.Calibrate()
		if !cal.Pass {
			t.Errorf("c%d: calibration gate FAILED: %v", r.Clusters, cal.Violations)
		}
		t.Logf("c%d: rung gap %.2f pts (≤%.1f), ratio %.2fx (≤%.1fx), live fo/req %.4f vs sim migr/req %.4f",
			r.Clusters, cal.RungGapPts, CalibRungTolerancePts,
			cal.RateRatio, CalibRateRatioMax, cal.LiveFailoverPerReq, cal.SimMigrationsPerReq)
	}
}
