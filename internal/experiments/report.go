package experiments

import (
	"fmt"
	"io"
)

// Report renders every experiment to w in the paper's row/series layout
// with paper-vs-measured columns on the default parallel fleet;
// cmd/first-bench drives it.
func Report(w io.Writer, which string, seed int64) error {
	return ReportOn(w, which, seed, Parallel)
}

// ReportOn is Report with an explicit fleet (workers=1 reproduces the
// sequential reference run byte for byte).
func ReportOn(w io.Writer, which string, seed int64, f Fleet) error {
	all := which == "" || which == "all"
	ran := false
	if all || which == "fig3" {
		ReportFig3(w, RunFig3On(f, seed))
		ran = true
	}
	if all || which == "fig4" {
		ReportFig4(w, RunFig4On(f, seed))
		ran = true
	}
	if all || which == "fig5" {
		ReportFig5(w, RunFig5On(f, seed))
		ran = true
	}
	if all || which == "table1" {
		ReportTable1(w, RunTable1On(f, seed))
		ran = true
	}
	if all || which == "batch" {
		ReportBatch(w, RunBatch(seed), RunBatchAmortizationOn(f, seed))
		ran = true
	}
	if all || which == "opt1" {
		ReportAblation(w, "Optimization 1: result polling vs futures", RunOpt1PollingOn(f, seed), false)
		ran = true
	}
	if all || which == "opt2" {
		ReportAblation(w, "Optimization 2: per-request introspection vs token cache", RunOpt2AuthCacheOn(f, seed), false)
		ran = true
	}
	if all || which == "opt3" {
		ReportAblation(w, "Optimization 3: sync (9 workers) vs async gateway — Artillery 100 req/s × 300 s", RunOpt3AsyncGatewayOn(f, seed), true)
		ran = true
	}
	if all || which == "routing" {
		ReportRouting(w, RunAblationRoutingOn(f, seed))
		ran = true
	}
	if all || which == "storm" {
		ReportStorm(w, RunStormOn(f, seed))
		ran = true
	}
	if all || which == "federate" {
		ReportFederate(w, RunFederateOn(f, seed))
		ran = true
	}
	if all || which == "autoscale" {
		ReportAutoScale(w, RunAutoScaleOn(f, seed))
		ran = true
	}
	// livefed is explicit-only: its live cells run on the scaled wall
	// clock, so the latency columns are not byte-identical across runs and
	// would break the rendered-report determinism suites that pin "all".
	if which == "livefed" {
		ReportLiveFed(w, RunLiveFedOn(f, seed))
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want fig3|fig4|fig5|table1|batch|opt1|opt2|opt3|routing|storm|federate|autoscale|livefed|all)", which)
	}
	return nil
}

// ReportLiveFed prints the live-stack chaos family and its sim-vs-real
// calibration table: outcome census under the seeded fault storm, then the
// live routing-rung shares, tail latency, and failover pressure next to
// the DES twin's.
func ReportLiveFed(w io.Writer, rows []LiveFedRow) {
	fmt.Fprintln(w, "== Live federation under fire: seeded chaos through the real stack, calibrated against the DES ==")
	fmt.Fprintln(w, "clus  reqs   ok    failover-ok  shed  typed-err  untyped  retry-amp  trips  rechecks")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4d %6d %6d %10d %6d %9d %8d  %8.2f  %5d  %8d\n",
			r.Clusters, r.Requests, r.OK, r.FailoverOK, r.Shed, r.TypedErr, r.Untyped,
			r.RetryAmp, r.Trips, r.AuthRechecks)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "calibration (live vs DES twin replaying the executed schedule):")
	fmt.Fprintf(w, "clus  rung a/c/f live%%            rung a/c/f sim%%             p99 live/sim(s)   failover-per-req live/sim   gap(pts)  ratio  gate(±%.0fpts, %.0fx)\n",
		CalibRungTolerancePts, CalibRateRatioMax)
	for _, r := range rows {
		la, lc, lf := rungShares(r.RungActive, r.RungCapacity, r.RungFirstConf)
		sa, sc, sf := rungShares(r.Sim.Rungs.Active, r.Sim.Rungs.Capacity, r.Sim.Rungs.FirstConf)
		cal := r.Calibrate()
		verdict := "PASS"
		if !cal.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "%-4d  %5.1f/%5.1f/%5.1f           %5.1f/%5.1f/%5.1f            %6.2f/%6.2f     %8.4f/%8.4f      %7.2f  %5.2f  %s\n",
			r.Clusters, la, lc, lf, sa, sc, sf, r.P99S, r.Sim.M.P99LatS,
			cal.LiveFailoverPerReq, cal.SimMigrationsPerReq,
			cal.RungGapPts, cal.RateRatio, verdict)
		for _, v := range cal.Violations {
			fmt.Fprintf(w, "      !! %s\n", v)
		}
	}
	fmt.Fprintln(w)
}

// rungShares converts rung counts to percentages.
func rungShares(a, c, f int64) (float64, float64, float64) {
	total := a + c + f
	if total == 0 {
		return 0, 0, 0
	}
	return 100 * float64(a) / float64(total), 100 * float64(c) / float64(total), 100 * float64(f) / float64(total)
}

// ReportAutoScale prints the Fig4-style elastic-deployment family: shifting
// demand growing and shrinking per-cluster instance pools through the real
// scheduler cold-start and drain paths.
func ReportAutoScale(w io.Writer, rows []AutoScaleRow) {
	fmt.Fprintln(w, "== Auto-scaling: elastic instance pools inside federated clusters (Fig4 beyond paper size) ==")
	fmt.Fprintln(w, "shape       clus  offered   done     req/s  med-lat(s)  p99(s)  up/pre/down/refuse  peak-inst  cold/drain/kill  migr    util mean/max%")
	for _, r := range rows {
		shape := r.Shape
		if r.Predictive {
			shape += "+pred"
		}
		fmt.Fprintf(w, "%-11s %-4d %8d %8d %8.1f  %9.2f %7.2f  %4d/%3d/%4d/%5d  %9d  %4d/%4d/%3d %8d    %5.1f/%5.1f\n",
			shape, r.Clusters, r.Offered, r.M.Completed, r.M.ReqPerSec, r.M.MedianLatS, r.M.P99LatS,
			r.ScaleUps, r.PreWarms, r.ScaleDowns, r.ScaleRefused, r.PeakInstances,
			r.ColdStarts, r.Drains, r.HardKills, r.Migrations,
			r.UtilMeanPct, r.UtilMaxPct)
	}
	fmt.Fprintln(w)
}

// ReportFederate prints the federation-at-scale family: open-loop traces and
// closed-loop WebUI sessions routed by the real priority ladder across 2-8
// churning clusters.
func ReportFederate(w io.Writer, rows []FederateRow) {
	fmt.Fprintln(w, "== Federation at scale: priority routing across churning clusters (§4.5 beyond paper size) ==")
	fmt.Fprintln(w, "mode   clus  offered   done     req/s  med-lat(s)  p99(s)  rung a/c/f              migr  migr-med(s)  cold/drain/kill  util mean/max%  sq-peak")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-4d %8d %8d %8.1f  %9.2f %7.2f  %8d/%7d/%5d %7d  %10.2f  %4d/%4d/%3d   %5.1f/%5.1f     %5d\n",
			r.Mode, r.Clusters, r.Offered, r.M.Completed, r.M.ReqPerSec, r.M.MedianLatS, r.M.P99LatS,
			r.Rungs.Active, r.Rungs.Capacity, r.Rungs.FirstConf,
			r.Migrations, r.MigratedMedianS,
			r.ColdStarts, r.Drains, r.HardKills,
			r.UtilMeanPct, r.UtilMaxPct, r.SchedQueuedPeak)
	}
	fmt.Fprintln(w)
}

// ReportStorm prints the arrival-storm study: front-end admission under a
// flood of distinct one-shot users, single lock vs sharded.
func ReportStorm(w io.Writer, rows []StormRow) {
	fmt.Fprintf(w, "== Arrival storm: gateway front-end admission, %.0g req/s offered, sharded vs single lock ==\n", StormRatePerSec)
	fmt.Fprintln(w, "users     shards  adm-req/s   med-lat(us)   p99-lat(us)  peak-shard-queue")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9d %-6d %10.0f  %11.1f  %11.1f  %12d\n",
			r.Users, r.Shards, r.M.ReqPerSec, r.M.MedianLatS*1e6, r.M.P99LatS*1e6, r.PeakShardQueue)
	}
	fmt.Fprintln(w)
}

// ReportRouting prints the routing-policy ablation.
func ReportRouting(w io.Writer, rows []RoutingRow) {
	fmt.Fprintln(w, "== Design ablation: instance routing policy (4×70B, heavy-tailed load) ==")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s req/s=%6.2f tok/s=%7.0f med-lat=%6.2fs p99=%7.2fs\n",
			r.Policy, r.M.ReqPerSec, r.M.TokPerSec, r.M.MedianLatS, r.M.P99LatS)
	}
	fmt.Fprintln(w)
}

func pv(measured, paper float64) string {
	if paper == 0 {
		return fmt.Sprintf("%8.1f        —", measured)
	}
	return fmt.Sprintf("%8.1f %8.1f", measured, paper)
}

// ReportFig3 prints Figure 3's four panels as a table.
func ReportFig3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintln(w, "== Figure 3: FIRST vs vLLM-Direct, Llama-3.3-70B, 1000 reqs, rate sweep ==")
	fmt.Fprintln(w, "rate  system        req/s  (paper)    tok/s  (paper)   med-lat(s) (paper)  duration(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %-12s %s  %s  %s  %10.1f\n",
			r.Rate, r.System,
			pv(r.M.ReqPerSec, r.PaperReqPS),
			pv(r.M.TokPerSec, r.PaperTokPS),
			pv(r.M.MedianLatS, r.PaperMedianS),
			r.M.DurationS)
	}
	fmt.Fprintln(w)
}

// ReportFig4 prints the auto-scaling figure.
func ReportFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "== Figure 4: auto-scaling, Llama-3.3-70B, infinite rate, 1..4 instances ==")
	fmt.Fprintln(w, "inst  req/s  (paper)    tok/s  (paper)   scale (paper)   med-lat(s) (paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4d %s  %s  %5.2f  %5.2f  %s\n",
			r.Instances,
			pv(r.M.ReqPerSec, r.PaperReqPS),
			pv(r.M.TokPerSec, r.PaperTokPS),
			r.TokScale, r.PaperScale,
			pv(r.M.MedianLatS, r.PaperMedianS))
	}
	fmt.Fprintln(w)
}

// ReportFig5 prints the OpenAI comparison.
func ReportFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "== Figure 5: FIRST (Llama-3.1-8B) vs OpenAI API (GPT-4o-mini) ==")
	fmt.Fprintln(w, "system                      req/s  (paper)    tok/s  (paper)   med-lat(s) (paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %s  %s  %s\n",
			r.System,
			pv(r.M.ReqPerSec, r.PaperReqPS),
			pv(r.M.TokPerSec, r.PaperTokPS),
			pv(r.M.MedianLatS, r.PaperMedianS))
	}
	fmt.Fprintln(w)
}

// ReportTable1 prints the WebUI concurrency table in the paper's layout.
func ReportTable1(w io.Writer, cells []Table1Cell) {
	fmt.Fprintln(w, "== Table 1: WebUI benchmark per model (TP=tok/s, Req=req/s; paper in parens) ==")
	fmt.Fprintln(w, "model           conc   60s TP/s (paper)   60s Req/s (paper)  120s TP/s (paper)  120s Req/s (paper)")
	type key struct {
		model string
		conc  int
	}
	byKey := make(map[key]map[int]Table1Cell)
	var order []key
	for _, c := range cells {
		k := key{c.Model, c.Concurrency}
		if byKey[k] == nil {
			byKey[k] = make(map[int]Table1Cell)
			order = append(order, k)
		}
		byKey[k][c.WindowS] = c
	}
	for _, k := range order {
		c60, c120 := byKey[k][60], byKey[k][120]
		fmt.Fprintf(w, "%-15s %4d  %8.1f (%7.1f)  %8.2f (%6.2f)  %8.1f (%7.1f)  %8.2f (%6.2f)\n",
			k.model, k.conc,
			c60.TokPS, c60.PaperTokPS, c60.ReqPS, c60.PaperReqPS,
			c120.TokPS, c120.PaperTokPS, c120.ReqPS, c120.PaperReqPS)
	}
	fmt.Fprintln(w)
}

// ReportBatch prints the batch-mode result and the amortization sweep.
func ReportBatch(w io.Writer, b BatchResult, amort []AmortizationPoint) {
	fmt.Fprintln(w, "== §5.3.1 Batch mode: Llama-3.3-70B, 1000 long-form requests, dedicated job ==")
	fmt.Fprintf(w, "requests=%d output_tokens=%d load=%.0fs total=%.0fs (paper 409s)\n",
		b.Requests, b.OutputTokens, b.LoadTimeS, b.TotalTimeS)
	fmt.Fprintf(w, "overall throughput %.0f tok/s (paper %.0f), generation-only %.0f tok/s\n",
		b.OverallTokPS, b.PaperTokPS, b.GenerateTokPS)
	fmt.Fprintln(w, "cold-start amortization:")
	for _, p := range amort {
		fmt.Fprintf(w, "  n=%-6d overall=%7.0f tok/s  load-share=%4.1f%%\n", p.Requests, p.OverallTokPS, p.LoadShare*100)
	}
	fmt.Fprintln(w)
}

// ReportAblation prints a before/after optimization comparison.
func ReportAblation(w io.Writer, title string, rows []AblationRow, hubQueue bool) {
	fmt.Fprintf(w, "== %s ==\n", title)
	for _, r := range rows {
		fmt.Fprintf(w, "%-42s req/s=%6.2f tok/s=%7.0f med-lat=%6.2fs p99=%7.2fs completed=%d",
			r.Config, r.M.ReqPerSec, r.M.TokPerSec, r.M.MedianLatS, r.M.P99LatS, r.M.Completed)
		if hubQueue {
			fmt.Fprintf(w, " queued-at-fabric=%d", r.HubQueuePeak)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
