package experiments

import (
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/serving"
	"github.com/argonne-first/first/internal/workload"
)

// BatchResult reproduces the §5.3.1 batch-mode measurement: 1000 long-form
// requests through the offline engine as a dedicated job (cold start
// included), plus the amortization sweep the paper describes (">10,000
// requests ... makes batch mode highly efficient").
type BatchResult struct {
	Requests      int
	OutputTokens  int64
	LoadTimeS     float64
	TotalTimeS    float64
	OverallTokPS  float64
	GenerateTokPS float64

	PaperTokPS     float64
	PaperDurationS float64
}

// RunBatch regenerates the headline batch measurement.
func RunBatch(seed int64) BatchResult {
	model := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	trace := workload.Generate(1000, workload.BatchGen(), workload.Infinite(), seed)
	res, err := serving.RunOffline(serving.OfflineConfig{
		Model:    model,
		GPU:      perfmodel.A100_40,
		MaxBatch: 2 * model.MaxBatch, // offline mode runs larger batches (no online API in the path)
	}, trace)
	if err != nil {
		panic(err) // static config; cannot fail
	}
	return BatchResult{
		Requests:       res.Requests,
		OutputTokens:   res.OutputTokens,
		LoadTimeS:      res.LoadTime.Seconds(),
		TotalTimeS:     res.TotalTime.Seconds(),
		OverallTokPS:   res.OverallTokPS,
		GenerateTokPS:  res.GenerateTokPS,
		PaperTokPS:     2117,
		PaperDurationS: 409,
	}
}

// AmortizationPoint is one size in the cold-start amortization sweep.
type AmortizationPoint struct {
	Requests     int
	OverallTokPS float64
	LoadShare    float64 // fraction of total time spent loading
}

// RunBatchAmortization sweeps batch sizes to show cold-start amortization
// (§5.3.1: loading dominates small batches; >10k requests amortize it).
func RunBatchAmortization(seed int64) []AmortizationPoint {
	return RunBatchAmortizationOn(Parallel, seed)
}

// RunBatchAmortizationOn runs the amortization sweep, one fleet cell per
// batch size.
func RunBatchAmortizationOn(f Fleet, seed int64) []AmortizationPoint {
	model := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	sizes := []int{10, 100, 1000, 10000}
	points := make([]AmortizationPoint, len(sizes))
	f.Run(len(sizes), func(i int) {
		n := sizes[i]
		trace := workload.Generate(n, workload.BatchGen(), workload.Infinite(), seed)
		res, err := serving.RunOffline(serving.OfflineConfig{
			Model:    model,
			GPU:      perfmodel.A100_40,
			MaxBatch: 2 * model.MaxBatch,
		}, trace)
		if err != nil {
			panic(err)
		}
		points[i] = AmortizationPoint{
			Requests:     n,
			OverallTokPS: res.OverallTokPS,
			LoadShare:    res.LoadTime.Seconds() / res.TotalTime.Seconds(),
		}
	})
	return points
}
