package experiments

import (
	"github.com/argonne-first/first/internal/desmodel"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/workload"
)

// RoutingRow compares dispatch policies in the Fig. 4 configuration —
// an ablation of the least-loaded routing design choice (DESIGN.md).
type RoutingRow struct {
	Policy string
	M      desmodel.Metrics
}

// RunAblationRouting reruns the 4-instance Fig. 4 scenario under each
// routing policy. Under homogeneous load the policies converge; the
// interesting separation appears with heavy-tailed outputs, where random
// and round-robin strand short requests behind long ones — so the ablation
// uses the heavy-tailed WebUI marginals.
func RunAblationRouting(seed int64) []RoutingRow { return RunAblationRoutingOn(Parallel, seed) }

// RunAblationRoutingOn runs the routing ablation with one fleet cell per
// policy.
func RunAblationRoutingOn(f Fleet, seed int64) []RoutingRow {
	model := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	spec := workload.WebUI()

	policies := []desmodel.RoutingPolicy{
		desmodel.RouteLeastLoaded,
		desmodel.RouteRoundRobin,
		desmodel.RouteRandom,
	}
	rows := make([]RoutingRow, len(policies))
	f.RunArena(len(rows), func(i int, a *desmodel.Arena) {
		pol := policies[i]
		trace := workload.Generate(2000, spec, workload.Infinite(), seed)
		k := a.Begin()
		p := desmodel.DefaultFirstParams()
		p.Routing = pol
		// Moderate concurrency: at full saturation every policy keeps all
		// engines busy; imbalance costs show when the window is near the
		// fleet's batch capacity.
		p.Window = 160
		sys := desmodel.NewFirstSystemIn(a, p, model, perfmodel.A100_40, 4, nil)
		reqs := driveOpenLoop(k, trace, sys)
		k.Run(0)
		rows[i] = RoutingRow{Policy: pol.String(), M: desmodel.Collect(reqs)}
	})
	return rows
}
