package experiments

import (
	"github.com/argonne-first/first/internal/desmodel"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/workload"
)

// Fig3Row is one (request rate, system) cell of Figure 3: Llama-3.3-70B on
// a single Sophia node (TP=8), 1000 ShareGPT requests, FIRST vs vLLM
// Direct at offered rates 1/5/10/20/∞ req/s.
type Fig3Row struct {
	Rate   string // "1", "5", "10", "20", "inf"
	System string // "FIRST" or "vLLM-Direct"
	M      desmodel.Metrics

	// Paper values where the text reports them (0 = not stated).
	PaperReqPS   float64
	PaperTokPS   float64
	PaperMedianS float64
}

// Fig3Requests is the paper's benchmark size.
const Fig3Requests = 1000

// RunFig3 regenerates Figure 3 on the default parallel fleet.
func RunFig3(seed int64) []Fig3Row { return RunFig3On(Parallel, seed) }

// RunFig3On regenerates Figure 3, fanning the ten (rate, system) cells out
// over f. Each cell regenerates its own trace from the seed so no state is
// shared between goroutines.
func RunFig3On(f Fleet, seed int64) []Fig3Row {
	rates := []struct {
		label string
		rate  float64
	}{
		{"1", 1}, {"5", 5}, {"10", 10}, {"20", 20}, {"inf", 0},
	}
	paper := map[string]Fig3Row{
		// §5.3.1 quotes these points explicitly.
		"1/FIRST":         {PaperMedianS: 9.2},
		"1/vLLM-Direct":   {PaperMedianS: 3.0},
		"20/FIRST":        {PaperReqPS: 9.2, PaperTokPS: 1677},
		"20/vLLM-Direct":  {PaperReqPS: 5.8, PaperTokPS: 1054},
		"inf/FIRST":       {PaperReqPS: 9.2, PaperTokPS: 1677, PaperMedianS: 46.9},
		"inf/vLLM-Direct": {PaperReqPS: 5.8, PaperTokPS: 1054, PaperMedianS: 80.2},
	}

	model := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	gpu := perfmodel.A100_40
	systems := []string{"FIRST", "vLLM-Direct"}
	rows := make([]Fig3Row, len(rates)*len(systems))
	f.RunArena(len(rows), func(i int, a *desmodel.Arena) {
		rc := rates[i/len(systems)]
		system := systems[i%len(systems)]
		arrival := workload.Infinite()
		if rc.rate > 0 {
			arrival = workload.Poisson(rc.rate)
		}
		trace := workload.Generate(Fig3Requests, workload.ShareGPT(), arrival, seed)

		k := a.Begin()
		var sys arriver
		if system == "FIRST" {
			sys = desmodel.NewFirstSystemIn(a, desmodel.DefaultFirstParams(), model, gpu, 1, nil)
		} else {
			sys = desmodel.NewDirectSystemIn(a, desmodel.DefaultDirectParams(), model, gpu, nil)
		}
		reqs := driveOpenLoop(k, trace, sys)
		k.Run(0)
		row := Fig3Row{Rate: rc.label, System: system, M: desmodel.Collect(reqs)}
		if p, ok := paper[rc.label+"/"+system]; ok {
			row.PaperReqPS, row.PaperTokPS, row.PaperMedianS = p.PaperReqPS, p.PaperTokPS, p.PaperMedianS
		}
		rows[i] = row
	})
	return rows
}
