package experiments

import (
	"testing"
)

// TestLiveFedZeroLost drives the short chaos cell — refused dials, 503
// bursts, SSE cuts, endpoint fault bursts, credential rejections, and a
// kill + cold restart mid-run — and checks the headline invariant: every
// request resolves as success, failover-success, shed, or a typed error.
func TestLiveFedZeroLost(t *testing.T) {
	c := LiveFedCellsShort[0]
	row := RunLiveFedCell(DefaultSeed, c)

	total := row.OK + row.FailoverOK + row.Shed + row.TypedErr + row.Untyped
	if total != c.Requests {
		t.Fatalf("accounted %d of %d requests", total, c.Requests)
	}
	if row.Untyped != 0 {
		t.Fatalf("untyped failures = %d, want 0 (every error must be typed)", row.Untyped)
	}
	if row.OK == 0 {
		t.Error("no request succeeded under chaos")
	}
	if row.FailoverOK == 0 {
		t.Error("no failover success — fault bursts should push some requests to the next cluster")
	}
	if row.Trips == 0 {
		t.Error("no breaker trips — the killed endpoint should have tripped its circuit")
	}
	if row.RetryAmp <= 1.0 {
		t.Errorf("retry amplification = %.2f, want > 1 under faults", row.RetryAmp)
	}
	// Retries and failover amplify gateway-side attempts, but chaosnet eats
	// some round trips before they ever reach the gateway (refused dials,
	// synthesized 503s) — so server attempts land near, not at or above, the
	// issued count.
	if row.ServerAttempts < int64(c.Requests)*9/10 {
		t.Errorf("server attempts = %d, want >= 90%% of issued %d", row.ServerAttempts, c.Requests)
	}
}

// TestLiveFedDeterministic pins the outcome schedule: two runs of the same
// cell (fresh systems, fresh transports) produce identical outcome
// censuses, rung counts, failover pressure, and chaos fault counts. Wall-
// derived latency fields are deliberately excluded.
func TestLiveFedDeterministic(t *testing.T) {
	c := LiveFedCellsShort[0]
	a := RunLiveFedCell(DefaultSeed, c)
	b := RunLiveFedCell(DefaultSeed, c)

	type pinned struct {
		OK, FailoverOK, Shed, TypedErr, Untyped int
		ServerAttempts, FailoverAttempts        int64
		FailoverSuccess, LoadShed, AuthRechecks int64
		Trips                                   int64
		RungActive, RungCapacity, RungFirstConf int64
		Chaos                                   map[string]int64
	}
	pin := func(r LiveFedRow) pinned {
		return pinned{r.OK, r.FailoverOK, r.Shed, r.TypedErr, r.Untyped,
			r.ServerAttempts, r.FailoverAttempts,
			r.FailoverSuccess, r.LoadShed, r.AuthRechecks,
			r.Trips, r.RungActive, r.RungCapacity, r.RungFirstConf, r.Chaos}
	}
	pa, pb := pin(a), pin(b)
	if pa.OK != pb.OK || pa.FailoverOK != pb.FailoverOK || pa.Shed != pb.Shed ||
		pa.TypedErr != pb.TypedErr || pa.Untyped != pb.Untyped {
		t.Errorf("outcome census diverged:\n  a=%+v\n  b=%+v", pa, pb)
	}
	if pa.ServerAttempts != pb.ServerAttempts || pa.FailoverAttempts != pb.FailoverAttempts ||
		pa.FailoverSuccess != pb.FailoverSuccess || pa.LoadShed != pb.LoadShed ||
		pa.AuthRechecks != pb.AuthRechecks || pa.Trips != pb.Trips {
		t.Errorf("resilience accounting diverged:\n  a=%+v\n  b=%+v", pa, pb)
	}
	if pa.RungActive != pb.RungActive || pa.RungCapacity != pb.RungCapacity ||
		pa.RungFirstConf != pb.RungFirstConf {
		t.Errorf("rung counts diverged:\n  a=%+v\n  b=%+v", pa, pb)
	}
	for k, v := range pa.Chaos {
		if pb.Chaos[k] != v {
			t.Errorf("chaos stat %q diverged: %d vs %d", k, v, pb.Chaos[k])
		}
	}
}

// TestLiveFedConcurrentChaos drives the same storm from 8 goroutines with
// the kill and cold restart landing mid-flight — the race-detector target
// of `make chaos`. Outcome schedules are not deterministic here; the
// invariant is purely that nothing is lost or untyped.
func TestLiveFedConcurrentChaos(t *testing.T) {
	c := LiveFedCellsShort[0]
	c.Concurrency = 8
	row := RunLiveFedCell(DefaultSeed, c)

	total := row.OK + row.FailoverOK + row.Shed + row.TypedErr + row.Untyped
	if total != c.Requests {
		t.Fatalf("accounted %d of %d requests", total, c.Requests)
	}
	if row.Untyped != 0 {
		t.Fatalf("untyped failures = %d, want 0", row.Untyped)
	}
	if row.OK == 0 {
		t.Error("no request succeeded")
	}
}

// TestLiveFedCalibration runs the short live cell with its DES twin and
// sanity-checks the calibration columns exist and are comparable: both
// sides route overwhelmingly on the active rung and both see failover
// pressure under churn.
func TestLiveFedCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration twin runs a 20k-request DES scenario")
	}
	rows := RunLiveFedCellsOn(Sequential, DefaultSeed, LiveFedCellsShort)
	r := rows[0]
	if r.Sim.Offered == 0 || r.Sim.M.Completed == 0 {
		t.Fatalf("sim twin did not run: %+v", r.Sim)
	}
	la, _, _ := rungShares(r.RungActive, r.RungCapacity, r.RungFirstConf)
	sa, _, _ := rungShares(r.Sim.Rungs.Active, r.Sim.Rungs.Capacity, r.Sim.Rungs.FirstConf)
	if la < 50 {
		t.Errorf("live active-rung share = %.1f%%, want majority (every endpoint hosts the model)", la)
	}
	if sa < 50 {
		t.Errorf("sim active-rung share = %.1f%%, want majority", sa)
	}
	if r.FailoverAttempts == 0 {
		t.Error("live side saw no failover attempts under the storm")
	}
	if r.Sim.Migrations == 0 {
		t.Error("sim twin saw no migrations — churn tempo too slow for the horizon")
	}
}
