package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/argonne-first/first/internal/chaosnet"
)

// TestLiveFedZeroLost drives the short chaos cell — refused dials, 503
// bursts, SSE cuts, endpoint fault bursts, credential rejections, and a
// kill + cold restart mid-run — and checks the headline invariant: every
// request resolves as success, failover-success, shed, or a typed error.
func TestLiveFedZeroLost(t *testing.T) {
	c := LiveFedCellsShort[0]
	row := RunLiveFedCell(DefaultSeed, c)

	total := row.OK + row.FailoverOK + row.Shed + row.TypedErr + row.Untyped
	if total != c.Requests {
		t.Fatalf("accounted %d of %d requests", total, c.Requests)
	}
	if row.Untyped != 0 {
		t.Fatalf("untyped failures = %d, want 0 (every error must be typed)", row.Untyped)
	}
	if row.OK == 0 {
		t.Error("no request succeeded under chaos")
	}
	if row.FailoverOK == 0 {
		t.Error("no failover success — fault bursts should push some requests to the next cluster")
	}
	if row.Trips == 0 {
		t.Error("no breaker trips — the killed endpoint should have tripped its circuit")
	}
	if row.RetryAmp <= 1.0 {
		t.Errorf("retry amplification = %.2f, want > 1 under faults", row.RetryAmp)
	}
	// Retries and failover amplify gateway-side attempts, but chaosnet eats
	// some round trips before they ever reach the gateway (refused dials,
	// synthesized 503s) — so server attempts land near, not at or above, the
	// issued count.
	if row.ServerAttempts < int64(c.Requests)*9/10 {
		t.Errorf("server attempts = %d, want >= 90%% of issued %d", row.ServerAttempts, c.Requests)
	}
}

// TestLiveFedDeterministic pins the outcome schedule: two runs of the same
// cell (fresh systems, fresh transports) produce identical outcome
// censuses, rung counts, failover pressure, and chaos fault counts. Wall-
// derived latency fields are deliberately excluded.
func TestLiveFedDeterministic(t *testing.T) {
	c := LiveFedCellsShort[0]
	a := RunLiveFedCell(DefaultSeed, c)
	b := RunLiveFedCell(DefaultSeed, c)

	type pinned struct {
		OK, FailoverOK, Shed, TypedErr, Untyped int
		ServerAttempts, FailoverAttempts        int64
		FailoverSuccess, LoadShed, AuthRechecks int64
		Trips                                   int64
		RungActive, RungCapacity, RungFirstConf int64
		Chaos                                   map[string]int64
	}
	pin := func(r LiveFedRow) pinned {
		return pinned{r.OK, r.FailoverOK, r.Shed, r.TypedErr, r.Untyped,
			r.ServerAttempts, r.FailoverAttempts,
			r.FailoverSuccess, r.LoadShed, r.AuthRechecks,
			r.Trips, r.RungActive, r.RungCapacity, r.RungFirstConf, r.Chaos}
	}
	pa, pb := pin(a), pin(b)
	if pa.OK != pb.OK || pa.FailoverOK != pb.FailoverOK || pa.Shed != pb.Shed ||
		pa.TypedErr != pb.TypedErr || pa.Untyped != pb.Untyped {
		t.Errorf("outcome census diverged:\n  a=%+v\n  b=%+v", pa, pb)
	}
	if pa.ServerAttempts != pb.ServerAttempts || pa.FailoverAttempts != pb.FailoverAttempts ||
		pa.FailoverSuccess != pb.FailoverSuccess || pa.LoadShed != pb.LoadShed ||
		pa.AuthRechecks != pb.AuthRechecks || pa.Trips != pb.Trips {
		t.Errorf("resilience accounting diverged:\n  a=%+v\n  b=%+v", pa, pb)
	}
	if pa.RungActive != pb.RungActive || pa.RungCapacity != pb.RungCapacity ||
		pa.RungFirstConf != pb.RungFirstConf {
		t.Errorf("rung counts diverged:\n  a=%+v\n  b=%+v", pa, pb)
	}
	for k, v := range pa.Chaos {
		if pb.Chaos[k] != v {
			t.Errorf("chaos stat %q diverged: %d vs %d", k, v, pb.Chaos[k])
		}
	}
}

// TestLiveFedConcurrentChaos drives the same storm from 8 goroutines with
// the kill and cold restart landing mid-flight — the race-detector target
// of `make chaos`. Outcome schedules are not deterministic here; the
// invariant is purely that nothing is lost or untyped.
func TestLiveFedConcurrentChaos(t *testing.T) {
	c := LiveFedCellsShort[0]
	c.Concurrency = 8
	row := RunLiveFedCell(DefaultSeed, c)

	total := row.OK + row.FailoverOK + row.Shed + row.TypedErr + row.Untyped
	if total != c.Requests {
		t.Fatalf("accounted %d of %d requests", total, c.Requests)
	}
	if row.Untyped != 0 {
		t.Fatalf("untyped failures = %d, want 0", row.Untyped)
	}
	if row.OK == 0 {
		t.Error("no request succeeded")
	}
}

// TestLiveFedCellSeedDerivation pins the satellite fix: the old derivation
// (seed ^ Clusters<<40 ^ Requests) collided for any two cells sharing width
// and trace length, silently correlating their chaos draws. Cells differing
// in ANY config field must now draw from distinct seeds, and the derivation
// must stay deterministic.
func TestLiveFedCellSeedDerivation(t *testing.T) {
	base := LiveFedCellsShort[0]
	if base.cellSeed(DefaultSeed) != base.cellSeed(DefaultSeed) {
		t.Fatal("cellSeed is not deterministic")
	}
	variants := map[string]LiveFedCell{}
	v := base
	v.Faults.BurstLen += 5
	variants["fault burst length"] = v
	v = base
	v.KillEvery += 10
	variants["kill cadence"] = v
	v = base
	v.PUnauthorized += 0.001
	variants["credential lane"] = v
	v = base
	v.Net.PRefuse += 0.001
	variants["net refuse rate"] = v
	v = base
	v.BGGPUs++
	variants["bg claim width"] = v
	seen := map[uint64]string{base.cellSeed(DefaultSeed): "base"}
	for name, vc := range variants {
		s := vc.cellSeed(DefaultSeed)
		if prev, dup := seen[s]; dup {
			t.Errorf("cells %q and %q derive the same seed %#x (same width+length must not collide)", name, prev, s)
		}
		seen[s] = name
	}
	if s := base.cellSeed(DefaultSeed + 1); seen[s] != "" {
		t.Errorf("changing the run seed collided with cell %q", seen[s])
	}
}

// TestLiveFedLogicalClockInvariant pins the breaker clock satellite: one
// tick per logical request, so the final reading equals the trace length
// whatever the retry/failover budget — MaxAttempts amplifies attempts, not
// time, and breaker trip/probe windows stay comparable across budgets.
func TestLiveFedLogicalClockInvariant(t *testing.T) {
	c := LiveFedCellsShort[0]
	c.Requests = 200
	c.KillEvery, c.KillDownFor = 60, 80
	c.BGEvery, c.BGHoldFor = 70, 50
	for _, budget := range []int{1, 2, 3} {
		c.MaxAttempts = budget
		row := RunLiveFedCell(DefaultSeed, c)
		if row.LogicalTicks != int64(c.Requests) {
			t.Errorf("MaxAttempts=%d: logical clock read %d ticks, want exactly %d (one per request)",
				budget, row.LogicalTicks, c.Requests)
		}
	}
}

// TestLiveFedBuildScheduleInvariants checks the churn-plan builder across
// every configured cell: events sorted on the (index, kind, endpoint) key,
// nothing scheduled past the trace (the live driver would never fire it,
// and a replayed kill with no restart would starve parked twin requests),
// kills always paired with a later restart, and no victim killed while
// still down.
func TestLiveFedBuildScheduleInvariants(t *testing.T) {
	for _, c := range append(append([]LiveFedCell{}, LiveFedCellsShort...), LiveFedCells...) {
		s := c.BuildSchedule(c.cellSeed(DefaultSeed))
		if len(s.Events) == 0 {
			t.Errorf("c%d/r%d: no churn events built", c.Clusters, c.Requests)
			continue
		}
		sorted := append([]chaosnet.Event(nil), s.Events...)
		s2 := s
		s2.Events = sorted
		s2.Sort()
		if !reflect.DeepEqual(sorted, s.Events) {
			t.Errorf("c%d/r%d: builder emitted unsorted events", c.Clusters, c.Requests)
		}
		down := make(map[int]bool)
		kills, claims := 0, 0
		for _, ev := range s.Events {
			if ev.AtIndex < 0 || ev.AtIndex >= c.Requests {
				t.Errorf("c%d/r%d: event %+v outside the trace [0,%d)", c.Clusters, c.Requests, ev, c.Requests)
			}
			switch ev.Kind {
			case chaosnet.EventKill:
				if down[ev.Endpoint] {
					t.Errorf("c%d/r%d: endpoint %d killed while already down at %d", c.Clusters, c.Requests, ev.Endpoint, ev.AtIndex)
				}
				down[ev.Endpoint] = true
				kills++
			case chaosnet.EventRestart:
				if !down[ev.Endpoint] {
					t.Errorf("c%d/r%d: restart without a kill at %d", c.Clusters, c.Requests, ev.AtIndex)
				}
				down[ev.Endpoint] = false
			case chaosnet.EventBGClaim:
				claims++
			case chaosnet.EventBGRelease:
				claims--
			}
		}
		for ep, d := range down {
			if d {
				t.Errorf("c%d/r%d: endpoint %d left dead at end of schedule (restart missing)", c.Clusters, c.Requests, ep)
			}
		}
		if claims != 0 {
			t.Errorf("c%d/r%d: %d background claims never released", c.Clusters, c.Requests, claims)
		}
		if kills == 0 {
			t.Errorf("c%d/r%d: schedule has no kills — the storm is not honest", c.Clusters, c.Requests)
		}
	}
}

// TestLiveFedTwinByteIdentity is the acceptance bar for the replay path:
// the same executed schedule replayed into the DES twin twice produces
// byte-identical results — the twin is a pure function of the schedule.
func TestLiveFedTwinByteIdentity(t *testing.T) {
	c := LiveFedCellsShort[0]
	s := c.BuildSchedule(c.cellSeed(DefaultSeed))
	if !bytes.Equal(s.Canonical(), c.BuildSchedule(c.cellSeed(DefaultSeed)).Canonical()) {
		t.Fatal("BuildSchedule is not deterministic")
	}
	s.RatePerSec = 0.01 // stand in for the live-measured tempo
	twin := c.simTwin(s)
	a := RunFederateCellsOn(Sequential, DefaultSeed, []FederateCell{twin})
	b := RunFederateCellsOn(Sequential, DefaultSeed, []FederateCell{twin})
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("twin replays diverged:\n  a=%s\n  b=%s", ja, jb)
	}
	if a[0].HardKills == 0 || a[0].Migrations == 0 {
		t.Errorf("replay twin too quiet to trust identity: %+v", a[0])
	}
}
