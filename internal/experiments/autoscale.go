package experiments

import (
	"math"
	"time"

	"github.com/argonne-first/first/internal/desmodel"
	"github.com/argonne-first/first/internal/sim"
	"github.com/argonne-first/first/internal/workload"
)

// The autoscale experiment family reproduces Fig4's elastic-deployment story
// inside the federation: demand shifts between models mid-run (diurnal
// swells, square-wave bursts) and the per-cluster auto-scaler grows each
// deployment pool through the scheduler's real cold-start path, then drains
// the emptiest instance back down when the wave passes — while walltime
// churn, hard kills, and background science jobs keep the priority ladder
// firing on every rung.

// AutoScaleCell is one cell of the family: an open-loop trace whose offered
// rate and hot model are functions of virtual time.
type AutoScaleCell struct {
	// Shape selects the demand curve: "diurnal" (sinusoidal rate swing, hot
	// model rotating once per period) or "bursty" (4× rate burst in the
	// first quarter of each period, near-idle after, hot model rotating).
	Shape    string
	Clusters int
	Reqs     int
	// BaseRatePerSec is the mean offered rate; the shape modulates around it.
	BaseRatePerSec float64
	// PeriodS is the demand cycle length in seconds.
	PeriodS int
	// MaxInstances caps each deployment pool (≥ 2 enables the scaler).
	MaxInstances int
	// Churn tempo overrides in seconds (0 = DefaultFederationParams): short
	// horizons need faster walltimes to exercise drains and migration.
	ServeWalltimeS int
	DrainGraceS    int
	BGPeriodS      int
	// Scaler overrides (0 = DefaultAutoScaleParams).
	ScaleIntervalS   int
	HiWater, LoWater float64
	// Predictive turns on the forecast-driven scaler (Holt level+trend per
	// deployment) plus a one-interval CordonLead so routing stops feeding
	// incarnations about to drain. Off — the zero value — keeps the
	// reactive watermark policy byte-for-byte; predictive cells are twins
	// of reactive ones (same trace seed) so a record compares them directly.
	Predictive bool
}

// params resolves the cell's federation parameters.
func (c AutoScaleCell) params() desmodel.FederationParams {
	p := desmodel.DefaultFederationParams(c.Clusters)
	if c.ServeWalltimeS > 0 {
		p.ServeWalltime = time.Duration(c.ServeWalltimeS) * time.Second
	}
	if c.DrainGraceS > 0 {
		p.DrainGrace = time.Duration(c.DrainGraceS) * time.Second
	}
	if c.BGPeriodS > 0 {
		p.BGPeriod = time.Duration(c.BGPeriodS) * time.Second
		p.BGStagger = p.BGPeriod / 5
		p.BGWalltime = p.BGPeriod * 2 / 3
	}
	s := desmodel.DefaultAutoScaleParams()
	s.MaxInstances = c.MaxInstances
	if c.ScaleIntervalS > 0 {
		s.Interval = time.Duration(c.ScaleIntervalS) * time.Second
	}
	if c.HiWater > 0 {
		s.HiWater = c.HiWater
	}
	if c.LoWater > 0 {
		s.LoWater = c.LoWater
	}
	if c.Predictive {
		s.Predictive = true
		// One scaler interval of routing lead before each walltime drain:
		// long enough for Select to steer the next arrivals elsewhere,
		// short enough not to idle capacity.
		p.CordonLead = s.Interval
	}
	p.Scale = s
	return p
}

// AutoScaleCells is the full family: diurnal and bursty demand over 2-8
// clusters, pools up to 4 instances deep. The nightly suite pins it
// byte-identical across worker counts and queue kinds (make autoscale-night).
var AutoScaleCells = []AutoScaleCell{
	{Shape: "diurnal", Clusters: 2, Reqs: 150_000, BaseRatePerSec: 120, PeriodS: 400, MaxInstances: 3},
	{Shape: "diurnal", Clusters: 4, Reqs: 400_000, BaseRatePerSec: 200, PeriodS: 500, MaxInstances: 4},
	{Shape: "bursty", Clusters: 4, Reqs: 250_000, BaseRatePerSec: 160, PeriodS: 400, MaxInstances: 4},
	{Shape: "bursty", Clusters: 8, Reqs: 150_000, BaseRatePerSec: 120, PeriodS: 400, MaxInstances: 3},
	// Predictive twins of the two c4 cells: identical traces (the cell seed
	// derives from shape/clusters/reqs only), scaler swapped — the record's
	// reactive-vs-predictive comparison. One instance of cap headroom over
	// the reactive twin, same hardware: replacement pre-warms respect the
	// MaxInstances cap, so a pool that is to overlap a dying incarnation
	// with its replacement needs the slot to put the replacement in (the
	// short family's predictive cell documents the same convention).
	{Shape: "diurnal", Clusters: 4, Reqs: 400_000, BaseRatePerSec: 200, PeriodS: 500, MaxInstances: 5, Predictive: true},
	{Shape: "bursty", Clusters: 4, Reqs: 250_000, BaseRatePerSec: 160, PeriodS: 400, MaxInstances: 5, Predictive: true},
}

// AutoScaleCellsShort is the scaled-down family for per-PR differential
// tests; the nightly CI job runs the full one (see TestAutoScaleFullScale).
var AutoScaleCellsShort = []AutoScaleCell{
	{Shape: "diurnal", Clusters: 2, Reqs: 25_000, BaseRatePerSec: 120, PeriodS: 150, MaxInstances: 3,
		ServeWalltimeS: 60, DrainGraceS: 20, BGPeriodS: 90, ScaleIntervalS: 5},
	{Shape: "bursty", Clusters: 4, Reqs: 30_000, BaseRatePerSec: 160, PeriodS: 120, MaxInstances: 4,
		ServeWalltimeS: 60, DrainGraceS: 20, BGPeriodS: 90, ScaleIntervalS: 5},
	// One predictive cell rides in the per-PR family so make check and
	// make par-diff pin the forecast/cordon path byte-identical across
	// worker counts, window executors, and queue kinds on every PR. One
	// extra instance of headroom over the reactive cell: replacement
	// pre-warms respect the MaxInstances cap, and the 60 s walltime keeps
	// churning pools pinned at a cap of 3.
	{Shape: "diurnal", Clusters: 2, Reqs: 25_000, BaseRatePerSec: 120, PeriodS: 150, MaxInstances: 4,
		ServeWalltimeS: 60, DrainGraceS: 20, BGPeriodS: 90, ScaleIntervalS: 5, Predictive: true},
}

// AutoScaleRow is one cell's results.
type AutoScaleRow struct {
	Shape    string
	Clusters int
	// Predictive marks the forecast-driven twin of a reactive cell.
	Predictive bool
	Offered    int
	M          desmodel.Metrics

	Rungs      desmodel.FedRungs
	Migrations int64
	// Scaler activity summed over clusters: pool growth, policy-driven
	// shrinks, and scale-ups refused at the MaxInstances cap.
	ScaleUps     int
	ScaleDowns   int
	ScaleRefused int
	// PreWarms counts forecast-driven starts (projected watermark crossings
	// and walltime replacements) — predictive cells only.
	PreWarms int
	// PeakInstances is the deepest any single cluster's pools grew.
	PeakInstances int
	ColdStarts    int
	Drains        int
	HardKills     int
	UtilMeanPct   float64
	UtilMaxPct    float64
}

// RunAutoScale regenerates the full family on the default parallel fleet.
func RunAutoScale(seed int64) []AutoScaleRow { return RunAutoScaleOn(Parallel, seed) }

// RunAutoScaleOn regenerates the full family on f.
func RunAutoScaleOn(f Fleet, seed int64) []AutoScaleRow {
	return RunAutoScaleCellsOn(f, seed, AutoScaleCells)
}

// RunAutoScaleCellsOn fans the given cells over the fleet. Each cell's RNG
// seeds derive from (seed, cell shape) only, so results are byte-identical
// across worker counts and queue kinds.
func RunAutoScaleCellsOn(f Fleet, seed int64, cells []AutoScaleCell) []AutoScaleRow {
	rows := make([]AutoScaleRow, len(cells))
	if f.Par > 0 {
		f.Run(len(cells), func(i int) {
			rows[i] = autoScaleRunPar(f, cells[i], seed)
		})
		return rows
	}
	f.RunArena(len(cells), func(i int, a *desmodel.Arena) {
		rows[i] = autoScaleRun(a, cells[i], seed)
	})
	return rows
}

// shapeFns returns the cell's demand curve: offered-rate multiplier and hot
// model index as pure functions of virtual time (deterministic — no state).
func (c AutoScaleCell) shapeFns(models int) (mult func(sim.Time) float64, hot func(sim.Time) int) {
	period := time.Duration(c.PeriodS) * time.Second
	hot = func(t sim.Time) int {
		return int(t/period) % models
	}
	if c.Shape == "bursty" {
		mult = func(t sim.Time) float64 {
			if frac := float64(t%period) / float64(period); frac < 0.25 {
				return 4.0
			}
			return 0.4
		}
		return mult, hot
	}
	// Diurnal: sinusoidal swing between 0.25× and 1.75× the base rate.
	mult = func(t sim.Time) float64 {
		return 1 + 0.75*math.Sin(2*math.Pi*float64(t%period)/float64(period))
	}
	return mult, hot
}

// autoScaleRun drives one cell: an open-loop trace whose arrival gaps thin
// against the shape's instantaneous rate and whose model choice concentrates
// on the rotating hot model, so pools must grow under each wave and shrink
// behind it.
func autoScaleRun(a *desmodel.Arena, c AutoScaleCell, seed int64) AutoScaleRow {
	k := a.Begin()
	k.MaxEvents = federateEventBudget
	defer func() { k.MaxEvents = 0 }()
	p := c.params()
	n := c.Reqs
	completed := 0
	sys := desmodel.NewFederationIn(a, p, func(*desmodel.Req) {
		completed++
		if completed == n {
			k.Stop()
		}
	})
	spec := workload.FederateOpen()
	rng := sim.NewRNG(seed + int64(c.Clusters)*1_000_003 + int64(n) + int64(len(c.Shape)))
	models := len(p.Models)
	mult, hot := c.shapeFns(models)
	baseGap := float64(time.Second) / c.BaseRatePerSec
	reqs := make([]*desmodel.Req, n)
	idx := 0
	var step func()
	step = func() {
		now := k.Now()
		pt, ot := spec.SampleLengths(rng)
		m := hot(now)
		if rng.Float64() >= 0.8 {
			m = rng.Intn(models)
		}
		r := &desmodel.Req{ID: idx + 1, PromptTok: pt, OutputTok: ot, Model: m}
		reqs[idx] = r
		sys.Arrive(r)
		idx++
		if idx < n {
			k.Schedule(time.Duration(rng.Exp(baseGap/mult(now))), step)
		}
	}
	k.Schedule(time.Duration(rng.Exp(baseGap)), step)
	end := k.Run(0)
	return autoScaleRow(sys, c, n, reqs, end)
}

func autoScaleRow(sys *desmodel.Federation, c AutoScaleCell, offered int, reqs []*desmodel.Req, end sim.Time) AutoScaleRow {
	row := AutoScaleRow{
		Shape:      c.Shape,
		Clusters:   c.Clusters,
		Predictive: c.Predictive,
		Offered:    offered,
		M:          desmodel.Collect(reqs),
		Rungs:      sys.Rungs(),
		Migrations: sys.Migrations(),
	}
	horizon := sim.Sec(end)
	var utilSum float64
	for _, cs := range sys.ClusterStats() {
		row.ScaleUps += cs.ScaleUps
		row.ScaleDowns += cs.ScaleDowns
		row.ScaleRefused += cs.ScaleRefused
		row.PreWarms += cs.PreWarms
		if cs.PeakInstances > row.PeakInstances {
			row.PeakInstances = cs.PeakInstances
		}
		row.ColdStarts += cs.ColdStarts
		row.Drains += cs.Drains
		row.HardKills += cs.HardKills
		util := 0.0
		if horizon > 0 && cs.TotalGPUs > 0 {
			util = 100 * cs.BusyGPUSeconds / (float64(cs.TotalGPUs) * horizon)
		}
		utilSum += util
		if util > row.UtilMaxPct {
			row.UtilMaxPct = util
		}
	}
	if c.Clusters > 0 {
		row.UtilMeanPct = utilSum / float64(c.Clusters)
	}
	return row
}
