package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func recWith(wall float64, ns float64, allocs float64) BenchRecord {
	return BenchRecord{
		Schema:      BenchSchema,
		Experiments: map[string]BenchExperiment{"fig3": {WallMS: wall, Metrics: map[string]float64{"x": 1}}},
		Micro:       map[string]MicroBench{"kernel_event": {NsPerOp: ns, AllocsPerOp: allocs}},
	}
}

func TestDiffBenchFlagsWallRegression(t *testing.T) {
	regs := DiffBench(recWith(100, 10, 0), recWith(125, 10, 0))
	if len(regs) != 1 || regs[0].Series != "experiments/fig3 wall_ms" {
		t.Errorf("regs = %v, want one wall_ms flag", regs)
	}
	// 15% is inside the jitter threshold.
	if regs := DiffBench(recWith(100, 10, 0), recWith(115, 10, 0)); len(regs) != 0 {
		t.Errorf("15%% wall move flagged: %v", regs)
	}
	// A 50% move on a 2 ms cell is scheduler noise, not a regression.
	if regs := DiffBench(recWith(2, 10, 0), recWith(3, 10, 0)); len(regs) != 0 {
		t.Errorf("sub-%vms wall move flagged: %v", wallAbsToleranceMS, regs)
	}
}

func TestBenchRegressionStringZeroBaseline(t *testing.T) {
	s := BenchRegression{Series: "micro/kernel_event allocs_per_op", Prev: 0, Cur: 1}.String()
	if len(s) == 0 || s[len(s)-1] == '%' {
		t.Errorf("zero-baseline rendering = %q, want no percentage", s)
	}
}

func TestDiffBenchFlagsMicroNsRegression(t *testing.T) {
	regs := DiffBench(recWith(100, 100, 0), recWith(100, 130, 0))
	if len(regs) != 1 || regs[0].Series != "micro/kernel_event ns_per_op" {
		t.Errorf("regs = %v, want one ns_per_op flag", regs)
	}
	// +22% on a single-digit-ns path is frequency variance, not code.
	if regs := DiffBench(recWith(100, 8.2, 0), recWith(100, 10, 0)); len(regs) != 0 {
		t.Errorf("sub-%vns move flagged: %v", nsAbsToleranceNs, regs)
	}
}

func TestDiffBenchFlagsAnyAllocRegression(t *testing.T) {
	// One extra allocation per op fails regardless of the 20% rule.
	regs := DiffBench(recWith(100, 10, 0), recWith(100, 10, 1))
	if len(regs) != 1 || regs[0].Series != "micro/kernel_event allocs_per_op" {
		t.Errorf("regs = %v, want one allocs_per_op flag", regs)
	}
	// Sub-allocation measurement noise is not a regression.
	if regs := DiffBench(recWith(100, 10, 0.01), recWith(100, 10, 0.3)); len(regs) != 0 {
		t.Errorf("alloc noise flagged: %v", regs)
	}
}

func TestDiffBenchImprovementsPass(t *testing.T) {
	if regs := DiffBench(recWith(100, 10, 2), recWith(50, 5, 0)); len(regs) != 0 {
		t.Errorf("improvement flagged: %v", regs)
	}
}

func TestDiffBenchToleratesV1Records(t *testing.T) {
	prev := recWith(100, 10, 0)
	prev.Micro = nil // v1 record: no micro section
	if regs := DiffBench(prev, recWith(100, 1e9, 50)); len(regs) != 0 {
		t.Errorf("missing-baseline series flagged: %v", regs)
	}
}

func TestBenchPathsOrdersNumerically(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_10.json", "BENCH_2.json", "BENCH_1.json", "notes.txt", "BENCH_x.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := BenchPaths(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BENCH_1.json", "BENCH_2.json", "BENCH_10.json"}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v", paths)
	}
	for i, p := range paths {
		if filepath.Base(p) != want[i] {
			t.Errorf("paths[%d] = %s, want %s", i, filepath.Base(p), want[i])
		}
	}
}

func TestDiffLatest(t *testing.T) {
	dir := t.TempDir()
	// Zero records: skip with a clear notice, never an error (fresh tree).
	if _, notice, skipped, err := DiffLatest(dir); err != nil || !skipped || notice == "" {
		t.Errorf("empty dir: skipped=%v notice=%q err=%v", skipped, notice, err)
	}
	// One record: the fork/shallow-clone case the satellite fixes — skip,
	// point at `make bench`, exit clean.
	if err := WriteBench(recWith(100, 10, 0), filepath.Join(dir, "BENCH_1.json")); err != nil {
		t.Fatal(err)
	}
	if _, notice, skipped, err := DiffLatest(dir); err != nil || !skipped {
		t.Errorf("single record: skipped=%v notice=%q err=%v", skipped, notice, err)
	} else if !strings.Contains(notice, "make bench") {
		t.Errorf("single-record notice %q does not say how to proceed", notice)
	}
	if err := WriteBench(recWith(150, 10, 0), filepath.Join(dir, "BENCH_2.json")); err != nil {
		t.Fatal(err)
	}
	regs, notice, skipped, err := DiffLatest(dir)
	if err != nil || skipped {
		t.Fatalf("two records: skipped=%v err=%v", skipped, err)
	}
	if len(regs) != 1 {
		t.Errorf("regs = %v (notice %q)", regs, notice)
	}
}

func TestDiffLatestMissingDir(t *testing.T) {
	// A nonexistent directory is operator error (mistyped -diff-dir), not a
	// fresh tree: it must fail loudly, never skip-pass the gate.
	_, _, skipped, err := DiffLatest(filepath.Join(t.TempDir(), "nope"))
	if err == nil || skipped {
		t.Errorf("missing dir: skipped=%v err=%v, want a hard error", skipped, err)
	}
	if err != nil && !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("missing-dir error %q does not name the problem", err)
	}
}

func TestCollectMicroCoversSubstrate(t *testing.T) {
	micro := CollectMicro()
	for _, name := range []string{"kernel_event", "engine_step", "counter_inc", "workload_gen_100"} {
		m, ok := micro[name]
		if !ok {
			t.Errorf("missing micro series %q", name)
			continue
		}
		if m.NsPerOp <= 0 {
			t.Errorf("%s: ns_per_op = %v", name, m.NsPerOp)
		}
	}
	// The zero-allocation pins from the PR-1 substrate hold in the record
	// too: kernel events, engine steps, and counter increments must not
	// allocate at steady state.
	for _, name := range []string{"kernel_event", "engine_step", "counter_inc"} {
		if m := micro[name]; m.AllocsPerOp > 0.5 {
			t.Errorf("%s allocates %.2f/op, want ~0", name, m.AllocsPerOp)
		}
	}
}
