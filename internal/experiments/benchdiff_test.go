package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func recWith(wall float64, ns float64, allocs float64) BenchRecord {
	return BenchRecord{
		Schema:      BenchSchema,
		Experiments: map[string]BenchExperiment{"fig3": {WallMS: wall, Metrics: map[string]float64{"x": 1}}},
		Micro:       map[string]MicroBench{"kernel_event": {NsPerOp: ns, AllocsPerOp: allocs}},
	}
}

func TestDiffBenchFlagsWallRegression(t *testing.T) {
	regs := DiffBench(recWith(100, 10, 0), recWith(125, 10, 0))
	if len(regs) != 1 || regs[0].Series != "experiments/fig3 wall_ms" {
		t.Errorf("regs = %v, want one wall_ms flag", regs)
	}
	// 15% is inside the jitter threshold.
	if regs := DiffBench(recWith(100, 10, 0), recWith(115, 10, 0)); len(regs) != 0 {
		t.Errorf("15%% wall move flagged: %v", regs)
	}
	// A 50% move on a 2 ms cell is scheduler noise, not a regression.
	if regs := DiffBench(recWith(2, 10, 0), recWith(3, 10, 0)); len(regs) != 0 {
		t.Errorf("sub-%vms wall move flagged: %v", wallAbsToleranceMS, regs)
	}
}

func TestBenchRegressionStringZeroBaseline(t *testing.T) {
	s := BenchRegression{Series: "micro/kernel_event allocs_per_op", Prev: 0, Cur: 1}.String()
	if len(s) == 0 || s[len(s)-1] == '%' {
		t.Errorf("zero-baseline rendering = %q, want no percentage", s)
	}
}

func TestDiffBenchFlagsMicroNsRegression(t *testing.T) {
	regs := DiffBench(recWith(100, 100, 0), recWith(100, 130, 0))
	if len(regs) != 1 || regs[0].Series != "micro/kernel_event ns_per_op" {
		t.Errorf("regs = %v, want one ns_per_op flag", regs)
	}
	// +22% on a single-digit-ns path is frequency variance, not code.
	if regs := DiffBench(recWith(100, 8.2, 0), recWith(100, 10, 0)); len(regs) != 0 {
		t.Errorf("sub-%vns move flagged: %v", nsAbsToleranceNs, regs)
	}
}

func TestDiffBenchFlagsAnyAllocRegression(t *testing.T) {
	// One extra allocation per op fails regardless of the 20% rule.
	regs := DiffBench(recWith(100, 10, 0), recWith(100, 10, 1))
	if len(regs) != 1 || regs[0].Series != "micro/kernel_event allocs_per_op" {
		t.Errorf("regs = %v, want one allocs_per_op flag", regs)
	}
	// Sub-allocation measurement noise is not a regression.
	if regs := DiffBench(recWith(100, 10, 0.01), recWith(100, 10, 0.3)); len(regs) != 0 {
		t.Errorf("alloc noise flagged: %v", regs)
	}
}

func TestDiffBenchImprovementsPass(t *testing.T) {
	if regs := DiffBench(recWith(100, 10, 2), recWith(50, 5, 0)); len(regs) != 0 {
		t.Errorf("improvement flagged: %v", regs)
	}
}

// recN builds a record with n experiment walls scaled by f relative to a
// 100 ms baseline, for host-drift tests.
func recN(n int, f func(i int) float64) BenchRecord {
	exps := make(map[string]BenchExperiment, n)
	for i := 0; i < n; i++ {
		exps[fmt.Sprintf("exp%d", i)] = BenchExperiment{WallMS: 100 * f(i)}
	}
	return BenchRecord{Schema: BenchSchema, Experiments: exps}
}

func TestHostDriftNormalizesUniformSlowdown(t *testing.T) {
	prev := recN(8, func(int) float64 { return 1 })
	cur := recN(8, func(int) float64 { return 1.4 })
	if d := HostDrift(prev, cur); d < 1.39 || d > 1.41 {
		t.Fatalf("drift = %v, want ~1.4", d)
	}
	// A uniform 40% slowdown is the host, not the code: no flags.
	if regs := DiffBench(prev, cur); len(regs) != 0 {
		t.Errorf("uniform host slowdown flagged: %v", regs)
	}
}

func TestHostDriftStillCatchesRealRegression(t *testing.T) {
	prev := recN(8, func(int) float64 { return 1 })
	// Host ~15% slower across the board, but exp0 doubled: the median
	// absorbs the drift and exp0 still trips the gate.
	cur := recN(8, func(i int) float64 {
		if i == 0 {
			return 2.0
		}
		return 1.15
	})
	regs := DiffBench(prev, cur)
	if len(regs) != 1 || regs[0].Series != "experiments/exp0 wall_ms" {
		t.Errorf("regs = %v, want exactly the exp0 flag", regs)
	}
}

func TestHostDriftNeverTightensAndIsCapped(t *testing.T) {
	prev := recN(8, func(int) float64 { return 1 })
	// Faster host: sleep-bound walls don't scale with CPU speed, so the
	// factor floors at 1 instead of flagging series that merely stood still.
	if d := HostDrift(prev, recN(8, func(int) float64 { return 0.5 })); d != 1 {
		t.Errorf("faster-host drift = %v, want floor at 1", d)
	}
	// A claimed 4× host slowdown is not CPU drift; the cap keeps the gate loud.
	if d := HostDrift(prev, recN(8, func(int) float64 { return 4 })); d != hostDriftMax {
		t.Errorf("extreme drift = %v, want cap %v", d, hostDriftMax)
	}
	// Too few shared series: the estimate disengages.
	if d := HostDrift(recN(3, func(int) float64 { return 1 }), recN(3, func(int) float64 { return 1.5 })); d != 1 {
		t.Errorf("small-sample drift = %v, want 1", d)
	}
}

// recNM builds a record with n experiment walls (100 ms base) and m micro
// series (100 ns base), each scaled by its class factor — the heterogeneous-
// drift fixture: a contended host inflates multi-ms walls (scheduler steal)
// without slowing tight single-threaded ns loops.
func recNM(n, m int, wallF, microF func(i int) float64) BenchRecord {
	rec := recN(n, wallF)
	rec.Micro = make(map[string]MicroBench, m)
	for i := 0; i < m; i++ {
		rec.Micro[fmt.Sprintf("micro%d", i)] = MicroBench{NsPerOp: 100 * microF(i)}
	}
	return rec
}

func TestHostDriftsPerClass(t *testing.T) {
	one := func(int) float64 { return 1 }
	prev := recNM(8, 8, one, one)
	// Walls 1.6× slower, micros flat: the pooled median (~1.3) would leave
	// the walls effectively unnormalized and flag all eight.
	cur := recNM(8, 8, func(int) float64 { return 1.6 }, one)
	wall, micro := HostDrifts(prev, cur)
	if wall < 1.59 || wall > 1.61 {
		t.Errorf("wall drift = %v, want ~1.6", wall)
	}
	if micro != 1 {
		t.Errorf("micro drift = %v, want 1", micro)
	}
	if regs := DiffBench(prev, cur); len(regs) != 0 {
		t.Errorf("uniform wall-class slowdown flagged: %v", regs)
	}
	// The same storm with one wall genuinely doubled: the wall-class median
	// absorbs the contention and exp0 still trips.
	cur = recNM(8, 8, func(i int) float64 {
		if i == 0 {
			return 3.2
		}
		return 1.6
	}, one)
	regs := DiffBench(prev, cur)
	if len(regs) != 1 || regs[0].Series != "experiments/exp0 wall_ms" {
		t.Errorf("regs = %v, want exactly the exp0 flag", regs)
	}
	// And the mirror case: micros slow (thermal throttle), walls flat
	// (sleep-bound) — a micro-only slowdown must not flag every micro.
	cur = recNM(8, 8, one, func(int) float64 { return 1.6 })
	if regs := DiffBench(prev, cur); len(regs) != 0 {
		t.Errorf("uniform micro-class slowdown flagged: %v", regs)
	}
}

func TestHostDriftsFallsBackPooled(t *testing.T) {
	// Below the per-class minimum the class borrows the pooled median: two
	// micro series can't carry their own estimate, but walls + micros
	// together can.
	one := func(int) float64 { return 1 }
	up := func(int) float64 { return 1.5 }
	wall, micro := HostDrifts(recNM(8, 2, one, one), recNM(8, 2, up, up))
	if wall < 1.49 || wall > 1.51 || micro < 1.49 || micro > 1.51 {
		t.Errorf("drifts = %v, %v, want both ~1.5 (micro pooled)", wall, micro)
	}
}

func TestDiffBenchAllocGateIgnoresDrift(t *testing.T) {
	// Even under heavy host drift, one extra allocation per op still fails:
	// allocation counts are deterministic and get no normalization.
	prev := recN(8, func(int) float64 { return 1 })
	prev.Micro = map[string]MicroBench{"kernel_event": {NsPerOp: 10, AllocsPerOp: 0}}
	cur := recN(8, func(int) float64 { return 1.5 })
	cur.Micro = map[string]MicroBench{"kernel_event": {NsPerOp: 15, AllocsPerOp: 1}}
	regs := DiffBench(prev, cur)
	if len(regs) != 1 || regs[0].Series != "micro/kernel_event allocs_per_op" {
		t.Errorf("regs = %v, want exactly the allocs_per_op flag", regs)
	}
}

func TestDiffBenchToleratesV1Records(t *testing.T) {
	prev := recWith(100, 10, 0)
	prev.Micro = nil // v1 record: no micro section
	if regs := DiffBench(prev, recWith(100, 1e9, 50)); len(regs) != 0 {
		t.Errorf("missing-baseline series flagged: %v", regs)
	}
}

func TestBenchPathsOrdersNumerically(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_10.json", "BENCH_2.json", "BENCH_1.json", "notes.txt", "BENCH_x.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := BenchPaths(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BENCH_1.json", "BENCH_2.json", "BENCH_10.json"}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v", paths)
	}
	for i, p := range paths {
		if filepath.Base(p) != want[i] {
			t.Errorf("paths[%d] = %s, want %s", i, filepath.Base(p), want[i])
		}
	}
}

func TestDiffLatest(t *testing.T) {
	dir := t.TempDir()
	// Zero records: skip with a clear notice, never an error (fresh tree).
	if _, notice, skipped, err := DiffLatest(dir); err != nil || !skipped || notice == "" {
		t.Errorf("empty dir: skipped=%v notice=%q err=%v", skipped, notice, err)
	}
	// One record: the fork/shallow-clone case the satellite fixes — skip,
	// point at `make bench`, exit clean.
	if err := WriteBench(recWith(100, 10, 0), filepath.Join(dir, "BENCH_1.json")); err != nil {
		t.Fatal(err)
	}
	if _, notice, skipped, err := DiffLatest(dir); err != nil || !skipped {
		t.Errorf("single record: skipped=%v notice=%q err=%v", skipped, notice, err)
	} else if !strings.Contains(notice, "make bench") {
		t.Errorf("single-record notice %q does not say how to proceed", notice)
	}
	if err := WriteBench(recWith(150, 10, 0), filepath.Join(dir, "BENCH_2.json")); err != nil {
		t.Fatal(err)
	}
	regs, notice, skipped, err := DiffLatest(dir)
	if err != nil || skipped {
		t.Fatalf("two records: skipped=%v err=%v", skipped, err)
	}
	if len(regs) != 1 {
		t.Errorf("regs = %v (notice %q)", regs, notice)
	}
}

// writeRecs writes recs to dir as BENCH_1.json, BENCH_2.json, ...
func writeRecs(t *testing.T, dir string, recs ...BenchRecord) {
	t.Helper()
	for i, r := range recs {
		if err := WriteBench(r, filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", i+1))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDiffLatestVetoesSingleRecordOutlier(t *testing.T) {
	// The newest baseline caught an anomalously fast scheduling window for
	// fig3 (60 ms vs the 100 ms the series has always cost): the current
	// record's 100 ms is a +67% "regression" against it but dead-on against
	// the record before — an outlier in the baseline, not slower code.
	dir := t.TempDir()
	writeRecs(t, dir, recWith(100, 10, 0), recWith(60, 10, 0), recWith(100, 10, 0))
	regs, notice, _, err := DiffLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("outlier-baseline regs = %v, want none", regs)
	}
	if !strings.Contains(notice, "outlier") {
		t.Errorf("notice %q does not explain the suppression", notice)
	}
}

func TestDiffLatestVetoKeepsRealRegression(t *testing.T) {
	// Slower than both baselines: that is the code, and the veto must not
	// soften it.
	dir := t.TempDir()
	writeRecs(t, dir, recWith(100, 10, 0), recWith(100, 10, 0), recWith(150, 10, 0))
	regs, _, _, err := DiffLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Series != "experiments/fig3 wall_ms" {
		t.Errorf("regs = %v, want the wall flag kept", regs)
	}
}

func TestDiffLatestVetoNeverSuppressesAllocs(t *testing.T) {
	// Allocation counts are deterministic: prev having fewer allocs than
	// prev2 means the previous PR earned that budget, and giving it back is
	// a real regression even though it matches the older record.
	dir := t.TempDir()
	writeRecs(t, dir, recWith(100, 10, 2), recWith(100, 10, 0), recWith(100, 10, 2))
	regs, _, _, err := DiffLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Series != "micro/kernel_event allocs_per_op" {
		t.Errorf("regs = %v, want the allocs flag kept", regs)
	}
}

func TestDiffLatestVetoRequiresOlderBaselineSeries(t *testing.T) {
	// A series the older record does not carry (added by the previous PR)
	// has only one baseline; absence from prev2 must not read as "did not
	// regress there".
	dir := t.TempDir()
	old := recWith(100, 10, 0)
	delete(old.Experiments, "fig3")
	old.Experiments["other"] = BenchExperiment{WallMS: 100}
	writeRecs(t, dir, old, recWith(100, 10, 0), recWith(150, 10, 0))
	regs, _, _, err := DiffLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Series != "experiments/fig3 wall_ms" {
		t.Errorf("regs = %v, want the new-series wall flag kept", regs)
	}
}

func TestDiffLatestMissingDir(t *testing.T) {
	// A nonexistent directory is operator error (mistyped -diff-dir), not a
	// fresh tree: it must fail loudly, never skip-pass the gate.
	_, _, skipped, err := DiffLatest(filepath.Join(t.TempDir(), "nope"))
	if err == nil || skipped {
		t.Errorf("missing dir: skipped=%v err=%v, want a hard error", skipped, err)
	}
	if err != nil && !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("missing-dir error %q does not name the problem", err)
	}
}

func TestCollectMicroCoversSubstrate(t *testing.T) {
	micro := CollectMicro()
	for _, name := range []string{"kernel_event", "engine_step", "counter_inc", "workload_gen_100"} {
		m, ok := micro[name]
		if !ok {
			t.Errorf("missing micro series %q", name)
			continue
		}
		if m.NsPerOp <= 0 {
			t.Errorf("%s: ns_per_op = %v", name, m.NsPerOp)
		}
	}
	// The zero-allocation pins from the PR-1 substrate hold in the record
	// too: kernel events, engine steps, and counter increments must not
	// allocate at steady state.
	for _, name := range []string{"kernel_event", "engine_step", "counter_inc"} {
		if m := micro[name]; m.AllocsPerOp > 0.5 {
			t.Errorf("%s allocates %.2f/op, want ~0", name, m.AllocsPerOp)
		}
	}
}
