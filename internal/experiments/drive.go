// Package experiments contains one runner per table/figure in the paper's
// evaluation (§5) plus the optimization ablations, each returning structured
// paper-vs-measured results. bench_test.go and cmd/first-bench are thin
// wrappers over these runners.
package experiments

import (
	"time"

	"github.com/argonne-first/first/internal/desmodel"
	"github.com/argonne-first/first/internal/sim"
	"github.com/argonne-first/first/internal/workload"
)

// DefaultSeed keeps every experiment deterministic.
const DefaultSeed = 20251015 // paper's arXiv date

// arriver is any DES system accepting client requests.
type arriver interface {
	Arrive(*desmodel.Req)
}

// driveOpenLoop schedules a trace's arrivals onto a system (the vLLM
// benchmark script's open-loop mode: fixed request rate, or everything at
// t=0 for the "infinite" rate).
func driveOpenLoop(k *sim.Kernel, trace []workload.Request, sys arriver) []*desmodel.Req {
	reqs := make([]*desmodel.Req, len(trace))
	for i := range trace {
		t := trace[i]
		r := &desmodel.Req{ID: t.ID, PromptTok: t.PromptTok, OutputTok: t.OutputTok}
		reqs[i] = r
		k.Schedule(t.ArrivalAt, func() { sys.Arrive(r) })
	}
	return reqs
}

// driveClosedLoop runs `sessions` concurrent closed-loop clients: each
// session issues a request, waits for completion (plus thinkTime), and
// immediately issues the next, up to total requests (0 = unbounded; the
// kernel's Run(until) bounds the experiment). The done callback the system
// must invoke is returned for wiring before construction; use it like:
//
//	loop := newClosedLoop(k, spec, seed, sessions, thinkTime)
//	sys := desmodel.NewFirstSystem(k, p, model, gpu, n, loop.onDone)
//	loop.start(sys)
type closedLoop struct {
	k         *sim.Kernel
	spec      workload.LengthSpec
	rng       *sim.RNG
	sessions  int
	thinkTime time.Duration
	sys       arriver
	issued    int
	finished  []*desmodel.Req

	// Chat-session mode (Table 1): WebUI resends the full conversation on
	// every turn, so a session's prompt grows by the previous turn's
	// prompt+response. History is capped at the serving context window.
	chatHistory bool
	historyCap  int
	history     []int

	// assign, when set, stamps scenario-specific routing fields (e.g. the
	// federate family's per-session model) on each request before Arrive.
	assign func(*desmodel.Req)
}

func newClosedLoop(k *sim.Kernel, spec workload.LengthSpec, seed int64, sessions int, thinkTime time.Duration) *closedLoop {
	return &closedLoop{
		k: k, spec: spec, rng: sim.NewRNG(seed),
		sessions: sessions, thinkTime: thinkTime,
		history: make([]int, sessions),
	}
}

// enableChatHistory switches the loop into stateful WebUI-session mode.
func (c *closedLoop) enableChatHistory(contextCap int) {
	c.chatHistory = true
	c.historyCap = contextCap
}

func (c *closedLoop) start(sys arriver) {
	c.sys = sys
	for i := 0; i < c.sessions; i++ {
		c.issue(i)
	}
}

func (c *closedLoop) issue(session int) {
	p, o := c.spec.SampleLengths(c.rng)
	if c.chatHistory {
		p += c.history[session]
		if c.historyCap > 0 && p > c.historyCap {
			p = c.historyCap
		}
	}
	c.issued++
	r := &desmodel.Req{ID: c.issued, PromptTok: p, OutputTok: o, Session: session}
	if c.assign != nil {
		c.assign(r)
	}
	c.sys.Arrive(r)
}

// onDone records the completion and keeps the session busy.
func (c *closedLoop) onDone(r *desmodel.Req) {
	c.finished = append(c.finished, r)
	session := r.Session
	if c.chatHistory {
		// Next turn carries this turn's prompt and response as context.
		h := r.PromptTok + r.OutputTok
		if c.historyCap > 0 && h > c.historyCap {
			h = c.historyCap
		}
		c.history[session] = h
	}
	if c.thinkTime > 0 {
		c.k.Schedule(c.thinkTime, func() { c.issue(session) })
	} else {
		c.issue(session)
	}
}

// completedWithin filters completions observed inside the window and
// returns (requests, output tokens).
func (c *closedLoop) completedWithin(window time.Duration) (int, int64) {
	var n int
	var tok int64
	for _, r := range c.finished {
		if r.ObservedAt <= window {
			n++
			tok += int64(r.OutputTok)
		}
	}
	return n, tok
}
