package experiments

import (
	"reflect"
	"testing"
)

// TestStormShardedAbsorbsWhatSingleLockCannot is the scenario's headline
// property: at 4× a single lock's admission capacity, the sharded front-end
// must sustain (close to) the offered storm while the single lock caps out,
// with the gap visible in both throughput and tail latency.
func TestStormShardedAbsorbsWhatSingleLockCannot(t *testing.T) {
	rows := RunStormOn(Parallel, DefaultSeed)
	byCell := map[[2]int]StormRow{}
	for _, r := range rows {
		byCell[[2]int{r.Users, r.Shards}] = r
	}
	for _, users := range StormUserCounts {
		single, ok1 := byCell[[2]int{users, 1}]
		sharded, ok16 := byCell[[2]int{users, 16}]
		if !ok1 || !ok16 {
			t.Fatalf("users=%d: missing arm (have %v)", users, rows)
		}
		if single.M.Completed != users || sharded.M.Completed != users {
			t.Errorf("users=%d: completions single=%d sharded=%d, want all %d",
				users, single.M.Completed, sharded.M.Completed, users)
		}
		// The single lock admits ~1/CritSection ≈ 250k req/s; the storm
		// offers 1M/s. Sharded must clear at least 3× the single-lock rate.
		if sharded.M.ReqPerSec < 3*single.M.ReqPerSec {
			t.Errorf("users=%d: sharded %.0f req/s vs single-lock %.0f req/s, want ≥ 3×",
				users, sharded.M.ReqPerSec, single.M.ReqPerSec)
		}
		if sharded.M.P99LatS > single.M.P99LatS/10 {
			t.Errorf("users=%d: sharded p99 %.6fs vs single-lock p99 %.6fs, want ≤ 1/10",
				users, sharded.M.P99LatS, single.M.P99LatS)
		}
		if single.PeakShardQueue < 10*sharded.PeakShardQueue {
			t.Errorf("users=%d: peak queue single=%d sharded=%d, want single ≥ 10× sharded",
				users, single.PeakShardQueue, sharded.PeakShardQueue)
		}
	}
}

// TestStormArmsFaceIdenticalArrivals checks comparability: the shard arms of
// one storm size must see byte-identical arrival processes (the arrival RNG
// depends only on seed and storm size).
func TestStormArmsFaceIdenticalArrivals(t *testing.T) {
	rows := RunStormOn(Sequential, DefaultSeed)
	for _, users := range StormUserCounts {
		var requests []int
		for _, r := range rows {
			if r.Users == users {
				requests = append(requests, r.M.Requests)
			}
		}
		if len(requests) != len(StormShardCounts) {
			t.Fatalf("users=%d: %d arms", users, len(requests))
		}
		for _, n := range requests {
			if n != users {
				t.Errorf("users=%d: arm saw %d requests", users, n)
			}
		}
	}
}

// TestFleetDeterminismStorm extends the fleet determinism property to the
// storm cells: parallel regeneration must match the sequential reference.
func TestFleetDeterminismStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the storm twice")
	}
	seq := RunStormOn(Sequential, DefaultSeed)
	par := RunStormOn(Fleet{Workers: 8}, DefaultSeed)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("storm parallel results diverge from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}
