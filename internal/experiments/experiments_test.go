package experiments

// Shape guards: these tests pin the qualitative findings of every paper
// figure/table — who wins, where crossovers fall, how scaling trends — so
// calibration drift that would break the reproduction fails CI.

import (
	"testing"
)

func fig3Lookup(rows []Fig3Row, rate, system string) Fig3Row {
	for _, r := range rows {
		if r.Rate == rate && r.System == system {
			return r
		}
	}
	return Fig3Row{}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	rows := RunFig3(DefaultSeed)
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10 (5 rates × 2 systems)", len(rows))
	}

	// Low rate: FIRST pays the fabric overhead (9.2 vs 3.0 s in the paper).
	f1 := fig3Lookup(rows, "1", "FIRST")
	d1 := fig3Lookup(rows, "1", "vLLM-Direct")
	if f1.M.MedianLatS <= d1.M.MedianLatS+3 {
		t.Errorf("at 1 req/s FIRST median %.1fs should exceed direct %.1fs by several seconds",
			f1.M.MedianLatS, d1.M.MedianLatS)
	}
	if d1.M.MedianLatS < 2.0 || d1.M.MedianLatS > 4.0 {
		t.Errorf("direct median at 1 req/s = %.1fs, want ≈3.0s", d1.M.MedianLatS)
	}

	// Saturation: FIRST sustains materially higher throughput (9.2 vs 5.8).
	fInf := fig3Lookup(rows, "inf", "FIRST")
	dInf := fig3Lookup(rows, "inf", "vLLM-Direct")
	if fInf.M.ReqPerSec < dInf.M.ReqPerSec*1.25 {
		t.Errorf("at ∞ rate FIRST %.2f req/s should beat direct %.2f by ≥25%%",
			fInf.M.ReqPerSec, dInf.M.ReqPerSec)
	}
	if fInf.M.TokPerSec < dInf.M.TokPerSec*1.25 {
		t.Errorf("token throughput: FIRST %.0f vs direct %.0f", fInf.M.TokPerSec, dInf.M.TokPerSec)
	}
	// The direct path's admission cap ≈ 5.8 req/s.
	if dInf.M.ReqPerSec < 4.5 || dInf.M.ReqPerSec > 6.3 {
		t.Errorf("direct saturation = %.2f req/s, want ≈5.8 band", dInf.M.ReqPerSec)
	}
	// And FIRST's saturated median latency drops below direct's.
	if fInf.M.MedianLatS >= dInf.M.MedianLatS {
		t.Errorf("at ∞ rate FIRST median %.1fs should beat direct %.1fs",
			fInf.M.MedianLatS, dInf.M.MedianLatS)
	}

	// The crossover happens by 10 req/s.
	f10 := fig3Lookup(rows, "10", "FIRST")
	d10 := fig3Lookup(rows, "10", "vLLM-Direct")
	if f10.M.ReqPerSec <= d10.M.ReqPerSec {
		t.Errorf("at 10 req/s FIRST %.2f should already beat direct %.2f",
			f10.M.ReqPerSec, d10.M.ReqPerSec)
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	rows := RunFig4(DefaultSeed)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].M.ReqPerSec <= rows[i-1].M.ReqPerSec {
			t.Errorf("throughput not increasing at %d instances: %.2f vs %.2f",
				rows[i].Instances, rows[i].M.ReqPerSec, rows[i-1].M.ReqPerSec)
		}
		if rows[i].M.MedianLatS >= rows[i-1].M.MedianLatS {
			t.Errorf("latency not decreasing at %d instances: %.1f vs %.1f",
				rows[i].Instances, rows[i].M.MedianLatS, rows[i-1].M.MedianLatS)
		}
	}
	// Sub-linear scaling with diminishing increments (paper: 1.75/2.52/2.88).
	if rows[3].TokScale >= 3.6 {
		t.Errorf("4-instance scaling %.2f× too close to linear", rows[3].TokScale)
	}
	if rows[3].TokScale < 2.0 {
		t.Errorf("4-instance scaling %.2f× too weak", rows[3].TokScale)
	}
	inc2 := rows[1].TokScale - rows[0].TokScale
	inc4 := rows[3].TokScale - rows[2].TokScale
	if inc4 >= inc2 {
		t.Errorf("increments should diminish: +%.2f then +%.2f", inc2, inc4)
	}
	// Within ±25% of the paper's measured req/s series.
	for _, r := range rows {
		if r.PaperReqPS == 0 {
			continue
		}
		ratio := r.M.ReqPerSec / r.PaperReqPS
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("%d instances: %.2f req/s vs paper %.2f (ratio %.2f)",
				r.Instances, r.M.ReqPerSec, r.PaperReqPS, ratio)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	rows := RunFig5(DefaultSeed)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	first, openai := rows[0], rows[1]
	// FIRST: much higher throughput; OpenAI: much lower latency.
	if first.M.ReqPerSec < openai.M.ReqPerSec*2 {
		t.Errorf("FIRST %.1f req/s should be ≥2× OpenAI %.1f", first.M.ReqPerSec, openai.M.ReqPerSec)
	}
	if openai.M.MedianLatS > first.M.MedianLatS/3 {
		t.Errorf("OpenAI median %.1fs should be ≪ FIRST %.1fs", openai.M.MedianLatS, first.M.MedianLatS)
	}
	if openai.M.MedianLatS < 1.5 || openai.M.MedianLatS > 3.0 {
		t.Errorf("OpenAI median = %.1fs, want ≈2.0s", openai.M.MedianLatS)
	}
	if openai.M.ReqPerSec < 5.0 || openai.M.ReqPerSec > 7.5 {
		t.Errorf("OpenAI throughput = %.1f req/s, want ≈6.7 band", openai.M.ReqPerSec)
	}
	if first.M.ReqPerSec < 17 || first.M.ReqPerSec > 28 {
		t.Errorf("FIRST 8B throughput = %.1f req/s, want ≈25 band", first.M.ReqPerSec)
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	cells := RunTable1(DefaultSeed)
	if len(cells) != 30 {
		t.Fatalf("cells = %d, want 30 (3 models × 5 conc × 2 windows)", len(cells))
	}
	get := func(model string, conc, window int) Table1Cell {
		for _, c := range cells {
			if c.Model == model && c.Concurrency == conc && c.WindowS == window {
				return c
			}
		}
		t.Fatalf("missing cell %s/%d/%d", model, conc, window)
		return Table1Cell{}
	}
	for _, model := range []string{"Llama-3.1-8B", "Gemma-27B", "Llama-3.3-70B"} {
		// Near-linear growth 50 → 500 sessions.
		lo := get(model, 50, 60)
		hi := get(model, 500, 60)
		if hi.ReqPS < lo.ReqPS*2 {
			t.Errorf("%s: req/s grew only %.2f→%.2f from 50→500 sessions", model, lo.ReqPS, hi.ReqPS)
		}
		// Diminishing returns beyond 500.
		top := get(model, 700, 60)
		growthMid := hi.ReqPS / get(model, 300, 60).ReqPS
		growthTop := top.ReqPS / hi.ReqPS
		if growthTop > growthMid*1.3 {
			t.Errorf("%s: no saturation beyond 500 sessions (%.2f vs %.2f)", model, growthTop, growthMid)
		}
		// Shorter runs yield higher (or equal) throughput: the paper's
		// 60s > 120s effect, from sessions' growing chat histories.
		var wins int
		for _, conc := range Table1Concurrencies {
			if get(model, conc, 60).ReqPS >= get(model, conc, 120).ReqPS*0.98 {
				wins++
			}
		}
		if wins < 4 {
			t.Errorf("%s: 60s window beat 120s only %d/5 times", model, wins)
		}
	}
	// The 8B model outperforms the 70B model at equal low concurrency.
	if get("Llama-3.1-8B", 50, 60).TokPS <= get("Llama-3.3-70B", 50, 60).TokPS {
		t.Error("8B should out-generate 70B at 50 sessions")
	}
}

func TestBatchShape(t *testing.T) {
	b := RunBatch(DefaultSeed)
	if b.Requests != 1000 {
		t.Fatalf("requests = %d", b.Requests)
	}
	// ±25% of the paper's 2117 tok/s and 409 s.
	if b.OverallTokPS < 1600 || b.OverallTokPS > 2650 {
		t.Errorf("overall = %.0f tok/s, want 2117±25%%", b.OverallTokPS)
	}
	if b.TotalTimeS < 310 || b.TotalTimeS > 520 {
		t.Errorf("total = %.0fs, want 409±25%%", b.TotalTimeS)
	}
	amort := RunBatchAmortization(DefaultSeed)
	if len(amort) != 4 {
		t.Fatalf("amortization points = %d", len(amort))
	}
	for i := 1; i < len(amort); i++ {
		if amort[i].OverallTokPS <= amort[i-1].OverallTokPS {
			t.Errorf("amortization not monotone at n=%d", amort[i].Requests)
		}
		if amort[i].LoadShare >= amort[i-1].LoadShare {
			t.Errorf("load share not shrinking at n=%d", amort[i].Requests)
		}
	}
	if amort[0].LoadShare < 0.3 {
		t.Errorf("tiny batch load share = %.2f, should dominate", amort[0].LoadShare)
	}
	if amort[3].LoadShare > 0.05 {
		t.Errorf("10k-request load share = %.2f, should be amortized away", amort[3].LoadShare)
	}
}

func TestOpt1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	rows := RunOpt1Polling(DefaultSeed)
	before, after := rows[0], rows[1]
	delta := before.M.MedianLatS - after.M.MedianLatS
	// Polling on a 2s grid adds ~1s median observation delay.
	if delta < 0.4 || delta > 2.1 {
		t.Errorf("polling median penalty = %.2fs, want ≈1s", delta)
	}
}

func TestOpt2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	rows := RunOpt2AuthCache(DefaultSeed)
	before, after := rows[0], rows[1]
	if before.M.MedianLatS < after.M.MedianLatS+2 {
		t.Errorf("uncached introspection penalty too small: %.1f vs %.1f",
			before.M.MedianLatS, after.M.MedianLatS)
	}
	if before.M.ReqPerSec >= after.M.ReqPerSec {
		t.Errorf("rate-limited introspection should cut throughput: %.2f vs %.2f",
			before.M.ReqPerSec, after.M.ReqPerSec)
	}
}

func TestOpt3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	rows := RunOpt3AsyncGateway(DefaultSeed)
	sync, async := rows[0], rows[1]
	ratio := async.M.ReqPerSec / sync.M.ReqPerSec
	// Paper: "response throughput rates could be increased by a factor of 20".
	if ratio < 10 || ratio > 35 {
		t.Errorf("async/sync throughput ratio = %.1f, want ≈20", ratio)
	}
	// Paper: "over 8000 inference tasks could be queued at Globus".
	if async.HubQueuePeak < 8000 {
		t.Errorf("async fabric backlog = %d, want > 8000", async.HubQueuePeak)
	}
}

func TestRoutingAblationConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	rows := RunAblationRouting(DefaultSeed)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The documented negative result: continuous batching absorbs dispatch
	// imbalance, so all policies land within 10% of each other.
	base := rows[0].M.ReqPerSec
	for _, r := range rows[1:] {
		ratio := r.M.ReqPerSec / base
		if ratio < 0.90 || ratio > 1.10 {
			t.Errorf("%s diverges from least-loaded by %.0f%%", r.Policy, (ratio-1)*100)
		}
	}
}

func TestReportRendersAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	var sink discard
	if err := Report(&sink, "batch", DefaultSeed); err != nil {
		t.Fatal(err)
	}
	if sink == 0 {
		t.Error("report wrote nothing")
	}
	if err := Report(&sink, "nonsense", DefaultSeed); err == nil {
		t.Error("unknown experiment accepted")
	}
}

type discard int

func (d *discard) Write(p []byte) (int, error) {
	*d += discard(len(p))
	return len(p), nil
}
