package experiments

import (
	"time"

	"github.com/argonne-first/first/internal/desmodel"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/workload"
)

// Table1Cell is one (model, concurrency, run-length) measurement of the
// WebUI concurrency benchmark (Table 1): closed-loop simulated chat
// sessions, throughput measured over the run window.
type Table1Cell struct {
	Model       string
	Concurrency int
	WindowS     int
	TokPS       float64
	ReqPS       float64

	PaperTokPS float64
	PaperReqPS float64
}

// Table1Concurrencies are the paper's session counts.
var Table1Concurrencies = []int{50, 100, 300, 500, 700}

// Table1Windows are the paper's run lengths in seconds.
var Table1Windows = []int{60, 120}

// table1Models maps the paper's three models to deployment instance counts
// (the WebUI deployment auto-scales the 70B model to a second instance at
// high session counts; smaller models stay single-instance).
var table1Models = []struct {
	name      string
	display   string
	instances func(conc int) int
}{
	{perfmodel.Llama8B, "Llama-3.1-8B", func(int) int { return 1 }},
	{perfmodel.Gemma27B, "Gemma-27B", func(int) int { return 1 }},
	{perfmodel.Llama70B, "Llama-3.3-70B", func(c int) int {
		if c >= 500 {
			return 2
		}
		return 1
	}},
}

// paperTable1[model][conc][window] = (tok/s, req/s) from Table 1.
var paperTable1 = map[string]map[int]map[int][2]float64{
	"Llama-3.1-8B": {
		50:  {60: {690.68, 4.97}, 120: {441.17, 3.12}},
		100: {60: {738.33, 5.25}, 120: {563.18, 4.01}},
		300: {60: {1103.70, 7.90}, 120: {981.45, 6.81}},
		500: {60: {1672.15, 12.08}, 120: {1271.04, 8.94}},
		700: {60: {2119.50, 14.68}, 120: {1385.93, 9.74}},
	},
	"Gemma-27B": {
		50:  {60: {297.97, 2.70}, 120: {864.83, 5.13}},
		100: {60: {906.62, 5.42}, 120: {865.05, 5.10}},
		300: {60: {1469.53, 8.67}, 120: {1211.75, 7.25}},
		500: {60: {1849.67, 10.95}, 120: {1144.79, 6.83}},
		700: {60: {2651.40, 15.57}, 120: {1353.15, 8.17}},
	},
	"Llama-3.3-70B": {
		50:  {60: {217.38, 1.63}, 120: {472.05, 3.57}},
		100: {60: {785.83, 5.88}, 120: {503.52, 3.86}},
		300: {60: {1061.93, 7.92}, 120: {948.13, 7.13}},
		500: {60: {1646.53, 12.30}, 120: {1176.39, 8.75}},
		700: {60: {2134.10, 15.67}, 120: {1372.27, 10.35}},
	},
}

// RunTable1 regenerates Table 1 on the default parallel fleet.
func RunTable1(seed int64) []Table1Cell { return RunTable1On(Parallel, seed) }

// RunTable1On regenerates Table 1 with one fleet cell per
// (model, concurrency, window) combination — 30 independent simulations,
// each seeded from the experiment seed plus its cell coordinates.
func RunTable1On(f Fleet, seed int64) []Table1Cell {
	gpu := perfmodel.A100_40
	nConc := len(Table1Concurrencies)
	nWin := len(Table1Windows)
	cells := make([]Table1Cell, len(table1Models)*nConc*nWin)
	f.RunArena(len(cells), func(i int, a *desmodel.Arena) {
		mc := table1Models[i/(nConc*nWin)]
		conc := Table1Concurrencies[(i/nWin)%nConc]
		windowS := Table1Windows[i%nWin]
		model := perfmodel.Default.MustLookup(mc.name)
		window := time.Duration(windowS) * time.Second
		k := a.Begin()
		loop := newClosedLoop(k, workload.WebUI(), seed+int64(conc)+int64(windowS), conc, 0)
		loop.enableChatHistory(8192)
		// The WebUI backend (FastAPI/Uvicorn) holds its own worker
		// pool, not the gateway's Gunicorn window; session count is
		// the concurrency control here.
		params := desmodel.DefaultFirstParams()
		params.Window = 0
		sys := desmodel.NewFirstSystemIn(a, params, model, gpu, mc.instances(conc), loop.onDone)
		loop.start(sys)
		k.Run(window)
		n, _ := loop.completedWithin(window)
		cell := Table1Cell{
			Model:       mc.display,
			Concurrency: conc,
			WindowS:     windowS,
			// Sessions stream, so token throughput counts tokens
			// as generated within the window.
			TokPS: float64(sys.EmittedTokensBy(window)) / window.Seconds(),
			ReqPS: float64(n) / window.Seconds(),
		}
		if p, ok := paperTable1[mc.display][conc][windowS]; ok {
			cell.PaperTokPS, cell.PaperReqPS = p[0], p[1]
		}
		cells[i] = cell
	})
	return cells
}
