package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestFleetRunsEveryCellOnce checks the work-stealing loop covers [0, n)
// exactly once at every worker count.
func TestFleetRunsEveryCellOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		hits := make([]int32, n)
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		Fleet{Workers: workers}.Run(n, func(i int) {
			<-mu
			hits[i]++
			mu <- struct{}{}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, h)
			}
		}
	}
}

// TestFleetDeterminismFig3 is the tentpole's acceptance check: the parallel
// fleet must reproduce the sequential reference bit for bit.
func TestFleetDeterminismFig3(t *testing.T) {
	seq := RunFig3On(Sequential, DefaultSeed)
	par := RunFig3On(Fleet{Workers: 8}, DefaultSeed)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Fig3 parallel results diverge from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestFleetDeterminismTable1 covers the closed-loop chat-session path,
// whose per-cell RNGs and history state are the most state-heavy.
func TestFleetDeterminismTable1(t *testing.T) {
	seq := RunTable1On(Sequential, DefaultSeed)
	par := RunTable1On(Fleet{Workers: 8}, DefaultSeed)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("Table1 parallel results diverge from sequential")
	}
}

// TestFleetDeterminismReport drives the full rendered report both ways; the
// text output (what first-bench prints) must be byte-identical.
func TestFleetDeterminismReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	var seq, par bytes.Buffer
	if err := ReportOn(&seq, "all", DefaultSeed, Sequential); err != nil {
		t.Fatal(err)
	}
	if err := ReportOn(&par, "all", DefaultSeed, Parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Error("rendered report differs between sequential and parallel fleets")
	}
}

func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	if got, want := NextBenchPath(dir), filepath.Join(dir, "BENCH_1.json"); got != want {
		t.Errorf("empty dir: %s, want %s", got, want)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_1.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, want := NextBenchPath(dir), filepath.Join(dir, "BENCH_2.json"); got != want {
		t.Errorf("after BENCH_1: %s, want %s", got, want)
	}
}

// TestBenchRecordRoundTrip validates the machine-readable perf record:
// every experiment present, positive wall times, valid JSON on disk.
func TestBenchRecordRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	rec := CollectBench(Parallel, DefaultSeed)
	if rec.Schema != BenchSchema {
		t.Errorf("schema = %q", rec.Schema)
	}
	for _, name := range []string{"fig3", "fig4", "fig5", "table1", "batch", "opt1", "opt2", "opt3", "routing", "storm"} {
		exp, ok := rec.Experiments[name]
		if !ok {
			t.Errorf("missing experiment %q", name)
			continue
		}
		if exp.WallMS < 0 || len(exp.Metrics) == 0 {
			t.Errorf("experiment %q: wall=%v metrics=%v", name, exp.WallMS, exp.Metrics)
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	if err := WriteBench(rec, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written record is not valid JSON: %v", err)
	}
	if back.Seed != DefaultSeed || len(back.Experiments) != len(rec.Experiments) {
		t.Errorf("round trip mismatch: %+v", back)
	}
}

// TestFleetPanicPropagates checks a cell panic surfaces on the caller's
// goroutine (like the sequential path) instead of crashing the process.
func TestFleetPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			Fleet{Workers: workers}.Run(8, func(i int) {
				if i == 5 {
					panic("boom")
				}
			})
			t.Errorf("workers=%d: Run returned without panicking", workers)
		}()
	}
}
