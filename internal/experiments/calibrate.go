package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// The calibration gate turns the live-vs-twin comparison from a table humans
// eyeball into a pass/fail contract: if the DES twin replaying the live
// cell's executed schedule lands outside tolerance, the nightly job fails
// and the divergent schedule is preserved as an artifact for replay.

// Calibration tolerances. The rung-share tolerance is in percentage points
// over the three routing rungs; the rate ratio bounds live
// failover-attempts-per-request against twin migrations-per-request (the two
// sides' names for the same re-route event).
const (
	CalibRungTolerancePts = 5.0
	CalibRateRatioMax     = 2.0
)

// Calibration is one cell's gate verdict.
type Calibration struct {
	// RungGapPts is the largest absolute live-vs-sim gap across the three
	// rung shares (active / capacity / first-configured), in points.
	RungGapPts float64 `json:"rung_gap_pts"`
	// LiveFailoverPerReq is gateway failover attempts per issued request.
	LiveFailoverPerReq float64 `json:"live_failover_per_req"`
	// SimMigrationsPerReq is twin migrations per offered request.
	SimMigrationsPerReq float64 `json:"sim_migrations_per_req"`
	// RateRatio is max/min of the two rates above (1 = identical). When both
	// are under 0.01 the storm produced too few re-routes to compare and the
	// ratio is defined as 1.
	RateRatio float64 `json:"rate_ratio"`

	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
}

// Calibrate gates the row's live census against its DES twin.
func (r LiveFedRow) Calibrate() Calibration {
	la, lc, lf := rungShares(r.RungActive, r.RungCapacity, r.RungFirstConf)
	sa, sc, sf := rungShares(r.Sim.Rungs.Active, r.Sim.Rungs.Capacity, r.Sim.Rungs.FirstConf)
	cal := Calibration{}
	for _, gap := range []float64{la - sa, lc - sc, lf - sf} {
		if gap < 0 {
			gap = -gap
		}
		if gap > cal.RungGapPts {
			cal.RungGapPts = gap
		}
	}
	if r.Requests > 0 {
		cal.LiveFailoverPerReq = float64(r.FailoverAttempts) / float64(r.Requests)
	}
	if r.Sim.Offered > 0 {
		cal.SimMigrationsPerReq = float64(r.Sim.Migrations) / float64(r.Sim.Offered)
	}
	cal.RateRatio = rateRatio(cal.LiveFailoverPerReq, cal.SimMigrationsPerReq)

	cal.Pass = true
	if cal.RungGapPts > CalibRungTolerancePts {
		cal.Pass = false
		cal.Violations = append(cal.Violations, fmt.Sprintf(
			"rung share gap %.2f pts exceeds ±%.1f (live %.2f/%.2f/%.2f vs sim %.2f/%.2f/%.2f)",
			cal.RungGapPts, CalibRungTolerancePts, la, lc, lf, sa, sc, sf))
	}
	if cal.RateRatio > CalibRateRatioMax {
		cal.Pass = false
		cal.Violations = append(cal.Violations, fmt.Sprintf(
			"failover-vs-migration ratio %.2fx exceeds %.1fx (live %.4f/req vs sim %.4f/req)",
			cal.RateRatio, CalibRateRatioMax, cal.LiveFailoverPerReq, cal.SimMigrationsPerReq))
	}
	return cal
}

// rateRatio is max/min of two per-request rates. Two storms too quiet to
// re-route anything (both under 0.01/req) are vacuously calibrated: the
// ratio of two near-zero noise terms carries no signal.
func rateRatio(a, b float64) float64 {
	if a < 0.01 && b < 0.01 {
		return 1
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo <= 0 {
		// One side re-routed, the other never did: infinitely divergent, but
		// keep the value finite and clearly past any sane tolerance.
		return 1000
	}
	return hi / lo
}

// CalibrateAll gates every row; ok is true only if every cell passes.
func CalibrateAll(rows []LiveFedRow) (cals []Calibration, ok bool) {
	ok = true
	for _, r := range rows {
		cal := r.Calibrate()
		if !cal.Pass {
			ok = false
		}
		cals = append(cals, cal)
	}
	return cals, ok
}

// WriteCalibArtifact preserves a divergent cell for offline replay: the
// executed schedule (canonical JSON, replayable into the DES twin verbatim)
// plus the gate verdict. Returns the schedule path.
func WriteCalibArtifact(dir string, r LiveFedRow, cal Calibration) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	base := fmt.Sprintf("livefed_c%d_r%d", r.Clusters, r.Requests)
	schedPath := filepath.Join(dir, base+"_schedule.json")
	if err := r.Schedule.WriteFile(schedPath); err != nil {
		return "", err
	}
	verdict, err := calJSON(cal)
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, base+"_verdict.json"), verdict, 0o644); err != nil {
		return "", err
	}
	return schedPath, nil
}

// RunLiveFedGateOn runs the cells live, replays each executed schedule into
// its DES twin, prints the calibration report, and enforces the tolerance
// gate. Divergent cells' schedules are preserved under artifactDir (when
// set) so the exact storm can be replayed offline. Returns false on any
// gate trip — `make livefed-night` turns that into a failing exit code.
func RunLiveFedGateOn(w io.Writer, f Fleet, seed int64, cells []LiveFedCell, artifactDir string) bool {
	rows := RunLiveFedCellsOn(f, seed, cells)
	ReportLiveFed(w, rows)
	cals, ok := CalibrateAll(rows)
	if ok {
		fmt.Fprintln(w, "calibration gate: PASS (all cells)")
		return true
	}
	for i, cal := range cals {
		if cal.Pass {
			continue
		}
		fmt.Fprintf(w, "calibration gate: FAIL c%d: %v\n", rows[i].Clusters, cal.Violations)
		if artifactDir == "" {
			continue
		}
		if path, err := WriteCalibArtifact(artifactDir, rows[i], cal); err != nil {
			fmt.Fprintf(w, "  artifact write failed: %v\n", err)
		} else {
			fmt.Fprintf(w, "  divergent schedule preserved: %s\n", path)
		}
	}
	return false
}

func calJSON(cal Calibration) ([]byte, error) {
	data, err := json.MarshalIndent(cal, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
