package experiments

import (
	"github.com/argonne-first/first/internal/desmodel"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/workload"
)

// Fig4Row is one auto-scaling configuration of Figure 4: Llama-3.3-70B
// under maximum (infinite-rate) load on 1..4 instances.
type Fig4Row struct {
	Instances int
	M         desmodel.Metrics
	// Scaling ratio of token throughput vs 1 instance.
	TokScale float64

	PaperReqPS   float64
	PaperTokPS   float64
	PaperMedianS float64
	PaperScale   float64
}

// Fig4Requests sizes the run; larger than Fig. 3 so four instances stay
// saturated long enough to measure steady state.
const Fig4Requests = 2000

// RunFig4 regenerates Figure 4 on the default parallel fleet.
func RunFig4(seed int64) []Fig4Row { return RunFig4On(Parallel, seed) }

// RunFig4On regenerates Figure 4, one fleet cell per instance count.
func RunFig4On(f Fleet, seed int64) []Fig4Row {
	paper := map[int]Fig4Row{
		1: {PaperReqPS: 8.3, PaperTokPS: 1432, PaperMedianS: 54.5, PaperScale: 1.0},
		2: {PaperReqPS: 14.6, PaperMedianS: 30.1, PaperScale: 1.75},
		3: {PaperReqPS: 20.9, PaperMedianS: 18.8, PaperScale: 2.52},
		4: {PaperReqPS: 23.9, PaperTokPS: 4131, PaperMedianS: 16.0, PaperScale: 2.88},
	}
	model := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	gpu := perfmodel.A100_40

	rows := make([]Fig4Row, 4)
	f.RunArena(len(rows), func(i int, a *desmodel.Arena) {
		n := i + 1
		trace := workload.Generate(Fig4Requests, workload.ShareGPT(), workload.Infinite(), seed)
		k := a.Begin()
		sys := desmodel.NewFirstSystemIn(a, desmodel.DefaultFirstParams(), model, gpu, n, nil)
		reqs := driveOpenLoop(k, trace, sys)
		k.Run(0)
		row := Fig4Row{Instances: n, M: desmodel.Collect(reqs)}
		p := paper[n]
		row.PaperReqPS, row.PaperTokPS, row.PaperMedianS, row.PaperScale =
			p.PaperReqPS, p.PaperTokPS, p.PaperMedianS, p.PaperScale
		rows[i] = row
	})
	// Scaling ratios need the single-instance base, so they are stamped
	// after the fleet joins.
	if base := rows[0].M.TokPerSec; base > 0 {
		for i := range rows {
			rows[i].TokScale = rows[i].M.TokPerSec / base
		}
	}
	return rows
}
