package experiments

import (
	"github.com/argonne-first/first/internal/desmodel"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/sim"
	"github.com/argonne-first/first/internal/workload"
)

// Fig4Row is one auto-scaling configuration of Figure 4: Llama-3.3-70B
// under maximum (infinite-rate) load on 1..4 instances.
type Fig4Row struct {
	Instances int
	M         desmodel.Metrics
	// Scaling ratio of token throughput vs 1 instance.
	TokScale float64

	PaperReqPS   float64
	PaperTokPS   float64
	PaperMedianS float64
	PaperScale   float64
}

// Fig4Requests sizes the run; larger than Fig. 3 so four instances stay
// saturated long enough to measure steady state.
const Fig4Requests = 2000

// RunFig4 regenerates Figure 4.
func RunFig4(seed int64) []Fig4Row {
	paper := map[int]Fig4Row{
		1: {PaperReqPS: 8.3, PaperTokPS: 1432, PaperMedianS: 54.5, PaperScale: 1.0},
		2: {PaperReqPS: 14.6, PaperMedianS: 30.1, PaperScale: 1.75},
		3: {PaperReqPS: 20.9, PaperMedianS: 18.8, PaperScale: 2.52},
		4: {PaperReqPS: 23.9, PaperTokPS: 4131, PaperMedianS: 16.0, PaperScale: 2.88},
	}
	model := perfmodel.Default.MustLookup(perfmodel.Llama70B)
	gpu := perfmodel.A100_40
	trace := workload.Generate(Fig4Requests, workload.ShareGPT(), workload.Infinite(), seed)

	var rows []Fig4Row
	var base float64
	for n := 1; n <= 4; n++ {
		k := sim.NewKernel()
		sys := desmodel.NewFirstSystem(k, desmodel.DefaultFirstParams(), model, gpu, n, nil)
		reqs := driveOpenLoop(k, trace, sys)
		k.Run(0)
		row := Fig4Row{Instances: n, M: desmodel.Collect(reqs)}
		if n == 1 {
			base = row.M.TokPerSec
		}
		if base > 0 {
			row.TokScale = row.M.TokPerSec / base
		}
		p := paper[n]
		row.PaperReqPS, row.PaperTokPS, row.PaperMedianS, row.PaperScale =
			p.PaperReqPS, p.PaperTokPS, p.PaperMedianS, p.PaperScale
		rows = append(rows, row)
	}
	return rows
}
