package experiments

// Parallel-mode drivers for the federation families: the same traces the
// sequential drivers generate (same RNG seed derivations, same request
// shapes), issued onto a desmodel.NewParFederation whose router and clusters
// run on conservative-window kernel shards. Fleet.Par selects them; the
// par-diff suite pins every (Par, Queue) combination byte-identical to the
// Par=1 reference.

import (
	"time"

	"github.com/argonne-first/first/internal/desmodel"
	"github.com/argonne-first/first/internal/sim"
	"github.com/argonne-first/first/internal/workload"
)

// parParams maps the fleet's Par knob onto the cell's shard configuration.
func (f Fleet) parParams() desmodel.ParParams {
	return desmodel.ParParams{
		Workers:   f.Par,
		MaxEvents: federateEventBudget,
	}
}

// federateOpenPar is federateOpen on the sharded federation: identical trace
// (seed, gaps, lengths, model draws), with the run stopping at the window
// barrier after the last completion callback reaches the router.
func federateOpenPar(f Fleet, c FederateCell, seed int64) FederateRow {
	p := c.params()
	n := c.OpenLoopReqs
	completed := 0
	sys := desmodel.NewParFederation(p, f.parParams(), f.Queue, func(*desmodel.Req) {
		completed++
	})
	k := sys.RouterKernel()
	spec := workload.FederateOpen()
	rng := sim.NewRNG(seed + int64(c.Clusters)*1_000_003 + int64(n))
	models := len(p.Models)
	gapMean := float64(time.Second) / c.RatePerSec
	reqs := make([]*desmodel.Req, n)
	idx := 0
	var step func()
	step = func() {
		pt, ot := spec.SampleLengths(rng)
		r := &desmodel.Req{ID: idx + 1, PromptTok: pt, OutputTok: ot, Model: rng.Intn(models)}
		reqs[idx] = r
		sys.ReplayAdvance(idx)
		sys.Arrive(r)
		idx++
		if idx < n {
			k.Schedule(time.Duration(rng.Exp(gapMean)), step)
		}
	}
	k.Schedule(time.Duration(rng.Exp(gapMean)), step)
	end := sys.RunPar(0, func() bool { return completed >= n })
	return federateRow(sys, c, openMode(c), n, reqs, end)
}

// federateWebUIPar is federateWebUI on the sharded federation: the closed
// loop lives on the router shard (completion callbacks hop home through the
// cluster→router mailboxes before re-issuing).
func federateWebUIPar(f Fleet, c FederateCell, seed int64) FederateRow {
	p := c.params()
	think := time.Duration(c.ThinkS) * time.Second
	loop := newClosedLoop(nil, workload.WebUI(), seed+int64(c.Clusters)+int64(c.Sessions), c.Sessions, think)
	loop.enableChatHistory(8192)
	models := len(p.Models)
	loop.assign = func(r *desmodel.Req) { r.Model = r.Session % models }
	sys := desmodel.NewParFederation(p, f.parParams(), f.Queue, loop.onDone)
	loop.k = sys.RouterKernel()
	loop.start(sys)
	window := time.Duration(c.WindowS) * time.Second
	end := sys.RunPar(window, nil)
	return federateRow(sys, c, "webui", loop.issued, loop.finished, end)
}

// autoScaleRunPar is autoScaleRun on the sharded federation. The demand
// shape reads the router clock, exactly like the sequential driver reads
// its single kernel's clock.
func autoScaleRunPar(f Fleet, c AutoScaleCell, seed int64) AutoScaleRow {
	p := c.params()
	n := c.Reqs
	completed := 0
	sys := desmodel.NewParFederation(p, f.parParams(), f.Queue, func(*desmodel.Req) {
		completed++
	})
	k := sys.RouterKernel()
	spec := workload.FederateOpen()
	rng := sim.NewRNG(seed + int64(c.Clusters)*1_000_003 + int64(n) + int64(len(c.Shape)))
	models := len(p.Models)
	mult, hot := c.shapeFns(models)
	baseGap := float64(time.Second) / c.BaseRatePerSec
	reqs := make([]*desmodel.Req, n)
	idx := 0
	var step func()
	step = func() {
		now := k.Now()
		pt, ot := spec.SampleLengths(rng)
		m := hot(now)
		if rng.Float64() >= 0.8 {
			m = rng.Intn(models)
		}
		r := &desmodel.Req{ID: idx + 1, PromptTok: pt, OutputTok: ot, Model: m}
		reqs[idx] = r
		sys.Arrive(r)
		idx++
		if idx < n {
			k.Schedule(time.Duration(rng.Exp(baseGap/mult(now))), step)
		}
	}
	k.Schedule(time.Duration(rng.Exp(baseGap)), step)
	end := sys.RunPar(0, func() bool { return completed >= n })
	return autoScaleRow(sys, c, n, reqs, end)
}
