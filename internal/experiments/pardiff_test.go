package experiments

// The parallel-vs-reference byte-identity suite (`make par-diff`, required
// CI job): the federate, autoscale, and livefed-twin families must produce
// identical rows at every -par worker count and under both queue kinds.
// The reference is Par=1 — the same windowed model executed with zero
// goroutines — so any divergence isolates a synchronization bug (mailbox
// ordering, snapshot timing, barrier state) rather than a model change.
// The full-scale versions fold into the nightly matrix legs
// (TestFederateFullScalePar, TestAutoScaleFullScalePar).

import (
	"reflect"
	"testing"

	"github.com/argonne-first/first/internal/chaosnet"
	"github.com/argonne-first/first/internal/sim"
)

// parDiffFleets are the configurations pinned against the Par=1 calendar
// reference.
var parDiffFleets = []Fleet{
	{Par: 1, Queue: sim.QueueHeap},
	{Par: 2, Queue: sim.QueueCalendar},
	{Par: 2, Queue: sim.QueueHeap},
	{Par: 8, Queue: sim.QueueCalendar},
	{Par: 8, Queue: sim.QueueHeap},
}

func TestParDiffFederate(t *testing.T) {
	ref := RunFederateCellsOn(Fleet{Par: 1}, DefaultSeed, FederateCellsShort)
	for _, f := range parDiffFleets {
		got := RunFederateCellsOn(f, DefaultSeed, FederateCellsShort)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("federate family diverged at par=%d queue=%v:\nref: %+v\ngot: %+v",
				f.Par, f.Queue, ref, got)
		}
	}
}

func TestParDiffAutoscale(t *testing.T) {
	ref := RunAutoScaleCellsOn(Fleet{Par: 1}, DefaultSeed, AutoScaleCellsShort)
	for _, f := range parDiffFleets {
		got := RunAutoScaleCellsOn(f, DefaultSeed, AutoScaleCellsShort)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("autoscale family diverged at par=%d queue=%v:\nref: %+v\ngot: %+v",
				f.Par, f.Queue, ref, got)
		}
	}
}

// TestParDiffLiveFedTwin pins the livefed calibration twin — the replayed
// chaos schedule through breakers, kills, restarts, and background claims —
// across parallel configurations, without paying for the live half: the
// schedule is synthesized the way a live run records it (sorted events,
// fault windows, measured rate), then replayed into the same FederateCell
// the calibration path builds via simTwin.
func TestParDiffLiveFedTwin(t *testing.T) {
	cell := LiveFedCellsShort[0]
	s := chaosnet.Schedule{
		Seed:       chaosnet.Mix(uint64(DefaultSeed) ^ 0x9e3779b97f4a7c15),
		Endpoints:  cell.Clusters,
		Requests:   cell.Requests,
		RatePerSec: 40,
		Windows: chaosnet.Windows{
			BurstEvery: 60, BurstLen: 8, PFault: 0.35, PBackground: 0.1,
		},
	}
	for i := 40; i+80 < cell.Requests; i += 80 {
		ep := (i / 80) % cell.Clusters
		s.Events = append(s.Events,
			chaosnet.Event{AtIndex: i, Kind: chaosnet.EventKill, Endpoint: ep},
			chaosnet.Event{AtIndex: i + 25, Kind: chaosnet.EventRestart, Endpoint: ep},
			chaosnet.Event{AtIndex: i + 10, Kind: chaosnet.EventBGClaim, Endpoint: (ep + 1) % cell.Clusters, GPUs: 4},
			chaosnet.Event{AtIndex: i + 50, Kind: chaosnet.EventBGRelease, Endpoint: (ep + 1) % cell.Clusters},
		)
	}
	s.Sort()
	twin := cell.simTwin(s)
	cells := []FederateCell{twin}

	ref := RunFederateCellsOn(Fleet{Par: 1}, DefaultSeed, cells)
	for _, f := range parDiffFleets {
		got := RunFederateCellsOn(f, DefaultSeed, cells)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("livefed twin diverged at par=%d queue=%v:\nref: %+v\ngot: %+v",
				f.Par, f.Queue, ref, got)
		}
	}
}

// TestParFederateCompletes sanity-checks the parallel drivers against the
// sequential ones on one small open-loop cell: same offered count, full
// conservation, and a wall-clock-independent horizon (virtual end times are
// model-dependent, so only structural fields are compared here — the model
// variant is *expected* to differ from Par=0; byte-identity holds within
// the parallel mode, which the tests above enforce).
func TestParFederateCompletes(t *testing.T) {
	cell := FederateCell{Clusters: 2, OpenLoopReqs: 5_000, RatePerSec: 200,
		ServeWalltimeS: 45, DrainGraceS: 15, BGPeriodS: 80}
	rows := RunFederateCellsOn(Fleet{Par: 2}, DefaultSeed, []FederateCell{cell})
	r := rows[0]
	if r.Offered != cell.OpenLoopReqs {
		t.Fatalf("offered = %d, want %d", r.Offered, cell.OpenLoopReqs)
	}
	if r.M.Completed != cell.OpenLoopReqs {
		t.Fatalf("completed = %d, want %d", r.M.Completed, cell.OpenLoopReqs)
	}
	if r.M.MedianLatS <= 0 {
		t.Fatalf("degenerate latency distribution: %+v", r.M)
	}
}
