package experiments

import (
	"time"

	"github.com/argonne-first/first/internal/desmodel"
	"github.com/argonne-first/first/internal/sim"
)

// StormRow is one (users, shards) cell of the arrival-storm study: a flood
// of distinct one-shot users offered at StormRatePerSec against the gateway
// front-end with the given lock-shard count. It extends the paper's §5.3.1
// worker-model result to the regime the ROADMAP's north star targets —
// million-user storms a single node must absorb without serializing on one
// lock.
type StormRow struct {
	Users  int
	Shards int
	M      desmodel.Metrics
	// PeakShardQueue is the deepest backlog on any front-end shard.
	PeakShardQueue int
}

// StormRatePerSec is the offered storm intensity: 10⁶ arrivals/s, four times
// what one 4 µs critical section can admit, so the single-lock arm saturates
// while the sharded arm rides it out.
const StormRatePerSec = 1e6

// StormShardCounts are the compared front-end configurations.
var StormShardCounts = []int{1, 16}

// StormUserCounts are the storm sizes (distinct one-shot users).
var StormUserCounts = []int{100_000, 1_000_000}

// RunStorm regenerates the arrival-storm study on the default fleet.
func RunStorm(seed int64) []StormRow { return RunStormOn(Parallel, seed) }

// RunStormOn fans the (users × shards) cells over f. Arrival times depend
// only on (seed, users), so the shard arms of one storm size face an
// identical storm and differ purely in front-end sharding.
func RunStormOn(f Fleet, seed int64) []StormRow {
	type cell struct{ users, shards int }
	var cells []cell
	for _, u := range StormUserCounts {
		for _, s := range StormShardCounts {
			cells = append(cells, cell{u, s})
		}
	}
	rows := make([]StormRow, len(cells))
	f.RunArena(len(cells), func(i int, a *desmodel.Arena) {
		c := cells[i]
		k := a.Begin()
		sys := desmodel.NewGatewayFE(k, desmodel.DefaultGatewayFEParams(c.shards), nil)
		rng := sim.NewRNG(seed + int64(c.users))
		reqs := make([]*desmodel.Req, c.users)
		// Arrivals self-schedule: each one books the next, so the kernel
		// heap holds one pending arrival instead of the whole storm.
		gapMean := float64(time.Second) / StormRatePerSec
		idx := 0
		var step func()
		step = func() {
			r := &desmodel.Req{ID: idx + 1}
			reqs[idx] = r
			sys.Arrive(r)
			idx++
			if idx < c.users {
				k.Schedule(time.Duration(rng.Exp(gapMean)), step)
			}
		}
		k.Schedule(time.Duration(rng.Exp(gapMean)), step)
		k.Run(0)
		rows[i] = StormRow{
			Users:          c.users,
			Shards:         c.shards,
			M:              desmodel.Collect(reqs),
			PeakShardQueue: sys.PeakShardQueue(),
		}
	})
	return rows
}
