package experiments

import (
	"runtime"
	"time"

	"github.com/argonne-first/first/internal/desmodel"
	"github.com/argonne-first/first/internal/metrics"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/resilience"
	"github.com/argonne-first/first/internal/serving"
	"github.com/argonne-first/first/internal/sim"
	"github.com/argonne-first/first/internal/workload"
)

// MicroBench is one substrate micro-benchmark's record entry: the raw
// per-operation cost of a data-plane hot path, with its allocation count —
// the series `make bench-diff` guards against regressions.
type MicroBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// microReps is how many times each micro-benchmark loop repeats; the
// fastest repetition wins.
const microReps = 3

// measureMicro times iters executions of op and reports per-op cost and
// heap traffic. It is self-contained (no testing.B) so first-bench can emit
// the numbers into BENCH_<n>.json from a plain binary. The loop repeats
// microReps times and the fastest repetition wins — like the experiment
// walls, a single-shot timing on a busy host can spike far past the
// bench-diff threshold with no code change (allocation counts, being
// deterministic, are taken from the same repetition).
func measureMicro(iters int, op func()) MicroBench {
	op() // warm up: first-call allocations (lazy tables) are not steady state
	var best MicroBench
	for rep := 0; rep < microReps; rep++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			op()
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		n := float64(iters)
		m := MicroBench{
			NsPerOp:     float64(wall.Nanoseconds()) / n,
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
			BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
		}
		if rep == 0 || m.NsPerOp < best.NsPerOp {
			best = m
		}
	}
	return best
}

// CollectMicro runs the substrate micro-benchmarks (the same hot paths the
// Go benchmarks in bench_test.go cover) and returns their record section.
func CollectMicro() map[string]MicroBench {
	out := make(map[string]MicroBench)

	// DES kernel: one schedule+dispatch round trip.
	k := sim.NewKernel()
	out["kernel_event"] = measureMicro(200000, func() {
		k.Schedule(time.Microsecond, func() {})
		k.Run(0)
	})

	// DES kernel under a standing near-uniform population of 1024 pending
	// events — the figure-run regime the calendar queue targets; the heap
	// series is the O(log n) reference the calendar is measured against.
	for _, kq := range []struct {
		name string
		kind sim.QueueKind
	}{
		{"kernel_uniform_1k", sim.QueueCalendar},
		{"kernel_uniform_1k_heap", sim.QueueHeap},
	} {
		const depth = 1024
		uk := sim.NewKernelWith(kq.kind)
		remaining := 0
		var fn func()
		fn = func() {
			remaining--
			if remaining > 0 {
				uk.Schedule(depth*time.Microsecond, fn)
			}
		}
		run := func() {
			uk.Reset()
			remaining = 64 * depth
			for i := 0; i < depth; i++ {
				uk.Schedule(time.Duration(i)*time.Microsecond, fn)
			}
			uk.Run(0)
		}
		per := measureMicro(8, run)
		// measureMicro timed whole runs; report per-event cost.
		per.NsPerOp /= 64 * depth
		per.AllocsPerOp /= 64 * depth
		per.BytesPerOp /= 64 * depth
		out[kq.name] = per
	}

	// Serving engine: one continuous-batching iteration at saturation.
	model := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	eng, err := serving.NewEngine(serving.Config{Model: model, GPU: perfmodel.A100_40})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 512; i++ {
		eng.Submit(0, 100, 1<<20, nil)
	}
	var now time.Duration
	out["engine_step"] = measureMicro(20000, func() {
		res := eng.Step(now)
		now += res.Duration
	})

	// Auto-scaler: one policy evaluation (steady no-action decision) and one
	// least-loaded instance selection — the per-tick and per-request hot
	// paths of the federation's deployment pools, pinned at 0 allocs/op.
	tick, pick := desmodel.ScalerMicro()
	out["scaler_tick"] = measureMicro(1000000, tick)
	out["scaler_pick"] = measureMicro(1000000, pick)

	// Arrival forecaster: one observe + horizon projection — the extra work
	// every predictive scaler tick does per deployment, pinned at 0
	// allocs/op.
	fc := desmodel.NewForecast(0, 0)
	var fsink float64
	out["forecast_observe"] = measureMicro(1000000, func() {
		fc.Observe(17)
		fsink += fc.PredictSum(8)
	})
	_ = fsink

	// Sharded kernel: one cross-shard mailbox round trip (enqueue, ordered
	// drain, delivery) — the per-hop cost the parallel DES pays at every
	// window barrier, pinned at 0 allocs/op steady state.
	out["shard_mailbox"] = measureMicro(200000, sim.MailboxMicro())

	// Metrics: one striped counter increment (the per-request metric cost).
	var ctr metrics.Counter
	out["counter_inc"] = measureMicro(1000000, ctr.Inc)

	// Circuit breaker: one closed-path admission check — the cost every
	// routed request pays once breakers are enabled, pinned at 0 allocs/op.
	brk := resilience.NewSet(resilience.BreakerConfig{
		Window: 10 * time.Second, MinSamples: 10, FailureRate: 0.5,
	})
	bnow := time.Unix(0, 0)
	brk.Record("ep-0", bnow, time.Millisecond, true)
	out["breaker_allow"] = measureMicro(1000000, func() {
		brk.CanAttempt("ep-0", bnow)
	})

	// Workload synthesis: one 100-request ShareGPT trace.
	seed := int64(0)
	out["workload_gen_100"] = measureMicro(200, func() {
		seed++
		workload.Generate(100, workload.ShareGPT(), workload.Poisson(10), seed)
	})
	return out
}
