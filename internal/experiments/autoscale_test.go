package experiments

import (
	"os"
	"reflect"
	"testing"

	"github.com/argonne-first/first/internal/sim"
)

// The autoscale determinism suite mirrors the federate one: the short family
// runs per PR, the full family (10⁶-scale, every shape) in the nightly CI
// job — set FIRST_AUTOSCALE_FULL=1 (or run `make autoscale-night`) to enable
// it locally.

// autoScaleFullEnabled reports whether the full-scale suite should run.
func autoScaleFullEnabled() bool { return os.Getenv("FIRST_AUTOSCALE_FULL") != "" }

// TestAutoScaleDifferentialWorkers pins the autoscale family byte-identical
// across fleet worker counts: the parallel run must reproduce the
// sequential reference exactly.
func TestAutoScaleDifferentialWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	seq := RunAutoScaleCellsOn(Sequential, DefaultSeed, AutoScaleCellsShort)
	par := RunAutoScaleCellsOn(Parallel, DefaultSeed, AutoScaleCellsShort)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("autoscale diverges across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestAutoScaleDifferentialQueue pins the family byte-identical across the
// calendar-queue kernel and the 4-ary heap reference.
func TestAutoScaleDifferentialQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	cal := RunAutoScaleCellsOn(Sequential, DefaultSeed, AutoScaleCellsShort)
	heap := RunAutoScaleCellsOn(heapRef, DefaultSeed, AutoScaleCellsShort)
	if !reflect.DeepEqual(cal, heap) {
		t.Errorf("autoscale diverges between calendar and heap kernels:\ncal:  %+v\nheap: %+v", cal, heap)
	}
}

// assertAutoScaleElasticity checks the family exercised what it claims:
// every request completes, the scaler fires in BOTH directions (Fig4's
// grow-and-shrink story), pools actually deepen past one instance, the cap
// refuses at least one growth step, and the priority ladder keeps firing on
// every rung while deployments churn.
func assertAutoScaleElasticity(t *testing.T, rows []AutoScaleRow) {
	t.Helper()
	var rungs [3]int64
	var ups, downs, refused, colds, drains, prewarms int
	for _, r := range rows {
		if r.M.Completed != r.Offered {
			t.Errorf("%s c%d: completed %d of %d requests", r.Shape, r.Clusters, r.M.Completed, r.Offered)
		}
		if r.M.Failed != 0 {
			t.Errorf("%s c%d: %d failed requests", r.Shape, r.Clusters, r.M.Failed)
		}
		if r.ScaleUps+r.PreWarms == 0 || r.ScaleDowns == 0 {
			t.Errorf("%s c%d: scaler fired up=%d pre=%d down=%d, want both directions nonzero", r.Shape, r.Clusters, r.ScaleUps, r.PreWarms, r.ScaleDowns)
		}
		if r.Predictive && r.PreWarms == 0 {
			t.Errorf("%s c%d: predictive cell never pre-warmed", r.Shape, r.Clusters)
		}
		if !r.Predictive && r.PreWarms != 0 {
			t.Errorf("%s c%d: reactive cell recorded %d pre-warms; the predictive path leaked", r.Shape, r.Clusters, r.PreWarms)
		}
		if r.PeakInstances <= 1 {
			t.Errorf("%s c%d: peak instances = %d, pools never grew", r.Shape, r.Clusters, r.PeakInstances)
		}
		rungs[0] += r.Rungs.Active
		rungs[1] += r.Rungs.Capacity
		rungs[2] += r.Rungs.FirstConf
		ups += r.ScaleUps
		downs += r.ScaleDowns
		refused += r.ScaleRefused
		colds += r.ColdStarts
		drains += r.Drains
		prewarms += r.PreWarms
	}
	if rungs[0] == 0 || rungs[1] == 0 || rungs[2] == 0 {
		t.Errorf("priority ladder not hit on all rungs: active=%d capacity=%d first-conf=%d", rungs[0], rungs[1], rungs[2])
	}
	if refused == 0 {
		t.Error("no scale-up was ever refused at the MaxInstances cap")
	}
	if drains == 0 {
		t.Error("no walltime drains alongside the scaler churn")
	}
	if colds <= ups+prewarms {
		t.Errorf("cold starts = %d ≤ scale-ups %d + pre-warms %d; demand-driven starts missing", colds, ups, prewarms)
	}
}

// TestAutoScaleElasticityShort asserts the short family hits the full
// elasticity surface (the per-PR guard that a refactor didn't quietly
// de-fang the scaler).
func TestAutoScaleElasticityShort(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are long")
	}
	assertAutoScaleElasticity(t, RunAutoScaleCellsOn(Parallel, DefaultSeed, AutoScaleCellsShort))
}

// TestAutoScaleFullScale is the nightly gate: the full family, elasticity
// surface fully exercised, byte-identical across worker counts and queue
// kinds. Too slow for per-PR CI.
func TestAutoScaleFullScale(t *testing.T) {
	if !autoScaleFullEnabled() {
		t.Skip("set FIRST_AUTOSCALE_FULL=1 for the full autoscale suite (nightly CI)")
	}
	cal := RunAutoScaleOn(Parallel, DefaultSeed)
	assertAutoScaleElasticity(t, cal)
	seq := RunAutoScaleOn(Sequential, DefaultSeed)
	if !reflect.DeepEqual(cal, seq) {
		t.Error("full-scale autoscale diverges across worker counts")
	}
	heap := RunAutoScaleOn(Fleet{Queue: sim.QueueHeap}, DefaultSeed)
	if !reflect.DeepEqual(cal, heap) {
		t.Error("full-scale autoscale diverges between calendar and heap kernels")
	}
}

// TestAutoScaleFullScalePar is the nightly parallel gate: the full family on
// the sharded conservative-window kernel, byte-identical across window
// executor counts and queue kinds against the Par=1 reference.
func TestAutoScaleFullScalePar(t *testing.T) {
	if !autoScaleFullEnabled() {
		t.Skip("set FIRST_AUTOSCALE_FULL=1 for the full autoscale suite (nightly CI)")
	}
	ref := RunAutoScaleOn(Fleet{Par: 1}, DefaultSeed)
	assertAutoScaleElasticity(t, ref)
	for _, f := range []Fleet{
		{Par: 1, Queue: sim.QueueHeap},
		{Par: 4},
		{Par: 8, Queue: sim.QueueHeap},
	} {
		if got := RunAutoScaleOn(f, DefaultSeed); !reflect.DeepEqual(got, ref) {
			t.Errorf("full-scale autoscale diverges at par=%d queue=%v", f.Par, f.Queue)
		}
	}
}

// TestAutoScaleFullScalePredictiveVsReactive is the nightly
// predictive-vs-reactive sweep: every predictive cell is a twin of a
// reactive cell on the identical trace, and the forecast-driven scaler must
// pay for itself — tail latency strictly below the watermark baseline on the
// trend-forecastable shape (diurnal), no worse on the square wave (bursty
// has no trend for the Holt forecaster to lead, and its tail is set by
// at-cap overload in the burst quarters), with refused-at-cap no worse
// everywhere. (The name rides the ^TestAutoScaleFullScale nightly selector.)
func TestAutoScaleFullScalePredictiveVsReactive(t *testing.T) {
	if !autoScaleFullEnabled() {
		t.Skip("set FIRST_AUTOSCALE_FULL=1 for the full autoscale suite (nightly CI)")
	}
	rows := RunAutoScaleOn(Parallel, DefaultSeed)
	type twin struct {
		shape    string
		clusters int
	}
	reactive := map[twin]AutoScaleRow{}
	predictive := map[twin]AutoScaleRow{}
	for _, r := range rows {
		k := twin{r.Shape, r.Clusters}
		if r.Predictive {
			predictive[k] = r
		} else {
			reactive[k] = r
		}
	}
	if len(predictive) == 0 {
		t.Fatal("full family has no predictive cells")
	}
	for k, p := range predictive {
		r, ok := reactive[k]
		if !ok {
			t.Errorf("%s c%d: predictive cell has no reactive twin", k.shape, k.clusters)
			continue
		}
		if p.PreWarms == 0 {
			t.Errorf("%s c%d: predictive twin never pre-warmed", k.shape, k.clusters)
		}
		if k.shape == "diurnal" && p.M.P99LatS >= r.M.P99LatS {
			t.Errorf("%s c%d: predictive p99 %.2fs not below reactive %.2fs on the same trace",
				k.shape, k.clusters, p.M.P99LatS, r.M.P99LatS)
		}
		if p.M.P99LatS > r.M.P99LatS {
			t.Errorf("%s c%d: predictive p99 %.2fs worse than reactive %.2fs on the same trace",
				k.shape, k.clusters, p.M.P99LatS, r.M.P99LatS)
		}
		if p.ScaleRefused > r.ScaleRefused {
			t.Errorf("%s c%d: predictive refused-at-cap %d worse than reactive %d",
				k.shape, k.clusters, p.ScaleRefused, r.ScaleRefused)
		}
	}
}
