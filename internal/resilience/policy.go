// Package resilience provides the retry/backoff and circuit-breaking
// building blocks the live stack uses to survive endpoint death, network
// partitions, and mid-stream disconnects (ROADMAP: "retry/backoff-aware
// client layer", in the style of soci-snapshotter's util/http retry
// policy): a composable retry Policy (capped exponential backoff with full
// jitter, per-attempt timeouts, Retry-After honoring), a per-endpoint
// circuit Breaker (closed → open → half-open with sliding-window failure
// rate and probe admission), and a Set tracking passive health per
// endpoint, fed by every response.
//
// Everything is time-parameterized: breakers never read a wall clock, the
// caller supplies `now` on every call. The live gateway passes its
// (possibly scaled) clock; deterministic chaos harnesses pass a logical
// clock, so breaker decisions replay identically across runs.
//
// Zero values are inert by design: a zero Policy performs exactly one
// attempt with no timeout, and a zero BreakerConfig reports Enabled() ==
// false so consumers skip breaker bookkeeping entirely. Wiring resilience
// through a config struct therefore changes nothing until it is switched
// on.
package resilience

import (
	"math/rand"
	"time"
)

// Policy is a retry policy: capped exponential backoff with full jitter.
//
// The zero value performs no retries (one attempt, no per-attempt
// timeout), so embedding a Policy in a config struct is free until set.
type Policy struct {
	// MaxAttempts is the total attempt budget including the first try;
	// values below 1 mean one attempt (no retries).
	MaxAttempts int
	// BaseDelay seeds the backoff: before retry n (1-based) the caller
	// sleeps a uniform random duration in [0, min(MaxDelay, BaseDelay·2ⁿ⁻¹)]
	// — "full jitter", which spreads synchronized retry herds.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling and any server-provided
	// Retry-After (0 = 64×BaseDelay).
	MaxDelay time.Duration
	// AttemptTimeout bounds each individual attempt via context deadline
	// (0 = only the caller's context applies).
	AttemptTimeout time.Duration
	// Rand supplies jitter in [0,1); nil uses the global math/rand
	// source. Deterministic harnesses inject a seeded source.
	Rand func() float64
}

// Attempts returns the effective attempt budget (≥ 1).
func (p Policy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p Policy) maxDelay() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	if p.BaseDelay > 0 {
		return 64 * p.BaseDelay
	}
	return 0
}

// Delay computes the sleep before the retry following attempt (0-based:
// pass 0 after the first attempt failed). A server-provided retryAfter
// takes precedence over the computed backoff — the server knows its own
// recovery horizon — but is still capped at MaxDelay so a hostile or
// confused upstream cannot park the client forever.
func (p Policy) Delay(attempt int, retryAfter time.Duration) time.Duration {
	cap := p.maxDelay()
	if retryAfter > 0 {
		if cap > 0 && retryAfter > cap {
			return cap
		}
		return retryAfter
	}
	if p.BaseDelay <= 0 {
		return 0
	}
	ceil := p.BaseDelay
	for i := 0; i < attempt && ceil < cap; i++ {
		ceil *= 2
	}
	if ceil > cap {
		ceil = cap
	}
	r := p.Rand
	if r == nil {
		r = rand.Float64
	}
	return time.Duration(r() * float64(ceil))
}
