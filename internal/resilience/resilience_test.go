package resilience

import (
	"testing"
	"time"
)

func TestZeroPolicyIsSingleAttempt(t *testing.T) {
	var p Policy
	if got := p.Attempts(); got != 1 {
		t.Fatalf("zero policy Attempts() = %d, want 1", got)
	}
	if d := p.Delay(0, 0); d != 0 {
		t.Fatalf("zero policy Delay = %v, want 0", d)
	}
	// Even a server Retry-After yields no wait without a configured backoff
	// cap... actually Retry-After is honored as-is when MaxDelay is unset.
	if d := p.Delay(0, 3*time.Second); d != 3*time.Second {
		t.Fatalf("zero policy Delay(retryAfter) = %v, want 3s", d)
	}
}

func TestPolicyFullJitterBounds(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond}
	for attempt := 0; attempt < 6; attempt++ {
		ceil := p.BaseDelay * (1 << attempt)
		if ceil > p.MaxDelay {
			ceil = p.MaxDelay
		}
		for i := 0; i < 200; i++ {
			d := p.Delay(attempt, 0)
			if d < 0 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, ceil)
			}
		}
	}
}

func TestPolicyDeterministicRand(t *testing.T) {
	mk := func() Policy {
		seq := []float64{0.25, 0.5, 0.75}
		i := 0
		return Policy{
			MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second,
			Rand: func() float64 { v := seq[i%len(seq)]; i++; return v },
		}
	}
	a, b := mk(), mk()
	for attempt := 0; attempt < 3; attempt++ {
		if da, db := a.Delay(attempt, 0), b.Delay(attempt, 0); da != db {
			t.Fatalf("attempt %d: %v != %v with identical rand", attempt, da, db)
		}
	}
}

func TestPolicyRetryAfterCapped(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	if d := p.Delay(0, 20*time.Millisecond); d != 20*time.Millisecond {
		t.Fatalf("in-cap Retry-After = %v, want 20ms", d)
	}
	if d := p.Delay(0, time.Hour); d != 50*time.Millisecond {
		t.Fatalf("hostile Retry-After = %v, want capped 50ms", d)
	}
}

func testCfg() BreakerConfig {
	return BreakerConfig{
		Window: 10 * time.Second, Buckets: 10, MinSamples: 4,
		FailureRate: 0.5, OpenFor: 5 * time.Second, HalfOpenProbes: 1,
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(testCfg())
	now := time.Unix(1000, 0)
	if !b.Allow(now) || b.State() != Closed {
		t.Fatal("fresh breaker must be closed")
	}
	// Below MinSamples: pure failures don't trip.
	for i := 0; i < 3; i++ {
		b.Record(now, false)
	}
	if b.State() != Closed {
		t.Fatal("tripped below MinSamples")
	}
	// Fourth failure reaches MinSamples at 100% failure rate: trip.
	b.Record(now, false)
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow(now) || b.CanAttempt(now) {
		t.Fatal("open breaker admitted a request")
	}
	probe := b.NextProbeAt()
	if want := now.Add(5 * time.Second); !probe.Equal(want) {
		t.Fatalf("NextProbeAt = %v, want %v", probe, want)
	}
	// After OpenFor: exactly one probe admitted.
	later := now.Add(6 * time.Second)
	if !b.CanAttempt(later) {
		t.Fatal("expired open breaker refused a probe check")
	}
	if !b.Allow(later) {
		t.Fatal("expired open breaker refused a probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow(later) {
		t.Fatal("second concurrent probe admitted with HalfOpenProbes=1")
	}
	// Failed probe re-opens.
	b.Record(later, false)
	if b.State() != Open {
		t.Fatal("failed probe did not re-open")
	}
	// Successful probe after another wait re-closes.
	again := later.Add(6 * time.Second)
	if !b.Allow(again) {
		t.Fatal("second probe refused")
	}
	b.Record(again, true)
	if b.State() != Closed {
		t.Fatal("successful probe did not close")
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b := NewBreaker(testCfg())
	now := time.Unix(1000, 0)
	// Two failures, then the window fully rotates past them: a later pair
	// of failures alone is below MinSamples, so no trip.
	b.Record(now, false)
	b.Record(now, false)
	now = now.Add(11 * time.Second)
	b.Record(now, false)
	b.Record(now, false)
	if b.State() != Open {
		// 2 in-window failures < MinSamples 4 — still closed is correct.
		if b.State() != Closed {
			t.Fatalf("state = %v", b.State())
		}
	} else {
		t.Fatal("stale failures outside the window tripped the breaker")
	}
	// Mixed traffic below the failure rate never trips.
	for i := 0; i < 50; i++ {
		b.Record(now, i%3 == 0) // 2/3 failures ≥ 0.5 → would trip
	}
	if b.State() != Open {
		t.Fatal("66% failure rate above threshold did not trip")
	}
}

func TestBreakerClosedCheckZeroAllocs(t *testing.T) {
	b := NewBreaker(testCfg())
	now := time.Unix(1000, 0)
	if n := testing.AllocsPerRun(1000, func() { b.Allow(now) }); n != 0 {
		t.Fatalf("closed-path Allow allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { b.CanAttempt(now) }); n != 0 {
		t.Fatalf("closed-path CanAttempt allocates %v/op, want 0", n)
	}
	s := NewSet(testCfg())
	s.Record("ep-a", now, time.Millisecond, true)
	if n := testing.AllocsPerRun(1000, func() { s.CanAttempt("ep-a", now) }); n != 0 {
		t.Fatalf("Set.CanAttempt allocates %v/op, want 0", n)
	}
}

func TestSetHealthAndRetryAfter(t *testing.T) {
	s := NewSet(testCfg())
	now := time.Unix(1000, 0)
	if !s.CanAttempt("unknown", now) || !s.Acquire("unknown", now) {
		t.Fatal("unknown endpoint must be admitted")
	}
	s.Record("ep-a", now, 10*time.Millisecond, true)
	for i := 0; i < 4; i++ {
		s.Record("ep-b", now, 40*time.Millisecond, false)
	}
	if s.CanAttempt("ep-a", now) == false {
		t.Fatal("healthy endpoint blocked")
	}
	if s.CanAttempt("ep-b", now) {
		t.Fatal("tripped endpoint admitted")
	}
	if open, half := s.StateCounts(); open != 1 || half != 0 {
		t.Fatalf("StateCounts = %d open %d half, want 1/0", open, half)
	}
	d, ok := s.RetryAfter(now.Add(2 * time.Second))
	if !ok || d != 3*time.Second {
		t.Fatalf("RetryAfter = %v %v, want 3s true", d, ok)
	}
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].ID != "ep-a" || snap[1].ID != "ep-b" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[1].Health.ConsecutiveFailures != 4 || snap[1].Health.Failures != 4 {
		t.Fatalf("ep-b health = %+v", snap[1].Health)
	}
	if snap[0].Health.EWMALatency != 10*time.Millisecond {
		t.Fatalf("ep-a EWMA = %v", snap[0].Health.EWMALatency)
	}
	if s.Trips() != 1 {
		t.Fatalf("trips = %d", s.Trips())
	}
}

// TestSetEWMASeedsWithFirstLatency pins the EWMA seeding contract: the
// first recorded latency becomes the smoothed value exactly. The pre-fix
// accumulator started at zero and decayed upward by α = 1/8 per sample, so
// an endpoint with a steady 80 ms latency reported ~10 ms after its first
// attempt and under-reported for dozens more — health-based decisions saw
// a phantom fast endpoint.
func TestSetEWMASeedsWithFirstLatency(t *testing.T) {
	s := NewSet(testCfg())
	now := time.Unix(1000, 0)
	s.Record("ep", now, 80*time.Millisecond, true)
	snap := s.Snapshot()
	if got := snap[0].Health.EWMALatency; got != 80*time.Millisecond {
		t.Fatalf("EWMA after first sample = %v, want exactly 80ms (zero-seeded decay)", got)
	}
	// A constant stream must never report below the stream's value: any dip
	// means the zero seed is still mixed into the average.
	for i := 0; i < 50; i++ {
		s.Record("ep", now.Add(time.Duration(i)*time.Second), 80*time.Millisecond, true)
		if got := s.Snapshot()[0].Health.EWMALatency; got != 80*time.Millisecond {
			t.Fatalf("EWMA drifted to %v after %d constant 80ms samples", got, i+2)
		}
	}
	// Zero-latency records (callers without a timing) must not clobber the
	// seed back toward zero.
	s.Record("ep", now, 0, true)
	if got := s.Snapshot()[0].Health.EWMALatency; got != 80*time.Millisecond {
		t.Fatalf("EWMA = %v after a zero-latency record, want 80ms untouched", got)
	}
}
