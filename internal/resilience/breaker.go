package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// State is a circuit breaker state.
type State int32

// Breaker states: Closed admits everything, Open rejects everything until
// OpenFor elapses, HalfOpen admits a bounded number of probes whose
// outcomes decide between re-closing and re-opening.
const (
	Closed State = iota
	Open
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a circuit breaker. The zero value is disabled
// (Enabled() == false); setting FailureRate > 0 enables it and fills the
// remaining fields with defaults.
type BreakerConfig struct {
	// Window is the sliding failure-rate window (default 10s).
	Window time.Duration
	// Buckets subdivides the window (default 10).
	Buckets int
	// MinSamples is the minimum in-window response count before the
	// failure rate can trip the breaker (default 10).
	MinSamples int
	// FailureRate in (0, 1]: trip when in-window failures/total reaches
	// it. 0 disables the breaker entirely.
	FailureRate float64
	// OpenFor is how long a tripped breaker rejects before admitting a
	// half-open probe (default 5s).
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent probes while half-open (default 1).
	HalfOpenProbes int
}

// Enabled reports whether this configuration activates breaking.
func (c BreakerConfig) Enabled() bool { return c.FailureRate > 0 }

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

type bucket struct {
	succ, fail int64
}

// Breaker is one endpoint's circuit breaker. All methods are safe for
// concurrent use; the closed-state Allow/CanAttempt check is a single
// atomic load — no lock, no allocation — because that is the data-plane
// hot path every routed request crosses.
type Breaker struct {
	cfg BreakerConfig

	state     atomic.Int32 // State; fast-path readable without the lock
	openUntil atomic.Int64 // unix nanos; meaningful while state == Open

	mu       sync.Mutex
	buckets  []bucket
	cur      int
	curStart int64 // unix nanos at which buckets[cur] began
	probes   int   // outstanding half-open probes
	trips    int64
}

// NewBreaker builds a breaker; cfg must be Enabled().
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, buckets: make([]bucket, cfg.Buckets)}
}

// Allow reports whether a request may proceed at time now, reserving a
// probe slot when the breaker is half-open (the caller must Record the
// outcome to release it). Closed-state calls are lock-free and 0 allocs/op.
//
//first:hotpath pinned by the breaker AllocsPerRun suite (resilience_test.go)
func (b *Breaker) Allow(now time.Time) bool {
	if State(b.state.Load()) == Closed {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.allowLocked(now, true)
}

// CanAttempt is the non-mutating variant used while scanning candidates:
// it reports whether Allow would admit a request without reserving a
// half-open probe slot, so a routing pass over N candidates does not burn
// N probes. Closed-state calls are lock-free and 0 allocs/op.
//
//first:hotpath pinned by the breaker AllocsPerRun suite (resilience_test.go)
func (b *Breaker) CanAttempt(now time.Time) bool {
	if State(b.state.Load()) == Closed {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.allowLocked(now, false)
}

func (b *Breaker) allowLocked(now time.Time, reserve bool) bool {
	switch State(b.state.Load()) {
	case Closed:
		return true
	case Open:
		if now.UnixNano() < b.openUntil.Load() {
			return false
		}
		if !reserve {
			return true // a probe would be admitted
		}
		b.state.Store(int32(HalfOpen))
		b.probes = 0
	}
	if b.probes >= b.cfg.HalfOpenProbes {
		return false
	}
	if reserve {
		b.probes++
	}
	return true
}

// Record feeds one response outcome at time now. In half-open state the
// outcome settles the probe: success re-closes the breaker, failure
// re-opens it for another OpenFor.
func (b *Breaker) Record(now time.Time, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch State(b.state.Load()) {
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if ok {
			b.resetWindowLocked(now)
			b.state.Store(int32(Closed))
		} else {
			b.tripLocked(now)
		}
		return
	case Open:
		// A response from before the trip landed late: feed the window so
		// passive health stays truthful, but the state machine is already
		// decided.
		b.observeLocked(now, ok)
		return
	}
	b.observeLocked(now, ok)
	var succ, fail int64
	for _, bk := range b.buckets {
		succ += bk.succ
		fail += bk.fail
	}
	total := succ + fail
	if total >= int64(b.cfg.MinSamples) && float64(fail) >= b.cfg.FailureRate*float64(total) {
		b.tripLocked(now)
	}
}

func (b *Breaker) tripLocked(now time.Time) {
	b.state.Store(int32(Open))
	b.openUntil.Store(now.Add(b.cfg.OpenFor).UnixNano())
	b.probes = 0
	b.trips++
	b.resetWindowLocked(now)
}

func (b *Breaker) resetWindowLocked(now time.Time) {
	for i := range b.buckets {
		b.buckets[i] = bucket{}
	}
	b.cur = 0
	b.curStart = now.UnixNano()
}

func (b *Breaker) observeLocked(now time.Time, ok bool) {
	b.rotateLocked(now)
	if ok {
		b.buckets[b.cur].succ++
	} else {
		b.buckets[b.cur].fail++
	}
}

// rotateLocked advances the bucket ring to cover now, zeroing buckets that
// fell out of the window.
func (b *Breaker) rotateLocked(now time.Time) {
	width := int64(b.cfg.Window) / int64(len(b.buckets))
	if width <= 0 {
		width = 1
	}
	n := now.UnixNano()
	if b.curStart == 0 {
		b.curStart = n
		return
	}
	steps := (n - b.curStart) / width
	if steps <= 0 {
		return
	}
	if steps >= int64(len(b.buckets)) {
		b.resetWindowLocked(now)
		return
	}
	for i := int64(0); i < steps; i++ {
		b.cur = (b.cur + 1) % len(b.buckets)
		b.buckets[b.cur] = bucket{}
	}
	b.curStart += steps * width
}

// State returns the breaker's current raw state.
func (b *Breaker) State() State { return State(b.state.Load()) }

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// NextProbeAt returns when an open breaker will admit its next probe
// (zero time unless currently open).
func (b *Breaker) NextProbeAt() time.Time {
	if State(b.state.Load()) != Open {
		return time.Time{}
	}
	return time.Unix(0, b.openUntil.Load())
}
