package resilience

import (
	"sort"
	"sync"
	"time"
)

// Health is the passive per-endpoint health view, fed by every response
// that crosses the gateway (not just probes): totals, consecutive
// failures, and an EWMA of attempt latency.
type Health struct {
	Successes           int64
	Failures            int64
	ConsecutiveFailures int64
	LastFailureAt       time.Time
	// EWMALatency smooths attempt latency with α = 1/8.
	EWMALatency time.Duration
}

type member struct {
	b *Breaker

	mu sync.Mutex
	h  Health
}

// Set tracks one Breaker plus passive Health per endpoint ID. Lookups for
// unknown endpoints are admitted (a breaker exists only once an endpoint
// has produced a response), so the hot path stays allocation-free until
// there is something to track.
type Set struct {
	cfg BreakerConfig

	mu sync.RWMutex
	m  map[string]*member
}

// NewSet builds a breaker set with one shared configuration.
func NewSet(cfg BreakerConfig) *Set {
	return &Set{cfg: cfg.withDefaults(), m: make(map[string]*member)}
}

func (s *Set) lookup(id string) *member {
	s.mu.RLock()
	e := s.m[id]
	s.mu.RUnlock()
	return e
}

func (s *Set) getOrCreate(id string) *member {
	if e := s.lookup(id); e != nil {
		return e
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[id]; ok {
		return e
	}
	e := &member{b: NewBreaker(s.cfg)}
	s.m[id] = e
	return e
}

// CanAttempt reports whether routing may consider endpoint id at time now
// without reserving a probe. 0 allocs/op on the closed path.
//
//first:hotpath pinned by the breaker AllocsPerRun suite (resilience_test.go)
func (s *Set) CanAttempt(id string, now time.Time) bool {
	e := s.lookup(id)
	if e == nil {
		return true
	}
	return e.b.CanAttempt(now)
}

// Acquire admits an attempt against endpoint id, reserving the half-open
// probe slot when applicable. The caller must Record the outcome.
func (s *Set) Acquire(id string, now time.Time) bool {
	e := s.lookup(id)
	if e == nil {
		return true
	}
	return e.b.Allow(now)
}

// Record feeds one attempt outcome into the endpoint's breaker and
// passive health.
func (s *Set) Record(id string, now time.Time, latency time.Duration, ok bool) {
	e := s.getOrCreate(id)
	e.b.Record(now, ok)
	e.mu.Lock()
	if ok {
		e.h.Successes++
		e.h.ConsecutiveFailures = 0
	} else {
		e.h.Failures++
		e.h.ConsecutiveFailures++
		e.h.LastFailureAt = now
	}
	if latency > 0 {
		if e.h.EWMALatency == 0 {
			e.h.EWMALatency = latency
		} else {
			e.h.EWMALatency += (latency - e.h.EWMALatency) / 8
		}
	}
	e.mu.Unlock()
}

// RetryAfter returns how long until the soonest open breaker admits a
// probe (false when no breaker is open past now — e.g. all half-open).
func (s *Set) RetryAfter(now time.Time) (time.Duration, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best time.Duration
	found := false
	for _, e := range s.m {
		at := e.b.NextProbeAt()
		if at.IsZero() {
			continue
		}
		d := at.Sub(now)
		if d < 0 {
			d = 0
		}
		if !found || d < best {
			best, found = d, true
		}
	}
	return best, found
}

// StateCounts tallies breakers currently open and half-open (metrics).
func (s *Set) StateCounts() (open, halfOpen int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.m {
		switch e.b.State() {
		case Open:
			open++
		case HalfOpen:
			halfOpen++
		}
	}
	return open, halfOpen
}

// Trips sums breaker trips across all endpoints.
func (s *Set) Trips() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, e := range s.m {
		n += e.b.Trips()
	}
	return n
}

// EndpointHealth is one endpoint's snapshot row.
type EndpointHealth struct {
	ID          string
	State       State
	NextProbeAt time.Time
	Health      Health
}

// Snapshot returns per-endpoint state and health, sorted by ID.
func (s *Set) Snapshot() []EndpointHealth {
	s.mu.RLock()
	out := make([]EndpointHealth, 0, len(s.m))
	for id, e := range s.m {
		e.mu.Lock()
		h := e.h
		e.mu.Unlock()
		out = append(out, EndpointHealth{
			ID: id, State: e.b.State(), NextProbeAt: e.b.NextProbeAt(), Health: h,
		})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
