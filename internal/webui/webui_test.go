package webui

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/client"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/core"
	"github.com/argonne-first/first/internal/perfmodel"
)

func newBackend(t *testing.T) (*Backend, *core.System) {
	t.Helper()
	sys, err := core.DefaultTestbed(clock.NewScaled(20000))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	if err := sys.RegisterUser("webuser", "webuser@anl.gov"); err != nil {
		t.Fatal(err)
	}
	grant, err := sys.Login("webuser")
	if err != nil {
		t.Fatal(err)
	}
	gw := client.New("", grant.AccessToken, client.WithHandler(sys.Gateway))
	return New(gw, sys.Clock, sys.Store), sys
}

func TestModelsDropdownListsRunning(t *testing.T) {
	b, _ := newBackend(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// Wait for the testbed's MinInstances to come up.
	deadline := time.Now().Add(10 * time.Second)
	var models []string
	for {
		var err error
		models, err = b.Models(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(models) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dropdown never populated: %v", models)
		}
		time.Sleep(5 * time.Millisecond)
	}
	found := false
	for _, m := range models {
		if m == perfmodel.Llama8B {
			found = true
		}
	}
	if !found {
		t.Errorf("8B missing from dropdown: %v", models)
	}
}

func TestChatSessionFlow(t *testing.T) {
	b, sys := newBackend(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	sess, err := b.NewSession("webuser", perfmodel.Llama8B)
	if err != nil {
		t.Fatal(err)
	}
	b.SetParams(sess, 32, 0.7)

	replies, err := b.Send(ctx, sess, "How do I submit a PBS job?")
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 || replies[0].Err != nil {
		t.Fatalf("replies = %+v", replies)
	}
	if replies[0].Usage.CompletionTokens != 32 {
		t.Errorf("completion tokens = %d, want 32 (SetParams)", replies[0].Usage.CompletionTokens)
	}
	// Second turn: history must now hold 4 turns (2 user + 2 assistant).
	if _, err := b.Send(ctx, sess, "And how do I check its status?"); err != nil {
		t.Fatal(err)
	}
	hist := sess.History()
	if len(hist) != 4 {
		t.Fatalf("history turns = %d, want 4", len(hist))
	}
	if hist[0].Role != "user" || hist[1].Role != "assistant" {
		t.Errorf("turn roles = %s,%s", hist[0].Role, hist[1].Role)
	}
	// Session persisted (§4.7: PostgreSQL persists sessions).
	stored, ok := sys.Store.GetSession(sess.ID)
	if !ok || stored.Turns != 4 {
		t.Errorf("stored session = %+v", stored)
	}
}

func TestMultiModelCompare(t *testing.T) {
	b, _ := newBackend(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	// The paper's multi-column layout: same prompt to both models.
	sess, err := b.NewSession("webuser", perfmodel.Llama8B, perfmodel.Llama70B)
	if err != nil {
		t.Fatal(err)
	}
	b.SetParams(sess, 16, 0)
	replies, err := b.Send(ctx, sess, "Compare yourselves.")
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 2 {
		t.Fatalf("columns = %d, want 2", len(replies))
	}
	for _, r := range replies {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Model, r.Err)
		}
	}
	// History records both models' replies.
	var assistants int
	for _, turn := range sess.History() {
		if turn.Role == "assistant" {
			assistants++
		}
	}
	if assistants != 2 {
		t.Errorf("assistant turns = %d, want 2", assistants)
	}
}

func TestStreamingSession(t *testing.T) {
	b, _ := newBackend(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	sess, _ := b.NewSession("webuser", perfmodel.Llama8B)
	b.SetParams(sess, 48, 0)
	var deltas int
	full, err := b.Stream(ctx, sess, "Stream me an explanation of MPI collectives.", func(string) { deltas++ })
	if err != nil {
		t.Fatal(err)
	}
	if deltas < 2 {
		t.Errorf("deltas = %d, want streaming chunks", deltas)
	}
	if len(strings.Fields(full)) != 48 {
		t.Errorf("streamed words = %d, want 48", len(strings.Fields(full)))
	}
	if len(sess.History()) != 2 {
		t.Errorf("history = %d turns", len(sess.History()))
	}
}

func TestSessionValidation(t *testing.T) {
	b, _ := newBackend(t)
	if _, err := b.NewSession("u"); err == nil {
		t.Error("session without models accepted")
	}
	sess, _ := b.NewSession("u", perfmodel.Llama8B)
	if _, err := b.Send(context.Background(), sess, "   "); err == nil {
		t.Error("empty message accepted")
	}
	if _, ok := b.Session(sess.ID); !ok {
		t.Error("session lookup failed")
	}
	if _, ok := b.Session("nope"); ok {
		t.Error("phantom session")
	}
}
