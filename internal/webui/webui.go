// Package webui implements the interactive chat backend of §4.7: an Open
// WebUI-style service in front of the gateway that authenticates through
// the same Globus-style tokens, persists sessions and chat histories,
// offers a model dropdown backed by /v1/models, multi-column comparisons
// across models, adjustable OpenAI parameters, and streaming relays. The
// closed-loop session driver used by the Table 1 benchmark lives in
// internal/experiments; this package is the live backend it models.
package webui

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/argonne-first/first/internal/client"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/store"
)

// Turn is one exchange in a chat history.
type Turn struct {
	Role    string    `json:"role"`
	Content string    `json:"content"`
	Model   string    `json:"model,omitempty"`
	At      time.Time `json:"at"`
}

// ChatSession is a live session with full history (WebUI resends the whole
// conversation to the gateway on each turn, which is why long sessions get
// progressively heavier — the effect measured in Table 1).
type ChatSession struct {
	ID     string
	User   string
	Models []string // one column per model in compare mode

	mu      sync.Mutex
	history []Turn
	params  openaiapi.ChatCompletionRequest // parameter template (temperature, max_tokens, ...)
}

// History returns a copy of the transcript.
func (s *ChatSession) History() []Turn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Turn(nil), s.history...)
}

// Backend is the WebUI server core.
type Backend struct {
	gw  *client.Client
	clk clock.Clock
	st  *store.Store

	mu       sync.Mutex
	sessions map[string]*ChatSession
	nextID   int64
}

// New builds a backend talking to the gateway through the client SDK with
// the user's forwarded token (§4.7: "All user requests, along with the
// access tokens ... are forwarded to our Gateway API").
func New(gw *client.Client, clk clock.Clock, st *store.Store) *Backend {
	return &Backend{gw: gw, clk: clk, st: st, sessions: make(map[string]*ChatSession)}
}

// Models returns the dropdown list: models currently running on the
// backend, via /jobs.
func (b *Backend) Models(ctx context.Context) ([]string, error) {
	jobs, err := b.gw.Jobs(ctx)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var running []string
	for _, m := range jobs.Models {
		if m.State == "running" && !seen[m.Model] {
			seen[m.Model] = true
			running = append(running, m.Model)
		}
	}
	return running, nil
}

// NewSession opens a chat session over one or more models (multiple models
// = the multi-column comparison layout).
func (b *Backend) NewSession(user string, models ...string) (*ChatSession, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("webui: session needs at least one model")
	}
	b.mu.Lock()
	b.nextID++
	id := fmt.Sprintf("sess-%06d", b.nextID)
	sess := &ChatSession{ID: id, User: user, Models: models}
	b.sessions[id] = sess
	b.mu.Unlock()
	if b.st != nil {
		b.st.PutSession(store.Session{
			ID: id, User: user, Models: models,
			CreatedAt: b.clk.Now(), UpdatedAt: b.clk.Now(),
		})
	}
	return sess, nil
}

// Session fetches a live session.
func (b *Backend) Session(id string) (*ChatSession, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.sessions[id]
	return s, ok
}

// SetParams adjusts the session's OpenAI-compatible parameters.
func (b *Backend) SetParams(sess *ChatSession, maxTokens int, temperature float64) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.params.MaxTokens = maxTokens
	sess.params.Temperature = temperature
}

// Reply is one model's answer in a (possibly multi-column) turn.
type Reply struct {
	Model   string
	Content string
	Usage   openaiapi.Usage
	Err     error
}

// Send appends the user turn, fans the full history out to every model in
// the session concurrently, records the replies, and returns them in the
// session's model order.
func (b *Backend) Send(ctx context.Context, sess *ChatSession, text string) ([]Reply, error) {
	if strings.TrimSpace(text) == "" {
		return nil, fmt.Errorf("webui: empty message")
	}
	sess.mu.Lock()
	sess.history = append(sess.history, Turn{Role: "user", Content: text, At: b.clk.Now()})
	messages := make([]openaiapi.Message, 0, len(sess.history))
	for _, t := range sess.history {
		if t.Model == "" || len(sess.Models) == 1 {
			messages = append(messages, openaiapi.Message{Role: t.Role, Content: t.Content})
		} else if t.Model == sess.Models[0] {
			// Compare mode keeps the transcript linear using the first
			// column's replies as canonical context.
			messages = append(messages, openaiapi.Message{Role: t.Role, Content: t.Content})
		}
	}
	params := sess.params
	models := sess.Models
	sess.mu.Unlock()

	replies := make([]Reply, len(models))
	var wg sync.WaitGroup
	for i, model := range models {
		wg.Add(1)
		go func(i int, model string) {
			defer wg.Done()
			req := openaiapi.ChatCompletionRequest{
				Model:       model,
				Messages:    messages,
				MaxTokens:   params.MaxTokens,
				Temperature: params.Temperature,
			}
			resp, err := b.gw.ChatCompletion(ctx, req)
			if err != nil {
				replies[i] = Reply{Model: model, Err: err}
				return
			}
			content := ""
			if len(resp.Choices) > 0 && resp.Choices[0].Message != nil {
				content = resp.Choices[0].Message.Content
			}
			replies[i] = Reply{Model: model, Content: content, Usage: resp.Usage}
		}(i, model)
	}
	wg.Wait()

	sess.mu.Lock()
	for _, r := range replies {
		if r.Err == nil {
			sess.history = append(sess.history, Turn{Role: "assistant", Model: r.Model, Content: r.Content, At: b.clk.Now()})
		}
	}
	turns := len(sess.history)
	sess.mu.Unlock()
	if b.st != nil {
		b.st.PutSession(store.Session{
			ID: sess.ID, User: sess.User, Models: models,
			UpdatedAt: b.clk.Now(), Turns: turns,
		})
	}
	return replies, nil
}

// Stream sends a turn to the session's first model with SSE streaming,
// invoking onDelta per chunk, and appends the reply to the history.
func (b *Backend) Stream(ctx context.Context, sess *ChatSession, text string, onDelta func(string)) (string, error) {
	sess.mu.Lock()
	sess.history = append(sess.history, Turn{Role: "user", Content: text, At: b.clk.Now()})
	messages := make([]openaiapi.Message, 0, len(sess.history))
	for _, t := range sess.history {
		messages = append(messages, openaiapi.Message{Role: t.Role, Content: t.Content})
	}
	model := sess.Models[0]
	params := sess.params
	sess.mu.Unlock()

	full, err := b.gw.ChatCompletionStream(ctx, openaiapi.ChatCompletionRequest{
		Model:     model,
		Messages:  messages,
		MaxTokens: params.MaxTokens,
	}, onDelta)
	if err != nil {
		return "", err
	}
	sess.mu.Lock()
	sess.history = append(sess.history, Turn{Role: "assistant", Model: model, Content: full, At: b.clk.Now()})
	sess.mu.Unlock()
	return full, nil
}
