package metrics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(5)
	c.Add(-3) // ignored
	if c.Value() != 6 {
		t.Errorf("counter = %d, want 6", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Errorf("gauge = %d, want 6", g.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 50000 {
		t.Errorf("concurrent counter = %d, want 50000", c.Value())
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram()
	for _, s := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		h.ObserveSeconds(s)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-0.3) > 1e-9 {
		t.Errorf("mean = %v, want 0.3", m)
	}
	s := h.Snapshot()
	if s.Min > 0.1 || s.Max < 0.5 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 < 0.2 || s.P50 > 0.4 {
		t.Errorf("p50 = %v, want ≈0.3", s.P50)
	}
}

func TestHistogramIgnoresInvalid(t *testing.T) {
	h := NewHistogram()
	h.ObserveSeconds(-1)
	h.ObserveSeconds(math.NaN())
	if h.Count() != 0 {
		t.Errorf("invalid observations were recorded: %d", h.Count())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	// Uniform 0..10s: quantiles should be ≈ q*10 within bucket resolution.
	for i := 1; i <= 10000; i++ {
		h.ObserveSeconds(float64(i) / 1000.0)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := q * 10
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("q%.2f = %.3f, want ≈%.3f", q, got, want)
		}
	}
}

func TestHistogramQuantilesMonotonicProperty(t *testing.T) {
	err := quick.Check(func(raw []uint32) bool {
		h := NewHistogram()
		for _, v := range raw {
			h.ObserveSeconds(float64(v%100000) / 100.0)
		}
		qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
		vals := make([]float64, len(qs))
		for i, q := range qs {
			vals[i] = h.Quantile(q)
		}
		return sort.Float64sAreSorted(vals)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileWithinMinMaxProperty(t *testing.T) {
	err := quick.Check(func(raw []uint16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.ObserveSeconds(float64(v) / 50.0)
		}
		q := float64(qRaw) / 255.0
		got := h.Quantile(q)
		s := h.Snapshot()
		return got >= s.Min-1e-9 && got <= s.Max+1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.Observe(1500 * time.Millisecond)
	if math.Abs(h.Mean()-1.5) > 0.01 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestRegistryReusesInstruments(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Inc()
	if r.Counter("a").Value() != 2 {
		t.Error("counter not reused")
	}
	r.Gauge("g").Set(7)
	if r.Gauge("g").Value() != 7 {
		t.Error("gauge not reused")
	}
	r.Histogram("h").ObserveSeconds(1)
	if r.Histogram("h").Count() != 1 {
		t.Error("histogram not reused")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(10)
	r.Gauge("depth").Set(3)
	r.Histogram("lat").ObserveSeconds(0.5)
	snap := r.Snapshot()
	if snap.Counters["reqs"] != 10 {
		t.Errorf("snapshot counter = %d", snap.Counters["reqs"])
	}
	if snap.Gauges["depth"] != 3 {
		t.Errorf("snapshot gauge = %d", snap.Gauges["depth"])
	}
	if snap.Histograms["lat"].Count != 1 {
		t.Errorf("snapshot hist count = %d", snap.Histograms["lat"].Count)
	}
}

func TestRegistryExposeFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("tasks").Add(4)
	r.Histogram("latency").ObserveSeconds(2)
	out := r.Expose()
	if !strings.Contains(out, "first_tasks_total 4") {
		t.Errorf("missing counter line:\n%s", out)
	}
	if !strings.Contains(out, "first_latency_count 1") {
		t.Errorf("missing histogram count line:\n%s", out)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta")
	r.Counter("alpha")
	counters, _, _ := r.Names()
	if !sort.StringsAreSorted(counters) {
		t.Errorf("names not sorted: %v", counters)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	if h.Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestHistogramSharedBounds(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	if &a.bounds[0] != &b.bounds[0] {
		t.Error("histograms should share the package-level bounds table")
	}
}

func TestHistogramShardedMergeMatchesTotals(t *testing.T) {
	h := NewHistogram()
	var want float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := float64(i%500)/100 + 0.001
		want += v
		h.ObserveSeconds(v)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	if got := h.Mean(); math.Abs(got-want/n) > 1e-9 {
		t.Errorf("mean = %v, want %v", got, want/n)
	}
	s := h.Snapshot()
	if s.Min != 0.001 || math.Abs(s.Max-4.991) > 1e-9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	// Quantiles must be insensitive to which shard each observation landed
	// in: the median of a uniform 0..5 sweep is ≈2.5.
	if s.P50 < 2.0 || s.P50 > 3.0 {
		t.Errorf("p50 = %v, want ≈2.5", s.P50)
	}
}

func TestHistogramConcurrentObservers(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const goroutines, per = 32, 2000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(i%100+1) * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Errorf("count = %d, want %d", h.Count(), goroutines*per)
	}
	s := h.Snapshot()
	if s.Min > 0.0011 || s.Max < 0.099 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}
