package metrics

import (
	"runtime"
	"sync"
	"testing"
)

// TestCounterStripesSpread checks increments actually scatter: after many
// Incs at least two stripes must hold counts (one stripe would mean the
// padding is paying for nothing).
func TestCounterStripesSpread(t *testing.T) {
	var c Counter
	for i := 0; i < 10000; i++ {
		c.Inc()
	}
	used := 0
	for i := range c.stripes {
		if c.stripes[i].v.Load() > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("10000 Incs landed on %d stripe(s), want scatter across ≥ 2", used)
	}
	if c.Value() != 10000 {
		t.Errorf("Value() = %d, want 10000", c.Value())
	}
}

// TestCounterAllocFree pins the hot increment path at zero allocations —
// the same budget as the engine/kernel hot paths.
func TestCounterAllocFree(t *testing.T) {
	var c Counter
	if got := testing.AllocsPerRun(1000, c.Inc); got != 0 {
		t.Errorf("Counter.Inc allocates %.1f/op, want 0", got)
	}
	if got := testing.AllocsPerRun(1000, func() { c.Add(3) }); got != 0 {
		t.Errorf("Counter.Add allocates %.1f/op, want 0", got)
	}
}

// TestCounterParallelSum is the striped counter's correctness property: no
// increment may be lost whatever the interleaving.
func TestCounterParallelSum(t *testing.T) {
	var c Counter
	workers := runtime.GOMAXPROCS(0) * 2
	const perWorker = 20000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if want := int64(workers * perWorker); c.Value() != want {
		t.Errorf("parallel sum = %d, want %d", c.Value(), want)
	}
}

// BenchmarkCounterInc measures the striped hot path under parallel load
// (-cpu 1,4,8 shows the scatter avoiding a single contended cache line).
func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
