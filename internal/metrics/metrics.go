// Package metrics implements the gateway's monitoring layer (§3.1.1): thread
// safe counters, gauges, and latency histograms with quantile estimation,
// grouped in registries whose snapshots feed the dashboard and the /metrics
// endpoint.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative values are ignored to preserve monotonicity).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records duration observations in exponential buckets and
// estimates quantiles by linear interpolation within the matched bucket.
// The default layout spans 1 ms .. ~2.3 h with 10% resolution.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, seconds
	counts []int64   // len(bounds)+1, last is overflow
	sum    float64
	n      int64
	min    float64
	max    float64
}

// NewHistogram returns a histogram with the default exponential layout.
func NewHistogram() *Histogram {
	var bounds []float64
	for b := 0.001; b < 10000; b *= 1.1 {
		bounds = append(bounds, b)
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]int64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records a duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveSeconds(d.Seconds()) }

// ObserveSeconds records a value in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	if s < 0 || math.IsNaN(s) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := sort.SearchFloat64s(h.bounds, s)
	h.counts[idx]++
	h.sum += s
	h.n++
	if s < h.min {
		h.min = s
	}
	if s > h.max {
		h.max = s
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the mean of observations in seconds (0 if empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) in seconds.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.max
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if hi > h.max {
				hi = h.max
			}
			if lo < h.min {
				lo = h.min
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return h.max
}

// Summary is a point-in-time view of a histogram.
type Summary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean_s"`
	Min   float64 `json:"min_s"`
	Max   float64 `json:"max_s"`
	P50   float64 `json:"p50_s"`
	P90   float64 `json:"p90_s"`
	P99   float64 `json:"p99_s"`
}

// Snapshot returns a summary of the histogram.
func (h *Histogram) Snapshot() Summary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Summary{Count: h.n}
	if h.n == 0 {
		return s
	}
	s.Mean = h.sum / float64(h.n)
	s.Min = h.min
	s.Max = h.max
	s.P50 = h.quantileLocked(0.50)
	s.P90 = h.quantileLocked(0.90)
	s.P99 = h.quantileLocked(0.99)
	return s
}

// Registry is a named collection of metrics.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures all metrics for the dashboard / metrics endpoint.
type RegistrySnapshot struct {
	Counters   map[string]int64   `json:"counters"`
	Gauges     map[string]int64   `json:"gauges"`
	Histograms map[string]Summary `json:"histograms"`
}

// Snapshot returns a consistent copy of all metric values.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()

	snap := RegistrySnapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]Summary, len(hists)),
	}
	for k, v := range counters {
		snap.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		snap.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		snap.Histograms[k] = v.Snapshot()
	}
	return snap
}

// Names returns sorted metric names by kind (useful for text exposition).
func (r *Registry) Names() (counters, gauges, histograms []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.counters {
		counters = append(counters, k)
	}
	for k := range r.gauges {
		gauges = append(gauges, k)
	}
	for k := range r.histograms {
		histograms = append(histograms, k)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(histograms)
	return
}

// Expose renders a Prometheus-flavoured text exposition of the registry.
func (r *Registry) Expose() string {
	counters, gauges, hists := r.Names()
	out := ""
	for _, name := range counters {
		out += fmt.Sprintf("first_%s_total %d\n", name, r.Counter(name).Value())
	}
	for _, name := range gauges {
		out += fmt.Sprintf("first_%s %d\n", name, r.Gauge(name).Value())
	}
	for _, name := range hists {
		s := r.Histogram(name).Snapshot()
		out += fmt.Sprintf("first_%s_count %d\n", name, s.Count)
		out += fmt.Sprintf("first_%s_mean_seconds %g\n", name, s.Mean)
		out += fmt.Sprintf("first_%s_p50_seconds %g\n", name, s.P50)
		out += fmt.Sprintf("first_%s_p90_seconds %g\n", name, s.P90)
		out += fmt.Sprintf("first_%s_p99_seconds %g\n", name, s.P99)
	}
	return out
}
