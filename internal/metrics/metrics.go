// Package metrics implements the gateway's monitoring layer (§3.1.1): thread
// safe counters, gauges, and latency histograms with quantile estimation,
// grouped in registries whose snapshots feed the dashboard and the /metrics
// endpoint.
//
// Counters and histograms are sharded: counter increments scatter across
// cache-line-padded atomic stripes, and histogram observations scatter
// across independently locked slots, so the serving data plane never
// serializes (or false-shares) on a single hot metric. Every histogram
// shares one immutable package-level bucket bounds table instead of
// recomputing (and re-allocating) the exponential layout per instance.
// Reads merge the shards; they are monitoring-grade (each shard is
// internally consistent, the merge is not a global atomic snapshot).
package metrics

import (
	"fmt"
	"math"
	mrand "math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// counterStripes is the number of independently updated slots per counter.
// Power of two so slot selection is a mask.
const counterStripes = 8

// counterStripe pads each atomic onto its own cache line so concurrent
// Inc calls on different stripes never bounce the same line between cores.
type counterStripe struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing counter. Increments scatter across
// cache-line-padded stripes (the same scheme as Histogram's observation
// shards), so hot counters on parallel handler paths — http_requests,
// cache_hits — don't serialize every core on one contended line; reads sum
// the stripes.
type Counter struct {
	stripes [counterStripes]counterStripe
}

// Inc adds one.
//
//first:hotpath pinned by the stripe AllocsPerRun suite (stripe_test.go)
func (c *Counter) Inc() {
	c.stripes[mrand.Uint64()&(counterStripes-1)].v.Add(1)
}

// Add adds n (negative values are ignored to preserve monotonicity).
//
//first:hotpath pinned by the stripe AllocsPerRun suite (stripe_test.go)
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.stripes[mrand.Uint64()&(counterStripes-1)].v.Add(n)
	}
}

// Value returns the current count. Each stripe is read atomically; the sum
// is monitoring-grade (not a global atomic snapshot), like Histogram reads.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

// Gauge is an instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta (may be negative).
//
//first:hotpath shares the Add pin with Counter.Add (stripe_test.go)
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// defaultBounds is the shared exponential bucket layout: 1 ms .. ~2.3 h with
// 10% resolution. It is computed once and never mutated; every histogram
// references it.
var defaultBounds = func() []float64 {
	var bounds []float64
	for b := 0.001; b < 10000; b *= 1.1 {
		bounds = append(bounds, b)
	}
	return bounds
}()

// histShards is the number of independently locked observation slots per
// histogram. Power of two so shard selection is a mask.
const histShards = 16

// histShard is one observation slot. The padding keeps concurrently locked
// shards off each other's cache lines.
type histShard struct {
	mu     sync.Mutex
	counts []int64 // len(bounds)+1, last is overflow; allocated on first use
	sum    float64
	n      int64
	min    float64
	max    float64
	_      [64]byte
}

// Histogram records duration observations in exponential buckets and
// estimates quantiles by linear interpolation within the matched bucket.
type Histogram struct {
	bounds []float64 // shared, immutable
	shards [histShards]histShard
}

// NewHistogram returns a histogram with the default exponential layout.
func NewHistogram() *Histogram {
	return &Histogram{bounds: defaultBounds}
}

// Observe records a duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveSeconds(d.Seconds()) }

// ObserveSeconds records a value in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	if s < 0 || math.IsNaN(s) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, s)
	// Scatter across shards: rand/v2's generator is per-thread state, so
	// concurrent observers land on different shards without sharing any
	// cache line, and the merge on read is shard-order independent.
	sh := &h.shards[mrand.Uint64N(histShards)]
	sh.mu.Lock()
	if sh.counts == nil {
		sh.counts = make([]int64, len(h.bounds)+1)
		sh.min = math.Inf(1)
		sh.max = math.Inf(-1)
	}
	sh.counts[idx]++
	sh.sum += s
	sh.n++
	if s < sh.min {
		sh.min = s
	}
	if s > sh.max {
		sh.max = s
	}
	sh.mu.Unlock()
}

// histData is a merged view of all shards.
type histData struct {
	counts []int64
	sum    float64
	n      int64
	min    float64
	max    float64
}

// merge folds every shard into one view (allocates; read path only).
func (h *Histogram) merge() histData {
	d := histData{min: math.Inf(1), max: math.Inf(-1)}
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		if sh.n > 0 {
			if d.counts == nil {
				d.counts = make([]int64, len(h.bounds)+1)
			}
			for j, c := range sh.counts {
				d.counts[j] += c
			}
			d.sum += sh.sum
			d.n += sh.n
			if sh.min < d.min {
				d.min = sh.min
			}
			if sh.max > d.max {
				d.max = sh.max
			}
		}
		sh.mu.Unlock()
	}
	return d
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		n += sh.n
		sh.mu.Unlock()
	}
	return n
}

// Mean returns the mean of observations in seconds (0 if empty).
func (h *Histogram) Mean() float64 {
	var sum float64
	var n int64
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		sum += sh.sum
		n += sh.n
		sh.mu.Unlock()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) in seconds.
func (h *Histogram) Quantile(q float64) float64 {
	return h.quantileOf(h.merge(), q)
}

func (h *Histogram) quantileOf(d histData, q float64) float64 {
	if d.n == 0 {
		return 0
	}
	if q <= 0 {
		return d.min
	}
	if q >= 1 {
		return d.max
	}
	rank := q * float64(d.n)
	var cum float64
	for i, c := range d.counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := d.max
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if hi > d.max {
				hi = d.max
			}
			if lo < d.min {
				lo = d.min
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return d.max
}

// Summary is a point-in-time view of a histogram.
type Summary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean_s"`
	Min   float64 `json:"min_s"`
	Max   float64 `json:"max_s"`
	P50   float64 `json:"p50_s"`
	P90   float64 `json:"p90_s"`
	P99   float64 `json:"p99_s"`
}

// Snapshot returns a summary of the histogram.
func (h *Histogram) Snapshot() Summary {
	d := h.merge()
	s := Summary{Count: d.n}
	if d.n == 0 {
		return s
	}
	s.Mean = d.sum / float64(d.n)
	s.Min = d.min
	s.Max = d.max
	s.P50 = h.quantileOf(d, 0.50)
	s.P90 = h.quantileOf(d, 0.90)
	s.P99 = h.quantileOf(d, 0.99)
	return s
}

// Registry is a named collection of metrics.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures all metrics for the dashboard / metrics endpoint.
type RegistrySnapshot struct {
	Counters   map[string]int64   `json:"counters"`
	Gauges     map[string]int64   `json:"gauges"`
	Histograms map[string]Summary `json:"histograms"`
}

// Snapshot returns a consistent copy of all metric values.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()

	snap := RegistrySnapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]Summary, len(hists)),
	}
	for k, v := range counters {
		snap.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		snap.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		snap.Histograms[k] = v.Snapshot()
	}
	return snap
}

// Names returns sorted metric names by kind (useful for text exposition).
func (r *Registry) Names() (counters, gauges, histograms []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range r.counters {
		counters = append(counters, k)
	}
	for k := range r.gauges {
		gauges = append(gauges, k)
	}
	for k := range r.histograms {
		histograms = append(histograms, k)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(histograms)
	return
}

// Expose renders a Prometheus-flavoured text exposition of the registry. It
// takes one snapshot up front — the registry lock is held once, not
// re-acquired per metric name — and builds the output in a single buffer.
func (r *Registry) Expose() string {
	snap := r.Snapshot()
	counters := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		counters = append(counters, name)
	}
	gauges := make([]string, 0, len(snap.Gauges))
	for name := range snap.Gauges {
		gauges = append(gauges, name)
	}
	hists := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		hists = append(hists, name)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)

	var b strings.Builder
	for _, name := range counters {
		fmt.Fprintf(&b, "first_%s_total %d\n", name, snap.Counters[name])
	}
	for _, name := range gauges {
		fmt.Fprintf(&b, "first_%s %d\n", name, snap.Gauges[name])
	}
	for _, name := range hists {
		s := snap.Histograms[name]
		fmt.Fprintf(&b, "first_%s_count %d\n", name, s.Count)
		fmt.Fprintf(&b, "first_%s_mean_seconds %g\n", name, s.Mean)
		fmt.Fprintf(&b, "first_%s_p50_seconds %g\n", name, s.P50)
		fmt.Fprintf(&b, "first_%s_p90_seconds %g\n", name, s.P90)
		fmt.Fprintf(&b, "first_%s_p99_seconds %g\n", name, s.P99)
	}
	return b.String()
}
