// Package federation implements the §4.5 federation layer: a cluster-
// agnostic routing decision that picks which endpoint should serve a
// request. The core logic is the paper's priority-based algorithm:
//
//  1. prefer an endpoint where the requested model is already running or
//     queued (low latency on active instances);
//  2. otherwise an endpoint whose cluster has enough free resources;
//  3. otherwise the first endpoint configured for the model, priority
//     being configuration registry order.
//
// The decision is a pure function over endpoint snapshots so the live
// gateway and the DES harness share it exactly.
package federation

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/resilience"
)

// EndpointInfo is a snapshot of one candidate endpoint for a model.
type EndpointInfo struct {
	ID string
	// ModelState is the deployment state: "running", "starting",
	// "queued", or "cold".
	ModelState string
	// FreeGPUs is the cluster's publicly reported free GPU count.
	FreeGPUs int
	// NeededGPUs is the model's per-instance requirement on that cluster.
	NeededGPUs int
	// Depth is the current total queue depth for tie-breaking among
	// active endpoints.
	Depth int
	// Instances is how many live serving instances back the deployment
	// (auto-scaled pools). The active-rung tie-break compares depth per
	// instance, so a pool that scaled out advertises its extra capacity.
	// Zero is treated as one (single-instance endpoints predate the field).
	// Deployments that cordon ahead of drains advertise only their
	// uncordoned serving capacity here.
	Instances int
	// Cordoned reports that the deployment has serving capacity but all of
	// it is flagged for an imminent drain (serve-walltime expiry or
	// voluntary scale-down). Select demotes a cordoned endpoint below
	// every other viable candidate — new work routed there would only join
	// the migration the drain is about to trigger — but still prefers it
	// over a blind first-configured pick, so requests are never parked
	// while capacity exists. False (the zero value) keeps the ladder's
	// drain-blind behaviour exactly.
	Cordoned bool
	// DrainingAt is how far away the deployment's soonest flagged drain
	// is (zero when none is imminent) — observability alongside Cordoned;
	// Select keys on the boolean only.
	DrainingAt time.Duration
}

// Reason explains a routing decision (logged and exposed on the dashboard).
type Reason string

// Routing reasons.
const (
	ReasonActive    Reason = "model-active"
	ReasonCapacity  Reason = "cluster-has-capacity"
	ReasonFirstConf Reason = "first-configured"
)

// Select applies the priority algorithm over candidates in configuration
// order. It returns the chosen endpoint's index and the reason.
func Select(candidates []EndpointInfo) (int, Reason, error) {
	if len(candidates) == 0 {
		return -1, "", fmt.Errorf("federation: no endpoints configured")
	}
	// 1) Running or queued instance — among those, least depth per live
	// instance wins (an auto-scaled pool spreads its queue over more
	// engines). Compared cross-multiplied so the tie-break stays integral.
	// Cordoned endpoints (active capacity, all of it about to drain) are
	// tracked separately: they lose to any uncordoned active endpoint and
	// to any capacity-rung pick, and win only over first-configured —
	// riding a known-dying instance still beats a blind cold start.
	best, bestCordoned := -1, -1
	for i, c := range candidates {
		switch c.ModelState {
		case "running", "starting", "queued":
			if c.Cordoned {
				if bestCordoned == -1 || lessLoaded(c, candidates[bestCordoned]) {
					bestCordoned = i
				}
				continue
			}
			if best == -1 || lessLoaded(c, candidates[best]) {
				best = i
			}
		}
	}
	if best >= 0 {
		return best, ReasonActive, nil
	}
	// 2) Cluster with available nodes.
	for i, c := range candidates {
		if c.FreeGPUs >= c.NeededGPUs && c.NeededGPUs > 0 {
			return i, ReasonCapacity, nil
		}
	}
	// 2b) Every active endpoint is cordoned and nothing has capacity:
	// take the least-loaded cordoned one rather than a first-configured
	// guess with no instance at all.
	if bestCordoned >= 0 {
		return bestCordoned, ReasonActive, nil
	}
	// 3) First configured.
	return 0, ReasonFirstConf, nil
}

// lessLoaded reports whether a carries strictly less queue depth per live
// instance than b: a.Depth/a.Instances < b.Depth/b.Instances, evaluated as
// a cross-multiplication so equal per-instance loads tie exactly (and the
// earlier-configured endpoint keeps winning ties). Instance counts below
// one are normalized to one.
func lessLoaded(a, b EndpointInfo) bool {
	ai, bi := a.Instances, b.Instances
	if ai < 1 {
		ai = 1
	}
	if bi < 1 {
		bi = 1
	}
	return a.Depth*bi < b.Depth*ai
}

// Router binds the pure policy to live fabric endpoints. It is the
// "development API URL that does not target any specific cluster" (§4.5).
type Router struct {
	catalog *perfmodel.Catalog

	mu sync.RWMutex
	// order[model] lists endpoints in configuration-registry order.
	order map[string][]*fabric.Endpoint

	// breakers, when set via UseBreakers, removes endpoints whose circuit is
	// open from the candidate set; breakerNow supplies the time base.
	breakers   *resilience.Set
	breakerNow func() time.Time
}

// NewRouter returns an empty router.
func NewRouter(catalog *perfmodel.Catalog) *Router {
	if catalog == nil {
		catalog = perfmodel.Default
	}
	return &Router{catalog: catalog, order: make(map[string][]*fabric.Endpoint)}
}

// AddRoute appends an endpoint to a model's candidate list (registry order
// defines priority 3's "first configured").
func (r *Router) AddRoute(model string, ep *fabric.Endpoint) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.order[model] = append(r.order[model], ep)
}

// Models lists models with at least one route, sorted so callers (status
// pages, reports) see a stable order regardless of registration history.
func (r *Router) Models() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.order))
	for m := range r.order {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Endpoints returns the candidate endpoints for a model in priority order.
func (r *Router) Endpoints(model string) []*fabric.Endpoint {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*fabric.Endpoint(nil), r.order[model]...)
}

// Decision is the outcome of a routing query.
type Decision struct {
	Endpoint *fabric.Endpoint
	Reason   Reason
}

// UseBreakers wires a breaker set into routing: endpoints whose circuit is
// open at now() drop out of the candidate set, and when every candidate is
// open Route reports AllOpenError instead of picking a doomed endpoint.
// Passing a nil set detaches breakers (plain routing).
func (r *Router) UseBreakers(set *resilience.Set, now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.breakers = set
	r.breakerNow = now
}

func (r *Router) breakerView() (*resilience.Set, func() time.Time) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.breakers, r.breakerNow
}

// AllOpenError reports that every configured endpoint for a model currently
// has an open circuit. RetryAfter is the time until the soonest breaker
// admits a half-open probe — the gateway surfaces it as a Retry-After
// header on the 503.
type AllOpenError struct {
	Model      string
	RetryAfter time.Duration
}

func (e *AllOpenError) Error() string {
	return fmt.Sprintf("federation: all endpoints for model %q have open circuits (retry in %v)", e.Model, e.RetryAfter)
}

// ErrNoCandidates reports that the avoid list exhausted a model's endpoint
// set during failover (distinct from a model with no routes at all).
var ErrNoCandidates = errors.New("federation: no remaining candidate endpoints")

// Route picks the endpoint for a model request by snapshotting each
// candidate's deployment state and cluster status.
func (r *Router) Route(model string) (Decision, error) {
	return r.RouteAvoiding(model, nil)
}

// RouteAvoiding routes like Route but skips endpoint IDs in avoid — the
// failover path: after an attempt fails, the gateway re-routes with the
// failed endpoints excluded so the retry lands on the next-best cluster.
func (r *Router) RouteAvoiding(model string, avoid []string) (Decision, error) {
	eps := r.Endpoints(model)
	if len(eps) == 0 {
		return Decision{}, fmt.Errorf("federation: model %q has no configured endpoints", model)
	}
	spec, err := r.catalog.Lookup(model)
	if err != nil {
		return Decision{}, err
	}
	set, nowFn := r.breakerView()
	var now time.Time
	if set != nil && nowFn != nil {
		now = nowFn()
	}
	avoided := func(id string) bool {
		for _, a := range avoid {
			if a == id {
				return true
			}
		}
		return false
	}
	kept := make([]*fabric.Endpoint, 0, len(eps))
	blockedByBreaker := 0
	for _, ep := range eps {
		if avoided(ep.ID()) {
			continue
		}
		if set != nil && !set.CanAttempt(ep.ID(), now) {
			blockedByBreaker++
			continue
		}
		kept = append(kept, ep)
	}
	if len(kept) == 0 {
		if blockedByBreaker > 0 {
			retryAfter := time.Second
			if d, ok := set.RetryAfter(now); ok {
				retryAfter = d
			}
			return Decision{}, &AllOpenError{Model: model, RetryAfter: retryAfter}
		}
		return Decision{}, ErrNoCandidates
	}
	infos := make([]EndpointInfo, len(kept))
	for i, ep := range kept {
		info := EndpointInfo{ID: ep.ID(), ModelState: "cold", NeededGPUs: spec.TensorParallel}
		if d, ok := ep.Deployment(model); ok {
			st := d.Status()
			info.ModelState = st.State
			info.Depth = d.Depth()
			// Advertise only the capacity not flagged for a voluntary
			// stop; a deployment that is all-stopping is cordoned and the
			// ladder demotes it below every other viable candidate.
			ready, stopping := d.CordonInfo()
			info.Instances = ready
			info.Cordoned = ready == 0 && stopping > 0
		}
		info.FreeGPUs = ep.Scheduler().Cluster().Status().FreeGPUs
		infos[i] = info
	}
	idx, reason, err := Select(infos)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Endpoint: kept[idx], Reason: reason}, nil
}
