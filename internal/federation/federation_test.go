package federation

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/cluster"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/metrics"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/resilience"
	"github.com/argonne-first/first/internal/scheduler"
)

func TestSelectPriorityRules(t *testing.T) {
	cases := []struct {
		name       string
		candidates []EndpointInfo
		wantIdx    int
		wantReason Reason
	}{
		{
			name: "active instance beats capacity",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "cold", FreeGPUs: 100, NeededGPUs: 8},
				{ID: "b", ModelState: "running", FreeGPUs: 0, NeededGPUs: 8},
			},
			wantIdx: 1, wantReason: ReasonActive,
		},
		{
			name: "queued counts as active (paper: running or queued)",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "cold", FreeGPUs: 100, NeededGPUs: 8},
				{ID: "b", ModelState: "queued", FreeGPUs: 0, NeededGPUs: 8},
			},
			wantIdx: 1, wantReason: ReasonActive,
		},
		{
			name: "least depth among active endpoints",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "running", Depth: 50},
				{ID: "b", ModelState: "running", Depth: 5},
			},
			wantIdx: 1, wantReason: ReasonActive,
		},
		{
			name: "capacity fallback in configuration order",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "cold", FreeGPUs: 4, NeededGPUs: 8},
				{ID: "b", ModelState: "cold", FreeGPUs: 16, NeededGPUs: 8},
			},
			wantIdx: 1, wantReason: ReasonCapacity,
		},
		{
			name: "first configured when nothing fits",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "cold", FreeGPUs: 0, NeededGPUs: 8},
				{ID: "b", ModelState: "cold", FreeGPUs: 0, NeededGPUs: 8},
			},
			wantIdx: 0, wantReason: ReasonFirstConf,
		},
		{
			name: "starting treated as active",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "starting"},
				{ID: "b", ModelState: "cold", FreeGPUs: 64, NeededGPUs: 8},
			},
			wantIdx: 0, wantReason: ReasonActive,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			idx, reason, err := Select(c.candidates)
			if err != nil {
				t.Fatal(err)
			}
			if idx != c.wantIdx || reason != c.wantReason {
				t.Errorf("Select = (%d, %s), want (%d, %s)", idx, reason, c.wantIdx, c.wantReason)
			}
		})
	}
}

func TestSelectEmpty(t *testing.T) {
	if idx, _, err := Select(nil); err == nil || idx != -1 {
		t.Errorf("empty candidate list: idx=%d err=%v, want -1 and an error", idx, err)
	}
	if idx, _, err := Select([]EndpointInfo{}); err == nil || idx != -1 {
		t.Errorf("zero-length candidate slice: idx=%d err=%v, want -1 and an error", idx, err)
	}
}

// TestSelectAllColdRegistry covers a registry where every endpoint is cold:
// capacity decides when some cluster fits, and endpoints advertising
// NeededGPUs=0 (no catalog entry for the cluster's GPU shape) must never win
// the capacity rung on a vacuous 0≥0 comparison.
func TestSelectAllColdRegistry(t *testing.T) {
	cases := []struct {
		name       string
		candidates []EndpointInfo
		wantIdx    int
		wantReason Reason
	}{
		{
			name: "first fitting cluster wins capacity",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "cold", FreeGPUs: 7, NeededGPUs: 8},
				{ID: "b", ModelState: "cold", FreeGPUs: 8, NeededGPUs: 8},
				{ID: "c", ModelState: "cold", FreeGPUs: 64, NeededGPUs: 8},
			},
			wantIdx: 1, wantReason: ReasonCapacity,
		},
		{
			name: "zero-need endpoints cannot win capacity",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "cold", FreeGPUs: 0, NeededGPUs: 0},
				{ID: "b", ModelState: "cold", FreeGPUs: 0, NeededGPUs: 8},
			},
			wantIdx: 0, wantReason: ReasonFirstConf,
		},
		{
			name: "exhausted registry falls to first configured",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "cold", FreeGPUs: 3, NeededGPUs: 4},
				{ID: "b", ModelState: "cold", FreeGPUs: 2, NeededGPUs: 4},
				{ID: "c", ModelState: "cold", FreeGPUs: 0, NeededGPUs: 4},
			},
			wantIdx: 0, wantReason: ReasonFirstConf,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			idx, reason, err := Select(c.candidates)
			if err != nil {
				t.Fatal(err)
			}
			if idx != c.wantIdx || reason != c.wantReason {
				t.Errorf("Select = (%d, %s), want (%d, %s)", idx, reason, c.wantIdx, c.wantReason)
			}
		})
	}
}

// TestSelectDepthTieBreaks pins the tie semantics among active endpoints:
// strictly smaller depth wins, equal depth keeps the earliest-configured
// endpoint, and cold endpoints never join the depth comparison.
func TestSelectDepthTieBreaks(t *testing.T) {
	cases := []struct {
		name       string
		candidates []EndpointInfo
		wantIdx    int
	}{
		{
			name: "equal depths keep configuration order",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "running", Depth: 7},
				{ID: "b", ModelState: "running", Depth: 7},
				{ID: "c", ModelState: "running", Depth: 7},
			},
			wantIdx: 0,
		},
		{
			name: "later shallower endpoint wins strictly",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "running", Depth: 7},
				{ID: "b", ModelState: "queued", Depth: 6},
				{ID: "c", ModelState: "starting", Depth: 6},
			},
			wantIdx: 1,
		},
		{
			name: "cold endpoint depth is ignored",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "cold", Depth: 0, FreeGPUs: 64, NeededGPUs: 8},
				{ID: "b", ModelState: "running", Depth: 1000},
			},
			wantIdx: 1,
		},
		{
			name: "mixed active states tie on depth",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "queued", Depth: 3},
				{ID: "b", ModelState: "running", Depth: 3},
			},
			wantIdx: 0,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			idx, reason, err := Select(c.candidates)
			if err != nil {
				t.Fatal(err)
			}
			if idx != c.wantIdx || reason != ReasonActive {
				t.Errorf("Select = (%d, %s), want (%d, %s)", idx, reason, c.wantIdx, ReasonActive)
			}
		})
	}
}

// TestSelectInstanceAwareDepth pins the auto-scaled tie-break: among active
// endpoints the comparison is depth per live instance, so a pool that scaled
// out advertises its extra engines; zero instances means one (the field
// postdates single-instance endpoints), and exact per-instance ties keep the
// earliest-configured endpoint.
func TestSelectInstanceAwareDepth(t *testing.T) {
	cases := []struct {
		name       string
		candidates []EndpointInfo
		wantIdx    int
	}{
		{
			name: "scaled-out pool beats a shallower single instance",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "running", Depth: 8, Instances: 1},
				{ID: "b", ModelState: "running", Depth: 12, Instances: 3}, // 4 per instance
			},
			wantIdx: 1,
		},
		{
			name: "zero instances normalizes to one",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "running", Depth: 6},
				{ID: "b", ModelState: "running", Depth: 5, Instances: 0},
			},
			wantIdx: 1,
		},
		{
			name: "equal per-instance depth keeps configuration order",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "running", Depth: 4, Instances: 2},
				{ID: "b", ModelState: "running", Depth: 6, Instances: 3},
			},
			wantIdx: 0,
		},
		{
			name: "deep pool still loses to an idle single instance",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "running", Depth: 9, Instances: 4},
				{ID: "b", ModelState: "starting", Depth: 0, Instances: 1},
			},
			wantIdx: 1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			idx, reason, err := Select(c.candidates)
			if err != nil {
				t.Fatal(err)
			}
			if idx != c.wantIdx || reason != ReasonActive {
				t.Errorf("Select = (%d, %s), want (%d, %s)", idx, reason, c.wantIdx, ReasonActive)
			}
		})
	}
}

// TestSelectStableUnderCopies is the property test: Select is a pure
// function of the candidate values — a deep copy of the slice yields the
// same decision, and the input is never mutated. The DES federation model
// snapshots candidates into a reused scratch slice, so both properties are
// load-bearing.
func TestSelectStableUnderCopies(t *testing.T) {
	states := []string{"running", "starting", "queued", "cold"}
	rng := rand.New(rand.NewSource(20251015))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(8)
		candidates := make([]EndpointInfo, n)
		for i := range candidates {
			candidates[i] = EndpointInfo{
				ID:         fmt.Sprintf("ep-%d", i),
				ModelState: states[rng.Intn(len(states))],
				FreeGPUs:   rng.Intn(16),
				NeededGPUs: rng.Intn(9),
				Depth:      rng.Intn(4),
				Instances:  rng.Intn(5),
			}
		}
		orig := append([]EndpointInfo(nil), candidates...)
		idx1, reason1, err1 := Select(candidates)
		if !reflect.DeepEqual(candidates, orig) {
			t.Fatalf("trial %d: Select mutated its input:\nbefore %+v\nafter  %+v", trial, orig, candidates)
		}
		clone := append([]EndpointInfo(nil), candidates...)
		idx2, reason2, err2 := Select(clone)
		if idx1 != idx2 || reason1 != reason2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: decision unstable under slice copy: (%d,%s,%v) vs (%d,%s,%v) on %+v",
				trial, idx1, reason1, err1, idx2, reason2, err2, candidates)
		}
		if idx1 < 0 || idx1 >= n {
			t.Fatalf("trial %d: index %d out of range [0,%d)", trial, idx1, n)
		}
	}
}

func newEndpoint(t *testing.T, name string, nodes, gpusPerNode int, clk clock.Clock) *fabric.Endpoint {
	t.Helper()
	cl := cluster.New(name, nodes, gpusPerNode, perfmodel.A100_40)
	sched := scheduler.New(cl, clk, scheduler.Config{Prologue: 2 * time.Second})
	ep, err := fabric.NewEndpoint(fabric.EndpointConfig{ID: "ep-" + name, Scheduler: sched}, clk, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close(); sched.Close() })
	return ep
}

func TestRouterAgainstLiveEndpoints(t *testing.T) {
	clk := clock.NewScaled(20000)
	big := newEndpoint(t, "big", 4, 8, clk)
	small := newEndpoint(t, "small", 1, 4, clk)

	r := NewRouter(nil)
	// Registry order: small first (priority for first-configured).
	r.AddRoute(perfmodel.Llama70B, small)
	r.AddRoute(perfmodel.Llama70B, big)

	// 70B needs 8 GPUs: small (4-GPU nodes, 1 node) can never host it, so
	// capacity routing must pick big.
	d, err := r.Route(perfmodel.Llama70B)
	if err != nil {
		t.Fatal(err)
	}
	if d.Endpoint.ID() != "ep-big" || d.Reason != ReasonCapacity {
		t.Errorf("decision = %s/%s, want ep-big/capacity", d.Endpoint.ID(), d.Reason)
	}

	// Deploy on big and warm it: routing should switch to active.
	dep, err := big.Deploy(fabric.DeploymentConfig{Model: perfmodel.Llama70B, MinInstances: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for dep.ReadyCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("instance never ready")
		}
		time.Sleep(2 * time.Millisecond)
	}
	d, err = r.Route(perfmodel.Llama70B)
	if err != nil {
		t.Fatal(err)
	}
	if d.Endpoint.ID() != "ep-big" || d.Reason != ReasonActive {
		t.Errorf("decision = %s/%s, want ep-big/active", d.Endpoint.ID(), d.Reason)
	}
}

func TestRouterUnknownModel(t *testing.T) {
	r := NewRouter(nil)
	if _, err := r.Route("unrouted/model"); err == nil {
		t.Error("unrouted model accepted")
	}
	clk := clock.NewScaled(1000)
	ep := newEndpoint(t, "x", 1, 8, clk)
	r.AddRoute("not-in-catalog", ep)
	if _, err := r.Route("not-in-catalog"); err == nil {
		t.Error("model missing from catalog accepted")
	}
}

func TestRouterModelsList(t *testing.T) {
	clk := clock.NewScaled(1000)
	ep := newEndpoint(t, "y", 1, 8, clk)
	r := NewRouter(nil)
	r.AddRoute(perfmodel.Llama8B, ep)
	r.AddRoute(perfmodel.Llama70B, ep)
	if got := len(r.Models()); got != 2 {
		t.Errorf("models = %d", got)
	}
	if got := len(r.Endpoints(perfmodel.Llama8B)); got != 1 {
		t.Errorf("endpoints = %d", got)
	}
}

// TestRouterBreakerAwareRouting pins the resilience wiring: tripped
// endpoints fall out of the candidate set, failover's avoid list reaches
// the next-best cluster, and an all-open model reports AllOpenError with a
// Retry-After derived from the soonest half-open probe.
func TestRouterBreakerAwareRouting(t *testing.T) {
	clk := clock.NewScaled(20000)
	a := newEndpoint(t, "a", 2, 8, clk)
	b := newEndpoint(t, "b", 2, 8, clk)

	r := NewRouter(nil)
	r.AddRoute(perfmodel.Llama8B, a)
	r.AddRoute(perfmodel.Llama8B, b)

	set := resilience.NewSet(resilience.BreakerConfig{
		Window: 10 * time.Second, MinSamples: 2, FailureRate: 0.5, OpenFor: 5 * time.Second,
	})
	base := time.Unix(1000, 0)
	now := base
	r.UseBreakers(set, func() time.Time { return now })

	// Both healthy: registry order picks ep-a (capacity rung; nothing
	// deployed).
	d, err := r.Route(perfmodel.Llama8B)
	if err != nil {
		t.Fatal(err)
	}
	if d.Endpoint.ID() != "ep-a" {
		t.Fatalf("healthy route = %s, want ep-a", d.Endpoint.ID())
	}

	// Avoiding every endpoint (failover exhausted the set) is
	// ErrNoCandidates — distinct from breaker-driven unavailability.
	if _, err := r.RouteAvoiding(perfmodel.Llama8B, []string{"ep-a", "ep-b"}); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("avoiding all: err = %v, want ErrNoCandidates", err)
	}

	// Trip ep-a: routing must shift to ep-b without any avoid list.
	set.Record("ep-a", now, 0, false)
	set.Record("ep-a", now, 0, false)
	d, err = r.Route(perfmodel.Llama8B)
	if err != nil {
		t.Fatal(err)
	}
	if d.Endpoint.ID() != "ep-b" {
		t.Errorf("route with ep-a open = %s, want ep-b", d.Endpoint.ID())
	}

	// Avoiding the last healthy endpoint while the other is open still
	// reports the breaker horizon (the client gets a Retry-After, not a
	// blind failure).
	if _, err := r.RouteAvoiding(perfmodel.Llama8B, []string{"ep-b"}); err == nil {
		t.Error("avoiding last healthy endpoint succeeded")
	} else {
		var ao *AllOpenError
		if !errors.As(err, &ao) {
			t.Errorf("err = %v, want AllOpenError", err)
		}
	}

	// Trip ep-b too: all open → AllOpenError carrying the soonest probe.
	set.Record("ep-b", now.Add(time.Second), 0, false)
	set.Record("ep-b", now.Add(time.Second), 0, false)
	now = base.Add(2 * time.Second)
	_, err = r.Route(perfmodel.Llama8B)
	var allOpen *AllOpenError
	if !errors.As(err, &allOpen) {
		t.Fatalf("all-open route err = %v, want AllOpenError", err)
	}
	// ep-a reopens at base+5s → 3s from now (sooner than ep-b's base+6s).
	if allOpen.RetryAfter != 3*time.Second {
		t.Errorf("RetryAfter = %v, want 3s", allOpen.RetryAfter)
	}

	// Past OpenFor, the probe-admitting endpoint is routable again.
	now = base.Add(6 * time.Second)
	d, err = r.Route(perfmodel.Llama8B)
	if err != nil {
		t.Fatal(err)
	}
	if d.Endpoint.ID() != "ep-a" {
		t.Errorf("post-expiry route = %s, want ep-a probe", d.Endpoint.ID())
	}

	// Detaching the set restores plain routing even while breakers are open.
	r.UseBreakers(nil, nil)
	now = base
	if d, err = r.Route(perfmodel.Llama8B); err != nil || d.Endpoint.ID() != "ep-a" {
		t.Errorf("detached route = %v/%v, want ep-a", d, err)
	}
}

// TestSelectCordonedDemotion pins the drain-aware rung order: a cordoned
// active endpoint loses to any uncordoned active endpoint and to any
// capacity-rung pick, but still beats a blind first-configured guess —
// and the zero value (Cordoned false) leaves every pre-existing decision
// untouched.
func TestSelectCordonedDemotion(t *testing.T) {
	cases := []struct {
		name       string
		candidates []EndpointInfo
		wantIdx    int
		wantReason Reason
	}{
		{
			name: "uncordoned active beats cordoned active with less depth",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "running", Depth: 0, Cordoned: true},
				{ID: "b", ModelState: "running", Depth: 50},
			},
			wantIdx: 1, wantReason: ReasonActive,
		},
		{
			name: "capacity beats cordoned active",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "running", Depth: 0, Cordoned: true},
				{ID: "b", ModelState: "cold", FreeGPUs: 16, NeededGPUs: 8},
			},
			wantIdx: 1, wantReason: ReasonCapacity,
		},
		{
			name: "cordoned active beats first-configured",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "cold", FreeGPUs: 0, NeededGPUs: 8},
				{ID: "b", ModelState: "running", Depth: 9, Cordoned: true},
			},
			wantIdx: 1, wantReason: ReasonActive,
		},
		{
			name: "least loaded among all-cordoned candidates",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "running", Depth: 50, Cordoned: true},
				{ID: "b", ModelState: "running", Depth: 5, Cordoned: true},
			},
			wantIdx: 1, wantReason: ReasonActive,
		},
		{
			name: "zero value keeps the drain-blind decision",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "running", Depth: 50},
				{ID: "b", ModelState: "running", Depth: 5},
			},
			wantIdx: 1, wantReason: ReasonActive,
		},
		{
			name: "DrainingAt alone does not demote (Select keys on the bool)",
			candidates: []EndpointInfo{
				{ID: "a", ModelState: "running", Depth: 5, DrainingAt: time.Second},
				{ID: "b", ModelState: "running", Depth: 50},
			},
			wantIdx: 0, wantReason: ReasonActive,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			idx, reason, err := Select(tc.candidates)
			if err != nil {
				t.Fatal(err)
			}
			if idx != tc.wantIdx || reason != tc.wantReason {
				t.Fatalf("Select = (%d, %s), want (%d, %s)", idx, reason, tc.wantIdx, tc.wantReason)
			}
		})
	}
}
