package federation

import (
	"errors"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/chaosnet"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/resilience"
)

// TestRouterHalfOpenProbeBudget pins the probe budget the calibration twin
// leans on: once a breaker's OpenFor expires, Acquire admits exactly
// HalfOpenProbes attempts before rejecting further traffic until the
// probes' outcomes are recorded.
func TestRouterHalfOpenProbeBudget(t *testing.T) {
	cfg := resilience.BreakerConfig{
		Window: 10 * time.Second, Buckets: 10, MinSamples: 2,
		FailureRate: 0.5, OpenFor: 5 * time.Second, HalfOpenProbes: 2,
	}
	set := resilience.NewSet(cfg)
	base := time.Unix(1000, 0)

	// Trip the endpoint.
	set.Record("ep-x", base, 0, false)
	set.Record("ep-x", base, 0, false)
	if set.CanAttempt("ep-x", base.Add(time.Second)) {
		t.Fatal("breaker admitted traffic while open")
	}

	// Past OpenFor: exactly HalfOpenProbes acquisitions succeed.
	probeAt := base.Add(6 * time.Second)
	admitted := 0
	for i := 0; i < 5; i++ {
		if set.Acquire("ep-x", probeAt) {
			admitted++
		}
	}
	if admitted != cfg.HalfOpenProbes {
		t.Fatalf("half-open admitted %d attempts, want exactly %d", admitted, cfg.HalfOpenProbes)
	}

	// Successful probes close the circuit; traffic flows again.
	set.Record("ep-x", probeAt, 0, true)
	set.Record("ep-x", probeAt, 0, true)
	if !set.Acquire("ep-x", probeAt.Add(time.Second)) {
		t.Error("breaker still rejecting after successful probes")
	}
}

// TestReplayedWindowAvoidanceParity is the calibration contract at the
// routing layer: a recorded chaosnet fault window driven through the live
// Router + breaker Set on the logical clock produces the same
// decision-by-decision trace as the DES twin's construction — standalone
// resilience.Breakers filtering candidates ahead of the pure Select — when
// both draw the same Windows.Faulty schedule. If this drifts, the
// livefed calibration gate loses its meaning.
func TestReplayedWindowAvoidanceParity(t *testing.T) {
	const (
		nReqs       = 300
		maxAttempts = 3
		seed        = uint64(0xfeed)
	)
	windows := chaosnet.Windows{BurstEvery: 40, BurstLen: 15, PFault: 0.9}
	cfg := resilience.BreakerConfig{
		Window: 60 * time.Second, Buckets: 12, MinSamples: 4,
		FailureRate: 0.5, OpenFor: 10 * time.Second, HalfOpenProbes: 1,
	}
	epoch := time.Unix(1_700_000_000, 0)

	clk := clock.NewScaled(20000)
	eps := []*endpointStub{
		{ep: newEndpoint(t, "p0", 2, 8, clk)},
		{ep: newEndpoint(t, "p1", 2, 8, clk)},
	}
	r := NewRouter(nil)
	for _, e := range eps {
		r.AddRoute(perfmodel.Llama8B, e.ep)
	}
	set := resilience.NewSet(cfg)
	var now time.Time
	r.UseBreakers(set, func() time.Time { return now })
	epIndex := map[string]int{"ep-p0": 0, "ep-p1": 1}

	// Live trace: the gateway's failover loop against the real Router.
	liveTrace := make([]string, 0, nReqs)
	for idx := 0; idx < nReqs; idx++ {
		now = epoch.Add(time.Duration(idx+1) * time.Second)
		var avoid []string
		outcome := "exhausted"
		for attempt := 0; attempt < maxAttempts; attempt++ {
			d, err := r.RouteAvoiding(perfmodel.Llama8B, avoid)
			var allOpen *AllOpenError
			if errors.As(err, &allOpen) {
				outcome = "shed"
				break
			}
			if err != nil {
				outcome = "err:" + err.Error()
				break
			}
			id := d.Endpoint.ID()
			if !set.Acquire(id, now) {
				avoid = append(avoid, id)
				continue
			}
			faulty := windows.Faulty(seed, idx, epIndex[id], len(eps), attempt)
			set.Record(id, now, 0, !faulty)
			if !faulty {
				outcome = id
				break
			}
			avoid = append(avoid, id)
		}
		liveTrace = append(liveTrace, outcome)
	}

	// Twin trace: standalone breakers + the pure Select, the way
	// desmodel's replay routes. Candidate snapshots are cold with equal
	// free GPUs, matching the undeployed live endpoints above.
	breakers := []*resilience.Breaker{resilience.NewBreaker(cfg), resilience.NewBreaker(cfg)}
	spec := perfmodel.Default.MustLookup(perfmodel.Llama8B)
	twinTrace := make([]string, 0, nReqs)
	for idx := 0; idx < nReqs; idx++ {
		tnow := epoch.Add(time.Duration(idx+1) * time.Second)
		avoided := map[int]bool{}
		outcome := "exhausted"
		for attempt := 0; attempt < maxAttempts; attempt++ {
			var infos []EndpointInfo
			var order []int
			for i, e := range eps {
				if avoided[i] || !breakers[i].CanAttempt(tnow) {
					continue
				}
				infos = append(infos, EndpointInfo{
					ID: e.ep.ID(), ModelState: "cold",
					FreeGPUs:   e.ep.Scheduler().Cluster().Status().FreeGPUs,
					NeededGPUs: spec.TensorParallel,
				})
				order = append(order, i)
			}
			if len(infos) == 0 {
				outcome = "shed"
				break
			}
			sel, _, err := Select(infos)
			if err != nil {
				outcome = "err:" + err.Error()
				break
			}
			ci := order[sel]
			if !breakers[ci].Allow(tnow) {
				avoided[ci] = true
				continue
			}
			faulty := windows.Faulty(seed, idx, ci, len(eps), attempt)
			breakers[ci].Record(tnow, !faulty)
			if !faulty {
				outcome = eps[ci].ep.ID()
				break
			}
			avoided[ci] = true
		}
		twinTrace = append(twinTrace, outcome)
	}

	diverged := 0
	for i := range liveTrace {
		if liveTrace[i] != twinTrace[i] {
			diverged++
			if diverged <= 5 {
				t.Errorf("idx %d: live routed %q, twin routed %q", i, liveTrace[i], twinTrace[i])
			}
		}
	}
	if diverged > 0 {
		t.Fatalf("%d of %d decisions diverged between live router and replay twin", diverged, nReqs)
	}
	liveTrips := set.Trips()
	twinTrips := breakers[0].Trips() + breakers[1].Trips()
	if liveTrips == 0 {
		t.Error("fault window never tripped a breaker — storm too quiet to test parity")
	}
	if liveTrips != twinTrips {
		t.Errorf("breaker trips diverged: live %d vs twin %d", liveTrips, twinTrips)
	}
}

type endpointStub struct{ ep *fabric.Endpoint }
