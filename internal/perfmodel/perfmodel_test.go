package perfmodel

import (
	"testing"
	"testing/quick"
	"time"
)

func spec70B(t *testing.T) ModelSpec {
	t.Helper()
	return Default.MustLookup(Llama70B)
}

func TestCatalogLookup(t *testing.T) {
	m, err := Default.Lookup(Llama8B)
	if err != nil {
		t.Fatal(err)
	}
	if m.TensorParallel != 4 {
		t.Errorf("8B TP = %d, want 4", m.TensorParallel)
	}
	if _, err := Default.Lookup("no/such-model"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestCatalogRegisterValidates(t *testing.T) {
	c := NewCatalog()
	if err := c.Register(ModelSpec{Name: ""}); err == nil {
		t.Error("empty name should be rejected")
	}
	if err := c.Register(ModelSpec{Name: "x", TensorParallel: 0}); err == nil {
		t.Error("zero TP should be rejected")
	}
	custom := Default.MustLookup(Llama8B)
	custom.Name = "lab/custom-8B"
	if err := c.Register(custom); err != nil {
		t.Fatalf("valid register: %v", err)
	}
	if _, err := c.Lookup("lab/custom-8B"); err != nil {
		t.Error("registered model not found")
	}
}

func TestCatalogNamesSortedAndComplete(t *testing.T) {
	names := Default.Names()
	if len(names) < 15 {
		t.Errorf("catalog has %d models, want the §4.2 suite (15+)", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted at %d: %v", i, names[i-1:i+1])
		}
	}
}

func TestAllBuiltinsValidate(t *testing.T) {
	for _, name := range Default.Names() {
		m := Default.MustLookup(name)
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDecodeIterMonotonicInBatch(t *testing.T) {
	m := spec70B(t)
	err := quick.Check(func(a, b uint8) bool {
		x, y := int(a)+1, int(b)+1
		if x > y {
			x, y = y, x
		}
		return m.DecodeIter(x, A100_40) <= m.DecodeIter(y, A100_40)
	}, nil)
	if err != nil {
		t.Error(err)
	}
	if m.DecodeIter(0, A100_40) != m.DecodeIter(1, A100_40) {
		t.Error("batch < 1 should clamp to 1")
	}
}

func TestCalibration70B(t *testing.T) {
	m := spec70B(t)
	// Batch-1 decode ≈ 15 ms/token ⇒ 182 tokens ≈ 2.7-3.0 s.
	single := m.DecodeIter(1, A100_40)
	if single < 14*time.Millisecond || single > 16*time.Millisecond {
		t.Errorf("70B batch-1 iter = %v, want ≈15ms", single)
	}
	// Raw saturated throughput (before steady-state prefill drag) in the
	// calibrated band.
	peak := m.PeakDecodeTokPerSec(A100_40)
	if peak < 1700 || peak > 2050 {
		t.Errorf("70B peak = %.0f tok/s, want 1700-2050", peak)
	}
}

func TestCalibration8B(t *testing.T) {
	m := Default.MustLookup(Llama8B)
	peak := m.PeakDecodeTokPerSec(A100_40)
	if peak < 3200 || peak > 3900 {
		t.Errorf("8B peak = %.0f tok/s, want 3200-3900 (Fig. 5 band)", peak)
	}
}

func TestLoadTimeScalesWithSize(t *testing.T) {
	m8 := Default.MustLookup(Llama8B)
	m70 := spec70B(t)
	m405 := Default.MustLookup(Llama405B)
	t8, t70, t405 := m8.LoadTime(A100_40), m70.LoadTime(A100_40), m405.LoadTime(A100_40)
	if !(t8 < t70 && t70 < t405) {
		t.Errorf("load times not ordered: %v %v %v", t8, t70, t405)
	}
	// §4.3: an 8B model "loads relatively quickly" vs a 405B model.
	if t405 < 2*t8 {
		t.Errorf("405B should load much slower than 8B: %v vs %v", t405, t8)
	}
}

func TestPrefillTime(t *testing.T) {
	m := spec70B(t)
	if m.PrefillTime(0, A100_40) != 0 {
		t.Error("zero prompt should cost 0")
	}
	if m.PrefillTime(-5, A100_40) != 0 {
		t.Error("negative prompt should clamp to 0")
	}
	if m.PrefillTime(2000, A100_40) <= m.PrefillTime(100, A100_40) {
		t.Error("prefill not monotone in prompt length")
	}
}

func TestKVCapacityPositiveForEvalModels(t *testing.T) {
	for _, name := range []string{Llama70B, Llama8B, Gemma27B} {
		m := Default.MustLookup(name)
		kv := m.KVCapacityTokens(A100_40)
		if kv <= 0 {
			t.Errorf("%s: KV capacity %d", name, kv)
		}
		// Must hold at least its max batch of modest sequences.
		if kv < m.MaxBatch*300 {
			t.Errorf("%s: KV capacity %d too small for batch %d", name, kv, m.MaxBatch)
		}
	}
}

func TestKVCapacityZeroWhenModelDoesNotFit(t *testing.T) {
	m := spec70B(t)
	m.TensorParallel = 1 // 140 GB of weights on one 40 GB GPU
	if kv := m.KVCapacityTokens(A100_40); kv != 0 {
		t.Errorf("KV capacity = %d for an impossible fit", kv)
	}
}

func TestGPUSpeedupScaling(t *testing.T) {
	m := spec70B(t)
	base := m.DecodeIter(64, A100_40)
	faster := m.DecodeIter(64, A100_80)
	if faster >= base {
		t.Errorf("A100-80 (speedup 1.05) not faster: %v vs %v", faster, base)
	}
	slower := m.DecodeIter(64, MI250)
	if slower <= base {
		t.Errorf("MI250 (speedup 0.85) not slower: %v vs %v", slower, base)
	}
}

func TestEmbeddingModelSpec(t *testing.T) {
	m := Default.MustLookup(NVEmbed)
	if m.Kind != KindEmbedding {
		t.Fatalf("kind = %v", m.Kind)
	}
	if m.EmbedDim != 4096 {
		t.Errorf("dim = %d", m.EmbedDim)
	}
	if m.EmbedTime(1000, A100_40) <= m.EmbedTime(10, A100_40) {
		t.Error("embed time not monotone")
	}
}

func TestValidateEmbeddingRequirements(t *testing.T) {
	m := ModelSpec{Name: "e", Kind: KindEmbedding, TensorParallel: 1}
	if err := m.Validate(); err == nil {
		t.Error("embedding model without dim/cost should fail validation")
	}
}

func TestModelKindString(t *testing.T) {
	cases := map[ModelKind]string{KindChat: "chat", KindVision: "vision", KindEmbedding: "embedding", ModelKind(99): "unknown"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestVRAMNeeded(t *testing.T) {
	m := spec70B(t)
	if m.VRAMNeededGB() <= m.WeightsGB {
		t.Error("VRAM requirement should include headroom over weights")
	}
}
