// Package perfmodel holds the hardware and model performance models that
// substitute for the paper's physical testbed (Sophia: 24 NVIDIA DGX-A100
// nodes). Every timing the serving engines, schedulers, and experiments use
// — weight-load times, prefill and decode iteration costs, VRAM footprints —
// comes from this package, so the calibration lives in exactly one place.
//
// Calibration targets (see DESIGN.md §4): Llama-3.3-70B on 8×A100 produces
// ~15 ms/token at batch 1 (≈3.0 s end-to-end for a 182-token completion,
// matching Fig. 3's direct-vLLM point at 1 req/s) and saturates around
// 1700+ output tok/s at the engine's 256-sequence batch cap.
package perfmodel

import (
	"fmt"
	"time"
)

// GPUSpec describes one accelerator type.
type GPUSpec struct {
	Name     string
	MemoryGB float64
	// LoadGBps is the sustained weight-load bandwidth from node-local
	// storage into a single GPU's HBM (model loading parallelizes across
	// the GPUs of a tensor-parallel group).
	LoadGBps float64
	// Relative throughput multiplier vs an A100-40GB (1.0).
	Speedup float64
}

// Standard GPU catalog entries (Sophia is DGX-A100; Polaris has A100-40 too).
var (
	A100_40 = GPUSpec{Name: "A100-40GB", MemoryGB: 40, LoadGBps: 2.0, Speedup: 1.0}
	A100_80 = GPUSpec{Name: "A100-80GB", MemoryGB: 80, LoadGBps: 2.0, Speedup: 1.05}
	MI250   = GPUSpec{Name: "MI250", MemoryGB: 64, LoadGBps: 1.6, Speedup: 0.85}
)

// ModelKind separates generation models from embedding models.
type ModelKind int

const (
	KindChat ModelKind = iota
	KindVision
	KindEmbedding
)

func (k ModelKind) String() string {
	switch k {
	case KindChat:
		return "chat"
	case KindVision:
		return "vision"
	case KindEmbedding:
		return "embedding"
	default:
		return "unknown"
	}
}

// ModelSpec describes a hosted model and its serving cost model.
type ModelSpec struct {
	Name    string
	Kind    ModelKind
	ParamsB float64 // parameters, billions

	// Deployment shape.
	TensorParallel int     // GPUs per instance
	WeightsGB      float64 // on-disk/in-HBM weight size
	KVBytesPerTok  float64 // KV cache bytes per token per sequence

	// Continuous-batching cost model: one decode iteration over a batch of
	// b running sequences costs DecodeBase + DecodeSlope*b. Prefill costs
	// PrefillPerTok per prompt token (amortized into the iteration that
	// admits the sequence). All values are for the model's native TP size
	// on A100-40GB; GPUSpec.Speedup scales them.
	DecodeBase    time.Duration
	DecodeSlope   time.Duration
	PrefillPerTok time.Duration

	// MaxBatch is the engine's max_num_seqs (vLLM default 256).
	MaxBatch int

	// EmbedPerTok is the embedding cost per input token (embedding models).
	EmbedPerTok time.Duration
	// EmbedDim is the embedding dimensionality (embedding models).
	EmbedDim int
}

// Validate reports obvious misconfigurations.
func (m ModelSpec) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("perfmodel: model name empty")
	}
	if m.TensorParallel <= 0 {
		return fmt.Errorf("perfmodel: %s: tensor parallel must be positive", m.Name)
	}
	if m.Kind == KindEmbedding {
		if m.EmbedDim <= 0 || m.EmbedPerTok <= 0 {
			return fmt.Errorf("perfmodel: %s: embedding model needs EmbedDim and EmbedPerTok", m.Name)
		}
		return nil
	}
	if m.MaxBatch <= 0 {
		return fmt.Errorf("perfmodel: %s: MaxBatch must be positive", m.Name)
	}
	if m.DecodeBase <= 0 || m.DecodeSlope <= 0 {
		return fmt.Errorf("perfmodel: %s: decode cost model unset", m.Name)
	}
	return nil
}

// LoadTime returns the cold-start weight-load time onto a TP group of the
// given GPU type: weights stream in parallel across the group's GPUs, plus a
// fixed engine initialization overhead that grows with model size.
func (m ModelSpec) LoadTime(gpu GPUSpec) time.Duration {
	per := m.WeightsGB / float64(m.TensorParallel) / gpu.LoadGBps
	initOverhead := 10 + m.ParamsB/8 // seconds: CUDA graphs, allocator, tokenizer
	return time.Duration((per + initOverhead) * float64(time.Second))
}

// DecodeIter returns the duration of one decode iteration with batch size b.
func (m ModelSpec) DecodeIter(b int, gpu GPUSpec) time.Duration {
	if b < 1 {
		b = 1
	}
	d := m.DecodeBase + time.Duration(b)*m.DecodeSlope
	return scaleBySpeed(d, gpu)
}

// PrefillTime returns the prompt-processing cost for n prompt tokens.
func (m ModelSpec) PrefillTime(n int, gpu GPUSpec) time.Duration {
	if n < 0 {
		n = 0
	}
	return scaleBySpeed(time.Duration(n)*m.PrefillPerTok, gpu)
}

// EmbedTime returns the embedding cost for n input tokens.
func (m ModelSpec) EmbedTime(n int, gpu GPUSpec) time.Duration {
	if n < 1 {
		n = 1
	}
	base := 8 * time.Millisecond
	return scaleBySpeed(base+time.Duration(n)*m.EmbedPerTok, gpu)
}

// PeakDecodeTokPerSec returns the asymptotic output-token throughput of one
// instance at its batch cap — useful for capacity planning and assertions.
func (m ModelSpec) PeakDecodeTokPerSec(gpu GPUSpec) float64 {
	iter := m.DecodeIter(m.MaxBatch, gpu)
	if iter <= 0 {
		return 0
	}
	return float64(m.MaxBatch) / iter.Seconds()
}

// VRAMNeededGB returns the per-instance VRAM requirement: weights plus a
// working KV allocation (vLLM reserves gpu_memory_utilization×VRAM and fills
// the rest with KV pages; we require weights to fit with 10% headroom).
func (m ModelSpec) VRAMNeededGB() float64 {
	return m.WeightsGB * 1.1
}

// KVCapacityTokens returns how many total KV tokens fit in the instance's
// remaining VRAM after weights, at 90% utilization of the TP group.
func (m ModelSpec) KVCapacityTokens(gpu GPUSpec) int {
	total := gpu.MemoryGB * float64(m.TensorParallel) * 0.90
	free := total - m.WeightsGB
	if free <= 0 || m.KVBytesPerTok <= 0 {
		return 0
	}
	return int(free * 1e9 / m.KVBytesPerTok)
}

func scaleBySpeed(d time.Duration, gpu GPUSpec) time.Duration {
	if gpu.Speedup <= 0 || gpu.Speedup == 1.0 {
		return d
	}
	return time.Duration(float64(d) / gpu.Speedup)
}
