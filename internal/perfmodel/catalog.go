package perfmodel

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// The model catalog mirrors §4.2 of the paper: Qwen2.5 (7/14/32B),
// Meta-Llama 3/3.1/3.3 (8/70/405B), Mistral/Mixtral, the AuroraGPT suite,
// vision models, and NV-Embed-v2 for embeddings. Cost-model constants are
// calibrated per DESIGN.md §4; models not used in the evaluation carry
// size-scaled estimates.

func chatModel(name string, paramsB float64, tp int, base, slope, prefillUS float64, maxBatch int) ModelSpec {
	return ModelSpec{
		Name:           name,
		Kind:           KindChat,
		ParamsB:        paramsB,
		TensorParallel: tp,
		WeightsGB:      paramsB * 2.0, // fp16/bf16
		KVBytesPerTok:  kvBytes(paramsB),
		DecodeBase:     time.Duration(base * float64(time.Millisecond)),
		DecodeSlope:    time.Duration(slope * float64(time.Microsecond)),
		PrefillPerTok:  time.Duration(prefillUS * float64(time.Microsecond)),
		MaxBatch:       maxBatch,
	}
}

// kvBytes approximates fp16 GQA KV bytes per token per sequence by size
// class (80 layers × 8 kv-heads × 128 dim × 2 × 2B ≈ 0.33 MB for 70B).
func kvBytes(paramsB float64) float64 {
	switch {
	case paramsB >= 200:
		return 800e3
	case paramsB >= 60:
		return 330e3
	case paramsB >= 20:
		return 200e3
	default:
		return 70e3
	}
}

// Catalog models. The evaluation models are calibrated tightly. At steady
// state the engine admits completed sequences' replacements every
// iteration, so the effective iteration cost is
//
//	t_eff(B) = base + slope·B + (B/out_len)·prompt_len·prefill
//
// For Llama-3.3-70B (TP=8) with the ShareGPT marginals (prompt≈220,
// out≈182): t(1) ≈ 15 ms/tok ⇒ a 182-token completion ≈ 2.95 s (Fig. 3's
// direct point at 1 req/s), and t_eff(256) ≈ 152.7 ms ⇒ ≈1677 output tok/s
// saturated (Fig. 3's FIRST peak). Llama-3.1-8B (TP=4) saturates at
// ≈3283 tok/s (Fig. 5). Gemma-27B sits between them (Table 1).
var builtin = []ModelSpec{
	chatModel("meta-llama/Llama-3.3-70B-Instruct", 70, 8, 14.5, 479, 50, 256),
	chatModel("meta-llama/Meta-Llama-3.1-8B-Instruct", 8, 4, 6.0, 251, 20, 256),
	chatModel("meta-llama/Meta-Llama-3.1-70B-Instruct", 70, 8, 14.5, 479, 50, 256),
	chatModel("meta-llama/Meta-Llama-3.1-405B-Instruct", 405, 32, 38.0, 1900, 200, 128),
	chatModel("google/gemma-2-27b-it", 27, 4, 10.0, 350, 30, 256),
	chatModel("Qwen/Qwen2.5-7B-Instruct", 7, 1, 9.0, 280, 25, 256),
	chatModel("Qwen/Qwen2.5-14B-Instruct", 14, 2, 10.0, 320, 30, 256),
	chatModel("Qwen/Qwen2.5-32B-Instruct", 32, 4, 11.0, 400, 35, 256),
	chatModel("mistralai/Mistral-7B-Instruct-v0.3", 7, 1, 9.0, 280, 25, 256),
	chatModel("mistralai/Mixtral-8x22B-Instruct-v0.1", 141, 8, 17.0, 600, 80, 192),
	chatModel("argonne/AuroraGPT-7B", 7, 1, 9.0, 280, 25, 256),
	chatModel("argonne/AuroraGPT-IT-v4-0125", 7, 1, 9.0, 280, 25, 256),
	chatModel("argonne/AuroraGPT-Tulu3-SFT-0125", 8, 1, 9.2, 285, 26, 256),
	visionModel("Qwen/Qwen2-VL-72B-Instruct", 72, 8),
	visionModel("meta-llama/Llama-3.2-90B-Vision-Instruct", 90, 8),
	{
		Name:           "nvidia/NV-Embed-v2",
		Kind:           KindEmbedding,
		ParamsB:        7.85,
		TensorParallel: 1,
		WeightsGB:      16,
		EmbedPerTok:    45 * time.Microsecond,
		EmbedDim:       4096,
		MaxBatch:       64,
		DecodeBase:     time.Millisecond,
		DecodeSlope:    time.Microsecond,
	},
	// GPT-4o-mini stands in for Fig. 5's external comparator; its spec only
	// matters to the external-API latency model, estimated ~8B class.
	chatModel("openai/gpt-4o-mini", 8, 1, 6.0, 251, 20, 256),
}

func visionModel(name string, paramsB float64, tp int) ModelSpec {
	m := chatModel(name, paramsB, tp, 16.0, 560, 100, 128)
	m.Kind = KindVision
	return m
}

// Catalog is a registry of model specs; new models can be registered at
// runtime (§4.2: "Adding a new model is straightforward").
type Catalog struct {
	mu     sync.RWMutex
	models map[string]ModelSpec
}

// NewCatalog returns a catalog preloaded with the built-in models.
func NewCatalog() *Catalog {
	c := &Catalog{models: make(map[string]ModelSpec, len(builtin))}
	for _, m := range builtin {
		c.models[m.Name] = m
	}
	return c
}

// Register adds or replaces a model spec after validation.
func (c *Catalog) Register(m ModelSpec) error {
	if err := m.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.models[m.Name] = m
	return nil
}

// Lookup returns the spec for a model name.
func (c *Catalog) Lookup(name string) (ModelSpec, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.models[name]
	if !ok {
		return ModelSpec{}, fmt.Errorf("perfmodel: unknown model %q", name)
	}
	return m, nil
}

// MustLookup is Lookup for static names in experiments; it panics on error.
func (c *Catalog) MustLookup(name string) ModelSpec {
	m, err := c.Lookup(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Names returns all model names sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.models))
	for n := range c.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Default is the shared built-in catalog.
var Default = NewCatalog()

// Short aliases used throughout tests and experiments.
const (
	Llama70B  = "meta-llama/Llama-3.3-70B-Instruct"
	Llama8B   = "meta-llama/Meta-Llama-3.1-8B-Instruct"
	Llama405B = "meta-llama/Meta-Llama-3.1-405B-Instruct"
	Gemma27B  = "google/gemma-2-27b-it"
	Qwen32B   = "Qwen/Qwen2.5-32B-Instruct"
	NVEmbed   = "nvidia/NV-Embed-v2"
	GPT4oMini = "openai/gpt-4o-mini"
	AuroraGPT = "argonne/AuroraGPT-7B"
)
