package batch

import (
	"strings"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/cluster"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/metrics"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/scheduler"
	"github.com/argonne-first/first/internal/store"
)

func validLine(id string) openaiapi.BatchRequestLine {
	return openaiapi.BatchRequestLine{
		CustomID: id,
		Method:   "POST",
		URL:      "/v1/chat/completions",
		Body: openaiapi.ChatCompletionRequest{
			Model:     perfmodel.Llama8B,
			Messages:  []openaiapi.Message{{Role: "user", Content: "generate a sample"}},
			MaxTokens: 16,
		},
	}
}

func TestValidateLines(t *testing.T) {
	if err := ValidateLines(nil); err == nil {
		t.Error("empty batch accepted")
	}
	good := []openaiapi.BatchRequestLine{validLine("a"), validLine("b")}
	if err := ValidateLines(good); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
	dup := []openaiapi.BatchRequestLine{validLine("a"), validLine("a")}
	if err := ValidateLines(dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate custom_id: %v", err)
	}
	noID := []openaiapi.BatchRequestLine{{Body: validLine("x").Body}}
	if err := ValidateLines(noID); err == nil {
		t.Error("missing custom_id accepted")
	}
	badMethod := []openaiapi.BatchRequestLine{validLine("a")}
	badMethod[0].Method = "DELETE"
	if err := ValidateLines(badMethod); err == nil {
		t.Error("bad method accepted")
	}
	badURL := []openaiapi.BatchRequestLine{validLine("a")}
	badURL[0].URL = "/v1/images"
	if err := ValidateLines(badURL); err == nil {
		t.Error("bad url accepted")
	}
	badBody := []openaiapi.BatchRequestLine{validLine("a")}
	badBody[0].Body.Messages = nil
	if err := ValidateLines(badBody); err == nil {
		t.Error("invalid body accepted")
	}
}

func TestLineToRequestTokenRules(t *testing.T) {
	line := validLine("x")
	line.Body.MaxTokens = 99
	r := LineToRequest(3, &line)
	if r.ID != 3 || r.OutputTok != 99 {
		t.Errorf("request = %+v", r)
	}
	if r.PromptTok != 3 { // "generate a sample"
		t.Errorf("prompt tokens = %d, want 3", r.PromptTok)
	}
	line.Body.MaxTokens = 0
	r = LineToRequest(0, &line)
	if r.OutputTok < 64 || r.OutputTok >= 256 {
		t.Errorf("default output = %d, want [64,256)", r.OutputTok)
	}
}

func TestDefaultOutputTokensDeterministic(t *testing.T) {
	if DefaultOutputTokens("abc") != DefaultOutputTokens("abc") {
		t.Error("not deterministic")
	}
	spread := map[int]bool{}
	for _, s := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		spread[DefaultOutputTokens(s)] = true
	}
	if len(spread) < 4 {
		t.Errorf("insufficient spread: %v", spread)
	}
}

type batchEnv struct {
	runner *Runner
	st     *store.Store
	ep     *fabric.Endpoint
}

func newBatchEnv(t *testing.T) *batchEnv {
	t.Helper()
	clk := clock.NewScaled(50000)
	cl := cluster.New("bt", 2, 8, perfmodel.A100_40)
	sched := scheduler.New(cl, clk, scheduler.Config{Prologue: 5 * time.Second})
	ep, err := fabric.NewEndpoint(fabric.EndpointConfig{ID: "ep-bt", Scheduler: sched}, clk, metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(0)
	t.Cleanup(func() { ep.Close(); sched.Close() })
	return &batchEnv{runner: NewRunner(clk, st, nil), st: st, ep: ep}
}

func waitBatch(t *testing.T, st *store.Store, id string, want store.BatchState) store.Batch {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		b, ok := st.GetBatch(id)
		if ok && b.State == want {
			return b
		}
		if ok && b.State == store.BatchFailed && want != store.BatchFailed {
			t.Fatalf("batch failed: %s", b.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch stuck in %s, want %s", b.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestBatchRunsToCompletion(t *testing.T) {
	env := newBatchEnv(t)
	lines := make([]openaiapi.BatchRequestLine, 30)
	for i := range lines {
		lines[i] = validLine(strings.Repeat("x", i+1))
	}
	id, err := env.runner.Submit("alice", perfmodel.Llama8B, lines, env.ep)
	if err != nil {
		t.Fatal(err)
	}
	b := waitBatch(t, env.st, id, store.BatchCompleted)
	if b.Completed != 30 || b.OutputTokens != 30*16 {
		t.Errorf("batch = %+v", b)
	}
	results, ok := env.runner.Results(id)
	if !ok || len(results) != 30 {
		t.Fatalf("results = %d, ok=%v", len(results), ok)
	}
	for _, line := range results {
		if line.Status != 200 || line.Body == nil || line.Body.Usage.CompletionTokens != 16 {
			t.Errorf("result line %s = %+v", line.CustomID, line)
		}
	}
	// The dedicated job must have released its nodes.
	if free := env.ep.Scheduler().Cluster().Status().FreeGPUs; free != 16 {
		t.Errorf("GPUs leaked: %d free", free)
	}
	// Request logged as batch kind.
	if tot := env.st.Totals(); tot.ByKind["batch"] != 1 {
		t.Errorf("batch request not logged: %+v", tot.ByKind)
	}
}

func TestBatchRejectsInvalid(t *testing.T) {
	env := newBatchEnv(t)
	if _, err := env.runner.Submit("a", "no/such-model", []openaiapi.BatchRequestLine{validLine("x")}, env.ep); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := env.runner.Submit("a", perfmodel.NVEmbed, []openaiapi.BatchRequestLine{validLine("x")}, env.ep); err == nil {
		t.Error("embedding model accepted for batch")
	}
	if _, err := env.runner.Submit("a", perfmodel.Llama8B, nil, env.ep); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestBatchCancel(t *testing.T) {
	env := newBatchEnv(t)
	// Occupy the whole cluster so the batch job stays queued.
	blocker, err := env.ep.Scheduler().Submit(scheduler.JobSpec{Name: "blocker", GPUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	lines := []openaiapi.BatchRequestLine{validLine("a")}
	id, err := env.runner.Submit("alice", perfmodel.Llama8B, lines, env.ep)
	if err != nil {
		t.Fatal(err)
	}
	if !env.runner.Cancel(id) {
		t.Fatal("cancel failed")
	}
	waitBatch(t, env.st, id, store.BatchCancelled)
	if env.runner.Cancel(id) {
		t.Error("double cancel succeeded")
	}
	if env.runner.Cancel("batch_999999") {
		t.Error("cancelling unknown batch succeeded")
	}
	_ = blocker
}
