// Package batch implements FIRST's high-throughput batch processing mode
// (§4.4): users submit a JSON-lines file of inference requests; each batch
// executes as a dedicated HPC job that loads the model solely for that task
// and processes every request with offline continuous batching, bypassing
// the shared online serving path entirely.
package batch

import (
	"fmt"
	"strings"
	"sync"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/scheduler"
	"github.com/argonne-first/first/internal/serving"
	"github.com/argonne-first/first/internal/store"
	"github.com/argonne-first/first/internal/workload"
)

// Runner executes batch jobs against endpoints' schedulers.
type Runner struct {
	clk     clock.Clock
	st      *store.Store
	catalog *perfmodel.Catalog

	mu      sync.Mutex
	nextID  int64
	results map[string][]openaiapi.BatchResponseLine
	jobs    map[string]batchJob
}

type batchJob struct {
	job   *scheduler.Job
	sched *scheduler.Scheduler
}

// NewRunner returns a batch runner logging into st.
func NewRunner(clk clock.Clock, st *store.Store, catalog *perfmodel.Catalog) *Runner {
	if catalog == nil {
		catalog = perfmodel.Default
	}
	return &Runner{
		clk:     clk,
		st:      st,
		catalog: catalog,
		results: make(map[string][]openaiapi.BatchResponseLine),
		jobs:    make(map[string]batchJob),
	}
}

// ValidateLines checks a batch input file's lines (§3.1.1: the gateway
// validates incoming data before spending any compute).
func ValidateLines(lines []openaiapi.BatchRequestLine) error {
	if len(lines) == 0 {
		return fmt.Errorf("batch: input file is empty")
	}
	seen := make(map[string]bool, len(lines))
	for i := range lines {
		l := &lines[i]
		if l.CustomID == "" {
			return fmt.Errorf("batch: line %d: custom_id is required", i)
		}
		if seen[l.CustomID] {
			return fmt.Errorf("batch: line %d: duplicate custom_id %q", i, l.CustomID)
		}
		seen[l.CustomID] = true
		if l.Method != "" && l.Method != "POST" {
			return fmt.Errorf("batch: line %d: unsupported method %q", i, l.Method)
		}
		if l.URL != "" && l.URL != "/v1/chat/completions" && l.URL != "/v1/completions" {
			return fmt.Errorf("batch: line %d: unsupported url %q", i, l.URL)
		}
		if err := l.Body.Validate(); err != nil {
			return fmt.Errorf("batch: line %d: %v", i, err)
		}
	}
	return nil
}

// Submit validates and launches a batch as a dedicated job on the
// endpoint's scheduler, returning the batch ID immediately (the job runs
// asynchronously; poll via the store).
func (r *Runner) Submit(user, model string, lines []openaiapi.BatchRequestLine, ep *fabric.Endpoint) (string, error) {
	spec, err := r.catalog.Lookup(model)
	if err != nil {
		return "", err
	}
	if spec.Kind == perfmodel.KindEmbedding {
		return "", fmt.Errorf("batch: %s is an embedding model", model)
	}
	if err := ValidateLines(lines); err != nil {
		return "", err
	}

	r.mu.Lock()
	r.nextID++
	id := fmt.Sprintf("batch_%06d", r.nextID)
	r.mu.Unlock()

	now := r.clk.Now()
	r.st.PutBatch(store.Batch{
		ID:        id,
		User:      user,
		Model:     model,
		Endpoint:  ep.ID(),
		State:     store.BatchQueued,
		Total:     len(lines),
		CreatedAt: now,
	})

	job, err := ep.Scheduler().Submit(scheduler.JobSpec{
		Name: "batch:" + id,
		User: user,
		GPUs: spec.TensorParallel,
		OnRunning: func(j *scheduler.Job) {
			r.execute(id, spec, ep, lines, j)
		},
		OnEnd: func(j *scheduler.Job, st scheduler.State) {
			if st != scheduler.Completed {
				r.st.UpdateBatch(id, func(b *store.Batch) {
					if b.State != store.BatchCompleted && b.State != store.BatchFailed {
						b.State = store.BatchCancelled
						b.Error = "job ended: " + st.String()
						b.FinishedAt = r.clk.Now()
					}
				})
			}
		},
	})
	if err != nil {
		r.st.UpdateBatch(id, func(b *store.Batch) {
			b.State = store.BatchFailed
			b.Error = err.Error()
		})
		return "", err
	}
	r.mu.Lock()
	r.jobs[id] = batchJob{job: job, sched: ep.Scheduler()}
	r.mu.Unlock()
	return id, nil
}

// execute runs on the scheduler's OnRunning goroutine once nodes are
// acquired: it computes the offline run on virtual time, sleeps it out on
// the runner's clock, then records results.
func (r *Runner) execute(id string, spec perfmodel.ModelSpec, ep *fabric.Endpoint, lines []openaiapi.BatchRequestLine, job *scheduler.Job) {
	r.st.UpdateBatch(id, func(b *store.Batch) {
		b.State = store.BatchInProgress
		b.StartedAt = r.clk.Now()
	})

	reqs := make([]workload.Request, len(lines))
	for i := range lines {
		reqs[i] = LineToRequest(i, &lines[i])
	}
	gpu := ep.Scheduler().Cluster().GPU()
	res, err := serving.RunOffline(serving.OfflineConfig{Model: spec, GPU: gpu, MaxBatch: 2 * spec.MaxBatch}, reqs)
	if err != nil {
		r.st.UpdateBatch(id, func(b *store.Batch) {
			b.State = store.BatchFailed
			b.Error = err.Error()
			b.FinishedAt = r.clk.Now()
		})
		ep.Scheduler().Fail(job.ID)
		return
	}
	// The dedicated job occupies its allocation for the full cold-start +
	// generation span.
	r.clk.Sleep(res.TotalTime)

	out := make([]openaiapi.BatchResponseLine, len(lines))
	var outputTokens int64
	for i := range lines {
		body := &openaiapi.ChatCompletionResponse{
			ID:      fmt.Sprintf("%s-line-%d", id, i),
			Object:  "chat.completion",
			Created: r.clk.Now().Unix(),
			Model:   spec.Name,
			Choices: []openaiapi.Choice{{
				Index:        0,
				Message:      &openaiapi.Message{Role: "assistant", Content: synthBatchText(&lines[i], reqs[i].OutputTok)},
				FinishReason: "stop",
			}},
			Usage: openaiapi.Usage{
				PromptTokens:     reqs[i].PromptTok,
				CompletionTokens: reqs[i].OutputTok,
				TotalTokens:      reqs[i].PromptTok + reqs[i].OutputTok,
			},
		}
		out[i] = openaiapi.BatchResponseLine{CustomID: lines[i].CustomID, Status: 200, Body: body}
		outputTokens += int64(reqs[i].OutputTok)
	}
	r.mu.Lock()
	r.results[id] = out
	r.mu.Unlock()

	r.st.UpdateBatch(id, func(b *store.Batch) {
		b.State = store.BatchCompleted
		b.Completed = len(lines)
		b.OutputTokens = outputTokens
		b.FinishedAt = r.clk.Now()
	})
	r.st.LogRequest(store.RequestLog{
		User:      "", // attributed per-batch in the batches table
		Model:     spec.Name,
		Endpoint:  ep.ID(),
		Cluster:   ep.ClusterName(),
		Kind:      store.KindBatch,
		PromptTok: 0,
		OutputTok: int(outputTokens),
		Latency:   res.TotalTime,
		Status:    "ok",
		CreatedAt: r.clk.Now(),
	})
	ep.Scheduler().Complete(job.ID)
}

// Cancel cancels a batch's job if it has not finished; the scheduler's
// OnEnd callback marks the batch record cancelled.
func (r *Runner) Cancel(id string) bool {
	r.mu.Lock()
	bj, ok := r.jobs[id]
	if ok {
		delete(r.jobs, id)
	}
	r.mu.Unlock()
	if !ok || bj.job.State().Terminal() {
		return false
	}
	return bj.sched.Cancel(bj.job.ID)
}

// Results returns the output lines of a completed batch.
func (r *Runner) Results(id string) ([]openaiapi.BatchResponseLine, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lines, ok := r.results[id]
	return lines, ok
}

// LineToRequest converts a batch input line to a workload request using the
// gateway's token-estimation rules.
func LineToRequest(i int, l *openaiapi.BatchRequestLine) workload.Request {
	var promptTok int
	for _, m := range l.Body.Messages {
		promptTok += workload.EstimateTokens(m.Content)
	}
	if promptTok < 1 {
		promptTok = 1
	}
	outputTok := l.Body.MaxTokens
	if outputTok <= 0 {
		outputTok = DefaultOutputTokens(l.CustomID)
	}
	return workload.Request{ID: i, PromptTok: promptTok, OutputTok: outputTok}
}

// DefaultOutputTokens deterministically picks a target output length for
// requests without max_tokens (real serving stops at EOS; the simulation
// needs a concrete target).
func DefaultOutputTokens(seed string) int {
	var h uint32 = 2166136261
	for i := 0; i < len(seed); i++ {
		h ^= uint32(seed[i])
		h *= 16777619
	}
	return 64 + int(h%192)
}

func synthBatchText(l *openaiapi.BatchRequestLine, n int) string {
	var prompt string
	if len(l.Body.Messages) > 0 {
		prompt = l.Body.Messages[len(l.Body.Messages)-1].Content
	}
	words := strings.Fields(prompt)
	if len(words) == 0 {
		words = []string{"result"}
	}
	var b strings.Builder
	b.Grow(n * 8)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(words[i%len(words)])
	}
	return b.String()
}
