package clock

import (
	"testing"
	"time"
)

func TestRealClockBasics(t *testing.T) {
	c := NewReal()
	before := time.Now()
	now := c.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Real.Now too far in the past: %v", now)
	}
	start := c.Now()
	c.Sleep(5 * time.Millisecond)
	if c.Since(start) < 4*time.Millisecond {
		t.Errorf("Sleep(5ms) returned after %v", c.Since(start))
	}
}

func TestScaledFactorClamped(t *testing.T) {
	if f := NewScaled(0).Factor(); f != 1 {
		t.Errorf("factor 0 should clamp to 1, got %d", f)
	}
	if f := NewScaled(-5).Factor(); f != 1 {
		t.Errorf("negative factor should clamp to 1, got %d", f)
	}
	if f := NewScaled(100).Factor(); f != 100 {
		t.Errorf("factor = %d, want 100", f)
	}
}

func TestScaledVirtualTimeAdvancesFaster(t *testing.T) {
	c := NewScaled(1000)
	start := c.Now()
	time.Sleep(10 * time.Millisecond)
	virtual := c.Since(start)
	if virtual < 5*time.Second {
		t.Errorf("1000x clock advanced only %v over ~10ms wall", virtual)
	}
}

func TestScaledSleepCompresses(t *testing.T) {
	c := NewScaled(1000)
	wallStart := time.Now()
	c.Sleep(2 * time.Second) // should cost ~2ms wall
	wall := time.Since(wallStart)
	if wall > 500*time.Millisecond {
		t.Errorf("scaled sleep of 2s virtual took %v wall", wall)
	}
}

func TestScaledSleepZeroAndNegative(t *testing.T) {
	c := NewScaled(10)
	done := make(chan struct{})
	go func() {
		c.Sleep(0)
		c.Sleep(-time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep(<=0) blocked")
	}
}

func TestScaledAfterDelivers(t *testing.T) {
	c := NewScaled(1000)
	select {
	case <-c.After(3 * time.Second):
	case <-time.After(2 * time.Second):
		t.Fatal("After(3s virtual) did not fire within 2s wall at 1000x")
	}
}

func TestScaledNowMonotonic(t *testing.T) {
	c := NewScaled(5000)
	prev := c.Now()
	for i := 0; i < 1000; i++ {
		now := c.Now()
		if now.Before(prev) {
			t.Fatalf("Now went backwards: %v then %v", prev, now)
		}
		prev = now
	}
}

func TestManualClockAdvance(t *testing.T) {
	start := time.Date(2025, 10, 15, 0, 0, 0, 0, time.UTC)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", m.Now(), start)
	}
	m.Advance(90 * time.Second)
	if got := m.Since(start); got != 90*time.Second {
		t.Errorf("Since = %v, want 90s", got)
	}
}

func TestManualSleepBlocksUntilAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	woke := make(chan struct{})
	go func() {
		m.Sleep(10 * time.Second)
		close(woke)
	}()
	// Wait until the sleeper registers.
	deadline := time.Now().Add(2 * time.Second)
	for m.PendingWaiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sleeper never registered")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-woke:
		t.Fatal("sleeper woke before Advance")
	default:
	}
	m.Advance(5 * time.Second)
	select {
	case <-woke:
		t.Fatal("sleeper woke too early (5s of 10s)")
	case <-time.After(10 * time.Millisecond):
	}
	m.Advance(5 * time.Second)
	select {
	case <-woke:
	case <-time.After(2 * time.Second):
		t.Fatal("sleeper did not wake after full Advance")
	}
}

func TestManualAfterImmediateForNonPositive(t *testing.T) {
	m := NewManual(time.Unix(100, 0))
	select {
	case <-m.After(0):
	case <-time.After(time.Second):
		t.Fatal("After(0) should deliver immediately")
	}
	select {
	case <-m.After(-time.Minute):
	case <-time.After(time.Second):
		t.Fatal("After(negative) should deliver immediately")
	}
}

func TestManualMultipleWaitersReleaseInOrderOfDeadline(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	got := make(chan int, 2)
	go func() { m.Sleep(1 * time.Second); got <- 1 }()
	go func() { m.Sleep(3 * time.Second); got <- 3 }()
	deadline := time.Now().Add(2 * time.Second)
	for m.PendingWaiters() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never registered")
		}
		time.Sleep(time.Millisecond)
	}
	m.Advance(2 * time.Second)
	if v := <-got; v != 1 {
		t.Fatalf("first waiter released = %d, want 1", v)
	}
	if m.PendingWaiters() != 1 {
		t.Fatalf("pending = %d, want 1", m.PendingWaiters())
	}
	m.Advance(2 * time.Second)
	if v := <-got; v != 3 {
		t.Fatalf("second waiter released = %d, want 3", v)
	}
}
