// Package clock abstracts time so the FIRST stack can run against the real
// wall clock, a scaled (time-dilated) clock for fast examples and tests, or a
// manually stepped clock for deterministic unit tests.
//
// All long-running components in the live stack (serving engines, schedulers,
// endpoint managers, hot-node reapers) take a Clock rather than calling the
// time package directly. The discrete-event simulation in internal/sim keeps
// its own virtual timeline and does not use this package.
package clock

import (
	"context"
	"sync"
	"time"
)

// Clock is the minimal time source used by live components.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for at least d (subject to the clock's scaling).
	Sleep(d time.Duration)
	// After returns a channel that delivers the then-current time after d.
	After(d time.Duration) <-chan time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
}

// Real is the wall clock.
type Real struct{}

// NewReal returns the wall clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Scaled is a clock that runs faster than real time by an integer factor.
// A Scaled clock with Factor 100 makes a component that "sleeps 2 s" sleep
// 20 ms of wall time while reporting virtual timestamps that advanced by the
// full 2 s. It lets the live stack (HTTP gateway included) exercise
// HPC-scale timings in milliseconds.
type Scaled struct {
	factor int64
	epoch  time.Time // wall time at construction
	origin time.Time // virtual time at construction
}

// NewScaled returns a clock running factor× faster than wall time.
// factor must be >= 1.
func NewScaled(factor int64) *Scaled {
	if factor < 1 {
		factor = 1
	}
	now := time.Now()
	return &Scaled{factor: factor, epoch: now, origin: now}
}

// Factor reports the speed-up factor.
func (s *Scaled) Factor() int64 { return s.factor }

// Now implements Clock; virtual time advances factor× wall time.
func (s *Scaled) Now() time.Time {
	wall := time.Since(s.epoch)
	return s.origin.Add(wall * time.Duration(s.factor))
}

// Sleep implements Clock: a virtual duration d costs d/factor wall time.
func (s *Scaled) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(s.compress(d))
}

// After implements Clock.
func (s *Scaled) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	go func() {
		time.Sleep(s.compress(d))
		ch <- s.Now()
	}()
	return ch
}

// Since implements Clock.
func (s *Scaled) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

func (s *Scaled) compress(d time.Duration) time.Duration {
	c := d / time.Duration(s.factor)
	if c <= 0 && d > 0 {
		c = time.Nanosecond
	}
	return c
}

// SleepCtx sleeps for d on the wall clock or until ctx is done, whichever
// comes first, returning ctx.Err when the context won. It is the one
// context-aware wall wait in the module: firstlint's clockonly analyzer
// forbids raw time.Sleep/After/NewTimer outside this package, so callers
// that need an interruptible sleep (retry backoff, poll loops) route here
// — and harnesses that must not wall-wait at all (a 1 s Retry-After is 77
// simulated hours at 20000×) inject their own sleeper instead.
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Manual is a test clock that only advances when Advance is called. Sleepers
// block until the clock passes their deadline.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*manualWaiter
}

type manualWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewManual returns a manual clock starting at start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Sleep implements Clock; it blocks until Advance moves past the deadline.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := &manualWaiter{deadline: m.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		w.ch <- m.now
		return w.ch
	}
	m.waiters = append(m.waiters, w)
	return w.ch
}

// Since implements Clock.
func (m *Manual) Since(t time.Time) time.Duration { return m.Now().Sub(t) }

// Advance moves the clock forward by d, releasing any waiters whose deadline
// has been reached.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	now := m.now
	var remaining []*manualWaiter
	var fired []*manualWaiter
	for _, w := range m.waiters {
		if !w.deadline.After(now) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	m.waiters = remaining
	m.mu.Unlock()
	for _, w := range fired {
		w.ch <- now
	}
}

// PendingWaiters reports how many sleepers are blocked (useful in tests).
func (m *Manual) PendingWaiters() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}

var (
	_ Clock = Real{}
	_ Clock = (*Scaled)(nil)
	_ Clock = (*Manual)(nil)
)
