package chaosnet

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/clock"
)

type okTripper struct {
	body  string
	calls int
}

func (o *okTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	o.calls++
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader(o.body)),
		Header:     make(http.Header),
	}, nil
}

func post(t *testing.T, tr http.RoundTripper, path, body string, attempt int) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest("POST", "http://fed.local"+path, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	if attempt > 0 {
		SetAttempt(req, attempt)
	}
	return tr.RoundTrip(req)
}

// TestDeterministicSchedule: the same seed and request stream produce the
// identical fault sequence on two independent transports.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, PRefuse: 0.2, P5xx: 0.2, PCutStream: 0.3, CutAfterBytes: 4}
	run := func() []string {
		tr := New(cfg, clock.Real{}, &okTripper{body: "0123456789"})
		var out []string
		for i := 0; i < 64; i++ {
			resp, err := post(t, tr, "/v1/chat/completions", "req "+strings.Repeat("x", i), 0)
			switch {
			case err != nil:
				out = append(out, "refused")
			case resp.StatusCode == http.StatusServiceUnavailable:
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				out = append(out, "503")
			default:
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if len(b) < 10 {
					out = append(out, "cut")
				} else {
					out = append(out, "ok")
				}
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
	kinds := map[string]int{}
	for _, k := range a {
		kinds[k]++
	}
	for _, want := range []string{"refused", "503", "cut", "ok"} {
		if kinds[want] == 0 {
			t.Errorf("schedule never produced %q over 64 requests: %v", want, kinds)
		}
	}
}

// TestAttemptRedraw: a request that faults on attempt 0 can clear on a
// retry, because the attempt number feeds the draw.
func TestAttemptRedraw(t *testing.T) {
	cfg := Config{Seed: 7, PRefuse: 0.5}
	tr := New(cfg, clock.Real{}, &okTripper{body: "ok"})
	cleared := false
	for i := 0; i < 64 && !cleared; i++ {
		body := "probe " + strings.Repeat("y", i)
		if _, err := post(t, tr, "/v1/chat/completions", body, 0); err == nil {
			continue // want a request that refuses on attempt 0
		}
		if resp, err := post(t, tr, "/v1/chat/completions", body, 1); err == nil {
			resp.Body.Close()
			cleared = true
		}
	}
	if !cleared {
		t.Fatal("no refused request cleared on retry across 64 probes")
	}
}

// TestSynth503RetryAfter: synthesized 503s carry the configured
// Retry-After and never reach the underlying transport.
func TestSynth503RetryAfter(t *testing.T) {
	next := &okTripper{body: "ok"}
	tr := New(Config{Seed: 3, P5xx: 1.0, RetryAfter: 2 * time.Second}, clock.Real{}, next)
	resp, err := post(t, tr, "/v1/chat/completions", "x", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	if next.calls != 0 {
		t.Errorf("underlying transport called %d times, want 0", next.calls)
	}
	if tr.Stats().Synth5xx.Load() != 1 {
		t.Errorf("stats: %v", tr.Stats().Snapshot())
	}
}

// TestCutStream: a cut body yields exactly CutAfterBytes bytes then a
// clean EOF, not an error.
func TestCutStream(t *testing.T) {
	tr := New(Config{Seed: 1, PCutStream: 1.0, CutAfterBytes: 4}, clock.Real{}, &okTripper{body: "0123456789"})
	resp, err := post(t, tr, "/v1/chat/completions", "x", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("cut stream surfaced error %v, want clean EOF", err)
	}
	if string(b) != "0123" {
		t.Errorf("body = %q, want first 4 bytes only", b)
	}
}

// TestRefusedErrorTyped: refusal is a typed transport error.
func TestRefusedErrorTyped(t *testing.T) {
	tr := New(Config{Seed: 9, PRefuse: 1.0}, clock.Real{}, &okTripper{})
	_, err := post(t, tr, "/v1/chat/completions", "x", 0)
	var re *RefusedError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RefusedError", err)
	}
}

// TestZeroConfigPassThrough: the zero config forwards everything intact.
func TestZeroConfigPassThrough(t *testing.T) {
	next := &okTripper{body: "hello"}
	tr := New(Config{}, nil, next)
	for i := 0; i < 32; i++ {
		resp, err := post(t, tr, "/v1/chat/completions", strings.Repeat("z", i), 0)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(b) != "hello" {
			t.Fatalf("body = %q", b)
		}
	}
	if next.calls != 32 || tr.Stats().Passed.Load() != 32 {
		t.Errorf("calls = %d passed = %d", next.calls, tr.Stats().Passed.Load())
	}
}

// TestWindowsSchedule: bursts land on rotating endpoints, deterministic
// per (seed, index, endpoint, attempt), and the background rate stays low.
func TestWindowsSchedule(t *testing.T) {
	w := Windows{BurstEvery: 100, BurstLen: 20, PFault: 0.9, PBackground: 0.01}
	const nEps = 3

	if in, target := w.InBurst(5, nEps); !in || target != 0 {
		t.Errorf("InBurst(5) = %v,%d want burst on ep 0", in, target)
	}
	if in, _ := w.InBurst(50, nEps); in {
		t.Error("InBurst(50) = true, want gap")
	}
	if in, target := w.InBurst(105, nEps); !in || target != 1 {
		t.Errorf("InBurst(105) = %v,%d want burst on ep 1", in, target)
	}

	// Determinism.
	for i := 0; i < 300; i++ {
		for ep := 0; ep < nEps; ep++ {
			if w.Faulty(11, i, ep, nEps, 0) != w.Faulty(11, i, ep, nEps, 0) {
				t.Fatal("Faulty not deterministic")
			}
		}
	}
	// Inside a burst the targeted endpoint faults often; outside, rarely.
	burstFaults, gapFaults := 0, 0
	for i := 0; i < 20; i++ {
		if w.Faulty(11, i, 0, nEps, 0) {
			burstFaults++
		}
	}
	for i := 20; i < 100; i++ {
		if w.Faulty(11, i, 0, nEps, 0) {
			gapFaults++
		}
	}
	if burstFaults < 10 {
		t.Errorf("burst faults = %d/20, want most", burstFaults)
	}
	if gapFaults > 10 {
		t.Errorf("gap faults = %d/80, want few", gapFaults)
	}
	// Zero schedule never faults.
	var zero Windows
	for i := 0; i < 100; i++ {
		if zero.Faulty(1, i, 0, nEps, 0) {
			t.Fatal("zero Windows produced a fault")
		}
	}
}
