// Package chaosnet injects deterministic network faults into an HTTP
// round-trip chain. It is the live-stack analogue of the DES failure
// schedule: the same seeded draws that perturb the simulated federation
// perturb the real gateway, so the livefed experiment can compare how the
// two react to an identical storm.
//
// Faults are drawn from a splitmix-style hash of (seed, request key,
// attempt) rather than from a shared PRNG stream, so the schedule is a
// pure function of the request — independent of goroutine interleaving,
// retry timing, and worker count. Retrying the same request re-draws with
// a bumped attempt counter, which is what lets a retry escape a fault
// window the way a real transient fault clears.
package chaosnet

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/argonne-first/first/internal/clock"
)

// Config sets the per-request fault probabilities. Probabilities are in
// [0,1] and evaluated independently, in the order: refuse, 5xx, latency,
// stream cut. The zero value injects nothing (pass-through transport).
type Config struct {
	// Seed keys every draw; two transports with the same seed and the
	// same requests produce the same fault schedule.
	Seed uint64
	// PRefuse is the probability a request fails at "dial" with a
	// connection-refused style transport error (no response at all).
	PRefuse float64
	// P5xx is the probability the transport synthesizes a 503 without
	// consulting the underlying handler.
	P5xx float64
	// RetryAfter, when positive, is advertised on synthesized 503s.
	RetryAfter time.Duration
	// PLatency is the probability a request is delayed by LatencySpike
	// (on the injected clock) before being forwarded.
	PLatency float64
	// LatencySpike is the added delay for latency faults.
	LatencySpike time.Duration
	// PCutStream is the probability a successful response body is
	// truncated after CutAfterBytes bytes — the reader sees a clean EOF
	// mid-stream, as when a peer dies between SSE events.
	PCutStream float64
	// CutAfterBytes bounds how much of a cut body is delivered.
	CutAfterBytes int
}

// Stats counts injected faults, by kind.
type Stats struct {
	Refused   atomic.Int64
	Synth5xx  atomic.Int64
	Delayed   atomic.Int64
	CutStream atomic.Int64
	Passed    atomic.Int64
}

// Snapshot returns the current counts as plain integers.
func (s *Stats) Snapshot() map[string]int64 {
	return map[string]int64{
		"refused":    s.Refused.Load(),
		"synth_5xx":  s.Synth5xx.Load(),
		"delayed":    s.Delayed.Load(),
		"cut_stream": s.CutStream.Load(),
		"passed":     s.Passed.Load(),
	}
}

// RefusedError is the synthetic dial failure. It unwraps to nothing and
// carries the request key so tests can assert schedule determinism.
type RefusedError struct {
	Key uint64
}

func (e *RefusedError) Error() string {
	return fmt.Sprintf("chaosnet: connection refused (key %#x)", e.Key)
}

// Transport is a fault-injecting http.RoundTripper wrapping another one.
type Transport struct {
	cfg   Config
	clk   clock.Clock
	next  http.RoundTripper
	stats Stats

	mu   sync.Mutex
	seen map[uint64]uint32
}

// New wraps next with fault injection. clk defaults to the real clock and
// is only consulted for latency faults, so simulations can compress spikes.
func New(cfg Config, clk clock.Clock, next http.RoundTripper) *Transport {
	if clk == nil {
		clk = clock.Real{}
	}
	return &Transport{cfg: cfg, clk: clk, next: next, seen: make(map[uint64]uint32)}
}

// Stats exposes the fault counters.
func (t *Transport) Stats() *Stats { return &t.stats }

// RequestKey hashes the parts of a request that identify it across
// retries: method, URL path, and body. Attempt is hashed separately so a
// retry of the same request draws fresh faults.
func RequestKey(method, path string, body []byte) uint64 {
	//firstlint:allow seedflow the key is request identity, never a raw stream seed: every fault draw folds it through Mix inside draw()
	h := fnv.New64a()
	io.WriteString(h, method)
	h.Write([]byte{0})
	io.WriteString(h, path)
	h.Write([]byte{0})
	h.Write(body)
	return h.Sum64()
}

// Draw maps (seed, key, attempt, lane) to a uniform float in [0,1).
// Each fault kind uses its own lane so probabilities stay independent.
// Exported so scenario drivers can key extra fault lanes (e.g. credential
// rejections) off the same deterministic schedule.
func Draw(seed, key uint64, attempt, lane uint32) float64 {
	return draw(seed, key, attempt, lane)
}

func draw(seed, key uint64, attempt, lane uint32) float64 {
	x := Mix(seed ^ key ^ (uint64(attempt) << 32) ^ uint64(lane))
	return float64(x>>11) / float64(1<<53)
}

const attemptHeader = "X-Chaosnet-Attempt"

// RoundTrip draws faults for the request and either refuses, delays,
// synthesizes a 5xx, forwards, or forwards-then-truncates. The attempt
// number is read from the X-Chaosnet-Attempt header when the caller sets
// one (retry loops bump it); absent, every trip is attempt 0.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	var body []byte
	if req.Body != nil {
		b, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		body = b
		req.Body = io.NopCloser(bytes.NewReader(b))
	}
	key := RequestKey(req.Method, req.URL.Path, body)
	var attempt uint32
	if v := req.Header.Get(attemptHeader); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			attempt = uint32(n)
		}
	} else {
		// No explicit attempt: count repeats of the same request key, so a
		// retry loop above the transport re-draws faults the way a real
		// transient clears, without knowing chaosnet exists.
		t.mu.Lock()
		attempt = t.seen[key]
		t.seen[key] = attempt + 1
		t.mu.Unlock()
	}

	if t.cfg.PRefuse > 0 && draw(t.cfg.Seed, key, attempt, 1) < t.cfg.PRefuse {
		t.stats.Refused.Add(1)
		return nil, &RefusedError{Key: key}
	}
	if t.cfg.P5xx > 0 && draw(t.cfg.Seed, key, attempt, 2) < t.cfg.P5xx {
		t.stats.Synth5xx.Add(1)
		return t.synth503(req), nil
	}
	if t.cfg.PLatency > 0 && t.cfg.LatencySpike > 0 &&
		draw(t.cfg.Seed, key, attempt, 3) < t.cfg.PLatency {
		t.stats.Delayed.Add(1)
		t.clk.Sleep(t.cfg.LatencySpike)
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if t.cfg.PCutStream > 0 && resp.StatusCode == http.StatusOK &&
		draw(t.cfg.Seed, key, attempt, 4) < t.cfg.PCutStream {
		t.stats.CutStream.Add(1)
		resp.Body = &cutReader{rc: resp.Body, remain: t.cfg.CutAfterBytes}
		return resp, nil
	}
	t.stats.Passed.Add(1)
	return resp, nil
}

func (t *Transport) synth503(req *http.Request) *http.Response {
	h := make(http.Header)
	h.Set("Content-Type", "application/json")
	if t.cfg.RetryAfter > 0 {
		secs := int((t.cfg.RetryAfter + time.Second - 1) / time.Second)
		h.Set("Retry-After", strconv.Itoa(secs))
	}
	body := `{"error":{"message":"chaosnet: injected upstream failure","type":"overloaded_error"}}`
	return &http.Response{
		StatusCode: http.StatusServiceUnavailable,
		Status:     "503 Service Unavailable",
		Header:     h,
		Body:       io.NopCloser(bytes.NewReader([]byte(body))),
		Request:    req,
		ProtoMajor: 1, ProtoMinor: 1,
	}
}

// cutReader delivers at most remain bytes, then reports a clean EOF —
// the same thing a reader observes when the peer closes mid-stream.
type cutReader struct {
	rc     io.ReadCloser
	remain int
}

func (c *cutReader) Read(p []byte) (int, error) {
	if c.remain <= 0 {
		return 0, io.EOF
	}
	if len(p) > c.remain {
		p = p[:c.remain]
	}
	n, err := c.rc.Read(p)
	c.remain -= n
	if c.remain <= 0 && err == nil {
		err = io.EOF
	}
	return n, err
}

func (c *cutReader) Close() error { return c.rc.Close() }

// SetAttempt marks a request with its retry attempt number so the
// transport can re-draw faults per attempt.
func SetAttempt(req *http.Request, attempt int) {
	req.Header.Set(attemptHeader, strconv.Itoa(attempt))
}
