package chaosnet

// Windows is an index-driven fault schedule for a federation's endpoints:
// bursts of elevated fault probability sweep across endpoints round-robin,
// with a low background fault rate in between. Because the schedule is a
// pure function of (seed, request index, endpoint index, attempt), the
// live harness and the DES can evaluate the identical storm without
// sharing any state — both just ask "is attempt a of request i against
// endpoint e faulty?".
type Windows struct {
	// BurstEvery spaces burst windows: a new window starts every
	// BurstEvery request indices. Zero disables bursts.
	BurstEvery int
	// BurstLen is how many consecutive request indices each burst covers.
	BurstLen int
	// PFault is the per-attempt fault probability inside a burst, for the
	// endpoint the burst targets.
	PFault float64
	// PBackground is the per-attempt fault probability outside bursts
	// (and for non-targeted endpoints inside one).
	PBackground float64
}

// InBurst reports whether request index falls inside a burst window, and
// which endpoint (0..nEps-1) that burst targets. Bursts rotate across
// endpoints so a failover retry lands on a healthy peer.
func (w Windows) InBurst(index, nEps int) (bool, int) {
	if w.BurstEvery <= 0 || w.BurstLen <= 0 || nEps <= 0 {
		return false, -1
	}
	if index%w.BurstEvery >= w.BurstLen {
		return false, -1
	}
	return true, (index / w.BurstEvery) % nEps
}

// Faulty reports whether attempt number attempt of request index against
// endpoint epIdx (of nEps) faults under this schedule and seed.
func (w Windows) Faulty(seed uint64, index, epIdx, nEps, attempt int) bool {
	p := w.PBackground
	if in, target := w.InBurst(index, nEps); in && target == epIdx {
		p = w.PFault
	}
	if p <= 0 {
		return false
	}
	key := uint64(index)<<20 ^ uint64(epIdx)
	return draw(seed, key, uint32(attempt), 5) < p
}
