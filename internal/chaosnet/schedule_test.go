package chaosnet

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
)

func testSchedule() Schedule {
	s := Schedule{
		Seed:          42,
		Endpoints:     2,
		Requests:      600,
		Windows:       Windows{BurstEvery: 100, BurstLen: 20, PFault: 0.85, PBackground: 0.01},
		PUnauthorized: 0.005,
		RatePerSec:    0.04,
		Events: []Event{
			{AtIndex: 300, Kind: EventKill, Endpoint: 0},
			{AtIndex: 150, Kind: EventKill, Endpoint: 1},
			{AtIndex: 300, Kind: EventRestart, Endpoint: 1},
			{AtIndex: 200, Kind: EventBGClaim, Endpoint: 0, GPUs: 12},
			{AtIndex: 300, Kind: EventBGRelease, Endpoint: 0},
		},
	}
	s.Sort()
	return s
}

func TestScheduleSortOrder(t *testing.T) {
	s := testSchedule()
	want := []Event{
		{AtIndex: 150, Kind: EventKill, Endpoint: 1},
		{AtIndex: 200, Kind: EventBGClaim, Endpoint: 0, GPUs: 12},
		{AtIndex: 300, Kind: EventBGRelease, Endpoint: 0},
		{AtIndex: 300, Kind: EventRestart, Endpoint: 1},
		{AtIndex: 300, Kind: EventKill, Endpoint: 0},
	}
	if !reflect.DeepEqual(s.Events, want) {
		t.Fatalf("sorted events = %+v, want %+v", s.Events, want)
	}
}

func TestScheduleCanonicalRoundTrip(t *testing.T) {
	s := testSchedule()
	a, b := s.Canonical(), s.Canonical()
	if !bytes.Equal(a, b) {
		t.Fatal("Canonical is not deterministic")
	}
	path := filepath.Join(t.TempDir(), "sched.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip = %+v, want %+v", got, s)
	}
	if !bytes.Equal(got.Canonical(), a) {
		t.Fatal("round-tripped schedule encodes differently")
	}
}

func TestCursorFiresEachEventOnce(t *testing.T) {
	s := testSchedule()
	cu := s.Cursor()
	var fired []Event
	for i := 0; i < s.Requests; i++ {
		cu.Advance(i, func(ev Event) { fired = append(fired, ev) })
	}
	if !reflect.DeepEqual(fired, s.Events) {
		t.Fatalf("cursor fired %+v, want %+v", fired, s.Events)
	}
	// A sparse advance (concurrency skips indices) still fires everything.
	cu = s.Cursor()
	fired = nil
	cu.Advance(299, func(ev Event) { fired = append(fired, ev) })
	cu.Advance(599, func(ev Event) { fired = append(fired, ev) })
	if len(fired) != len(s.Events) {
		t.Fatalf("sparse cursor fired %d events, want %d", len(fired), len(s.Events))
	}
}

func TestMixMatchesDraw(t *testing.T) {
	// draw must stay the splitmix64 finalizer Mix exposes: seeds folded
	// with Mix and draws keyed by it live in the same family.
	x := Mix(12345)
	if x == 12345 || x == 0 {
		t.Fatalf("Mix(12345) = %d looks like identity", x)
	}
	if Mix(12345) != x {
		t.Fatal("Mix is not deterministic")
	}
	if draw(1, 2, 3, 4) != draw(1, 2, 3, 4) {
		t.Fatal("draw is not deterministic")
	}
}
