package chaosnet

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Schedule is the full churn plan of one federation storm, serializable so
// the live harness and the DES calibration twin execute the *same* storm
// instead of each inventing its own tempo. Time is counted in request
// indices — the one clock both sides share exactly: the live driver fires
// an event just before issuing request AtIndex, and the DES replay fires it
// just before arrival AtIndex enters the gateway. Fault windows stay a
// pure function of (Seed, index, endpoint, attempt) via Windows.Faulty, so
// they need no events at all; kills, cold restarts, and background GPU
// claims are discrete actions and get one Event each.
type Schedule struct {
	// Seed keys every fault draw (Windows lanes and the 401 lane).
	Seed uint64 `json:"seed"`
	// Endpoints is the federation width the indices rotate over.
	Endpoints int `json:"endpoints"`
	// Requests is the trace length; events at or past it never fire on
	// either side (the live driver stops issuing, so the twin must too).
	Requests int `json:"requests"`
	// Windows is the endpoint fault-burst schedule both sides draw from.
	Windows Windows `json:"windows"`
	// PUnauthorized is the credential-rejection lane probability (live
	// side only: the gateway reacts by rechecking its token cache, which
	// has no routing analogue to replay).
	PUnauthorized float64 `json:"p_unauthorized,omitempty"`
	// RatePerSec is the live cell's measured arrival rate (requests per
	// simulated second), recorded after execution so the twin replays the
	// storm at the tempo the live stack actually ran, not a guessed one.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Events are sorted by (AtIndex, Kind, Endpoint).
	Events []Event `json:"events"`
}

// EventKind names one churn action.
type EventKind string

const (
	// EventKill tears the endpoint's serving deployment down mid-run:
	// in-flight work dies and the model goes cold there until EventRestart.
	EventKill EventKind = "kill"
	// EventRestart cold-restarts the killed deployment through the real
	// scheduler path (Queued → Starting/prologue → Running → load).
	EventRestart EventKind = "restart"
	// EventBGClaim submits a background science job claiming GPUs GPUs on
	// the endpoint's cluster, held until the matching EventBGRelease.
	EventBGClaim EventKind = "bg-claim"
	// EventBGRelease cancels the endpoint's oldest outstanding background
	// claim, returning its GPUs.
	EventBGRelease EventKind = "bg-release"
)

// kindOrder fixes the within-index firing order: releases free capacity
// before claims take it, and a restart of one endpoint lands before the
// kill of another, so back-to-back events at one index are deterministic.
func kindOrder(k EventKind) int {
	switch k {
	case EventBGRelease:
		return 0
	case EventRestart:
		return 1
	case EventKill:
		return 2
	case EventBGClaim:
		return 3
	}
	return 4
}

// Event is one discrete churn action at a request index.
type Event struct {
	AtIndex  int       `json:"at"`
	Kind     EventKind `json:"kind"`
	Endpoint int       `json:"endpoint"`
	// GPUs sizes a bg-claim; zero otherwise.
	GPUs int `json:"gpus,omitempty"`
}

// Sort orders events canonically; both executors require it.
func (s *Schedule) Sort() {
	sort.SliceStable(s.Events, func(i, j int) bool {
		a, b := s.Events[i], s.Events[j]
		if a.AtIndex != b.AtIndex {
			return a.AtIndex < b.AtIndex
		}
		if ka, kb := kindOrder(a.Kind), kindOrder(b.Kind); ka != kb {
			return ka < kb
		}
		return a.Endpoint < b.Endpoint
	})
}

// Canonical returns the schedule's canonical JSON encoding (indented,
// trailing newline). Struct-field order is fixed, so equal schedules
// encode to equal bytes — the byte-identity the replay acceptance check
// and the CI artifact diff rely on.
func (s Schedule) Canonical() []byte {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("chaosnet: schedule encode: %v", err))
	}
	return append(data, '\n')
}

// WriteFile writes the canonical encoding to path.
func (s Schedule) WriteFile(path string) error {
	return os.WriteFile(path, s.Canonical(), 0o644)
}

// ReadSchedule loads a schedule written by WriteFile.
func ReadSchedule(path string) (Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Schedule{}, err
	}
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return Schedule{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return s, nil
}

// Cursor walks the event list as the request index advances. Both
// executors use one: the live driver under its issue loop, the DES replay
// under its arrival loop, so neither can fire events the other skipped.
type Cursor struct {
	s    *Schedule
	next int
}

// Cursor returns a fresh cursor over the (sorted) schedule.
func (s *Schedule) Cursor() *Cursor { return &Cursor{s: s} }

// Advance fires, in order, every not-yet-fired event with AtIndex ≤ idx.
func (cu *Cursor) Advance(idx int, fire func(Event)) {
	for cu.next < len(cu.s.Events) && cu.s.Events[cu.next].AtIndex <= idx {
		ev := cu.s.Events[cu.next]
		cu.next++
		fire(ev)
	}
}

// Mix is the splitmix64 finalizer behind every fault draw, exported so
// scenario drivers can fold arbitrary config words into a seed without
// the weak xor-of-fields mixing that made distinct cells collide.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
