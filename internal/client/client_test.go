package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/resilience"
)

// fakeGateway is a minimal OpenAI-compatible handler for SDK tests.
type fakeGateway struct {
	lastAuth string
	lastBody []byte
}

func (f *fakeGateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.lastAuth = r.Header.Get("Authorization")
	if r.Body != nil {
		buf := make([]byte, 1<<16)
		n, _ := r.Body.Read(buf)
		f.lastBody = buf[:n]
	}
	switch r.URL.Path {
	case "/v1/chat/completions":
		var req openaiapi.ChatCompletionRequest
		json.Unmarshal(f.lastBody, &req)
		if req.Model == "missing/model" {
			w.WriteHeader(404)
			json.NewEncoder(w).Encode(openaiapi.NewError("invalid_request_error", "no such model"))
			return
		}
		if req.Stream {
			w.Header().Set("Content-Type", "text/event-stream")
			openaiapi.WriteSSE(w, openaiapi.StreamChunk{
				Choices: []openaiapi.Choice{{Delta: &openaiapi.Message{Content: "streamed "}}},
			})
			openaiapi.WriteSSE(w, openaiapi.StreamChunk{
				Choices: []openaiapi.Choice{{Delta: &openaiapi.Message{Content: "reply"}}},
			})
			openaiapi.WriteSSEDone(w)
			return
		}
		json.NewEncoder(w).Encode(openaiapi.ChatCompletionResponse{
			ID: "c1", Model: req.Model,
			Choices: []openaiapi.Choice{{Message: &openaiapi.Message{Role: "assistant", Content: "pong"}}},
			Usage:   openaiapi.Usage{PromptTokens: 2, CompletionTokens: 1, TotalTokens: 3},
		})
	case "/v1/models":
		json.NewEncoder(w).Encode(openaiapi.ModelList{Object: "list", Data: []openaiapi.Model{{ID: "m1"}}})
	case "/v1/batches/b1/results":
		w.Header().Set("Content-Type", "application/jsonl")
		enc := json.NewEncoder(w)
		enc.Encode(openaiapi.BatchResponseLine{CustomID: "r1", Status: 200})
		enc.Encode(openaiapi.BatchResponseLine{CustomID: "r2", Status: 200})
	default:
		w.WriteHeader(404)
		json.NewEncoder(w).Encode(openaiapi.NewError("invalid_request_error", "nope"))
	}
}

func TestClientSendsBearerToken(t *testing.T) {
	fg := &fakeGateway{}
	c := New("", "tok-123", WithHandler(fg))
	if _, err := c.Models(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fg.lastAuth != "Bearer tok-123" {
		t.Errorf("auth header = %q", fg.lastAuth)
	}
	c.SetToken("tok-456")
	c.Models(context.Background())
	if fg.lastAuth != "Bearer tok-456" {
		t.Errorf("auth after SetToken = %q", fg.lastAuth)
	}
}

func TestClientChatRoundtrip(t *testing.T) {
	c := New("", "t", WithHandler(&fakeGateway{}))
	resp, err := c.ChatCompletion(context.Background(), openaiapi.ChatCompletionRequest{
		Model:    "m1",
		Messages: []openaiapi.Message{{Role: "user", Content: "ping"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Choices[0].Message.Content != "pong" {
		t.Errorf("content = %q", resp.Choices[0].Message.Content)
	}
}

func TestClientAPIError(t *testing.T) {
	c := New("", "t", WithHandler(&fakeGateway{}))
	_, err := c.ChatCompletion(context.Background(), openaiapi.ChatCompletionRequest{
		Model:    "missing/model",
		Messages: []openaiapi.Message{{Role: "user", Content: "x"}},
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v", err)
	}
	if apiErr.StatusCode != 404 || apiErr.Type != "invalid_request_error" {
		t.Errorf("apiErr = %+v", apiErr)
	}
	if !strings.Contains(apiErr.Error(), "404") {
		t.Errorf("Error() = %q", apiErr.Error())
	}
}

func TestClientStreaming(t *testing.T) {
	c := New("", "t", WithHandler(&fakeGateway{}))
	var deltas []string
	full, err := c.ChatCompletionStream(context.Background(), openaiapi.ChatCompletionRequest{
		Model:    "m1",
		Messages: []openaiapi.Message{{Role: "user", Content: "x"}},
	}, func(d string) { deltas = append(deltas, d) })
	if err != nil {
		t.Fatal(err)
	}
	if full != "streamed reply" {
		t.Errorf("full = %q", full)
	}
	if len(deltas) != 2 {
		t.Errorf("deltas = %v", deltas)
	}
}

func TestClientBatchResultsJSONL(t *testing.T) {
	c := New("", "t", WithHandler(&fakeGateway{}))
	lines, err := c.BatchResults(context.Background(), "b1")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || lines[0].CustomID != "r1" {
		t.Errorf("lines = %+v", lines)
	}
}

func TestClientContextCancellation(t *testing.T) {
	c := New("", "t", WithHandler(&fakeGateway{}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Models(ctx); err == nil {
		t.Error("cancelled context should fail")
	}
}

// TestClientCancelMidStream is the regression test for the in-process
// transport ignoring context cancellation once ServeHTTP had started: a
// handler stuck mid-SSE must not pin the client past its context. The
// client cancels after the first delta; the call must return promptly with
// a context error even though the handler never finishes on its own.
func TestClientCancelMidStream(t *testing.T) {
	firstDelta := make(chan struct{})
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		openaiapi.WriteSSE(w, openaiapi.StreamChunk{
			Choices: []openaiapi.Choice{{Delta: &openaiapi.Message{Content: "first"}}},
		})
		close(firstDelta)
		select { // a stalled upstream: no more events until released
		case <-release:
		case <-r.Context().Done():
			// The caller hung up: drop the connection without the DONE
			// event. Writing DONE here raced the client's own cancellation
			// path — a fast reader could see a cleanly-terminated stream
			// and return nil error, flaking the assertion below.
			return
		}
		openaiapi.WriteSSEDone(w)
	})
	defer close(release)

	c := New("", "t", WithHandler(h))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-firstDelta
		cancel()
	}()
	done := make(chan struct{})
	var text string
	var err error
	go func() {
		defer close(done)
		text, err = c.ChatCompletionStream(ctx, openaiapi.ChatCompletionRequest{
			Model:    "m1",
			Messages: []openaiapi.Message{{Role: "user", Content: "x"}},
		}, nil)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled stream still blocked after 5s: transport ignores mid-body cancellation")
	}
	if err == nil {
		t.Fatal("cancelled mid-stream call returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if text != "first" {
		t.Errorf("partial text = %q, want deltas delivered before the cut", text)
	}
}

// flakyGateway fails the first n requests with the given status, then
// delegates to fakeGateway.
type flakyGateway struct {
	fakeGateway
	mu         sync.Mutex
	failFirst  int
	status     int
	retryAfter string
	attempts   int
}

func (f *flakyGateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.attempts++
	fail := f.attempts <= f.failFirst
	f.mu.Unlock()
	if fail {
		if f.retryAfter != "" {
			w.Header().Set("Retry-After", f.retryAfter)
		}
		w.WriteHeader(f.status)
		json.NewEncoder(w).Encode(openaiapi.NewError("overloaded_error", "try later"))
		return
	}
	f.fakeGateway.ServeHTTP(w, r)
}

func (f *flakyGateway) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts
}

func TestClientRetriesTransient(t *testing.T) {
	fg := &flakyGateway{failFirst: 2, status: 503, retryAfter: "0"}
	c := New("", "t", WithHandler(fg), WithRetry(resilience.Policy{MaxAttempts: 3}))
	resp, err := c.ChatCompletion(context.Background(), openaiapi.ChatCompletionRequest{
		Model:    "m1",
		Messages: []openaiapi.Message{{Role: "user", Content: "ping"}},
	})
	if err != nil {
		t.Fatalf("retried call failed: %v", err)
	}
	if resp.Choices[0].Message.Content != "pong" {
		t.Errorf("content = %q", resp.Choices[0].Message.Content)
	}
	if got := fg.count(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

// truncGateway serves a 200 whose JSON body is cut mid-object for the first
// failFirst requests, then delegates to the real fake gateway — the shape a
// connection cut mid-response produces.
type truncGateway struct {
	fakeGateway
	mu        sync.Mutex
	failFirst int
	attempts  int
}

func (g *truncGateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	g.attempts++
	cut := g.attempts <= g.failFirst
	g.mu.Unlock()
	if cut {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"chatcmpl-1","choi`))
		return
	}
	g.fakeGateway.ServeHTTP(w, r)
}

func TestClientMalformedBodyIsTypedAndRetried(t *testing.T) {
	tg := &truncGateway{failFirst: 1}
	c := New("", "t", WithHandler(tg), WithRetry(resilience.Policy{MaxAttempts: 2}))
	resp, err := c.ChatCompletion(context.Background(), openaiapi.ChatCompletionRequest{
		Model:    "m1",
		Messages: []openaiapi.Message{{Role: "user", Content: "ping"}},
	})
	if err != nil {
		t.Fatalf("retry after truncated body failed: %v", err)
	}
	if resp.Choices[0].Message.Content != "pong" {
		t.Errorf("content = %q", resp.Choices[0].Message.Content)
	}

	// With no retry budget the caller sees the typed error, not a raw
	// *json.SyntaxError it cannot classify.
	tg2 := &truncGateway{failFirst: 10}
	c2 := New("", "t", WithHandler(tg2))
	_, err = c2.ChatCompletion(context.Background(), openaiapi.ChatCompletionRequest{
		Model:    "m1",
		Messages: []openaiapi.Message{{Role: "user", Content: "ping"}},
	})
	if !errors.Is(err, ErrMalformedResponse) {
		t.Fatalf("err = %v, want ErrMalformedResponse", err)
	}
}

func TestClientRetryBudgetExhausted(t *testing.T) {
	fg := &flakyGateway{failFirst: 10, status: 503, retryAfter: "7"}
	c := New("", "t", WithHandler(fg),
		WithRetry(resilience.Policy{MaxAttempts: 2, MaxDelay: time.Millisecond}))
	_, err := c.ChatCompletion(context.Background(), openaiapi.ChatCompletionRequest{
		Model:    "m1",
		Messages: []openaiapi.Message{{Role: "user", Content: "x"}},
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v", err)
	}
	if apiErr.StatusCode != 503 {
		t.Errorf("status = %d", apiErr.StatusCode)
	}
	if apiErr.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want parsed 7s", apiErr.RetryAfter)
	}
	if got := fg.count(); got != 2 {
		t.Errorf("attempts = %d, want budget of 2", got)
	}
}

func TestClientNoRetryOn4xx(t *testing.T) {
	fg := &flakyGateway{failFirst: 10, status: 404}
	c := New("", "t", WithHandler(fg), WithRetry(resilience.Policy{MaxAttempts: 5}))
	_, err := c.ChatCompletion(context.Background(), openaiapi.ChatCompletionRequest{
		Model:    "m1",
		Messages: []openaiapi.Message{{Role: "user", Content: "x"}},
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := fg.count(); got != 1 {
		t.Errorf("attempts = %d: 4xx must not retry", got)
	}
}

func TestClientStreamRetryBeforeConsumed(t *testing.T) {
	fg := &flakyGateway{failFirst: 1, status: 503, retryAfter: "0"}
	c := New("", "t", WithHandler(fg), WithRetry(resilience.Policy{MaxAttempts: 3}))
	var deltas []string
	full, err := c.ChatCompletionStream(context.Background(), openaiapi.ChatCompletionRequest{
		Model:    "m1",
		Messages: []openaiapi.Message{{Role: "user", Content: "x"}},
	}, func(d string) { deltas = append(deltas, d) })
	if err != nil {
		t.Fatal(err)
	}
	if full != "streamed reply" || len(deltas) != 2 {
		t.Errorf("full = %q deltas = %v: retried stream must deliver exactly once", full, deltas)
	}
}

func TestClientStreamNeverReplaysConsumedBody(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		mu.Unlock()
		w.Header().Set("Content-Type", "text/event-stream")
		openaiapi.WriteSSE(w, openaiapi.StreamChunk{
			Choices: []openaiapi.Choice{{Delta: &openaiapi.Message{Content: "half"}}},
		})
		// Cut without [DONE]: endpoint died mid-stream.
	})
	c := New("", "t", WithHandler(h), WithRetry(resilience.Policy{MaxAttempts: 5}))
	var deltas []string
	text, err := c.ChatCompletionStream(context.Background(), openaiapi.ChatCompletionRequest{
		Model:    "m1",
		Messages: []openaiapi.Message{{Role: "user", Content: "x"}},
	}, func(d string) { deltas = append(deltas, d) })
	if !errors.Is(err, openaiapi.ErrStreamTruncated) {
		t.Fatalf("err = %v, want ErrStreamTruncated", err)
	}
	if text != "half" || len(deltas) != 1 {
		t.Errorf("text = %q deltas = %v, want the partial delivered exactly once", text, deltas)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 1 {
		t.Errorf("attempts = %d: consumed stream must never be replayed", attempts)
	}
}
