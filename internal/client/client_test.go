package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"github.com/argonne-first/first/internal/openaiapi"
)

// fakeGateway is a minimal OpenAI-compatible handler for SDK tests.
type fakeGateway struct {
	lastAuth string
	lastBody []byte
}

func (f *fakeGateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.lastAuth = r.Header.Get("Authorization")
	if r.Body != nil {
		buf := make([]byte, 1<<16)
		n, _ := r.Body.Read(buf)
		f.lastBody = buf[:n]
	}
	switch r.URL.Path {
	case "/v1/chat/completions":
		var req openaiapi.ChatCompletionRequest
		json.Unmarshal(f.lastBody, &req)
		if req.Model == "missing/model" {
			w.WriteHeader(404)
			json.NewEncoder(w).Encode(openaiapi.NewError("invalid_request_error", "no such model"))
			return
		}
		if req.Stream {
			w.Header().Set("Content-Type", "text/event-stream")
			openaiapi.WriteSSE(w, openaiapi.StreamChunk{
				Choices: []openaiapi.Choice{{Delta: &openaiapi.Message{Content: "streamed "}}},
			})
			openaiapi.WriteSSE(w, openaiapi.StreamChunk{
				Choices: []openaiapi.Choice{{Delta: &openaiapi.Message{Content: "reply"}}},
			})
			openaiapi.WriteSSEDone(w)
			return
		}
		json.NewEncoder(w).Encode(openaiapi.ChatCompletionResponse{
			ID: "c1", Model: req.Model,
			Choices: []openaiapi.Choice{{Message: &openaiapi.Message{Role: "assistant", Content: "pong"}}},
			Usage:   openaiapi.Usage{PromptTokens: 2, CompletionTokens: 1, TotalTokens: 3},
		})
	case "/v1/models":
		json.NewEncoder(w).Encode(openaiapi.ModelList{Object: "list", Data: []openaiapi.Model{{ID: "m1"}}})
	case "/v1/batches/b1/results":
		w.Header().Set("Content-Type", "application/jsonl")
		enc := json.NewEncoder(w)
		enc.Encode(openaiapi.BatchResponseLine{CustomID: "r1", Status: 200})
		enc.Encode(openaiapi.BatchResponseLine{CustomID: "r2", Status: 200})
	default:
		w.WriteHeader(404)
		json.NewEncoder(w).Encode(openaiapi.NewError("invalid_request_error", "nope"))
	}
}

func TestClientSendsBearerToken(t *testing.T) {
	fg := &fakeGateway{}
	c := New("", "tok-123", WithHandler(fg))
	if _, err := c.Models(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fg.lastAuth != "Bearer tok-123" {
		t.Errorf("auth header = %q", fg.lastAuth)
	}
	c.SetToken("tok-456")
	c.Models(context.Background())
	if fg.lastAuth != "Bearer tok-456" {
		t.Errorf("auth after SetToken = %q", fg.lastAuth)
	}
}

func TestClientChatRoundtrip(t *testing.T) {
	c := New("", "t", WithHandler(&fakeGateway{}))
	resp, err := c.ChatCompletion(context.Background(), openaiapi.ChatCompletionRequest{
		Model:    "m1",
		Messages: []openaiapi.Message{{Role: "user", Content: "ping"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Choices[0].Message.Content != "pong" {
		t.Errorf("content = %q", resp.Choices[0].Message.Content)
	}
}

func TestClientAPIError(t *testing.T) {
	c := New("", "t", WithHandler(&fakeGateway{}))
	_, err := c.ChatCompletion(context.Background(), openaiapi.ChatCompletionRequest{
		Model:    "missing/model",
		Messages: []openaiapi.Message{{Role: "user", Content: "x"}},
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v", err)
	}
	if apiErr.StatusCode != 404 || apiErr.Type != "invalid_request_error" {
		t.Errorf("apiErr = %+v", apiErr)
	}
	if !strings.Contains(apiErr.Error(), "404") {
		t.Errorf("Error() = %q", apiErr.Error())
	}
}

func TestClientStreaming(t *testing.T) {
	c := New("", "t", WithHandler(&fakeGateway{}))
	var deltas []string
	full, err := c.ChatCompletionStream(context.Background(), openaiapi.ChatCompletionRequest{
		Model:    "m1",
		Messages: []openaiapi.Message{{Role: "user", Content: "x"}},
	}, func(d string) { deltas = append(deltas, d) })
	if err != nil {
		t.Fatal(err)
	}
	if full != "streamed reply" {
		t.Errorf("full = %q", full)
	}
	if len(deltas) != 2 {
		t.Errorf("deltas = %v", deltas)
	}
}

func TestClientBatchResultsJSONL(t *testing.T) {
	c := New("", "t", WithHandler(&fakeGateway{}))
	lines, err := c.BatchResults(context.Background(), "b1")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 || lines[0].CustomID != "r1" {
		t.Errorf("lines = %+v", lines)
	}
}

func TestClientContextCancellation(t *testing.T) {
	c := New("", "t", WithHandler(&fakeGateway{}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Models(ctx); err == nil {
		t.Error("cancelled context should fail")
	}
}
