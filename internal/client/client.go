// Package client is the user-side SDK (§4.6): researchers interact with the
// gateway through standard HTTP clients or the OpenAI package; this is the
// equivalent Go client, with helpers for the Globus-style login flow and an
// in-memory transport so examples and tests can talk to a gateway without
// opening sockets.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/resilience"
)

// Client talks to a FIRST gateway.
type Client struct {
	baseURL string
	token   string
	httpc   *http.Client
	retry   resilience.Policy
	sleep   func(ctx context.Context, d time.Duration) error
}

// Option configures a client.
type Option func(*Client)

// WithHTTPClient overrides the HTTP client.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.httpc = h }
}

// WithHandler wires the client directly to an http.Handler in-process —
// requests never touch the network. Ideal for tests and examples.
func WithHandler(h http.Handler) Option {
	return func(c *Client) {
		c.httpc = &http.Client{Transport: HandlerRoundTripper(h)}
		if c.baseURL == "" {
			c.baseURL = "http://first.gateway.local"
		}
	}
}

// WithRetry sets the client's retry policy. The zero Policy (the default)
// performs exactly one attempt, preserving historical behavior. Request
// bodies are re-marshaled byte buffers, so every JSON API call is safe to
// replay; streaming responses retry only until the first delta has been
// delivered (a consumed stream is never replayed).
func WithRetry(p resilience.Policy) Option {
	return func(c *Client) { c.retry = p }
}

// WithSleep overrides how retry backoff waits pass (default: wall-clock
// sleep, interruptible by the request context). Harnesses on a scaled or
// logical clock inject their own sleeper so a server's Retry-After hint —
// expressed in *modeled* seconds — does not stall the driver for real
// wall seconds.
func WithSleep(fn func(ctx context.Context, d time.Duration) error) Option {
	return func(c *Client) { c.sleep = fn }
}

// HandlerRoundTripper adapts an http.Handler into a RoundTripper whose
// response body streams through a pipe: the handler runs concurrently, SSE
// deltas arrive as they are written, and a cancelled request context
// abandons the body mid-stream instead of blocking until the handler
// finishes (the old recorder-based transport buffered the entire response
// and ignored cancellation once ServeHTTP had started).
func HandlerRoundTripper(h http.Handler) http.RoundTripper {
	return handlerTransport{h: h}
}

type handlerTransport struct {
	h http.Handler
}

// streamRecorder is the ResponseWriter side of the pipe transport. Status
// and headers become final at the first WriteHeader/Write (signalled on
// wroteCh); body bytes flow through the pipe to the response reader.
type streamRecorder struct {
	header  http.Header
	status  int
	pw      *io.PipeWriter
	wroteCh chan struct{}
	once    sync.Once
}

func (r *streamRecorder) Header() http.Header { return r.header }

func (r *streamRecorder) WriteHeader(status int) {
	r.once.Do(func() {
		r.status = status
		close(r.wroteCh)
	})
}

func (r *streamRecorder) Write(p []byte) (int, error) {
	r.WriteHeader(http.StatusOK)
	return r.pw.Write(p)
}

// Flush is a no-op: pipe writes are visible to the reader immediately.
func (r *streamRecorder) Flush() {}

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	pr, pw := io.Pipe()
	rec := &streamRecorder{header: make(http.Header), pw: pw, wroteCh: make(chan struct{})}
	done := make(chan struct{})
	go func() {
		defer close(done)
		t.h.ServeHTTP(rec, req)
		rec.WriteHeader(http.StatusOK) // finalize status even for empty bodies
		pw.Close()
	}()
	go func() {
		// Cancellation mid-body: poison the pipe. Closing the write side
		// hands the context error to the response reader and fails the
		// handler's next Write, so both sides unblock.
		select {
		case <-req.Context().Done():
			pw.CloseWithError(req.Context().Err())
		case <-done:
		}
	}()
	select {
	case <-rec.wroteCh:
	case <-req.Context().Done():
		return nil, req.Context().Err()
	}
	return &http.Response{
		Status:     fmt.Sprintf("%d %s", rec.status, http.StatusText(rec.status)),
		StatusCode: rec.status,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     rec.header,
		Body:       pr,
		Request:    req,
	}, nil
}

// New returns a client for the gateway at baseURL using the access token.
func New(baseURL, token string, opts ...Option) *Client {
	c := &Client{baseURL: baseURL, token: token, httpc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// SetToken replaces the bearer token (after a refresh).
func (c *Client) SetToken(token string) { c.token = token }

// APIError is a non-2xx gateway response.
type APIError struct {
	StatusCode int
	Type       string
	Message    string
	// RetryAfter is the server's Retry-After hint, when present (0 = none).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gateway: HTTP %d (%s): %s", e.StatusCode, e.Type, e.Message)
}

// retryAfterHeader parses a seconds-form Retry-After header (the only form
// the gateway emits); absent or unparseable values report 0.
func retryAfterHeader(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retryAfterOf extracts the server hint from a previous attempt's error.
func retryAfterOf(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	return 0
}

// shouldRetry decides whether another attempt may follow err. Transport
// errors retry unless the caller's context is done; HTTP responses retry on
// 429 and the transient 5xx family. 4xx (other than 429) are the caller's
// fault and never retried.
func (c *Client) shouldRetry(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.StatusCode {
		case http.StatusTooManyRequests,
			http.StatusInternalServerError,
			http.StatusBadGateway,
			http.StatusServiceUnavailable,
			http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	return true
}

// backoff waits out a retry delay via the configured sleeper.
func (c *Client) backoff(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	return sleepCtx(ctx, d)
}

// sleepCtx sleeps for d or until ctx is done, whichever is first. The wall
// wait itself lives in internal/clock so every raw sleep in the module
// shares one audited implementation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	return clock.SleepCtx(ctx, d)
}

func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	var buf []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		buf = b
	}
	var lastErr error
	for attempt := 0; attempt < c.retry.Attempts(); attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, c.retry.Delay(attempt-1, retryAfterOf(lastErr))); err != nil {
				return lastErr // context ended during backoff: report the real failure
			}
		}
		err := c.doOnce(ctx, method, path, buf, in != nil, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !c.shouldRetry(ctx, err) {
			return err
		}
	}
	return lastErr
}

func (c *Client) doOnce(ctx context.Context, method, path string, buf []byte, hasBody bool, out interface{}) error {
	if c.retry.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.retry.AttemptTimeout)
		defer cancel()
	}
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, body)
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		retryAfter := retryAfterHeader(resp.Header)
		var envelope openaiapi.ErrorResponse
		if json.Unmarshal(raw, &envelope) == nil && envelope.Error.Message != "" {
			return &APIError{StatusCode: resp.StatusCode, Type: envelope.Error.Type, Message: envelope.Error.Message, RetryAfter: retryAfter}
		}
		return &APIError{StatusCode: resp.StatusCode, Type: "http_error", Message: string(raw), RetryAfter: retryAfter}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		// A 2xx with an undecodable body means the connection was cut (or
		// the payload corrupted) mid-response. Surface it as a typed,
		// retryable error — the JSON call is replayable — rather than a
		// raw decoder error the caller cannot classify.
		return fmt.Errorf("%w: %v", ErrMalformedResponse, err)
	}
	return nil
}

// ErrMalformedResponse reports a 2xx response whose body failed to decode —
// a connection cut mid-body or a corrupted payload. It is retryable: the
// request buffer is replayed on the next attempt.
var ErrMalformedResponse = errors.New("client: malformed response body")

// ChatCompletion performs a blocking chat request.
func (c *Client) ChatCompletion(ctx context.Context, req openaiapi.ChatCompletionRequest) (openaiapi.ChatCompletionResponse, error) {
	var resp openaiapi.ChatCompletionResponse
	req.Stream = false
	err := c.do(ctx, http.MethodPost, "/v1/chat/completions", req, &resp)
	return resp, err
}

// ChatCompletionStream performs a streaming chat request, invoking onDelta
// per content delta, and returns the assembled text. A truncated stream
// (cut before [DONE]) surfaces as openaiapi.ErrStreamTruncated alongside the
// partial text. Attempts retry under the client's policy only until the
// first delta has been delivered — a consumed stream is never replayed, so
// the caller never sees duplicated output.
func (c *Client) ChatCompletionStream(ctx context.Context, req openaiapi.ChatCompletionRequest, onDelta func(string)) (string, error) {
	req.Stream = true
	buf, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	var lastErr error
	for attempt := 0; attempt < c.retry.Attempts(); attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, c.retry.Delay(attempt-1, retryAfterOf(lastErr))); err != nil {
				return "", lastErr
			}
		}
		text, consumed, err := c.streamOnce(ctx, buf, onDelta)
		if err == nil {
			return text, nil
		}
		lastErr = err
		if consumed || !c.shouldRetry(ctx, err) {
			return text, err
		}
	}
	return "", lastErr
}

// streamOnce runs one streaming attempt. consumed reports whether any delta
// reached the caller, which makes the attempt non-replayable.
func (c *Client) streamOnce(ctx context.Context, body []byte, onDelta func(string)) (string, bool, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/v1/chat/completions", bytes.NewReader(body))
	if err != nil {
		return "", false, err
	}
	httpReq.Header.Set("Authorization", "Bearer "+c.token)
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(httpReq)
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(resp.Body)
		retryAfter := retryAfterHeader(resp.Header)
		var envelope openaiapi.ErrorResponse
		if json.Unmarshal(raw, &envelope) == nil && envelope.Error.Message != "" {
			return "", false, &APIError{StatusCode: resp.StatusCode, Type: envelope.Error.Type, Message: envelope.Error.Message, RetryAfter: retryAfter}
		}
		return "", false, &APIError{StatusCode: resp.StatusCode, Type: "http_error", Message: string(raw), RetryAfter: retryAfter}
	}
	var full bytes.Buffer
	consumed := false
	err = openaiapi.ReadSSE(resp.Body, func(data []byte) error {
		var chunk openaiapi.StreamChunk
		if err := json.Unmarshal(data, &chunk); err != nil {
			// A frame cut mid-JSON (chaosnet severs the stream anywhere,
			// not only on frame boundaries) is a malformed body, not an
			// anonymous parse error — callers classify on the sentinel.
			return fmt.Errorf("%w: %v", ErrMalformedResponse, err)
		}
		for _, ch := range chunk.Choices {
			if ch.Delta != nil && ch.Delta.Content != "" {
				consumed = true
				full.WriteString(ch.Delta.Content)
				if onDelta != nil {
					onDelta(ch.Delta.Content)
				}
			}
		}
		return nil
	})
	if err != nil && ctx.Err() != nil {
		// The caller's cancellation races the transport teardown: the body
		// closing under the reader surfaces as a truncated stream (or a
		// read error) first, but the cancellation is the cause. Surface it
		// so callers classify the call as cancelled, not as damaged.
		err = fmt.Errorf("%w: %v", ctx.Err(), err)
	}
	return full.String(), consumed, err
}

// Completion performs a text completion.
func (c *Client) Completion(ctx context.Context, req openaiapi.CompletionRequest) (openaiapi.CompletionResponse, error) {
	var resp openaiapi.CompletionResponse
	err := c.do(ctx, http.MethodPost, "/v1/completions", req, &resp)
	return resp, err
}

// Embeddings computes embeddings.
func (c *Client) Embeddings(ctx context.Context, req openaiapi.EmbeddingRequest) (openaiapi.EmbeddingResponse, error) {
	var resp openaiapi.EmbeddingResponse
	err := c.do(ctx, http.MethodPost, "/v1/embeddings", req, &resp)
	return resp, err
}

// Models lists hosted models.
func (c *Client) Models(ctx context.Context) (openaiapi.ModelList, error) {
	var resp openaiapi.ModelList
	err := c.do(ctx, http.MethodGet, "/v1/models", nil, &resp)
	return resp, err
}

// Jobs reports model availability (§4.3).
func (c *Client) Jobs(ctx context.Context) (openaiapi.JobsResponse, error) {
	var resp openaiapi.JobsResponse
	err := c.do(ctx, http.MethodGet, "/jobs", nil, &resp)
	return resp, err
}

// CreateBatch submits a batch job (§4.4).
func (c *Client) CreateBatch(ctx context.Context, req openaiapi.CreateBatchRequest) (openaiapi.BatchObject, error) {
	var resp openaiapi.BatchObject
	err := c.do(ctx, http.MethodPost, "/v1/batches", req, &resp)
	return resp, err
}

// GetBatch fetches batch status.
func (c *Client) GetBatch(ctx context.Context, id string) (openaiapi.BatchObject, error) {
	var resp openaiapi.BatchObject
	err := c.do(ctx, http.MethodGet, "/v1/batches/"+id, nil, &resp)
	return resp, err
}

// BatchResults downloads a completed batch's JSONL output.
func (c *Client) BatchResults(ctx context.Context, id string) ([]openaiapi.BatchResponseLine, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/v1/batches/"+id+"/results", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(resp.Body)
		return nil, &APIError{StatusCode: resp.StatusCode, Type: "http_error", Message: string(raw)}
	}
	var lines []openaiapi.BatchResponseLine
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var line openaiapi.BatchResponseLine
		if err := dec.Decode(&line); err != nil {
			return nil, err
		}
		lines = append(lines, line)
	}
	return lines, nil
}

// CancelBatch cancels a batch.
func (c *Client) CancelBatch(ctx context.Context, id string) (openaiapi.BatchObject, error) {
	var resp openaiapi.BatchObject
	err := c.do(ctx, http.MethodPost, "/v1/batches/"+id+"/cancel", nil, &resp)
	return resp, err
}
