// Package client is the user-side SDK (§4.6): researchers interact with the
// gateway through standard HTTP clients or the OpenAI package; this is the
// equivalent Go client, with helpers for the Globus-style login flow and an
// in-memory transport so examples and tests can talk to a gateway without
// opening sockets.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"

	"github.com/argonne-first/first/internal/openaiapi"
)

// Client talks to a FIRST gateway.
type Client struct {
	baseURL string
	token   string
	httpc   *http.Client
}

// Option configures a client.
type Option func(*Client)

// WithHTTPClient overrides the HTTP client.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.httpc = h }
}

// WithHandler wires the client directly to an http.Handler in-process —
// requests never touch the network. Ideal for tests and examples.
func WithHandler(h http.Handler) Option {
	return func(c *Client) {
		c.httpc = &http.Client{Transport: handlerTransport{h: h}}
		if c.baseURL == "" {
			c.baseURL = "http://first.gateway.local"
		}
	}
}

type handlerTransport struct {
	h http.Handler
}

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// New returns a client for the gateway at baseURL using the access token.
func New(baseURL, token string, opts ...Option) *Client {
	c := &Client{baseURL: baseURL, token: token, httpc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// SetToken replaces the bearer token (after a refresh).
func (c *Client) SetToken(token string) { c.token = token }

// APIError is a non-2xx gateway response.
type APIError struct {
	StatusCode int
	Type       string
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gateway: HTTP %d (%s): %s", e.StatusCode, e.Type, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, body)
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var envelope openaiapi.ErrorResponse
		if json.Unmarshal(raw, &envelope) == nil && envelope.Error.Message != "" {
			return &APIError{StatusCode: resp.StatusCode, Type: envelope.Error.Type, Message: envelope.Error.Message}
		}
		return &APIError{StatusCode: resp.StatusCode, Type: "http_error", Message: string(raw)}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// ChatCompletion performs a blocking chat request.
func (c *Client) ChatCompletion(ctx context.Context, req openaiapi.ChatCompletionRequest) (openaiapi.ChatCompletionResponse, error) {
	var resp openaiapi.ChatCompletionResponse
	req.Stream = false
	err := c.do(ctx, http.MethodPost, "/v1/chat/completions", req, &resp)
	return resp, err
}

// ChatCompletionStream performs a streaming chat request, invoking onDelta
// per content delta, and returns the assembled text.
func (c *Client) ChatCompletionStream(ctx context.Context, req openaiapi.ChatCompletionRequest, onDelta func(string)) (string, error) {
	req.Stream = true
	buf, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/v1/chat/completions", bytes.NewReader(buf))
	if err != nil {
		return "", err
	}
	httpReq.Header.Set("Authorization", "Bearer "+c.token)
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(httpReq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(resp.Body)
		var envelope openaiapi.ErrorResponse
		if json.Unmarshal(raw, &envelope) == nil && envelope.Error.Message != "" {
			return "", &APIError{StatusCode: resp.StatusCode, Type: envelope.Error.Type, Message: envelope.Error.Message}
		}
		return "", &APIError{StatusCode: resp.StatusCode, Type: "http_error", Message: string(raw)}
	}
	var full bytes.Buffer
	err = openaiapi.ReadSSE(resp.Body, func(data []byte) error {
		var chunk openaiapi.StreamChunk
		if err := json.Unmarshal(data, &chunk); err != nil {
			return err
		}
		for _, ch := range chunk.Choices {
			if ch.Delta != nil && ch.Delta.Content != "" {
				full.WriteString(ch.Delta.Content)
				if onDelta != nil {
					onDelta(ch.Delta.Content)
				}
			}
		}
		return nil
	})
	return full.String(), err
}

// Completion performs a text completion.
func (c *Client) Completion(ctx context.Context, req openaiapi.CompletionRequest) (openaiapi.CompletionResponse, error) {
	var resp openaiapi.CompletionResponse
	err := c.do(ctx, http.MethodPost, "/v1/completions", req, &resp)
	return resp, err
}

// Embeddings computes embeddings.
func (c *Client) Embeddings(ctx context.Context, req openaiapi.EmbeddingRequest) (openaiapi.EmbeddingResponse, error) {
	var resp openaiapi.EmbeddingResponse
	err := c.do(ctx, http.MethodPost, "/v1/embeddings", req, &resp)
	return resp, err
}

// Models lists hosted models.
func (c *Client) Models(ctx context.Context) (openaiapi.ModelList, error) {
	var resp openaiapi.ModelList
	err := c.do(ctx, http.MethodGet, "/v1/models", nil, &resp)
	return resp, err
}

// Jobs reports model availability (§4.3).
func (c *Client) Jobs(ctx context.Context) (openaiapi.JobsResponse, error) {
	var resp openaiapi.JobsResponse
	err := c.do(ctx, http.MethodGet, "/jobs", nil, &resp)
	return resp, err
}

// CreateBatch submits a batch job (§4.4).
func (c *Client) CreateBatch(ctx context.Context, req openaiapi.CreateBatchRequest) (openaiapi.BatchObject, error) {
	var resp openaiapi.BatchObject
	err := c.do(ctx, http.MethodPost, "/v1/batches", req, &resp)
	return resp, err
}

// GetBatch fetches batch status.
func (c *Client) GetBatch(ctx context.Context, id string) (openaiapi.BatchObject, error) {
	var resp openaiapi.BatchObject
	err := c.do(ctx, http.MethodGet, "/v1/batches/"+id, nil, &resp)
	return resp, err
}

// BatchResults downloads a completed batch's JSONL output.
func (c *Client) BatchResults(ctx context.Context, id string) ([]openaiapi.BatchResponseLine, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/v1/batches/"+id+"/results", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(resp.Body)
		return nil, &APIError{StatusCode: resp.StatusCode, Type: "http_error", Message: string(raw)}
	}
	var lines []openaiapi.BatchResponseLine
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var line openaiapi.BatchResponseLine
		if err := dec.Decode(&line); err != nil {
			return nil, err
		}
		lines = append(lines, line)
	}
	return lines, nil
}

// CancelBatch cancels a batch.
func (c *Client) CancelBatch(ctx context.Context, id string) (openaiapi.BatchObject, error) {
	var resp openaiapi.BatchObject
	err := c.do(ctx, http.MethodPost, "/v1/batches/"+id+"/cancel", nil, &resp)
	return resp, err
}
