package gateway

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/argonne-first/first/internal/clock"
)

func testFrontend(cfg Config, clk clock.Clock) *frontend {
	cfg.applyDefaults()
	return newFrontend(cfg, clk)
}

func keyOf(i int) respKey {
	return cacheKey("sub", []byte("body-"+strconv.Itoa(i)))
}

// TestCacheHotEntriesSurviveChurn is the eviction-bug regression test: the
// old front-end wiped the whole response cache when it crossed 4096 entries,
// discarding hot entries with cold ones. The per-shard LRU must keep a
// continuously touched entry alive through arbitrary insertion churn.
func TestCacheHotEntriesSurviveChurn(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	fe := testFrontend(Config{CacheTTL: time.Hour, Shards: 1}, clk)

	hot := cacheKey("sub", []byte("the hot request"))
	fe.cachePut(hot, []byte("hot response"))
	for i := 0; i < 20000; i++ {
		fe.cachePut(keyOf(i), []byte("cold"))
		if i%100 == 0 {
			if _, ok := fe.cacheGet(hot); !ok {
				t.Fatalf("hot entry evicted after %d cold inserts", i)
			}
		}
	}
	if body, ok := fe.cacheGet(hot); !ok || string(body) != "hot response" {
		t.Errorf("hot entry lost after churn: ok=%v body=%q", ok, body)
	}
	if n := fe.cacheLen(); n > 4096 {
		t.Errorf("cache grew to %d entries, want ≤ 4096", n)
	}
}

// TestCacheBoundHoldsAcrossShards checks the bound is global: CacheEntries
// splits over shards and total occupancy never exceeds it.
func TestCacheBoundHoldsAcrossShards(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	fe := testFrontend(Config{CacheTTL: time.Hour, Shards: 8, CacheEntries: 1024}, clk)
	for i := 0; i < 10000; i++ {
		fe.cachePut(keyOf(i), []byte("x"))
	}
	if n := fe.cacheLen(); n > 1024 {
		t.Errorf("cache holds %d entries, want ≤ 1024", n)
	}
}

// TestCacheTTLExpiry checks expired entries miss and are dropped.
func TestCacheTTLExpiry(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	fe := testFrontend(Config{CacheTTL: time.Minute, Shards: 2}, clk)
	k := keyOf(1)
	fe.cachePut(k, []byte("fresh"))
	if _, ok := fe.cacheGet(k); !ok {
		t.Fatal("fresh entry missing")
	}
	clk.Advance(2 * time.Minute)
	if _, ok := fe.cacheGet(k); ok {
		t.Error("expired entry served")
	}
	if n := fe.cacheLen(); n != 0 {
		t.Errorf("expired entry retained (%d entries)", n)
	}
}

// TestLimiterIdleEviction is the unbounded-growth regression test: a storm
// of a million distinct one-shot subs must not retain a million limiter
// entries — idle buckets get swept once they pass the idle TTL.
func TestLimiterIdleEviction(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	fe := testFrontend(Config{
		UserRatePerSec: 1,
		Shards:         16,
		LimiterIdleTTL: time.Minute,
	}, clk)

	const (
		batches   = 100
		batchSize = 10000 // batches × batchSize = 10⁶ distinct subs
	)
	for b := 0; b < batches; b++ {
		base := b * batchSize
		for i := 0; i < batchSize; i++ {
			if !fe.allowUser("sub-" + strconv.Itoa(base+i)) {
				t.Fatalf("fresh sub rejected (burst should cover the first request)")
			}
		}
		clk.Advance(2 * time.Minute) // every bucket in this batch goes idle
	}
	if n := fe.limiterLen(); n > 2*batchSize {
		t.Errorf("limiter table holds %d entries after 10⁶ one-shot subs, want ≤ %d", n, 2*batchSize)
	}
}

// TestLimiterActiveUsersSurviveSweep checks eviction is idle-based, not
// wholesale: a user who keeps talking through the storm keeps their bucket
// (and the rate state in it).
func TestLimiterActiveUsersSurviveSweep(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	fe := testFrontend(Config{
		UserRatePerSec: 100,
		Shards:         4,
		LimiterIdleTTL: time.Minute,
	}, clk)
	for b := 0; b < 20; b++ {
		fe.allowUser("regular")
		for i := 0; i < 100; i++ {
			fe.allowUser("oneshot-" + strconv.Itoa(b*100+i))
		}
		clk.Advance(30 * time.Second) // under the idle TTL for "regular"
	}
	sh := fe.userShard("regular")
	sh.mu.Lock()
	_, ok := sh.limiters["regular"]
	sh.mu.Unlock()
	if !ok {
		t.Error("active user's bucket was swept")
	}
}

// TestLimiterSweepKeepsDebt pins the eviction-equivalence invariant: when
// burst exceeds rate×idleTTL, a spent-out user must not reset their debt by
// idling one TTL — the bucket survives until natural refill would have
// reached full burst anyway.
func TestLimiterSweepKeepsDebt(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	fe := testFrontend(Config{
		UserRatePerSec: 0.1, // refill 6 tokens/minute...
		UserBurst:      500, // ...against a 500-token burst
		Shards:         1,
		LimiterIdleTTL: time.Minute,
	}, clk)
	for i := 0; i < 500; i++ {
		if !fe.allowUser("spender") {
			t.Fatalf("burst exhausted early at %d", i)
		}
	}
	if fe.allowUser("spender") {
		t.Fatal("allowed past burst")
	}
	// Idle past the TTL (needs other traffic to trigger the sweep), then
	// return: refill granted ~0.1/s × 120 s = 12 tokens, not a fresh 500.
	clk.Advance(2 * time.Minute)
	fe.allowUser("bystander")
	var allowed int
	for i := 0; i < 500; i++ {
		if fe.allowUser("spender") {
			allowed++
		}
	}
	if allowed > 13 {
		t.Errorf("idling past the TTL re-credited %d tokens, want ≤ ~12 (rate×idle)", allowed)
	}
}

// TestNextIDUniqueUnderConcurrency: response IDs come from an atomic
// counter; no two goroutines may ever observe the same ID.
func TestNextIDUniqueUnderConcurrency(t *testing.T) {
	fe := testFrontend(Config{}, clock.NewReal())
	const workers, perWorker = 8, 10000
	got := make([][]string, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			ids := make([]string, perWorker)
			for i := range ids {
				ids[i] = fe.nextID("chatcmpl")
			}
			got[w] = ids
		}(w)
	}
	wg.Wait()
	seen := make(map[string]bool, workers*perWorker)
	for _, ids := range got {
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("duplicate response ID %q", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != workers*perWorker {
		t.Errorf("got %d unique IDs, want %d", len(seen), workers*perWorker)
	}
}

// TestFrontendHotPathAllocs pins the sharded hot path's allocation budget,
// matching the engine/kernel alloc regression tests: the limiter check and a
// cache hit allocate nothing; the full cache path (key hash included) stays
// at one allocation — the digest buffer.
func TestFrontendHotPathAllocs(t *testing.T) {
	fe := testFrontend(Config{
		CacheTTL:       time.Hour,
		UserRatePerSec: 1e9, // refill outruns the loop: the limiter never rejects
	}, clock.NewReal())

	if got := testing.AllocsPerRun(1000, func() {
		if !fe.allowUser("hot-user") {
			t.Fatal("limiter rejected under infinite refill")
		}
	}); got != 0 {
		t.Errorf("allowUser allocates %.1f/op, want 0", got)
	}

	body := []byte(`{"model":"m","messages":[{"role":"user","content":"hi"}]}`)
	key := cacheKey("hot-user", body)
	fe.cachePut(key, []byte("cached response"))
	if got := testing.AllocsPerRun(1000, func() {
		if _, ok := fe.cacheGet(key); !ok {
			t.Fatal("cache miss on warm key")
		}
	}); got != 0 {
		t.Errorf("cacheGet hit allocates %.1f/op, want 0", got)
	}

	if got := testing.AllocsPerRun(1000, func() {
		k := cacheKey("hot-user", body)
		if _, ok := fe.cacheGet(k); !ok {
			t.Fatal("cache miss on warm key")
		}
	}); got > 1 {
		t.Errorf("cacheKey+cacheGet allocates %.1f/op, want ≤ 1 (the digest buffer)", got)
	}
}

// TestFrontendConcurrentMixedOps drives every front-end operation from
// parallel goroutines across overlapping keys and subs — the -race target
// for shard lock coverage.
func TestFrontendConcurrentMixedOps(t *testing.T) {
	fe := testFrontend(Config{
		CacheTTL:       time.Hour,
		UserRatePerSec: 50,
		CacheEntries:   512,
	}, clock.NewReal())
	const workers, iters = 16, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := keyOf(i % 64)
				switch i % 4 {
				case 0:
					fe.cachePut(k, []byte("v"))
				case 1:
					fe.cacheGet(k)
				case 2:
					fe.allowUser("user-" + strconv.Itoa((w+i)%32))
				case 3:
					fe.nextID("cmpl")
				}
			}
		}(w)
	}
	wg.Wait()
	if n := fe.cacheLen(); n > 512 {
		t.Errorf("cache bound violated under concurrency: %d entries", n)
	}
}

// TestConfigShardRounding checks the knob's contract: 0 derives from
// GOMAXPROCS, any request rounds up to a power of two, 1 stays 1.
func TestConfigShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		cfg := Config{Shards: tc.in}
		cfg.applyDefaults()
		if cfg.Shards != tc.want {
			t.Errorf("Shards %d → %d, want %d", tc.in, cfg.Shards, tc.want)
		}
	}
	cfg := Config{}
	cfg.applyDefaults()
	if cfg.Shards < 1 || cfg.Shards&(cfg.Shards-1) != 0 {
		t.Errorf("default Shards = %d, want a power of two ≥ 1", cfg.Shards)
	}
	if cfg.LimiterIdleTTL != 15*time.Minute {
		t.Errorf("default LimiterIdleTTL = %v", cfg.LimiterIdleTTL)
	}
	if cfg.CacheEntries != 4096 {
		t.Errorf("default CacheEntries = %d", cfg.CacheEntries)
	}
}
