// Package gateway implements the FIRST Inference Gateway API (§3.1): an
// OpenAI-compatible HTTP service that validates identities through the auth
// layer (with introspection caching — Optimization 2), validates request
// bodies, rate-limits users, optionally caches idempotent responses,
// converts requests into fabric tasks routed by the federation layer,
// logs all activity to the store, and exposes metrics, a dashboard, the
// /jobs scheduler view, and the /v1/batches batch mode.
//
// The front-end's mutable state (response cache, per-user rate limiters,
// response ID counter) is sharded — see frontend.go — so parallel handlers
// never serialize on one lock; Config.Shards tunes the split (1 = the
// historical single-mutex behaviour).
package gateway

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/argonne-first/first/internal/auth"
	"github.com/argonne-first/first/internal/batch"
	"github.com/argonne-first/first/internal/clock"
	"github.com/argonne-first/first/internal/fabric"
	"github.com/argonne-first/first/internal/federation"
	"github.com/argonne-first/first/internal/metrics"
	"github.com/argonne-first/first/internal/openaiapi"
	"github.com/argonne-first/first/internal/perfmodel"
	"github.com/argonne-first/first/internal/resilience"
	"github.com/argonne-first/first/internal/store"
)

// WorkerModel selects the gateway's concurrency architecture — the subject
// of Optimization 3 (§5.3.1).
type WorkerModel int

const (
	// WorkerAsync is the Django-Ninja-style asynchronous gateway: requests
	// are offloaded to the fabric immediately and the in-flight window is
	// wide (Gunicorn workers × threads).
	WorkerAsync WorkerModel = iota
	// WorkerSyncLegacy reproduces the original synchronous Django REST
	// deployment: a small fixed worker pool is held for the full duration
	// of every request ("only nine requests could be processed at a
	// time").
	WorkerSyncLegacy
)

// Config tunes the gateway.
type Config struct {
	WorkerModel WorkerModel
	// InFlightLimit is the async in-flight window; the deployment default
	// models Gunicorn's cpu_count×2+1 workers × 4 threads ≈ 428 (§5.2.2).
	InFlightLimit int
	// SyncWorkers is the legacy pool size (default 9).
	SyncWorkers int
	// ProcessingOverhead is the gateway's per-request CPU cost.
	ProcessingOverhead time.Duration
	// UserRatePerSec rate-limits each user (0 = disabled).
	UserRatePerSec float64
	// UserBurst is the rate limiter burst (default 2× rate).
	UserBurst float64
	// CacheTTL enables response caching for identical non-streaming
	// requests when > 0.
	CacheTTL time.Duration
	// DefaultMaxTokens applies when requests omit max_tokens.
	DefaultMaxTokens int
	// Shards is the front-end shard count: response cache, limiter table,
	// and their locks split N ways (N rounded up to a power of two).
	// 0 derives from GOMAXPROCS; 1 reproduces the single-lock front-end.
	Shards int
	// CacheEntries bounds the response cache across all shards
	// (default 4096, the historical bound — but per-shard LRU instead of
	// wipe-on-overflow). Each shard holds at least one entry, so the
	// effective bound is max(CacheEntries, Shards).
	CacheEntries int
	// LimiterIdleTTL evicts per-user rate-limiter buckets idle longer than
	// this (default 15 min), so one-shot users don't grow the table forever.
	LimiterIdleTTL time.Duration
	// Retry is the inference failover policy: on attempt failure the
	// gateway re-routes to the next-best endpoint (the failed ones
	// excluded) up to Retry.Attempts() total tries. The zero value keeps
	// the historical single-attempt behavior.
	Retry resilience.Policy
	// Breaker enables per-endpoint circuit breaking when
	// Breaker.Enabled() (FailureRate > 0): tripped endpoints drop out of
	// routing, and when every endpoint for a model is open the gateway
	// sheds load with 503 + Retry-After. The zero value disables breaking.
	Breaker resilience.BreakerConfig
	// BreakerClock overrides the time base for breaker decisions (nil =
	// the gateway clock). Deterministic harnesses inject a logical clock
	// so breaker state replays identically across runs.
	BreakerClock func() time.Time
}

func (c *Config) applyDefaults() {
	if c.InFlightLimit <= 0 {
		c.InFlightLimit = 428
	}
	if c.SyncWorkers <= 0 {
		c.SyncWorkers = 9
	}
	if c.UserBurst <= 0 {
		c.UserBurst = c.UserRatePerSec * 2
	}
	if c.DefaultMaxTokens <= 0 {
		c.DefaultMaxTokens = 128
	}
	if c.Shards <= 0 {
		c.Shards = defaultShards()
	}
	c.Shards = ceilPow2(c.Shards)
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.LimiterIdleTTL <= 0 {
		c.LimiterIdleTTL = 15 * time.Minute
	}
}

// defaultShards sizes the front-end to the machine: the next power of two
// at or above GOMAXPROCS, capped at 64 (beyond that the shard working set
// costs more in cache misses than it saves in lock contention).
func defaultShards() int {
	n := ceilPow2(runtime.GOMAXPROCS(0))
	if n > 64 {
		n = 64
	}
	return n
}

// ceilPow2 rounds n up to the nearest power of two (minimum 1).
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Server is the gateway.
type Server struct {
	cfg     Config
	clk     clock.Clock
	tokens  *auth.TokenCache
	policy  *auth.Policy
	router  *federation.Router
	client  *fabric.Client
	batches *batch.Runner
	st      *store.Store
	catalog *perfmodel.Catalog
	met     *metrics.Registry

	mux *http.ServeMux
	// Async admission window: a lock-free in-flight counter. The previous
	// `sem` channel serialized every admission (and every release) on the
	// channel's internal lock — one more single point the storm workload
	// funnels through after the front-end itself was sharded. An atomic
	// add/compare keeps identical accept/reject semantics without it.
	inFlight      atomic.Int64
	inFlightLimit int64
	// syncSem remains a channel for the legacy synchronous model only:
	// those workers *queue* (block) when the pool is full, which is exactly
	// channel-send semantics.
	syncSem chan struct{}
	fe      *frontend // sharded mutable front-end state

	toolsMu sync.Mutex // tools registration is control-plane, not sharded
	tools   map[string][]ToolRoute

	// breakers is non-nil only when cfg.Breaker.Enabled(); breakerNow is
	// always callable (cfg.BreakerClock or the gateway clock).
	breakers   *resilience.Set
	breakerNow func() time.Time
}

// Deps bundles the gateway's collaborators.
type Deps struct {
	Clock   clock.Clock
	Tokens  *auth.TokenCache
	Policy  *auth.Policy
	Router  *federation.Router
	Client  *fabric.Client
	Batches *batch.Runner
	Store   *store.Store
	Catalog *perfmodel.Catalog
	Metrics *metrics.Registry
}

// New assembles a gateway server.
func New(cfg Config, deps Deps) (*Server, error) {
	cfg.applyDefaults()
	if deps.Clock == nil || deps.Tokens == nil || deps.Router == nil || deps.Client == nil || deps.Store == nil {
		return nil, errors.New("gateway: missing dependencies")
	}
	if deps.Catalog == nil {
		deps.Catalog = perfmodel.Default
	}
	if deps.Metrics == nil {
		deps.Metrics = metrics.NewRegistry()
	}
	if deps.Policy == nil {
		deps.Policy = auth.NewPolicy("")
	}
	s := &Server{
		cfg:     cfg,
		clk:     deps.Clock,
		tokens:  deps.Tokens,
		policy:  deps.Policy,
		router:  deps.Router,
		client:  deps.Client,
		batches: deps.Batches,
		st:      deps.Store,
		catalog: deps.Catalog,
		met:     deps.Metrics,
		mux:     http.NewServeMux(),
		fe:      newFrontend(cfg, deps.Clock),
	}
	if cfg.WorkerModel == WorkerSyncLegacy {
		s.syncSem = make(chan struct{}, cfg.SyncWorkers)
	} else {
		s.inFlightLimit = int64(cfg.InFlightLimit)
	}
	s.breakerNow = cfg.BreakerClock
	if s.breakerNow == nil {
		s.breakerNow = deps.Clock.Now
	}
	if cfg.Breaker.Enabled() {
		s.breakers = resilience.NewSet(cfg.Breaker)
		deps.Router.UseBreakers(s.breakers, s.breakerNow)
	}
	s.routes()
	return s, nil
}

// Breakers exposes the breaker set (nil when breaking is disabled) for
// tests and harnesses that assert on trip counts and endpoint health.
func (s *Server) Breakers() *resilience.Set { return s.breakers }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/chat/completions", s.withAuth(s.handleChat))
	s.mux.HandleFunc("POST /v1/completions", s.withAuth(s.handleCompletion))
	s.mux.HandleFunc("POST /v1/embeddings", s.withAuth(s.handleEmbeddings))
	s.mux.HandleFunc("GET /v1/models", s.withAuth(s.handleModels))
	s.mux.HandleFunc("GET /jobs", s.withAuth(s.handleJobs))
	s.mux.HandleFunc("POST /v1/batches", s.withAuth(s.handleCreateBatch))
	s.mux.HandleFunc("GET /v1/batches", s.withAuth(s.handleListBatches))
	s.mux.HandleFunc("GET /v1/batches/{id}", s.withAuth(s.handleGetBatch))
	s.mux.HandleFunc("GET /v1/batches/{id}/results", s.withAuth(s.handleBatchResults))
	s.mux.HandleFunc("POST /v1/batches/{id}/cancel", s.withAuth(s.handleCancelBatch))
	s.mux.HandleFunc("POST /v1/tools/{name}", s.withAuth(s.handleTool))
	s.mux.HandleFunc("GET /v1/tools", s.withAuth(s.handleListTools))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /dashboard", s.handleDashboard)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics exposes the registry (tests, dashboard embedding).
func (s *Server) Metrics() *metrics.Registry { return s.met }

type authedHandler func(w http.ResponseWriter, r *http.Request, who auth.TokenInfo)

// withAuth is the §3.1.2 authorization middleware: Bearer token →
// introspection (cached) → per-user rate limit → worker-model admission.
func (s *Server) withAuth(h authedHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.clk.Now()
		authz := r.Header.Get("Authorization")
		if !strings.HasPrefix(authz, "Bearer ") {
			s.writeError(w, http.StatusUnauthorized, "invalid_request_error", "missing bearer token")
			return
		}
		token := strings.TrimPrefix(authz, "Bearer ")
		info, err := s.tokens.Introspect(token)
		if err != nil || !info.Active {
			s.met.Counter("auth_rejected").Inc()
			status := http.StatusUnauthorized
			if errors.Is(err, auth.ErrRateLimited) {
				status = http.StatusTooManyRequests
			}
			s.writeError(w, status, "invalid_request_error", "token rejected: "+errString(err))
			return
		}
		if s.cfg.UserRatePerSec > 0 && !s.allowUser(info.Sub) {
			s.met.Counter("rate_limited").Inc()
			s.writeError(w, http.StatusTooManyRequests, "rate_limit_error", "user rate limit exceeded")
			return
		}
		// Worker admission: the legacy sync model holds one of few worker
		// slots for the whole request (queueing like WSGI workers would);
		// async admits a wide window on a lock-free in-flight counter.
		if s.cfg.WorkerModel == WorkerSyncLegacy {
			s.syncSem <- struct{}{}
			defer func() { <-s.syncSem }()
		} else {
			if s.inFlight.Add(1) > s.inFlightLimit {
				s.inFlight.Add(-1)
				s.met.Counter("overloaded").Inc()
				s.writeError(w, http.StatusServiceUnavailable, "overloaded_error", "gateway at capacity")
				return
			}
			defer s.inFlight.Add(-1)
		}
		if s.cfg.ProcessingOverhead > 0 {
			s.clk.Sleep(s.cfg.ProcessingOverhead)
		}
		s.met.Counter("http_requests").Inc()
		h(w, r, info)
		s.met.Histogram("http_request_seconds").Observe(s.clk.Since(start))
	}
}

func errString(err error) string {
	if err == nil {
		return "inactive token"
	}
	return err.Error()
}

//first:hotpath legacy delegate to the pinned frontend.allowUser
func (s *Server) allowUser(sub string) bool { return s.fe.allowUser(sub) }

func (s *Server) writeError(w http.ResponseWriter, status int, typ, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(openaiapi.NewError(typ, msg))
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// cacheKey hashes user+body for the response cache. One buffer allocation;
// the digest itself is the map key.
func cacheKey(sub string, body []byte) respKey {
	buf := make([]byte, 0, len(sub)+1+len(body))
	buf = append(buf, sub...)
	buf = append(buf, 0)
	buf = append(buf, body...)
	return sha256.Sum256(buf)
}

//first:hotpath legacy delegate to the pinned frontend.cacheGet
func (s *Server) cacheGet(key respKey) ([]byte, bool) { return s.fe.cacheGet(key) }

func (s *Server) cachePut(key respKey, body []byte) { s.fe.cachePut(key, body) }

func (s *Server) nextID(prefix string) string { return s.fe.nextID(prefix) }
